// Package mach is a full reproduction, in pure Go, of the system described
// in "Race-To-Sleep + Content Caching + Display Caching: A Recipe for
// Energy-efficient Video Streaming on Handhelds" (Zhang et al., MICRO-50,
// 2017): an end-to-end mobile video-streaming platform simulator with three
// energy optimizations —
//
//   - Race-to-Sleep: batched decoding plus decoder frequency boosting so the
//     accumulated slack amortizes deep-sleep power-state transitions;
//   - Content caching (MACH): a macroblock content cache that deduplicates
//     decoded mab/gab content on its way to the frame buffer;
//   - Display caching: a display cache plus MACH buffer in the display
//     controller that absorb the indirection MACH introduces.
//
// The package re-exports the library's public surface: workload synthesis
// (the 16 Table 1 videos), trace building, scheme construction, the pipeline
// runner, and the result types. Examples live in examples/, the experiment
// harness in bench_test.go and cmd/report.
//
// Quick start:
//
//	tr, _ := mach.BuildTrace("V1", mach.DefaultStreamConfig())
//	res, _ := mach.Run(tr, mach.GAB(8), mach.DefaultConfig())
//	fmt.Println(res)
package mach

import (
	"mach/internal/abr"
	"mach/internal/checkpoint"
	"mach/internal/core"
	"mach/internal/delivery"
	"mach/internal/trace"
	"mach/internal/video"
)

// Re-exported configuration and scheme types.
type (
	// Config is the full platform configuration (decoder, display, DRAM,
	// power states, MACH, SRAM overheads).
	Config = core.Config
	// Scheme is one design point (batch depth, racing, MACH mode,
	// display optimizations).
	Scheme = core.Scheme
	// MachMode selects content caching: off, mab-based, or gab-based.
	MachMode = core.MachMode
	// Result is a pipeline run's complete measurement.
	Result = core.Result
	// RegionCounts classifies frame times into the paper's Regions I-IV.
	RegionCounts = core.RegionCounts
	// StreamConfig controls workload synthesis (resolution, frames, seed).
	StreamConfig = video.StreamConfig
	// Profile describes one of the 16 Table 1 workloads.
	Profile = video.Profile
	// Trace is a decoded workload ready for replay.
	Trace = trace.Trace
	// DeliveryConfig is the network-delivery fault model (Config.Delivery):
	// bandwidth, latency jitter, loss/stall/outage injection, segment
	// retry policy, streaming-buffer depth, and the modem power model.
	DeliveryConfig = delivery.Config
	// DeliveryStats aggregates a run's delivery behaviour (Result.Net).
	DeliveryStats = delivery.Stats
	// ABRConfig is the adaptive-bitrate controller (Config.ABR): a bitrate
	// ladder plus a rung-selection policy, riding on the delivery model.
	ABRConfig = abr.Config
	// Ladder is a DASH-style bitrate ladder, lowest rung first.
	Ladder = abr.Ladder
	// Rung is one quality level of a Ladder.
	Rung = abr.Rung
	// ABRStats summarizes a run's adaptive-bitrate behaviour (Result.ABR).
	ABRStats = core.ABRStats
	// Bottleneck shares the delivery link with background sessions
	// (Config.Delivery.Bottleneck).
	Bottleneck = delivery.Bottleneck
	// ContentionStats aggregates shared-link behaviour (Result.Contention).
	ContentionStats = delivery.ContentionStats
	// Runner is the per-frame step machine behind Run; drive it directly
	// to checkpoint and resume long runs (see SaveCheckpoint /
	// LoadCheckpoint).
	Runner = core.Runner
)

// ErrCorruptCheckpoint wraps every checkpoint validation failure — bad
// magic, version, fingerprint, CRC, or structural state — so callers can
// distinguish a damaged file from an I/O error with errors.Is.
var ErrCorruptCheckpoint = checkpoint.ErrCorrupt

// MACH modes.
const (
	MachOff = core.MachOff
	MachMAB = core.MachMAB
	MachGAB = core.MachGAB
)

// DefaultBatch is the batch depth of the paper's headline configuration.
const DefaultBatch = core.DefaultBatch

// Platform and workload constructors.
var (
	// DefaultConfig returns the Table 2 platform configuration.
	DefaultConfig = core.DefaultConfig
	// DefaultStreamConfig returns the default workload scale.
	DefaultStreamConfig = video.DefaultStreamConfig
	// Profiles returns the 16 Table 1 workload profiles.
	Profiles = video.Profiles
	// ProfileByKey looks up a workload by key (V1..V16).
	ProfileByKey = video.ProfileByKey
	// WorkloadKeys returns the 16 workload keys in Table 1 order.
	WorkloadKeys = core.WorkloadKeys
	// BuildTrace synthesizes a workload and decodes it into a trace.
	BuildTrace = core.BuildTrace
	// Synthesize generates and encodes a workload stream.
	Synthesize = video.Synthesize

	// Network profiles for Config.Delivery (all Enabled; DefaultDelivery
	// is the same LTE link but disabled, the perfect-network default).
	DefaultDelivery = delivery.DefaultConfig
	DeliveryLTE     = delivery.LTE
	DeliveryWiFi    = delivery.WiFi
	Delivery3G      = delivery.ThreeG
	DeliveryFlaky   = delivery.Flaky
	DeliveryByName  = delivery.ProfileByName
	PlanDelivery    = delivery.Plan
	// PlanDeliveryABR is PlanDelivery with the adaptive-bitrate controller
	// choosing a ladder rung per segment.
	PlanDeliveryABR = delivery.PlanABR

	// Adaptive-bitrate ladder helpers: the default five-rung mobile DASH
	// ladder, the MACHLADDER manifest parser, and its file loader (both
	// wrap ErrBadManifest on damaged input).
	DefaultLadder = abr.DefaultLadder
	ParseLadder   = abr.ParseLadder
	LoadLadder    = abr.LoadLadder
	ABRPolicies   = abr.PolicyByName

	// Run replays a trace under a scheme.
	Run = core.Run
	// RunStandard runs all six Fig 11 schemes.
	RunStandard = core.RunStandard
	// NewRunner builds the per-frame step machine behind Run.
	NewRunner = core.NewRunner
	// LoadCheckpoint rebuilds a Runner from a checkpoint file written by
	// Runner.SaveCheckpoint; the file must match the (trace, scheme,
	// config) triple.
	LoadCheckpoint = core.LoadCheckpoint

	// Scheme constructors (the six bars of Fig 11 plus the §5 ablation).
	// SchemeByName resolves a CLI key ("gab", "rts", ...) to a scheme.
	SchemeByName     = core.SchemeByName
	AdaptiveBatching = core.AdaptiveBatching
	SlackPredictive  = core.SlackPredictive
	Baseline         = core.Baseline
	Batching         = core.Batching
	Racing           = core.Racing
	RaceToSleep      = core.RaceToSleep
	MAB              = core.MAB
	GAB              = core.GAB
	GABNoDisplayOpt  = core.GABNoDisplayOpt
	StandardSchemes  = core.StandardSchemes
)
