// Tier-1 enforcement of the machlint invariants: `go test ./...` fails if
// any future change reintroduces wall-clock time or global randomness into
// the simulation packages, mixes unit-suffixed or unit-typed quantities
// (including flow-sensitively, after the dimension went through float64),
// drops or double-counts a produced joule, leaves an error unchecked on
// some control-flow path, compares floats for equality, compares a value
// with itself, drops an I/O error in the trace/record/cmd layers, or
// leaves a stale lint:ignore directive behind. This is the same suite
// `go run ./cmd/machlint ./...` runs; see internal/lint and the
// "Determinism & lint invariants" / "machlint v2" sections of DESIGN.md.
package mach

import (
	"testing"

	"mach/internal/lint"
)

func TestMachlintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	fset, pkgs, err := lint.LoadModule(".")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.Path, terr)
		}
	}
	diags := lint.RunAnalyzers(fset, pkgs, lint.All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Log("fix the findings or add `//lint:ignore <check> <reason>` where the code is deliberately exempt (see README.md)")
	}
}
