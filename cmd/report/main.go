// Command report regenerates the paper's tables and figures (DESIGN.md maps
// each to its experiment) and prints them as text tables.
//
//	report                  # run everything at the default scale
//	report -exp fig11       # one experiment
//	report -quick           # reduced scale smoke run
//	report -frames 240 -width 640 -height 360 -videos 16
//	report -checkpoint-dir .report-ckpt   # crash-safe full regeneration
//
// With -checkpoint-dir, each completed experiment's rendered table is saved
// (atomically, checksummed, keyed by experiment id + the full scale/config)
// as soon as it finishes; rerunning after an interruption loads the finished
// cells from the cache and only computes what is missing. A damaged or
// mismatched cell is re-run fresh, never trusted.
package main

import (
	"crypto/md5"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"mach/internal/checkpoint"
	"mach/internal/experiments"
	"mach/internal/stats"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (fig1a, fig2, fig4, fig5, fig6, fig7, fig9, fig10, fig11, fig12, table1, table2, dcc, record, te, replacement, colorspace, contention, delivery, netprofiles, abr, fleet) or 'all'")
		quick    = flag.Bool("quick", false, "reduced scale")
		frames   = flag.Int("frames", 0, "override frames per workload")
		width    = flag.Int("width", 0, "override frame width")
		height   = flag.Int("height", 0, "override frame height")
		nvids    = flag.Int("videos", 0, "override number of workloads")
		workers  = flag.Int("workers", 0, "sweep fan-out width: independent cells of multi-run experiments share a bounded pool (0 = GOMAXPROCS)")
		parallel = flag.Int("parallel", 0, "per-run deterministic parallel engine width (0/1 = sequential; bit-identical at any width)")
		ckptDir  = flag.String("checkpoint-dir", "", "directory caching completed experiments; rerunning skips cells already finished at this exact configuration")
	)
	flag.Parse()

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "report: -workers %d: want >= 0\n", *workers)
		os.Exit(2)
	}
	if *parallel < 0 || *parallel > 256 {
		fmt.Fprintf(os.Stderr, "report: -parallel %d: want a worker count in [0,256]\n", *parallel)
		os.Exit(2)
	}
	cfg.Workers = *workers
	cfg.Platform.Parallel = *parallel
	if *frames > 0 {
		cfg.Stream.NumFrames = *frames
	}
	if *width > 0 {
		cfg.Stream.Width = *width
	}
	if *height > 0 {
		cfg.Stream.Height = *height
	}
	if *nvids > 0 && *nvids <= len(cfg.Videos) {
		cfg.Videos = cfg.Videos[:*nvids]
	}
	r := experiments.NewRunner(cfg)

	type entry struct {
		name, title string
		run         func() (*stats.Table, error)
	}
	all := []entry{
		{"table1", "Table 1: workload videos (synthetic stand-ins)", r.Table1},
		{"table2", "Table 2: simulated platform configuration", r.Table2},
		{"fig1a", "Fig 1a: baseline time/energy breakdown", r.Fig1a},
		{"fig2", "Fig 2: frame-time regions, baseline vs 16-frame batching", r.Fig2},
		{"fig4", "Fig 4: batch-size sweep at both DVFS points", func() (*stats.Table, error) { return r.Fig4(nil) }},
		{"fig5", "Fig 5: DRAM row-buffer behaviour at low vs high VD frequency", r.Fig5},
		{"fig6", "Fig 6: Race-to-Sleep grid (batch x frequency)", func() (*stats.Table, error) { return r.Fig6(nil) }},
		{"fig7a", "Fig 7a: decode-cache size sweep (address locality)", func() (*stats.Table, error) { return r.Fig7a(nil) }},
		{"fig7b", "Fig 7b: ideal content similarity (16-frame window)", r.Fig7b},
		{"fig9a", "Fig 9a: MACH memory savings (mab vs gab vs optimal)", r.Fig9a},
		{"fig9b", "Fig 9b: digest popularity concentration", r.Fig9b},
		{"fig10c", "Fig 10c: display-cache size sensitivity", func() (*stats.Table, error) { return r.Fig10c(nil) }},
		{"fig10d", "Fig 10d: gab record indexing split at the display", r.Fig10d},
		{"fig10e", "Fig 10e: display memory-access savings", r.Fig10e},
		{"fig11", "Fig 11: normalized energy, 16 videos x 6 schemes (headline)", r.Fig11},
		{"fig12a", "Fig 12a: frame buffers vs number of MACHs", func() (*stats.Table, error) { return r.Fig12a(nil) }},
		{"fig12b", "Fig 12b: MACH-buffer entries sweep", func() (*stats.Table, error) { return r.Fig12b(nil) }},
		{"fig12c", "Fig 12c: mab size sensitivity (V14)", func() (*stats.Table, error) { return r.Fig12c(nil) }},
		{"fig12d", "Fig 12d: hash functions and collisions", r.Fig12d},
		{"dcc", "Sec 6.2: GAB + Delta Color Compression", r.DCC},
		{"record", "Sec 6.4: recording pipeline (camera + encoder MACH)", r.Record},
		{"te", "Related work: checksum transaction elimination vs MACH", r.RelatedTE},
		{"replacement", "Ablation: MACH replacement policy (LRU/LFU/FIFO/optimal)", r.Replacement},
		{"colorspace", "Sec 4 claim: content caching across colour spaces", r.ColorSpace},
		{"contention", "Ablation: background SoC traffic", func() (*stats.Table, error) { return r.Contention(nil) }},
		{"slackpredict", "Related work: history-based slack-predictive DVFS vs race-to-sleep", r.SlackPrediction},
		{"delivery", "Fault injection: stall rate x bandwidth under imperfect delivery", func() (*stats.Table, error) { return r.Delivery(nil, nil) }},
		{"netprofiles", "Fault injection: GAB across link profiles", r.DeliveryProfiles},
		{"abr", "Graceful degradation: link headroom x contention x ABR policy", func() (*stats.Table, error) { return r.ABRContention(nil, nil) }},
		{"fleet", "Fleet scale: per-user energy/QoE distributions under churn and contention", func() (*stats.Table, error) { return r.Fleet(0) }},
	}

	// Each cached cell is fingerprinted with the experiment id plus the
	// full experiment configuration, so changing any scale knob silently
	// invalidates every cell instead of serving stale tables.
	cellFP := func(name string) checkpoint.Fingerprint {
		cfgJSON, err := json.Marshal(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "report: config fingerprint: %v\n", err)
			os.Exit(1)
		}
		return checkpoint.Fingerprint(md5.Sum(append(cfgJSON, name...)))
	}

	want := strings.ToLower(*exp)
	matched, failed := 0, 0
	for _, e := range all {
		if want != "all" && !strings.HasPrefix(e.name, want) {
			continue
		}
		matched++

		cellPath := ""
		if *ckptDir != "" {
			cellPath = filepath.Join(*ckptDir, e.name+".mckp")
			rendered, err := checkpoint.Load(cellPath, cellFP(e.name))
			if err == nil {
				fmt.Printf("== %s ==\n%s(%s, cached)\n\n", e.title, rendered, e.name)
				continue
			}
			if !errors.Is(err, fs.ErrNotExist) {
				// Damaged or from a different configuration: recompute.
				fmt.Fprintf(os.Stderr, "report: %s: ignoring cached cell: %v\n", e.name, err)
			}
		}

		start := time.Now()
		tb, err := runExperiment(e.run)
		if err != nil {
			// One broken experiment becomes an error row; the rest of the
			// report still regenerates.
			failed++
			fmt.Fprintf(os.Stderr, "report: %s: %v\n", e.name, err)
			fmt.Printf("== %s ==\nERROR: %v\n(%s, %.1fs)\n\n", e.title, err, e.name, time.Since(start).Seconds())
			continue
		}
		fmt.Printf("== %s ==\n%s(%s, %.1fs)\n\n", e.title, tb, e.name, time.Since(start).Seconds())
		if cellPath != "" {
			if err := checkpoint.Save(cellPath, cellFP(e.name), []byte(tb.String())); err != nil {
				fmt.Fprintf(os.Stderr, "report: %s: saving cell: %v\n", e.name, err)
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "report: %d of %d experiments failed\n", failed, matched)
		os.Exit(1)
	}
	if matched == 0 {
		names := make([]string, len(all))
		for i, e := range all {
			names[i] = e.name
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "report: unknown experiment %q; available: %s\n", *exp, strings.Join(names, ", "))
		os.Exit(2)
	}
}

// runExperiment isolates one experiment: a panic in its model code is
// recovered and reported as an error so the remaining experiments still run.
func runExperiment(run func() (*stats.Table, error)) (tb *stats.Table, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	return run()
}
