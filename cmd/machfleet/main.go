// Command machfleet runs a fleet of lightweight viewer sessions — distinct
// workloads, seeded per-session churn and bandwidth, optional cell-local
// shared bottlenecks — under the sharded crash-safe supervisor and prints the
// population aggregate.
//
// Examples:
//
//	machfleet -sessions 256 -scheme gab -net lte
//	machfleet -sessions 64 -shards 8 -workers 4 -canonical
//	machfleet -sessions 10000 -checkpoint-dir run.d -checkpoint-every 64
//	machfleet -sessions 10000 -checkpoint-dir run.d -resume
//	machfleet -sessions 64 -inject-panic-rate 0.05 -inject-panic-seed 7
//	machfleet -sessions 64 -inject-stall-shard 2 -stall-deadline 2s
//
// Long runs are crash-safe with -checkpoint-dir: each shard writes its own
// manifest atomically every -checkpoint-every sessions and the fleet resumes
// bit-identically with -resume after a crash or SIGKILL (a missing manifest
// restarts that shard; a damaged one is logged and recomputed). The aggregate
// is invariant under -shards and -workers, so any topology resumes any other.
//
// Exit codes: 0 success (injected faults contained included), 1 model or
// runtime error, 2 invalid usage, 3 interrupted by SIGINT/SIGTERM with every
// committed chunk flushed to the shard manifests — rerun with -resume.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mach"
	"mach/internal/fleet"
)

const (
	exitErr         = 1
	exitUsage       = 2
	exitInterrupted = 3
)

func main() {
	var (
		sessions  = flag.Int("sessions", 64, "number of viewer sessions in the fleet")
		seed      = flag.Int64("seed", 1, "fleet seed: derives every per-session profile, length, churn window, and delivery seed")
		shards    = flag.Int("shards", 4, "number of independently crash-safe shards")
		workers   = flag.Int("workers", 0, "session fan-out width per shard (0 = GOMAXPROCS)")
		scheme    = flag.String("scheme", "gab", "scheme: baseline|batching|racing|race-to-sleep|mab|gab")
		batch     = flag.Int("batch", mach.DefaultBatch, "batch depth for batching schemes")
		frames    = flag.Int("frames", 120, "full-length session frame count (churn shortens individual sessions)")
		width     = flag.Int("width", 320, "frame width (multiple of the mab size)")
		height    = flag.Int("height", 180, "frame height (multiple of the mab size)")
		workloads = flag.String("workloads", "", "comma-separated workload keys to draw sessions from (empty = all V1..V16)")
		cell      = flag.Int("cell", 8, "sessions per contention cell: overlapping sessions of a cell share a bottleneck (requires -net; 0/1 = no contention)")
		horizon   = flag.Int("horizon", 16, "join/leave churn horizon in quarter-length quanta")

		ckptDir   = flag.String("checkpoint-dir", "", "shard manifest directory: each shard checkpoints there every -checkpoint-every sessions, removed on success")
		ckptEvery = flag.Int("checkpoint-every", 16, "sessions between shard manifest writes (with -checkpoint-dir)")
		resume    = flag.Bool("resume", false, "resume from surviving manifests in -checkpoint-dir; missing = fresh shard, damaged = recomputed")
		canonical = flag.Bool("canonical", false, "print the canonical JSON aggregate instead of the report (stable across topologies; used to prove resume equivalence)")

		net       = flag.String("net", "", "network profile enabling the delivery fault model: lte|wifi|3g|flaky (empty = perfect network)")
		bandwidth = flag.Float64("bandwidth", 0, "override link bandwidth in Mbit/s (requires -net)")
		abrPolicy = flag.String("abr", "", "adaptive-bitrate policy: fixed|buffer|throughput (requires -net)")

		stallDeadline = flag.Duration("stall-deadline", 0, "watchdog no-progress deadline per shard (0 = watchdog off)")
		maxRestarts   = flag.Int("max-restarts", 3, "watchdog restarts per shard before the run fails")

		panicRate  = flag.Float64("inject-panic-rate", 0, "fault injection: probability a session panics at start (quarantined, not fatal)")
		panicSeed  = flag.Int64("inject-panic-seed", 0, "fault injection: seed for the panic draw")
		stallShard = flag.Int("inject-stall-shard", -1, "fault injection: stall this shard's first attempt until the watchdog restarts it (-1 = off)")

		verbose = flag.Bool("v", false, "print per-quarantine detail and progress lines")
	)
	flag.Parse()

	cfg := fleet.Default()
	if *sessions < 1 || *sessions > 1<<24 {
		usage("-sessions %d: want a fleet size in [1,%d]", *sessions, 1<<24)
	}
	if *shards < 1 || *shards > 4096 {
		usage("-shards %d: want a shard count in [1,4096]", *shards)
	}
	if *workers < 0 || *workers > 256 {
		usage("-workers %d: want a worker count in [0,256]", *workers)
	}
	if *ckptEvery < 1 {
		usage("-checkpoint-every %d: want a positive session interval", *ckptEvery)
	}
	if *resume && *ckptDir == "" {
		usage("-resume needs -checkpoint-dir to name the manifest directory")
	}
	if *frames <= 0 {
		usage("-frames %d: want a positive frame count", *frames)
	}
	if *batch < 1 || *batch > 64 {
		usage("-batch %d: want a batch depth in [1,64]", *batch)
	}
	if *cell < 0 || *cell > 4096 {
		usage("-cell %d: want a cell size in [0,4096]", *cell)
	}
	if *horizon < 1 || *horizon > 1<<20 {
		usage("-horizon %d: want a churn horizon in [1,%d]", *horizon, 1<<20)
	}
	if *stallDeadline < 0 {
		usage("-stall-deadline %v: want a non-negative duration", *stallDeadline)
	}
	if *maxRestarts < 0 || *maxRestarts > 64 {
		usage("-max-restarts %d: want a restart budget in [0,64]", *maxRestarts)
	}
	if *panicRate < 0 || *panicRate > 1 {
		usage("-inject-panic-rate %g: want a probability in [0,1]", *panicRate)
	}
	if *stallShard >= *shards {
		usage("-inject-stall-shard %d: fleet has shards 0..%d", *stallShard, *shards-1)
	}
	if *stallShard >= 0 && *stallDeadline == 0 {
		usage("-inject-stall-shard needs -stall-deadline to arm the watchdog that clears the stall")
	}

	sc := cfg.Stream
	sc.Width, sc.Height, sc.NumFrames, sc.Seed = *width, *height, *frames, *seed
	if sc.MabSize > 0 && (*width <= 0 || *height <= 0 || *width%sc.MabSize != 0 || *height%sc.MabSize != 0) {
		usage("-width/-height %dx%d: want positive multiples of the %d-pixel mab size", *width, *height, sc.MabSize)
	}

	s, err := mach.SchemeByName(*scheme, *batch)
	if err != nil {
		usage("-scheme %s: %v", *scheme, err)
	}

	var profiles []string
	if *workloads != "" {
		for _, key := range strings.Split(*workloads, ",") {
			key = strings.TrimSpace(key)
			if _, err := mach.ProfileByKey(key); err != nil {
				usage("-workloads %s: unknown key %q (run `vgen -list` for the V1..V16 table)", *workloads, key)
			}
			profiles = append(profiles, key)
		}
	}

	platform := mach.DefaultConfig()
	if *net != "" {
		d, err := mach.DeliveryByName(*net)
		if err != nil {
			usage("-net %s: %v", *net, err)
		}
		if *bandwidth != 0 {
			if *bandwidth < 0 {
				usage("-bandwidth %g: want Mbit/s > 0", *bandwidth)
			}
			d.BandwidthBps = *bandwidth * 1e6 / 8
		}
		platform.Delivery = d
		if *abrPolicy != "" {
			if _, err := mach.ABRPolicies(*abrPolicy); err != nil {
				usage("-abr %s: %v", *abrPolicy, err)
			}
			platform.ABR = mach.ABRConfig{Enabled: true, Policy: *abrPolicy, FixedRung: -1}
		}
	} else if *bandwidth != 0 || *abrPolicy != "" {
		usage("-bandwidth/-abr need -net to select a profile")
	}

	cfg.Sessions = *sessions
	cfg.Seed = *seed
	cfg.Shards = *shards
	cfg.Workers = *workers
	cfg.CheckpointEvery = *ckptEvery
	cfg.Scheme = s
	cfg.Stream = sc
	cfg.Platform = platform
	cfg.Profiles = profiles
	cfg.CellSize = *cell
	cfg.Horizon = *horizon

	fmt.Fprintf(os.Stderr, "machfleet: planning %d sessions over %d shards (seed %d)...\n",
		*sessions, *shards, *seed)
	sup, err := fleet.NewSupervisor(cfg)
	if err != nil {
		if errors.Is(err, fleet.ErrConfig) {
			usage("%v", err)
		}
		fatal(err)
	}

	opts := fleet.RunOptions{
		Dir:    *ckptDir,
		Resume: *resume,
		Watchdog: fleet.WatchdogConfig{
			StallDeadline: *stallDeadline,
			MaxRestarts:   *maxRestarts,
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	start := time.Now()
	opts.Clock = func() time.Duration { return time.Since(start) }
	opts.Sleep = time.Sleep
	if *panicRate > 0 || *stallShard >= 0 {
		opts.Hooks = fleet.Injector{PanicRate: *panicRate, PanicSeed: *panicSeed, StallShard: *stallShard}.Hooks()
	}

	// With checkpointing on, SIGINT/SIGTERM means "flush and hand back": the
	// in-flight chunks abort, every committed chunk is already in the shard
	// manifests, and the exit code tells the harness to rerun with -resume.
	if *ckptDir != "" {
		stop := make(chan struct{})
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigc
			close(stop)
		}()
		opts.Stop = stop
	}

	agg, err := sup.Run(opts)
	switch {
	case err == nil:
	case errors.Is(err, fleet.ErrInterrupted):
		fmt.Fprintf(os.Stderr, "machfleet: interrupted; shard manifests in %s (resume with -resume)\n", *ckptDir)
		os.Exit(exitInterrupted)
	default:
		fatal(err)
	}

	if *canonical {
		b, err := agg.CanonicalJSON()
		if err != nil {
			fatal(err)
		}
		if _, err := os.Stdout.Write(b); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(agg)
	if *verbose {
		fmt.Printf("  wall time: %v\n", time.Since(start).Round(time.Millisecond))
	}
}

// usage reports an invalid invocation and exits with the usage code so
// scripts can distinguish operator error from model failure.
func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "machfleet: "+format+"\n", args...)
	fmt.Fprintln(os.Stderr, "run `machfleet -h` for flag documentation")
	os.Exit(exitUsage)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "machfleet:", err)
	os.Exit(exitErr)
}
