// Command machlint runs the repository's static-analysis suite (see
// internal/lint): determinism, unit safety, float equality, self-comparison
// and error-check invariants that keep the simulation replayable and the
// energy accounting honest. The flow-sensitive checks (unitflow,
// ledgercheck, pathcheck) run per-function CFGs so a unit mixed or an
// error dropped three blocks after its definition is still caught, and
// staleignore flags lint:ignore directives whose finding no longer exists.
//
// Usage:
//
//	go run ./cmd/machlint ./...          # lint the whole module
//	go run ./cmd/machlint -checks determinism,floateq ./...
//	go run ./cmd/machlint -list          # describe the available checks
//	go run ./cmd/machlint -json ./...    # machine-readable diagnostics
//
// With -json, diagnostics are emitted as one JSON array of objects with
// "file", "line", "col", "analyzer" and "message" fields (empty array when
// clean), for editors and CI problem matchers. With -timing, per-analyzer
// wall time is reported: a table on stderr (so it composes with the
// diagnostic stream), or a "timings" wrapper object in -json mode. The
// "engine" row is the one-time call-graph and summary construction the
// interprocedural analyzers share.
//
// Package patterns are accepted for familiarity but machlint always
// analyzes the module containing the working directory as a whole: the
// checks are cross-cutting invariants, not per-package style rules.
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mach/internal/lint"
)

// jsonReport is the -json -timing wire shape: the plain diagnostic array
// wrapped alongside per-analyzer wall times.
type jsonReport struct {
	Diagnostics []jsonDiagnostic      `json:"diagnostics"`
	Timings     []lint.AnalyzerTiming `json:"timings"`
}

// jsonDiagnostic is the -json wire shape of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run())
}

func run() int {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list available checks and exit")
	asJSON := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	timing := flag.Bool("timing", false, "report per-analyzer wall time (stderr table, or a timings field with -json)")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *checks != "" {
		analyzers = nil
		for _, name := range strings.Split(*checks, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "machlint: unknown check %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "machlint: %v\n", err)
		return 2
	}

	fset, pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "machlint: %v\n", err)
		return 2
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "machlint: warning: %s: %v\n", p.Path, terr)
		}
	}

	diags, timings := lint.RunAnalyzersTimed(fset, pkgs, analyzers)
	relName := func(name string) string {
		if r, err := filepath.Rel(root, name); err == nil {
			return r
		}
		return name
	}
	if *asJSON {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:     relName(d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Check,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		var payload any = out
		if *timing {
			payload = jsonReport{Diagnostics: out, Timings: timings}
		}
		if err := enc.Encode(payload); err != nil {
			fmt.Fprintf(os.Stderr, "machlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s [%s]\n", relName(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message, d.Check)
		}
		if *timing {
			for _, tm := range timings {
				fmt.Fprintf(os.Stderr, "machlint: timing %-12s %8.1fms\n", tm.Name, tm.Millis)
			}
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "machlint: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}
