// Command calibrate prints the measurements the cycle-cost and energy
// calibration relies on: the baseline per-frame decode-time distribution
// (against the paper's Region I-IV targets: 4% drops / 12% short slack /
// 37% S1 / 40%+ S3), the sleep-state break-evens, the energy split, and the
// content-match rates (against 42% intra / 15% inter / 43% none).
package main

import (
	"flag"
	"fmt"

	"mach"
	"mach/internal/energy"
	"mach/internal/power"
	"mach/internal/sim"
)

func main() {
	var (
		frames = flag.Int("frames", 120, "frames per workload")
		width  = flag.Int("width", 320, "frame width")
		height = flag.Int("height", 180, "frame height")
		nvids  = flag.Int("videos", 4, "number of workloads to mix (V1..Vn)")
	)
	flag.Parse()

	cfg := mach.DefaultConfig()
	pcfg := power.DefaultConfig()
	fmt.Printf("break-even: S1 %v  S3 %v (period 16.667ms)\n\n",
		pcfg.BreakEven(power.S1), pcfg.BreakEven(power.S3))

	var all []float64
	keys := mach.WorkloadKeys()[:*nvids]
	for _, key := range keys {
		sc := mach.DefaultStreamConfig()
		sc.Width, sc.Height, sc.NumFrames = *width, *height, *frames
		tr, err := mach.BuildTrace(key, sc)
		if err != nil {
			panic(err)
		}
		res, err := mach.Run(tr, mach.Baseline(), cfg)
		if err != nil {
			panic(err)
		}
		rc := res.Regions(sim.FromSeconds(1.0/60), pcfg)
		n := float64(res.Frames)
		fmt.Printf("%-4s drops=%2d  regions I/II/III/IV = %4.1f%% %4.1f%% %4.1f%% %4.1f%%  ",
			key, res.Drops, 100*float64(rc.I)/n, 100*float64(rc.II)/n, 100*float64(rc.III)/n, 100*float64(rc.IV)/n)
		fmt.Printf("t50=%.1fms t90=%.1fms t99=%.1fms\n",
			1e3*res.FrameTimes.Quantile(0.5), 1e3*res.FrameTimes.Quantile(0.9), 1e3*res.FrameTimes.Quantile(0.99))
		all = append(all, res.FrameTimes.Values()...)

		if key == keys[0] {
			tot := res.TotalEnergy()
			fmt.Printf("     baseline energy split: ")
			for _, k := range energy.Components() {
				if v := res.Energy.Get(k); v > 0 {
					fmt.Printf("%s %.1f%%  ", k, 100*v/tot)
				}
			}
			fmt.Println()
			g, err := mach.Run(tr, mach.GAB(8), cfg)
			if err != nil {
				panic(err)
			}
			m, _ := mach.Run(tr, mach.MAB(8), cfg)
			fmt.Printf("     %s matches: gab intra %.1f%% inter %.1f%% none %.1f%% | mab intra %.1f%% inter %.1f%%\n",
				key,
				pct(g.Mach.IntraMatches, g.Mach.Mabs), pct(g.Mach.InterMatches, g.Mach.Mabs), pct(g.Mach.NoMatches, g.Mach.Mabs),
				pct(m.Mach.IntraMatches, m.Mach.Mabs), pct(m.Mach.InterMatches, m.Mach.Mabs))
			fmt.Printf("     gab savings %.1f%%  mab savings %.1f%%  vd-side writes: base=%d gab=%d\n",
				100*g.Mach.Savings(), 100*m.Mach.Savings(), res.Mach.LineWrites, g.Mach.LineWrites)
			fmt.Printf("     display line reads: base=%d gab=%d (%.1f%% saving)\n",
				res.Disp.MemLineReads, g.Disp.MemLineReads,
				100*(1-float64(g.Disp.MemLineReads)/float64(res.Disp.MemLineReads)))
			fmt.Printf("     dram base: hits=%d conflict=%d closed=%d timeoutPre=%d reads=%d writes=%d refHit=%.2f\n",
				res.Mem.RowHits, res.Mem.RowMisses, res.Mem.RowClosed, res.Mem.TimeoutPre, res.Mem.Reads, res.Mem.Writes, res.Dec.RefHitRate())
			r2, _ := mach.Run(tr, mach.Racing(), cfg)
			fmt.Printf("     Fig5: activates base=%d racing=%d (%.1f%% fewer)  actpre energy %.2f->%.2f mJ\n",
				res.Mem.Activates, r2.Mem.Activates,
				100*(1-float64(r2.Mem.Activates)/float64(res.Mem.Activates)),
				1e3*res.MemEnergy.ActPre, 1e3*r2.MemEnergy.ActPre)
			s2, _ := mach.Run(tr, mach.RaceToSleep(8), cfg)
			fmt.Printf("     race-to-sleep: S3 %.1f%% (baseline %.1f%%)  norm energy B=%.3f R=%.3f S=%.3f\n",
				100*s2.S3Residency(), 100*res.S3Residency(),
				mustNorm(tr, cfg, mach.Batching(8), res), r2.TotalEnergy()/res.TotalEnergy(), s2.TotalEnergy()/res.TotalEnergy())
		}
	}

	// Aggregate region split.
	period := 1.0 / 60
	beS1 := pcfg.BreakEven(power.S1).Seconds()
	beS3 := pcfg.BreakEven(power.S3).Seconds()
	var r1, r2, r3, r4 int
	for _, d := range all {
		slack := period - d
		switch {
		case slack < 0:
			r1++
		case slack < beS1:
			r2++
		case slack < beS3:
			r3++
		default:
			r4++
		}
	}
	n := float64(len(all))
	fmt.Printf("\nAGGREGATE regions I/II/III/IV = %.1f%% %.1f%% %.1f%% %.1f%%  (paper: 4/12/37/40+)\n",
		100*float64(r1)/n, 100*float64(r2)/n, 100*float64(r3)/n, 100*float64(r4)/n)
}

func mustNorm(tr *mach.Trace, cfg mach.Config, s mach.Scheme, base *mach.Result) float64 {
	r, err := mach.Run(tr, s, cfg)
	if err != nil {
		panic(err)
	}
	return r.TotalEnergy() / base.TotalEnergy()
}

func pct(x, n int64) float64 {
	if n == 0 {
		return 0
	}
	return 100 * float64(x) / float64(n)
}
