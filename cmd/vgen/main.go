// Command vgen synthesizes the Table 1 workload videos, inspects their
// content-similarity statistics, and records/replays decode traces.
//
//	vgen -list                          # show the 16 profiles
//	vgen -workload V7 -frames 60 -stats # content similarity of one workload
//	vgen -workload V7 -out v7.trace     # record a binary decode trace
//	vgen -in v7.trace -stats            # replay a recorded trace
//
// Exit codes: 0 success, 1 synthesis/IO error, 2 invalid usage.
package main

import (
	"flag"
	"fmt"
	"os"

	"mach/internal/core"
	"mach/internal/mach"
	"mach/internal/stats"
	"mach/internal/trace"
	"mach/internal/video"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list workload profiles")
		workload = flag.String("workload", "V1", "workload key")
		frames   = flag.Int("frames", 60, "frames to synthesize")
		width    = flag.Int("width", 320, "frame width")
		height   = flag.Int("height", 180, "frame height")
		seed     = flag.Int64("seed", 1, "generator seed")
		showStat = flag.Bool("stats", false, "print content-similarity statistics")
		out      = flag.String("out", "", "write a binary decode trace to this path")
		in       = flag.String("in", "", "load a binary decode trace instead of synthesizing")
		jsonOut  = flag.Bool("json", false, "print the trace summary as JSON")
	)
	flag.Parse()

	if *list {
		tb := stats.NewTable("key", "name", "description", "fps", "GOP", "B", "cuts")
		for _, p := range video.Profiles() {
			tb.AddRow(p.Key, p.Name, p.Description, p.FPS, p.GOPLength, p.BFrames, p.SceneCutEvery)
		}
		fmt.Print(tb)
		return
	}

	if *in == "" {
		const mabSize = 4
		if *frames <= 0 {
			usage("-frames %d: want a positive frame count", *frames)
		}
		if *width <= 0 || *height <= 0 || *width%mabSize != 0 || *height%mabSize != 0 {
			usage("-width/-height %dx%d: want positive multiples of the %d-pixel mab size", *width, *height, mabSize)
		}
		if _, err := video.ProfileByKey(*workload); err != nil {
			usage("-workload %s: unknown key (run `vgen -list` for the V1..V16 table)", *workload)
		}
	}

	var tr *trace.Trace
	var err error
	if *in != "" {
		f, err2 := os.Open(*in)
		if err2 != nil {
			fatal(err2)
		}
		defer f.Close()
		tr, err = trace.Load(f)
	} else {
		sc := video.StreamConfig{Width: *width, Height: *height, NumFrames: *frames, Seed: *seed, MabSize: 4, Quant: 8}
		tr, err = core.BuildTrace(*workload, sc)
	}
	if err != nil {
		fatal(err)
	}
	if err := tr.Validate(); err != nil {
		fatal(err)
	}

	if *jsonOut {
		if err := tr.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	} else {
		s := tr.Summarize()
		fmt.Printf("%s: %d frames %dx%d, %d KB encoded, mabs I/P/B = %d/%d/%d\n",
			s.Profile, s.Frames, s.Width, s.Height, s.EncodedBytes/1024, s.MabsI, s.MabsP, s.MabsB)
	}

	if *showStat {
		for _, gradient := range []bool{false, true} {
			an := mach.NewAnalyzer(16, tr.Params.MabSize, gradient)
			for i := range tr.Frames {
				an.ProcessFrame(tr.Frames[i].Decoded)
			}
			mode := "mab"
			if gradient {
				mode = "gab"
			}
			fmt.Printf("%s: intra %.1f%%  inter %.1f%%  none %.1f%%  ideal savings %.1f%%\n",
				mode, 100*an.IntraRate(), 100*an.InterRate(), 100*an.NoMatchRate(), 100*an.Savings())
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := tr.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// usage reports an invalid invocation and exits with code 2 so scripts can
// distinguish operator error from synthesis failure.
func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vgen: "+format+"\n", args...)
	fmt.Fprintln(os.Stderr, "run `vgen -h` for flag documentation")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vgen:", err)
	os.Exit(1)
}
