// Command machbench regenerates and validates BENCH_machsim.json, the
// committed benchmark regression report (schema in internal/bench).
//
//	machbench -out BENCH_machsim.json            # regenerate at full scale
//	machbench -videos 4 -frames 16 -out /tmp/b.json
//	machbench -check -check-file BENCH_machsim.json -min-speedup 1.8 \
//	          -min-engine-speedup 1.3 -max-stepframe-allocs 0
//
// In -check mode no benchmarks run: the file is validated against the
// schema, every sweep/par* row must meet -min-speedup, the engine/par*
// rows' geomean speedup must meet -min-engine-speedup, and every
// engine/stepframe/* row must stay at or under -max-stepframe-allocs
// allocs per frame. Exit codes: 0 success, 1 harness error or failed
// check, 2 invalid usage.
package main

import (
	"flag"
	"fmt"
	"os"

	"mach/internal/bench"
	"mach/internal/core"
	"mach/internal/video"
)

func main() {
	var (
		out        = flag.String("out", "BENCH_machsim.json", "report file to write")
		merge      = flag.Bool("merge", false, "merge into an existing -out file instead of replacing it")
		workers    = flag.Int("workers", 4, "parallel-engine width to benchmark")
		frames     = flag.Int("frames", 48, "frames per workload")
		width      = flag.Int("width", 320, "frame width")
		height     = flag.Int("height", 180, "frame height")
		videosN    = flag.Int("videos", 0, "limit to the first N workloads (0 = all 16)")
		iterations = flag.Int("iterations", 2, "timed iterations per cell (fastest wins)")
		check      = flag.Bool("check", false, "validate a report instead of running benchmarks")
		checkFile  = flag.String("check-file", "BENCH_machsim.json", "report to validate in -check mode")
		minSpeedup = flag.Float64("min-speedup", 1.8, "minimum speedup_vs_seq every sweep/par* row must meet in -check mode")
		minEngine  = flag.Float64("min-engine-speedup", 1.3, "minimum geomean speedup_vs_seq across engine/par* rows in -check mode")
		maxAllocs  = flag.Float64("max-stepframe-allocs", 0, "maximum allocs_per_op any engine/stepframe/* row may report in -check mode")
	)
	flag.Parse()

	if *check {
		rep, err := bench.ReadFile(*checkFile)
		if err != nil {
			fatal(err)
		}
		if err := rep.Check("sweep/par", *minSpeedup); err != nil {
			fatal(err)
		}
		if err := rep.CheckGeomean("engine/par", *minEngine); err != nil {
			fatal(err)
		}
		if err := rep.CheckAllocs("engine/stepframe/", *maxAllocs); err != nil {
			fatal(err)
		}
		fmt.Printf("machbench: %s: %d records ok; sweep/par* >= %.2fx, engine/par* geomean >= %.2fx, engine/stepframe/* <= %g allocs/op\n",
			*checkFile, len(rep.Records), *minSpeedup, *minEngine, *maxAllocs)
		return
	}

	if *workers < 2 || *workers > 256 {
		usage("-workers %d: want a width in [2,256]", *workers)
	}
	if *frames < 1 || *iterations < 1 {
		usage("-frames/-iterations must be positive")
	}
	keys := core.WorkloadKeys()
	if *videosN < 0 || *videosN > len(keys) {
		usage("-videos %d: want [0,%d]", *videosN, len(keys))
	}
	if *videosN > 0 {
		keys = keys[:*videosN]
	}
	sc := video.DefaultStreamConfig()
	sc.NumFrames = *frames
	sc.Width, sc.Height = *width, *height
	if sc.MabSize > 0 && (*width%sc.MabSize != 0 || *height%sc.MabSize != 0) {
		usage("-width/-height %dx%d: want multiples of the %d-pixel mab size", *width, *height, sc.MabSize)
	}

	rep, err := bench.Run(bench.Options{
		Videos:     keys,
		Stream:     sc,
		Workers:    *workers,
		Iterations: *iterations,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "machbench: "+format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}

	if *merge {
		if prev, err := bench.ReadFile(*out); err == nil {
			for _, rec := range rep.Records {
				prev.Add(rec)
			}
			rep = prev
		} else if !os.IsNotExist(err) {
			fatal(err)
		}
	}
	if err := bench.WriteFile(*out, rep); err != nil {
		fatal(err)
	}
	seq, _ := rep.Find("sweep/seq")
	par, _ := rep.Find(fmt.Sprintf("sweep/par%d", *workers))
	fmt.Printf("machbench: wrote %s (%d records): sweep %.1fms seq, %.1fms scheduled on %d workers (%.2fx)\n",
		*out, len(rep.Records), float64(seq.NsPerOp)/1e6, float64(par.NsPerOp)/1e6, *workers, par.SpeedupVsSeq)
}

func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "machbench: "+format+"\n", args...)
	fmt.Fprintln(os.Stderr, "run `machbench -h` for flag documentation")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "machbench:", err)
	os.Exit(1)
}
