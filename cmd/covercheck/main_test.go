package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleProfile = `mode: set
mach/internal/core/run.go:10.2,12.3 3 1
mach/internal/core/run.go:14.2,16.3 2 0
mach/internal/mach/writeback.go:5.1,9.2 4 7
`

func writeProfile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cover.out")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseProfile(t *testing.T) {
	pkgs, err := parseProfile(writeProfile(t, sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	core := pkgs["mach/internal/core"]
	if core.stmts != 5 || core.covered != 3 {
		t.Fatalf("core: got %d/%d, want 3/5", core.covered, core.stmts)
	}
	if got := core.percent(); got != 60 {
		t.Fatalf("core percent %g, want 60", got)
	}
	mc := pkgs["mach/internal/mach"]
	if mc.percent() != 100 {
		t.Fatalf("mach percent %g, want 100", mc.percent())
	}
}

func TestParseProfileRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"mode: set\nno-colon-here 3 1\n",
		"mode: set\nf.go:1.1,2.2 three 1\n",
		"mode: set\nf.go:1.1,2.2 3\n",
	} {
		if _, err := parseProfile(writeProfile(t, bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestCheckFloors(t *testing.T) {
	pkgs, err := parseProfile(writeProfile(t, sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	_, failures := check(pkgs, floors{"mach/internal/core": 50, "mach/internal/mach": 90})
	if len(failures) != 0 {
		t.Fatalf("floors met but failed: %v", failures)
	}
	_, failures = check(pkgs, floors{"mach/internal/core": 61})
	if len(failures) != 1 || !strings.Contains(failures[0], "below the") {
		t.Fatalf("60%% did not fail a 61%% floor: %v", failures)
	}
	_, failures = check(pkgs, floors{"mach/internal/ghost": 10})
	if len(failures) != 1 || !strings.Contains(failures[0], "absent") {
		t.Fatalf("missing package not reported: %v", failures)
	}
}

func TestFloorsFlagParsing(t *testing.T) {
	f := floors{}
	if err := f.Set("a/b=92.5"); err != nil {
		t.Fatal(err)
	}
	if f["a/b"] != 92.5 {
		t.Fatalf("got %v", f)
	}
	for _, bad := range []string{"nopct", "=50", "p=abc", "p=101", "p=-1"} {
		if err := f.Set(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
