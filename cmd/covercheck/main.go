// Command covercheck enforces per-package statement-coverage floors on a
// `go test -coverprofile` file, so CI fails when a change lands untested
// code in the accounting-critical packages:
//
//	go test -coverprofile=cover.out ./internal/core ./internal/mach ./internal/delivery
//	covercheck -profile cover.out \
//	    -min mach/internal/core=90 \
//	    -min mach/internal/mach=90 \
//	    -min mach/internal/delivery=95
//
// Packages in the profile without a -min floor are reported but not
// enforced. Exit codes: 0 all floors met, 1 a floor missed or a named
// package absent from the profile, 2 invalid usage.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// pkgCoverage accumulates statement counts for one package.
type pkgCoverage struct {
	stmts   int64
	covered int64
}

func (c pkgCoverage) percent() float64 {
	if c.stmts == 0 {
		return 0
	}
	return 100 * float64(c.covered) / float64(c.stmts)
}

// parseProfile reads a coverprofile and returns statement coverage per
// import path (the profile names files as importpath/file.go).
func parseProfile(path_ string) (map[string]pkgCoverage, error) {
	f, err := os.Open(path_)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	pkgs := make(map[string]pkgCoverage)
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if lineNo == 1 && strings.HasPrefix(line, "mode:") {
			continue
		}
		if line == "" {
			continue
		}
		// importpath/file.go:sl.sc,el.ec numStmts count
		file, rest, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("%s:%d: no file separator in %q", path_, lineNo, line)
		}
		fields := strings.Fields(rest)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: want `range stmts count`, got %q", path_, lineNo, rest)
		}
		stmts, err1 := strconv.ParseInt(fields[1], 10, 64)
		count, err2 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil || stmts < 0 || count < 0 {
			return nil, fmt.Errorf("%s:%d: bad statement/count in %q", path_, lineNo, rest)
		}
		pkg := path.Dir(file)
		c := pkgs[pkg]
		c.stmts += stmts
		if count > 0 {
			c.covered += stmts
		}
		pkgs[pkg] = c
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return pkgs, nil
}

// floors is the repeated -min pkg=pct flag.
type floors map[string]float64

func (f floors) String() string {
	parts := make([]string, 0, len(f))
	for k, v := range f {
		parts = append(parts, fmt.Sprintf("%s=%g", k, v))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (f floors) Set(s string) error {
	pkg, pct, ok := strings.Cut(s, "=")
	if !ok || pkg == "" {
		return fmt.Errorf("want pkg=percent, got %q", s)
	}
	v, err := strconv.ParseFloat(pct, 64)
	if err != nil || v < 0 || v > 100 {
		return fmt.Errorf("floor %q not a percentage in [0,100]", pct)
	}
	f[pkg] = v
	return nil
}

// check compares the profile against the floors and returns one line per
// package plus the list of failures.
func check(pkgs map[string]pkgCoverage, mins floors) (report []string, failures []string) {
	names := make([]string, 0, len(pkgs))
	for pkg := range pkgs {
		names = append(names, pkg)
	}
	sort.Strings(names)
	for _, pkg := range names {
		pct := pkgs[pkg].percent()
		if min, ok := mins[pkg]; ok {
			verdict := "ok"
			if pct < min {
				verdict = "FAIL"
				failures = append(failures, fmt.Sprintf("%s: %.1f%% below the %.1f%% floor", pkg, pct, min))
			}
			report = append(report, fmt.Sprintf("%-28s %6.1f%%  (floor %.1f%%, %s)", pkg, pct, min, verdict))
		} else {
			report = append(report, fmt.Sprintf("%-28s %6.1f%%  (no floor)", pkg, pct))
		}
	}
	for pkg := range mins {
		if _, ok := pkgs[pkg]; !ok {
			failures = append(failures, fmt.Sprintf("%s: floor set but package absent from profile", pkg))
		}
	}
	sort.Strings(failures)
	return report, failures
}

func main() {
	profile := flag.String("profile", "cover.out", "coverprofile to check")
	mins := floors{}
	flag.Var(mins, "min", "per-package floor as importpath=percent (repeatable)")
	flag.Parse()
	if len(mins) == 0 {
		fmt.Fprintln(os.Stderr, "covercheck: no -min floors given")
		os.Exit(2)
	}
	pkgs, err := parseProfile(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(2)
	}
	report, failures := check(pkgs, mins)
	for _, line := range report {
		fmt.Println(line)
	}
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "covercheck:", f)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
}
