// Command machsim runs one workload through one scheme (or all six Fig 11
// schemes) and prints the timing/energy report.
//
// Examples:
//
//	machsim -workload V1 -scheme gab -frames 120
//	machsim -workload V8 -all -frames 240 -width 640 -height 360
//	machsim -workload V3 -scheme rts -net flaky -stall-rate 0.2 -net-seed 7
//
// Exit codes: 0 success, 1 model/runtime error, 2 invalid usage (bad flag
// values such as a width that is not a multiple of the mab size, an unknown
// workload/scheme key, or an unknown network profile).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mach"
	"mach/internal/stats"
)

const (
	exitErr   = 1
	exitUsage = 2
)

func main() {
	var (
		workload = flag.String("workload", "V1", "workload key (V1..V16)")
		scheme   = flag.String("scheme", "gab", "scheme: baseline|batching|racing|race-to-sleep|mab|gab")
		all      = flag.Bool("all", false, "run all six standard schemes and print the comparison")
		frames   = flag.Int("frames", 120, "number of video frames to synthesize")
		width    = flag.Int("width", 320, "frame width (multiple of the mab size)")
		height   = flag.Int("height", 180, "frame height (multiple of the mab size)")
		batch    = flag.Int("batch", mach.DefaultBatch, "batch depth for batching schemes")
		seed     = flag.Int64("seed", 1, "workload generator seed")
		parallel = flag.Int("parallel", 0, "worker count for the deterministic parallel engine (0/1 = sequential; results are bit-identical at any width)")
		verbose  = flag.Bool("v", false, "print the full per-run breakdown")

		net       = flag.String("net", "", "network profile enabling the delivery fault model: lte|wifi|3g|flaky (empty = perfect network)")
		bandwidth = flag.Float64("bandwidth", 0, "override link bandwidth in Mbit/s (requires -net)")
		stallRate = flag.Float64("stall-rate", -1, "override per-segment stall-injection probability [0,1] (requires -net)")
		lossRate  = flag.Float64("loss-rate", -1, "override per-attempt segment-loss probability [0,1] (requires -net)")
		netSeed   = flag.Int64("net-seed", 0, "override the delivery model seed (requires -net)")
	)
	flag.Parse()

	sc := mach.DefaultStreamConfig()
	sc.Width, sc.Height, sc.NumFrames, sc.Seed = *width, *height, *frames, *seed

	if *frames <= 0 {
		usage("-frames %d: want a positive frame count", *frames)
	}
	if *batch < 1 || *batch > 64 {
		usage("-batch %d: want a batch depth in [1,64]", *batch)
	}
	if sc.MabSize > 0 && (*width <= 0 || *height <= 0 || *width%sc.MabSize != 0 || *height%sc.MabSize != 0) {
		usage("-width/-height %dx%d: want positive multiples of the %d-pixel mab size", *width, *height, sc.MabSize)
	}
	if _, err := mach.ProfileByKey(*workload); err != nil {
		usage("-workload %s: unknown key (run `vgen -list` for the V1..V16 table)", *workload)
	}

	cfg := mach.DefaultConfig()
	if *parallel < 0 || *parallel > 256 {
		usage("-parallel %d: want a worker count in [0,256]", *parallel)
	}
	cfg.Parallel = *parallel
	if *net != "" {
		d, err := mach.DeliveryByName(*net)
		if err != nil {
			usage("-net %s: %v", *net, err)
		}
		if *bandwidth != 0 {
			if *bandwidth < 0 {
				usage("-bandwidth %g: want Mbit/s > 0", *bandwidth)
			}
			d.BandwidthBps = *bandwidth * 1e6 / 8
		}
		if *stallRate >= 0 {
			if *stallRate > 1 {
				usage("-stall-rate %g: want a probability in [0,1]", *stallRate)
			}
			d.StallRate = *stallRate
		}
		if *lossRate >= 0 {
			if *lossRate > 1 {
				usage("-loss-rate %g: want a probability in [0,1]", *lossRate)
			}
			d.LossRate = *lossRate
		}
		if *netSeed != 0 {
			d.Seed = *netSeed
		}
		cfg.Delivery = d
	} else if *bandwidth != 0 || *stallRate >= 0 || *lossRate >= 0 || *netSeed != 0 {
		usage("-bandwidth/-stall-rate/-loss-rate/-net-seed need -net to select a profile")
	}

	// Resolve the scheme before synthesis so a typo fails fast.
	var s mach.Scheme
	if !*all {
		var err error
		if s, err = schemeByName(*scheme, *batch); err != nil {
			usage("-scheme %s: %v", *scheme, err)
		}
	}

	fmt.Fprintf(os.Stderr, "synthesizing %s (%d frames at %dx%d)...\n", *workload, *frames, *width, *height)
	tr, err := mach.BuildTrace(*workload, sc)
	if err != nil {
		fatal(err)
	}

	if *all {
		results, err := mach.RunStandard(tr, cfg)
		if err != nil {
			fatal(err)
		}
		base := results[0]
		hdr := []string{"scheme", "mJ/frame", "norm", "drops", "S3%", "mem-acc", "match%"}
		if cfg.Delivery.Enabled {
			hdr = append(hdr, "rebuf", "rebuf-ms", "retries", "radio-mJ")
		}
		tb := stats.NewTable(hdr...)
		for _, r := range results {
			row := []any{r.Scheme.Name,
				fmt.Sprintf("%.2f", 1e3*r.EnergyPerFrame()),
				fmt.Sprintf("%.3f", r.NormalizedTo(base)),
				r.Drops,
				fmt.Sprintf("%.1f", 100*r.S3Residency()),
				r.Mem.Accesses(),
				fmt.Sprintf("%.1f", 100*r.Mach.MatchRate())}
			if cfg.Delivery.Enabled {
				row = append(row, r.Rebuffers,
					fmt.Sprintf("%.1f", r.RebufferTime.Milliseconds()),
					r.Net.Retries,
					fmt.Sprintf("%.2f", 1e3*r.Radio.TotalEnergy()))
			}
			tb.AddRow(row...)
		}
		fmt.Print(tb)
		if *verbose {
			for _, r := range results {
				fmt.Println()
				fmt.Print(r)
			}
		}
		return
	}

	r, err := mach.Run(tr, s, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Print(r)
	_ = verbose
}

func schemeByName(name string, batch int) (mach.Scheme, error) {
	switch strings.ToLower(name) {
	case "baseline", "l":
		return mach.Baseline(), nil
	case "batching", "b":
		return mach.Batching(batch), nil
	case "racing", "r":
		return mach.Racing(), nil
	case "race-to-sleep", "rts", "s":
		return mach.RaceToSleep(batch), nil
	case "mab", "m":
		return mach.MAB(batch), nil
	case "gab", "g":
		return mach.GAB(batch), nil
	case "gab-nodc":
		return mach.GABNoDisplayOpt(batch), nil
	default:
		return mach.Scheme{}, fmt.Errorf("unknown scheme %q (want baseline|batching|racing|race-to-sleep|mab|gab|gab-nodc)", name)
	}
}

// usage reports an invalid invocation and exits with the usage code so
// scripts can distinguish operator error from model failure.
func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "machsim: "+format+"\n", args...)
	fmt.Fprintln(os.Stderr, "run `machsim -h` for flag documentation")
	os.Exit(exitUsage)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "machsim:", err)
	os.Exit(exitErr)
}
