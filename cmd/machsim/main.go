// Command machsim runs one workload through one scheme (or all six Fig 11
// schemes) and prints the timing/energy report.
//
// Examples:
//
//	machsim -workload V1 -scheme gab -frames 120
//	machsim -workload V8 -all -frames 240 -width 640 -height 360
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mach"
	"mach/internal/stats"
)

func main() {
	var (
		workload = flag.String("workload", "V1", "workload key (V1..V16)")
		scheme   = flag.String("scheme", "gab", "scheme: baseline|batching|racing|race-to-sleep|mab|gab")
		all      = flag.Bool("all", false, "run all six standard schemes and print the comparison")
		frames   = flag.Int("frames", 120, "number of video frames to synthesize")
		width    = flag.Int("width", 320, "frame width (multiple of 4)")
		height   = flag.Int("height", 180, "frame height (multiple of 4)")
		batch    = flag.Int("batch", mach.DefaultBatch, "batch depth for batching schemes")
		seed     = flag.Int64("seed", 1, "workload generator seed")
		verbose  = flag.Bool("v", false, "print the full per-run breakdown")
	)
	flag.Parse()

	sc := mach.DefaultStreamConfig()
	sc.Width, sc.Height, sc.NumFrames, sc.Seed = *width, *height, *frames, *seed

	fmt.Fprintf(os.Stderr, "synthesizing %s (%d frames at %dx%d)...\n", *workload, *frames, *width, *height)
	tr, err := mach.BuildTrace(*workload, sc)
	if err != nil {
		fatal(err)
	}
	cfg := mach.DefaultConfig()

	if *all {
		results, err := mach.RunStandard(tr, cfg)
		if err != nil {
			fatal(err)
		}
		base := results[0]
		tb := stats.NewTable("scheme", "mJ/frame", "norm", "drops", "S3%", "mem-acc", "match%")
		for _, r := range results {
			tb.AddRow(r.Scheme.Name,
				fmt.Sprintf("%.2f", 1e3*r.EnergyPerFrame()),
				fmt.Sprintf("%.3f", r.NormalizedTo(base)),
				r.Drops,
				fmt.Sprintf("%.1f", 100*r.S3Residency()),
				r.Mem.Accesses(),
				fmt.Sprintf("%.1f", 100*r.Mach.MatchRate()))
		}
		fmt.Print(tb)
		if *verbose {
			for _, r := range results {
				fmt.Println()
				fmt.Print(r)
			}
		}
		return
	}

	s, err := schemeByName(*scheme, *batch)
	if err != nil {
		fatal(err)
	}
	r, err := mach.Run(tr, s, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Print(r)
	_ = verbose
}

func schemeByName(name string, batch int) (mach.Scheme, error) {
	switch strings.ToLower(name) {
	case "baseline", "l":
		return mach.Baseline(), nil
	case "batching", "b":
		return mach.Batching(batch), nil
	case "racing", "r":
		return mach.Racing(), nil
	case "race-to-sleep", "rts", "s":
		return mach.RaceToSleep(batch), nil
	case "mab", "m":
		return mach.MAB(batch), nil
	case "gab", "g":
		return mach.GAB(batch), nil
	case "gab-nodc":
		return mach.GABNoDisplayOpt(batch), nil
	default:
		return mach.Scheme{}, fmt.Errorf("unknown scheme %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "machsim:", err)
	os.Exit(1)
}
