// Command machsim runs one workload through one scheme (or all six Fig 11
// schemes) and prints the timing/energy report.
//
// Examples:
//
//	machsim -workload V1 -scheme gab -frames 120
//	machsim -workload V8 -all -frames 240 -width 640 -height 360
//	machsim -workload V3 -scheme rts -net flaky -stall-rate 0.2 -net-seed 7
//	machsim -workload V3 -scheme rts -net lte -bandwidth 1.6 -abr buffer
//	machsim -workload V3 -scheme gab -net lte -sessions 4 -abr throughput
//	machsim -workload V1 -frames 2000 -checkpoint run.mckp -checkpoint-every 64
//	machsim -workload V1 -frames 2000 -checkpoint run.mckp -resume
//
// Long runs can be made crash-safe with -checkpoint: the run state is
// written atomically every -checkpoint-every frames and once more on
// SIGINT/SIGTERM, and -resume continues from the file to a bit-identical
// result (missing file = fresh start; damaged file = hard error).
//
// Exit codes: 0 success, 1 model/runtime error (including a corrupt
// checkpoint), 2 invalid usage (bad flag values such as a width that is not
// a multiple of the mab size, an unknown workload/scheme key, or an unknown
// network profile), 3 interrupted by SIGINT/SIGTERM with a final checkpoint
// flushed — rerun with -resume to continue.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"os/signal"
	"syscall"

	"mach"
	"mach/internal/stats"
)

const (
	exitErr         = 1
	exitUsage       = 2
	exitInterrupted = 3
)

func main() {
	var (
		workload = flag.String("workload", "V1", "workload key (V1..V16)")
		scheme   = flag.String("scheme", "gab", "scheme: baseline|batching|racing|race-to-sleep|mab|gab")
		all      = flag.Bool("all", false, "run all six standard schemes and print the comparison")
		frames   = flag.Int("frames", 120, "number of video frames to synthesize")
		width    = flag.Int("width", 320, "frame width (multiple of the mab size)")
		height   = flag.Int("height", 180, "frame height (multiple of the mab size)")
		batch    = flag.Int("batch", mach.DefaultBatch, "batch depth for batching schemes")
		seed     = flag.Int64("seed", 1, "workload generator seed")
		parallel = flag.Int("parallel", 0, "worker count for the deterministic parallel engine (0/1 = sequential; results are bit-identical at any width)")
		verbose  = flag.Bool("v", false, "print the full per-run breakdown")

		ckptPath  = flag.String("checkpoint", "", "checkpoint file: written atomically every -checkpoint-every frames and on SIGINT/SIGTERM, removed on success (single-scheme runs only)")
		ckptEvery = flag.Int("checkpoint-every", 32, "frames between periodic checkpoints (with -checkpoint)")
		resume    = flag.Bool("resume", false, "resume from -checkpoint; a missing file starts fresh, a damaged one is a hard error")
		canonical = flag.Bool("canonical", false, "print the canonical JSON result instead of the report (stable across runs; used to prove resume equivalence)")

		net       = flag.String("net", "", "network profile enabling the delivery fault model: lte|wifi|3g|flaky (empty = perfect network)")
		bandwidth = flag.Float64("bandwidth", 0, "override link bandwidth in Mbit/s (requires -net)")
		stallRate = flag.Float64("stall-rate", -1, "override per-segment stall-injection probability [0,1] (requires -net)")
		lossRate  = flag.Float64("loss-rate", -1, "override per-attempt segment-loss probability [0,1] (requires -net)")
		netSeed   = flag.Int64("net-seed", 0, "override the delivery model seed (requires -net)")

		abrPolicy   = flag.String("abr", "", "adaptive-bitrate policy: fixed|buffer|throughput (requires -net; empty = native stream only)")
		ladderPath  = flag.String("ladder", "", "MACHLADDER manifest file overriding the built-in bitrate ladder (requires -abr)")
		sessions    = flag.Int("sessions", 0, "share the link with this many sessions through a contended bottleneck (requires -net; 0/1 = dedicated link)")
		contendSeed = flag.Int64("contend-seed", 0, "override the bottleneck contention seed (requires -sessions)")
	)
	flag.Parse()

	sc := mach.DefaultStreamConfig()
	sc.Width, sc.Height, sc.NumFrames, sc.Seed = *width, *height, *frames, *seed

	if *frames <= 0 {
		usage("-frames %d: want a positive frame count", *frames)
	}
	if *batch < 1 || *batch > 64 {
		usage("-batch %d: want a batch depth in [1,64]", *batch)
	}
	if sc.MabSize > 0 && (*width <= 0 || *height <= 0 || *width%sc.MabSize != 0 || *height%sc.MabSize != 0) {
		usage("-width/-height %dx%d: want positive multiples of the %d-pixel mab size", *width, *height, sc.MabSize)
	}
	if _, err := mach.ProfileByKey(*workload); err != nil {
		usage("-workload %s: unknown key (run `vgen -list` for the V1..V16 table)", *workload)
	}

	cfg := mach.DefaultConfig()
	if *parallel < 0 || *parallel > 256 {
		usage("-parallel %d: want a worker count in [0,256]", *parallel)
	}
	cfg.Parallel = *parallel
	if *net != "" {
		d, err := mach.DeliveryByName(*net)
		if err != nil {
			usage("-net %s: %v", *net, err)
		}
		if *bandwidth != 0 {
			if *bandwidth < 0 {
				usage("-bandwidth %g: want Mbit/s > 0", *bandwidth)
			}
			d.BandwidthBps = *bandwidth * 1e6 / 8
		}
		if *stallRate >= 0 {
			if *stallRate > 1 {
				usage("-stall-rate %g: want a probability in [0,1]", *stallRate)
			}
			d.StallRate = *stallRate
		}
		if *lossRate >= 0 {
			if *lossRate > 1 {
				usage("-loss-rate %g: want a probability in [0,1]", *lossRate)
			}
			d.LossRate = *lossRate
		}
		if *netSeed != 0 {
			d.Seed = *netSeed
		}
		if *sessions < 0 {
			usage("-sessions %d: want a non-negative session count", *sessions)
		}
		if *sessions > 1 {
			d.Bottleneck = mach.Bottleneck{Sessions: *sessions, Seed: *contendSeed}
		} else if *contendSeed != 0 {
			usage("-contend-seed needs -sessions > 1 to enable the shared bottleneck")
		}
		cfg.Delivery = d
		if *abrPolicy != "" {
			if _, err := mach.ABRPolicies(*abrPolicy); err != nil {
				usage("-abr %s: %v", *abrPolicy, err)
			}
			cfg.ABR = mach.ABRConfig{Enabled: true, Policy: *abrPolicy, FixedRung: -1}
			if *ladderPath != "" {
				l, err := mach.LoadLadder(*ladderPath)
				if err != nil {
					fatal(err)
				}
				cfg.ABR.Ladder = l
			}
		} else if *ladderPath != "" {
			usage("-ladder needs -abr to enable the adaptive-bitrate controller")
		}
	} else if *bandwidth != 0 || *stallRate >= 0 || *lossRate >= 0 || *netSeed != 0 ||
		*abrPolicy != "" || *ladderPath != "" || *sessions != 0 || *contendSeed != 0 {
		usage("-bandwidth/-stall-rate/-loss-rate/-net-seed/-abr/-ladder/-sessions/-contend-seed need -net to select a profile")
	}

	if *all && (*ckptPath != "" || *resume || *canonical) {
		usage("-checkpoint/-resume/-canonical apply to a single-scheme run, not -all")
	}
	if *resume && *ckptPath == "" {
		usage("-resume needs -checkpoint to name the file")
	}
	if *ckptEvery < 1 {
		usage("-checkpoint-every %d: want a positive frame interval", *ckptEvery)
	}

	// Resolve the scheme before synthesis so a typo fails fast.
	var s mach.Scheme
	if !*all {
		var err error
		if s, err = mach.SchemeByName(*scheme, *batch); err != nil {
			usage("-scheme %s: %v", *scheme, err)
		}
	}

	fmt.Fprintf(os.Stderr, "synthesizing %s (%d frames at %dx%d)...\n", *workload, *frames, *width, *height)
	tr, err := mach.BuildTrace(*workload, sc)
	if err != nil {
		fatal(err)
	}

	if *all {
		results, err := mach.RunStandard(tr, cfg)
		if err != nil {
			fatal(err)
		}
		base := results[0]
		hdr := []string{"scheme", "mJ/frame", "norm", "drops", "S3%", "mem-acc", "match%"}
		if cfg.Delivery.Enabled {
			hdr = append(hdr, "rebuf", "rebuf-ms", "retries", "radio-mJ")
		}
		if cfg.ABR.Enabled {
			hdr = append(hdr, "switches", "min-rung")
		}
		tb := stats.NewTable(hdr...)
		for _, r := range results {
			row := []any{r.Scheme.Name,
				fmt.Sprintf("%.2f", 1e3*r.EnergyPerFrame()),
				fmt.Sprintf("%.3f", r.NormalizedTo(base)),
				r.Drops,
				fmt.Sprintf("%.1f", 100*r.S3Residency()),
				r.Mem.Accesses(),
				fmt.Sprintf("%.1f", 100*r.Mach.MatchRate())}
			if cfg.Delivery.Enabled {
				row = append(row, r.Rebuffers,
					fmt.Sprintf("%.1f", r.RebufferTime.Milliseconds()),
					r.Net.Retries,
					fmt.Sprintf("%.2f", 1e3*r.Radio.TotalEnergy()))
			}
			if cfg.ABR.Enabled {
				row = append(row, r.ABR.Switches, r.ABR.MinRung)
			}
			tb.AddRow(row...)
		}
		fmt.Print(tb)
		if *verbose {
			for _, r := range results {
				fmt.Println()
				fmt.Print(r)
			}
		}
		return
	}

	// Single-scheme path: drive the step machine directly so the run can be
	// checkpointed, interrupted, and resumed.
	var runner *mach.Runner
	if *resume {
		runner, err = mach.LoadCheckpoint(*ckptPath, tr, s, cfg)
		switch {
		case err == nil:
			fmt.Fprintf(os.Stderr, "machsim: resumed %s from frame %d/%d\n",
				*ckptPath, runner.Frame(), len(tr.Frames))
		case errors.Is(err, fs.ErrNotExist):
			fmt.Fprintf(os.Stderr, "machsim: no checkpoint at %s, starting fresh\n", *ckptPath)
			runner = nil
		default:
			fatal(err)
		}
	}
	if runner == nil {
		if runner, err = mach.NewRunner(tr, s, cfg); err != nil {
			fatal(err)
		}
	}

	// With checkpointing on, SIGINT/SIGTERM means "flush state and hand the
	// terminal back": the signal is checked at the next frame boundary, a
	// final checkpoint is written, and the process exits with a code the
	// harness can tell apart from success and failure.
	sigc := make(chan os.Signal, 1)
	if *ckptPath != "" {
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	}
	for !runner.Done() {
		select {
		case sig := <-sigc:
			if err := runner.SaveCheckpoint(*ckptPath); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "machsim: %v at frame %d/%d; checkpoint written to %s (resume with -resume)\n",
				sig, runner.Frame(), len(tr.Frames), *ckptPath)
			os.Exit(exitInterrupted)
		default:
		}
		runner.StepFrame()
		if *ckptPath != "" && runner.Frame()%*ckptEvery == 0 {
			if err := runner.SaveCheckpoint(*ckptPath); err != nil {
				fatal(err)
			}
		}
	}
	r, err := runner.Finish()
	if err != nil {
		fatal(err)
	}
	if *ckptPath != "" {
		signal.Stop(sigc)
		// The run completed; a stale checkpoint would only invite resuming
		// a finished run.
		if err := os.Remove(*ckptPath); err != nil && !errors.Is(err, fs.ErrNotExist) {
			fatal(err)
		}
	}
	if *canonical {
		b, err := r.CanonicalJSON()
		if err != nil {
			fatal(err)
		}
		if _, err := os.Stdout.Write(b); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(r)
	_ = verbose
}

// usage reports an invalid invocation and exits with the usage code so
// scripts can distinguish operator error from model failure.
func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "machsim: "+format+"\n", args...)
	fmt.Fprintln(os.Stderr, "run `machsim -h` for flag documentation")
	os.Exit(exitUsage)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "machsim:", err)
	os.Exit(exitErr)
}
