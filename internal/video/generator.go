package video

import (
	"fmt"
	"math/rand"

	"mach/internal/codec"
)

// Generator produces the raw (pre-encode) frames of one synthetic workload.
// It is deterministic for a given (profile, size, seed) triple.
type Generator struct {
	prof Profile
	w, h int
	rng  *rand.Rand

	frameIdx  int
	rampDrift int // per-frame base offset of the ramp band
	sc        scene
}

// scene is the content state between scene cuts.
type scene struct {
	flatColors [][3]byte
	// block-ramp parameters: per-mab base stepping (zero-gradient mabs with
	// varying bases — the pure-colour content that makes gabs dominate).
	rampBase  [3]int
	rampStepX int
	rampStepY int

	tile    []byte // mosaic texture tile, period x period RGB
	detail  []byte // static high-frequency band content, regenerated on cuts
	detailW int
	detailH int
	dup     []byte // half-height patch drawn twice (long-distance repeats)
	dupH    int    // height of one copy
	sprites []sprite
}

type sprite struct {
	x, y   int
	vx, vy int
	w, h   int
	color  [3]byte
}

// bandLayout describes the vertical partition of the frame.
type bandLayout struct {
	flatH, rampH, texH, noiseH, dupH, detailH int
}

// NewGenerator returns a generator for prof at w x h; it panics on invalid
// profiles (a construction-time bug) and errors on invalid sizes.
func NewGenerator(prof Profile, w, h int, seed int64) (*Generator, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if w%4 != 0 || h%4 != 0 || w <= 0 || h <= 0 {
		return nil, fmt.Errorf("video: size %dx%d not a positive multiple of 4", w, h)
	}
	g := &Generator{prof: prof, w: w, h: h, rng: rand.New(rand.NewSource(seed))}
	g.reseed()
	return g, nil
}

// Profile returns the generator's workload profile.
func (g *Generator) Profile() Profile { return g.prof }

// layout rounds band heights to mab multiples; detail absorbs the remainder.
func (g *Generator) layout() bandLayout {
	quant := func(f float64) int {
		px := int(f*float64(g.h)/4+0.5) * 4
		if px < 0 {
			px = 0
		}
		return px
	}
	var l bandLayout
	l.flatH = quant(g.prof.FlatFraction)
	l.rampH = quant(g.prof.RampFraction)
	l.texH = quant(g.prof.TextureFraction)
	l.noiseH = quant(g.prof.NoiseFraction)
	// The dup band holds two identical copies, so it must split evenly
	// into two mab-aligned halves.
	l.dupH = quant(g.prof.DupFraction) / 8 * 8
	used := l.flatH + l.rampH + l.texH + l.noiseH + l.dupH
	if used > g.h {
		// Shrink the largest bands until the layout fits.
		for used > g.h {
			switch {
			case l.dupH >= l.noiseH && l.dupH >= l.flatH && l.dupH >= l.rampH && l.dupH >= l.texH:
				l.dupH -= 8
			case l.noiseH >= l.flatH && l.noiseH >= l.rampH && l.noiseH >= l.texH:
				l.noiseH -= 4
			case l.flatH >= l.rampH && l.flatH >= l.texH:
				l.flatH -= 4
			case l.texH >= l.rampH:
				l.texH -= 4
			default:
				l.rampH -= 4
			}
			used = l.flatH + l.rampH + l.texH + l.noiseH + l.dupH
		}
	}
	l.detailH = g.h - used
	return l
}

// reseed regenerates all per-scene content (a scene cut).
func (g *Generator) reseed() {
	p := g.prof
	g.sc.flatColors = g.sc.flatColors[:0]
	for i := 0; i < p.FlatColors; i++ {
		g.sc.flatColors = append(g.sc.flatColors, [3]byte{
			byte(32 + g.rng.Intn(192)),
			byte(32 + g.rng.Intn(192)),
			byte(32 + g.rng.Intn(192)),
		})
	}
	for c := 0; c < 3; c++ {
		g.sc.rampBase[c] = 40 + g.rng.Intn(60)
	}
	g.sc.rampStepX = 2 + g.rng.Intn(4)
	g.sc.rampStepY = 1 + g.rng.Intn(3)

	// Mosaic texture tile: period x period of solid 4x4 cells so it encodes
	// exactly and repeats exactly.
	t := p.TexturePeriod
	g.sc.tile = make([]byte, t*t*3)
	for cy := 0; cy < t/4; cy++ {
		for cx := 0; cx < t/4; cx++ {
			col := [3]byte{
				byte(g.rng.Intn(256)),
				byte(g.rng.Intn(256)),
				byte(g.rng.Intn(256)),
			}
			for dy := 0; dy < 4; dy++ {
				for dx := 0; dx < 4; dx++ {
					o := ((cy*4+dy)*t + cx*4 + dx) * 3
					g.sc.tile[o], g.sc.tile[o+1], g.sc.tile[o+2] = col[0], col[1], col[2]
				}
			}
		}
	}

	// Static detail: unique-per-mab high-frequency content that persists
	// until the next cut.
	l := g.layout()
	g.sc.detailW, g.sc.detailH = g.w, l.detailH
	g.sc.detail = make([]byte, g.w*l.detailH*3)
	amp := p.DetailAmplitude
	for i := range g.sc.detail {
		g.sc.detail[i] = noiseByte(g.rng, amp)
	}

	// Dup patch: one static random half-band, drawn twice per frame. The
	// two copies are exact repeats whose distance exceeds MACH capacity.
	g.sc.dupH = l.dupH / 2
	g.sc.dup = make([]byte, g.w*g.sc.dupH*3)
	for i := range g.sc.dup {
		g.sc.dup[i] = noiseByte(g.rng, amp)
	}

	// Sprites: flat rectangles, mab-aligned sizes, speeds within the
	// encoder's search radius.
	g.sc.sprites = g.sc.sprites[:0]
	for i := 0; i < p.NumSprites; i++ {
		w := (2 + g.rng.Intn(4)) * 4
		h := (2 + g.rng.Intn(4)) * 4
		sp := sprite{
			x: g.rng.Intn(max(1, g.w-w)),
			y: g.rng.Intn(max(1, g.h-h)),
			w: w, h: h,
			color: [3]byte{byte(g.rng.Intn(256)), byte(g.rng.Intn(256)), byte(g.rng.Intn(256))},
		}
		for sp.vx == 0 && sp.vy == 0 {
			sp.vx = g.rng.Intn(2*p.SpriteSpeed+1) - p.SpriteSpeed
			sp.vy = g.rng.Intn(2*p.SpriteSpeed+1) - p.SpriteSpeed
		}
		g.sc.sprites = append(g.sc.sprites, sp)
	}
}

// clampColor keeps ramp colours off the 0/255 rails so the quantized codec
// reconstructs them exactly (constant residuals are lossless).
func clampColor(v int) byte {
	if v < 8 {
		v = 8
	}
	if v > 247 {
		v = 247
	}
	return byte(v)
}

func noiseByte(rng *rand.Rand, amp float64) byte {
	v := 128 + int(float64(rng.Intn(256)-128)*amp)
	if v < 0 {
		v = 0
	}
	if v > 255 {
		v = 255
	}
	return byte(v)
}

// Frame synthesizes the next raw frame in display order.
func (g *Generator) Frame() *codec.Frame {
	p := g.prof
	if p.SceneCutEvery > 0 && g.frameIdx > 0 && g.frameIdx%p.SceneCutEvery == 0 {
		g.reseed()
	}
	f := codec.NewFrame(g.w, g.h)
	l := g.layout()
	y := 0

	// Flat band: vertical patches of solid colour.
	if l.flatH > 0 {
		patchW := g.w / len(g.sc.flatColors)
		for yy := y; yy < y+l.flatH; yy++ {
			for x := 0; x < g.w; x++ {
				pi := min(x/max(4, patchW), len(g.sc.flatColors)-1)
				c := g.sc.flatColors[pi]
				f.Set(x, yy, c[0], c[1], c[2])
			}
		}
		y += l.flatH
	}

	// Block-ramp band: solid 4x4 mabs whose base steps across the band,
	// drifting by one level per frame (a slow animated gradient). Every
	// mab's colour triple is unique within the band and changes every
	// frame, so mab-mode matching finds nothing here — while gab mode maps
	// them all onto the zero gradient regardless of drift. This band is
	// the content behind the mab-vs-gab gap (Fig 9).
	if l.rampH > 0 {
		drift := g.rampDrift % 64
		for my := 0; my < l.rampH/4; my++ {
			for mx := 0; mx < g.w/4; mx++ {
				col := [3]byte{
					clampColor(g.sc.rampBase[0] + mx*2 + drift),
					clampColor(g.sc.rampBase[1] + my*g.sc.rampStepY + drift),
					clampColor(g.sc.rampBase[2] + mx + my*2 + drift),
				}
				for dy := 0; dy < 4; dy++ {
					for dx := 0; dx < 4; dx++ {
						f.Set(mx*4+dx, y+my*4+dy, col[0], col[1], col[2])
					}
				}
			}
		}
		y += l.rampH
	}

	// Texture band: the mosaic tile repeated.
	if l.texH > 0 {
		t := p.TexturePeriod
		for yy := 0; yy < l.texH; yy++ {
			for x := 0; x < g.w; x++ {
				o := ((yy%t)*t + x%t) * 3
				f.Set(x, y+yy, g.sc.tile[o], g.sc.tile[o+1], g.sc.tile[o+2])
			}
		}
		y += l.texH
	}

	// Noise band: regenerated every frame; defeats every predictor.
	if l.noiseH > 0 {
		amp := p.DetailAmplitude
		for yy := y; yy < y+l.noiseH; yy++ {
			for x := 0; x < g.w; x++ {
				f.Set(x, yy, noiseByte(g.rng, amp), noiseByte(g.rng, amp), noiseByte(g.rng, amp))
			}
		}
		y += l.noiseH
	}

	// Detail band: static high-frequency content.
	if l.detailH > 0 {
		for yy := 0; yy < l.detailH; yy++ {
			row := yy * g.w * 3
			dst := f.Offset(0, y+yy)
			copy(f.Pix[dst:dst+g.w*3], g.sc.detail[row:row+g.w*3])
		}
		y += l.detailH
	}

	// Dup band: the same static patch twice.
	if l.dupH > 0 {
		for copyIdx := 0; copyIdx < 2; copyIdx++ {
			for yy := 0; yy < g.sc.dupH; yy++ {
				row := yy * g.w * 3
				dst := f.Offset(0, y+yy)
				copy(f.Pix[dst:dst+g.w*3], g.sc.dup[row:row+g.w*3])
			}
			y += g.sc.dupH
		}
	}

	// Sprites on top, then advance them.
	for i := range g.sc.sprites {
		sp := &g.sc.sprites[i]
		for dy := 0; dy < sp.h; dy++ {
			yy := sp.y + dy
			if yy < 0 || yy >= g.h {
				continue
			}
			for dx := 0; dx < sp.w; dx++ {
				xx := sp.x + dx
				if xx < 0 || xx >= g.w {
					continue
				}
				f.Set(xx, yy, sp.color[0], sp.color[1], sp.color[2])
			}
		}
		sp.x += sp.vx
		sp.y += sp.vy
		if sp.x < 0 || sp.x+sp.w > g.w {
			sp.vx = -sp.vx
			sp.x += 2 * sp.vx
		}
		if sp.y < 0 || sp.y+sp.h > g.h {
			sp.vy = -sp.vy
			sp.y += 2 * sp.vy
		}
	}

	g.frameIdx++
	g.rampDrift++
	return f
}
