package video

import (
	"testing"

	"mach/internal/codec"
)

func TestProfilesValid(t *testing.T) {
	ps := Profiles()
	if len(ps) != 16 {
		t.Fatalf("profiles = %d", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Key, err)
		}
		if seen[p.Key] {
			t.Errorf("duplicate key %s", p.Key)
		}
		seen[p.Key] = true
		if p.DetailFraction() < 0 {
			t.Errorf("%s: negative detail fraction", p.Key)
		}
		if p.TableFrames <= 0 {
			t.Errorf("%s: table frames %d", p.Key, p.TableFrames)
		}
	}
}

func TestProfileByKey(t *testing.T) {
	p, err := ProfileByKey("V8")
	if err != nil || p.Name != "007 Skyfall" {
		t.Fatalf("V8 lookup: %v %v", p, err)
	}
	if _, err := ProfileByKey("V99"); err == nil {
		t.Fatal("V99 should not exist")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ProfileByKey("V1")
	g1, err := NewGenerator(p, 64, 48, 7)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(p, 64, 48, 7)
	for i := 0; i < 5; i++ {
		f1, f2 := g1.Frame(), g2.Frame()
		for j := range f1.Pix {
			if f1.Pix[j] != f2.Pix[j] {
				t.Fatalf("frame %d differs at byte %d", i, j)
			}
		}
	}
	// A different seed must differ somewhere.
	g3, _ := NewGenerator(p, 64, 48, 8)
	f1, f3 := g1.Frame(), g3.Frame()
	same := true
	for j := range f1.Pix {
		if f1.Pix[j] != f3.Pix[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical frames")
	}
}

func TestGeneratorRejectsBadSize(t *testing.T) {
	p, _ := ProfileByKey("V1")
	if _, err := NewGenerator(p, 63, 48, 1); err == nil {
		t.Fatal("width not multiple of 4 should fail")
	}
	if _, err := NewGenerator(p, 0, 48, 1); err == nil {
		t.Fatal("zero width should fail")
	}
}

func TestSceneCutChangesContent(t *testing.T) {
	p, _ := ProfileByKey("V5") // cuts every 36 frames
	p.SceneCutEvery = 3
	p.NumSprites = 0
	p.NoiseFraction = 0 // make frames static apart from cuts
	// No ramp either: the ramp band drifts every frame by design.
	p.FlatFraction, p.RampFraction, p.TextureFraction, p.DupFraction = 0.5, 0, 0.5, 0
	g, err := NewGenerator(p, 64, 48, 1)
	if err != nil {
		t.Fatal(err)
	}
	f0 := g.Frame()
	f1 := g.Frame()
	diff01 := 0
	for j := range f0.Pix {
		if f0.Pix[j] != f1.Pix[j] {
			diff01++
		}
	}
	if diff01 != 0 {
		t.Fatalf("static frames within a scene differ in %d bytes", diff01)
	}
	g.Frame()       // frame 2
	f3 := g.Frame() // frame 3: scene cut
	diff := 0
	for j := range f0.Pix {
		if f0.Pix[j] != f3.Pix[j] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("scene cut did not change content")
	}
}

func TestStaticProfileEncodesCheaply(t *testing.T) {
	// A mostly static, flat scene must produce far smaller P frames than
	// I frames — the variability the race-to-sleep analysis relies on.
	p, _ := ProfileByKey("V4")
	st, err := Synthesize(p, StreamConfig{Width: 64, Height: 48, NumFrames: 12, Seed: 2, MabSize: 4, Quant: 8})
	if err != nil {
		t.Fatal(err)
	}
	var iBytes, pBytes, iN, pN int
	for _, ef := range st.Encoded {
		switch ef.Type {
		case codec.FrameI:
			iBytes += ef.SizeBytes()
			iN++
		case codec.FrameP:
			pBytes += ef.SizeBytes()
			pN++
		}
	}
	if iN == 0 || pN == 0 {
		t.Fatalf("frame mix I=%d P=%d", iN, pN)
	}
	if float64(pBytes)/float64(pN) >= float64(iBytes)/float64(iN) {
		t.Fatalf("P frames (%d avg) should be smaller than I frames (%d avg)",
			pBytes/pN, iBytes/iN)
	}
}

func TestSynthesizeRoundTripsThroughDecoder(t *testing.T) {
	p, _ := ProfileByKey("V9")
	cfg := StreamConfig{Width: 64, Height: 48, NumFrames: 10, Seed: 3, MabSize: 4, Quant: 8}
	st, err := Synthesize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Encoded) != 10 {
		t.Fatalf("encoded frames = %d", len(st.Encoded))
	}
	dec, err := codec.NewDecoder(st.Params)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, ef := range st.Encoded {
		fr, work, err := dec.Decode(ef)
		if err != nil {
			t.Fatalf("decode %d: %v", ef.DisplayIndex, err)
		}
		if fr.W != 64 || fr.H != 48 {
			t.Fatalf("decoded size %dx%d", fr.W, fr.H)
		}
		if len(work.Mabs) != st.Params.MabsPerFrame() {
			t.Fatalf("mab works = %d", len(work.Mabs))
		}
		seen[ef.DisplayIndex] = true
	}
	for i := 0; i < 10; i++ {
		if !seen[i] {
			t.Fatalf("display index %d missing", i)
		}
	}
	if st.TotalEncodedBytes() <= 0 {
		t.Fatal("stream should have bytes")
	}
}

func TestBFrameProfileProducesBFrames(t *testing.T) {
	p, _ := ProfileByKey("V5") // BFrames: 1
	st, err := Synthesize(p, StreamConfig{Width: 32, Height: 32, NumFrames: 9, Seed: 1, MabSize: 4, Quant: 8})
	if err != nil {
		t.Fatal(err)
	}
	hasB := false
	for _, ef := range st.Encoded {
		if ef.Type == codec.FrameB {
			hasB = true
		}
	}
	if !hasB {
		t.Fatal("V5 should emit B frames")
	}
}

func TestSynthesizeValidation(t *testing.T) {
	p, _ := ProfileByKey("V1")
	if _, err := Synthesize(p, StreamConfig{Width: 64, Height: 48, NumFrames: 0}); err == nil {
		t.Fatal("zero frames should fail")
	}
}

func TestLayoutCoversFrame(t *testing.T) {
	for _, p := range Profiles() {
		g, err := NewGenerator(p, 320, 180, 1)
		if err != nil {
			t.Fatalf("%s: %v", p.Key, err)
		}
		l := g.layout()
		total := l.flatH + l.rampH + l.texH + l.noiseH + l.dupH + l.detailH
		if total != 180 {
			t.Errorf("%s: bands cover %d of 180", p.Key, total)
		}
		for _, h := range []int{l.flatH, l.rampH, l.texH, l.noiseH, l.dupH, l.detailH} {
			if h%4 != 0 || h < 0 {
				t.Errorf("%s: band height %d not a non-negative multiple of 4", p.Key, h)
			}
		}
	}
}
