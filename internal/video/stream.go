package video

import (
	"fmt"

	"mach/internal/codec"
)

// StreamConfig controls synthesis of one workload stream.
type StreamConfig struct {
	Width, Height int
	NumFrames     int
	Seed          int64
	MabSize       int
	Quant         int32
}

// DefaultStreamConfig returns the experiments' default scale: 320x180 (the
// paper's 3840x2160 downscaled 12x per axis so full sweeps run in seconds;
// all reported results are ratios, see DESIGN.md), 4x4 mabs, quantizer 8.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{Width: 320, Height: 180, NumFrames: 120, Seed: 1, MabSize: 4, Quant: 8}
}

// Validate reports malformed configurations.
func (c StreamConfig) Validate() error {
	if c.NumFrames <= 0 {
		return fmt.Errorf("video: NumFrames %d", c.NumFrames)
	}
	return nil
}

// Stream is one synthesized, encoded workload: the decode-order compressed
// frames a streaming app would buffer in memory (§2.1).
type Stream struct {
	Profile Profile
	Params  codec.Params
	Encoded []*codec.EncodedFrame
}

// TotalEncodedBytes returns the buffered size of the whole stream.
func (s *Stream) TotalEncodedBytes() int {
	n := 0
	for _, ef := range s.Encoded {
		n += ef.SizeBytes()
	}
	return n
}

// Synthesize generates cfg.NumFrames frames of prof's content and encodes
// them, returning the decode-order stream.
func Synthesize(prof Profile, cfg StreamConfig) (*Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	gen, err := NewGenerator(prof, cfg.Width, cfg.Height, cfg.Seed)
	if err != nil {
		return nil, err
	}
	params := codec.DefaultParams(cfg.Width, cfg.Height)
	if cfg.MabSize != 0 {
		params.MabSize = cfg.MabSize
	}
	if cfg.Quant != 0 {
		params.Quant = cfg.Quant
	}
	params.GOPLength = prof.GOPLength
	params.BFrames = prof.BFrames
	enc, err := codec.NewEncoder(params)
	if err != nil {
		return nil, err
	}
	st := &Stream{Profile: prof, Params: params, Encoded: make([]*codec.EncodedFrame, 0, cfg.NumFrames)}
	for i := 0; i < cfg.NumFrames; i++ {
		efs, err := enc.Push(gen.Frame())
		if err != nil {
			return nil, err
		}
		st.Encoded = append(st.Encoded, efs...)
	}
	efs, err := enc.Flush()
	if err != nil {
		return nil, err
	}
	st.Encoded = append(st.Encoded, efs...)
	return st, nil
}
