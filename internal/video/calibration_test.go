package video

import (
	"testing"

	"mach/internal/mach"
	"mach/internal/trace"
)

// These tests pin the content calibration: the synthetic workloads must
// keep producing decoded streams whose similarity statistics stay in the
// neighbourhood of the paper's measurements (Fig 7b: 42% intra, 15% inter,
// 43% none for exact-mab matching over 16 frames). They are regression nets
// for generator changes, with deliberately wide tolerance bands.

func TestContentSimilarityCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesizes several workloads")
	}
	an := mach.NewAnalyzer(16, 4, false)
	gab := mach.NewAnalyzer(16, 4, true)
	for _, key := range []string{"V1", "V5", "V9", "V14"} {
		prof, err := ProfileByKey(key)
		if err != nil {
			t.Fatal(err)
		}
		st, err := Synthesize(prof, StreamConfig{Width: 320, Height: 180, NumFrames: 48, Seed: 2, MabSize: 4, Quant: 8})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := trace.Build(prof.Key, prof.FPS, st.Params, st.Encoded)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tr.Frames {
			an.ProcessFrame(tr.Frames[i].Decoded)
			gab.ProcessFrame(tr.Frames[i].Decoded)
		}
	}
	check := func(name string, got, lo, hi float64) {
		t.Helper()
		if got < lo || got > hi {
			t.Errorf("%s = %.1f%% outside [%.0f%%, %.0f%%]", name, 100*got, 100*lo, 100*hi)
		}
	}
	// Paper targets: 42 / 15 / 43. Bands allow for the 4-video subset.
	check("mab intra", an.IntraRate(), 0.30, 0.52)
	check("mab inter", an.InterRate(), 0.15, 0.35)
	check("mab none", an.NoMatchRate(), 0.33, 0.53)
	// gab must be strictly more matchy than mab (the ramp band).
	if gab.IntraRate() <= an.IntraRate() {
		t.Errorf("gab intra %.2f should exceed mab %.2f", gab.IntraRate(), an.IntraRate())
	}
}

// TestEncodedFrameTypeCosts pins the decode-cost structure race-to-sleep
// depends on: I frames (scene cuts, GOP starts) must carry clearly more
// entropy bits than P frames, but not so much more that one I frame stalls
// the pipeline for many periods (the drop-cascade regime).
func TestEncodedFrameTypeCosts(t *testing.T) {
	prof, _ := ProfileByKey("V9")
	st, err := Synthesize(prof, StreamConfig{Width: 320, Height: 180, NumFrames: 48, Seed: 3, MabSize: 4, Quant: 8})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Build(prof.Key, prof.FPS, st.Params, st.Encoded)
	if err != nil {
		t.Fatal(err)
	}
	var iBits, pBits, iN, pN int64
	for i := range tr.Frames {
		f := &tr.Frames[i]
		switch f.Type {
		case 0: // I
			iBits += f.Work.TotalBits
			iN++
		case 1: // P
			pBits += f.Work.TotalBits
			pN++
		}
	}
	if iN == 0 || pN == 0 {
		t.Fatalf("frame mix I=%d P=%d", iN, pN)
	}
	ratio := float64(iBits/iN) / float64(pBits/pN)
	if ratio < 1.2 || ratio > 3.5 {
		t.Fatalf("I/P bit ratio = %.2f outside [1.2, 3.5]", ratio)
	}
}
