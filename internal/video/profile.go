// Package video synthesizes the 16 workload videos of the paper's Table 1.
//
// The real videos (YouTube 4K content decoded with FFmpeg) are not
// redistributable, so each is replaced by a deterministic scene generator
// whose *decoded-content statistics* are what MACH actually consumes:
//
//   - flat regions: solid-colour areas. Their mabs are identical, producing
//     intra matches; across different colours they share the all-zero
//     gradient block, producing the gab > mab gap of Fig 9b.
//   - ramp regions: diagonal colour gradients. Each mab differs from its
//     neighbour only in base pixel, so they match as gabs but not as mabs.
//   - texture regions: a per-scene random tile repeated across the region,
//     producing intra matches at tile period.
//   - detail regions: per-scene random pixels that stay fixed between scene
//     cuts, producing inter (cross-frame) matches but no intra matches.
//   - noise regions: regenerated every frame — no matches, and the main
//     driver of per-frame decode cost (entropy bits, residual energy).
//   - sprites: moving rectangles that force motion-compensated mabs and
//     spread content across addresses while keeping it match-able by value.
//
// Scene cuts re-seed the per-scene content, which produces the expensive
// I-frames responsible for the paper's Region I/II frames (drops and short
// slacks).
package video

import "fmt"

// Profile describes one synthetic workload, mirroring a row of Table 1.
type Profile struct {
	Key         string // V1..V16
	Name        string
	Description string
	TableFrames int // frame count reported in Table 1 (documentation)

	// Area fractions; they should sum to <= 1, the remainder is detail.
	FlatFraction    float64
	RampFraction    float64
	TextureFraction float64
	NoiseFraction   float64
	// DupFraction is a band of static high-frequency content drawn twice
	// (two identical copies far apart). The repeats are exact-content
	// matches, but their reuse distance exceeds MACH's 256-entry capacity,
	// so they are visible to the ideal similarity analysis (Fig 7b) while
	// being largely lost by the real MACH (Fig 9a) — reproducing the
	// paper's gap between ideal 57% similarity and MACH's captured share.
	DupFraction float64

	FlatColors      int     // distinct flat patches
	TexturePeriod   int     // texture tile size in pixels (multiple of mab size)
	DetailAmplitude float64 // 0..1, high-frequency energy of detail/texture

	NumSprites    int
	SpriteSpeed   int // max pixels/frame of sprite motion
	SceneCutEvery int // frames between content re-seeds (0 = never)

	FPS       int
	BFrames   int
	GOPLength int
}

// Validate reports malformed profiles.
func (p Profile) Validate() error {
	sum := p.FlatFraction + p.RampFraction + p.TextureFraction + p.NoiseFraction + p.DupFraction
	if sum < 0 || sum > 1.0001 {
		return fmt.Errorf("video: %s fractions sum to %.3f", p.Key, sum)
	}
	if p.FPS <= 0 {
		return fmt.Errorf("video: %s fps %d", p.Key, p.FPS)
	}
	if p.TexturePeriod <= 0 || p.TexturePeriod%4 != 0 {
		return fmt.Errorf("video: %s texture period %d not a positive multiple of 4", p.Key, p.TexturePeriod)
	}
	if p.GOPLength < 1 {
		return fmt.Errorf("video: %s GOP %d", p.Key, p.GOPLength)
	}
	return nil
}

// DetailFraction returns the remaining area assigned to static detail.
func (p Profile) DetailFraction() float64 {
	d := 1 - (p.FlatFraction + p.RampFraction + p.TextureFraction + p.NoiseFraction + p.DupFraction)
	if d < 0 {
		return 0
	}
	return d
}

// Profiles returns the 16 workloads in Table 1 order. The composition
// parameters are chosen so the aggregate decoded-content statistics match
// the paper's measurements (≈42% intra, ≈15% inter, ≈43% no match; Fig 7b)
// and the per-video character follows the descriptions (test card vs
// timelapse vs trailers vs game captures).
func Profiles() []Profile {
	return []Profile{
		{
			Key: "V1", Name: "SES Astra", Description: "TV test video", TableFrames: 6507,
			FlatFraction: 0.14, RampFraction: 0.2, TextureFraction: 0.1, NoiseFraction: 0.24, DupFraction: 0.3,
			FlatColors: 8, TexturePeriod: 8, DetailAmplitude: 0.9,
			NumSprites: 2, SpriteSpeed: 2, SceneCutEvery: 90,
			FPS: 60, GOPLength: 32,
		},
		{
			Key: "V2", Name: "Honey Bees", Description: "Timelapse @ 120 fps", TableFrames: 5461,
			FlatFraction: 0.08, RampFraction: 0.12, TextureFraction: 0.08, NoiseFraction: 0.38, DupFraction: 0.3,
			FlatColors: 4, TexturePeriod: 8, DetailAmplitude: 1.0,
			NumSprites: 6, SpriteSpeed: 3, SceneCutEvery: 48,
			FPS: 60, GOPLength: 24,
		},
		{
			Key: "V3", Name: "Puppies Bath", Description: "Home video; macro lens", TableFrames: 3593,
			FlatFraction: 0.16, RampFraction: 0.24, TextureFraction: 0.08, NoiseFraction: 0.22, DupFraction: 0.28,
			FlatColors: 3, TexturePeriod: 8, DetailAmplitude: 0.7,
			NumSprites: 3, SpriteSpeed: 3, SceneCutEvery: 140,
			FPS: 60, GOPLength: 32,
		},
		{
			Key: "V4", Name: "NASA", Description: "NASA WebCam", TableFrames: 1758,
			FlatFraction: 0.14, RampFraction: 0.16, TextureFraction: 0.08, NoiseFraction: 0.12, DupFraction: 0.4,
			FlatColors: 2, TexturePeriod: 8, DetailAmplitude: 0.5,
			NumSprites: 1, SpriteSpeed: 1, SceneCutEvery: 0,
			FPS: 60, GOPLength: 48,
		},
		{
			Key: "V5", Name: "Elysium", Description: "2013 movie trailer", TableFrames: 3176,
			FlatFraction: 0.12, RampFraction: 0.14, TextureFraction: 0.08, NoiseFraction: 0.37, DupFraction: 0.26,
			FlatColors: 5, TexturePeriod: 8, DetailAmplitude: 1.0,
			NumSprites: 4, SpriteSpeed: 3, SceneCutEvery: 36,
			FPS: 60, BFrames: 1, GOPLength: 32,
		},
		{
			Key: "V6", Name: "Gone Girl", Description: "2014 movie trailer", TableFrames: 3591,
			FlatFraction: 0.12, RampFraction: 0.2, TextureFraction: 0.08, NoiseFraction: 0.28, DupFraction: 0.28,
			FlatColors: 4, TexturePeriod: 8, DetailAmplitude: 0.9,
			NumSprites: 3, SpriteSpeed: 2, SceneCutEvery: 40,
			FPS: 60, BFrames: 1, GOPLength: 32,
		},
		{
			Key: "V7", Name: "Interstellar", Description: "2014 movie trailer", TableFrames: 2429,
			FlatFraction: 0.14, RampFraction: 0.18, TextureFraction: 0.08, NoiseFraction: 0.28, DupFraction: 0.28,
			FlatColors: 4, TexturePeriod: 8, DetailAmplitude: 0.9,
			NumSprites: 3, SpriteSpeed: 3, SceneCutEvery: 42,
			FPS: 60, BFrames: 1, GOPLength: 32,
		},
		{
			Key: "V8", Name: "007 Skyfall", Description: "2012 movie trailer", TableFrames: 3676,
			FlatFraction: 0.18, RampFraction: 0.22, TextureFraction: 0.08, NoiseFraction: 0.24, DupFraction: 0.26,
			FlatColors: 6, TexturePeriod: 8, DetailAmplitude: 0.8,
			NumSprites: 4, SpriteSpeed: 3, SceneCutEvery: 38,
			FPS: 60, BFrames: 1, GOPLength: 32,
		},
		{
			Key: "V9", Name: "Batman Origins", Description: "Adventure game video", TableFrames: 4702,
			FlatFraction: 0.1, RampFraction: 0.14, TextureFraction: 0.14, NoiseFraction: 0.3, DupFraction: 0.28,
			FlatColors: 4, TexturePeriod: 16, DetailAmplitude: 1.0,
			NumSprites: 5, SpriteSpeed: 3, SceneCutEvery: 70,
			FPS: 60, GOPLength: 32,
		},
		{
			Key: "V10", Name: "Battlefield", Description: "Shooter game video", TableFrames: 2899,
			FlatFraction: 0.12, RampFraction: 0.14, TextureFraction: 0.12, NoiseFraction: 0.3, DupFraction: 0.28,
			FlatColors: 4, TexturePeriod: 16, DetailAmplitude: 1.0,
			NumSprites: 6, SpriteSpeed: 3, SceneCutEvery: 60,
			FPS: 60, GOPLength: 32,
		},
		{
			Key: "V11", Name: "Call of Duty", Description: "Action game video", TableFrames: 5799,
			FlatFraction: 0.14, RampFraction: 0.12, TextureFraction: 0.14, NoiseFraction: 0.22, DupFraction: 0.28,
			FlatColors: 5, TexturePeriod: 16, DetailAmplitude: 0.9,
			NumSprites: 5, SpriteSpeed: 3, SceneCutEvery: 64,
			FPS: 60, GOPLength: 32,
		},
		{
			Key: "V12", Name: "Crysis 3", Description: "Survival game video", TableFrames: 10147,
			FlatFraction: 0.1, RampFraction: 0.16, TextureFraction: 0.12, NoiseFraction: 0.3, DupFraction: 0.28,
			FlatColors: 4, TexturePeriod: 16, DetailAmplitude: 1.0,
			NumSprites: 4, SpriteSpeed: 2, SceneCutEvery: 80,
			FPS: 60, GOPLength: 32,
		},
		{
			Key: "V13", Name: "Dear Esther", Description: "Exploration game video", TableFrames: 1699,
			FlatFraction: 0.16, RampFraction: 0.22, TextureFraction: 0.12, NoiseFraction: 0.18, DupFraction: 0.3,
			FlatColors: 3, TexturePeriod: 16, DetailAmplitude: 0.7,
			NumSprites: 2, SpriteSpeed: 1, SceneCutEvery: 160,
			FPS: 60, GOPLength: 48,
		},
		{
			Key: "V14", Name: "Metro LastNight", Description: "Atmospheric game video", TableFrames: 4981,
			FlatFraction: 0.14, RampFraction: 0.18, TextureFraction: 0.12, NoiseFraction: 0.26, DupFraction: 0.26,
			FlatColors: 4, TexturePeriod: 16, DetailAmplitude: 0.85,
			NumSprites: 3, SpriteSpeed: 2, SceneCutEvery: 96,
			FPS: 60, GOPLength: 32,
		},
		{
			Key: "V15", Name: "Tomb Raider", Description: "Protagonist game video", TableFrames: 5981,
			FlatFraction: 0.12, RampFraction: 0.16, TextureFraction: 0.12, NoiseFraction: 0.28, DupFraction: 0.28,
			FlatColors: 4, TexturePeriod: 16, DetailAmplitude: 0.9,
			NumSprites: 4, SpriteSpeed: 3, SceneCutEvery: 72,
			FPS: 60, GOPLength: 32,
		},
		{
			Key: "V16", Name: "Watch Dogs", Description: "Hacking game video", TableFrames: 3806,
			FlatFraction: 0.12, RampFraction: 0.14, TextureFraction: 0.14, NoiseFraction: 0.28, DupFraction: 0.28,
			FlatColors: 5, TexturePeriod: 16, DetailAmplitude: 0.9,
			NumSprites: 5, SpriteSpeed: 3, SceneCutEvery: 68,
			FPS: 60, GOPLength: 32,
		},
	}
}

// ProfileByKey returns the profile with the given key (V1..V16).
func ProfileByKey(key string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Key == key {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("video: unknown profile %q", key)
}
