package fleet

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync/atomic"
	"time"

	"mach/internal/checkpoint"
	"mach/internal/core"
	"mach/internal/par"
	"mach/internal/trace"
)

// ErrInterrupted is returned by Run when the Stop channel fired: every
// committed chunk is flushed to its shard manifest, and a later Resume
// continues bit-identically.
var ErrInterrupted = errors.New("fleet: interrupted, shard manifests flushed")

// ErrConfig wraps configuration validation failures, so callers can map them
// to a usage exit instead of a runtime one.
var ErrConfig = errors.New("fleet: invalid config")

// errStalled signals the monitor's verdict on an aborted attempt internally.
var errStalled = errors.New("fleet: shard stalled")

// traceKey identifies one shared decode trace: churn buckets session lengths
// so at most three lengths exist per profile, and every session of a
// (profile, length) pair replays the same immutable trace.
type traceKey struct {
	profile string
	frames  int
}

// Supervisor owns the derived fleet state: plans, the shared trace cache,
// and the worker pool. Build one with NewSupervisor, run it with Run.
type Supervisor struct {
	cfg    Config
	plans  []Plan
	traces map[traceKey]*trace.Trace
	pool   *par.Pool
	hooks  Hooks
}

// RunOptions carries one Run invocation's environment.
type RunOptions struct {
	// Dir is the shard manifest directory; empty disables checkpointing.
	Dir string
	// Resume loads surviving shard manifests from Dir before running. A
	// missing manifest starts that shard fresh; a corrupt or mismatched one
	// is logged and recomputed from scratch.
	Resume bool
	// Hooks intercept session execution (fault injection, tests).
	Hooks Hooks
	// Watchdog configures stall detection; requires Clock and Sleep.
	Watchdog WatchdogConfig
	// Clock returns monotonic elapsed time; Sleep blocks for a duration.
	// Injected so the fleet package never reads the wall clock itself —
	// cmd/machfleet passes the real ones, tests pass fakes.
	Clock func() time.Duration
	Sleep func(time.Duration)
	// Stop, when it becomes readable, gracefully interrupts the run: the
	// in-flight chunk is aborted and discarded, manifests already reflect
	// every committed chunk, and Run returns ErrInterrupted.
	Stop <-chan struct{}
	// Logf, when non-nil, receives progress and recovery lines.
	Logf func(format string, args ...any)
}

// NewSupervisor validates the config, derives every session plan, and
// synthesizes the shared trace cache. Traces build sequentially: synthesis
// memoizes codec tables in package state, so it is not summary-pure, and at
// three lengths per profile the build is startup cost, not the hot path.
func NewSupervisor(cfg Config) (*Supervisor, error) {
	cfg = cfg.normalize()
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	s := &Supervisor{cfg: cfg, plans: cfg.Plans(), pool: par.New(cfg.Workers)}

	var keys []traceKey
	seen := make(map[traceKey]bool)
	for _, p := range s.plans {
		k := traceKey{p.Profile, p.Frames}
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	s.traces = make(map[traceKey]*trace.Trace, len(keys))
	for _, k := range keys {
		sc := cfg.Stream
		sc.NumFrames = k.frames
		tr, err := core.BuildTrace(k.profile, sc)
		if err != nil {
			return nil, fmt.Errorf("fleet: building trace %s/%d frames: %w", k.profile, k.frames, err)
		}
		s.traces[k] = tr
	}
	return s, nil
}

// Plans exposes the derived per-session plans (read-only).
func (s *Supervisor) Plans() []Plan { return s.plans }

// traceFor returns the shared trace a plan replays. Traces are read-only
// across concurrent runs, exactly like the experiment sweeps.
func (s *Supervisor) traceFor(p Plan) *trace.Trace {
	return s.traces[traceKey{p.Profile, p.Frames}]
}

// Run executes every shard in order, each independently crash-safe, and
// reduces the committed outcomes to the population aggregate. Shards run
// sequentially — parallelism lives inside the shard, where sessions fan out
// over the pool — so the machine is never oversubscribed and progress has
// one writer per attempt.
func (s *Supervisor) Run(opts RunOptions) (*Aggregate, error) {
	wd := opts.Watchdog.normalize()
	if err := opts.Watchdog.Validate(); err != nil {
		return nil, err
	}
	if wd.Enabled() && (opts.Clock == nil || opts.Sleep == nil) {
		return nil, fmt.Errorf("fleet: watchdog needs Clock and Sleep injected")
	}
	s.hooks = opts.Hooks
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	shards := make([]*shardRun, s.cfg.Shards)
	for i := range shards {
		lo, hi := s.cfg.ShardRange(i)
		sr := newShardRun(i, lo, hi, s.plans)
		if opts.Dir != "" && opts.Resume {
			err := sr.loadManifest(opts.Dir, s.cfg.shardFingerprint(i, lo, hi))
			switch {
			case err == nil:
				logf("fleet: shard %d resumed at session %d of [%d,%d)", i, sr.next, lo, hi)
			case errors.Is(err, fs.ErrNotExist):
				// Fresh shard: the run never got this far.
			case errors.Is(err, checkpoint.ErrCorrupt):
				logf("fleet: shard %d manifest corrupt, recomputing: %v", i, err)
				sr = newShardRun(i, lo, hi, s.plans)
			default:
				return nil, err
			}
		}
		shards[i] = sr
	}

	restarts := 0
	for _, sr := range shards {
		r, err := s.runShard(sr, opts, wd, logf)
		restarts += r
		if err != nil {
			return nil, err
		}
	}

	if opts.Dir != "" {
		// Success removes the manifests; a leftover set would invite
		// resuming a finished run.
		for i := range shards {
			if err := os.Remove(ManifestPath(opts.Dir, i)); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return nil, err
			}
		}
	}
	return s.aggregate(shards, restarts), nil
}

// runShard drives one shard to completion through watchdog restarts,
// returning how many restarts it took.
func (s *Supervisor) runShard(sr *shardRun, opts RunOptions, wd WatchdogConfig, logf func(string, ...any)) (restarts int, err error) {
	attempt := 0
	for !sr.done() {
		err := s.runAttempt(sr, opts, wd, attempt)
		switch {
		case err == nil:
			// Shard complete.
		case errors.Is(err, errStalled):
			if attempt >= wd.MaxRestarts {
				return restarts, fmt.Errorf("fleet: shard %d still stalled after %d restarts", sr.shard, attempt)
			}
			backoff := wd.backoff(attempt)
			logf("fleet: shard %d stalled at session %d, restarting (attempt %d) after %v",
				sr.shard, sr.next, attempt+1, backoff)
			opts.Sleep(backoff)
			attempt++
			restarts++
		default:
			return restarts, err
		}
	}
	return restarts, nil
}

// runAttempt runs one shard attempt in a worker goroutine while the monitor
// loop watches progress, the watchdog deadline, and the stop channel. The
// attempt goroutine owns the shard state; the monitor reads only the atomic
// progress counter and the abort flag.
func (s *Supervisor) runAttempt(sr *shardRun, opts RunOptions, wd WatchdogConfig, attempt int) error {
	var abort atomic.Bool
	var progress atomic.Int64
	progress.Store(int64(sr.next))
	done := make(chan error, 1)
	go func(sr *shardRun, attempt int, abort *atomic.Bool, progress *atomic.Int64) {
		done <- s.driveShard(sr, opts.Dir, attempt, abort, progress)
	}(sr, attempt, &abort, &progress)

	// The ticker goroutine exists only to turn the injected Sleep into a
	// channel the monitor can select on; it never touches shared state.
	var tick chan struct{}
	var tickStop chan struct{}
	if wd.Enabled() {
		tick = make(chan struct{}, 1)
		tickStop = make(chan struct{})
		go func(sleep func(time.Duration), d time.Duration, tick chan struct{}, stop chan struct{}) {
			for {
				sleep(d)
				select {
				case <-stop:
					return
				case tick <- struct{}{}:
				default:
				}
			}
		}(opts.Sleep, wd.Tick, tick, tickStop)
		defer close(tickStop)
	}

	dog := watchdog{cfg: wd}
	if wd.Enabled() {
		dog.launched(progress.Load(), opts.Clock())
	}
	for {
		select {
		case err := <-done:
			if errors.Is(err, ErrAborted) {
				// The only aborter on this path is the stop channel (a
				// watchdog abort returns via the stalled branch below).
				return ErrInterrupted
			}
			return err
		case <-tick:
			if dog.stalled(progress.Load(), opts.Clock()) {
				abort.Store(true)
				<-done // join the aborted attempt; the chunk was discarded
				return errStalled
			}
		case <-opts.Stop:
			abort.Store(true)
			<-done
			return ErrInterrupted
		}
	}
}

// driveShard is the attempt goroutine body: run chunks, commit, persist the
// manifest, publish progress. Returns ErrAborted when the abort flag cut a
// chunk short (the monitor decides what that means).
func (s *Supervisor) driveShard(sr *shardRun, dir string, attempt int, abort *atomic.Bool, progress *atomic.Int64) error {
	for !sr.done() {
		if sr.runChunk(s, attempt, abort) {
			return ErrAborted
		}
		if dir != "" {
			if err := sr.saveManifest(dir, s.cfg.shardFingerprint(sr.shard, sr.lo, sr.hi)); err != nil {
				return err
			}
		}
		progress.Store(int64(sr.next))
	}
	return nil
}
