package fleet

import (
	"testing"
	"time"
)

func TestWatchdogConfigNormalize(t *testing.T) {
	w := WatchdogConfig{StallDeadline: time.Second}.normalize()
	if w.Tick != 250*time.Millisecond || w.MaxRestarts != 3 ||
		w.BackoffBase != 10*time.Millisecond || w.BackoffMax != time.Second {
		t.Fatalf("defaults: %+v", w)
	}
	if w := (WatchdogConfig{StallDeadline: 2 * time.Millisecond}).normalize(); w.Tick != time.Millisecond {
		t.Fatalf("tick floor: %v", w.Tick)
	}
	if w := (WatchdogConfig{}).normalize(); w.Enabled() || w.Tick != 0 {
		t.Fatalf("disabled watchdog normalized to %+v", w)
	}
}

func TestWatchdogConfigValidate(t *testing.T) {
	if err := (WatchdogConfig{StallDeadline: -time.Second}).Validate(); err == nil {
		t.Fatal("negative deadline accepted")
	}
	if err := (WatchdogConfig{MaxRestarts: 65}).Validate(); err == nil {
		t.Fatal("oversized restart budget accepted")
	}
	if err := (WatchdogConfig{StallDeadline: time.Second, MaxRestarts: 3}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWatchdogBackoff(t *testing.T) {
	w := WatchdogConfig{StallDeadline: time.Second}.normalize()
	for i, want := range []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
	} {
		if got := w.backoff(i); got != want {
			t.Fatalf("backoff(%d) = %v, want %v", i, got, want)
		}
	}
	if got := w.backoff(20); got != w.BackoffMax {
		t.Fatalf("backoff(20) = %v, want cap %v", got, w.BackoffMax)
	}
}

func TestWatchdogStallDetection(t *testing.T) {
	cfg := WatchdogConfig{StallDeadline: 100 * time.Millisecond}.normalize()
	dog := watchdog{cfg: cfg}
	dog.launched(0, 0)
	if dog.stalled(0, 99*time.Millisecond) {
		t.Fatal("stalled inside the deadline")
	}
	if !dog.stalled(0, 100*time.Millisecond) {
		t.Fatal("not stalled at the deadline")
	}
	// Progress resets the window.
	dog.launched(0, 0)
	if dog.stalled(1, 90*time.Millisecond) {
		t.Fatal("progress flagged as stall")
	}
	if dog.stalled(1, 189*time.Millisecond) {
		t.Fatal("stalled before a full deadline since the last progress")
	}
	if !dog.stalled(1, 190*time.Millisecond) {
		t.Fatal("not stalled a full deadline after the last progress")
	}
}
