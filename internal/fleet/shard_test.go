package fleet

import (
	"errors"
	"io/fs"
	"math"
	"os"
	"strings"
	"testing"

	"mach/internal/checkpoint"
)

// okMetrics returns a SessionMetrics that passes validation for session s.
func okMetrics(plans []Plan, s int) SessionMetrics {
	return SessionMetrics{
		Session:       s,
		Profile:       plans[s].Profile,
		Frames:        plans[s].Frames,
		EnergyJ:       0.25,
		MachMatchRate: 0.5,
	}
}

// validState is a mid-run snapshot: sessions 0 and 2 completed, 1
// quarantined, cursor at 3 of [0,4).
func validState(plans []Plan) shardState {
	return shardState{
		Format:      FormatVersion,
		Shard:       0,
		Lo:          0,
		Hi:          4,
		Next:        3,
		Metrics:     []SessionMetrics{okMetrics(plans, 0), okMetrics(plans, 2)},
		Quarantined: []QuarantineRecord{{Session: 1, Err: "boom"}},
	}
}

func TestShardRestoreRoundTrip(t *testing.T) {
	plans := testConfig().Plans()
	sr := newShardRun(0, 0, 4, plans)
	if err := sr.Restore(validState(plans)); err != nil {
		t.Fatal(err)
	}
	if sr.next != 3 || len(sr.metrics) != 2 || len(sr.quar) != 1 {
		t.Fatalf("restored state next=%d metrics=%d quar=%d", sr.next, len(sr.metrics), len(sr.quar))
	}
	// Snapshot of the restored shard must round-trip to the same state.
	sr2 := newShardRun(0, 0, 4, plans)
	if err := sr2.Restore(sr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if sr2.next != sr.next || len(sr2.metrics) != len(sr.metrics) {
		t.Fatal("snapshot/restore not idempotent")
	}
}

func TestShardRestoreRejects(t *testing.T) {
	plans := testConfig().Plans()
	for _, tc := range []struct {
		name   string
		mutate func(*shardState)
	}{
		{"format", func(st *shardState) { st.Format = 2 }},
		{"wrong shard", func(st *shardState) { st.Shard = 1 }},
		{"wrong range", func(st *shardState) { st.Hi = 5 }},
		{"cursor below range", func(st *shardState) { st.Next = -1 }},
		{"cursor above range", func(st *shardState) { st.Next = 5 }},
		{"too many metrics", func(st *shardState) {
			st.Metrics = append(st.Metrics, st.Metrics[0], st.Metrics[0], st.Metrics[0])
		}},
		{"gap below cursor", func(st *shardState) { st.Metrics = st.Metrics[:1] }},
		{"outcome above cursor", func(st *shardState) {
			st.Metrics = append(st.Metrics, okMetrics(testConfig().Plans(), 3))
		}},
		{"duplicate outcome", func(st *shardState) { st.Quarantined[0].Session = 2 }},
		{"empty quarantine error", func(st *shardState) { st.Quarantined[0].Err = "" }},
		{"oversized quarantine error", func(st *shardState) {
			st.Quarantined[0].Err = strings.Repeat("x", maxQuarantineErr+1)
		}},
		{"session outside fleet", func(st *shardState) { st.Metrics[0].Session = -1; st.Quarantined[0].Session = 0 }},
		{"profile mismatch", func(st *shardState) { st.Metrics[0].Profile = "V99" }},
		{"zero frames", func(st *shardState) { st.Metrics[0].Frames = 0 }},
		{"negative counter", func(st *shardState) { st.Metrics[0].Drops = -1 }},
		{"nan energy", func(st *shardState) { st.Metrics[0].EnergyJ = math.NaN() }},
		{"negative energy", func(st *shardState) { st.Metrics[0].RadioJ = -1 }},
		{"match rate above one", func(st *shardState) { st.Metrics[0].MachMatchRate = 1.5 }},
	} {
		st := validState(plans)
		tc.mutate(&st)
		sr := newShardRun(0, 0, 4, plans)
		if err := sr.Restore(st); err == nil {
			t.Errorf("%s: Restore accepted %+v", tc.name, st)
		} else if sr.next != 0 || sr.metrics != nil || sr.quar != nil {
			t.Errorf("%s: failed Restore mutated the shard", tc.name)
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	cfg := testConfig()
	plans := cfg.Plans()
	fp := cfg.shardFingerprint(0, 0, 4)
	dir := t.TempDir()

	sr := newShardRun(0, 0, 4, plans)
	if err := sr.loadManifest(dir, fp); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing manifest load: %v, want fs.ErrNotExist", err)
	}
	if err := sr.Restore(validState(plans)); err != nil {
		t.Fatal(err)
	}
	if err := sr.saveManifest(dir, fp); err != nil {
		t.Fatal(err)
	}

	sr2 := newShardRun(0, 0, 4, plans)
	if err := sr2.loadManifest(dir, fp); err != nil {
		t.Fatal(err)
	}
	if sr2.next != sr.next || len(sr2.metrics) != len(sr.metrics) || len(sr2.quar) != len(sr.quar) {
		t.Fatal("manifest round trip lost state")
	}

	// A flipped payload byte must surface as ErrCorrupt, as must a manifest
	// loaded under a different fleet fingerprint.
	path := ManifestPath(dir, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := newShardRun(0, 0, 4, plans).loadManifest(dir, fp); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("corrupt manifest load: %v, want ErrCorrupt", err)
	}
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seed = 99
	if err := newShardRun(0, 0, 4, other.Plans()).loadManifest(dir, other.shardFingerprint(0, 0, 4)); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("foreign manifest load: %v, want ErrCorrupt", err)
	}
}

func TestTruncateErr(t *testing.T) {
	if got := truncateErr(""); got != "(empty error)" {
		t.Fatalf("empty: %q", got)
	}
	if got := truncateErr("boom"); got != "boom" {
		t.Fatalf("short: %q", got)
	}
	long := strings.Repeat("x", 2*maxQuarantineErr)
	if got := truncateErr(long); len(got) != maxQuarantineErr || !strings.HasSuffix(got, "...") {
		t.Fatalf("long: %d bytes, suffix %q", len(got), got[len(got)-3:])
	}
}
