package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"sync/atomic"

	"mach/internal/checkpoint"
)

// maxQuarantineErr caps the recorded error text per quarantined session, so
// a pathological panic message cannot bloat manifests or the aggregate.
const maxQuarantineErr = 256

// QuarantineRecord is one session that failed (error or recovered panic)
// and was excluded from the population instead of taking down its shard.
type QuarantineRecord struct {
	Session int    `json:"session"`
	Err     string `json:"err"`
}

// shardState is the serialized form of a shard at a chunk boundary: the
// commit cursor plus every committed session outcome, in session order.
type shardState struct {
	Format      int                `json:"format"`
	Shard       int                `json:"shard"`
	Lo          int                `json:"lo"`
	Hi          int                `json:"hi"`
	Next        int                `json:"next"`
	Metrics     []SessionMetrics   `json:"metrics"`
	Quarantined []QuarantineRecord `json:"quarantined,omitempty"`
}

// shardRun is one shard's live state: the contiguous session range it owns,
// the commit cursor, and the outcomes committed so far. Chunks run over the
// worker pool; commits happen serially in session order, so the state (and
// the manifest written from it) never depends on scheduling.
type shardRun struct {
	shard, lo, hi int
	plans         []Plan // full fleet plan slice, immutable, shared

	next    int
	metrics []SessionMetrics
	quar    []QuarantineRecord
}

// newShardRun returns a fresh shard positioned at the start of its range.
func newShardRun(shard, lo, hi int, plans []Plan) *shardRun {
	return &shardRun{shard: shard, lo: lo, hi: hi, plans: plans, next: lo}
}

// done reports whether every session of the range has been committed.
func (s *shardRun) done() bool { return s.next >= s.hi }

// Snapshot captures the shard at a chunk boundary.
func (s *shardRun) Snapshot() shardState {
	st := shardState{
		Format: FormatVersion,
		Shard:  s.shard,
		Lo:     s.lo,
		Hi:     s.hi,
		Next:   s.next,
	}
	st.Metrics = append([]SessionMetrics(nil), s.metrics...)
	st.Quarantined = append([]QuarantineRecord(nil), s.quar...)
	return st
}

// Restore overwrites the shard's state from a snapshot, validating every
// structural invariant the commit loop relies on — the payload may come from
// an untrusted file. On error the shard is unchanged.
func (s *shardRun) Restore(st shardState) error {
	if st.Format != FormatVersion {
		return fmt.Errorf("fleet: manifest format %d, want %d", st.Format, FormatVersion)
	}
	if st.Shard != s.shard || st.Lo != s.lo || st.Hi != s.hi {
		return fmt.Errorf("fleet: manifest for shard %d [%d,%d), this shard is %d [%d,%d)",
			st.Shard, st.Lo, st.Hi, s.shard, s.lo, s.hi)
	}
	if st.Next < s.lo || st.Next > s.hi {
		return fmt.Errorf("fleet: manifest cursor %d outside [%d,%d]", st.Next, s.lo, s.hi)
	}
	if len(st.Metrics) > s.hi-s.lo || len(st.Quarantined) > s.hi-s.lo {
		return fmt.Errorf("fleet: %d metrics + %d quarantined exceed shard range of %d sessions",
			len(st.Metrics), len(st.Quarantined), s.hi-s.lo)
	}
	// Committed outcomes must tile [lo, next) exactly: metrics and
	// quarantine records each strictly increasing by session, their merge
	// contiguous with no gap, overlap, or stray index.
	mi, qi := 0, 0
	for want := s.lo; want < st.Next; want++ {
		switch {
		case mi < len(st.Metrics) && st.Metrics[mi].Session == want:
			if err := validateMetrics(&st.Metrics[mi], s.plans); err != nil {
				return err
			}
			mi++
		case qi < len(st.Quarantined) && st.Quarantined[qi].Session == want:
			q := &st.Quarantined[qi]
			if q.Err == "" || len(q.Err) > maxQuarantineErr {
				return fmt.Errorf("fleet: quarantine record for session %d has a %d-byte error", q.Session, len(q.Err))
			}
			qi++
		default:
			return fmt.Errorf("fleet: manifest misses session %d below cursor %d", want, st.Next)
		}
	}
	if mi != len(st.Metrics) || qi != len(st.Quarantined) {
		return fmt.Errorf("fleet: manifest carries session outcomes at or above cursor %d", st.Next)
	}
	s.next = st.Next
	s.metrics = append([]SessionMetrics(nil), st.Metrics...)
	s.quar = append([]QuarantineRecord(nil), st.Quarantined...)
	return nil
}

// validateMetrics rejects out-of-range or non-finite session outcomes.
func validateMetrics(m *SessionMetrics, plans []Plan) error {
	if m.Session < 0 || m.Session >= len(plans) {
		return fmt.Errorf("fleet: metrics for session %d outside fleet of %d", m.Session, len(plans))
	}
	if want := plans[m.Session].Profile; m.Profile != want {
		return fmt.Errorf("fleet: session %d ran profile %q, plan says %q", m.Session, m.Profile, want)
	}
	if m.Frames < 1 {
		return fmt.Errorf("fleet: session %d decoded %d frames", m.Session, m.Frames)
	}
	if m.Drops < 0 || m.Rebuffers < 0 || m.RebufferNs < 0 || m.StartupNs < 0 ||
		m.WallNs < 0 || m.DramBytes < 0 {
		return fmt.Errorf("fleet: session %d carries a negative counter", m.Session)
	}
	for _, v := range [...]float64{m.EnergyJ, m.RadioJ} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("fleet: session %d energy %g not finite and non-negative", m.Session, v)
		}
	}
	if math.IsNaN(m.MachMatchRate) || m.MachMatchRate < 0 || m.MachMatchRate > 1 {
		return fmt.Errorf("fleet: session %d match rate %g outside [0,1]", m.Session, m.MachMatchRate)
	}
	return nil
}

// truncateErr caps an error string for a quarantine record.
func truncateErr(s string) string {
	if s == "" {
		return "(empty error)"
	}
	if len(s) > maxQuarantineErr {
		return s[:maxQuarantineErr-3] + "..."
	}
	return s
}

// ManifestPath returns the manifest file of shard i under dir.
func ManifestPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.mfst", shard))
}

// saveManifest atomically rewrites the shard's manifest.
func (s *shardRun) saveManifest(dir string, fp checkpoint.Fingerprint) error {
	payload, err := json.Marshal(s.Snapshot())
	if err != nil {
		return err
	}
	return checkpoint.Save(ManifestPath(dir, s.shard), fp, payload)
}

// restorePayload decodes and applies a manifest payload; every malformed
// input wraps checkpoint.ErrCorrupt.
func (s *shardRun) restorePayload(payload []byte) error {
	var st shardState
	if err := json.Unmarshal(payload, &st); err != nil {
		return fmt.Errorf("%w: manifest payload: %v", checkpoint.ErrCorrupt, err)
	}
	if err := s.Restore(st); err != nil {
		return fmt.Errorf("%w: %v", checkpoint.ErrCorrupt, err)
	}
	return nil
}

// loadManifest restores the shard from its manifest file. A missing file
// surfaces as fs.ErrNotExist (fresh start); a damaged or mismatched one
// wraps checkpoint.ErrCorrupt.
func (s *shardRun) loadManifest(dir string, fp checkpoint.Fingerprint) error {
	payload, err := checkpoint.Load(ManifestPath(dir, s.shard), fp)
	if err != nil {
		return err
	}
	return s.restorePayload(payload)
}

// runChunk runs the next CheckpointEvery sessions over the pool and commits
// them in session order. A chunk the abort flag cut short commits nothing
// and reports aborted; per-session failures (errors and recovered panics)
// are quarantined, never propagated.
func (s *shardRun) runChunk(sup *Supervisor, attempt int, abort *atomic.Bool) (aborted bool) {
	n := min(s.next+sup.cfg.CheckpointEvery, s.hi) - s.next
	if n <= 0 {
		return false
	}
	base := s.next
	out := make([]SessionMetrics, n)
	plans := s.plans
	shard := s.shard
	hook := sup.hooks.SessionStart
	abortFn := abort.Load
	errs := sup.pool.Map(n, func(k int) error {
		if abortFn() {
			return ErrAborted
		}
		session := base + k
		if hook != nil {
			if err := hook(session, shard, attempt, abortFn); err != nil {
				return err
			}
		}
		p := plans[session]
		m, err := runSession(sup.traceFor(p), sup.cfg.Scheme, sup.cfg.sessionConfig(p), abortFn)
		if err != nil {
			return err
		}
		m.Session = session
		out[k] = m
		return nil
	})
	for _, err := range errs {
		if errors.Is(err, ErrAborted) {
			return true
		}
	}
	for k := 0; k < n; k++ {
		if errs[k] != nil {
			s.quar = append(s.quar, QuarantineRecord{Session: base + k, Err: truncateErr(errs[k].Error())})
		} else {
			s.metrics = append(s.metrics, out[k])
		}
	}
	s.next += n
	return false
}
