package fleet

import (
	"encoding/json"
	"errors"
	"testing"

	"mach/internal/checkpoint"
)

// FuzzShardManifestLoad throws arbitrary bytes at the full manifest decode
// path — container header, CRC, fingerprint, JSON payload, and the shard
// Restore invariants. The contract: never panic, never accept a malformed
// manifest, and report every rejection as checkpoint.ErrCorrupt so the
// supervisor's recompute-on-corruption branch catches it.
func FuzzShardManifestLoad(f *testing.F) {
	cfg := testConfig()
	plans := cfg.Plans()
	lo, hi := cfg.ShardRange(0)
	fp := cfg.shardFingerprint(0, lo, hi)

	seed := func(st shardState) {
		payload, err := json.Marshal(st)
		if err != nil {
			f.Fatal(err)
		}
		b, err := checkpoint.EncodeBytes(fp, payload)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	fresh := newShardRun(0, lo, hi, plans)
	seed(fresh.Snapshot())
	mid := fresh.Snapshot()
	mid.Next = lo + 2
	mid.Metrics = []SessionMetrics{okMetrics(plans, lo)}
	mid.Quarantined = []QuarantineRecord{{Session: lo + 1, Err: "boom"}}
	seed(mid)
	f.Add([]byte{})
	f.Add([]byte("MCKP"))
	valid, err := checkpoint.EncodeBytes(fp, []byte(`{"format":1}`))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-1])

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := checkpoint.DecodeBytes(data, fp)
		if err != nil {
			if !errors.Is(err, checkpoint.ErrCorrupt) {
				t.Fatalf("container rejection %v does not wrap ErrCorrupt", err)
			}
			return
		}
		sr := newShardRun(0, lo, hi, plans)
		if err := sr.restorePayload(payload); err != nil {
			if !errors.Is(err, checkpoint.ErrCorrupt) {
				t.Fatalf("manifest rejection %v does not wrap ErrCorrupt", err)
			}
			if sr.next != lo || sr.metrics != nil || sr.quar != nil {
				t.Fatal("rejected manifest mutated the shard")
			}
			return
		}
		// Accepted manifests must re-encode and restore to the same cursor.
		sr2 := newShardRun(0, lo, hi, plans)
		if err := sr2.Restore(sr.Snapshot()); err != nil {
			t.Fatalf("accepted manifest does not round-trip: %v", err)
		}
		if sr2.next != sr.next {
			t.Fatalf("round trip moved the cursor %d -> %d", sr.next, sr2.next)
		}
	})
}
