// Package fleet scales the single-device pipeline to a population: a sharded
// supervisor runs N lightweight viewer sessions — distinct workload profiles,
// per-session seeds derived splitmix-style from one fleet seed, join/leave
// churn, optional shared-bottleneck contention — over the deterministic
// par.Pool, and reduces the per-session results to population-level
// energy/QoE distributions (DESIGN.md "Fleet supervision").
//
// Robustness is the package's contract:
//
//   - a panicking session is quarantined with its error recorded in the
//     aggregate, never taking down its shard;
//   - a stalled shard (no session progress within a deadline) is aborted and
//     restarted from its last committed chunk with bounded exponential
//     backoff before being declared failed;
//   - every shard persists a manifest in the checkpoint container format
//     (magic/version/fingerprint/CRC, atomic rename writes), so a SIGKILL'd
//     fleet run resumes from the surviving shards to an aggregate
//     bit-identical to an uninterrupted run.
//
// Everything a session does is a pure function of (Config, session index),
// so the aggregate is invariant under shard count, worker count, and session
// permutation — the property the tests pin down.
package fleet

import (
	"crypto/md5"
	"encoding/json"
	"fmt"

	"mach/internal/checkpoint"
	"mach/internal/core"
	"mach/internal/delivery"
	"mach/internal/video"
)

// FormatVersion versions the shard manifest payload schema. Bump on any
// incompatible change to shardState; loads reject other versions.
const FormatVersion = 1

// Config describes one fleet run. The zero value is unusable; start from
// Default.
type Config struct {
	// Sessions is the fleet population size.
	Sessions int
	// Seed drives every per-session derivation (profile pick, session
	// length, churn window, delivery seed, bandwidth scale).
	Seed int64
	// Shards is the number of independently crash-safe session ranges the
	// population is split into; each shard owns a contiguous range and its
	// own manifest file.
	Shards int
	// Workers is the par.Pool width sessions fan out over; 0 = GOMAXPROCS.
	// It trades wall clock only — the aggregate is bit-identical at any
	// width.
	Workers int
	// CheckpointEvery is the shard commit grain in sessions: a shard runs
	// this many sessions at a time, commits them in session order, and
	// rewrites its manifest.
	CheckpointEvery int

	// Scheme is the design point every session runs.
	Scheme core.Scheme
	// Stream is the content scale; NumFrames is a full-length session, and
	// churn buckets sessions to 1/2, 3/4, or all of it.
	Stream video.StreamConfig
	// Platform is the device configuration template; per-session delivery
	// seeds, bandwidth scales, and bottleneck cells are derived on top of
	// it (sessionConfig), and frame-sample collection is forced off.
	Platform core.Config

	// Profiles are the workload keys sessions draw from; empty selects all
	// 16 Table 1 profiles.
	Profiles []string
	// CellSize groups consecutive sessions into shared-bottleneck cells:
	// sessions in one cell whose churn windows overlap contend for one
	// last-mile link (requires Platform.Delivery.Enabled). 0 or 1 disables
	// contention.
	CellSize int
	// Horizon is the churn timeline length in join quanta; each session
	// joins at a hashed quantum and stays for as many quanta as its length
	// bucket spans.
	Horizon int
}

// Default returns a small smoke-scale fleet over the headline GAB scheme.
func Default() Config {
	plat := core.DefaultConfig()
	plat.CollectFrameSamples = false
	return Config{
		Sessions:        64,
		Seed:            1,
		Shards:          4,
		Workers:         0,
		CheckpointEvery: 16,
		Scheme:          core.GAB(core.DefaultBatch),
		Stream:          video.DefaultStreamConfig(),
		Platform:        plat,
		CellSize:        8,
		Horizon:         16,
	}
}

// normalize fills derivable defaults (the profile list).
func (c Config) normalize() Config {
	if len(c.Profiles) == 0 {
		c.Profiles = core.WorkloadKeys()
	}
	return c
}

// Validate reports malformed fleet configurations.
func (c Config) Validate() error {
	switch {
	case c.Sessions < 1 || c.Sessions > 1<<24:
		return fmt.Errorf("fleet: sessions %d outside [1,%d]", c.Sessions, 1<<24)
	case c.Shards < 1 || c.Shards > 4096:
		return fmt.Errorf("fleet: shards %d outside [1,4096]", c.Shards)
	case c.Workers < 0 || c.Workers > 256:
		return fmt.Errorf("fleet: workers %d outside [0,256]", c.Workers)
	case c.CheckpointEvery < 1:
		return fmt.Errorf("fleet: checkpoint grain %d < 1", c.CheckpointEvery)
	case c.CellSize < 0 || c.CellSize > 4096:
		return fmt.Errorf("fleet: cell size %d outside [0,4096]", c.CellSize)
	case c.Horizon < 1 || c.Horizon > 1<<20:
		return fmt.Errorf("fleet: churn horizon %d outside [1,%d]", c.Horizon, 1<<20)
	}
	if err := c.Scheme.Validate(); err != nil {
		return err
	}
	if err := c.Stream.Validate(); err != nil {
		return err
	}
	if err := c.Platform.Validate(); err != nil {
		return err
	}
	for _, key := range c.normalize().Profiles {
		if _, err := video.ProfileByKey(key); err != nil {
			return fmt.Errorf("fleet: profile %q: %w", key, err)
		}
	}
	return nil
}

// ShardRange returns the contiguous session range [lo,hi) shard i owns. The
// split depends only on (Sessions, Shards), never on workers or scheduling.
func (c Config) ShardRange(i int) (lo, hi int) {
	return i * c.Sessions / c.Shards, (i + 1) * c.Sessions / c.Shards
}

// Plan is everything one session's run derives from the fleet config: a pure
// function of (Config, session index), so plans never depend on sharding,
// workers, or execution order.
type Plan struct {
	// Session is the absolute session index in [0, Sessions).
	Session int
	// Profile is the workload key this viewer watches.
	Profile string
	// Frames is the session length: a churn bucket of 1/2, 3/4, or all of
	// Stream.NumFrames, so at most three trace lengths exist per profile.
	Frames int
	// Seed is the per-session delivery seed.
	Seed int64
	// BandwidthScale perturbs the link bandwidth in [0.5, 1.5).
	BandwidthScale float64
	// JoinQ/LeaveQ bound the session's churn window on the fleet horizon.
	JoinQ, LeaveQ int
	// Cell is the shared-bottleneck cell index; Contenders is how many cell
	// members' churn windows overlap this session's (including itself),
	// clamped to the delivery bottleneck cap.
	Cell       int
	Contenders int
}

// splitmix64 is the SplitMix64 finalizer, the same avalanche mix the
// delivery bottleneck uses for hash-random access into its schedule.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sessionHash returns the k-th derived word of session s's hash chain.
func (c Config) sessionHash(s, k int) uint64 {
	h := splitmix64(uint64(c.Seed) ^ uint64(s)*0x9e3779b97f4a7c15)
	for i := 0; i <= k; i++ {
		h = splitmix64(h)
	}
	return h
}

// cellSeed derives the shared bottleneck seed for one cell, so every member
// of the cell observes the same background-activity schedule.
func (c Config) cellSeed(cell int) int64 {
	return int64(splitmix64(uint64(c.Seed)^0xf1ee7^uint64(cell)*0x9e3779b97f4a7c15) >> 1)
}

// Plans derives every session's plan. The churn overlap scan is local to
// each cell (cells are contiguous index blocks), so the whole derivation is
// O(Sessions * CellSize).
func (c Config) Plans() []Plan {
	c = c.normalize()
	plans := make([]Plan, c.Sessions)
	for s := range plans {
		quarters := 2 + int(c.sessionHash(s, 1)%3) // 2, 3, or 4 quarters
		frames := c.Stream.NumFrames * quarters / 4
		if frames < 1 {
			frames = 1
		}
		join := int(c.sessionHash(s, 2) % uint64(c.Horizon))
		cell := 0
		if c.CellSize > 1 {
			cell = s / c.CellSize
		}
		plans[s] = Plan{
			Session:        s,
			Profile:        c.Profiles[c.sessionHash(s, 0)%uint64(len(c.Profiles))],
			Frames:         frames,
			Seed:           int64(c.sessionHash(s, 3) >> 1),
			BandwidthScale: 0.5 + float64(c.sessionHash(s, 4)%1024)/1024,
			JoinQ:          join,
			LeaveQ:         join + quarters,
			Cell:           cell,
			Contenders:     1,
		}
	}
	if c.CellSize > 1 {
		for s := range plans {
			p := &plans[s]
			lo := p.Cell * c.CellSize
			hi := min(lo+c.CellSize, c.Sessions)
			n := 0
			for t := lo; t < hi; t++ {
				q := &plans[t]
				if q.JoinQ < p.LeaveQ && p.JoinQ < q.LeaveQ {
					n++
				}
			}
			p.Contenders = min(n, delivery.MaxBottleneckSessions)
		}
	}
	return plans
}

// shardFingerprint identifies the (fleet config, shard range) a manifest
// belongs to: md5 over the canonical JSON of everything that shapes session
// results. Workers and CheckpointEvery are deliberately excluded — both may
// vary across a resume without changing any session's outcome.
func (c Config) shardFingerprint(shard, lo, hi int) checkpoint.Fingerprint {
	c = c.normalize()
	id := struct {
		Format        int
		Sessions      int
		Seed          int64
		Shards        int
		Scheme        core.Scheme
		Stream        video.StreamConfig
		Platform      core.Config
		Profiles      []string
		CellSize      int
		Horizon       int
		Shard, Lo, Hi int
	}{FormatVersion, c.Sessions, c.Seed, c.Shards, c.Scheme, c.Stream, c.Platform,
		c.Profiles, c.CellSize, c.Horizon, shard, lo, hi}
	b, err := json.Marshal(id)
	if err != nil {
		// Every identity field is a plain exported value; this cannot fail
		// for a validated config.
		panic(fmt.Sprintf("fleet: fingerprint marshal: %v", err))
	}
	return checkpoint.Fingerprint(md5.Sum(b))
}
