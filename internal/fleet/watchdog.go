package fleet

import (
	"fmt"
	"time"
)

// WatchdogConfig bounds how long a shard may go without committing progress
// before the supervisor aborts and restarts it, and how many restarts it
// gets before the shard (and the run) is declared failed. The watchdog never
// reads a wall clock itself — the supervisor feeds it times from an injected
// clock, which is what keeps the fleet package inside the determinism lint
// scope and the state machine unit-testable with a fake clock.
type WatchdogConfig struct {
	// StallDeadline is the no-progress window that counts as a stall;
	// 0 disables the watchdog.
	StallDeadline time.Duration
	// Tick is how often progress is sampled; 0 selects StallDeadline/4
	// (at least a millisecond).
	Tick time.Duration
	// MaxRestarts bounds restarts per shard; 0 selects 3.
	MaxRestarts int
	// BackoffBase and BackoffMax shape the exponential restart backoff
	// (base << attempt, capped); zeros select 10ms and 1s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

// Enabled reports whether stall detection is on.
func (w WatchdogConfig) Enabled() bool { return w.StallDeadline > 0 }

// normalize fills the zero-value defaults.
func (w WatchdogConfig) normalize() WatchdogConfig {
	if !w.Enabled() {
		return w
	}
	if w.Tick == 0 {
		w.Tick = w.StallDeadline / 4
	}
	if w.Tick < time.Millisecond {
		w.Tick = time.Millisecond
	}
	if w.MaxRestarts == 0 {
		w.MaxRestarts = 3
	}
	if w.BackoffBase <= 0 {
		w.BackoffBase = 10 * time.Millisecond
	}
	if w.BackoffMax <= 0 {
		w.BackoffMax = time.Second
	}
	return w
}

// Validate reports malformed watchdog configurations.
func (w WatchdogConfig) Validate() error {
	if w.StallDeadline < 0 {
		return fmt.Errorf("fleet: negative stall deadline %v", w.StallDeadline)
	}
	if w.MaxRestarts < 0 || w.MaxRestarts > 64 {
		return fmt.Errorf("fleet: max restarts %d outside [0,64]", w.MaxRestarts)
	}
	return nil
}

// backoff returns the sleep before restart attempt+1: BackoffBase doubled
// per prior attempt, capped at BackoffMax.
func (w WatchdogConfig) backoff(attempt int) time.Duration {
	d := w.BackoffBase
	for i := 0; i < attempt && d < w.BackoffMax; i++ {
		d *= 2
	}
	return min(d, w.BackoffMax)
}

// watchdog tracks one shard attempt's progress against the deadline. Pure
// state over (progress, now) observations — no clocks, no channels.
type watchdog struct {
	cfg        WatchdogConfig
	last       int64
	lastChange time.Duration
}

// launched (re)arms the watchdog at an attempt start.
func (w *watchdog) launched(progress int64, now time.Duration) {
	w.last = progress
	w.lastChange = now
}

// stalled reports whether the shard has gone a full deadline without
// progress as of the given observation.
func (w *watchdog) stalled(progress int64, now time.Duration) bool {
	if progress != w.last {
		w.last = progress
		w.lastChange = now
		return false
	}
	return now-w.lastChange >= w.cfg.StallDeadline
}
