package fleet

import (
	"bytes"
	"errors"
	"testing"

	"mach/internal/core"
	"mach/internal/delivery"
)

// testConfig is a smoke-scale fleet small enough for the property grids:
// two profiles cap trace synthesis, four shards of four sessions give real
// chunk boundaries at CheckpointEvery 4.
func testConfig() Config {
	cfg := Default()
	cfg.Sessions = 16
	cfg.Shards = 4
	cfg.Workers = 2
	cfg.CheckpointEvery = 4
	cfg.Stream.NumFrames = 8
	cfg.Stream.Width, cfg.Stream.Height = 96, 64
	cfg.Profiles = []string{"V1", "V3"}
	cfg.CellSize = 4
	cfg.Horizon = 8
	return cfg
}

// runCanonical builds a supervisor, runs it, and returns the canonical
// aggregate bytes.
func runCanonical(t *testing.T, cfg Config, opts RunOptions) []byte {
	t.Helper()
	sup, err := NewSupervisor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := sup.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := agg.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero sessions", func(c *Config) { c.Sessions = 0 }},
		{"huge sessions", func(c *Config) { c.Sessions = 1<<24 + 1 }},
		{"zero shards", func(c *Config) { c.Shards = 0 }},
		{"huge shards", func(c *Config) { c.Shards = 4097 }},
		{"negative workers", func(c *Config) { c.Workers = -1 }},
		{"zero checkpoint grain", func(c *Config) { c.CheckpointEvery = 0 }},
		{"negative cell", func(c *Config) { c.CellSize = -1 }},
		{"zero horizon", func(c *Config) { c.Horizon = 0 }},
		{"unknown profile", func(c *Config) { c.Profiles = []string{"V99"} }},
		{"bad stream", func(c *Config) { c.Stream.NumFrames = 0 }},
	} {
		cfg := testConfig()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, cfg)
		}
		if _, err := NewSupervisor(cfg); !errors.Is(err, ErrConfig) {
			t.Errorf("%s: NewSupervisor error %v, want ErrConfig", tc.name, err)
		}
	}
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("test config invalid: %v", err)
	}
}

func TestNormalizeFillsAllProfiles(t *testing.T) {
	cfg := testConfig()
	cfg.Profiles = nil
	if got := len(cfg.normalize().Profiles); got != len(core.WorkloadKeys()) {
		t.Fatalf("normalize filled %d profiles, want all %d", got, len(core.WorkloadKeys()))
	}
}

func TestShardRangePartitions(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 7, 16} {
		cfg := testConfig()
		cfg.Shards = shards
		next := 0
		for i := 0; i < shards; i++ {
			lo, hi := cfg.ShardRange(i)
			if lo != next {
				t.Fatalf("shards=%d: shard %d starts at %d, want %d", shards, i, lo, next)
			}
			if hi < lo {
				t.Fatalf("shards=%d: shard %d range [%d,%d) inverted", shards, i, lo, hi)
			}
			next = hi
		}
		if next != cfg.Sessions {
			t.Fatalf("shards=%d: ranges cover %d sessions, want %d", shards, next, cfg.Sessions)
		}
	}
}

func TestPlansDeterministicAndBounded(t *testing.T) {
	cfg := testConfig()
	a, b := cfg.Plans(), cfg.Plans()
	if len(a) != cfg.Sessions {
		t.Fatalf("got %d plans, want %d", len(a), cfg.Sessions)
	}
	for s, p := range a {
		if b[s] != p {
			t.Fatalf("plans not deterministic at session %d: %+v vs %+v", s, p, b[s])
		}
		if p.Session != s {
			t.Errorf("plan %d carries session %d", s, p.Session)
		}
		if p.Frames < 1 || p.Frames > cfg.Stream.NumFrames {
			t.Errorf("session %d: frames %d outside [1,%d]", s, p.Frames, cfg.Stream.NumFrames)
		}
		if p.BandwidthScale < 0.5 || p.BandwidthScale >= 1.5 {
			t.Errorf("session %d: bandwidth scale %g outside [0.5,1.5)", s, p.BandwidthScale)
		}
		if p.JoinQ < 0 || p.JoinQ >= cfg.Horizon || p.LeaveQ <= p.JoinQ {
			t.Errorf("session %d: churn window [%d,%d) malformed", s, p.JoinQ, p.LeaveQ)
		}
		if p.Contenders < 1 || p.Contenders > delivery.MaxBottleneckSessions {
			t.Errorf("session %d: %d contenders outside [1,%d]", s, p.Contenders, delivery.MaxBottleneckSessions)
		}
		if p.Profile != "V1" && p.Profile != "V3" {
			t.Errorf("session %d: profile %q not drawn from the config list", s, p.Profile)
		}
	}
	// A different fleet seed must reshuffle at least one plan.
	cfg2 := cfg
	cfg2.Seed = 2
	if c := cfg2.Plans(); len(c) == len(a) {
		same := true
		for s := range a {
			if a[s] != c[s] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seed 1 and seed 2 derived identical plans")
		}
	}
}

func TestShardFingerprintSensitivity(t *testing.T) {
	cfg := testConfig()
	base := cfg.shardFingerprint(0, 0, 4)
	if cfg.shardFingerprint(0, 0, 4) != base {
		t.Fatal("fingerprint not deterministic")
	}
	if cfg.shardFingerprint(1, 4, 8) == base {
		t.Fatal("fingerprint ignores the shard range")
	}
	seed := cfg
	seed.Seed = 99
	if seed.shardFingerprint(0, 0, 4) == base {
		t.Fatal("fingerprint ignores the fleet seed")
	}
	// Workers and CheckpointEvery may change across a resume.
	topo := cfg
	topo.Workers, topo.CheckpointEvery = 7, 2
	if topo.shardFingerprint(0, 0, 4) != base {
		t.Fatal("fingerprint depends on workers or checkpoint grain")
	}
}

func TestCellSeedPerCell(t *testing.T) {
	cfg := testConfig()
	if cfg.cellSeed(0) == cfg.cellSeed(1) {
		t.Fatal("adjacent cells share a bottleneck seed")
	}
	if cfg.cellSeed(0) != cfg.cellSeed(0) {
		t.Fatal("cell seed not deterministic")
	}
	if cfg.cellSeed(0) < 0 {
		t.Fatal("cell seed negative")
	}
}

func TestSessionConfigDerivation(t *testing.T) {
	cfg := testConfig()
	cfg.Platform.Delivery = delivery.LTE()
	cfg.Platform.CollectFrameSamples = true
	cfg.Platform.Parallel = 4
	plans := cfg.Plans()
	var contended bool
	for _, p := range plans {
		sc := cfg.sessionConfig(p)
		if sc.CollectFrameSamples || sc.Parallel != 0 {
			t.Fatal("session config must force frame samples and nested parallelism off")
		}
		if sc.Delivery.Seed != p.Seed {
			t.Fatalf("session %d: delivery seed %d, want plan seed %d", p.Session, sc.Delivery.Seed, p.Seed)
		}
		want := cfg.Platform.Delivery.BandwidthBps * p.BandwidthScale
		if diff := sc.Delivery.BandwidthBps - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("session %d: bandwidth %g, want %g", p.Session, sc.Delivery.BandwidthBps, want)
		}
		if p.Contenders > 1 {
			contended = true
			if sc.Delivery.Bottleneck.Sessions != p.Contenders {
				t.Fatalf("session %d: bottleneck %d sessions, want %d", p.Session, sc.Delivery.Bottleneck.Sessions, p.Contenders)
			}
			if sc.Delivery.Bottleneck.Seed != cfg.cellSeed(p.Cell) {
				t.Fatalf("session %d: bottleneck seed not the cell's", p.Session)
			}
		}
	}
	if !contended {
		t.Fatal("test fleet derived no contended sessions; cell/horizon too sparse")
	}
}

func TestAggregateTopologyInvariance(t *testing.T) {
	cfg := testConfig()
	cfg.Platform.Delivery = delivery.LTE()
	var want []byte
	for _, shards := range []int{1, 2, 4, 8} {
		for _, workers := range []int{0, 2, 5} {
			c := cfg
			c.Shards, c.Workers = shards, workers
			got := runCanonical(t, c, RunOptions{})
			if want == nil {
				want = got
			} else if !bytes.Equal(want, got) {
				t.Fatalf("aggregate differs at shards=%d workers=%d:\n%s\nvs\n%s", shards, workers, got, want)
			}
		}
	}
}
