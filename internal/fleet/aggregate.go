package fleet

import (
	"encoding/json"
	"fmt"
	"strings"

	"mach/internal/stats"
)

// dramHistBins is the fixed bin count of the DRAM-traffic histogram.
const dramHistBins = 16

// DramHistogram is the population histogram of per-frame DRAM traffic in
// KiB: fixed-shape bins over [0, HiKB), HiKB the power-of-two ceiling of the
// observed maximum — data-dependent but deterministic, so the histogram is
// identical under any shard/worker topology.
type DramHistogram struct {
	HiKB   float64 `json:"hi_kb"`
	Counts []int64 `json:"counts"`
}

// Aggregate is the population-level report of one fleet run: energy-per-user
// and QoE distributions, DRAM-traffic histograms, and the robustness
// counters. It folds committed sessions in session order and carries nothing
// about execution topology, so it is bit-identical under any shard count,
// worker count, or session permutation — and across a kill/resume.
type Aggregate struct {
	Format   int    `json:"format"`
	Sessions int    `json:"sessions"`
	Seed     int64  `json:"seed"`
	Scheme   string `json:"scheme"`

	// Completed + Quarantined partition the population; Restarts counts
	// watchdog shard restarts over the run.
	Completed   int                `json:"completed"`
	Quarantined int                `json:"quarantined"`
	Restarts    int                `json:"restarts"`
	Quarantine  []QuarantineRecord `json:"quarantine,omitempty"`

	// ProfileSessions counts planned sessions per workload key.
	ProfileSessions map[string]int `json:"profile_sessions"`

	// Population distributions over completed sessions.
	EnergyJ      stats.Summary `json:"energy_j"`
	RadioJ       stats.Summary `json:"radio_j"`
	DropRate     stats.Summary `json:"drop_rate"`
	RebufferRate stats.Summary `json:"rebuffer_rate"`
	StartupMs    stats.Summary `json:"startup_ms"`
	DramPerFrame DramHistogram `json:"dram_per_frame_kb"`

	// Fleet totals over completed sessions.
	TotalFrames    int64   `json:"total_frames"`
	TotalDrops     int64   `json:"total_drops"`
	TotalRebuffers int64   `json:"total_rebuffers"`
	TotalEnergyJ   float64 `json:"total_energy_j"`
}

// aggregate reduces the shards' committed outcomes. Shards own contiguous
// ascending ranges, so walking them in shard order folds sessions in session
// order — the float accumulation order is pinned.
func (s *Supervisor) aggregate(shards []*shardRun, restarts int) *Aggregate {
	a := &Aggregate{
		Format:          FormatVersion,
		Sessions:        s.cfg.Sessions,
		Seed:            s.cfg.Seed,
		Scheme:          s.cfg.Scheme.Name,
		Restarts:        restarts,
		ProfileSessions: make(map[string]int, len(s.cfg.Profiles)),
	}
	for _, p := range s.plans {
		a.ProfileSessions[p.Profile]++
	}

	n := 0
	for _, sr := range shards {
		n += len(sr.metrics)
	}
	energy := stats.NewSample(n)
	radio := stats.NewSample(n)
	drops := stats.NewSample(n)
	rebuf := stats.NewSample(n)
	startup := stats.NewSample(n)
	dramKB := stats.NewSample(n)
	maxKB := 0.0
	for _, sr := range shards {
		for i := range sr.metrics {
			m := &sr.metrics[i]
			frames := float64(m.Frames)
			kb := float64(m.DramBytes) / frames / 1024
			energy.Add(m.EnergyJ)
			radio.Add(m.RadioJ)
			drops.Add(float64(m.Drops) / frames)
			rebuf.Add(float64(m.Rebuffers) / frames)
			startup.Add(float64(m.StartupNs) / 1e6)
			dramKB.Add(kb)
			if kb > maxKB {
				maxKB = kb
			}
			a.Completed++
			a.TotalFrames += int64(m.Frames)
			a.TotalDrops += m.Drops
			a.TotalRebuffers += m.Rebuffers
			a.TotalEnergyJ += m.EnergyJ
		}
		a.Quarantine = append(a.Quarantine, sr.quar...)
	}
	a.Quarantined = len(a.Quarantine)
	a.EnergyJ = energy.Summarize()
	a.RadioJ = radio.Summarize()
	a.DropRate = drops.Summarize()
	a.RebufferRate = rebuf.Summarize()
	a.StartupMs = startup.Summarize()

	hi := 1.0
	for hi <= maxKB {
		hi *= 2
	}
	a.DramPerFrame = DramHistogram{HiKB: hi, Counts: make([]int64, dramHistBins)}
	if dramKB.Len() > 0 {
		h := stats.NewHistogram(0, hi, dramHistBins)
		for _, kb := range dramKB.Values() {
			h.Add(kb)
		}
		a.DramPerFrame.Counts = h.Counts
	}
	return a
}

// CanonicalJSON renders the aggregate as stable, indented JSON: map keys
// sorted, floats shortest-round-trip, no topology-dependent fields — the
// byte stream the kill/resume smokes md5-compare.
func (a *Aggregate) CanonicalJSON() ([]byte, error) {
	return json.MarshalIndent(a, "", "  ")
}

// String renders a compact human report.
func (a *Aggregate) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fleet: %d sessions (%s, seed %d): %d completed, %d quarantined, %d restarts\n",
		a.Sessions, a.Scheme, a.Seed, a.Completed, a.Quarantined, a.Restarts)
	fmt.Fprintf(&sb, "  energy/user: mean %.3f J  p50 %.3f  p90 %.3f  p99 %.3f\n",
		a.EnergyJ.Mean, a.EnergyJ.P50, a.EnergyJ.P90, a.EnergyJ.P99)
	fmt.Fprintf(&sb, "  drops/frame: mean %.4f  p99 %.4f   rebuffers/frame: mean %.4f  p99 %.4f\n",
		a.DropRate.Mean, a.DropRate.P99, a.RebufferRate.Mean, a.RebufferRate.P99)
	fmt.Fprintf(&sb, "  startup: mean %.1f ms  p99 %.1f ms   dram/frame < %.0f KB over %d bins\n",
		a.StartupMs.Mean, a.StartupMs.P99, a.DramPerFrame.HiKB, len(a.DramPerFrame.Counts))
	fmt.Fprintf(&sb, "  totals: %d frames, %d drops, %d rebuffers, %.1f J\n",
		a.TotalFrames, a.TotalDrops, a.TotalRebuffers, a.TotalEnergyJ)
	for _, q := range a.Quarantine {
		fmt.Fprintf(&sb, "  quarantined session %d: %s\n", q.Session, q.Err)
	}
	return sb.String()
}
