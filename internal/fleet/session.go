package fleet

import (
	"errors"
	"fmt"
	"math"
	"runtime"

	"mach/internal/core"
	"mach/internal/sim"
	"mach/internal/trace"
)

// ErrAborted is returned by a session cut short by the abort flag (watchdog
// restart or graceful stop). An aborted chunk is discarded whole and re-run,
// never partially committed.
var ErrAborted = errors.New("fleet: session aborted")

// SessionMetrics is the per-session projection the aggregate folds: flat,
// JSON-stable (integer times in nanoseconds, shortest-round-trip floats),
// and a pure function of the session's plan.
type SessionMetrics struct {
	Session       int     `json:"session"`
	Profile       string  `json:"profile"`
	Frames        int     `json:"frames"`
	EnergyJ       float64 `json:"energy_j"`
	RadioJ        float64 `json:"radio_j"`
	Drops         int64   `json:"drops"`
	Rebuffers     int64   `json:"rebuffers"`
	RebufferNs    int64   `json:"rebuffer_ns"`
	StartupNs     int64   `json:"startup_ns"`
	WallNs        int64   `json:"wall_ns"`
	DramBytes     int64   `json:"dram_bytes"`
	MachMatchRate float64 `json:"mach_match_rate"`
}

// Hooks intercept session execution; the zero value is a no-op. Production
// runs leave them empty — they exist for fault injection (Injector) and
// tests.
type Hooks struct {
	// SessionStart runs before a session is built. Returning ErrAborted
	// discards the chunk; any other error (or a panic) quarantines the
	// session.
	SessionStart func(session, shard, attempt int, abort func() bool) error
}

// Injector builds the seeded fault-injection hooks the robustness smokes
// drive: deterministic per-session panics and a first-attempt shard stall.
type Injector struct {
	// PanicRate is the probability a session's start hook panics; the draw
	// is a pure hash of (PanicSeed, session), so the quarantined set is
	// identical under any shard/worker topology.
	PanicRate float64
	// PanicSeed seeds the panic draw.
	PanicSeed int64
	// StallShard, when >= 0, makes every session of that shard's first
	// attempt spin until aborted — the watchdog must notice and restart.
	StallShard int
}

// Hooks returns the injection hooks. A zero Injector (StallShard 0 counts as
// a real shard, so use -1 to disable) still injects nothing when PanicRate
// is 0 and StallShard is negative.
func (inj Injector) Hooks() Hooks {
	return Hooks{
		SessionStart: func(session, shard, attempt int, abort func() bool) error {
			if inj.StallShard >= 0 && shard == inj.StallShard && attempt == 0 {
				for !abort() {
					runtime.Gosched()
				}
				return ErrAborted
			}
			if inj.PanicRate > 0 {
				threshold := uint64(inj.PanicRate * float64(math.MaxUint64))
				h := splitmix64(splitmix64(uint64(inj.PanicSeed)) ^ uint64(session)*0x9e3779b97f4a7c15)
				if h < threshold {
					panic(fmt.Sprintf("fleet: injected panic in session %d", session))
				}
			}
			return nil
		},
	}
}

// sessionConfig derives one session's platform config from the fleet
// template: per-session delivery seed and bandwidth scale, the cell's shared
// bottleneck when churn windows overlap, and the per-session knobs a fleet
// run forces (no frame samples — the aggregate keeps summaries, not 10k
// sample vectors — and no nested parallelism under the session fan-out).
func (c Config) sessionConfig(p Plan) core.Config {
	cfg := c.Platform
	cfg.CollectFrameSamples = false
	cfg.Parallel = 0
	if cfg.Delivery.Enabled {
		cfg.Delivery.Seed = p.Seed
		cfg.Delivery.BandwidthBps *= p.BandwidthScale
		if p.Contenders > 1 {
			cfg.Delivery.Bottleneck.Sessions = p.Contenders
			cfg.Delivery.Bottleneck.Seed = c.cellSeed(p.Cell)
		}
	}
	return cfg
}

// runSession drives one viewer session to completion, checking the abort
// flag at every frame boundary so a watchdog restart or graceful stop never
// waits on a long tail.
func runSession(tr *trace.Trace, s core.Scheme, cfg core.Config, abort func() bool) (SessionMetrics, error) {
	r, err := core.NewRunner(tr, s, cfg)
	if err != nil {
		return SessionMetrics{}, err
	}
	for !r.Done() {
		if abort() {
			return SessionMetrics{}, ErrAborted
		}
		r.StepFrame()
	}
	res, err := r.Finish()
	if err != nil {
		return SessionMetrics{}, err
	}
	return SessionMetrics{
		Profile:       res.Workload,
		Frames:        res.Frames,
		EnergyJ:       res.TotalEnergy(),
		RadioJ:        float64(res.Radio.TotalEnergy()),
		Drops:         res.Drops,
		Rebuffers:     res.Rebuffers,
		RebufferNs:    int64(res.RebufferTime / sim.Nanosecond),
		StartupNs:     int64(res.StartupDelay / sim.Nanosecond),
		WallNs:        int64(res.WallTime / sim.Nanosecond),
		DramBytes:     res.Mem.Accesses() * int64(cfg.DRAM.LineBytes),
		MachMatchRate: res.Mach.MatchRate(),
	}, nil
}
