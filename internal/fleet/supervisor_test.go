package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// abortFrom builds hooks that deterministically interrupt the run the moment
// any session at or past cut would start — the in-process equivalent of a
// kill at that point in the schedule.
func abortFrom(cut int) Hooks {
	return Hooks{SessionStart: func(session, shard, attempt int, abort func() bool) error {
		if session >= cut {
			return ErrAborted
		}
		return nil
	}}
}

func TestResumeAtEveryChunkBoundary(t *testing.T) {
	cfg := testConfig()
	want := runCanonical(t, cfg, RunOptions{})
	for cut := 0; cut <= cfg.Sessions; cut += cfg.CheckpointEvery {
		dir := t.TempDir()
		sup, err := NewSupervisor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, err = sup.Run(RunOptions{Dir: dir, Hooks: abortFrom(cut)})
		if cut < cfg.Sessions {
			if !errors.Is(err, ErrInterrupted) {
				t.Fatalf("cut=%d: interrupted run returned %v, want ErrInterrupted", cut, err)
			}
		} else if err != nil {
			t.Fatalf("cut=%d: uncut run failed: %v", cut, err)
		}

		sup2, err := NewSupervisor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		agg, err := sup2.Run(RunOptions{Dir: dir, Resume: true})
		if err != nil {
			t.Fatalf("cut=%d: resume failed: %v", cut, err)
		}
		got, err := agg.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("cut=%d: resumed aggregate differs:\n%s\nvs\n%s", cut, got, want)
		}
		// Success must clear the manifests.
		if ents, err := os.ReadDir(dir); err != nil || len(ents) != 0 {
			t.Fatalf("cut=%d: %d manifests left after success (err %v)", cut, len(ents), err)
		}
	}
}

func TestResumeTopologyChange(t *testing.T) {
	// A run killed under one worker/chunk topology must resume bit-identically
	// under another: neither is part of the shard fingerprint.
	cfg := testConfig()
	want := runCanonical(t, cfg, RunOptions{})
	dir := t.TempDir()
	sup, err := NewSupervisor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Run(RunOptions{Dir: dir, Hooks: abortFrom(cfg.Sessions / 2)}); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run returned %v", err)
	}
	resumed := cfg
	resumed.Workers = 5
	resumed.CheckpointEvery = 3
	sup2, err := NewSupervisor(resumed)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := sup2.Run(RunOptions{Dir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := agg.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("topology-changed resume differs:\n%s\nvs\n%s", got, want)
	}
}

func TestPanicInjectionQuarantineDeterministic(t *testing.T) {
	cfg := testConfig()
	inj := Injector{PanicRate: 0.25, PanicSeed: 7, StallShard: -1}
	var want []byte
	for _, topo := range [][2]int{{1, 1}, {2, 2}, {4, 3}, {8, 0}} {
		c := cfg
		c.Shards, c.Workers = topo[0], topo[1]
		sup, err := NewSupervisor(c)
		if err != nil {
			t.Fatal(err)
		}
		agg, err := sup.Run(RunOptions{Hooks: inj.Hooks()})
		if err != nil {
			t.Fatalf("topo %v: injected panics escaped: %v", topo, err)
		}
		if agg.Quarantined == 0 {
			t.Fatalf("topo %v: no sessions quarantined at panic rate %g", topo, inj.PanicRate)
		}
		if agg.Completed+agg.Quarantined != c.Sessions {
			t.Fatalf("topo %v: %d completed + %d quarantined != %d sessions",
				topo, agg.Completed, agg.Quarantined, c.Sessions)
		}
		for _, q := range agg.Quarantine {
			if !strings.Contains(q.Err, "panic") {
				t.Fatalf("quarantine record %+v does not carry the panic", q)
			}
		}
		if !strings.Contains(agg.String(), "quarantined session") {
			t.Fatal("report omits quarantined sessions")
		}
		got, err := agg.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if !bytes.Equal(want, got) {
			t.Fatalf("quarantined aggregate differs at topo %v:\n%s\nvs\n%s", topo, got, want)
		}
	}
}

func TestWatchdogRestartsStalledShard(t *testing.T) {
	cfg := testConfig()
	want := runCanonical(t, cfg, RunOptions{})
	sup, err := NewSupervisor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	agg, err := sup.Run(RunOptions{
		Hooks:    Injector{StallShard: 1}.Hooks(),
		// The deadline must be generous enough that a healthy chunk always
		// publishes progress first, even under the race detector's slowdown;
		// the injected stall makes no progress at all, so it still trips.
		Watchdog: WatchdogConfig{StallDeadline: 3 * time.Second},
		Clock:    func() time.Duration { return time.Since(start) },
		Sleep:    time.Sleep,
	})
	if err != nil {
		t.Fatalf("stalled shard not recovered: %v", err)
	}
	if agg.Restarts < 1 {
		t.Fatal("watchdog recorded no restarts")
	}
	// Apart from the restart counter the aggregate must match the clean run.
	agg.Restarts = 0
	got, err := agg.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-restart aggregate differs:\n%s\nvs\n%s", got, want)
	}
}

func TestWatchdogGivesUpAfterMaxRestarts(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 2
	sup, err := NewSupervisor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Unlike the Injector, this stall never clears, so the restart budget
	// must run out.
	hooks := Hooks{SessionStart: func(session, shard, attempt int, abort func() bool) error {
		if shard == 1 {
			for !abort() {
				runtime.Gosched()
			}
			return ErrAborted
		}
		return nil
	}}
	start := time.Now()
	_, err = sup.Run(RunOptions{
		Hooks: hooks,
		Watchdog: WatchdogConfig{
			StallDeadline: time.Second,
			MaxRestarts:   1,
			BackoffBase:   time.Millisecond,
		},
		Clock: func() time.Duration { return time.Since(start) },
		Sleep: time.Sleep,
	})
	if err == nil || !strings.Contains(err.Error(), "still stalled") {
		t.Fatalf("permanently stalled shard returned %v, want still-stalled failure", err)
	}
}

func TestWatchdogNeedsClockAndSleep(t *testing.T) {
	sup, err := NewSupervisor(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Run(RunOptions{Watchdog: WatchdogConfig{StallDeadline: time.Second}}); err == nil {
		t.Fatal("watchdog without Clock/Sleep accepted")
	}
}

func TestCorruptManifestRecomputed(t *testing.T) {
	cfg := testConfig()
	want := runCanonical(t, cfg, RunOptions{})
	dir := t.TempDir()
	sup, err := NewSupervisor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Run(RunOptions{Dir: dir, Hooks: abortFrom(3 * cfg.Sessions / 4)}); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run returned %v", err)
	}
	path := ManifestPath(dir, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[40] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var logs []string
	sup2, err := NewSupervisor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := sup2.Run(RunOptions{Dir: dir, Resume: true, Logf: func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	}})
	if err != nil {
		t.Fatalf("resume over corrupt manifest failed: %v", err)
	}
	recomputed := 0
	for _, l := range logs {
		if strings.Contains(l, "recomputing") {
			recomputed++
		}
	}
	if recomputed != 1 {
		t.Fatalf("%d shards recomputed, want exactly the corrupted one:\n%s", recomputed, strings.Join(logs, "\n"))
	}
	got, err := agg.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-corruption aggregate differs:\n%s\nvs\n%s", got, want)
	}
}

func TestStopChannelInterrupts(t *testing.T) {
	cfg := testConfig()
	sup, err := NewSupervisor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sup.Plans()); got != cfg.Sessions {
		t.Fatalf("supervisor derived %d plans, want %d", got, cfg.Sessions)
	}
	stop := make(chan struct{})
	close(stop)
	dir := t.TempDir()
	if _, err := sup.Run(RunOptions{Dir: dir, Stop: stop}); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("pre-fired stop returned %v, want ErrInterrupted", err)
	}
}

func TestAggregateSchemaStable(t *testing.T) {
	// The canonical JSON is a CI contract (md5-compared across kill/resume);
	// pin the top-level field set so accidental schema drift is loud.
	cfg := testConfig()
	b := runCanonical(t, cfg, RunOptions{})
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"format", "sessions", "seed", "scheme", "completed", "quarantined",
		"restarts", "profile_sessions", "energy_j", "radio_j", "drop_rate",
		"rebuffer_rate", "startup_ms", "dram_per_frame_kb",
		"total_frames", "total_drops", "total_rebuffers", "total_energy_j",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("aggregate JSON missing %q", key)
		}
	}
	var agg Aggregate
	if err := json.Unmarshal(b, &agg); err != nil {
		t.Fatal(err)
	}
	if agg.Completed != cfg.Sessions || agg.EnergyJ.N != int64(cfg.Sessions) {
		t.Fatalf("aggregate counts off: %d completed, energy N %d", agg.Completed, agg.EnergyJ.N)
	}
	if agg.EnergyJ.Mean <= 0 || agg.TotalEnergyJ <= 0 || agg.TotalFrames <= 0 {
		t.Fatalf("aggregate carries non-positive totals: %+v", agg)
	}
	if agg.DramPerFrame.HiKB <= 0 || len(agg.DramPerFrame.Counts) != dramHistBins {
		t.Fatalf("dram histogram malformed: %+v", agg.DramPerFrame)
	}
	var n int64
	for _, c := range agg.DramPerFrame.Counts {
		n += c
	}
	if n != int64(cfg.Sessions) {
		t.Fatalf("dram histogram holds %d sessions, want %d", n, cfg.Sessions)
	}
}
