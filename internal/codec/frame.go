// Package codec implements a from-scratch toy block video codec with the
// same pipeline structure as the standards the paper targets (H.264/H.265/
// VP9): frames are split into square macroblocks (mabs), each mab is
// predicted (intra from neighbours, or motion-compensated from reference
// frames for P/B mabs), and the residual is transformed with an integer 4x4
// (generally 2^k x 2^k) transform, quantized, zig-zag scanned, run-length
// coded and entropy coded with Exp-Golomb codes into a real bitstream.
//
// The codec exists to drive the decoder-IP and MACH models with faithful
// *work* (bits parsed, coefficients reconstructed, reference fetches) and
// faithful *content* (decoded pixel streams whose intra/inter similarity the
// content caches exploit). It is lossless at Quant=1 for the transform path
// and visually lossy-but-stable at higher quantizers.
package codec

import (
	"fmt"
	"math"
)

// BytesPerPixel is the decoded pixel size: RGB, 8 bits per channel, matching
// the Android framebuffer format the paper assumes (§4).
const BytesPerPixel = 3

// Frame is a decoded RGB image, row-major, tightly packed.
type Frame struct {
	W, H int
	Pix  []byte // len == W*H*BytesPerPixel
}

// NewFrame allocates a zeroed (black) frame.
func NewFrame(w, h int) *Frame {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("codec: invalid frame size %dx%d", w, h))
	}
	return &Frame{W: w, H: h, Pix: make([]byte, w*h*BytesPerPixel)}
}

// Clone returns a deep copy of f.
func (f *Frame) Clone() *Frame {
	g := &Frame{W: f.W, H: f.H, Pix: make([]byte, len(f.Pix))}
	copy(g.Pix, f.Pix)
	return g
}

// Offset returns the byte offset of pixel (x, y).
func (f *Frame) Offset(x, y int) int { return (y*f.W + x) * BytesPerPixel }

// At returns the RGB value at (x, y).
func (f *Frame) At(x, y int) (r, g, b byte) {
	o := f.Offset(x, y)
	return f.Pix[o], f.Pix[o+1], f.Pix[o+2]
}

// Set writes the RGB value at (x, y).
func (f *Frame) Set(x, y int, r, g, b byte) {
	o := f.Offset(x, y)
	f.Pix[o], f.Pix[o+1], f.Pix[o+2] = r, g, b
}

// SizeBytes returns the decoded frame footprint.
func (f *Frame) SizeBytes() int { return len(f.Pix) }

// CopyBlock copies the size x size block whose top-left pixel is (x0, y0)
// into dst (size*size*BytesPerPixel bytes, row-major). Out-of-bounds source
// pixels are clamped to the frame edge, so motion vectors may point slightly
// outside the frame as in real codecs.
func (f *Frame) CopyBlock(x0, y0, size int, dst []byte) {
	need := size * size * BytesPerPixel
	if len(dst) < need {
		panic(fmt.Sprintf("codec: CopyBlock dst %d < %d", len(dst), need))
	}
	for dy := 0; dy < size; dy++ {
		y := clamp(y0+dy, 0, f.H-1)
		for dx := 0; dx < size; dx++ {
			x := clamp(x0+dx, 0, f.W-1)
			so := f.Offset(x, y)
			do := (dy*size + dx) * BytesPerPixel
			dst[do] = f.Pix[so]
			dst[do+1] = f.Pix[so+1]
			dst[do+2] = f.Pix[so+2]
		}
	}
}

// SetBlock writes a size x size block (row-major RGB) with its top-left at
// (x0, y0). The block must lie fully inside the frame.
func (f *Frame) SetBlock(x0, y0, size int, src []byte) {
	if x0 < 0 || y0 < 0 || x0+size > f.W || y0+size > f.H {
		panic(fmt.Sprintf("codec: SetBlock %d,%d size %d outside %dx%d", x0, y0, size, f.W, f.H))
	}
	for dy := 0; dy < size; dy++ {
		so := dy * size * BytesPerPixel
		do := f.Offset(x0, y0+dy)
		copy(f.Pix[do:do+size*BytesPerPixel], src[so:so+size*BytesPerPixel])
	}
}

// MabsPerRow returns how many mabs of the given size fit across the frame.
// The frame dimensions must be exact multiples of the mab size.
func (f *Frame) MabsPerRow(mabSize int) int { return f.W / mabSize }

// MabsPerCol returns how many mab rows the frame has.
func (f *Frame) MabsPerCol(mabSize int) int { return f.H / mabSize }

// NumMabs returns the total mab count for the given mab size.
func (f *Frame) NumMabs(mabSize int) int {
	return f.MabsPerRow(mabSize) * f.MabsPerCol(mabSize)
}

// PSNR computes the peak signal-to-noise ratio between two equally sized
// frames, in dB. Identical frames return +Inf.
func PSNR(a, b *Frame) float64 {
	if a.W != b.W || a.H != b.H {
		panic("codec: PSNR on mismatched frames")
	}
	var se float64
	for i := range a.Pix {
		d := float64(int(a.Pix[i]) - int(b.Pix[i]))
		se += d * d
	}
	if se == 0 {
		return math.Inf(1)
	}
	mse := se / float64(len(a.Pix))
	return 10 * math.Log10(255*255/mse)
}

// SAD returns the sum of absolute differences between two RGB blocks.
func SAD(a, b []byte) int {
	if len(a) != len(b) {
		panic("codec: SAD on mismatched blocks")
	}
	s := 0
	for i := range a {
		d := int(a[i]) - int(b[i])
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampByte(v int32) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}
