package codec

import (
	"math"
	"testing"
)

// TestEncodeDecodeMabSizes runs the full codec loop at every supported mab
// size (the Fig 12c sweep depends on all of them decoding correctly).
func TestEncodeDecodeMabSizes(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		p := DefaultParams(32, 32)
		p.MabSize = n
		p.Quant = 1
		enc, err := NewEncoder(p)
		if err != nil {
			t.Fatalf("mab %d: %v", n, err)
		}
		dec, err := NewDecoder(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			src := gradientFrame(32, 32, i*3)
			efs, err := enc.Push(src)
			if err != nil {
				t.Fatalf("mab %d: %v", n, err)
			}
			for _, ef := range efs {
				got, work, err := dec.Decode(ef)
				if err != nil {
					t.Fatalf("mab %d: %v", n, err)
				}
				if !math.IsInf(PSNR(src, got), 1) {
					t.Fatalf("mab %d frame %d not lossless at quant=1", n, i)
				}
				if len(work.Mabs) != (32/n)*(32/n) {
					t.Fatalf("mab %d: %d works", n, len(work.Mabs))
				}
			}
		}
	}
}

// TestQuantizerQualityMonotonic: coarser quantizers must not improve PSNR
// and must not grow the bitstream.
func TestQuantizerQualityMonotonic(t *testing.T) {
	src := gradientFrame(64, 32, 1)
	prevPSNR := math.Inf(1)
	prevBits := int64(1 << 62)
	for _, q := range []int32{1, 4, 8, 16, 32} {
		p := DefaultParams(64, 32)
		p.Quant = q
		enc, _ := NewEncoder(p)
		dec, _ := NewDecoder(p)
		efs, err := enc.Push(src)
		if err != nil {
			t.Fatal(err)
		}
		got, work, err := dec.Decode(efs[0])
		if err != nil {
			t.Fatal(err)
		}
		ps := PSNR(src, got)
		if ps > prevPSNR+0.01 {
			t.Fatalf("quant %d: PSNR %.1f rose above %.1f", q, ps, prevPSNR)
		}
		// Bits shrink with coarser quant up to closed-loop prediction
		// noise (coarser reconstructions can worsen later predictions).
		if float64(work.TotalBits) > 1.15*float64(prevBits) {
			t.Fatalf("quant %d: bits %d grew well above %d", q, work.TotalBits, prevBits)
		}
		prevPSNR, prevBits = ps, work.TotalBits
	}
}

// TestEncoderFlushBFrames: trailing B candidates at stream end must degrade
// to single-reference frames and still decode.
func TestEncoderFlushBFrames(t *testing.T) {
	p := DefaultParams(16, 16)
	p.BFrames = 2
	p.Quant = 1
	enc, _ := NewEncoder(p)
	dec, _ := NewDecoder(p)
	var decoded int
	for i := 0; i < 4; i++ { // anchors at 0 and 3; frames 1,2 buffered
		efs, err := enc.Push(gradientFrame(16, 16, i))
		if err != nil {
			t.Fatal(err)
		}
		for _, ef := range efs {
			if _, _, err := dec.Decode(ef); err != nil {
				t.Fatal(err)
			}
			decoded++
		}
	}
	// Push one more so frame 4 is buffered, then flush.
	efs, err := enc.Push(gradientFrame(16, 16, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, ef := range efs {
		if _, _, err := dec.Decode(ef); err != nil {
			t.Fatal(err)
		}
		decoded++
	}
	flushed, err := enc.Flush()
	if err != nil {
		t.Fatal(err)
	}
	for _, ef := range flushed {
		if ef.Type == FrameB {
			t.Fatal("flushed frames must not be B (no forward anchor)")
		}
		if _, _, err := dec.Decode(ef); err != nil {
			t.Fatalf("flushed frame: %v", err)
		}
		decoded++
	}
	if decoded != 5 {
		t.Fatalf("decoded %d of 5", decoded)
	}
}

// TestBitstreamSizeTracksContent: noisy content must cost more bits than
// flat content — the property the decode-time model rides on.
func TestBitstreamSizeTracksContent(t *testing.T) {
	flat := NewFrame(64, 32)
	for i := range flat.Pix {
		flat.Pix[i] = 80
	}
	noisy := NewFrame(64, 32)
	seed := uint32(12345)
	for i := range noisy.Pix {
		seed = seed*1664525 + 1013904223
		noisy.Pix[i] = byte(seed >> 24)
	}
	size := func(f *Frame) int {
		p := DefaultParams(64, 32)
		enc, _ := NewEncoder(p)
		efs, err := enc.Push(f)
		if err != nil {
			t.Fatal(err)
		}
		return efs[0].SizeBytes()
	}
	sf, sn := size(flat), size(noisy)
	if sn < 8*sf {
		t.Fatalf("noisy frame %dB should dwarf flat %dB", sn, sf)
	}
}

// TestDecoderWorkCountsConsistent: per-frame work counts must sum to the
// mab count and agree with the frame type.
func TestDecoderWorkCountsConsistent(t *testing.T) {
	p := DefaultParams(32, 16)
	enc, _ := NewEncoder(p)
	dec, _ := NewDecoder(p)
	for i := 0; i < 6; i++ {
		efs, err := enc.Push(gradientFrame(32, 16, i))
		if err != nil {
			t.Fatal(err)
		}
		for _, ef := range efs {
			_, work, err := dec.Decode(ef)
			if err != nil {
				t.Fatal(err)
			}
			if work.CountI+work.CountP+work.CountB != len(work.Mabs) {
				t.Fatalf("counts %d+%d+%d != %d", work.CountI, work.CountP, work.CountB, len(work.Mabs))
			}
			if ef.Type == FrameI && (work.CountP != 0 || work.CountB != 0) {
				t.Fatal("I frames must be all-intra")
			}
			var bits int64
			for _, m := range work.Mabs {
				bits += int64(m.Bits)
			}
			if bits > work.TotalBits {
				t.Fatalf("mab bits %d exceed frame total %d", bits, work.TotalBits)
			}
		}
	}
}
