package codec

import "fmt"

// Encoder compresses frames pushed in display order and emits encoded frames
// in decode order (anchors before the B frames that reference them). It runs
// a closed loop: predictions use reconstructed pixels, exactly what the
// decoder will see, so encoder and decoder reconstructions are bit-identical.
type Encoder struct {
	p Params

	display int // next display index to be pushed

	prevAnchor   *Frame // reconstruction of the last emitted anchor
	prevAnchorIx int
	pendingB     []*pendingFrame // display-order B candidates awaiting next anchor

	scratch encScratch
}

type pendingFrame struct {
	frame *Frame
	index int
}

type encScratch struct {
	src   []byte
	pred  []byte
	resid [3][]int32
	cand  []byte
}

// NewEncoder returns an encoder for p, or an error for invalid parameters.
func NewEncoder(p Params) (*Encoder, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	mb := p.MabBytes()
	n := p.MabSize * p.MabSize
	e := &Encoder{p: p, prevAnchorIx: -1}
	e.scratch = encScratch{
		src:  make([]byte, mb),
		pred: make([]byte, mb),
		cand: make([]byte, mb),
	}
	for c := 0; c < 3; c++ {
		e.scratch.resid[c] = make([]int32, n)
	}
	return e, nil
}

// Params returns the encoder configuration.
func (e *Encoder) Params() Params { return e.p }

// Push encodes one display-order frame and returns zero or more encoded
// frames in decode order. With BFrames=0 every push returns exactly one
// frame; otherwise B frames are buffered until their forward anchor arrives.
func (e *Encoder) Push(f *Frame) ([]*EncodedFrame, error) {
	if f.W != e.p.Width || f.H != e.p.Height {
		return nil, fmt.Errorf("codec: frame %dx%d does not match params %dx%d", f.W, f.H, e.p.Width, e.p.Height)
	}
	idx := e.display
	e.display++

	isAnchor := e.p.BFrames == 0 || idx%(e.p.BFrames+1) == 0 || e.prevAnchor == nil
	if !isAnchor {
		e.pendingB = append(e.pendingB, &pendingFrame{frame: f.Clone(), index: idx})
		return nil, nil
	}

	ft := FrameP
	if idx%e.p.GOPLength == 0 || e.prevAnchor == nil {
		ft = FrameI
	}
	backRef := e.prevAnchor
	anchor, recon, err := e.encodeFrame(f, idx, ft, backRef, nil)
	if err != nil {
		return nil, err
	}
	out := []*EncodedFrame{anchor}

	// Now the buffered B frames have both their references reconstructed.
	for _, pb := range e.pendingB {
		bf, _, err := e.encodeFrame(pb.frame, pb.index, FrameB, backRef, recon)
		if err != nil {
			return nil, err
		}
		out = append(out, bf)
	}
	e.pendingB = e.pendingB[:0]
	e.prevAnchor = recon
	e.prevAnchorIx = idx
	return out, nil
}

// Flush encodes any buffered B frames against the last anchor only (they
// degrade to single-reference prediction) and resets the pending queue.
func (e *Encoder) Flush() ([]*EncodedFrame, error) {
	var out []*EncodedFrame
	for _, pb := range e.pendingB {
		ef, _, err := e.encodeFrame(pb.frame, pb.index, FrameP, e.prevAnchor, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, ef)
	}
	e.pendingB = e.pendingB[:0]
	return out, nil
}

// EncodeSequence is a convenience wrapper that pushes every frame and
// flushes, returning the full decode-order stream.
func (e *Encoder) EncodeSequence(frames []*Frame) ([]*EncodedFrame, error) {
	var out []*EncodedFrame
	for _, f := range frames {
		efs, err := e.Push(f)
		if err != nil {
			return nil, err
		}
		out = append(out, efs...)
	}
	efs, err := e.Flush()
	if err != nil {
		return nil, err
	}
	return append(out, efs...), nil
}

// encodeFrame compresses one frame of the given type. back is the backward
// reference (nil only for I frames at stream start); fwd is the forward
// reference for B frames.
func (e *Encoder) encodeFrame(src *Frame, idx int, ft FrameType, back, fwd *Frame) (*EncodedFrame, *Frame, error) {
	p := e.p
	n := p.MabSize
	recon := NewFrame(p.Width, p.Height)
	w := NewBitWriter()

	w.WriteUE(uint32(ft))
	w.WriteUE(uint32(idx))
	w.WriteUE(uint32(p.Quant))

	threshold := int(e.p.InterThresholdPerPixel * float64(p.MabBytes()))
	numMabs := 0

	for y0 := 0; y0 < p.Height; y0 += n {
		for x0 := 0; x0 < p.Width; x0 += n {
			numMabs++
			src.CopyBlock(x0, y0, n, e.scratch.src)

			mt := MabI
			var mv, mvb, mvf MotionVector
			var mode IntraMode
			interSAD := int(^uint(0) >> 1)

			switch ft {
			case FrameP:
				if back != nil {
					mv, interSAD = MotionSearch(back, x0, y0, n, p.SearchRadius, e.scratch.src)
					if interSAD <= threshold {
						mt = MabP
					}
				}
			case FrameB:
				if back != nil && fwd != nil {
					var sb, sf int
					mvb, sb = MotionSearch(back, x0, y0, n, p.SearchRadius, e.scratch.src)
					mvf, sf = MotionSearch(fwd, x0, y0, n, p.SearchRadius, e.scratch.src)
					CompensateBi(back, fwd, x0, y0, n, mvb, mvf, e.scratch.cand)
					if bi := SAD(e.scratch.src, e.scratch.cand); bi <= threshold {
						mt, interSAD = MabB, bi
					} else if sb <= threshold {
						mt, interSAD, mv = MabP, sb, mvb
					} else {
						_ = sf
					}
				}
			}

			// Build the prediction; intra competes when inter was rejected.
			switch mt {
			case MabP:
				ref := back
				Compensate(ref, x0, y0, n, mv, e.scratch.pred)
			case MabB:
				CompensateBi(back, fwd, x0, y0, n, mvb, mvf, e.scratch.pred)
			default:
				mode, _ = BestIntraMode(recon, x0, y0, n, e.scratch.src)
				IntraPredict(recon, x0, y0, n, mode, e.scratch.pred)
			}
			_ = interSAD

			// Syntax: mab type, then prediction parameters.
			w.WriteUE(uint32(mt))
			switch mt {
			case MabI:
				w.WriteUE(uint32(mode))
			case MabP:
				w.WriteSE(int32(mv.DX))
				w.WriteSE(int32(mv.DY))
			case MabB:
				w.WriteSE(int32(mvb.DX))
				w.WriteSE(int32(mvb.DY))
				w.WriteSE(int32(mvf.DX))
				w.WriteSE(int32(mvf.DY))
			}

			// Residual per channel: transform, quantize, entropy-code, and
			// reconstruct in the loop.
			for c := 0; c < 3; c++ {
				res := e.scratch.resid[c]
				for i := 0; i < n*n; i++ {
					res[i] = int32(e.scratch.src[i*3+c]) - int32(e.scratch.pred[i*3+c])
				}
				ForwardTransform(res, n)
				Quantize(res, p.Quant)
				EncodeCoeffs(w, res, n)
				Dequantize(res, p.Quant)
				InverseTransform(res, n)
				for i := 0; i < n*n; i++ {
					e.scratch.pred[i*3+c] = clampByte(int32(e.scratch.pred[i*3+c]) + res[i])
				}
			}
			recon.SetBlock(x0, y0, n, e.scratch.pred)
		}
	}

	ef := &EncodedFrame{
		Type:         ft,
		DisplayIndex: idx,
		Data:         w.Bytes(),
		NumMabs:      numMabs,
	}
	return ef, recon, nil
}
