package codec

// Colour-space support. The paper assumes RGB frame buffers (Android
// gralloc) but notes the technique "is generic and can be applied to all
// the other color spaces (e.g., YUV, YCbCr)" (§4). These converters let the
// content-caching experiments verify that claim: YUV444 keeps the 3-byte
// pixel layout (so every downstream component works unchanged), and YUV420
// round-trips the subsampled planar form real decoders emit.

// clamp255 clamps the fixed-point conversion results.
func clamp255(v int32) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

// rgbToYUV converts one pixel with BT.601 full-range fixed-point math.
func rgbToYUV(r, g, b byte) (y, u, v byte) {
	ri, gi, bi := int32(r), int32(g), int32(b)
	yy := (77*ri + 150*gi + 29*bi) >> 8
	uu := ((-43*ri - 85*gi + 128*bi) >> 8) + 128
	vv := ((128*ri - 107*gi - 21*bi) >> 8) + 128
	return clamp255(yy), clamp255(uu), clamp255(vv)
}

// yuvToRGB inverts rgbToYUV (within fixed-point rounding error).
func yuvToRGB(y, u, v byte) (r, g, b byte) {
	yi, ui, vi := int32(y), int32(u)-128, int32(v)-128
	rr := yi + (359*vi)>>8
	gg := yi - (88*ui+183*vi)>>8
	bb := yi + (454*ui)>>8
	return clamp255(rr), clamp255(gg), clamp255(bb)
}

// ToYUV444 converts an RGB frame to YUV444 with the same interleaved
// 3-byte-per-pixel layout (byte order Y, U, V).
func ToYUV444(f *Frame) *Frame {
	out := NewFrame(f.W, f.H)
	for i := 0; i < len(f.Pix); i += 3 {
		y, u, v := rgbToYUV(f.Pix[i], f.Pix[i+1], f.Pix[i+2])
		out.Pix[i], out.Pix[i+1], out.Pix[i+2] = y, u, v
	}
	return out
}

// FromYUV444 converts a YUV444 frame back to RGB.
func FromYUV444(f *Frame) *Frame {
	out := NewFrame(f.W, f.H)
	for i := 0; i < len(f.Pix); i += 3 {
		r, g, b := yuvToRGB(f.Pix[i], f.Pix[i+1], f.Pix[i+2])
		out.Pix[i], out.Pix[i+1], out.Pix[i+2] = r, g, b
	}
	return out
}

// YUV420 is a planar 4:2:0 image: full-resolution luma, quarter-resolution
// chroma — the format hardware decoders actually emit before the display
// pipeline converts to RGB.
type YUV420 struct {
	W, H   int
	Y      []byte // W*H
	Cb, Cr []byte // (W/2)*(H/2) each
}

// SizeBytes returns the planar footprint (1.5 bytes per pixel).
func (p *YUV420) SizeBytes() int { return len(p.Y) + len(p.Cb) + len(p.Cr) }

// ToYUV420 converts an RGB frame to planar 4:2:0 (chroma averaged over each
// 2x2 block). W and H must be even.
func ToYUV420(f *Frame) *YUV420 {
	if f.W%2 != 0 || f.H%2 != 0 {
		panic("codec: YUV420 needs even dimensions")
	}
	p := &YUV420{
		W: f.W, H: f.H,
		Y:  make([]byte, f.W*f.H),
		Cb: make([]byte, f.W/2*f.H/2),
		Cr: make([]byte, f.W/2*f.H/2),
	}
	for yy := 0; yy < f.H; yy++ {
		for xx := 0; xx < f.W; xx++ {
			r, g, b := f.At(xx, yy)
			lum, _, _ := rgbToYUV(r, g, b)
			p.Y[yy*f.W+xx] = lum
		}
	}
	for cy := 0; cy < f.H/2; cy++ {
		for cx := 0; cx < f.W/2; cx++ {
			var su, sv int32
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					r, g, b := f.At(cx*2+dx, cy*2+dy)
					_, u, v := rgbToYUV(r, g, b)
					su += int32(u)
					sv += int32(v)
				}
			}
			p.Cb[cy*(f.W/2)+cx] = byte((su + 2) / 4)
			p.Cr[cy*(f.W/2)+cx] = byte((sv + 2) / 4)
		}
	}
	return p
}

// FromYUV420 converts planar 4:2:0 back to an RGB frame (chroma replicated
// per 2x2 block).
func FromYUV420(p *YUV420) *Frame {
	f := NewFrame(p.W, p.H)
	for yy := 0; yy < p.H; yy++ {
		for xx := 0; xx < p.W; xx++ {
			lum := p.Y[yy*p.W+xx]
			u := p.Cb[(yy/2)*(p.W/2)+xx/2]
			v := p.Cr[(yy/2)*(p.W/2)+xx/2]
			r, g, b := yuvToRGB(lum, u, v)
			f.Set(xx, yy, r, g, b)
		}
	}
	return f
}
