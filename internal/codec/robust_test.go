package codec

import (
	"math/rand"
	"testing"
	"time"
)

// TestDecoderSurvivesGarbage feeds random bytes to the decoder: every input
// must produce a clean error or a frame — never a panic and never a hang.
func TestDecoderSurvivesGarbage(t *testing.T) {
	p := DefaultParams(16, 16)
	rng := rand.New(rand.NewSource(99))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			dec, _ := NewDecoder(p)
			data := make([]byte, rng.Intn(200))
			rng.Read(data)
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("iteration %d: decoder panicked: %v", i, r)
					}
				}()
				_, _, _ = dec.Decode(&EncodedFrame{Data: data})
			}()
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("decoder hung on garbage input")
	}
}

// TestDecoderSurvivesBitflips corrupts valid bitstreams one bit at a time:
// the decoder must either error or produce a (possibly wrong) frame, but
// state for subsequent valid frames must not corrupt the process.
func TestDecoderSurvivesBitflips(t *testing.T) {
	p := DefaultParams(16, 16)
	p.Quant = 1
	enc, _ := NewEncoder(p)
	efs, err := enc.Push(gradientFrame(16, 16, 1))
	if err != nil || len(efs) != 1 {
		t.Fatal(err)
	}
	orig := efs[0].Data
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		data := make([]byte, len(orig))
		copy(data, orig)
		bit := rng.Intn(len(data) * 8)
		data[bit/8] ^= 1 << (bit % 8)
		dec, _ := NewDecoder(p)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("bitflip %d: panic: %v", bit, r)
				}
			}()
			_, _, _ = dec.Decode(&EncodedFrame{Data: data})
		}()
	}
}

// TestEncoderDeterministic: two encoders over the same input produce
// byte-identical streams (the trace-replay methodology depends on it).
func TestEncoderDeterministic(t *testing.T) {
	p := DefaultParams(32, 16)
	run := func() []byte {
		enc, _ := NewEncoder(p)
		var out []byte
		for i := 0; i < 3; i++ {
			efs, err := enc.Push(gradientFrame(32, 16, i))
			if err != nil {
				t.Fatal(err)
			}
			for _, ef := range efs {
				out = append(out, ef.Data...)
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams differ at byte %d", i)
		}
	}
}
