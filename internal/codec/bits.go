package codec

import (
	"errors"
	"fmt"
)

// BitWriter packs bits MSB-first into a byte slice. It is the entropy-coder
// substrate; the decoder-IP timing model charges work per bit parsed.
type BitWriter struct {
	buf  []byte
	cur  byte
	nCur uint // bits used in cur
	bits int64
}

// NewBitWriter returns an empty writer.
func NewBitWriter() *BitWriter { return &BitWriter{} }

// WriteBit appends one bit.
func (w *BitWriter) WriteBit(b uint32) {
	w.cur = w.cur<<1 | byte(b&1)
	w.nCur++
	w.bits++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// WriteBits appends the low n bits of v, most significant first. n <= 32.
func (w *BitWriter) WriteBits(v uint32, n uint) {
	if n > 32 {
		panic("codec: WriteBits n > 32")
	}
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(v >> uint(i))
	}
}

// WriteUE appends v as an unsigned Exp-Golomb code (as in H.264 ue(v)).
func (w *BitWriter) WriteUE(v uint32) {
	x := uint64(v) + 1
	n := uint(0)
	for t := x; t > 1; t >>= 1 {
		n++
	}
	for i := uint(0); i < n; i++ {
		w.WriteBit(0)
	}
	for i := int(n); i >= 0; i-- {
		w.WriteBit(uint32(x >> uint(i)))
	}
}

// WriteSE appends v as a signed Exp-Golomb code (se(v) mapping).
func (w *BitWriter) WriteSE(v int32) {
	var u uint32
	if v > 0 {
		u = uint32(v)*2 - 1
	} else {
		u = uint32(-v) * 2
	}
	w.WriteUE(u)
}

// Bits returns the number of bits written so far.
func (w *BitWriter) Bits() int64 { return w.bits }

// Bytes flushes the partial byte (zero-padded) and returns the buffer. The
// writer remains usable; further writes continue bit-exact after the pad is
// dropped on the next flush.
func (w *BitWriter) Bytes() []byte {
	out := make([]byte, len(w.buf), len(w.buf)+1)
	copy(out, w.buf)
	if w.nCur > 0 {
		out = append(out, w.cur<<(8-w.nCur))
	}
	return out
}

// ErrBitstream is returned when a reader runs past the end of the stream or
// decodes a malformed code.
var ErrBitstream = errors.New("codec: malformed or truncated bitstream")

// BitReader consumes bits MSB-first from a byte slice.
type BitReader struct {
	buf  []byte
	pos  int  // byte position
	nCur uint // bits consumed from buf[pos]
	bits int64
}

// NewBitReader wraps data for reading.
func NewBitReader(data []byte) *BitReader { return &BitReader{buf: data} }

// ReadBit consumes one bit.
func (r *BitReader) ReadBit() (uint32, error) {
	if r.pos >= len(r.buf) {
		return 0, ErrBitstream
	}
	b := (r.buf[r.pos] >> (7 - r.nCur)) & 1
	r.nCur++
	r.bits++
	if r.nCur == 8 {
		r.nCur = 0
		r.pos++
	}
	return uint32(b), nil
}

// ReadBits consumes n bits (n <= 32) and returns them right-aligned.
func (r *BitReader) ReadBits(n uint) (uint32, error) {
	if n > 32 {
		panic("codec: ReadBits n > 32")
	}
	var v uint32
	for i := uint(0); i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | b
	}
	return v, nil
}

// ReadUE consumes an unsigned Exp-Golomb code.
func (r *BitReader) ReadUE() (uint32, error) {
	n := uint(0)
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		n++
		if n > 32 {
			return 0, fmt.Errorf("%w: ue prefix too long", ErrBitstream)
		}
	}
	rest, err := r.ReadBits(n)
	if err != nil {
		return 0, err
	}
	return uint32((uint64(1)<<n | uint64(rest)) - 1), nil
}

// ReadSE consumes a signed Exp-Golomb code.
func (r *BitReader) ReadSE() (int32, error) {
	u, err := r.ReadUE()
	if err != nil {
		return 0, err
	}
	if u%2 == 1 {
		return int32(u/2 + 1), nil
	}
	return -int32(u / 2), nil
}

// BitsRead returns the number of bits consumed so far.
func (r *BitReader) BitsRead() int64 { return r.bits }
