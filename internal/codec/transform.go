package codec

// Integer block transform and quantization. The transform is the 2^k-point
// Walsh-Hadamard transform applied separably to rows and columns; like the
// H.264 core transform it is integer-exact, self-inverse up to a known scale
// (N*N for an NxN block), and energy-compacting on the smooth residuals that
// prediction leaves behind. Quantization divides coefficients by a uniform
// step with round-to-nearest; Quant=1 is lossless.

import "fmt"

// hadamardRows applies an in-place N-point Hadamard butterfly to each row of
// the NxN matrix m (N must be a power of two).
func hadamardRows(m []int32, n int) {
	for r := 0; r < n; r++ {
		row := m[r*n : (r+1)*n]
		for span := 1; span < n; span <<= 1 {
			for i := 0; i < n; i += span << 1 {
				for j := i; j < i+span; j++ {
					a, b := row[j], row[j+span]
					row[j], row[j+span] = a+b, a-b
				}
			}
		}
	}
}

func transpose(m []int32, n int) {
	for r := 0; r < n; r++ {
		for c := r + 1; c < n; c++ {
			m[r*n+c], m[c*n+r] = m[c*n+r], m[r*n+c]
		}
	}
}

// ForwardTransform computes the 2-D Hadamard transform of the NxN residual
// block in place. n must be a power of two in [2, 16].
func ForwardTransform(block []int32, n int) {
	checkTransformShape(block, n)
	hadamardRows(block, n)
	transpose(block, n)
	hadamardRows(block, n)
	transpose(block, n)
}

// InverseTransform inverts ForwardTransform in place, including the N*N
// normalization, with round-to-nearest so quantized paths stay centred.
func InverseTransform(block []int32, n int) {
	checkTransformShape(block, n)
	hadamardRows(block, n)
	transpose(block, n)
	hadamardRows(block, n)
	transpose(block, n)
	scale := int32(n * n)
	half := scale / 2
	for i, v := range block {
		if v >= 0 {
			block[i] = (v + half) / scale
		} else {
			block[i] = -((-v + half) / scale)
		}
	}
}

func checkTransformShape(block []int32, n int) {
	if n < 2 || n > 16 || n&(n-1) != 0 {
		panic(fmt.Sprintf("codec: transform size %d not a power of two in [2,16]", n))
	}
	if len(block) < n*n {
		panic(fmt.Sprintf("codec: transform block %d < %d", len(block), n*n))
	}
}

// Quantize divides each coefficient by step with round-to-nearest, in place,
// and returns the number of nonzero quantized coefficients. step must be >= 1.
func Quantize(block []int32, step int32) (nonzero int) {
	if step < 1 {
		panic("codec: quantizer step < 1")
	}
	half := step / 2
	for i, v := range block {
		var q int32
		if v >= 0 {
			q = (v + half) / step
		} else {
			q = -((-v + half) / step)
		}
		block[i] = q
		if q != 0 {
			nonzero++
		}
	}
	return nonzero
}

// Dequantize multiplies each coefficient by step in place.
func Dequantize(block []int32, step int32) {
	for i := range block {
		block[i] *= step
	}
}

// zigzagCache memoizes scan orders per block size.
var zigzagCache = map[int][]int{}

// ZigZag returns the zig-zag scan order for an NxN block: the permutation
// from raster index to scan position, ordering coefficients by increasing
// anti-diagonal (low frequencies first), which groups trailing zeros for the
// run-length coder.
func ZigZag(n int) []int {
	if z, ok := zigzagCache[n]; ok {
		return z
	}
	order := make([]int, 0, n*n)
	for s := 0; s <= 2*(n-1); s++ {
		if s%2 == 0 { // walk up-right
			for y := min(s, n-1); y >= 0 && s-y < n; y-- {
				order = append(order, y*n+(s-y))
			}
		} else { // walk down-left
			for x := min(s, n-1); x >= 0 && s-x < n; x-- {
				order = append(order, (s-x)*n+x)
			}
		}
	}
	zigzagCache[n] = order
	return order
}

// EncodeCoeffs writes the quantized NxN coefficient block as zig-zag-ordered
// (run, level) pairs with Exp-Golomb codes, terminated by an end-of-block
// marker, and returns the number of nonzero levels written.
func EncodeCoeffs(w *BitWriter, block []int32, n int) (nonzero int) {
	order := ZigZag(n)
	run := uint32(0)
	for _, idx := range order {
		v := block[idx]
		if v == 0 {
			run++
			continue
		}
		w.WriteBit(1) // pair marker
		w.WriteUE(run)
		w.WriteSE(v)
		run = 0
		nonzero++
	}
	w.WriteBit(0) // end of block
	return nonzero
}

// DecodeCoeffs reads what EncodeCoeffs wrote into block (zeroing it first)
// and returns the nonzero count.
func DecodeCoeffs(r *BitReader, block []int32, n int) (nonzero int, err error) {
	order := ZigZag(n)
	for i := range block[:n*n] {
		block[i] = 0
	}
	pos := 0
	for {
		marker, err := r.ReadBit()
		if err != nil {
			return nonzero, err
		}
		if marker == 0 {
			return nonzero, nil
		}
		run, err := r.ReadUE()
		if err != nil {
			return nonzero, err
		}
		level, err := r.ReadSE()
		if err != nil {
			return nonzero, err
		}
		pos += int(run)
		if pos >= len(order) || level == 0 {
			return nonzero, fmt.Errorf("%w: coefficient overrun", ErrBitstream)
		}
		block[order[pos]] = level
		pos++
		nonzero++
	}
}
