package codec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestYUVPixelRoundTrip(t *testing.T) {
	f := func(r, g, b byte) bool {
		y, u, v := rgbToYUV(r, g, b)
		r2, g2, b2 := yuvToRGB(y, u, v)
		// Fixed-point BT.601 round trip is within a few levels.
		d := func(a, b byte) int {
			x := int(a) - int(b)
			if x < 0 {
				x = -x
			}
			return x
		}
		return d(r, r2) <= 4 && d(g, g2) <= 4 && d(b, b2) <= 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGreyIsNeutralChroma(t *testing.T) {
	for _, v := range []byte{0, 64, 128, 200, 255} {
		y, u, cv := rgbToYUV(v, v, v)
		if int(u)-128 < -2 || int(u)-128 > 2 || int(cv)-128 < -2 || int(cv)-128 > 2 {
			t.Fatalf("grey %d chroma = %d/%d", v, u, cv)
		}
		if int(y)-int(v) < -2 || int(y)-int(v) > 2 {
			t.Fatalf("grey %d luma = %d", v, y)
		}
	}
}

func TestYUV444FrameRoundTrip(t *testing.T) {
	f := gradientFrame(32, 16, 3)
	back := FromYUV444(ToYUV444(f))
	if p := PSNR(f, back); p < 40 {
		t.Fatalf("YUV444 round-trip PSNR = %.1f dB", p)
	}
}

func TestYUV420RoundTrip(t *testing.T) {
	f := gradientFrame(32, 16, 5)
	p := ToYUV420(f)
	if p.SizeBytes() != 32*16*3/2 {
		t.Fatalf("planar size = %d want %d", p.SizeBytes(), 32*16*3/2)
	}
	back := FromYUV420(p)
	// Chroma subsampling is lossy but smooth gradients survive well.
	if ps := PSNR(f, back); ps < 30 {
		t.Fatalf("YUV420 round-trip PSNR = %.1f dB", ps)
	}
}

func TestYUV420FlatIsExactish(t *testing.T) {
	f := NewFrame(16, 16)
	for i := 0; i < len(f.Pix); i += 3 {
		f.Pix[i], f.Pix[i+1], f.Pix[i+2] = 90, 140, 60
	}
	back := FromYUV420(ToYUV420(f))
	var worst float64
	for i := range f.Pix {
		d := math.Abs(float64(int(f.Pix[i]) - int(back.Pix[i])))
		if d > worst {
			worst = d
		}
	}
	if worst > 4 {
		t.Fatalf("flat colour error = %v levels", worst)
	}
}

func TestYUV420OddDimensionsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd dimensions should panic")
		}
	}()
	f := &Frame{W: 15, H: 16, Pix: make([]byte, 15*16*3)}
	ToYUV420(f)
}

func TestFlatYUVStaysFlat(t *testing.T) {
	// The colour-space generality claim (§4): a flat RGB region converts
	// to a flat YUV region, so zero-gradient gab matching survives the
	// colour-space change.
	f := NewFrame(8, 8)
	for i := 0; i < len(f.Pix); i += 3 {
		f.Pix[i], f.Pix[i+1], f.Pix[i+2] = 10, 200, 90
	}
	y := ToYUV444(f)
	for i := 3; i < len(y.Pix); i++ {
		if y.Pix[i] != y.Pix[i%3] {
			t.Fatal("flat RGB must convert to flat YUV")
		}
	}
}
