package codec

// Intra prediction. I-type mabs are predicted from already-reconstructed
// neighbour pixels of the same frame (§2.2): DC (average of the top row and
// left column), Horizontal (extend left column), or Vertical (extend top
// row). The encoder picks the mode with the lowest SAD against the source.

// IntraMode selects the intra predictor.
type IntraMode uint8

const (
	// IntraDC predicts every pixel as the mean of available neighbours.
	IntraDC IntraMode = iota
	// IntraHorizontal extends the left neighbour column across the block.
	IntraHorizontal
	// IntraVertical extends the top neighbour row down the block.
	IntraVertical

	numIntraModes
)

func (m IntraMode) String() string {
	switch m {
	case IntraDC:
		return "DC"
	case IntraHorizontal:
		return "H"
	case IntraVertical:
		return "V"
	default:
		return "?"
	}
}

// IntraPredict fills dst (size*size*BytesPerPixel) with the prediction for
// the block at (x0, y0) using mode, reading reconstructed neighbours from
// recon. Missing neighbours (frame edges) fall back to mid-grey 128, as in
// real codecs.
func IntraPredict(recon *Frame, x0, y0, size int, mode IntraMode, dst []byte) {
	var top, left [16 * BytesPerPixel]byte
	haveTop := y0 > 0
	haveLeft := x0 > 0
	if haveTop {
		for dx := 0; dx < size; dx++ {
			r, g, b := recon.At(clamp(x0+dx, 0, recon.W-1), y0-1)
			top[dx*3], top[dx*3+1], top[dx*3+2] = r, g, b
		}
	}
	if haveLeft {
		for dy := 0; dy < size; dy++ {
			r, g, b := recon.At(x0-1, clamp(y0+dy, 0, recon.H-1))
			left[dy*3], left[dy*3+1], left[dy*3+2] = r, g, b
		}
	}

	switch mode {
	case IntraHorizontal:
		for dy := 0; dy < size; dy++ {
			var r, g, b byte = 128, 128, 128
			if haveLeft {
				r, g, b = left[dy*3], left[dy*3+1], left[dy*3+2]
			}
			for dx := 0; dx < size; dx++ {
				o := (dy*size + dx) * 3
				dst[o], dst[o+1], dst[o+2] = r, g, b
			}
		}
	case IntraVertical:
		for dx := 0; dx < size; dx++ {
			var r, g, b byte = 128, 128, 128
			if haveTop {
				r, g, b = top[dx*3], top[dx*3+1], top[dx*3+2]
			}
			for dy := 0; dy < size; dy++ {
				o := (dy*size + dx) * 3
				dst[o], dst[o+1], dst[o+2] = r, g, b
			}
		}
	default: // IntraDC
		var sum [3]int
		n := 0
		if haveTop {
			for dx := 0; dx < size; dx++ {
				sum[0] += int(top[dx*3])
				sum[1] += int(top[dx*3+1])
				sum[2] += int(top[dx*3+2])
			}
			n += size
		}
		if haveLeft {
			for dy := 0; dy < size; dy++ {
				sum[0] += int(left[dy*3])
				sum[1] += int(left[dy*3+1])
				sum[2] += int(left[dy*3+2])
			}
			n += size
		}
		var r, g, b byte = 128, 128, 128
		if n > 0 {
			r = byte((sum[0] + n/2) / n)
			g = byte((sum[1] + n/2) / n)
			b = byte((sum[2] + n/2) / n)
		}
		for i := 0; i < size*size; i++ {
			dst[i*3], dst[i*3+1], dst[i*3+2] = r, g, b
		}
	}
}

// BestIntraMode evaluates all intra modes against src and returns the one
// with the lowest SAD (and that SAD).
func BestIntraMode(recon *Frame, x0, y0, size int, src []byte) (IntraMode, int) {
	pred := make([]byte, size*size*BytesPerPixel)
	best, bestSAD := IntraDC, int(^uint(0)>>1)
	for m := IntraMode(0); m < numIntraModes; m++ {
		IntraPredict(recon, x0, y0, size, m, pred)
		if sad := SAD(src, pred); sad < bestSAD {
			best, bestSAD = m, sad
		}
	}
	return best, bestSAD
}
