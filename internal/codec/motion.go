package codec

// Motion estimation and compensation for P/B mabs. P mabs carry a motion
// vector into the previous reference frame; B mabs predict as the average of
// a backward and a forward reference block (§2.2 footnote 1).

// MotionVector is a full-pixel displacement into a reference frame.
type MotionVector struct {
	DX, DY int8
}

// MotionSearch finds the displacement within +/- radius (full search over a
// small window, as hardware estimators do at coarse level) that minimizes
// SAD against src for the block at (x0, y0) in ref. It returns the best
// vector and its SAD. The zero vector is evaluated first, so static content
// yields MV (0,0) deterministically.
func MotionSearch(ref *Frame, x0, y0, size, radius int, src []byte) (MotionVector, int) {
	cand := make([]byte, size*size*BytesPerPixel)
	ref.CopyBlock(x0, y0, size, cand)
	best := MotionVector{}
	bestSAD := SAD(src, cand)
	if bestSAD == 0 {
		return best, 0
	}
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			ref.CopyBlock(x0+dx, y0+dy, size, cand)
			if sad := SAD(src, cand); sad < bestSAD {
				bestSAD = sad
				best = MotionVector{DX: int8(dx), DY: int8(dy)}
				if bestSAD == 0 {
					return best, 0
				}
			}
		}
	}
	return best, bestSAD
}

// Compensate fills dst with the motion-compensated prediction: the block at
// (x0+mv.DX, y0+mv.DY) in ref.
func Compensate(ref *Frame, x0, y0, size int, mv MotionVector, dst []byte) {
	ref.CopyBlock(x0+int(mv.DX), y0+int(mv.DY), size, dst)
}

// CompensateBi fills dst with the rounded average of predictions from two
// reference frames, as used by B mabs.
func CompensateBi(back, fwd *Frame, x0, y0, size int, mvb, mvf MotionVector, dst []byte) {
	tmp := make([]byte, len(dst))
	Compensate(back, x0, y0, size, mvb, dst)
	Compensate(fwd, x0, y0, size, mvf, tmp)
	for i := range dst {
		dst[i] = byte((int(dst[i]) + int(tmp[i]) + 1) / 2)
	}
}
