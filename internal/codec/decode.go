package codec

import "fmt"

// Decoder reconstructs frames from the encoder's decode-order stream and
// reports the per-mab work performed, which the decoder-IP model turns into
// cycles and memory traffic.
type Decoder struct {
	p Params

	// Anchor reconstructions: olderAnchor < newerAnchor in display order.
	// A B frame between them uses older as backward and newer as forward
	// reference; a P frame references the newest anchor.
	olderAnchor   *Frame
	newerAnchor   *Frame
	olderAnchorIx int
	newerAnchorIx int

	scratch decScratch
}

type decScratch struct {
	pred  []byte
	resid []int32
}

// NewDecoder returns a decoder for p, or an error for invalid parameters.
func NewDecoder(p Params) (*Decoder, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Decoder{
		p:             p,
		olderAnchorIx: -1,
		newerAnchorIx: -1,
		scratch: decScratch{
			pred:  make([]byte, p.MabBytes()),
			resid: make([]int32, p.MabSize*p.MabSize),
		},
	}, nil
}

// Params returns the decoder configuration.
func (d *Decoder) Params() Params { return d.p }

// Decode reconstructs one encoded frame, returning the decoded image and the
// work report. Frames must be presented in decode order.
func (d *Decoder) Decode(ef *EncodedFrame) (*Frame, *FrameWork, error) {
	p := d.p
	n := p.MabSize
	r := NewBitReader(ef.Data)

	ftRaw, err := r.ReadUE()
	if err != nil {
		return nil, nil, err
	}
	ft := FrameType(ftRaw)
	idxRaw, err := r.ReadUE()
	if err != nil {
		return nil, nil, err
	}
	idx := int(idxRaw)
	quantRaw, err := r.ReadUE()
	if err != nil {
		return nil, nil, err
	}
	quant := int32(quantRaw)
	if quant < 1 {
		return nil, nil, fmt.Errorf("%w: quant %d", ErrBitstream, quant)
	}

	var back, fwd *Frame
	switch ft {
	case FrameI:
		// self-contained
	case FrameP:
		back = d.newerAnchor
		if back == nil {
			return nil, nil, fmt.Errorf("%w: P frame %d without reference", ErrBitstream, idx)
		}
	case FrameB:
		back, fwd = d.olderAnchor, d.newerAnchor
		if back == nil || fwd == nil {
			return nil, nil, fmt.Errorf("%w: B frame %d without two references", ErrBitstream, idx)
		}
	default:
		return nil, nil, fmt.Errorf("%w: frame type %d", ErrBitstream, ftRaw)
	}

	recon := NewFrame(p.Width, p.Height)
	work := &FrameWork{
		Type:         ft,
		DisplayIndex: idx,
		Mabs:         make([]MabWork, 0, p.MabsPerFrame()),
	}

	for y0 := 0; y0 < p.Height; y0 += n {
		for x0 := 0; x0 < p.Width; x0 += n {
			bitsBefore := r.BitsRead()
			mtRaw, err := r.ReadUE()
			if err != nil {
				return nil, nil, err
			}
			mt := MabType(mtRaw)
			mw := MabWork{Type: mt}

			switch mt {
			case MabI:
				modeRaw, err := r.ReadUE()
				if err != nil {
					return nil, nil, err
				}
				mw.Mode = IntraMode(modeRaw)
				IntraPredict(recon, x0, y0, n, mw.Mode, d.scratch.pred)
				work.CountI++
			case MabP:
				dx, err := r.ReadSE()
				if err != nil {
					return nil, nil, err
				}
				dy, err := r.ReadSE()
				if err != nil {
					return nil, nil, err
				}
				ref := back
				if ref == nil {
					return nil, nil, fmt.Errorf("%w: P mab without reference", ErrBitstream)
				}
				mw.MV = MotionVector{DX: int8(dx), DY: int8(dy)}
				mw.RefReads = 1
				Compensate(ref, x0, y0, n, mw.MV, d.scratch.pred)
				work.CountP++
			case MabB:
				var vals [4]int32
				for i := range vals {
					v, err := r.ReadSE()
					if err != nil {
						return nil, nil, err
					}
					vals[i] = v
				}
				if back == nil || fwd == nil {
					return nil, nil, fmt.Errorf("%w: B mab outside a B frame", ErrBitstream)
				}
				mw.MVB = MotionVector{DX: int8(vals[0]), DY: int8(vals[1])}
				mw.MVF = MotionVector{DX: int8(vals[2]), DY: int8(vals[3])}
				mw.RefReads = 2
				CompensateBi(back, fwd, x0, y0, n, mw.MVB, mw.MVF, d.scratch.pred)
				work.CountB++
			default:
				return nil, nil, fmt.Errorf("%w: mab type %d", ErrBitstream, mtRaw)
			}

			for c := 0; c < 3; c++ {
				nz, err := DecodeCoeffs(r, d.scratch.resid, n)
				if err != nil {
					return nil, nil, err
				}
				mw.Nonzero += int16(nz)
				Dequantize(d.scratch.resid, quant)
				InverseTransform(d.scratch.resid, n)
				for i := 0; i < n*n; i++ {
					d.scratch.pred[i*3+c] = clampByte(int32(d.scratch.pred[i*3+c]) + d.scratch.resid[i])
				}
			}
			recon.SetBlock(x0, y0, n, d.scratch.pred)

			mw.Bits = int32(r.BitsRead() - bitsBefore)
			work.Mabs = append(work.Mabs, mw)
		}
	}
	work.TotalBits = r.BitsRead()

	if ft != FrameB {
		d.olderAnchor, d.olderAnchorIx = d.newerAnchor, d.newerAnchorIx
		d.newerAnchor, d.newerAnchorIx = recon, idx
	}
	return recon, work, nil
}
