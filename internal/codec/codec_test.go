package codec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsRoundTrip(t *testing.T) {
	w := NewBitWriter()
	w.WriteBits(0b1011, 4)
	w.WriteUE(0)
	w.WriteUE(7)
	w.WriteUE(100000)
	w.WriteSE(0)
	w.WriteSE(-5)
	w.WriteSE(12345)
	w.WriteBit(1)
	data := w.Bytes()

	r := NewBitReader(data)
	if v, _ := r.ReadBits(4); v != 0b1011 {
		t.Fatalf("bits = %b", v)
	}
	for _, want := range []uint32{0, 7, 100000} {
		if v, err := r.ReadUE(); err != nil || v != want {
			t.Fatalf("ue = %d, %v want %d", v, err, want)
		}
	}
	for _, want := range []int32{0, -5, 12345} {
		if v, err := r.ReadSE(); err != nil || v != want {
			t.Fatalf("se = %d, %v want %d", v, err, want)
		}
	}
	if v, _ := r.ReadBit(); v != 1 {
		t.Fatal("final bit")
	}
}

func TestBitsProperty(t *testing.T) {
	f := func(vals []uint32, svals []int16) bool {
		w := NewBitWriter()
		for _, v := range vals {
			w.WriteUE(v % (1 << 20))
		}
		for _, v := range svals {
			w.WriteSE(int32(v))
		}
		r := NewBitReader(w.Bytes())
		for _, v := range vals {
			got, err := r.ReadUE()
			if err != nil || got != v%(1<<20) {
				return false
			}
		}
		for _, v := range svals {
			got, err := r.ReadSE()
			if err != nil || got != int32(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitReaderTruncation(t *testing.T) {
	r := NewBitReader(nil)
	if _, err := r.ReadBit(); err == nil {
		t.Fatal("empty read should fail")
	}
	if _, err := r.ReadUE(); err == nil {
		t.Fatal("empty ue should fail")
	}
}

func TestTransformRoundTripExact(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			block := make([]int32, n*n)
			orig := make([]int32, n*n)
			for i := range block {
				block[i] = int32(rng.Intn(512) - 256) // residual range
				orig[i] = block[i]
			}
			ForwardTransform(block, n)
			InverseTransform(block, n)
			for i := range block {
				if block[i] != orig[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestTransformShapePanics(t *testing.T) {
	for _, n := range []int{0, 1, 3, 32} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("n=%d should panic", n)
				}
			}()
			ForwardTransform(make([]int32, 256), n)
		}()
	}
}

func TestQuantizeLosslessAtOne(t *testing.T) {
	block := []int32{5, -7, 0, 100}
	want := []int32{5, -7, 0, 100}
	if nz := Quantize(block, 1); nz != 3 {
		t.Fatalf("nonzero = %d", nz)
	}
	Dequantize(block, 1)
	for i := range block {
		if block[i] != want[i] {
			t.Fatalf("block = %v", block)
		}
	}
}

func TestQuantizeBoundsError(t *testing.T) {
	f := func(v int32, stepRaw uint8) bool {
		step := int32(stepRaw%63) + 1
		b := []int32{v % 100000}
		orig := b[0]
		Quantize(b, step)
		Dequantize(b, step)
		diff := b[0] - orig
		if diff < 0 {
			diff = -diff
		}
		return diff <= step/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZigZagIsPermutation(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		z := ZigZag(n)
		if len(z) != n*n {
			t.Fatalf("n=%d len=%d", n, len(z))
		}
		seen := make([]bool, n*n)
		for _, idx := range z {
			if idx < 0 || idx >= n*n || seen[idx] {
				t.Fatalf("n=%d invalid permutation", n)
			}
			seen[idx] = true
		}
		// Low frequency (0,0) first, highest (n-1,n-1) last.
		if z[0] != 0 || z[n*n-1] != n*n-1 {
			t.Fatalf("n=%d endpoints %d %d", n, z[0], z[n*n-1])
		}
	}
}

func TestCoeffsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4
		block := make([]int32, n*n)
		for i := range block {
			if rng.Intn(3) == 0 {
				block[i] = int32(rng.Intn(100) - 50)
			}
		}
		w := NewBitWriter()
		EncodeCoeffs(w, block, n)
		got := make([]int32, n*n)
		r := NewBitReader(w.Bytes())
		if _, err := DecodeCoeffs(r, got, n); err != nil {
			return false
		}
		for i := range block {
			if got[i] != block[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameBlockOps(t *testing.T) {
	fr := NewFrame(16, 8)
	blk := make([]byte, 4*4*3)
	for i := range blk {
		blk[i] = byte(i * 7)
	}
	fr.SetBlock(4, 4, 4, blk)
	got := make([]byte, len(blk))
	fr.CopyBlock(4, 4, 4, got)
	for i := range blk {
		if got[i] != blk[i] {
			t.Fatalf("block mismatch at %d", i)
		}
	}
	r, g, b := fr.At(4, 4)
	if r != blk[0] || g != blk[1] || b != blk[2] {
		t.Fatal("At mismatch")
	}
	fr.Set(0, 0, 9, 8, 7)
	if r, g, b := fr.At(0, 0); r != 9 || g != 8 || b != 7 {
		t.Fatal("Set/At mismatch")
	}
	// Edge clamping: copying from a negative origin replicates edge pixels.
	fr.CopyBlock(-2, -2, 4, got)
	r0, g0, b0 := fr.At(0, 0)
	if got[0] != r0 || got[1] != g0 || got[2] != b0 {
		t.Fatal("clamped copy mismatch")
	}
	if fr.NumMabs(4) != 8 {
		t.Fatalf("mabs = %d", fr.NumMabs(4))
	}
	if fr.SizeBytes() != 16*8*3 {
		t.Fatalf("size = %d", fr.SizeBytes())
	}
}

func TestPSNRAndSAD(t *testing.T) {
	a := NewFrame(8, 8)
	b := a.Clone()
	if !math.IsInf(PSNR(a, b), 1) {
		t.Fatal("identical PSNR should be +Inf")
	}
	b.Set(0, 0, 255, 0, 0)
	if p := PSNR(a, b); p <= 0 || math.IsInf(p, 1) {
		t.Fatalf("PSNR = %v", p)
	}
	x := []byte{10, 20, 30}
	y := []byte{13, 18, 30}
	if SAD(x, y) != 5 {
		t.Fatalf("SAD = %d", SAD(x, y))
	}
}

// gradientFrame builds a deterministic smooth frame so intra prediction works.
func gradientFrame(w, h int, phase int) *Frame {
	f := NewFrame(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			f.Set(x, y, byte(x*3+phase), byte(y*5+phase), byte((x+y)*2))
		}
	}
	return f
}

func TestEncodeDecodeLossless(t *testing.T) {
	p := DefaultParams(32, 16)
	p.Quant = 1
	p.GOPLength = 4
	enc, err := NewEncoder(p)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		src := gradientFrame(32, 16, i*2)
		efs, err := enc.Push(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, ef := range efs {
			got, work, err := dec.Decode(ef)
			if err != nil {
				t.Fatal(err)
			}
			if work.DisplayIndex != ef.DisplayIndex {
				t.Fatalf("display index %d vs %d", work.DisplayIndex, ef.DisplayIndex)
			}
			if !math.IsInf(PSNR(src, got), 1) {
				t.Fatalf("frame %d not lossless at quant=1 (PSNR %.1f)", i, PSNR(src, got))
			}
			if len(work.Mabs) != p.MabsPerFrame() {
				t.Fatalf("mab count %d", len(work.Mabs))
			}
		}
	}
}

func TestEncodeDecodeLossyQuality(t *testing.T) {
	p := DefaultParams(32, 32)
	p.Quant = 16
	enc, _ := NewEncoder(p)
	dec, _ := NewDecoder(p)
	var worst float64 = math.Inf(1)
	for i := 0; i < 6; i++ {
		src := gradientFrame(32, 32, i)
		efs, err := enc.Push(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, ef := range efs {
			got, _, err := dec.Decode(ef)
			if err != nil {
				t.Fatal(err)
			}
			if p := PSNR(src, got); p < worst {
				worst = p
			}
		}
	}
	if worst < 30 {
		t.Fatalf("worst PSNR %.1f dB below 30", worst)
	}
}

func TestGOPStructure(t *testing.T) {
	p := DefaultParams(16, 16)
	p.GOPLength = 3
	enc, _ := NewEncoder(p)
	var types []FrameType
	for i := 0; i < 7; i++ {
		efs, err := enc.Push(gradientFrame(16, 16, i))
		if err != nil {
			t.Fatal(err)
		}
		for _, ef := range efs {
			types = append(types, ef.Type)
		}
	}
	want := []FrameType{FrameI, FrameP, FrameP, FrameI, FrameP, FrameP, FrameI}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("types = %v", types)
		}
	}
}

func TestBFramesDecodeOrder(t *testing.T) {
	p := DefaultParams(16, 16)
	p.BFrames = 1
	p.GOPLength = 8
	p.Quant = 1
	enc, _ := NewEncoder(p)
	dec, _ := NewDecoder(p)

	srcs := make(map[int]*Frame)
	var decoded []int
	push := func(f *Frame, idx int) {
		srcs[idx] = f
		efs, err := enc.Push(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, ef := range efs {
			got, work, err := dec.Decode(ef)
			if err != nil {
				t.Fatalf("decode %d (%v): %v", ef.DisplayIndex, ef.Type, err)
			}
			decoded = append(decoded, ef.DisplayIndex)
			if !math.IsInf(PSNR(srcs[ef.DisplayIndex], got), 1) {
				t.Fatalf("frame %d (%v) not lossless", ef.DisplayIndex, ef.Type)
			}
			if ef.Type == FrameB && work.CountB == 0 && work.CountP == 0 {
				// A B frame of static content should use inter mabs.
				t.Logf("B frame %d decoded all-intra (acceptable for busy content)", ef.DisplayIndex)
			}
		}
	}
	for i := 0; i < 5; i++ {
		push(gradientFrame(16, 16, i), i)
	}
	efs, err := enc.Flush()
	if err != nil {
		t.Fatal(err)
	}
	for _, ef := range efs {
		if _, _, err := dec.Decode(ef); err != nil {
			t.Fatal(err)
		}
		decoded = append(decoded, ef.DisplayIndex)
	}
	// Display order 0..4 with anchors at 0,2,4: decode order 0,2,1,4,3.
	want := []int{0, 2, 1, 4, 3}
	if len(decoded) != len(want) {
		t.Fatalf("decoded = %v", decoded)
	}
	for i := range want {
		if decoded[i] != want[i] {
			t.Fatalf("decode order = %v want %v", decoded, want)
		}
	}
}

func TestStaticContentUsesPMabs(t *testing.T) {
	p := DefaultParams(32, 32)
	enc, _ := NewEncoder(p)
	dec, _ := NewDecoder(p)
	src := gradientFrame(32, 32, 0)
	for i := 0; i < 2; i++ {
		efs, err := enc.Push(src.Clone())
		if err != nil {
			t.Fatal(err)
		}
		for _, ef := range efs {
			_, work, err := dec.Decode(ef)
			if err != nil {
				t.Fatal(err)
			}
			if i == 1 {
				if work.CountP != p.MabsPerFrame() {
					t.Fatalf("static P frame should be all P mabs, got I=%d P=%d", work.CountI, work.CountP)
				}
				for _, mw := range work.Mabs {
					if mw.MV != (MotionVector{}) {
						t.Fatalf("static content should use zero MVs, got %+v", mw.MV)
					}
					if mw.Nonzero != 0 {
						t.Fatalf("static content should have zero residual")
					}
				}
			}
		}
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Width: 0, Height: 16, MabSize: 4, Quant: 1, GOPLength: 1},
		{Width: 17, Height: 16, MabSize: 4, Quant: 1, GOPLength: 1},
		{Width: 16, Height: 16, MabSize: 3, Quant: 1, GOPLength: 1},
		{Width: 16, Height: 16, MabSize: 4, Quant: 0, GOPLength: 1},
		{Width: 16, Height: 16, MabSize: 4, Quant: 1, GOPLength: 0},
		{Width: 16, Height: 16, MabSize: 4, Quant: 1, GOPLength: 1, BFrames: 9},
		{Width: 16, Height: 16, MabSize: 4, Quant: 1, GOPLength: 1, SearchRadius: 99},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d should fail: %+v", i, p)
		}
	}
	if err := DefaultParams(64, 32).Validate(); err != nil {
		t.Fatal(err)
	}
	if DefaultParams(64, 32).MabBytes() != 48 {
		t.Fatal("mab bytes")
	}
}

func TestDecoderRejectsGarbage(t *testing.T) {
	p := DefaultParams(16, 16)
	dec, _ := NewDecoder(p)
	_, _, err := dec.Decode(&EncodedFrame{Data: []byte{0xFF, 0x00}})
	if err == nil {
		t.Fatal("garbage should not decode")
	}
	// A P frame before any I frame must fail.
	w := NewBitWriter()
	w.WriteUE(uint32(FrameP))
	w.WriteUE(1)
	w.WriteUE(8)
	_, _, err = dec.Decode(&EncodedFrame{Data: w.Bytes()})
	if err == nil {
		t.Fatal("P without reference should fail")
	}
}

func TestMotionSearchFindsShift(t *testing.T) {
	ref := gradientFrame(32, 32, 0)
	// Build a source block equal to ref shifted by (+2, +1).
	src := make([]byte, 4*4*3)
	ref.CopyBlock(10+2, 10+1, 4, src)
	mv, sad := MotionSearch(ref, 10, 10, 4, 3, src)
	if sad != 0 || mv.DX != 2 || mv.DY != 1 {
		t.Fatalf("mv = %+v sad = %d", mv, sad)
	}
}

func TestIntraModes(t *testing.T) {
	fr := NewFrame(8, 8)
	// Paint the row above the block red and the column to its left blue.
	for x := 0; x < 8; x++ {
		fr.Set(x, 3, 200, 0, 0)
	}
	for y := 0; y < 8; y++ {
		fr.Set(3, y, 0, 0, 200)
	}
	dst := make([]byte, 4*4*3)
	IntraPredict(fr, 4, 4, 4, IntraVertical, dst)
	if dst[0] != 200 || dst[2] != 0 {
		t.Fatalf("vertical pred = %v", dst[:3])
	}
	IntraPredict(fr, 4, 4, 4, IntraHorizontal, dst)
	if dst[0] != 0 || dst[2] != 200 {
		t.Fatalf("horizontal pred = %v", dst[:3])
	}
	IntraPredict(fr, 4, 4, 4, IntraDC, dst)
	if dst[0] != 100 || dst[2] != 100 {
		t.Fatalf("dc pred = %v", dst[:3])
	}
	// No neighbours at the frame origin: mid-grey.
	IntraPredict(fr, 0, 0, 4, IntraDC, dst)
	if dst[0] != 128 {
		t.Fatalf("origin dc = %v", dst[0])
	}
}
