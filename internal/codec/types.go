package codec

import "fmt"

// FrameType classifies whole encoded frames.
type FrameType uint8

const (
	// FrameI is self-contained (all intra mabs).
	FrameI FrameType = iota
	// FrameP predicts from the previous anchor (I or P) frame.
	FrameP
	// FrameB predicts bidirectionally from the surrounding anchors.
	FrameB
)

func (t FrameType) String() string {
	switch t {
	case FrameI:
		return "I"
	case FrameP:
		return "P"
	case FrameB:
		return "B"
	default:
		return "?"
	}
}

// MabType classifies individual macroblocks; P and B frames may contain any
// mix (footnote 1 of the paper), which is the source of per-frame decode-time
// variability.
type MabType uint8

const (
	// MabI is intra predicted.
	MabI MabType = iota
	// MabP is motion compensated from one reference.
	MabP
	// MabB is bi-directionally compensated from two references.
	MabB
)

func (t MabType) String() string {
	switch t {
	case MabI:
		return "I"
	case MabP:
		return "P"
	case MabB:
		return "B"
	default:
		return "?"
	}
}

// Params configures an encoder/decoder pair. Width and Height must be
// multiples of MabSize; MabSize must be a power of two in [2, 16].
type Params struct {
	Width, Height int
	MabSize       int
	Quant         int32 // uniform quantizer step; 1 = lossless
	GOPLength     int   // display frames between I frames (>= 1)
	BFrames       int   // B frames between consecutive anchors (0..3)
	SearchRadius  int   // full-pel motion search window
	// InterThresholdPerPixel accepts an inter prediction when its SAD per
	// pixel-byte is at or below this value; otherwise intra competes.
	InterThresholdPerPixel float64
}

// DefaultParams returns the configuration used throughout the experiments:
// 4x4 mabs (the paper's choice, Fig 12c), IPPP GOPs of 32, quantizer 8.
func DefaultParams(w, h int) Params {
	return Params{
		Width: w, Height: h,
		MabSize:                4,
		Quant:                  8,
		GOPLength:              32,
		BFrames:                0,
		SearchRadius:           3,
		InterThresholdPerPixel: 3.0,
	}
}

// Validate reports a descriptive error for malformed parameters.
func (p Params) Validate() error {
	switch {
	case p.Width <= 0 || p.Height <= 0:
		return fmt.Errorf("codec: invalid size %dx%d", p.Width, p.Height)
	case p.MabSize < 2 || p.MabSize > 16 || p.MabSize&(p.MabSize-1) != 0:
		return fmt.Errorf("codec: mab size %d not a power of two in [2,16]", p.MabSize)
	case p.Width%p.MabSize != 0 || p.Height%p.MabSize != 0:
		return fmt.Errorf("codec: size %dx%d not a multiple of mab %d", p.Width, p.Height, p.MabSize)
	case p.Quant < 1:
		return fmt.Errorf("codec: quant %d < 1", p.Quant)
	case p.GOPLength < 1:
		return fmt.Errorf("codec: GOP %d < 1", p.GOPLength)
	case p.BFrames < 0 || p.BFrames > 3:
		return fmt.Errorf("codec: BFrames %d outside [0,3]", p.BFrames)
	case p.SearchRadius < 0 || p.SearchRadius > 16:
		return fmt.Errorf("codec: search radius %d outside [0,16]", p.SearchRadius)
	}
	return nil
}

// MabBytes returns the decoded byte size of one mab.
func (p Params) MabBytes() int { return p.MabSize * p.MabSize * BytesPerPixel }

// MabsPerFrame returns the mab count per frame.
func (p Params) MabsPerFrame() int {
	return (p.Width / p.MabSize) * (p.Height / p.MabSize)
}

// EncodedFrame is one compressed frame as buffered in memory (§2.1: encoded
// frames take hundreds of KB and are buffered ahead of the decoder).
type EncodedFrame struct {
	Type         FrameType
	DisplayIndex int    // position in display order
	Data         []byte // the bitstream
	NumMabs      int
}

// SizeBytes returns the buffered size of the encoded frame.
func (f *EncodedFrame) SizeBytes() int { return len(f.Data) }

// MabWork records the decode work one mab required; the decoder-IP timing
// model converts these into cycles and memory traffic.
type MabWork struct {
	Type     MabType
	Bits     int32 // entropy bits parsed for this mab
	Nonzero  int16 // nonzero coefficients reconstructed (iDCT work)
	RefReads int8  // reference block fetches (0 for I, 1 for P, 2 for B)
	MV       MotionVector
	MVB, MVF MotionVector
	Mode     IntraMode
}

// FrameWork aggregates decode work for a whole frame.
type FrameWork struct {
	Type         FrameType
	DisplayIndex int
	Mabs         []MabWork
	TotalBits    int64
	CountI       int
	CountP       int
	CountB       int
}
