package bench

import (
	"fmt"
	"time"

	"mach/internal/core"
	"mach/internal/par"
	"mach/internal/trace"
	"mach/internal/video"
)

// Options scales a harness run. Zero values select the committed-report
// scale: every workload, 48 frames at the calibrated 320x180 resolution,
// a 4-wide parallel engine, best-of-2 timing.
type Options struct {
	// Videos are the workload keys to time (default: all 16).
	Videos []string
	// Stream is the synthesis scale (default: DefaultStreamConfig with 48
	// frames).
	Stream video.StreamConfig
	// Platform is the simulated platform; Platform.Parallel is ignored
	// (the harness sets it per cell).
	Platform core.Config
	// Workers is the parallel-engine width under test (default 4).
	Workers int
	// Iterations is how many times each cell is timed; the fastest
	// iteration is reported, the standard way to reject scheduler noise
	// (default 2).
	Iterations int
	// Scheme is the scheme each run replays (default GAB, the headline
	// configuration and the one with the most prehash work per mab).
	Scheme core.Scheme
	// Logf, when set, receives one progress line per workload.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if len(o.Videos) == 0 {
		o.Videos = core.WorkloadKeys()
	}
	if o.Stream == (video.StreamConfig{}) {
		o.Stream = video.DefaultStreamConfig()
		o.Stream.NumFrames = 48
	}
	// A valid platform has IdlePower > S1 > S3 >= 0, so a zero IdlePower
	// means the caller left Platform unset.
	if o.Platform.Power.IdlePower == 0 {
		o.Platform = core.DefaultConfig()
	}
	o.Platform.CollectFrameSamples = false
	if o.Workers <= 1 {
		o.Workers = 4
	}
	if o.Iterations < 1 {
		o.Iterations = 2
	}
	if o.Scheme.Name == "" {
		o.Scheme = core.GAB(core.DefaultBatch)
	}
}

// Run times the sequential and parallel engines over every workload and
// returns the report. Per-workload rows carry measured wall times; the
// sweep/par<N> row reports the scheduled speedup sum(costs)/Makespan over
// the measured sequential costs, the work-conserving bound a N-worker
// fan-out achieves on N free cores (see EXPERIMENTS.md).
func Run(opts Options) (*Report, error) {
	opts.fill()
	rep := &Report{}
	costs := make([]int64, 0, len(opts.Videos))
	var totalMabs int64
	for _, key := range opts.Videos {
		tr, err := core.BuildTrace(key, opts.Stream)
		if err != nil {
			return nil, err
		}
		mabs := int64(len(tr.Frames)) * int64(tr.Params.Width*tr.Params.Height/(tr.Params.MabSize*tr.Params.MabSize))
		totalMabs += mabs

		seqNs, err := timeRun(tr, opts, 0)
		if err != nil {
			return nil, err
		}
		parNs, err := timeRun(tr, opts, opts.Workers)
		if err != nil {
			return nil, err
		}
		costs = append(costs, seqNs)

		rep.Add(Record{
			Name:       fmt.Sprintf("engine/seq/%s", key),
			Iterations: int64(opts.Iterations),
			NsPerOp:    seqNs,
			MabsPerSec: rate(mabs, seqNs),
		})
		rep.Add(Record{
			Name:         fmt.Sprintf("engine/par%d/%s", opts.Workers, key),
			Iterations:   int64(opts.Iterations),
			NsPerOp:      parNs,
			MabsPerSec:   rate(mabs, parNs),
			SpeedupVsSeq: ratio(seqNs, parNs),
		})
		if opts.Logf != nil {
			opts.Logf("%s: seq %.1fms  par%d %.1fms  (%.0f mabs/ms)",
				key, float64(seqNs)/1e6, opts.Workers, float64(parNs)/1e6, rate(mabs, seqNs)/1e3)
		}
	}

	var seqTotal int64
	for _, c := range costs {
		seqTotal += c
	}
	rep.Add(Record{
		Name:       "sweep/seq",
		Iterations: int64(opts.Iterations),
		NsPerOp:    seqTotal,
		MabsPerSec: rate(totalMabs, seqTotal),
	})
	// The sweep cells are independent runs, so scheduling the measured
	// costs onto opts.Workers workers (greedy list scheduling, the same
	// policy par.Pool's cursor implements) gives the sweep's parallel
	// makespan without needing idle cores on the machine running the
	// harness.
	makespan := par.Makespan(costs, opts.Workers)
	rep.Add(Record{
		Name:         fmt.Sprintf("sweep/par%d", opts.Workers),
		Iterations:   int64(opts.Iterations),
		NsPerOp:      makespan,
		MabsPerSec:   rate(totalMabs, makespan),
		SpeedupVsSeq: ratio(seqTotal, makespan),
	})
	return rep, nil
}

// timeRun replays the trace opts.Iterations times at the given engine
// width and returns the fastest wall time in nanoseconds (minimum 1ns so
// records stay schema-valid even on a clock with coarse resolution).
func timeRun(tr *trace.Trace, opts Options, workers int) (int64, error) {
	cfg := opts.Platform
	cfg.Parallel = workers
	best := int64(0)
	for i := 0; i < opts.Iterations; i++ {
		start := time.Now()
		res, err := core.Run(tr, opts.Scheme, cfg)
		ns := time.Since(start).Nanoseconds()
		if err != nil {
			return 0, err
		}
		if res.Frames != len(tr.Frames) {
			return 0, fmt.Errorf("bench: %s: ran %d of %d frames", tr.Profile, res.Frames, len(tr.Frames))
		}
		if best == 0 || ns < best {
			best = ns
		}
	}
	if best < 1 {
		best = 1
	}
	return best, nil
}

func rate(mabs, ns int64) float64 {
	if ns <= 0 {
		return 0
	}
	return float64(mabs) / (float64(ns) / 1e9)
}

func ratio(num, den int64) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}
