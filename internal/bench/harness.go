package bench

import (
	"fmt"
	"runtime"
	"time"

	"mach/internal/core"
	"mach/internal/par"
	"mach/internal/trace"
	"mach/internal/video"
)

// Options scales a harness run. Zero values select the committed-report
// scale: every workload, 48 frames at the calibrated 320x180 resolution,
// a 4-wide parallel engine, best-of-2 timing.
type Options struct {
	// Videos are the workload keys to time (default: all 16).
	Videos []string
	// Stream is the synthesis scale (default: DefaultStreamConfig with 48
	// frames).
	Stream video.StreamConfig
	// Platform is the simulated platform; Platform.Parallel is ignored
	// (the harness sets it per cell).
	Platform core.Config
	// Workers is the parallel-engine width under test (default 4).
	Workers int
	// Iterations is how many times each cell is timed; the fastest
	// iteration is reported, the standard way to reject scheduler noise
	// (default 2).
	Iterations int
	// Scheme is the scheme each run replays (default GAB, the headline
	// configuration and the one with the most prehash work per mab).
	Scheme core.Scheme
	// Logf, when set, receives one progress line per workload.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if len(o.Videos) == 0 {
		o.Videos = core.WorkloadKeys()
	}
	if o.Stream == (video.StreamConfig{}) {
		o.Stream = video.DefaultStreamConfig()
		o.Stream.NumFrames = 48
	}
	// A valid platform has IdlePower > S1 > S3 >= 0, so a zero IdlePower
	// means the caller left Platform unset.
	if o.Platform.Power.IdlePower == 0 {
		o.Platform = core.DefaultConfig()
	}
	o.Platform.CollectFrameSamples = false
	if o.Workers <= 1 {
		o.Workers = 4
	}
	if o.Iterations < 1 {
		o.Iterations = 2
	}
	if o.Scheme.Name == "" {
		o.Scheme = core.GAB(core.DefaultBatch)
	}
}

// Run times the engine over every workload and returns the report. Three
// row families come out of it:
//
//   - engine/seq/<V>: measured wall time of the sequential engine.
//   - engine/par<N>/<V>: the N-wide engine's scheduled time. Only the
//     writeback prehash phase is parallel (the classification phase is
//     serially dependent on MACH state), so the row reports the Amdahl
//     work-conserving bound T_seq - P + P/N where P is the prehash wall
//     time measured inside the sequential run. Like sweep/par<N>, this is
//     the speedup N free cores achieve, computed without needing N idle
//     cores on the machine running the harness (see EXPERIMENTS.md).
//   - engine/stepframe/<V>: steady-state per-frame cost and heap traffic
//     of Runner.StepFrame, measured after the pools and free lists have
//     warmed up. Its allocs_per_op/bytes_per_op are the fields the
//     0-allocs/op gate checks.
//
// The sweep/seq and sweep/par<N> rows aggregate the per-workload costs as
// before: scheduled speedup sum(costs)/Makespan over the measured
// sequential costs.
func Run(opts Options) (*Report, error) {
	opts.fill()
	rep := &Report{}
	costs := make([]int64, 0, len(opts.Videos))
	var totalMabs int64
	for _, key := range opts.Videos {
		tr, err := core.BuildTrace(key, opts.Stream)
		if err != nil {
			return nil, err
		}
		mabs := int64(len(tr.Frames)) * int64(tr.Params.Width*tr.Params.Height/(tr.Params.MabSize*tr.Params.MabSize))
		totalMabs += mabs

		seqNs, prehashNs, err := timeRun(tr, opts)
		if err != nil {
			return nil, err
		}
		costs = append(costs, seqNs)

		rep.Add(Record{
			Name:       fmt.Sprintf("engine/seq/%s", key),
			Iterations: int64(opts.Iterations),
			NsPerOp:    seqNs,
			MabsPerSec: rate(mabs, seqNs),
		})
		parNs := amdahl(seqNs, prehashNs, opts.Workers)
		rep.Add(Record{
			Name:         fmt.Sprintf("engine/par%d/%s", opts.Workers, key),
			Iterations:   int64(opts.Iterations),
			NsPerOp:      parNs,
			MabsPerSec:   rate(mabs, parNs),
			SpeedupVsSeq: ratio(seqNs, parNs),
		})

		step, err := measureStepFrame(key, opts)
		if err != nil {
			return nil, err
		}
		rep.Add(step)

		if opts.Logf != nil {
			opts.Logf("%s: seq %.1fms  par%d %.1fms scheduled (prehash %.0f%%)  step %.0f allocs/frame",
				key, float64(seqNs)/1e6, opts.Workers, float64(parNs)/1e6,
				100*float64(prehashNs)/float64(seqNs), step.AllocsPerOp)
		}
	}

	var seqTotal int64
	for _, c := range costs {
		seqTotal += c
	}
	rep.Add(Record{
		Name:       "sweep/seq",
		Iterations: int64(opts.Iterations),
		NsPerOp:    seqTotal,
		MabsPerSec: rate(totalMabs, seqTotal),
	})
	// The sweep cells are independent runs, so scheduling the measured
	// costs onto opts.Workers workers (greedy list scheduling, the same
	// policy par.Pool's cursor implements) gives the sweep's parallel
	// makespan without needing idle cores on the machine running the
	// harness.
	makespan := par.Makespan(costs, opts.Workers)
	rep.Add(Record{
		Name:         fmt.Sprintf("sweep/par%d", opts.Workers),
		Iterations:   int64(opts.Iterations),
		NsPerOp:      makespan,
		MabsPerSec:   rate(totalMabs, makespan),
		SpeedupVsSeq: ratio(seqTotal, makespan),
	})
	return rep, nil
}

// timeRun replays the trace opts.Iterations times on the sequential engine
// and returns the fastest wall time plus that iteration's prehash wall
// time, both in nanoseconds (minimum 1ns so records stay schema-valid even
// on a clock with coarse resolution).
func timeRun(tr *trace.Trace, opts Options) (wallNs, prehashNs int64, err error) {
	cfg := opts.Platform
	cfg.Parallel = 0
	best, bestPrehash := int64(0), int64(0)
	for i := 0; i < opts.Iterations; i++ {
		r, err := core.NewRunner(tr, opts.Scheme, cfg)
		if err != nil {
			return 0, 0, err
		}
		start := time.Now()
		for !r.Done() {
			r.StepFrame()
		}
		ns := time.Since(start).Nanoseconds()
		res, err := r.Finish()
		if err != nil {
			return 0, 0, err
		}
		if res.Frames != len(tr.Frames) {
			return 0, 0, fmt.Errorf("bench: %s: ran %d of %d frames", tr.Profile, res.Frames, len(tr.Frames))
		}
		if best == 0 || ns < best {
			best, bestPrehash = ns, r.PrehashWall().Nanoseconds()
		}
	}
	if best < 1 {
		best = 1
	}
	if bestPrehash > best {
		bestPrehash = best
	}
	return best, bestPrehash, nil
}

// amdahl returns the scheduled wall time of a run whose only parallel
// phase measured prehashNs out of seqNs total: the serial remainder plus
// the prehash work split evenly across workers. This is the
// work-conserving bound the deterministic sharded prehash achieves on
// `workers` free cores (shard order never affects results, so the bound
// is tight up to the last shard's tail).
func amdahl(seqNs, prehashNs int64, workers int) int64 {
	ns := seqNs - prehashNs + prehashNs/int64(workers)
	if ns < 1 {
		ns = 1
	}
	return ns
}

// measureStepFrame runs one long replay of the workload and measures the
// steady-state cost of Runner.StepFrame: the trace is stretched to twice
// the configured frame count, the first two thirds warm the frame pools
// and writeback free lists, and the remaining third is timed under
// runtime.MemStats deltas. Mallocs is monotonic, so the delta counts every
// heap allocation in the window regardless of GC activity.
func measureStepFrame(key string, opts Options) (Record, error) {
	sc := opts.Stream
	sc.NumFrames *= 2
	// The pipeline recycles a frame's layout only retention+4 display
	// periods after scan-out, and the display lags the decoder by up to a
	// full batch, so the free lists reach steady state only past
	// NumMACHs+Batch+margin frames. Stretch short traces so the warm-up
	// (two thirds) covers that ramp and the measured window sits entirely
	// in the recycled regime.
	batch := opts.Scheme.Batch
	for _, b := range opts.Scheme.BatchPattern {
		if b > batch {
			batch = b
		}
	}
	if floor := 2 * (opts.Platform.Mach.NumMACHs + batch + 12); sc.NumFrames < floor {
		sc.NumFrames = floor
	}
	tr, err := core.BuildTrace(key, sc)
	if err != nil {
		return Record{}, err
	}
	cfg := opts.Platform
	cfg.Parallel = 0
	r, err := core.NewRunner(tr, opts.Scheme, cfg)
	if err != nil {
		return Record{}, err
	}
	warm := len(tr.Frames) * 2 / 3
	for i := 0; i < warm && !r.Done(); i++ {
		r.StepFrame()
	}
	measured := int64(0)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for !r.Done() {
		r.StepFrame()
		measured++
	}
	ns := time.Since(start).Nanoseconds()
	runtime.ReadMemStats(&after)
	if _, err := r.Finish(); err != nil {
		return Record{}, err
	}
	if measured == 0 {
		return Record{}, fmt.Errorf("bench: %s: no frames left to measure after warm-up", key)
	}
	if ns < 1 {
		ns = 1
	}
	mabsPerFrame := int64(tr.Params.Width * tr.Params.Height / (tr.Params.MabSize * tr.Params.MabSize))
	return Record{
		Name:        fmt.Sprintf("engine/stepframe/%s", key),
		Iterations:  measured,
		NsPerOp:     ns / measured,
		MabsPerSec:  rate(measured*mabsPerFrame, ns),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(measured),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(measured),
	}, nil
}

func rate(mabs, ns int64) float64 {
	if ns <= 0 {
		return 0
	}
	return float64(mabs) / (float64(ns) / 1e9)
}

func ratio(num, den int64) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}
