package bench

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mach/internal/video"
)

func validRecord(name string) Record {
	return Record{Name: name, Iterations: 2, NsPerOp: 1000, MabsPerSec: 1e6, SpeedupVsSeq: 1}
}

func TestRecordValidate(t *testing.T) {
	if err := validRecord("a").Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Record{
		{},
		{Name: "x", Iterations: 0, NsPerOp: 1},
		{Name: "x", Iterations: 1, NsPerOp: 0},
		{Name: "x", Iterations: 1, NsPerOp: 1, MabsPerSec: -1},
		{Name: "x", Iterations: 1, NsPerOp: 1, SpeedupVsSeq: -0.1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad record %d validated", i)
		}
	}
}

func TestReportAddReplacesAndSorts(t *testing.T) {
	var p Report
	p.Add(validRecord("b"))
	p.Add(validRecord("a"))
	rec := validRecord("b")
	rec.NsPerOp = 42
	p.Add(rec)
	if len(p.Records) != 2 {
		t.Fatalf("got %d records, want 2", len(p.Records))
	}
	if p.Records[0].Name != "a" || p.Records[1].Name != "b" {
		t.Fatalf("not sorted: %v", p.Records)
	}
	if got, _ := p.Find("b"); got.NsPerOp != 42 {
		t.Fatalf("Add did not replace: %+v", got)
	}
}

func TestReportCheck(t *testing.T) {
	var p Report
	p.Add(validRecord("engine/seq/V1"))
	fast := validRecord("sweep/par4")
	fast.SpeedupVsSeq = 3.7
	p.Add(fast)
	if err := p.Check("sweep/par", 1.8); err != nil {
		t.Fatal(err)
	}
	if err := p.Check("sweep/par", 3.8); err == nil {
		t.Fatal("below-gate speedup passed")
	}
	if err := p.Check("nosuch/", 1); err == nil {
		t.Fatal("unmatched prefix passed")
	}
	dup := Report{Records: []Record{validRecord("a"), validRecord("a")}}
	if err := dup.Check("", 0); err == nil {
		t.Fatal("duplicate names passed")
	}
}

func TestReportCheckGeomean(t *testing.T) {
	var p Report
	for name, speedup := range map[string]float64{
		"engine/par4/V1": 1.2,
		"engine/par4/V2": 1.5,
		"engine/par4/V3": 1.4,
	} {
		r := validRecord(name)
		r.SpeedupVsSeq = speedup
		p.Add(r)
	}
	// geomean(1.2, 1.5, 1.4) ~= 1.362
	if err := p.CheckGeomean("engine/par", 1.3); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckGeomean("engine/par", 1.4); err == nil {
		t.Fatal("below-gate geomean passed")
	}
	if err := p.CheckGeomean("nosuch/", 1); err == nil {
		t.Fatal("unmatched prefix passed")
	}
	zero := validRecord("engine/par4/V9")
	zero.SpeedupVsSeq = 0
	p.Add(zero)
	if err := p.CheckGeomean("engine/par", 0.1); err == nil {
		t.Fatal("zero speedup entered the geomean")
	}
}

func TestReportCheckAllocs(t *testing.T) {
	var p Report
	clean := validRecord("engine/stepframe/V1")
	p.Add(clean)
	leaky := validRecord("engine/stepframe/V2")
	leaky.AllocsPerOp = 2.5
	leaky.BytesPerOp = 192
	p.Add(leaky)
	if err := p.CheckAllocs("engine/stepframe/", 3); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckAllocs("engine/stepframe/", 0); err == nil {
		t.Fatal("allocating row passed the zero gate")
	}
	if err := p.CheckAllocs("nosuch/", 0); err == nil {
		t.Fatal("unmatched prefix passed")
	}
	neg := validRecord("engine/stepframe/V3")
	neg.AllocsPerOp = -1
	if err := neg.Validate(); err == nil {
		t.Fatal("negative allocs_per_op validated")
	}
}

func TestFileRoundTripAndAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := AppendRecord(path, validRecord("one")); err != nil {
		t.Fatal(err)
	}
	if err := AppendRecord(path, validRecord("two")); err != nil {
		t.Fatal(err)
	}
	p, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := Report{}
	want.Add(validRecord("one"))
	want.Add(validRecord("two"))
	if !reflect.DeepEqual(p.Records, want.Records) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", p.Records, want.Records)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"name"`, `"iterations"`, `"ns_per_op"`, `"mabs_per_sec"`, `"speedup_vs_seq"`} {
		if !strings.Contains(string(data), field) {
			t.Errorf("schema field %s missing from file:\n%s", field, data)
		}
	}
	if err := AppendRecord(path, Record{Name: "bad"}); err == nil {
		t.Fatal("invalid record appended")
	}
}

// TestHarnessTinyRun exercises the full harness at a smoke scale and checks
// the report shape: one seq + one par row per workload, the two sweep rows,
// a valid schema throughout, and a sweep scheduled speedup in (1, workers].
func TestHarnessTinyRun(t *testing.T) {
	if testing.Short() {
		t.Skip("times full pipeline runs")
	}
	sc := video.DefaultStreamConfig()
	sc.Width, sc.Height, sc.NumFrames = 160, 96, 8
	rep, err := Run(Options{
		Videos:     []string{"V1", "V4", "V8"},
		Stream:     sc,
		Workers:    4,
		Iterations: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := len(rep.Records), 3*3+2; got != want {
		t.Fatalf("got %d records, want %d: %+v", got, want, rep.Records)
	}
	for _, key := range []string{"V1", "V4", "V8"} {
		if _, ok := rep.Find("engine/seq/" + key); !ok {
			t.Errorf("missing engine/seq/%s", key)
		}
		par, ok := rep.Find("engine/par4/" + key)
		if !ok {
			t.Errorf("missing engine/par4/%s", key)
		}
		// The Amdahl bound splits only the prehash phase, so the scheduled
		// speedup must land in [1, workers].
		if par.SpeedupVsSeq < 1 || par.SpeedupVsSeq > 4 {
			t.Errorf("engine/par4/%s speedup %.3f outside [1,4]", key, par.SpeedupVsSeq)
		}
		step, ok := rep.Find("engine/stepframe/" + key)
		if !ok {
			t.Errorf("missing engine/stepframe/%s", key)
			continue
		}
		// The steady-state frame step is allocation-free by construction;
		// this is the same property the committed report gates.
		if step.AllocsPerOp != 0 || step.BytesPerOp != 0 {
			t.Errorf("engine/stepframe/%s not allocation-free: %.2f allocs/op, %.0f B/op",
				key, step.AllocsPerOp, step.BytesPerOp)
		}
	}
	seq, ok := rep.Find("sweep/seq")
	if !ok || seq.MabsPerSec <= 0 {
		t.Fatalf("sweep/seq missing or rate-less: %+v", seq)
	}
	par4, ok := rep.Find("sweep/par4")
	if !ok {
		t.Fatal("missing sweep/par4")
	}
	// Three independent jobs on four workers schedule as max(cost), so the
	// speedup must exceed 1 and cannot exceed the worker count.
	if par4.SpeedupVsSeq <= 1 || par4.SpeedupVsSeq > 4 {
		t.Fatalf("sweep/par4 speedup %.3f outside (1,4]", par4.SpeedupVsSeq)
	}
	if par4.NsPerOp >= seq.NsPerOp {
		t.Fatalf("scheduled makespan %d not below sequential total %d", par4.NsPerOp, seq.NsPerOp)
	}
}
