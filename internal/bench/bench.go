// Package bench defines the benchmark regression report the repository
// commits as BENCH_machsim.json and the harness that regenerates it. A
// report is a flat list of records — one per timed cell — with a fixed
// schema (name, iterations, ns_per_op, mabs_per_sec, speedup_vs_seq) so CI
// can validate it without knowing which harness produced which row:
//
//   - engine/seq/<V>    sequential core.Run over workload <V>
//   - engine/par<N>/<V> the same run with the N-wide deterministic engine;
//     its speedup_vs_seq is the Amdahl work-conserving bound computed
//     from the prehash wall time measured inside the sequential run
//     (only the prehash phase parallelizes; see EXPERIMENTS.md)
//   - engine/stepframe/<V> steady-state Runner.StepFrame cost after pool
//     warm-up; allocs_per_op/bytes_per_op carry its measured heap traffic
//     (gated at zero)
//   - sweep/seq         the 16-profile sweep run back to back
//   - sweep/par<N>      the same sweep scheduled onto N workers; its
//     speedup_vs_seq is the work-conserving scheduled speedup
//     sum(costs)/Makespan(costs, N) computed from the measured
//     per-profile costs (see EXPERIMENTS.md for why wall-clock sweep
//     speedup is not reported on single-core CI runners)
//   - gotest/Benchmark* rows merged in from `go test -bench` wrappers
//
// Records are kept sorted by name and files are rewritten atomically, so
// several emitters (the harness, then the go-test wrappers) can merge into
// one report.
package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Record is one benchmark result row. The JSON field names are the schema
// CI validates; do not rename them without updating cmd/machbench -check
// and EXPERIMENTS.md. Heap traffic is measured only by the steady-state
// rows (engine/stepframe/*); on every other row AllocsPerOp/BytesPerOp
// stay zero, the schema's usual "not applicable to this row" value.
type Record struct {
	Name         string  `json:"name"`
	Iterations   int64   `json:"iterations"`
	NsPerOp      int64   `json:"ns_per_op"`
	MabsPerSec   float64 `json:"mabs_per_sec"`
	SpeedupVsSeq float64 `json:"speedup_vs_seq"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
}

// Validate checks one record against the schema: a non-empty name, at
// least one iteration, positive time, and non-negative rates. A zero
// MabsPerSec or SpeedupVsSeq means "not applicable to this row" (micro
// benchmarks have no mab throughput; sequential rows have no speedup).
func (r Record) Validate() error {
	switch {
	case r.Name == "":
		return fmt.Errorf("bench: record with empty name")
	case r.Iterations < 1:
		return fmt.Errorf("bench: %s: iterations %d < 1", r.Name, r.Iterations)
	case r.NsPerOp <= 0:
		return fmt.Errorf("bench: %s: ns_per_op %d <= 0", r.Name, r.NsPerOp)
	case r.MabsPerSec < 0:
		return fmt.Errorf("bench: %s: mabs_per_sec %g < 0", r.Name, r.MabsPerSec)
	case r.SpeedupVsSeq < 0:
		return fmt.Errorf("bench: %s: speedup_vs_seq %g < 0", r.Name, r.SpeedupVsSeq)
	case r.AllocsPerOp < 0:
		return fmt.Errorf("bench: %s: allocs_per_op %g < 0", r.Name, r.AllocsPerOp)
	case r.BytesPerOp < 0:
		return fmt.Errorf("bench: %s: bytes_per_op %g < 0", r.Name, r.BytesPerOp)
	}
	return nil
}

// Report is the committed benchmark file: a sorted list of records.
type Report struct {
	Records []Record `json:"records"`
}

// Add inserts rec, replacing any existing record with the same name, and
// keeps the list sorted so the committed file diffs cleanly.
func (p *Report) Add(rec Record) {
	for i := range p.Records {
		if p.Records[i].Name == rec.Name {
			p.Records[i] = rec
			return
		}
	}
	p.Records = append(p.Records, rec)
	sort.Slice(p.Records, func(i, j int) bool { return p.Records[i].Name < p.Records[j].Name })
}

// Find returns the record with the given name.
func (p *Report) Find(name string) (Record, bool) {
	for _, r := range p.Records {
		if r.Name == name {
			return r, true
		}
	}
	return Record{}, false
}

// Validate checks every record and rejects duplicate names.
func (p *Report) Validate() error {
	seen := make(map[string]bool, len(p.Records))
	for _, r := range p.Records {
		if err := r.Validate(); err != nil {
			return err
		}
		if seen[r.Name] {
			return fmt.Errorf("bench: duplicate record %q", r.Name)
		}
		seen[r.Name] = true
	}
	return nil
}

// Check validates the report and then enforces the regression gate: every
// record whose name matches prefix must report speedup_vs_seq >= min.
// With an empty prefix only the schema is checked.
func (p *Report) Check(prefix string, min float64) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if prefix == "" {
		return nil
	}
	matched := 0
	for _, r := range p.Records {
		if !strings.HasPrefix(r.Name, prefix) {
			continue
		}
		matched++
		if r.SpeedupVsSeq < min {
			return fmt.Errorf("bench: %s: speedup_vs_seq %.3f below the %.2f gate", r.Name, r.SpeedupVsSeq, min)
		}
	}
	if matched == 0 {
		return fmt.Errorf("bench: no record matches gate prefix %q", prefix)
	}
	return nil
}

// CheckGeomean validates the report and then enforces an aggregate gate:
// the geometric mean of speedup_vs_seq over every record matching prefix
// must be >= min. Per-workload jitter on a shared CI runner can push a
// single cell under the bar; the geomean asks that the engine win across
// the sweep, which is the property the refactors actually promise.
func (p *Report) CheckGeomean(prefix string, min float64) error {
	if err := p.Validate(); err != nil {
		return err
	}
	logSum, matched := 0.0, 0
	for _, r := range p.Records {
		if !strings.HasPrefix(r.Name, prefix) {
			continue
		}
		matched++
		if r.SpeedupVsSeq <= 0 {
			return fmt.Errorf("bench: %s: speedup_vs_seq %g not positive; cannot enter the %q geomean", r.Name, r.SpeedupVsSeq, prefix)
		}
		logSum += math.Log(r.SpeedupVsSeq)
	}
	if matched == 0 {
		return fmt.Errorf("bench: no record matches geomean gate prefix %q", prefix)
	}
	geomean := math.Exp(logSum / float64(matched))
	if geomean < min {
		return fmt.Errorf("bench: %s* geomean speedup %.3f below the %.2f gate (%d records)", prefix, geomean, min, matched)
	}
	return nil
}

// CheckAllocs validates the report and then enforces the heap gate: every
// record matching prefix must report allocs_per_op <= max. The committed
// engine/stepframe/* rows hold max = 0 — the steady-state frame step is
// allocation-free.
func (p *Report) CheckAllocs(prefix string, max float64) error {
	if err := p.Validate(); err != nil {
		return err
	}
	matched := 0
	for _, r := range p.Records {
		if !strings.HasPrefix(r.Name, prefix) {
			continue
		}
		matched++
		if r.AllocsPerOp > max {
			return fmt.Errorf("bench: %s: allocs_per_op %g above the %g gate", r.Name, r.AllocsPerOp, max)
		}
	}
	if matched == 0 {
		return fmt.Errorf("bench: no record matches alloc gate prefix %q", prefix)
	}
	return nil
}

// ReadFile loads a report.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Report
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &p, nil
}

// WriteFile stores the report atomically (temp file + rename) with stable
// formatting, so concurrent readers never observe a torn file and the
// committed artifact is byte-reproducible for identical records.
func WriteFile(path string, p *Report) error {
	sort.Slice(p.Records, func(i, j int) bool { return p.Records[i].Name < p.Records[j].Name })
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".bench-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// AppendRecord merges one record into the report at path, creating the
// file if needed. This is how the go-test benchmark wrappers feed their
// rows into the same file the harness writes.
func AppendRecord(path string, rec Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	p, err := ReadFile(path)
	if os.IsNotExist(err) {
		p = &Report{}
	} else if err != nil {
		return err
	}
	p.Add(rec)
	return WriteFile(path, p)
}
