// Package energy assembles the per-run energy report: the nine-part split
// of the paper's Fig 11 plus the SRAM overhead model for the MACH hardware
// (Table 2, CACTI-derived static/dynamic numbers).
package energy

import "mach/internal/stats"

// Component names of the Fig 11 breakdown, in the paper's plotting order.
const (
	CompDC            = "display"
	CompMemBackground = "mem-background"
	CompVDBusy        = "vd-busy"
	CompSleep         = "sleep"
	CompShortSlack    = "short-slack"
	CompMemBurst      = "mem-burst"
	CompMemActPre     = "mem-actpre"
	CompTransition    = "transition"
	CompMachOverhead  = "mach-overhead"

	// CompRadio is the modem energy of the delivery schedule. It is not
	// part of Components(): the paper's Fig 11 split has nine bars and the
	// perfect-network runs must keep producing them unchanged; runs with
	// the delivery model enabled add this component on top.
	CompRadio = "radio"
)

// Components lists the breakdown keys in canonical order.
func Components() []string {
	return []string{
		CompDC, CompMemBackground, CompVDBusy, CompSleep, CompShortSlack,
		CompMemBurst, CompMemActPre, CompTransition, CompMachOverhead,
	}
}

// NewBreakdown returns a breakdown pre-seeded with all nine components so
// reports always show every bar segment, even when zero.
func NewBreakdown() *stats.Breakdown {
	b := stats.NewBreakdown()
	for _, k := range Components() {
		b.Add(k, 0)
	}
	return b
}

// SRAMConfig carries the Table 2 on-chip overhead numbers: static power in
// watts and per-access dynamic energy in joules for each added structure.
type SRAMConfig struct {
	MachStatic    float64 // 8KB MACH @ VD
	MachPerAccess float64

	MachBufStatic    float64 // 96KB MACH buffer @ DC
	MachBufPerAccess float64

	DispCacheStatic    float64 // 16KB display cache @ DC
	DispCachePerAccess float64

	// GabUnits covers the subtractor/adder vector units and CRC generators;
	// the paper treats them as negligible but they are modelled for
	// completeness.
	GabPerMab float64
}

// DefaultSRAM returns the Table 2 values. Dynamic per-access energies are
// derived from the quoted dynamic powers at the paper's access rates.
func DefaultSRAM() SRAMConfig {
	return SRAMConfig{
		MachStatic:         1.9e-3,
		MachPerAccess:      0.13e-9,
		MachBufStatic:      24e-3,
		MachBufPerAccess:   0.35e-9,
		DispCacheStatic:    3.6e-3,
		DispCachePerAccess: 0.10e-9,
		GabPerMab:          0.02e-9,
	}
}

// Overhead computes the MACH hardware energy for a run window.
//
//	seconds      — wall-clock duration the structures are powered
//	machLookups  — digest-cache lookups+inserts at the VD
//	machBufOps   — MACH buffer lookups+fills at the DC
//	dispCacheOps — display cache lookups
//	gabMabs      — mabs that went through the gradient units
//
// Structures that a scheme does not instantiate contribute nothing: pass
// zero ops and set the static flags accordingly.
func (c SRAMConfig) Overhead(seconds float64, machOn, dispOn bool, machLookups, machBufOps, dispCacheOps, gabMabs int64) Joules {
	e := 0.0
	if machOn {
		e += c.MachStatic*seconds + c.MachPerAccess*float64(machLookups) + c.GabPerMab*float64(gabMabs)
	}
	if dispOn {
		e += (c.MachBufStatic+c.DispCacheStatic)*seconds +
			c.MachBufPerAccess*float64(machBufOps) +
			c.DispCachePerAccess*float64(dispCacheOps)
	}
	return Joules(e)
}
