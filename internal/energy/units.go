package energy

// Joules is the canonical energy quantity every ledger in the simulator
// accumulates and every Fig 11 component reports. It is a named unit type
// (DESIGN.md "machlint v2: unit types"): adding a Joules value to a
// same-shaped quantity of another dimension — power, time, a picojoule
// count — fails to compile, and the unitflow analyzer propagates the
// dimension through plain-float locals derived from it.
//
// The underlying representation is the same float64 the accounting always
// used, so wrapping a value is bit-exact: converting a field to Joules
// changes no golden result.
type Joules float64

// Picojoules is the fine-grained energy scale of the paper's rhetoric
// ("every picojoule lands in exactly one ledger") and of per-access SRAM
// quanta when they are quoted in pJ. It is deliberately a distinct type
// from Joules: same dimension at a different scale is exactly the silent
// 1e12x error the unit checks exist for, so crossing between them requires
// the explicit conversions below.
type Picojoules float64

// Joules converts an exact picojoule quantity to joules.
func (p Picojoules) Joules() Joules { return Joules(float64(p) * 1e-12) }

// Picojoules converts to the picojoule scale (reporting/debugging only —
// the ledgers accumulate Joules).
func (j Joules) Picojoules() Picojoules { return Picojoules(float64(j) * 1e12) }

// Millijoules returns the mJ rendering used by the per-frame reports.
func (j Joules) Millijoules() float64 { return float64(j) * 1e3 }
