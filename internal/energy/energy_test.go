package energy

import "testing"

func TestComponentsComplete(t *testing.T) {
	comps := Components()
	if len(comps) != 9 {
		t.Fatalf("components = %d, want the paper's 9-part split", len(comps))
	}
	b := NewBreakdown()
	if len(b.Keys()) != 9 {
		t.Fatalf("breakdown keys = %d", len(b.Keys()))
	}
	if b.Total() != 0 {
		t.Fatal("fresh breakdown must be zero")
	}
	for _, k := range comps {
		b.Add(k, 1)
	}
	if b.Total() != 9 {
		t.Fatalf("total = %v", b.Total())
	}
}

func TestOverheadArithmetic(t *testing.T) {
	c := DefaultSRAM()

	// No structures: no overhead.
	if got := c.Overhead(1.0, false, false, 1000, 1000, 1000, 1000); got != 0 {
		t.Fatalf("overhead without structures = %g", got)
	}

	// MACH only: static + per-lookup + gradient units.
	want := c.MachStatic*2.0 + c.MachPerAccess*100 + c.GabPerMab*50
	if got := c.Overhead(2.0, true, false, 100, 999, 999, 50); float64(got) != want {
		t.Fatalf("mach overhead = %g want %g", got, want)
	}

	// Display structures add the buffer and cache.
	withDisp := c.Overhead(2.0, true, true, 100, 10, 20, 50)
	if float64(withDisp) <= want {
		t.Fatal("display structures must add energy")
	}
	wantDisp := want + (c.MachBufStatic+c.DispCacheStatic)*2.0 + c.MachBufPerAccess*10 + c.DispCachePerAccess*20
	if diff := float64(withDisp) - wantDisp; diff > 1e-18 || diff < -1e-18 {
		t.Fatalf("display overhead = %g want %g", withDisp, wantDisp)
	}
}

func TestOverheadScalesWithTime(t *testing.T) {
	c := DefaultSRAM()
	short := c.Overhead(1.0, true, true, 0, 0, 0, 0)
	long := c.Overhead(2.0, true, true, 0, 0, 0, 0)
	if long <= short {
		t.Fatal("static overhead must scale with time")
	}
	if long/short < 1.99 || long/short > 2.01 {
		t.Fatalf("static scaling = %v", long/short)
	}
}
