package soc

import (
	"testing"

	"mach/internal/dram"
	"mach/internal/sim"
)

func TestValidate(t *testing.T) {
	if err := DefaultTraffic().Validate(); err != nil {
		t.Fatal(err)
	}
	if (TrafficConfig{}).Validate() != nil {
		t.Fatal("zero config (disabled) must be valid")
	}
	bad := DefaultTraffic()
	bad.ReadFraction = 2
	if bad.Validate() == nil {
		t.Fatal("read fraction 2 should fail")
	}
	bad = DefaultTraffic()
	bad.Span = 0
	if bad.Validate() == nil {
		t.Fatal("zero span should fail")
	}
	bad = DefaultTraffic()
	bad.BytesPerSecond = -1
	if bad.Validate() == nil {
		t.Fatal("negative bandwidth should fail")
	}
}

func TestEmitBandwidth(t *testing.T) {
	mem := dram.New(dram.DefaultConfig())
	cfg := DefaultTraffic()
	cfg.BytesPerSecond = 64e6 // 1M lines/s
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Emit 10 ms in 10 windows: expect ~10k lines total.
	for i := 0; i < 10; i++ {
		from := sim.FromMilliseconds(float64(i))
		g.Emit(mem, from, from+sim.Millisecond)
	}
	if g.Lines < 9900 || g.Lines > 10100 {
		t.Fatalf("lines = %d want ~10000", g.Lines)
	}
	if mem.Stats().Accesses() != g.Lines {
		t.Fatalf("dram accesses %d != generator lines %d", mem.Stats().Accesses(), g.Lines)
	}
	// Mixed reads and writes.
	if mem.Stats().Reads == 0 || mem.Stats().Writes == 0 {
		t.Fatalf("want both reads and writes: %+v", mem.Stats())
	}
}

func TestEmitDisabled(t *testing.T) {
	mem := dram.New(dram.DefaultConfig())
	g, err := NewGenerator(TrafficConfig{})
	if err != nil {
		t.Fatal(err)
	}
	g.Emit(mem, 0, sim.Second)
	if g.Lines != 0 || mem.Stats().Accesses() != 0 {
		t.Fatal("disabled generator must be silent")
	}
	var nilGen *Generator
	nilGen.Emit(mem, 0, sim.Second) // nil receiver is a no-op
}

func TestEmitDeterminism(t *testing.T) {
	run := func() dram.Stats {
		mem := dram.New(dram.DefaultConfig())
		g, _ := NewGenerator(DefaultTraffic())
		g.Emit(mem, 0, sim.FromMilliseconds(5))
		return mem.Stats()
	}
	if run() != run() {
		t.Fatal("traffic must be deterministic")
	}
}

func TestFractionalCarryOver(t *testing.T) {
	mem := dram.New(dram.DefaultConfig())
	cfg := DefaultTraffic()
	cfg.BytesPerSecond = 64 // one line per second
	g, _ := NewGenerator(cfg)
	// 100 windows of 10ms: one line per 10 windows.
	for i := 0; i < 100; i++ {
		from := sim.Time(i) * sim.FromMilliseconds(10)
		g.Emit(mem, from, from+sim.FromMilliseconds(10))
	}
	if g.Lines != 1 {
		t.Fatalf("lines = %d want 1 (fractional accrual)", g.Lines)
	}
}

func TestAddressesStayInRegion(t *testing.T) {
	mem := dram.New(dram.DefaultConfig())
	cfg := DefaultTraffic()
	cfg.Span = 1 << 20
	g, _ := NewGenerator(cfg)
	g.Emit(mem, 0, sim.FromMilliseconds(2))
	if g.cursor < cfg.Region || g.cursor > cfg.Region+cfg.Span {
		t.Fatalf("cursor %#x escaped region", g.cursor)
	}
}
