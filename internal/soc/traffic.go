// Package soc models the rest of the SoC's memory traffic — CPU, GPU,
// radios — as a background request stream into the shared DRAM. The paper's
// platform runs the full Android stack (GemDroid), so its video IPs always
// contend with other masters for banks and row buffers; §3.2 explicitly
// avoids slowing the memory clock "to not impact CPU performance". The
// generator reproduces that contention at a configurable bandwidth so its
// effect on racing and on MACH can be measured (ablation benchmarks).
package soc

import (
	"fmt"

	"mach/internal/dram"
	"mach/internal/sim"
)

// BytesPerSecond is an average bandwidth. A named unit type (DESIGN.md
// "machlint v2: unit types"): bandwidths cannot be added to byte counts or
// durations without an explicit conversion.
type BytesPerSecond float64

// MHz is the megahertz scale board files and datasheets quote SoC clocks
// in. It is deliberately a distinct type from sim.Hertz: same dimension at
// a different scale is exactly the silent 1e6x slip the unit checks exist
// for, so crossing the scale requires the explicit conversion below.
type MHz float64

// Hertz converts the board-file scale to the engine's canonical frequency.
func (f MHz) Hertz() sim.Hertz { return sim.Hertz(float64(f) * 1e6) }

// TrafficConfig shapes the background stream.
type TrafficConfig struct {
	// BytesPerSecond is the average background bandwidth. Zero disables
	// the generator.
	BytesPerSecond BytesPerSecond
	// ReadFraction of accesses are reads (the rest are writes).
	ReadFraction float64
	// BurstLines is how many consecutive lines one request burst covers.
	BurstLines int
	// Region and Span bound the addresses touched.
	Region, Span uint64
	// SequentialFraction of bursts continue where the previous one ended
	// (streaming); the rest jump to a pseudo-random location (pointer
	// chasing).
	SequentialFraction float64
	// Seed makes the stream deterministic.
	Seed uint64
}

// DefaultTraffic returns a modest smartphone background load: 200 MB/s,
// 70% reads, half streaming.
func DefaultTraffic() TrafficConfig {
	return TrafficConfig{
		BytesPerSecond:     200e6,
		ReadFraction:       0.7,
		BurstLines:         8,
		Region:             0x8000_0000,
		Span:               64 << 20,
		SequentialFraction: 0.5,
		Seed:               99,
	}
}

// Validate reports malformed configurations.
func (c TrafficConfig) Validate() error {
	if c.BytesPerSecond < 0 {
		return fmt.Errorf("soc: negative bandwidth")
	}
	if c.BytesPerSecond == 0 {
		return nil
	}
	switch {
	case c.ReadFraction < 0 || c.ReadFraction > 1:
		return fmt.Errorf("soc: read fraction %g", c.ReadFraction)
	case c.BurstLines < 1:
		return fmt.Errorf("soc: burst lines %d", c.BurstLines)
	case c.Span == 0:
		return fmt.Errorf("soc: zero span")
	case c.SequentialFraction < 0 || c.SequentialFraction > 1:
		return fmt.Errorf("soc: sequential fraction %g", c.SequentialFraction)
	}
	return nil
}

// Generator emits the stream into a DRAM model across virtual-time windows.
type Generator struct {
	cfg    TrafficConfig
	rng    uint64
	cursor uint64 // next sequential address
	// Accumulated fractional bytes owed from previous windows.
	debt float64

	Lines int64 // lines issued so far
}

// NewGenerator returns a generator, or an error for invalid configs.
func NewGenerator(cfg TrafficConfig) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Generator{cfg: cfg, rng: cfg.Seed ^ 0x9E3779B97F4A7C15, cursor: cfg.Region}, nil
}

func (g *Generator) next() uint64 {
	g.rng += 0x9E3779B97F4A7C15
	z := g.rng
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// GeneratorState is the serializable mirror of a Generator's mutable state
// (the config is reconstructed, not serialized).
type GeneratorState struct {
	RNG    uint64
	Cursor uint64
	Debt   float64
	Lines  int64
}

// Snapshot returns a copy of the generator's mutable state.
func (g *Generator) Snapshot() GeneratorState {
	return GeneratorState{RNG: g.rng, Cursor: g.cursor, Debt: g.debt, Lines: g.Lines}
}

// Restore overwrites the generator's mutable state from a snapshot.
func (g *Generator) Restore(st GeneratorState) {
	g.rng = st.RNG
	g.cursor = st.Cursor
	g.debt = st.Debt
	g.Lines = st.Lines
}

// Emit issues the background traffic covering the window [from, to) into
// mem: bursts spread uniformly across the window at the configured
// bandwidth. Fractional lines carry over to the next window so long runs
// hit the exact average bandwidth.
func (g *Generator) Emit(mem *dram.Memory, from, to sim.Time) {
	if g == nil || g.cfg.BytesPerSecond == 0 || to <= from {
		return
	}
	lineBytes := uint64(mem.Config().LineBytes)
	window := (to - from).Seconds()
	g.debt += float64(g.cfg.BytesPerSecond) * window
	linesOwed := int(g.debt / float64(lineBytes))
	if linesOwed <= 0 {
		return
	}
	g.debt -= float64(linesOwed) * float64(lineBytes)

	bursts := (linesOwed + g.cfg.BurstLines - 1) / g.cfg.BurstLines
	issued := 0
	for b := 0; b < bursts; b++ {
		at := from + sim.Time(int64(to-from)*int64(b)/int64(bursts))
		// Pick the burst start address.
		if float64(g.next()%1000)/1000.0 >= g.cfg.SequentialFraction {
			g.cursor = g.cfg.Region + (g.next()%g.cfg.Span)&^(lineBytes-1)
		}
		write := float64(g.next()%1000)/1000.0 >= g.cfg.ReadFraction
		for i := 0; i < g.cfg.BurstLines && issued < linesOwed; i++ {
			mem.Access(at, g.cursor, write)
			g.cursor += lineBytes
			if g.cursor >= g.cfg.Region+g.cfg.Span {
				g.cursor = g.cfg.Region
			}
			issued++
			g.Lines++
		}
	}
}
