package power

import (
	"mach/internal/energy"
	"mach/internal/sim"
)

// Watts is the canonical power quantity of every IP model (decoder P-state
// power, display scan power, DRAM background power, radio states). It is a
// named unit type (DESIGN.md "machlint v2: unit types"): mixing it
// additively with energy or time fails to compile, and the unitflow
// analyzer tracks its dimension through derived float locals. The
// underlying float64 is unchanged, so wrapping existing fields is
// bit-exact.
type Watts float64

// Milliwatts is the scale Table 2 quotes most board-level numbers in. It is
// a distinct type from Watts so a 1000x scale slip cannot pass silently;
// cross the scale with the explicit conversions below.
type Milliwatts float64

// Watts converts the mW quantity to the canonical scale. IEEE-754 division
// is correctly rounded, so Milliwatts(120).Watts() is the same float64 as
// the literal 0.120 — DefaultConfig values expressed either way are
// bit-identical.
func (m Milliwatts) Watts() Watts { return Watts(float64(m) / 1000) }

// Milliwatts converts to the mW scale (reporting only).
func (w Watts) Milliwatts() Milliwatts { return Milliwatts(float64(w) * 1000) }

// Over integrates the power over a duration: the one legitimate product
// that turns power into energy. Every ledger accumulation in this package
// goes through it, which is what lets the ledgercheck analyzer enumerate
// energy producers by name.
func (w Watts) Over(d sim.Time) energy.Joules {
	return energy.Joules(float64(w) * d.Seconds())
}
