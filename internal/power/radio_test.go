package power

import (
	"math"
	"testing"

	"mach/internal/sim"
)

func TestRadioConfigValidate(t *testing.T) {
	good := DefaultRadio()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []RadioConfig{
		{ActivePower: 0.5, TailPower: 0.6, SleepPower: 0.01}, // tail above active
		{ActivePower: 1, TailPower: 0.01, SleepPower: 0.6},   // sleep above tail
		{ActivePower: 1, TailPower: 0.6, SleepPower: -0.1},   // negative sleep
		func() RadioConfig { c := DefaultRadio(); c.TailTime = -1; return c }(),
		func() RadioConfig { c := DefaultRadio(); c.WakeEnergy = -1; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
	if _, err := NewRadioLedger(bad[0]); err == nil {
		t.Error("NewRadioLedger accepted an invalid config")
	}
}

func TestRadioLedgerAccounting(t *testing.T) {
	cfg := DefaultRadio()
	l, err := NewRadioLedger(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Starts asleep: the first transfer charges one wake-up plus the sleep
	// residency of the leading gap.
	l.Transfer(sim.FromMilliseconds(500), sim.FromMilliseconds(600))
	st := l.Stats()
	if st.Wakeups != 1 {
		t.Fatalf("wakeups = %d, want 1", st.Wakeups)
	}
	if st.SleepTime != sim.FromMilliseconds(500) {
		t.Fatalf("sleep time = %v, want 500ms", st.SleepTime)
	}
	if st.ActiveTime != sim.FromMilliseconds(100) {
		t.Fatalf("active time = %v, want 100ms", st.ActiveTime)
	}

	// A short gap stays inside the tail: no second wake-up.
	l.Transfer(sim.FromMilliseconds(650), sim.FromMilliseconds(700))
	st = l.Stats()
	if st.Wakeups != 1 {
		t.Fatalf("wakeups after tail-gap transfer = %d, want 1", st.Wakeups)
	}
	if st.TailTime != sim.FromMilliseconds(50) {
		t.Fatalf("tail time = %v, want 50ms", st.TailTime)
	}

	// A long gap demotes to sleep after TailTime and re-wakes.
	l.Transfer(sim.Second, sim.Second+sim.FromMilliseconds(100))
	st = l.Stats()
	if st.Wakeups != 2 {
		t.Fatalf("wakeups after long gap = %d, want 2", st.Wakeups)
	}

	// Finish accounts the final tail decay and sleep.
	l.Finish(2 * sim.Second)
	st = l.Stats()
	span := st.ActiveTime + st.TailTime + st.SleepTime
	if span != 2*sim.Second {
		t.Fatalf("residency sums to %v, want 2s", span)
	}
	wantEnergy := float64(cfg.ActivePower)*st.ActiveTime.Seconds() +
		float64(cfg.TailPower)*st.TailTime.Seconds() +
		float64(cfg.SleepPower)*st.SleepTime.Seconds() +
		float64(st.Wakeups)*float64(cfg.WakeEnergy)
	if math.Abs(float64(st.TotalEnergy())-wantEnergy) > 1e-12 {
		t.Fatalf("total energy %g, want %g", st.TotalEnergy(), wantEnergy)
	}
}

func TestRadioLedgerOverlapClipped(t *testing.T) {
	l, err := NewRadioLedger(DefaultRadio())
	if err != nil {
		t.Fatal(err)
	}
	l.Transfer(0, sim.FromMilliseconds(100))
	// Overlapping and fully-contained windows must not double-charge.
	l.Transfer(sim.FromMilliseconds(50), sim.FromMilliseconds(150))
	l.Transfer(sim.FromMilliseconds(20), sim.FromMilliseconds(30))
	st := l.Stats()
	if st.ActiveTime != sim.FromMilliseconds(150) {
		t.Fatalf("active time = %v, want 150ms", st.ActiveTime)
	}
	// Finish before the cursor is a no-op.
	l.Finish(sim.FromMilliseconds(10))
	if got := l.Stats(); got != st {
		t.Fatalf("Finish before cursor changed stats: %+v -> %+v", st, got)
	}
}
