package power

import (
	"testing"

	"mach/internal/sim"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	c := DefaultConfig()
	c.S1Power = c.IdlePower
	if c.Validate() == nil {
		t.Fatal("S1 >= idle should fail")
	}
	c = DefaultConfig()
	c.S3Transition = c.S1Transition
	if c.Validate() == nil {
		t.Fatal("S3 transition <= S1 should fail")
	}
	c = DefaultConfig()
	c.S1TransitionEnergy = c.S3TransitionEnergy + 1
	if c.Validate() == nil {
		t.Fatal("S1 energy > S3 should fail")
	}
}

func TestBreakEvenOrdering(t *testing.T) {
	c := DefaultConfig()
	beS1 := c.BreakEven(S1)
	beS3 := c.BreakEven(S3)
	if beS1 < c.S1Transition {
		t.Fatalf("S1 break-even %v below transition %v", beS1, c.S1Transition)
	}
	if beS3 <= beS1 {
		t.Fatalf("S3 break-even %v should exceed S1's %v", beS3, beS1)
	}
	if c.BreakEven(Idle) != 0 {
		t.Fatal("idle break-even should be zero")
	}
}

func TestBreakEvenIsActuallyBreakEven(t *testing.T) {
	// At exactly the break-even slack, sleeping must cost no more than
	// idling; just below, idling must win (checked at 99%).
	c := DefaultConfig()
	for _, s := range []State{S1, S3} {
		be := c.BreakEven(s)
		idleCost := float64(c.IdlePower) * be.Seconds()
		tr, etr := c.transition(s)
		sleepCost := float64(etr) + float64(c.statePower(s))*(be-tr).Seconds()
		if sleepCost > idleCost*(1+1e-9) {
			t.Errorf("%v: sleep %g > idle %g at break-even", s, sleepCost, idleCost)
		}
		below := sim.Time(float64(be) * 0.99)
		if below >= tr {
			idleCost = float64(c.IdlePower) * below.Seconds()
			sleepCost = float64(etr) + float64(c.statePower(s))*(below-tr).Seconds()
			if sleepCost < idleCost {
				t.Errorf("%v: sleeping should not win below break-even", s)
			}
		}
	}
}

func TestChoose(t *testing.T) {
	c := DefaultConfig()
	if got := c.Choose(sim.FromMilliseconds(0.5)); got != Idle {
		t.Fatalf("0.5ms -> %v", got)
	}
	if got := c.Choose(c.BreakEven(S1) + 1); got != S1 {
		t.Fatalf("just past S1 break-even -> %v", got)
	}
	if got := c.Choose(c.BreakEven(S3) + 1); got != S3 {
		t.Fatalf("just past S3 break-even -> %v", got)
	}
	if got := c.Choose(sim.Second); got != S3 {
		t.Fatalf("1s -> %v", got)
	}
}

func TestLedgerSpend(t *testing.T) {
	c := DefaultConfig()
	l := NewLedger(c)

	l.Spend(sim.FromMilliseconds(1)) // idle
	if l.IdleTime != sim.FromMilliseconds(1) || l.Transitions != 0 {
		t.Fatalf("idle spend: %+v", l)
	}
	wantIdleE := float64(c.IdlePower) * 0.001
	if d := float64(l.IdleEnergy) - wantIdleE; d > 1e-12 || d < -1e-12 {
		t.Fatalf("idle energy = %g want %g", l.IdleEnergy, wantIdleE)
	}

	slack := sim.FromMilliseconds(20) // deep in S3 territory
	if got := l.Spend(slack); got != S3 {
		t.Fatalf("20ms -> %v", got)
	}
	if l.Transitions != 1 {
		t.Fatalf("transitions = %d", l.Transitions)
	}
	if l.S3Time != slack-c.S3Transition {
		t.Fatalf("S3 time = %v", l.S3Time)
	}
	if l.TransEnergy != c.S3TransitionEnergy {
		t.Fatalf("transition energy = %g", l.TransEnergy)
	}
	if l.TotalTime() != sim.FromMilliseconds(21) {
		t.Fatalf("total time = %v", l.TotalTime())
	}
	if l.SleepTime() != l.S3Time {
		t.Fatalf("sleep time = %v", l.SleepTime())
	}
	if l.TotalEnergy() <= 0 {
		t.Fatal("total energy must be positive")
	}
}

func TestSpendInDegradesShortSlack(t *testing.T) {
	c := DefaultConfig()
	l := NewLedger(c)
	// Forcing S3 with slack shorter than the transition must fall back to
	// idle (hardware refuses the transition).
	l.SpendIn(sim.FromMilliseconds(1), S3)
	if l.Transitions != 0 || l.S3Time != 0 {
		t.Fatalf("short forced sleep should idle: %+v", l)
	}
	if l.IdleTime != sim.FromMilliseconds(1) {
		t.Fatalf("idle time = %v", l.IdleTime)
	}
	// Zero and negative slack are no-ops.
	l.SpendIn(0, S1)
	l.SpendIn(-5, S1)
	if l.TotalTime() != sim.FromMilliseconds(1) {
		t.Fatalf("total = %v", l.TotalTime())
	}
}

func TestSpendInForcedS1(t *testing.T) {
	c := DefaultConfig()
	l := NewLedger(c)
	slack := c.BreakEven(S3) + sim.Millisecond // optimal would be S3
	l.SpendIn(slack, S1)
	if l.S1Time != slack-c.S1Transition || l.S3Time != 0 {
		t.Fatalf("forced S1: %+v", l)
	}
}

func TestBatchingAmortizesTransitions(t *testing.T) {
	// The core race-to-sleep arithmetic: n short slacks pay n transitions
	// (or worse, never sleep), one accumulated slack pays one.
	c := DefaultConfig()
	per := NewLedger(c)
	slack := sim.FromMilliseconds(5) // each individually reaches S3
	n := 16
	for i := 0; i < n; i++ {
		per.Spend(slack)
	}
	batched := NewLedger(c)
	batched.Spend(sim.Time(n) * slack)
	if batched.TransEnergy >= per.TransEnergy {
		t.Fatalf("batched transitions %g should beat per-frame %g", batched.TransEnergy, per.TransEnergy)
	}
	if batched.TotalEnergy() >= per.TotalEnergy() {
		t.Fatalf("batched energy %g should beat per-frame %g", batched.TotalEnergy(), per.TotalEnergy())
	}
	if batched.Transitions != 1 || per.Transitions != int64(n) {
		t.Fatalf("transitions %d vs %d", batched.Transitions, per.Transitions)
	}
}

func TestStateString(t *testing.T) {
	if Idle.String() != "idle" || S1.String() != "S1" || S3.String() != "S3" {
		t.Fatal("state names")
	}
	if State(42).String() != "State(42)" {
		t.Fatal("unknown state name")
	}
}
