// Package power models the IP power-state machine of the paper's Fig 2a: an
// active P-state (whose power level the owning IP determines from its DVFS
// point), a clock-gated idle ("short slack"), a sleep state S1, and a
// deep-sleep state S3, with the transition latencies and energies of the
// Medfield-class SoC the paper cites (S1<->P 0.8 ms, S3<->P 1.6 ms).
//
// The central policy, used by both the baseline per-frame decoder and the
// Race-to-Sleep batcher, is the break-even rule of §2.2: an IP only enters a
// sleep state when the available slack is long enough that the energy saved
// below idle power exceeds the transition energy.
package power

import (
	"fmt"

	"mach/internal/energy"
	"mach/internal/sim"
)

// State enumerates where slack time can be spent.
type State int

const (
	// Idle is in-P-state waiting: too little slack for any transition
	// ("short slack" in the paper's breakdowns).
	Idle State = iota
	// S1 is the light sleep state.
	S1
	// S3 is the deep sleep state.
	S3
)

func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case S1:
		return "S1"
	case S3:
		return "S3"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config holds the sleep-state parameters.
type Config struct {
	IdlePower Watts // in P-state but not processing (short slack)
	S1Power   Watts
	S3Power   Watts

	// Round-trip transition costs (enter + exit).
	S1Transition       sim.Time
	S3Transition       sim.Time
	S1TransitionEnergy energy.Joules // per round trip
	S3TransitionEnergy energy.Joules // per round trip
}

// DefaultConfig returns parameters matching the paper: 0.8/1.6 ms
// transitions; transition energies of 0.18/0.51 mJ (the 3.6%/10.2% of a 5 mJ
// frame reported for Regions III/IV in §2.2); sleep-state power levels chosen
// so S3 residency is nearly free relative to the 300 mW decoder.
func DefaultConfig() Config {
	return Config{
		IdlePower:          0.120,
		S1Power:            0.030,
		S3Power:            0.003,
		S1Transition:       sim.FromMilliseconds(0.8),
		S3Transition:       sim.FromMilliseconds(1.6),
		S1TransitionEnergy: 0.18e-3,
		S3TransitionEnergy: 0.51e-3,
	}
}

// Validate reports malformed configurations.
func (c Config) Validate() error {
	if c.IdlePower <= c.S1Power || c.S1Power <= c.S3Power || c.S3Power < 0 {
		return fmt.Errorf("power: want idle > S1 > S3 >= 0, got %g/%g/%g", c.IdlePower, c.S1Power, c.S3Power)
	}
	if c.S1Transition <= 0 || c.S3Transition <= c.S1Transition {
		return fmt.Errorf("power: want 0 < S1 transition < S3 transition, got %v/%v", c.S1Transition, c.S3Transition)
	}
	if c.S1TransitionEnergy < 0 || c.S3TransitionEnergy < c.S1TransitionEnergy {
		return fmt.Errorf("power: want 0 <= S1 energy <= S3 energy, got %g/%g", c.S1TransitionEnergy, c.S3TransitionEnergy)
	}
	return nil
}

func (c Config) statePower(s State) Watts {
	switch s {
	case S1:
		return c.S1Power
	case S3:
		return c.S3Power
	default:
		return c.IdlePower
	}
}

func (c Config) transition(s State) (sim.Time, energy.Joules) {
	switch s {
	case S1:
		return c.S1Transition, c.S1TransitionEnergy
	case S3:
		return c.S3Transition, c.S3TransitionEnergy
	default:
		return 0, 0
	}
}

// BreakEven returns the minimum slack for which entering state s costs less
// energy than idling through it: the slack must cover the transition latency
// and the transition energy must be repaid by the power saved below idle.
func (c Config) BreakEven(s State) sim.Time {
	tr, etr := c.transition(s)
	if tr == 0 {
		return 0
	}
	ps := c.statePower(s)
	// Solve Etr + Ps*(t - tr) < Pidle * t  for t.
	denom := float64(c.IdlePower - ps)
	t := sim.FromSeconds((float64(etr) - float64(ps)*tr.Seconds()) / denom)
	if t < tr {
		t = tr
	}
	return t
}

// Choose picks the most energy-efficient state for a slack window.
func (c Config) Choose(slack sim.Time) State {
	if slack >= c.BreakEven(S3) {
		return S3
	}
	if slack >= c.BreakEven(S1) {
		return S1
	}
	return Idle
}

// Ledger accounts residency time and energy across slack windows. The zero
// value is unusable; construct with NewLedger.
type Ledger struct {
	cfg Config

	IdleTime       sim.Time
	S1Time         sim.Time
	S3Time         sim.Time
	TransitionTime sim.Time

	IdleEnergy  energy.Joules
	S1Energy    energy.Joules
	S3Energy    energy.Joules
	TransEnergy energy.Joules

	Transitions int64 // number of sleep round trips taken
}

// NewLedger returns a ledger using cfg; it panics on invalid configuration.
func NewLedger(cfg Config) *Ledger {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Ledger{cfg: cfg}
}

// Config returns the ledger's configuration.
func (l *Ledger) Config() Config { return l.cfg }

// Spend consumes a slack window in the most efficient state per Choose,
// accounting transition latency/energy, and returns the state used.
func (l *Ledger) Spend(slack sim.Time) State {
	s := l.cfg.Choose(slack)
	l.SpendIn(slack, s)
	return s
}

// SpendIn consumes a slack window in a caller-chosen state (used by ablation
// experiments that force suboptimal policies). Slack shorter than the
// transition time of s silently degrades to Idle, mirroring hardware that
// refuses the transition.
func (l *Ledger) SpendIn(slack sim.Time, s State) {
	if slack <= 0 {
		return
	}
	tr, etr := l.cfg.transition(s)
	if s == Idle || slack < tr {
		l.IdleTime += slack
		l.IdleEnergy += l.cfg.IdlePower.Over(slack)
		return
	}
	l.Transitions++
	l.TransitionTime += tr
	l.TransEnergy += etr
	rest := slack - tr
	switch s {
	case S1:
		l.S1Time += rest
		l.S1Energy += l.cfg.S1Power.Over(rest)
	case S3:
		l.S3Time += rest
		l.S3Energy += l.cfg.S3Power.Over(rest)
	}
}

// LedgerState is the serializable mirror of a Ledger's accumulators. The
// configuration is not part of the state: a restored ledger keeps the
// (possibly scheme-scaled) config it was constructed with.
type LedgerState struct {
	IdleTime       sim.Time
	S1Time         sim.Time
	S3Time         sim.Time
	TransitionTime sim.Time

	IdleEnergy  energy.Joules
	S1Energy    energy.Joules
	S3Energy    energy.Joules
	TransEnergy energy.Joules

	Transitions int64
}

// Snapshot returns a copy of the ledger's accumulators.
func (l *Ledger) Snapshot() LedgerState {
	return LedgerState{
		IdleTime:       l.IdleTime,
		S1Time:         l.S1Time,
		S3Time:         l.S3Time,
		TransitionTime: l.TransitionTime,
		IdleEnergy:     l.IdleEnergy,
		S1Energy:       l.S1Energy,
		S3Energy:       l.S3Energy,
		TransEnergy:    l.TransEnergy,
		Transitions:    l.Transitions,
	}
}

// Restore overwrites the accumulators from a snapshot. The values are plain
// state moves (not newly produced energy), so the accounting invariant that
// every joule lands in exactly one ledger is preserved across save/restore.
func (l *Ledger) Restore(st LedgerState) {
	l.IdleTime = st.IdleTime
	l.S1Time = st.S1Time
	l.S3Time = st.S3Time
	l.TransitionTime = st.TransitionTime
	l.IdleEnergy = st.IdleEnergy
	l.S1Energy = st.S1Energy
	l.S3Energy = st.S3Energy
	l.TransEnergy = st.TransEnergy
	l.Transitions = st.Transitions
}

// TransTime returns total time spent in transitions.
func (l *Ledger) TransTime() sim.Time { return l.TransitionTime }

// SleepTime returns total time in S1+S3.
func (l *Ledger) SleepTime() sim.Time { return l.S1Time + l.S3Time }

// TotalTime returns all accounted slack time.
func (l *Ledger) TotalTime() sim.Time {
	return l.IdleTime + l.S1Time + l.S3Time + l.TransitionTime
}

// TotalEnergy returns all accounted slack energy in joules.
func (l *Ledger) TotalEnergy() energy.Joules {
	return l.IdleEnergy + l.S1Energy + l.S3Energy + l.TransEnergy
}
