package power

import (
	"fmt"

	"mach/internal/energy"
	"mach/internal/sim"
)

// RadioConfig models the cellular/WiFi modem's power states for the
// streaming-delivery path. Handheld radios are the network-side analogue of
// the decoder's P/S1/S3 machine: a high-power active state while bits move,
// a promoted "tail" state the radio lingers in after the last transfer
// (RRC_CONNECTED / DRX inactivity timers), and a deep idle it only reaches
// once the tail expires. Burst-downloading whole segments amortizes the tail
// across many frames exactly as decode batching amortizes the S3 transition.
type RadioConfig struct {
	ActivePower Watts // while transferring
	TailPower   Watts // in the post-transfer high-power tail
	SleepPower  Watts // in deep idle

	// TailTime is how long the radio dwells in the tail after activity
	// before demoting to sleep.
	TailTime sim.Time
	// WakeLatency is the sleep->active promotion latency (paid inside the
	// gap that precedes a transfer, not added to transfer time).
	WakeLatency sim.Time
	// WakeEnergy is the energy of one sleep->active promotion.
	WakeEnergy energy.Joules
}

// DefaultRadio returns an LTE-class modem: ~1 W moving bits, a 0.6 W tail
// held for 100 ms, ~12 mW deep idle, 15 mJ per wake-up. The values follow
// the shape (not any one vendor's numbers) of the smartphone radio
// measurements in the mobile-streaming energy literature.
func DefaultRadio() RadioConfig {
	return RadioConfig{
		ActivePower: 1.0,
		TailPower:   0.6,
		SleepPower:  0.012,
		TailTime:    sim.FromMilliseconds(100),
		WakeLatency: sim.FromMilliseconds(10),
		WakeEnergy:  15e-3,
	}
}

// Validate reports malformed configurations.
func (c RadioConfig) Validate() error {
	if c.ActivePower < c.TailPower || c.TailPower < c.SleepPower || c.SleepPower < 0 {
		return fmt.Errorf("power: want radio active >= tail >= sleep >= 0, got %g/%g/%g",
			c.ActivePower, c.TailPower, c.SleepPower)
	}
	if c.TailTime < 0 || c.WakeLatency < 0 || c.WakeEnergy < 0 {
		return fmt.Errorf("power: negative radio tail/wake cost")
	}
	return nil
}

// RadioStats is the radio ledger's accumulated residency and energy.
type RadioStats struct {
	ActiveTime sim.Time
	TailTime   sim.Time
	SleepTime  sim.Time
	Wakeups    int64

	ActiveEnergy energy.Joules
	TailEnergy   energy.Joules
	SleepEnergy  energy.Joules
	WakeEnergy   energy.Joules
}

// TotalEnergy returns the radio's total energy in joules.
func (s RadioStats) TotalEnergy() energy.Joules {
	return s.ActiveEnergy + s.TailEnergy + s.SleepEnergy + s.WakeEnergy
}

// RadioLedger accounts radio residency across a sequence of transfer
// windows, in nondecreasing time order. The zero value is unusable;
// construct with NewRadioLedger. The radio starts asleep at time zero.
type RadioLedger struct {
	cfg    RadioConfig
	cursor sim.Time // end of the last accounted interval
	awake  bool     // radio is in active/tail (not yet demoted to sleep)

	stats RadioStats
}

// NewRadioLedger returns a ledger, or an error for invalid configs.
func NewRadioLedger(cfg RadioConfig) (*RadioLedger, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &RadioLedger{cfg: cfg}, nil
}

// Config returns the ledger's configuration.
func (l *RadioLedger) Config() RadioConfig { return l.cfg }

// Stats returns the accumulated residency and energy.
func (l *RadioLedger) Stats() RadioStats { return l.stats }

// TotalEnergy returns the radio's total energy so far, in joules.
func (l *RadioLedger) TotalEnergy() energy.Joules { return l.stats.TotalEnergy() }

// idle accounts the gap [l.cursor, upTo) with no transfer: tail until the
// inactivity timer expires, then sleep.
func (l *RadioLedger) idle(upTo sim.Time) {
	gap := upTo - l.cursor
	if gap <= 0 {
		return
	}
	if l.awake {
		tail := gap
		if tail > l.cfg.TailTime {
			tail = l.cfg.TailTime
		}
		l.stats.TailTime += tail
		l.stats.TailEnergy += l.cfg.TailPower.Over(tail)
		gap -= tail
		if gap > 0 {
			l.awake = false
		}
	}
	if gap > 0 {
		l.stats.SleepTime += gap
		l.stats.SleepEnergy += l.cfg.SleepPower.Over(gap)
	}
	l.cursor = upTo
}

// Transfer accounts one transfer window [from, to): the preceding gap is
// spent in tail/sleep, a wake-up is charged if the radio had demoted, and
// the window itself runs at active power. Windows must not move backwards
// in time; an overlapping window is clipped to the cursor.
func (l *RadioLedger) Transfer(from, to sim.Time) {
	if from > l.cursor {
		l.idle(from)
	}
	if !l.awake {
		l.stats.Wakeups++
		l.stats.WakeEnergy += l.cfg.WakeEnergy
		l.awake = true
	}
	if to <= l.cursor {
		return
	}
	from = l.cursor
	l.stats.ActiveTime += to - from
	l.stats.ActiveEnergy += l.cfg.ActivePower.Over(to - from)
	l.cursor = to
}

// Finish accounts the final idle stretch up to end (typically the run's
// wall-clock end, so the radio's tail decay and deep idle over the whole
// playback are captured). Safe to call with end before the cursor.
func (l *RadioLedger) Finish(end sim.Time) {
	if end > l.cursor {
		l.idle(end)
	}
}
