// Package display models the display controller (DC): a 60 Hz scan-out
// engine that reads each decoded frame out of memory and, under MACH
// layouts, resolves pointer/digest indirection with the two hardware
// structures of §5.1:
//
//   - the display cache, a small direct-mapped cache over memory lines that
//     recovers the locality the pointer layout destroys (repeated pointers
//     to the same content, fragmented 48-byte fetches);
//   - the MACH buffer, a digest-indexed store prefetched from the frames'
//     frozen-MACH dumps, which serves inter-frame matches without any
//     memory access.
//
// Reads are posted into the DRAM model paced across the frame period, so
// display traffic interleaves with decoder traffic at the banks — the
// interference that makes slow decoding lose row-buffer locality (Fig 5a).
package display

import (
	"cmp"
	"fmt"
	"slices"

	"mach/internal/cache"
	"mach/internal/dram"
	"mach/internal/energy"
	"mach/internal/framebuf"
	"mach/internal/power"
	"mach/internal/sim"
)

// Config describes the display controller.
type Config struct {
	FPS       int
	Power     power.Watts // while scanning (Table 2: 0.12 W)
	LineBytes int

	UseDisplayCache   bool
	DisplayCacheBytes int // 16KB direct-mapped (Fig 10c)

	UseMachBuffer     bool
	MachBufferEntries int // 2K (Fig 12b)
	MachBufferWays    int
}

// DefaultConfig returns the Table 2 display: 60 Hz, 0.12 W, 16KB display
// cache, 2K-entry MACH buffer.
func DefaultConfig() Config {
	return Config{
		FPS:               60,
		Power:             0.12,
		LineBytes:         64,
		UseDisplayCache:   true,
		DisplayCacheBytes: 16 * 1024,
		UseMachBuffer:     true,
		MachBufferEntries: 2048,
		MachBufferWays:    4,
	}
}

// Validate reports malformed configurations.
func (c Config) Validate() error {
	switch {
	case c.FPS <= 0:
		return fmt.Errorf("display: fps %d", c.FPS)
	case c.Power < 0:
		return fmt.Errorf("display: power %g", c.Power)
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("display: line bytes %d", c.LineBytes)
	case c.UseDisplayCache && c.DisplayCacheBytes <= 0:
		return fmt.Errorf("display: cache bytes %d", c.DisplayCacheBytes)
	case c.UseMachBuffer && (c.MachBufferEntries <= 0 || c.MachBufferWays <= 0 || c.MachBufferEntries%c.MachBufferWays != 0):
		return fmt.Errorf("display: MACH buffer shape %d/%d", c.MachBufferEntries, c.MachBufferWays)
	}
	return nil
}

// FramePeriod returns the refresh interval.
func (c Config) FramePeriod() sim.Time {
	return sim.Time(int64(sim.Second) / int64(c.FPS))
}

// Stats aggregates DC behaviour.
type Stats struct {
	FramesShown    int64
	FrameRepeats   int64 // refreshes that re-showed the previous frame (drops)
	MemLineReads   int64 // line reads actually sent to DRAM
	MetaLineReads  int64 // of which: layout metadata (pointers/digests/bases/bitmap)
	PrefetchReads  int64 // of which: MACH-buffer prefetch traffic
	Fragmented     int64 // content fetches split across two lines
	DCHits         int64 // display-cache hits
	DCLookups      int64
	MachBufHits    int64 // inter matches served on-chip
	MachBufMisses  int64 // digest records that fell back to memory
	DigestRecords  int64 // records indexed by digest (Fig 10d)
	PointerRecords int64
	ActiveEnergy   energy.Joules // scan power integrated over shown frames
}

// DCHitRate returns the display-cache hit rate.
func (s Stats) DCHitRate() float64 {
	if s.DCLookups == 0 {
		return 0
	}
	return float64(s.DCHits) / float64(s.DCLookups)
}

// machBufEntry is one digest-indexed slot of the MACH buffer.
type machBufEntry struct {
	digest uint32
	ptr    uint64
	valid  bool
	lru    uint64
}

// Controller is the display controller instance.
type Controller struct {
	cfg Config
	mem *dram.Memory

	dcache *cache.SetAssoc

	mbSets, mbWays int
	machBuf        []machBufEntry
	mbTick         uint64

	stats Stats

	//lint:derived per-frame prefetch sort buffer, fully rewritten by every Prefetch call
	sortScratch []framebuf.DumpEntry
}

// New builds a controller; it panics on invalid configuration.
func New(cfg Config, mem *dram.Memory) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Controller{cfg: cfg, mem: mem}
	if cfg.UseDisplayCache {
		c.dcache = cache.NewDirectMapped(cfg.DisplayCacheBytes, cfg.LineBytes)
	}
	if cfg.UseMachBuffer {
		c.mbWays = cfg.MachBufferWays
		c.mbSets = cfg.MachBufferEntries / cfg.MachBufferWays
		if c.mbSets&(c.mbSets-1) != 0 {
			panic(fmt.Sprintf("display: MACH buffer sets %d not a power of two", c.mbSets))
		}
		c.machBuf = make([]machBufEntry, cfg.MachBufferEntries)
	}
	return c
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns accumulated counters.
func (c *Controller) Stats() Stats { return c.stats }

// MachBufEntryState is the serializable mirror of one MACH-buffer slot.
type MachBufEntryState struct {
	Digest uint32
	Ptr    uint64
	Valid  bool
	LRU    uint64
}

// State is the serializable mirror of the controller's mutable state. DCache
// is nil when the display cache is disabled, mirroring the configuration.
type State struct {
	DCache  *cache.State
	MachBuf []MachBufEntryState
	MBTick  uint64
	Stats   Stats
}

// Snapshot returns a copy of the controller's mutable state.
func (c *Controller) Snapshot() State {
	st := State{MBTick: c.mbTick, Stats: c.stats}
	if c.dcache != nil {
		cs := c.dcache.Snapshot()
		st.DCache = &cs
	}
	if c.machBuf != nil {
		st.MachBuf = make([]MachBufEntryState, len(c.machBuf))
		for i, e := range c.machBuf {
			st.MachBuf[i] = MachBufEntryState{Digest: e.digest, Ptr: e.ptr, Valid: e.valid, LRU: e.lru}
		}
	}
	return st
}

// Restore overwrites the controller's mutable state from a snapshot taken on
// an identically configured controller; shape mismatches are rejected.
func (c *Controller) Restore(st State) error {
	if (st.DCache != nil) != (c.dcache != nil) {
		return fmt.Errorf("display: snapshot display-cache presence %v, config wants %v",
			st.DCache != nil, c.dcache != nil)
	}
	if len(st.MachBuf) != len(c.machBuf) {
		return fmt.Errorf("display: snapshot MACH buffer has %d entries, config wants %d",
			len(st.MachBuf), len(c.machBuf))
	}
	if c.dcache != nil {
		if err := c.dcache.Restore(*st.DCache); err != nil {
			return err
		}
	}
	for i, e := range st.MachBuf {
		c.machBuf[i] = machBufEntry{digest: e.Digest, ptr: e.Ptr, valid: e.Valid, lru: e.LRU}
	}
	c.mbTick = st.MBTick
	c.stats = st.Stats
	return nil
}

// mbLookup searches the MACH buffer by digest.
func (c *Controller) mbLookup(digest uint32) (uint64, bool) {
	if c.machBuf == nil {
		return 0, false
	}
	base := (int(digest) & (c.mbSets - 1)) * c.mbWays
	for w := 0; w < c.mbWays; w++ {
		e := &c.machBuf[base+w]
		if e.valid && e.digest == digest {
			c.mbTick++
			e.lru = c.mbTick
			return e.ptr, true
		}
	}
	return 0, false
}

// mbInsert fills one MACH buffer entry.
func (c *Controller) mbInsert(digest uint32, ptr uint64) {
	if c.machBuf == nil {
		return
	}
	base := (int(digest) & (c.mbSets - 1)) * c.mbWays
	victim := base
	for w := 0; w < c.mbWays; w++ {
		e := &c.machBuf[base+w]
		if !e.valid {
			victim = base + w
			break
		}
		if e.lru < c.machBuf[victim].lru {
			victim = base + w
		}
	}
	c.mbTick++
	c.machBuf[victim] = machBufEntry{digest: digest, ptr: ptr, valid: true, lru: c.mbTick}
}

// Prefetch loads a frame's frozen-MACH dump into the MACH buffer (§5.1),
// issuing the dump reads and the content fills as posted memory reads at
// time now. It is called by the pipeline when a decoded frame's layout is
// handed over for display.
//
//lint:hotpath runs once per displayed frame, loading the frozen-MACH dump into the MACH buffer
func (c *Controller) Prefetch(now sim.Time, l *framebuf.FrameLayout) {
	if !c.cfg.UseMachBuffer || l.Kind != framebuf.LayoutPtrDigest || len(l.Dump) == 0 {
		return
	}
	dumpBytes := len(l.Dump) * 8
	for off := 0; off < dumpBytes; off += c.cfg.LineBytes {
		c.mem.Access(now, l.DumpBase+uint64(off), false)
		c.stats.MemLineReads++
		c.stats.PrefetchReads++
	}
	// Prefetch the content each entry points at, sorted by address so the
	// engine sweeps rows instead of ping-ponging between them; the content
	// usually sits in lines the scan-out will touch anyway, so it goes
	// through the display cache to avoid double charging.
	sorted := append(c.sortScratch[:0], l.Dump...)
	c.sortScratch = sorted
	slices.SortFunc(sorted, func(a, b framebuf.DumpEntry) int { return cmp.Compare(a.Ptr, b.Ptr) })
	lineBytes := uint64(c.cfg.LineBytes)
	for _, e := range sorted {
		first, last, n := cache.LineSpan(e.Ptr, uint64(l.MabBytes), lineBytes)
		for ln := first; n > 0 && ln <= last; ln += lineBytes {
			c.readLine(now, ln, true)
		}
		c.mbInsert(e.Digest, e.Ptr)
	}
}

// readLine performs one line read through the display cache; prefetch marks
// accounting as prefetch traffic. It reports whether DRAM was accessed.
func (c *Controller) readLine(now sim.Time, addr uint64, prefetch bool) bool {
	if c.dcache != nil {
		c.stats.DCLookups++
		if c.dcache.Access(addr, false).Hit {
			c.stats.DCHits++
			return false
		}
	}
	c.mem.Access(now, addr, false)
	c.stats.MemLineReads++
	if prefetch {
		c.stats.PrefetchReads++
	}
	return true
}

// ScanOut reads one frame through the layout, pacing reads across the frame
// period starting at start. It returns the number of line reads issued to
// memory for this frame.
//
//lint:hotpath runs once per displayed frame, pacing every line read of the scan
func (c *Controller) ScanOut(start sim.Time, l *framebuf.FrameLayout) int64 {
	before := c.stats.MemLineReads
	period := c.cfg.FramePeriod()
	lineBytes := uint64(c.cfg.LineBytes)

	// The DC fetches in FIFO bursts (BurstLines back-to-back line reads),
	// as real display pipes do; pacing is at burst granularity.
	const burstLines = 4

	switch l.Kind {
	case framebuf.LayoutRaw:
		frameBytes := uint64(len(l.Records) * l.MabBytes)
		total := int64((frameBytes + lineBytes - 1) / lineBytes)
		for i := int64(0); i < total; i++ {
			at := start + sim.Time(int64(period)*(i/burstLines*burstLines)/max(total, 1))
			c.readLine(at, l.BufferBase+uint64(i)*lineBytes, false)
		}
	default:
		// Pointer layouts fetch through a deeper FIFO: 256-record groups,
		// so the dedup-scattered content reads of one group land together
		// and share row activations.
		n := len(l.Records)
		for i, rec := range l.Records {
			at := start + sim.Time(int64(period)*int64(i/256*256)/int64(max(n, 1)))
			// Metadata stream: the pointer/digest array is sequential, so
			// one line covers 16 records; the display cache makes the
			// repeats free.
			if c.readLine(at, (l.MetaBase+uint64(i*4))&^(lineBytes-1), false) {
				c.stats.MetaLineReads++
			}

			switch rec.Kind {
			case framebuf.RecDigest:
				c.stats.DigestRecords++
				if _, hit := c.mbLookup(rec.Digest); hit {
					c.stats.MachBufHits++
					continue
				}
				c.stats.MachBufMisses++
				// Fallback: re-read the dump to find the pointer, then
				// fetch the content.
				c.readLine(at, l.DumpBase, false)
				ptr := resolveDump(l, rec.Digest)
				c.readContent(at, ptr, l.MabBytes)
			default:
				c.stats.PointerRecords++
				c.readContent(at, rec.Ptr, l.MabBytes)
			}
		}
		if l.Gradient {
			// Base array: 3 bytes per record, sequential after the pointers.
			baseStart := l.MetaBase + uint64(len(l.Records)*4)
			baseBytes := uint64(len(l.Records) * 3)
			group := 16 * lineBytes
			for off := uint64(0); off < baseBytes; off += lineBytes {
				at := start + sim.Time(int64(period)*int64(off/group*group)/int64(max(baseBytes, 1)))
				if c.readLine(at, (baseStart+off)&^(lineBytes-1), false) {
					c.stats.MetaLineReads++
				}
			}
		}
	}

	c.stats.FramesShown++
	c.stats.ActiveEnergy += c.cfg.Power.Over(period)
	return c.stats.MemLineReads - before
}

// readContent fetches a mab-sized content block, counting fragmentation
// when it straddles a line boundary (§5's request-fragmentation problem).
func (c *Controller) readContent(at sim.Time, addr uint64, size int) {
	lineBytes := uint64(c.cfg.LineBytes)
	first, last, n := cache.LineSpan(addr, uint64(size), lineBytes)
	if n > 1 {
		c.stats.Fragmented++
	}
	for ln := first; n > 0 && ln <= last; ln += lineBytes {
		c.readLine(at, ln, false)
	}
}

// RepeatFrame accounts a refresh that found no new frame (a drop): the DC
// re-scans the previous frame. Re-reading costs the same scan power; memory
// traffic is modelled as a raw re-read of the previous layout when given,
// or power-only when the previous frame is unknown.
func (c *Controller) RepeatFrame(start sim.Time, prev *framebuf.FrameLayout) {
	c.stats.FrameRepeats++
	if prev != nil {
		c.ScanOut(start, prev)
		c.stats.FramesShown-- // the repeat is not a new frame
	} else {
		c.stats.ActiveEnergy += c.cfg.Power.Over(c.cfg.FramePeriod())
	}
}

func resolveDump(l *framebuf.FrameLayout, digest uint32) uint64 {
	for _, e := range l.Dump {
		if e.Digest == digest {
			return e.Ptr
		}
	}
	return l.BufferBase
}
