package display

import (
	"testing"

	"mach/internal/dram"
	"mach/internal/framebuf"
	"mach/internal/sim"
)

func testMem() *dram.Memory { return dram.New(dram.DefaultConfig()) }

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.FPS = 0
	if bad.Validate() == nil {
		t.Fatal("0 fps should fail")
	}
	bad = DefaultConfig()
	bad.MachBufferEntries = 100 // not divisible by ways
	bad.MachBufferWays = 3
	if bad.Validate() == nil {
		t.Fatal("bad MACH buffer shape should fail")
	}
	if DefaultConfig().FramePeriod() != sim.Time(int64(sim.Second)/60) {
		t.Fatal("frame period")
	}
}

// rawLayout builds an n-mab raw frame layout.
func rawLayout(nMabs int) *framebuf.FrameLayout {
	l := &framebuf.FrameLayout{
		Kind:       framebuf.LayoutRaw,
		MabBytes:   48,
		BufferBase: framebuf.RegionFrameBuffers,
	}
	for i := 0; i < nMabs; i++ {
		l.Records = append(l.Records, framebuf.MabRecord{Kind: framebuf.RecFull, Ptr: l.BufferBase + uint64(i*48)})
	}
	return l
}

func TestScanOutRawReadsWholeFrame(t *testing.T) {
	dc := New(DefaultConfig(), testMem())
	n := 128 // 128 mabs * 48B = 6144B = 96 lines
	reads := dc.ScanOut(0, rawLayout(n))
	if reads != 96 {
		t.Fatalf("line reads = %d want 96", reads)
	}
	s := dc.Stats()
	if s.FramesShown != 1 {
		t.Fatalf("frames shown = %d", s.FramesShown)
	}
	if s.ActiveEnergy <= 0 {
		t.Fatal("scan energy must accrue")
	}
}

// ptrLayout builds a pointer layout where every mab matched one shared
// content block (extreme intra-match).
func ptrLayout(nMabs int, kind framebuf.LayoutKind) *framebuf.FrameLayout {
	l := &framebuf.FrameLayout{
		Kind:       kind,
		MabBytes:   48,
		BufferBase: framebuf.RegionFrameBuffers,
		MetaBase:   framebuf.RegionFrameBuffers + 1<<20,
		DumpBase:   framebuf.RegionMachDumps,
	}
	l.Records = append(l.Records, framebuf.MabRecord{Kind: framebuf.RecFull, Ptr: l.BufferBase})
	for i := 1; i < nMabs; i++ {
		l.Records = append(l.Records, framebuf.MabRecord{Kind: framebuf.RecPointer, Ptr: l.BufferBase})
	}
	l.Dump = []framebuf.DumpEntry{{Digest: 0xAB, Ptr: l.BufferBase}}
	return l
}

func TestDisplayCacheAbsorbsRepeatedPointers(t *testing.T) {
	// Every record points at the same 48 bytes: with the display cache the
	// frame costs a handful of memory reads; without it, hundreds.
	with := New(DefaultConfig(), testMem())
	readsWith := with.ScanOut(0, ptrLayout(256, framebuf.LayoutPtr))

	cfg := DefaultConfig()
	cfg.UseDisplayCache = false
	cfg.UseMachBuffer = false
	without := New(cfg, testMem())
	readsWithout := without.ScanOut(0, ptrLayout(256, framebuf.LayoutPtr))

	if readsWith >= readsWithout/10 {
		t.Fatalf("display cache: %d reads vs %d without", readsWith, readsWithout)
	}
	if with.Stats().DCHitRate() < 0.9 {
		t.Fatalf("hit rate = %v", with.Stats().DCHitRate())
	}
}

func TestMachBufferServesDigests(t *testing.T) {
	dc := New(DefaultConfig(), testMem())
	l := ptrLayout(8, framebuf.LayoutPtrDigest)
	// Replace pointer records with digest records matched in the dump.
	for i := 1; i < len(l.Records); i++ {
		l.Records[i] = framebuf.MabRecord{Kind: framebuf.RecDigest, Digest: 0xAB}
	}
	dc.Prefetch(0, l)
	dc.ScanOut(0, l)
	s := dc.Stats()
	if s.MachBufHits != 7 {
		t.Fatalf("machbuf hits = %d", s.MachBufHits)
	}
	if s.MachBufMisses != 0 {
		t.Fatalf("machbuf misses = %d", s.MachBufMisses)
	}
	if s.DigestRecords != 7 || s.PointerRecords != 1 {
		t.Fatalf("record split: %+v", s)
	}
}

func TestMachBufferMissFallsBack(t *testing.T) {
	dc := New(DefaultConfig(), testMem())
	l := ptrLayout(4, framebuf.LayoutPtrDigest)
	l.Records[2] = framebuf.MabRecord{Kind: framebuf.RecDigest, Digest: 0xAB}
	// No prefetch: the digest misses the MACH buffer and falls back to the
	// dump in memory.
	dc.ScanOut(0, l)
	s := dc.Stats()
	if s.MachBufMisses != 1 {
		t.Fatalf("expected one fallback, got %+v", s)
	}
}

func TestFragmentationCounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseDisplayCache = false
	cfg.UseMachBuffer = false
	dc := New(cfg, testMem())
	l := &framebuf.FrameLayout{
		Kind:       framebuf.LayoutPtr,
		MabBytes:   48,
		BufferBase: framebuf.RegionFrameBuffers,
		MetaBase:   framebuf.RegionFrameBuffers + 1<<20,
	}
	// Content at offset 32: a 48-byte fetch straddles two lines (§5).
	l.Records = append(l.Records, framebuf.MabRecord{Kind: framebuf.RecFull, Ptr: l.BufferBase + 32})
	dc.ScanOut(0, l)
	if dc.Stats().Fragmented != 1 {
		t.Fatalf("fragmented = %d", dc.Stats().Fragmented)
	}
}

func TestRepeatFrame(t *testing.T) {
	dc := New(DefaultConfig(), testMem())
	l := rawLayout(64)
	dc.ScanOut(0, l)
	shown := dc.Stats().FramesShown
	dc.RepeatFrame(sim.FromMilliseconds(16), l)
	s := dc.Stats()
	if s.FrameRepeats != 1 {
		t.Fatalf("repeats = %d", s.FrameRepeats)
	}
	if s.FramesShown != shown {
		t.Fatal("a repeat is not a new frame")
	}
	// Unknown previous frame: power-only accounting.
	before := s.ActiveEnergy
	dc.RepeatFrame(sim.FromMilliseconds(32), nil)
	if dc.Stats().ActiveEnergy <= before {
		t.Fatal("repeat must cost scan power")
	}
}

func TestGradientBaseReads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseDisplayCache = false
	cfg.UseMachBuffer = false
	dc := New(cfg, testMem())
	l := ptrLayout(64, framebuf.LayoutPtr)
	l.Gradient = true
	reads := dc.ScanOut(0, l)
	// Base array: 64 records * 3B = 192B = 3 lines beyond the meta+content.
	dcNoGab := New(cfg, testMem())
	l2 := ptrLayout(64, framebuf.LayoutPtr)
	reads2 := dcNoGab.ScanOut(0, l2)
	if reads <= reads2 {
		t.Fatalf("gab layout should read the base array: %d vs %d", reads, reads2)
	}
}

func TestPrefetchSkipsNonDigestLayouts(t *testing.T) {
	dc := New(DefaultConfig(), testMem())
	dc.Prefetch(0, rawLayout(16))
	if dc.Stats().PrefetchReads != 0 {
		t.Fatal("raw layouts must not prefetch")
	}
	l := ptrLayout(4, framebuf.LayoutPtr)
	dc.Prefetch(0, l)
	if dc.Stats().PrefetchReads != 0 {
		t.Fatal("layout ii must not prefetch")
	}
}
