package core

import (
	"crypto/md5"
	"encoding/json"
	"fmt"
	"sort"

	"mach/internal/checkpoint"
	"mach/internal/codec"
	"mach/internal/decoder"
	"mach/internal/display"
	"mach/internal/dram"
	"mach/internal/framebuf"
	"mach/internal/mach"
	"mach/internal/power"
	"mach/internal/sim"
	"mach/internal/soc"
	"mach/internal/stats"
	"mach/internal/trace"
)

// This file is the Runner's checkpoint surface (DESIGN.md
// "Checkpoint/Resume"). A snapshot is legal at any frame boundary — between
// StepFrame calls — and captures every piece of mutable cross-frame state;
// everything derived deterministically from (trace, scheme, config) is
// recomputed by NewRunner instead of serialized: the delivery schedule and
// its radio ledger, the availability merge, frame addresses, pool geometry,
// and the startup delay. Restoring a snapshot onto a Runner built from the
// same inputs therefore continues the run bit-identically.
//
// The payload is JSON: encoding/json sorts map keys and emits shortest
// round-trip float64s, so identical states produce identical bytes and
// floats restore exactly.

// maxSaneTime bounds every virtual-time field a snapshot may carry (~3
// days of picoseconds). Legit runs are seconds long; anything bigger is a
// corrupt or hostile file and would only waste cycles simulating dead air.
const maxSaneTime = sim.Time(1) << 58

// freeRecord mirrors pendingFree for serialization.
type freeRecord struct {
	At   sim.Time
	Slot int
}

// simState is the serialized form of a Runner at a frame boundary.
type simState struct {
	Frame          int
	Now            sim.Time
	TrafficFrom    sim.Time
	BatchIdx       int
	BatchEnd       int
	MaxDisplayed   int
	PredictedLow   sim.Time
	HavePrediction bool

	// ABR loop state; all omitted (and validated absent) when ABR is off,
	// keeping disabled-run snapshots byte-identical to the pre-ABR format.
	Rung         int     `json:",omitempty"`
	RungSwitches int64   `json:",omitempty"`
	RungFrames   []int64 `json:",omitempty"`

	Releases []sim.Time
	Frees    []freeRecord
	// Layouts holds the live reference layouts by value, sorted by
	// DisplayIndex; the Runner and the decoder IP share the rebuilt
	// pointers exactly as the live pipeline does.
	Layouts []framebuf.FrameLayout

	// Partial Result counters accumulated by the loop so far.
	Drops         int64
	Rebuffers     int64
	RebufferTime  sim.Time
	BatchShrinks  int64
	FrameTimes    []float64 `json:",omitempty"`
	FrameEnergies []float64 `json:",omitempty"`

	Mem     dram.State
	Decoder decoder.State
	Mach    mach.State
	Display display.State
	Ledger  power.LedgerState
	Traffic soc.GeneratorState
	Pool    framebuf.PoolState
}

// frameSig is the per-frame slice of the run identity hashed into the
// checkpoint fingerprint: enough to tell two traces apart without hashing
// the decoded pixels (the generator is deterministic, so these fields pin
// the content).
type frameSig struct {
	DisplayIndex int
	Type         codec.FrameType
	EncodedBytes int
	TotalBits    int64
	Arrival      sim.Time
}

// Fingerprint identifies the (trace, scheme, config) triple this Runner
// simulates. Checkpoints carry it so a snapshot can never be resumed
// against a different run.
func (r *Runner) Fingerprint() checkpoint.Fingerprint {
	sigs := make([]frameSig, len(r.tr.Frames))
	for i := range r.tr.Frames {
		f := &r.tr.Frames[i]
		sigs[i] = frameSig{
			DisplayIndex: f.DisplayIndex,
			Type:         f.Type,
			EncodedBytes: f.EncodedBytes,
			TotalBits:    f.Work.TotalBits,
			Arrival:      f.Arrival,
		}
	}
	id := struct {
		Scheme  Scheme
		Config  Config
		Profile string
		FPS     int
		Params  codec.Params
		Frames  []frameSig
	}{r.s, r.cfg, r.tr.Profile, r.tr.FPS, r.tr.Params, sigs}
	b, err := json.Marshal(id)
	if err != nil {
		// Scheme/Config/Params are plain exported value structs; this
		// cannot fail for any constructible Runner.
		panic(fmt.Sprintf("core: fingerprint marshal: %v", err))
	}
	return checkpoint.Fingerprint(md5.Sum(b))
}

// Snapshot serializes the Runner's frame-boundary state. It must not be
// called mid-StepFrame (there is no way to, short of a goroutine race) or
// after Finish.
func (r *Runner) Snapshot() ([]byte, error) {
	if r.finished {
		return nil, fmt.Errorf("core: snapshot after Finish")
	}
	st := simState{
		Frame:          r.frame,
		Now:            r.now,
		TrafficFrom:    r.trafficFrom,
		BatchIdx:       r.batchIdx,
		BatchEnd:       r.batchEnd,
		MaxDisplayed:   r.maxDisplayed,
		PredictedLow:   r.predictedLow,
		HavePrediction: r.havePrediction,
		Rung:           r.rung,
		RungSwitches:   r.rungSwitches,
		Drops:          r.res.Drops,
		Rebuffers:      r.res.Rebuffers,
		RebufferTime:   r.res.RebufferTime,
		BatchShrinks:   r.res.BatchShrinks,
		Mem:            r.mem.Snapshot(),
		Decoder:        r.ip.Snapshot(),
		Mach:           r.wb.Snapshot(),
		Display:        r.dc.Snapshot(),
		Ledger:         r.ledger.Snapshot(),
		Traffic:        r.traffic.Snapshot(),
		Pool:           r.pool.Snapshot(),
	}
	if r.rungFrames != nil {
		st.RungFrames = append([]int64(nil), r.rungFrames...)
	}
	if len(r.releases) > 0 {
		st.Releases = append([]sim.Time(nil), r.releases...)
	}
	if len(r.frees) > 0 {
		st.Frees = make([]freeRecord, len(r.frees))
		for i, f := range r.frees {
			st.Frees[i] = freeRecord{At: f.at, Slot: f.slot}
		}
	}
	if len(r.layoutByDisp) > 0 {
		st.Layouts = make([]framebuf.FrameLayout, len(r.layoutByDisp))
		i := 0
		for _, l := range r.layoutByDisp {
			st.Layouts[i] = *l
			i++
		}
		sort.Slice(st.Layouts, func(a, b int) bool {
			return st.Layouts[a].DisplayIndex < st.Layouts[b].DisplayIndex
		})
	}
	if r.res.FrameTimes != nil {
		st.FrameTimes = r.res.FrameTimes.Values()
		st.FrameEnergies = r.res.FrameEnergies.Values()
	}
	return json.Marshal(st)
}

// Restore overwrites the Runner's state from a Snapshot payload. The Runner
// must be freshly built from the same (trace, scheme, config) the snapshot
// came from — SaveCheckpoint/LoadCheckpoint enforce that with the
// fingerprint; Restore itself enforces every structural invariant the step
// loop relies on, because the payload may come from an untrusted file. On
// error the Runner is in an undefined state and must be discarded.
func (r *Runner) Restore(payload []byte) error {
	var st simState
	if err := json.Unmarshal(payload, &st); err != nil {
		return fmt.Errorf("core: checkpoint payload: %w", err)
	}
	nFrames := len(r.tr.Frames)
	numMabs := r.tr.Params.MabsPerFrame()

	// --- Structural validation (pure checks first) -----------------------
	if st.Frame < 0 || st.Frame > st.BatchEnd || st.BatchEnd > nFrames {
		return fmt.Errorf("core: checkpoint cursor frame=%d batchEnd=%d outside trace of %d frames",
			st.Frame, st.BatchEnd, nFrames)
	}
	if st.BatchIdx < 0 {
		return fmt.Errorf("core: negative batch index %d", st.BatchIdx)
	}
	if st.Now < 0 || st.Now > maxSaneTime {
		return fmt.Errorf("core: checkpoint clock %d out of range", int64(st.Now))
	}
	if st.TrafficFrom < 0 || st.TrafficFrom > st.Now {
		return fmt.Errorf("core: traffic cursor %d outside [0, now]", int64(st.TrafficFrom))
	}
	if st.PredictedLow < 0 || st.PredictedLow > maxSaneTime {
		return fmt.Errorf("core: predicted decode time %d out of range", int64(st.PredictedLow))
	}
	if st.MaxDisplayed < -1 || st.MaxDisplayed >= nFrames {
		return fmt.Errorf("core: max displayed index %d outside [-1, %d)", st.MaxDisplayed, nFrames)
	}
	if st.Drops < 0 || st.Rebuffers < 0 || st.RebufferTime < 0 || st.BatchShrinks < 0 {
		return fmt.Errorf("core: negative result counter in checkpoint")
	}
	// ABR state must be present exactly when the config runs the
	// controller, and the rung accounting must reconcile with the cursor:
	// every decoded frame was decoded at some rung.
	if r.rungs != nil {
		if st.Rung < 0 || st.Rung >= len(r.ladder) {
			return fmt.Errorf("core: checkpoint rung %d outside ladder of %d rungs", st.Rung, len(r.ladder))
		}
		if st.RungSwitches < 0 || st.RungSwitches > int64(st.Frame) {
			return fmt.Errorf("core: %d rung switches over %d decoded frames", st.RungSwitches, st.Frame)
		}
		if len(st.RungFrames) != len(r.ladder) {
			return fmt.Errorf("core: %d rung-frame counters for a ladder of %d rungs",
				len(st.RungFrames), len(r.ladder))
		}
		var rf int64
		for i, n := range st.RungFrames {
			if n < 0 {
				return fmt.Errorf("core: negative frame count at rung %d", i)
			}
			rf += n
		}
		if rf != int64(st.Frame) {
			return fmt.Errorf("core: rung-frame counters sum to %d, cursor says %d frames decoded", rf, st.Frame)
		}
	} else if st.Rung != 0 || st.RungSwitches != 0 || st.RungFrames != nil {
		return fmt.Errorf("core: checkpoint carries ABR state, config does not run the controller")
	}
	// The step loop appends exactly one release per frame and indexes
	// releases[frame-poolCap]; both depend on this length invariant.
	if len(st.Releases) != st.Frame {
		return fmt.Errorf("core: %d release times for %d decoded frames", len(st.Releases), st.Frame)
	}
	for i, t := range st.Releases {
		if t < 0 || t > maxSaneTime {
			return fmt.Errorf("core: release time %d out of range", int64(t))
		}
		if i > 0 && t < st.Releases[i-1] {
			return fmt.Errorf("core: release times not sorted at %d", i)
		}
	}
	if r.cfg.CollectFrameSamples {
		if len(st.FrameTimes) != st.Frame || len(st.FrameEnergies) != st.Frame {
			return fmt.Errorf("core: %d/%d frame samples for %d decoded frames",
				len(st.FrameTimes), len(st.FrameEnergies), st.Frame)
		}
	} else if st.FrameTimes != nil || st.FrameEnergies != nil {
		return fmt.Errorf("core: checkpoint carries frame samples, config does not collect them")
	}
	if len(st.Layouts) > nFrames {
		return fmt.Errorf("core: %d live layouts exceed trace length %d", len(st.Layouts), nFrames)
	}
	layouts := make(map[int]*framebuf.FrameLayout, len(st.Layouts))
	for i := range st.Layouts {
		l := &st.Layouts[i]
		if l.DisplayIndex < 0 || l.DisplayIndex >= nFrames {
			return fmt.Errorf("core: layout display index %d outside [0, %d)", l.DisplayIndex, nFrames)
		}
		if _, dup := layouts[l.DisplayIndex]; dup {
			return fmt.Errorf("core: duplicate layout for display index %d", l.DisplayIndex)
		}
		// The decoder's reference reads index Records by mab ordinal.
		if len(l.Records) != numMabs {
			return fmt.Errorf("core: layout %d has %d records, geometry wants %d",
				l.DisplayIndex, len(l.Records), numMabs)
		}
		layouts[l.DisplayIndex] = l
	}

	// --- Component restores (each validates its own shape) ---------------
	if err := r.pool.Restore(st.Pool); err != nil {
		return err
	}
	// Pending frees release pool slots later; a slot not currently held
	// would make Pool.Release panic, so cross-check against the pool.
	inUse := make(map[int]bool, len(st.Pool.InUse))
	for _, s := range st.Pool.InUse {
		inUse[s] = true
	}
	frees := make([]pendingFree, len(st.Frees))
	for i, f := range st.Frees {
		if f.At < 0 || f.At > maxSaneTime {
			return fmt.Errorf("core: pending free time %d out of range", int64(f.At))
		}
		if !inUse[f.Slot] {
			return fmt.Errorf("core: pending free of slot %d not held by the pool", f.Slot)
		}
		inUse[f.Slot] = false // also rejects duplicates
		frees[i] = pendingFree{at: f.At, slot: f.Slot}
	}
	if err := r.mem.Restore(st.Mem); err != nil {
		return err
	}
	if err := r.ip.Restore(st.Decoder, layouts); err != nil {
		return err
	}
	if err := r.wb.Restore(st.Mach); err != nil {
		return err
	}
	// The MACH quantization depth is slaved to the applied rung; a snapshot
	// where the two disagree is corrupt, not merely stale.
	wantShift := 0
	if r.rungs != nil {
		wantShift = r.ladder[st.Rung].QuantShift
	}
	if got := r.wb.QuantShift(); got != wantShift {
		return fmt.Errorf("core: MACH quant shift %d does not match the applied rung's %d", got, wantShift)
	}
	if err := r.dc.Restore(st.Display); err != nil {
		return err
	}
	r.ledger.Restore(st.Ledger)
	r.traffic.Restore(st.Traffic)

	// --- Apply loop state -------------------------------------------------
	r.frame = st.Frame
	r.now = st.Now
	r.trafficFrom = st.TrafficFrom
	r.batchIdx = st.BatchIdx
	r.batchEnd = st.BatchEnd
	r.maxDisplayed = st.MaxDisplayed
	r.predictedLow = st.PredictedLow
	r.havePrediction = st.HavePrediction
	if r.rungs != nil {
		r.rung = st.Rung
		r.rungSwitches = st.RungSwitches
		r.rungFrames = append([]int64(nil), st.RungFrames...)
	}
	r.releases = append([]sim.Time(nil), st.Releases...)
	r.frees = frees
	r.layoutByDisp = layouts
	r.res.Drops = st.Drops
	r.res.Rebuffers = st.Rebuffers
	r.res.RebufferTime = st.RebufferTime
	r.res.BatchShrinks = st.BatchShrinks
	if r.cfg.CollectFrameSamples {
		r.res.FrameTimes = stats.RestoreSample(st.FrameTimes)
		r.res.FrameEnergies = stats.RestoreSample(st.FrameEnergies)
	}
	return nil
}

// SaveCheckpoint atomically writes the Runner's current state to path.
func (r *Runner) SaveCheckpoint(path string) error {
	payload, err := r.Snapshot()
	if err != nil {
		return err
	}
	return checkpoint.Save(path, r.Fingerprint(), payload)
}

// LoadCheckpoint builds a Runner from the same inputs as NewRunner and
// restores it from the checkpoint at path. The file's fingerprint must
// match the (trace, scheme, config) triple; a missing file surfaces as
// fs.ErrNotExist, anything malformed wraps checkpoint.ErrCorrupt.
func LoadCheckpoint(path string, tr *trace.Trace, s Scheme, cfg Config) (*Runner, error) {
	r, err := NewRunner(tr, s, cfg)
	if err != nil {
		return nil, err
	}
	payload, err := checkpoint.Load(path, r.Fingerprint())
	if err != nil {
		return nil, err
	}
	if err := r.Restore(payload); err != nil {
		return nil, fmt.Errorf("%s: %w (%v)", path, checkpoint.ErrCorrupt, err)
	}
	return r, nil
}
