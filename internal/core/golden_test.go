package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden rewrites the committed corpus instead of comparing:
//
//	go test ./internal/core -run TestGoldenResults -update
//
// Review the resulting diff like any accounting change — every field that
// moved is a behaviour change the PR must justify.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden from the current engine")

// goldenScale is the corpus scale: small enough that all 16 workloads
// build in seconds, large enough that every accounting path (matches,
// drops, coalescing, display reuse) is exercised. Changing any of these
// constants invalidates the whole corpus.
const goldenFrames = 16

// TestGoldenResults replays every workload profile through the headline
// GAB scheme and compares the full canonical result — every timing,
// energy, DRAM, MACH, display and delivery counter — byte-for-byte
// against the committed corpus. Any engine drift fails tier-1 with a
// field-level diff instead of surfacing weeks later as an unexplained
// shift in a paper figure.
func TestGoldenResults(t *testing.T) {
	for _, key := range WorkloadKeys() {
		t.Run(key, func(t *testing.T) {
			tr := testTrace(t, key, goldenFrames)
			res := mustRun(t, tr, GAB(DefaultBatch), testConfig())
			got, err := res.CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", key+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden result (regenerate with -update after reviewing why): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: canonical result drifted from golden corpus; first %s\n(rerun with -update only if the change is intended)",
					key, firstDiffLine(want, got))
			}
		})
	}
}

// TestGoldenCorpusComplete fails when a profile is added without a golden
// file or a stale golden file outlives its profile, so the corpus and the
// workload table cannot drift apart silently.
func TestGoldenCorpusComplete(t *testing.T) {
	if *updateGolden {
		t.Skip("corpus being rewritten")
	}
	want := make(map[string]bool)
	for _, key := range WorkloadKeys() {
		want[key+".json"] = true
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !want[e.Name()] {
			t.Errorf("stale golden file %s has no matching workload", e.Name())
		}
		delete(want, e.Name())
	}
	for name := range want {
		t.Errorf("workload %s missing from the golden corpus", name)
	}
}
