package core

import (
	"math"
	"reflect"
	"testing"
)

// Property and metamorphic tests: invariants that must hold for every
// scheme and workload, complementing the golden corpus (which pins exact
// values for one configuration) with laws that constrain all of them.
// The parallel≡sequential law lives in parallel_test.go.

// TestEnergyComponentsSumToTotal checks the accounting identity behind
// every figure: the component breakdown is exhaustive, so summing it
// reproduces the reported total energy to float rounding.
func TestEnergyComponentsSumToTotal(t *testing.T) {
	tr := testTrace(t, "V3", 12)
	for _, s := range StandardSchemes() {
		res := mustRun(t, tr, s, testConfig())
		var sum float64
		for _, k := range res.Energy.Keys() {
			sum += res.Energy.Get(k)
		}
		total := res.TotalEnergy()
		if tol := 1e-12 * math.Max(1, total); math.Abs(sum-total) > tol {
			t.Errorf("%s: components sum to %.15g but total is %.15g", s.Name, sum, total)
		}
		if total <= 0 {
			t.Errorf("%s: non-positive total energy %g", s.Name, total)
		}
	}
}

// TestRatesWithinUnitInterval checks that every reported rate is a
// probability: caches cannot hit more than they are asked, residency
// cannot exceed wall time.
func TestRatesWithinUnitInterval(t *testing.T) {
	tr := testTrace(t, "V7", 12)
	for _, s := range StandardSchemes() {
		res := mustRun(t, tr, s, testConfig())
		rates := map[string]float64{
			"mach match rate":   res.Mach.MatchRate(),
			"dram row-hit rate": res.Mem.RowHitRate(),
			"dec ref-hit rate":  res.Dec.RefHitRate(),
			"dec wb-hit rate":   res.Dec.WbHitRate(),
			"s3 residency":      res.S3Residency(),
		}
		for name, r := range rates {
			if r < 0 || r > 1 || math.IsNaN(r) {
				t.Errorf("%s: %s = %g outside [0,1]", s.Name, name, r)
			}
		}
	}
}

// TestMachCapacityMonotonic checks the metamorphic law of the content
// cache: searching more frozen MACHs can only expose more match
// opportunities, so total matches never decrease as NumMACHs grows (the
// pointer-aging window widens with it, Fig 12a's x-axis).
func TestMachCapacityMonotonic(t *testing.T) {
	tr := testTrace(t, "V5", 16)
	prev := int64(-1)
	prevN := 0
	for _, n := range []int{0, 1, 2, 4, 8, 16, 32} {
		cfg := testConfig()
		cfg.Mach.NumMACHs = n
		res := mustRun(t, tr, GAB(DefaultBatch), cfg)
		matches := res.Mach.IntraMatches + res.Mach.InterMatches
		if matches < prev {
			t.Errorf("matches dropped from %d (NumMACHs=%d) to %d (NumMACHs=%d)", prev, prevN, matches, n)
		}
		prev, prevN = matches, n
	}
}

// TestBatchOneIsBaseline checks that Batching(1) is the identity
// transformation: a one-deep batch schedules exactly like the unbatched
// baseline, so every quantity except the scheme's display name matches.
func TestBatchOneIsBaseline(t *testing.T) {
	tr := testTrace(t, "V2", 12)
	base := mustRun(t, tr, Baseline(), testConfig()).Canonical()
	one := mustRun(t, tr, Batching(1), testConfig()).Canonical()
	if base.Scheme != "Baseline" || one.Scheme != "Batching" {
		t.Fatalf("scheme names changed: %q vs %q", base.Scheme, one.Scheme)
	}
	base.Scheme, one.Scheme = "", ""
	if !reflect.DeepEqual(base, one) {
		t.Errorf("Batching(1) diverged from Baseline:\nbaseline: %+v\nbatch-1:  %+v", base, one)
	}
}
