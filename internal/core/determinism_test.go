package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"mach/internal/video"
)

// These tests lock in at runtime what the machlint determinism analyzer
// enforces statically (see internal/lint): the same seeded workload must
// produce bit-identical traces and measurements on every run. If either
// test fails, every table and figure the repo reproduces stops being
// comparable across machines and PRs.

// TestTraceBuildDeterministic synthesizes the same seeded workload twice
// and requires the serialized traces to be byte-identical.
func TestTraceBuildDeterministic(t *testing.T) {
	sc := video.StreamConfig{Width: 160, Height: 96, NumFrames: 24, Seed: 11, MabSize: 4, Quant: 8}
	key := WorkloadKeys()[0]

	var bufs [2]bytes.Buffer
	for i := range bufs {
		tr, err := BuildTrace(key, sc)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Save(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatalf("same seed produced different trace bytes (%d vs %d bytes)", bufs[0].Len(), bufs[1].Len())
	}
}

// TestRunDeterministic replays one trace through the most machinery-heavy
// scheme (MACH gradient mode plus display optimization) twice and requires
// the two Results to match exactly: same rendered report, same energy down
// to the last float64 bit, and deep-equal measurement structures.
func TestRunDeterministic(t *testing.T) {
	tr := testTrace(t, WorkloadKeys()[0], 24)
	cfg := testConfig()

	for _, s := range []Scheme{Baseline(), RaceToSleep(4), GAB(4)} {
		a := mustRun(t, tr, s, cfg)
		b := mustRun(t, tr, s, cfg)

		if ab, bb := math.Float64bits(a.TotalEnergy()), math.Float64bits(b.TotalEnergy()); ab != bb {
			t.Errorf("%s: total energy differs between identical runs: %x vs %x", s.Name, ab, bb)
		}
		if as, bs := a.String(), b.String(); as != bs {
			t.Errorf("%s: rendered reports differ:\n--- run 1\n%s\n--- run 2\n%s", s.Name, as, bs)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: Result structures differ between identical runs", s.Name)
		}
	}
}
