package core

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"

	"mach/internal/video"
)

// TestParallelMatchesSequential is the acceptance test of the deterministic
// parallel engine: for a sweep of seeds × workloads × worker counts, a run
// with Config.Parallel = N must be bit-identical to the sequential run —
// same canonical JSON, same total-energy float64 bits, same rendered
// report, deep-equal Result structures. The engine only shards the pure
// per-mab prehash; everything order-sensitive happens in the serial
// reduction, and this test is what keeps that contract honest.
func TestParallelMatchesSequential(t *testing.T) {
	seeds := []int64{1, 5, 9}
	profiles := []string{"V1", "V4", "V8", "V13"}
	workers := []int{2, 3, 8}

	scheme := GAB(4) // the machinery-heavy scheme: gab hashing + display opt
	for _, seed := range seeds {
		for _, key := range profiles {
			sc := video.StreamConfig{Width: 160, Height: 96, NumFrames: 16, Seed: seed, MabSize: 4, Quant: 8}
			tr, err := BuildTrace(key, sc)
			if err != nil {
				t.Fatal(err)
			}
			cfg := testConfig()
			seq := mustRun(t, tr, scheme, cfg)
			seqJSON, err := seq.CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workers {
				pcfg := cfg
				pcfg.Parallel = w
				par := mustRun(t, tr, scheme, pcfg)

				if ab, bb := math.Float64bits(seq.TotalEnergy()), math.Float64bits(par.TotalEnergy()); ab != bb {
					t.Errorf("seed %d %s workers=%d: total energy bits differ: %x vs %x", seed, key, w, ab, bb)
				}
				parJSON, err := par.CanonicalJSON()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(seqJSON, parJSON) {
					t.Errorf("seed %d %s workers=%d: canonical JSON diverged:\n%s", seed, key, w, firstDiffLine(seqJSON, parJSON))
				}
				if seq.String() != par.String() {
					t.Errorf("seed %d %s workers=%d: rendered reports differ", seed, key, w)
				}
				if !reflect.DeepEqual(seq.Mach, par.Mach) || !reflect.DeepEqual(seq.Mem, par.Mem) {
					t.Errorf("seed %d %s workers=%d: substrate stats diverged", seed, key, w)
				}
				if !reflect.DeepEqual(seq.FrameTimes, par.FrameTimes) {
					t.Errorf("seed %d %s workers=%d: per-frame time samples diverged", seed, key, w)
				}
			}
		}
	}
}

// TestParallelAcrossSchemes runs every standard scheme once at 4 workers —
// the cheaper cross-scheme guard (raw layout, mab mode, no display opt).
func TestParallelAcrossSchemes(t *testing.T) {
	tr := testTrace(t, "V2", 16)
	cfg := testConfig()
	pcfg := cfg
	pcfg.Parallel = 4
	for _, s := range StandardSchemes() {
		seq := mustRun(t, tr, s, cfg)
		par := mustRun(t, tr, s, pcfg)
		a, err := seq.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: parallel run diverged from sequential:\n%s", s.Name, firstDiffLine(a, b))
		}
	}
}

// TestParallelConfigValidation pins the flag's domain.
func TestParallelConfigValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Parallel = -1
	if err := cfg.Validate(); err == nil {
		t.Error("Parallel=-1 validated")
	}
	cfg.Parallel = 257
	if err := cfg.Validate(); err == nil {
		t.Error("Parallel=257 validated")
	}
	cfg.Parallel = 256
	if err := cfg.Validate(); err != nil {
		t.Errorf("Parallel=256 rejected: %v", err)
	}
}

// firstDiffLine renders the first differing line of two texts, with a line
// number, for readable failure output.
func firstDiffLine(a, b []byte) string {
	al := bytes.Split(a, []byte("\n"))
	bl := bytes.Split(b, []byte("\n"))
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, al[i], bl[i])
		}
	}
	if len(al) != len(bl) {
		return fmt.Sprintf("line counts differ: %d vs %d", len(al), len(bl))
	}
	return "no line-level difference (byte-level only)"
}
