package core

import (
	"fmt"
	"sort"

	"mach/internal/codec"
	"mach/internal/soc"

	"mach/internal/decoder"
	"mach/internal/delivery"
	"mach/internal/display"
	"mach/internal/dram"
	"mach/internal/energy"
	"mach/internal/framebuf"
	"mach/internal/mach"
	"mach/internal/par"
	"mach/internal/power"
	"mach/internal/sim"
	"mach/internal/stats"
	"mach/internal/trace"
)

// Run replays one decode trace under one scheme and returns the full
// measurement. The trace is shared, read-only, across runs: every scheme
// sees identical content, exactly as the paper replays the same video
// traces through each configuration.
func Run(tr *trace.Trace, s Scheme, cfg Config) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(tr.Frames) == 0 {
		return nil, fmt.Errorf("core: empty trace")
	}

	period := sim.Time(int64(sim.Second) / int64(maxInt(tr.FPS, 1)))
	// Streams with B frames need one extra period of display latency for
	// decode-order reordering (anchors decode before the B between them).
	displayLatency := cfg.DisplayLatencyFrames
	for i := range tr.Frames {
		if tr.Frames[i].Type == codec.FrameB {
			displayLatency++
			break
		}
	}
	// startup shifts the whole playback timeline: with delivery enabled the
	// player holds the first scan-out until the first segment is buffered
	// (assigned below, once availability is known), so initial download
	// latency is accounted as startup delay rather than as a string of
	// missed deadlines. Zero for the resident-content pipeline.
	var startup sim.Time
	displayTime := func(displayIndex int) sim.Time {
		return startup + sim.Time(int64(period)*int64(displayIndex+displayLatency))
	}

	// --- Instantiate the platform -------------------------------------
	mem := dram.New(cfg.DRAM)
	ip := decoder.New(cfg.Decoder, mem)

	mcfg := cfg.Mach
	mcfg.MabSize = tr.Params.MabSize
	mcfg.LineBytes = int(cfg.DRAM.LineBytes)
	switch s.Mach {
	case MachOff:
		mcfg.Layout = framebuf.LayoutRaw
	case MachMAB:
		mcfg.Gradient = false
	case MachGAB:
		mcfg.Gradient = true
	}
	if s.Mach != MachOff {
		if s.DisplayOpt {
			mcfg.Layout = framebuf.LayoutPtrDigest
		} else {
			mcfg.Layout = framebuf.LayoutPtr
		}
	}
	wb, err := mach.NewWriteback(mcfg)
	if err != nil {
		return nil, err
	}
	if cfg.Parallel > 1 {
		// The pool shards only the pure per-mab prehash; classification
		// and DRAM op generation stay serial in mab order, so the run is
		// bit-identical to the sequential path (see DESIGN.md).
		wb.SetPool(par.New(cfg.Parallel))
	}

	dcfg := cfg.Display
	dcfg.FPS = tr.FPS
	dcfg.LineBytes = int(cfg.DRAM.LineBytes)
	dispOpt := s.Mach != MachOff && s.DisplayOpt
	dcfg.UseDisplayCache = dispOpt
	dcfg.UseMachBuffer = dispOpt
	dc := display.New(dcfg, mem)

	// Transitions to/from the boosted P-state cost proportionally more
	// energy (§6.2: Racing's "transitions are to/from higher P states").
	pcfg := cfg.Power
	if s.Race {
		scale := float64(cfg.Decoder.PowerHigh) / float64(cfg.Decoder.PowerLow)
		pcfg.S1TransitionEnergy = energy.Joules(float64(pcfg.S1TransitionEnergy) * scale)
		pcfg.S3TransitionEnergy = energy.Joules(float64(pcfg.S3TransitionEnergy) * scale)
	}
	ledger := power.NewLedger(pcfg)

	traffic, err := soc.NewGenerator(cfg.Traffic)
	if err != nil {
		return nil, err
	}

	// --- Delivery: per-frame availability --------------------------------
	// avail[i] is the virtual time frame i's encoded bytes are in the
	// streaming buffer; nil means everything is resident before playback
	// (the original perfect-network pipeline, bit-for-bit). Availability
	// comes from the seeded network model when enabled, merged with any
	// arrival metadata recorded in the trace itself.
	var (
		avail []sim.Time
		sched *delivery.Schedule
	)
	if cfg.Delivery.Enabled {
		sizes := make([]int, len(tr.Frames))
		for i := range tr.Frames {
			sizes[i] = tr.Frames[i].EncodedBytes
		}
		sched, err = delivery.Plan(cfg.Delivery, sizes, maxInt(tr.FPS, 1))
		if err != nil {
			return nil, err
		}
		avail = sched.Avail
	}
	if tr.HasArrivals() {
		if avail == nil {
			avail = make([]sim.Time, len(tr.Frames))
		}
		for i := range tr.Frames {
			if a := tr.Frames[i].Arrival; a > avail[i] {
				avail[i] = a
			}
		}
	}
	if avail != nil {
		startup = avail[0]
	}
	var trafficFrom sim.Time
	emitTraffic := func(upTo sim.Time) {
		if upTo > trafficFrom {
			traffic.Emit(mem, trafficFrom, upTo)
			trafficFrom = upTo
		}
	}

	// --- Geometry -------------------------------------------------------
	p := tr.Params
	mabSize := p.MabSize
	mabsPerRow := p.Width / mabSize
	mabsPerCol := p.Height / mabSize
	numMabs := p.MabsPerFrame()
	frameBytes := uint64(tr.DecodedBytesPerFrame())
	line := uint64(cfg.DRAM.LineBytes)
	alignUp := func(v uint64) uint64 { return (v + line - 1) &^ (line - 1) }
	// Slot: content area + pointer/digest array + base array + bitmap.
	slotBytes := alignUp(frameBytes) + alignUp(uint64(numMabs*4+numMabs/8+8)) + alignUp(uint64(numMabs*3)) + 4096
	pool := framebuf.NewPool(framebuf.RegionFrameBuffers, slotBytes)

	retentionFrames := 0
	if s.Mach != MachOff {
		retentionFrames = mcfg.NumMACHs
	}
	// Batching needs the frame-buffer pool sized so a whole batch can run
	// back-to-back without waiting for scan-out to free slots (§3.3: 16
	// buffers for 16-frame batches); MACH retention adds NumMACHs more.
	poolCap := cfg.BaseBuffers + s.Batch + 5 + retentionFrames

	dumpRing := retentionFrames + 4
	dumpSlot := alignUp(uint64((mcfg.NumMACHs+1)*mcfg.EntriesPerMACH*8)) + uint64(line)

	// Encoded frames sit consecutively in the streaming buffer region.
	encodedAddr := make([]uint64, len(tr.Frames))
	{
		cursor := framebuf.RegionEncoded
		for i := range tr.Frames {
			encodedAddr[i] = cursor
			cursor += alignUp(uint64(tr.Frames[i].EncodedBytes))
		}
	}

	res := &Result{
		Scheme:       s,
		Workload:     tr.Profile,
		Frames:       len(tr.Frames),
		Energy:       energy.NewBreakdown(),
		StartupDelay: startup,
	}
	if cfg.CollectFrameSamples {
		res.FrameTimes = stats.NewSample(len(tr.Frames))
		res.FrameEnergies = stats.NewSample(len(tr.Frames))
	}

	// --- Pipeline loop ---------------------------------------------------
	type pendingFree struct {
		at   sim.Time
		slot int
	}
	var (
		now          sim.Time
		decodedCount int
		releases     []sim.Time    // sorted slot-release times (pool pressure)
		frees        []pendingFree // slot frees not yet applied to the pool
		layoutByDisp = make(map[int]*framebuf.FrameLayout)
		maxDisplayed = -1

		// Slack-prediction state (§7 comparator): EWMA of low-frequency
		// decode times.
		predictedLow   sim.Time
		havePrediction bool
	)

	applyFrees := func(upTo sim.Time) {
		kept := frees[:0]
		for _, f := range frees {
			if f.at <= upTo {
				pool.Release(f.slot)
			} else {
				kept = append(kept, f)
			}
		}
		frees = kept
	}

	batchIdx := 0
	nextBatch := func() int {
		if len(s.BatchPattern) == 0 {
			return s.Batch
		}
		b := s.BatchPattern[batchIdx%len(s.BatchPattern)]
		batchIdx++
		return b
	}
	for batchStart := 0; batchStart < len(tr.Frames); {
		b := nextBatch()
		if avail != nil && b > 1 {
			// Graceful degradation: decode only what the streaming buffer
			// already holds, so a delivery stall costs one short rebuffer
			// instead of racing ahead into frames that have not arrived and
			// dropping a whole batch worth of deadlines. An empty buffer
			// degrades to single-frame decoding (wait, then decode one).
			ready := 0
			for i := batchStart; i < len(tr.Frames) && i-batchStart < b; i++ {
				if avail[i] <= now {
					ready++
				} else {
					break
				}
			}
			if ready < 1 {
				ready = 1
			}
			if ready < b {
				b = ready
				res.BatchShrinks++
			}
		}
		batchEnd := minInt(batchStart+b, len(tr.Frames))

		// Wake the decoder for this batch. Frames are released to the
		// decoder at the stream cadence in decode order (§2.1: the app
		// calls the decoder every frame period); a batch of L frames is
		// released L-1 periods earlier so the whole batch can run
		// back-to-back and slow frames borrow slack from fast ones (§3.1).
		wake := startup + sim.Time(int64(period)*int64(batchStart-(batchEnd-batchStart-1)))
		if wake < startup {
			wake = startup
		}
		if wake > now {
			ledger.Spend(wake - now) // batch-boundary slack: idle/S1/S3 per break-even
			now = wake
		}

		emitTraffic(now)
		for i := batchStart; i < batchEnd; i++ {
			f := &tr.Frames[i]

			// Rebuffer: the frame's bytes have not arrived yet. The decoder
			// waits, spending the stall as slack under the sleep policy; if
			// the wait pushes past the deadline, the repeat-frame path below
			// absorbs it as a drop rather than a failure.
			if avail != nil && avail[i] > now {
				wait := avail[i] - now
				res.Rebuffers++
				res.RebufferTime += wait
				ledger.Spend(wait)
				now = avail[i]
			}

			// Buffer backpressure: wait for a slot when the pipeline is
			// poolCap frames ahead. The wait is slack spent per policy.
			if decodedCount >= poolCap {
				tFree := releases[decodedCount-poolCap]
				if tFree > now {
					ledger.Spend(tFree - now)
					now = tFree
				}
			}
			applyFrees(now)
			slot, base := pool.Acquire()
			dumpBase := framebuf.RegionMachDumps + uint64(i%dumpRing)*dumpSlot

			// Per-frame DVFS for the slack-predictive comparator: boost
			// only when the EWMA-predicted low-frequency decode time
			// would overrun the deadline (with a 10% guard band).
			race := s.Race
			if s.SlackPredict {
				dt := displayTime(f.DisplayIndex)
				budget := dt - now
				race = havePrediction && sim.Time(float64(predictedLow)*1.1) > budget
			}

			layout, fres := ip.DecodeFrame(
				now, f.Work, race,
				encodedAddr[i], f.EncodedBytes,
				func(sink func(addr uint64, size int, mabOrdinal int)) *framebuf.FrameLayout {
					return wb.ProcessFrame(f.Decoded, f.DisplayIndex, base, dumpBase, sink)
				},
				mabsPerRow, mabsPerCol, mabSize,
			)
			ip.RegisterLayout(layout, f.Type)
			layoutByDisp[f.DisplayIndex] = layout
			now = fres.Done
			decodedCount++

			if s.SlackPredict {
				lowTime := fres.BusyTime
				if race {
					// Convert the boosted decode back to the low-frequency
					// equivalent for the history.
					lowTime = sim.Time(float64(fres.BusyTime) *
						float64(cfg.Decoder.FreqHigh) / float64(cfg.Decoder.FreqLow))
				}
				if !havePrediction {
					predictedLow = lowTime
					havePrediction = true
				} else {
					predictedLow = sim.Time(0.7*float64(predictedLow) + 0.3*float64(lowTime))
				}
			}

			if res.FrameTimes != nil {
				res.FrameTimes.Add(fres.BusyTime.Seconds())
				res.FrameEnergies.Add(float64(fres.ActiveEnergy))
			}

			// Display handover.
			dt := displayTime(f.DisplayIndex)
			if fres.Done <= dt {
				dc.Prefetch(fres.Done, layout)
				dc.ScanOut(dt, layout)
				if f.DisplayIndex > maxDisplayed {
					maxDisplayed = f.DisplayIndex
				}
			} else {
				// Missed the refresh: the DC re-renders the previous frame
				// (§2.1) and this frame's content is skipped.
				res.Drops++
				dc.RepeatFrame(dt, layoutByDisp[f.DisplayIndex-1])
			}

			// Slot lifetime: until scanned out plus the MACH retention
			// window (inter-match pointers may target this buffer).
			freeAt := dt + sim.Time(int64(period)*int64(retentionFrames+1))
			idx := sort.Search(len(releases), func(j int) bool { return releases[j] > freeAt })
			releases = append(releases, 0)
			copy(releases[idx+1:], releases[idx:])
			releases[idx] = freeAt
			frees = append(frees, pendingFree{at: freeAt, slot: slot})

			// Retire decoder-side reference layouts that can no longer be
			// referenced (older than the MACH window and the anchor pair).
			horizon := f.DisplayIndex - retentionFrames - 4
			for d := range layoutByDisp {
				if d < horizon {
					ip.RetireLayout(d)
					delete(layoutByDisp, d)
				}
			}
		}
		batchStart = batchEnd
	}

	// Tail: the decoder sleeps until the last frame has been scanned out.
	// When the stream's tail rebuffered past its deadlines (maxDisplayed
	// lags the frame count), the wall clock still ends after the final
	// decode, so late-arrival slack is never silently dropped.
	end := displayTime(maxDisplayed+1) + period
	emitTraffic(end)
	if end < now {
		end = now
	}
	if end > now {
		ledger.Spend(end - now)
	}
	mem.AccrueBackground(end)

	// --- Assemble the report ---------------------------------------------
	res.WallTime = end
	dec := ip.Stats()
	disp := dc.Stats()
	wstats := wb.Stats()
	menergy := mem.EnergySnapshot()

	res.BusyTime = dec.BusyTime
	res.IdleTime = ledger.IdleTime
	res.S1Time = ledger.S1Time
	res.S3Time = ledger.S3Time
	res.TransTime = ledger.TransTime()
	res.Transitions = ledger.Transitions
	res.PoolHighWater = pool.HighWater()
	res.Mem = mem.Stats()
	res.MemEnergy = menergy
	res.Dec = dec
	res.DecCache = ip.CacheStats()
	res.Disp = disp
	res.Mach = wstats
	res.Ledger = ledger

	res.Energy.Add(energy.CompVDBusy, float64(dec.ActiveEnergy))
	res.Energy.Add(energy.CompSleep, float64(ledger.S1Energy+ledger.S3Energy))
	res.Energy.Add(energy.CompShortSlack, float64(ledger.IdleEnergy))
	res.Energy.Add(energy.CompTransition, float64(ledger.TransEnergy))
	res.Energy.Add(energy.CompMemActPre, float64(menergy.ActPre))
	res.Energy.Add(energy.CompMemBurst, float64(menergy.Burst))
	res.Energy.Add(energy.CompMemBackground, float64(menergy.Background))
	res.Energy.Add(energy.CompDC, float64(disp.ActiveEnergy))

	if sched != nil {
		// Radio: idle tail/sleep runs to the end of playback, then the
		// modem's four-state energy joins the breakdown as its own
		// component (outside the nine-part Fig 11 split).
		sched.Radio.Finish(end)
		res.Net = sched.Stats
		res.Radio = sched.Radio.Stats()
		res.Energy.Add(energy.CompRadio, float64(res.Radio.TotalEnergy()))
	}

	machOn := s.Mach != MachOff
	var gabMabs int64
	if mcfg.Gradient && machOn {
		gabMabs = wstats.Mabs
	}
	machLookups := wstats.Mabs * int64(1+mcfg.NumMACHs)
	machBufOps := disp.DigestRecords + disp.PrefetchReads
	res.Energy.Add(energy.CompMachOverhead, float64(cfg.SRAM.Overhead(
		end.Seconds(), machOn, dispOpt,
		machLookups, machBufOps, disp.DCLookups, gabMabs,
	)))

	return res, nil
}

// RunStandard runs all six Fig 11 schemes over one trace.
func RunStandard(tr *trace.Trace, cfg Config) ([]*Result, error) {
	var out []*Result
	for _, s := range StandardSchemes() {
		r, err := Run(tr, s, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
