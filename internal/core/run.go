package core

import (
	"mach/internal/trace"
)

// Run replays one decode trace under one scheme and returns the full
// measurement. The trace is shared, read-only, across runs: every scheme
// sees identical content, exactly as the paper replays the same video
// traces through each configuration.
//
// Run is the one-shot façade over the step machine in runner.go; long-lived
// callers that need checkpointing drive a Runner directly.
func Run(tr *trace.Trace, s Scheme, cfg Config) (*Result, error) {
	r, err := NewRunner(tr, s, cfg)
	if err != nil {
		return nil, err
	}
	for !r.Done() {
		r.StepFrame()
	}
	return r.Finish()
}

// RunStandard runs all six Fig 11 schemes over one trace.
func RunStandard(tr *trace.Trace, cfg Config) ([]*Result, error) {
	var out []*Result
	for _, s := range StandardSchemes() {
		r, err := Run(tr, s, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
