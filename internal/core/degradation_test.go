package core

import (
	"math"
	"testing"

	"mach/internal/delivery"
	"mach/internal/sim"
)

// flakyConfig returns the test platform with the hostile delivery profile
// enabled at a fixed seed.
func flakyConfig(seed int64) Config {
	cfg := testConfig()
	cfg.Delivery = delivery.Flaky()
	cfg.Delivery.Seed = seed
	return cfg
}

// TestFirstFrameDropRepeatsNil forces every frame past its deadline — the
// very first drop re-renders with no previous layout, the path a
// delivery-late stream start exercises. The run must complete with all
// frames dropped and finite energy, not panic.
func TestFirstFrameDropRepeatsNil(t *testing.T) {
	tr := testTrace(t, "V1", 12)
	cfg := testConfig()
	cfg.Decoder.CyclesPerMabBase *= 1000 // nothing meets a deadline now
	res := mustRun(t, tr, Baseline(), cfg)
	if res.Drops != int64(len(tr.Frames)) {
		t.Fatalf("drops = %d, want all %d frames", res.Drops, len(tr.Frames))
	}
	if e := res.TotalEnergy(); !(e > 0) || math.IsInf(e, 0) || math.IsNaN(e) {
		t.Fatalf("degenerate energy %g", e)
	}
}

// TestZeroLengthBatchPattern checks the empty-pattern fallback: a scheme
// with BatchPattern []int{} must behave exactly like the plain Batch depth.
func TestZeroLengthBatchPattern(t *testing.T) {
	tr := testTrace(t, "V1", 24)
	cfg := testConfig()
	plain := RaceToSleep(4)
	patterned := plain
	patterned.BatchPattern = []int{}
	a := mustRun(t, tr, plain, cfg)
	b := mustRun(t, tr, patterned, cfg)
	if math.Float64bits(a.TotalEnergy()) != math.Float64bits(b.TotalEnergy()) ||
		a.Drops != b.Drops || a.WallTime != b.WallTime {
		t.Fatalf("empty BatchPattern diverges from Batch: %v/%v vs %v/%v",
			a.TotalEnergy(), a.Drops, b.TotalEnergy(), b.Drops)
	}
	// A zero entry inside a pattern must be rejected up front (it could
	// never make progress), not loop forever.
	bad := plain
	bad.BatchPattern = []int{2, 0}
	if _, err := Run(tr, bad, cfg); err == nil {
		t.Fatal("zero batch-pattern entry accepted")
	}
}

// TestRebufferAtEndOfStream delays the final frames' arrival far past the
// nominal end of playback: the wall clock must stretch to cover the late
// decode (tail slack accounted, not silently dropped) and the rebuffer time
// must reflect the wait.
func TestRebufferAtEndOfStream(t *testing.T) {
	tr := testTrace(t, "V1", 12)
	n := len(tr.Frames)
	late := sim.Time(n+30) * sim.Time(int64(sim.Second)/int64(tr.FPS))
	arr := make([]sim.Time, n)
	arr[n-1] = late // only the last frame straggles
	if err := tr.SetArrivals(arr); err != nil {
		t.Fatal(err)
	}
	defer func() {
		// testTrace caches traces across tests; restore resident content.
		if err := tr.SetArrivals(make([]sim.Time, n)); err != nil {
			t.Fatal(err)
		}
	}()

	res := mustRun(t, tr, RaceToSleep(4), testConfig())
	if res.Rebuffers == 0 || res.RebufferTime == 0 {
		t.Fatalf("late tail caused no rebuffering: %+v", res.Rebuffers)
	}
	if res.WallTime < late {
		t.Fatalf("wall time %v ends before the last frame arrived at %v", res.WallTime, late)
	}
	if res.Drops == 0 {
		t.Fatal("a frame arriving 30 periods late should miss its deadline")
	}
}

// TestDeliveryDeterminism runs the fault-injected pipeline twice with the
// same network seed and demands bit-identical results, then flips the seed
// and demands a different schedule (the rng must actually be in the loop).
func TestDeliveryDeterminism(t *testing.T) {
	tr := testTrace(t, "V3", 24)
	a := mustRun(t, tr, GAB(DefaultBatch), flakyConfig(7))
	b := mustRun(t, tr, GAB(DefaultBatch), flakyConfig(7))
	if math.Float64bits(a.TotalEnergy()) != math.Float64bits(b.TotalEnergy()) {
		t.Fatalf("same net seed, different energy: %x vs %x",
			math.Float64bits(a.TotalEnergy()), math.Float64bits(b.TotalEnergy()))
	}
	if a.Rebuffers != b.Rebuffers || a.RebufferTime != b.RebufferTime ||
		a.StartupDelay != b.StartupDelay || a.Net != b.Net || a.Radio != b.Radio ||
		a.Drops != b.Drops || a.BatchShrinks != b.BatchShrinks {
		t.Fatalf("same net seed, different delivery behaviour:\n%+v\n%+v", a.Net, b.Net)
	}
	if a.String() != b.String() {
		t.Fatal("same net seed, different report")
	}

	c := mustRun(t, tr, GAB(DefaultBatch), flakyConfig(8))
	if a.Net == c.Net && a.RebufferTime == c.RebufferTime &&
		math.Float64bits(a.TotalEnergy()) == math.Float64bits(c.TotalEnergy()) {
		t.Fatal("different net seeds produced identical runs (rng unused?)")
	}
}

// TestDeliveryDisabledBitIdentical guards the perfect-network invariant: a
// default (delivery-off) run must be unaffected by the presence of the
// delivery code paths — no rebuffers, no startup delay, no radio energy.
func TestDeliveryDisabledBitIdentical(t *testing.T) {
	tr := testTrace(t, "V1", 24)
	res := mustRun(t, tr, GAB(DefaultBatch), testConfig())
	if res.Rebuffers != 0 || res.RebufferTime != 0 || res.StartupDelay != 0 ||
		res.BatchShrinks != 0 || res.Net.Segments != 0 || res.Radio.TotalEnergy() != 0 {
		t.Fatalf("delivery-off run shows delivery side effects: %+v", res.Net)
	}
}

// TestDeliveryGracefulDegradation is the headline robustness scenario: a
// hostile link with injected stalls and certain loss on some segments. The
// run must complete, rebuffer, retry, and keep playing (drops/repeats), and
// the radio ledger must carry the burst energy.
func TestDeliveryGracefulDegradation(t *testing.T) {
	tr := testTrace(t, "V1", 24)
	cfg := flakyConfig(2)
	cfg.Delivery.LossRate = 0.5  // force visible retry traffic
	cfg.Delivery.StallRate = 0.9 // and near-certain stall injection
	res := mustRun(t, tr, RaceToSleep(4), cfg)

	if res.StartupDelay == 0 {
		t.Fatal("hostile link with zero startup delay")
	}
	if res.Net.Retries == 0 {
		t.Fatal("50% loss produced no retries (seed-sensitive: pick another)")
	}
	if res.Net.Stalls == 0 {
		t.Fatal("90% stall rate produced no stalls (seed-sensitive: pick another)")
	}
	if res.Radio.TotalEnergy() <= 0 {
		t.Fatal("no radio energy accounted")
	}
	if got := res.Energy.Get("radio"); math.Abs(got-float64(res.Radio.TotalEnergy())) > 1e-12 {
		t.Fatalf("breakdown radio %g != ledger %g", got, res.Radio.TotalEnergy())
	}
}
