package core

import (
	"fmt"

	"mach/internal/abr"
	"mach/internal/decoder"
	"mach/internal/delivery"
	"mach/internal/display"
	"mach/internal/dram"
	"mach/internal/energy"
	"mach/internal/mach"
	"mach/internal/power"
	"mach/internal/soc"
)

// Config carries every substrate's configuration for a pipeline run. The
// zero value is unusable; start from DefaultConfig.
type Config struct {
	Decoder decoder.Config
	Display display.Config
	DRAM    dram.Config
	Power   power.Config
	Mach    mach.Config // template; the scheme overrides mode/layout fields
	SRAM    energy.SRAMConfig
	// Traffic is the background SoC memory load (CPU/GPU/radios). The
	// zero value disables it; experiments that study contention enable it.
	Traffic soc.TrafficConfig

	// Delivery is the network-delivery fault model (§2.1's download path).
	// Disabled (the zero value / default), every encoded frame is resident
	// before playback and the run is bit-identical to the original
	// perfect-network pipeline; enabled, frames become available per the
	// seeded delivery schedule and the pipeline degrades gracefully
	// (rebuffers, repeats, batch shrinking) when they are late.
	Delivery delivery.Config

	// ABR is the adaptive-bitrate controller riding on the delivery model:
	// a rung of the bitrate ladder is chosen per segment at download time
	// and applied to the pipeline per batch (cheaper decode, coarser MACH
	// content). Requires Delivery.Enabled; disabled (the zero value), every
	// run is bit-identical to the fixed-quality pipeline.
	ABR abr.Config

	// DisplayLatencyFrames is the fixed latency between a frame's release
	// to the decoder and its scan-out tick: 1 reproduces the paper's
	// baseline (a frame released every 16 ms must decode within one
	// period or the display repeats the previous frame). Streams with B
	// frames get one extra period for decode-order reordering.
	DisplayLatencyFrames int

	// BaseBuffers is the frame-buffer count the baseline pipeline assumes
	// (3 = triple buffering, §2.1); batching and MACH retention grow the
	// pool beyond it, which Fig 12a measures.
	BaseBuffers int

	// CollectFrameSamples records per-frame decode time and energy samples
	// for CDF plots; disable for large sweeps to save memory.
	CollectFrameSamples bool

	// Parallel is the worker count of the deterministic parallel engine:
	// values above 1 shard the pure per-mab prehash work (block copy, gab
	// transform, digest hashing) across that many workers; 0 and 1 both
	// select the fully sequential path. The knob trades wall clock only —
	// results are bit-identical for every value (the order-preserving
	// reduction documented in DESIGN.md, enforced by
	// TestParallelMatchesSequential), so it is safe to flip on any run.
	Parallel int
}

// DefaultConfig returns the Table 2 platform with the calibrated cost
// constants (see EXPERIMENTS.md for the calibration note).
func DefaultConfig() Config {
	return Config{
		Decoder:              decoder.DefaultConfig(),
		Display:              display.DefaultConfig(),
		DRAM:                 dram.DefaultConfig(),
		Power:                power.DefaultConfig(),
		Mach:                 mach.DefaultConfig(),
		SRAM:                 energy.DefaultSRAM(),
		Delivery:             delivery.DefaultConfig(), // LTE-class link, disabled
		DisplayLatencyFrames: 1,
		BaseBuffers:          3,
		CollectFrameSamples:  true,
	}
}

// Validate reports malformed configurations.
func (c Config) Validate() error {
	if err := c.Decoder.Validate(); err != nil {
		return err
	}
	if err := c.Display.Validate(); err != nil {
		return err
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	if err := c.Power.Validate(); err != nil {
		return err
	}
	if err := c.Mach.Validate(); err != nil {
		return err
	}
	if c.DisplayLatencyFrames < 1 || c.DisplayLatencyFrames > 16 {
		return fmt.Errorf("core: display latency %d outside [1,16]", c.DisplayLatencyFrames)
	}
	if c.BaseBuffers < 2 {
		return fmt.Errorf("core: base buffers %d < 2", c.BaseBuffers)
	}
	if err := c.Traffic.Validate(); err != nil {
		return err
	}
	if err := c.Delivery.Validate(); err != nil {
		return err
	}
	if c.ABR.Enabled && !c.Delivery.Enabled {
		return fmt.Errorf("core: ABR needs the delivery model enabled (rungs are chosen at download time)")
	}
	if err := c.ABR.Normalize().Validate(); err != nil {
		return err
	}
	if c.Parallel < 0 || c.Parallel > 256 {
		return fmt.Errorf("core: parallel workers %d outside [0,256]", c.Parallel)
	}
	return nil
}
