package core

import (
	"fmt"
	"time"

	"mach/internal/abr"
	"mach/internal/codec"
	"mach/internal/decoder"
	"mach/internal/delivery"
	"mach/internal/display"
	"mach/internal/dram"
	"mach/internal/energy"
	"mach/internal/framebuf"
	"mach/internal/mach"
	"mach/internal/par"
	"mach/internal/power"
	"mach/internal/sim"
	"mach/internal/soc"
	"mach/internal/stats"
	"mach/internal/trace"
)

// pendingFree is a slot release scheduled for a future virtual time.
type pendingFree struct {
	at   sim.Time
	slot int
}

// Runner is one pipeline run exposed as an explicit per-frame step machine.
// Run drives it to completion in one call; the checkpoint/resume path (see
// state.go) cuts the loop at any frame boundary instead: every piece of
// cross-frame state lives in Runner fields, so a snapshot between StepFrame
// calls captures the run exactly and a restored Runner continues
// bit-identically.
type Runner struct {
	tr  *trace.Trace
	s   Scheme
	cfg Config

	// Derived, immutable over the run.
	period         sim.Time
	displayLatency int
	startup        sim.Time
	mcfg           mach.Config
	dispOpt        bool
	avail          []sim.Time
	sched          *delivery.Schedule
	mabSize        int
	mabsPerRow     int
	mabsPerCol     int
	poolCap        int
	retention      int
	dumpRing       int
	dumpSlot       uint64
	encodedAddr    []uint64
	// ABR plumbing, nil/empty unless cfg.ABR.Enabled: the normalized
	// ladder and the planner's per-frame rung schedule.
	ladder abr.Ladder
	rungs  []int

	// Platform models.
	mem     *dram.Memory
	ip      *decoder.IP
	wb      *mach.Writeback
	dc      *display.Controller
	ledger  *power.Ledger
	traffic *soc.Generator
	pool    *framebuf.Pool

	// Mutable loop state (everything below round-trips through a snapshot).
	res          *Result
	now          sim.Time
	trafficFrom  sim.Time
	frame        int // next frame index to decode; equals frames decoded so far
	batchIdx     int
	batchEnd     int
	releases     []sim.Time
	frees        []pendingFree
	layoutByDisp map[int]*framebuf.FrameLayout
	maxDisplayed int

	// Slack-prediction state (§7 comparator): EWMA of low-frequency decode
	// times.
	predictedLow   sim.Time
	havePrediction bool

	// ABR loop state: the rung currently applied to the pipeline (decode
	// cost + MACH quantization), switches taken at batch boundaries, and
	// frames decoded per rung. All zero with ABR disabled.
	rung         int
	rungSwitches int64
	rungFrames   []int64

	//lint:derived a checkpoint taken at the finish line is pointless; Restore rebuilds a runner that is mid-run by construction
	finished bool

	// Persistent writeback hook handed to DecodeFrame every frame; the
	// per-frame parameters travel through the wb* fields so StepFrame never
	// captures a fresh closure environment.
	wbHook func(sink func(addr uint64, size int, mabOrdinal int)) *framebuf.FrameLayout
	//lint:derived per-frame hook arguments, rewritten by every StepFrame before the decode call reads them
	wbFrame *codec.Frame
	//lint:derived per-frame hook arguments, rewritten by every StepFrame before the decode call reads them
	wbDisplayIndex int
	//lint:derived per-frame hook arguments, rewritten by every StepFrame before the decode call reads them
	wbBase, wbDumpBase uint64
}

// NewRunner validates the inputs and builds a run positioned before frame 0.
func NewRunner(tr *trace.Trace, s Scheme, cfg Config) (*Runner, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(tr.Frames) == 0 {
		return nil, fmt.Errorf("core: empty trace")
	}

	r := &Runner{tr: tr, s: s, cfg: cfg, maxDisplayed: -1,
		layoutByDisp: make(map[int]*framebuf.FrameLayout)}

	r.period = sim.Time(int64(sim.Second) / int64(max(tr.FPS, 1)))
	// Streams with B frames need one extra period of display latency for
	// decode-order reordering (anchors decode before the B between them).
	r.displayLatency = cfg.DisplayLatencyFrames
	for i := range tr.Frames {
		if tr.Frames[i].Type == codec.FrameB {
			r.displayLatency++
			break
		}
	}

	// --- Instantiate the platform -------------------------------------
	r.mem = dram.New(cfg.DRAM)
	r.ip = decoder.New(cfg.Decoder, r.mem)

	mcfg := cfg.Mach
	mcfg.MabSize = tr.Params.MabSize
	mcfg.LineBytes = int(cfg.DRAM.LineBytes)
	switch s.Mach {
	case MachOff:
		mcfg.Layout = framebuf.LayoutRaw
	case MachMAB:
		mcfg.Gradient = false
	case MachGAB:
		mcfg.Gradient = true
	}
	if s.Mach != MachOff {
		if s.DisplayOpt {
			mcfg.Layout = framebuf.LayoutPtrDigest
		} else {
			mcfg.Layout = framebuf.LayoutPtr
		}
	}
	r.mcfg = mcfg
	wb, err := mach.NewWriteback(mcfg)
	if err != nil {
		return nil, err
	}
	if cfg.Parallel > 1 {
		// The pool shards only the pure per-mab prehash; classification
		// and DRAM op generation stay serial in mab order, so the run is
		// bit-identical to the sequential path (see DESIGN.md).
		wb.SetPool(par.New(cfg.Parallel))
	}
	r.wb = wb

	dcfg := cfg.Display
	dcfg.FPS = tr.FPS
	dcfg.LineBytes = int(cfg.DRAM.LineBytes)
	r.dispOpt = s.Mach != MachOff && s.DisplayOpt
	dcfg.UseDisplayCache = r.dispOpt
	dcfg.UseMachBuffer = r.dispOpt
	r.dc = display.New(dcfg, r.mem)

	// Transitions to/from the boosted P-state cost proportionally more
	// energy (§6.2: Racing's "transitions are to/from higher P states").
	pcfg := cfg.Power
	if s.Race {
		scale := float64(cfg.Decoder.PowerHigh) / float64(cfg.Decoder.PowerLow)
		pcfg.S1TransitionEnergy = energy.Joules(float64(pcfg.S1TransitionEnergy) * scale)
		pcfg.S3TransitionEnergy = energy.Joules(float64(pcfg.S3TransitionEnergy) * scale)
	}
	r.ledger = power.NewLedger(pcfg)

	r.traffic, err = soc.NewGenerator(cfg.Traffic)
	if err != nil {
		return nil, err
	}

	// --- Delivery: per-frame availability --------------------------------
	// avail[i] is the virtual time frame i's encoded bytes are in the
	// streaming buffer; nil means everything is resident before playback
	// (the original perfect-network pipeline, bit-for-bit). Availability
	// comes from the seeded network model when enabled, merged with any
	// arrival metadata recorded in the trace itself.
	if cfg.Delivery.Enabled {
		sizes := make([]int, len(tr.Frames))
		for i := range tr.Frames {
			sizes[i] = tr.Frames[i].EncodedBytes
		}
		if acfg := cfg.ABR.Normalize(); acfg.Enabled {
			r.sched, err = delivery.PlanABR(cfg.Delivery, acfg, sizes, max(tr.FPS, 1))
			if err != nil {
				return nil, err
			}
			r.ladder = acfg.Ladder
			r.rungs = r.sched.Rungs
			r.rungFrames = make([]int64, len(r.ladder))
			// The pipeline opens at the first segment's rung.
			r.rung = r.rungs[0]
			r.wb.SetQuantShift(r.ladder[r.rung].QuantShift)
		} else {
			r.sched, err = delivery.Plan(cfg.Delivery, sizes, max(tr.FPS, 1))
			if err != nil {
				return nil, err
			}
		}
		r.avail = r.sched.Avail
	}
	if tr.HasArrivals() {
		if r.avail == nil {
			r.avail = make([]sim.Time, len(tr.Frames))
		}
		for i := range tr.Frames {
			if a := tr.Frames[i].Arrival; a > r.avail[i] {
				r.avail[i] = a
			}
		}
	}
	// startup shifts the whole playback timeline: with delivery enabled the
	// player holds the first scan-out until the first segment is buffered,
	// so initial download latency is accounted as startup delay rather than
	// as a string of missed deadlines. Zero for the resident-content
	// pipeline.
	if r.avail != nil {
		r.startup = r.avail[0]
	}

	// --- Geometry -------------------------------------------------------
	p := tr.Params
	r.mabSize = p.MabSize
	r.mabsPerRow = p.Width / r.mabSize
	r.mabsPerCol = p.Height / r.mabSize
	numMabs := p.MabsPerFrame()
	frameBytes := uint64(tr.DecodedBytesPerFrame())
	line := uint64(cfg.DRAM.LineBytes)
	alignUp := func(v uint64) uint64 { return (v + line - 1) &^ (line - 1) }
	// Slot: content area + pointer/digest array + base array + bitmap.
	slotBytes := alignUp(frameBytes) + alignUp(uint64(numMabs*4+numMabs/8+8)) + alignUp(uint64(numMabs*3)) + 4096
	r.pool = framebuf.NewPool(framebuf.RegionFrameBuffers, slotBytes)

	if s.Mach != MachOff {
		r.retention = mcfg.NumMACHs
	}
	// Batching needs the frame-buffer pool sized so a whole batch can run
	// back-to-back without waiting for scan-out to free slots (§3.3: 16
	// buffers for 16-frame batches); MACH retention adds NumMACHs more.
	r.poolCap = cfg.BaseBuffers + s.Batch + 5 + r.retention

	r.dumpRing = r.retention + 4
	r.dumpSlot = alignUp(uint64((mcfg.NumMACHs+1)*mcfg.EntriesPerMACH*8)) + line

	// Encoded frames sit consecutively in the streaming buffer region.
	r.encodedAddr = make([]uint64, len(tr.Frames))
	cursor := framebuf.RegionEncoded
	for i := range tr.Frames {
		r.encodedAddr[i] = cursor
		cursor += alignUp(uint64(tr.Frames[i].EncodedBytes))
	}

	// The release ledger gains one entry per frame and the pending-free list
	// stays at most a pool's worth deep; sizing both up front keeps the
	// per-frame step free of slice growth.
	r.releases = make([]sim.Time, 0, len(tr.Frames))
	r.frees = make([]pendingFree, 0, r.poolCap+8)
	r.wbHook = func(sink func(addr uint64, size int, mabOrdinal int)) *framebuf.FrameLayout {
		return r.wb.ProcessFrame(r.wbFrame, r.wbDisplayIndex, r.wbBase, r.wbDumpBase, sink)
	}

	r.res = &Result{
		Scheme:       s,
		Workload:     tr.Profile,
		Frames:       len(tr.Frames),
		Energy:       energy.NewBreakdown(),
		StartupDelay: r.startup,
	}
	if cfg.CollectFrameSamples {
		r.res.FrameTimes = stats.NewSample(len(tr.Frames))
		r.res.FrameEnergies = stats.NewSample(len(tr.Frames))
	}
	return r, nil
}

// Frame returns the index of the next frame to decode (also the number of
// frames decoded so far).
func (r *Runner) Frame() int { return r.frame }

// PrehashWall exposes the writeback engine's prehash host-time accumulator,
// the Amdahl share the benchmark harness uses to bound the parallel
// engine's speedup on machines without idle cores.
func (r *Runner) PrehashWall() time.Duration { return r.wb.PrehashWall() }

// Done reports whether every frame has been decoded.
func (r *Runner) Done() bool { return r.frame >= len(r.tr.Frames) }

func (r *Runner) displayTime(displayIndex int) sim.Time {
	return r.startup + sim.Time(int64(r.period)*int64(displayIndex+r.displayLatency))
}

func (r *Runner) emitTraffic(upTo sim.Time) {
	if upTo > r.trafficFrom {
		r.traffic.Emit(r.mem, r.trafficFrom, upTo)
		r.trafficFrom = upTo
	}
}

func (r *Runner) applyFrees(upTo sim.Time) {
	kept := r.frees[:0]
	for _, f := range r.frees {
		if f.at <= upTo {
			r.pool.Release(f.slot)
		} else {
			kept = append(kept, f)
		}
	}
	r.frees = kept
}

// startBatch opens the batch beginning at the current frame: picks the batch
// length, shrinks it to what the streaming buffer holds, and wakes the
// decoder at the batch's release time.
func (r *Runner) startBatch() {
	batchStart := r.frame

	// ABR rung switches land at batch boundaries: the decoder reconfigures
	// between batches, never mid-batch, mirroring how a real pipeline
	// drains before a quality change. The rung is whatever the delivery
	// planner fetched the batch's first frame at.
	if r.rungs != nil {
		if nr := r.rungs[batchStart]; nr != r.rung {
			r.rung = nr
			r.rungSwitches++
			r.wb.SetQuantShift(r.ladder[nr].QuantShift)
		}
	}

	b := r.s.Batch
	if len(r.s.BatchPattern) > 0 {
		b = r.s.BatchPattern[r.batchIdx%len(r.s.BatchPattern)]
		r.batchIdx++
	}
	if r.avail != nil && b > 1 {
		// Graceful degradation: decode only what the streaming buffer
		// already holds, so a delivery stall costs one short rebuffer
		// instead of racing ahead into frames that have not arrived and
		// dropping a whole batch worth of deadlines. An empty buffer
		// degrades to single-frame decoding (wait, then decode one).
		ready := 0
		for i := batchStart; i < len(r.tr.Frames) && i-batchStart < b; i++ {
			if r.avail[i] <= r.now {
				ready++
			} else {
				break
			}
		}
		if ready < 1 {
			ready = 1
		}
		if ready < b {
			b = ready
			r.res.BatchShrinks++
		}
	}
	r.batchEnd = min(batchStart+b, len(r.tr.Frames))

	// Wake the decoder for this batch. Frames are released to the decoder
	// at the stream cadence in decode order (§2.1: the app calls the
	// decoder every frame period); a batch of L frames is released L-1
	// periods earlier so the whole batch can run back-to-back and slow
	// frames borrow slack from fast ones (§3.1).
	wake := r.startup + sim.Time(int64(r.period)*int64(batchStart-(r.batchEnd-batchStart-1)))
	if wake < r.startup {
		wake = r.startup
	}
	if wake > r.now {
		r.ledger.Spend(wake - r.now) // batch-boundary slack: idle/S1/S3 per break-even
		r.now = wake
	}
	r.emitTraffic(r.now)
}

// StepFrame decodes and displays exactly one frame, opening a new batch
// first when the previous one is exhausted. Calling it after Done is a bug.
//
//lint:hotpath the per-frame engine step; everything it reaches runs once per simulated frame and is gated allocation-free
func (r *Runner) StepFrame() {
	if r.Done() {
		panic("core: StepFrame past end of trace")
	}
	if r.frame == r.batchEnd {
		r.startBatch()
	}

	i := r.frame
	f := &r.tr.Frames[i]

	// Rebuffer: the frame's bytes have not arrived yet. The decoder waits,
	// spending the stall as slack under the sleep policy; if the wait
	// pushes past the deadline, the repeat-frame path below absorbs it as
	// a drop rather than a failure.
	if r.avail != nil && r.avail[i] > r.now {
		wait := r.avail[i] - r.now
		r.res.Rebuffers++
		r.res.RebufferTime += wait
		r.ledger.Spend(wait)
		r.now = r.avail[i]
	}

	// Buffer backpressure: wait for a slot when the pipeline is poolCap
	// frames ahead. The wait is slack spent per policy.
	if i >= r.poolCap {
		tFree := r.releases[i-r.poolCap]
		if tFree > r.now {
			r.ledger.Spend(tFree - r.now)
			r.now = tFree
		}
	}
	r.applyFrees(r.now)
	slot, base := r.pool.Acquire()
	dumpBase := framebuf.RegionMachDumps + uint64(i%r.dumpRing)*r.dumpSlot

	// Per-frame DVFS for the slack-predictive comparator: boost only when
	// the EWMA-predicted low-frequency decode time would overrun the
	// deadline (with a 10% guard band).
	race := r.s.Race
	if r.s.SlackPredict {
		dt := r.displayTime(f.DisplayIndex)
		budget := dt - r.now
		race = r.havePrediction && sim.Time(float64(r.predictedLow)*1.1) > budget
	}

	// The applied rung prices this frame's decode: lower rungs carry less
	// entropy/transform work. MACH-side quantization was set when the rung
	// was applied at the batch boundary.
	workScale := 1.0
	if r.rungs != nil {
		workScale = r.ladder[r.rung].CostScale
		r.rungFrames[r.rung]++
	}

	r.wbFrame, r.wbDisplayIndex, r.wbBase, r.wbDumpBase = f.Decoded, f.DisplayIndex, base, dumpBase
	layout, fres := r.ip.DecodeFrame(
		r.now, f.Work, race, workScale,
		r.encodedAddr[i], f.EncodedBytes,
		r.wbHook,
		r.mabsPerRow, r.mabsPerCol, r.mabSize,
	)
	r.ip.RegisterLayout(layout, f.Type)
	r.layoutByDisp[f.DisplayIndex] = layout
	r.now = fres.Done
	r.frame++

	if r.s.SlackPredict {
		lowTime := fres.BusyTime
		if race {
			// Convert the boosted decode back to the low-frequency
			// equivalent for the history.
			lowTime = sim.Time(float64(fres.BusyTime) *
				float64(r.cfg.Decoder.FreqHigh) / float64(r.cfg.Decoder.FreqLow))
		}
		if !r.havePrediction {
			r.predictedLow = lowTime
			r.havePrediction = true
		} else {
			r.predictedLow = sim.Time(0.7*float64(r.predictedLow) + 0.3*float64(lowTime))
		}
	}

	if r.res.FrameTimes != nil {
		r.res.FrameTimes.Add(fres.BusyTime.Seconds())
		r.res.FrameEnergies.Add(float64(fres.ActiveEnergy))
	}

	// Display handover.
	dt := r.displayTime(f.DisplayIndex)
	if fres.Done <= dt {
		r.dc.Prefetch(fres.Done, layout)
		r.dc.ScanOut(dt, layout)
		if f.DisplayIndex > r.maxDisplayed {
			r.maxDisplayed = f.DisplayIndex
		}
	} else {
		// Missed the refresh: the DC re-renders the previous frame (§2.1)
		// and this frame's content is skipped.
		r.res.Drops++
		r.dc.RepeatFrame(dt, r.layoutByDisp[f.DisplayIndex-1])
	}

	// Slot lifetime: until scanned out plus the MACH retention window
	// (inter-match pointers may target this buffer).
	freeAt := dt + sim.Time(int64(r.period)*int64(r.retention+1))
	// Binary search for the insertion point (sort.Search semantics, inlined
	// so the predicate costs no closure).
	lo, hi := 0, len(r.releases)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.releases[mid] > freeAt {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	r.releases = append(r.releases, 0)
	copy(r.releases[lo+1:], r.releases[lo:])
	r.releases[lo] = freeAt
	r.frees = append(r.frees, pendingFree{at: freeAt, slot: slot})

	// Retire decoder-side reference layouts that can no longer be
	// referenced (older than the MACH window and the anchor pair); retired
	// layouts go back to the writeback engine for reuse.
	horizon := f.DisplayIndex - r.retention - 4
	for d, l := range r.layoutByDisp {
		if d < horizon {
			r.ip.RetireLayout(d)
			delete(r.layoutByDisp, d)
			r.wb.Recycle(l)
		}
	}
}

// Finish runs the post-playback tail and assembles the Result. It must be
// called exactly once, after Done.
func (r *Runner) Finish() (*Result, error) {
	if !r.Done() {
		return nil, fmt.Errorf("core: Finish called with %d of %d frames decoded",
			r.frame, len(r.tr.Frames))
	}
	if r.finished {
		return nil, fmt.Errorf("core: Finish called twice")
	}
	r.finished = true

	// Tail: the decoder sleeps until the last frame has been scanned out.
	// When the stream's tail rebuffered past its deadlines (maxDisplayed
	// lags the frame count), the wall clock still ends after the final
	// decode, so late-arrival slack is never silently dropped.
	end := r.displayTime(r.maxDisplayed+1) + r.period
	r.emitTraffic(end)
	if end < r.now {
		end = r.now
	}
	if end > r.now {
		r.ledger.Spend(end - r.now)
	}
	r.mem.AccrueBackground(end)

	// --- Assemble the report ---------------------------------------------
	res := r.res
	res.WallTime = end
	dec := r.ip.Stats()
	disp := r.dc.Stats()
	wstats := r.wb.Stats()
	menergy := r.mem.EnergySnapshot()

	res.BusyTime = dec.BusyTime
	res.IdleTime = r.ledger.IdleTime
	res.S1Time = r.ledger.S1Time
	res.S3Time = r.ledger.S3Time
	res.TransTime = r.ledger.TransTime()
	res.Transitions = r.ledger.Transitions
	res.PoolHighWater = r.pool.HighWater()
	res.Mem = r.mem.Stats()
	res.MemEnergy = menergy
	res.Dec = dec
	res.DecCache = r.ip.CacheStats()
	res.Disp = disp
	res.Mach = wstats
	res.Ledger = r.ledger

	res.Energy.Add(energy.CompVDBusy, float64(dec.ActiveEnergy))
	res.Energy.Add(energy.CompSleep, float64(r.ledger.S1Energy+r.ledger.S3Energy))
	res.Energy.Add(energy.CompShortSlack, float64(r.ledger.IdleEnergy))
	res.Energy.Add(energy.CompTransition, float64(r.ledger.TransEnergy))
	res.Energy.Add(energy.CompMemActPre, float64(menergy.ActPre))
	res.Energy.Add(energy.CompMemBurst, float64(menergy.Burst))
	res.Energy.Add(energy.CompMemBackground, float64(menergy.Background))
	res.Energy.Add(energy.CompDC, float64(disp.ActiveEnergy))

	if r.sched != nil {
		// Radio: idle tail/sleep runs to the end of playback, then the
		// modem's four-state energy joins the breakdown as its own
		// component (outside the nine-part Fig 11 split).
		r.sched.Radio.Finish(end)
		res.Net = r.sched.Stats
		res.Radio = r.sched.Radio.Stats()
		res.Energy.Add(energy.CompRadio, float64(res.Radio.TotalEnergy()))

		// Optional ABR/contention stats stay nil pointers when the models
		// are off, so default results canonicalize byte-identically.
		if a := r.sched.ABR; a != nil {
			res.ABR = &ABRStats{
				FinalRung:       r.rung,
				Switches:        r.rungSwitches,
				RungFrames:      append([]int64(nil), r.rungFrames...),
				PlannedSwitches: a.Switches,
				SegmentsAtRung:  append([]int64(nil), a.SegmentsAtRung...),
				MinRung:         a.MinRung,
				MaxRung:         a.MaxRung,
			}
		}
		if c := r.sched.Contention; c != nil {
			cs := *c
			res.Contention = &cs
		}
	}

	machOn := r.s.Mach != MachOff
	var gabMabs int64
	if r.mcfg.Gradient && machOn {
		gabMabs = wstats.Mabs
	}
	machLookups := wstats.Mabs * int64(1+r.mcfg.NumMACHs)
	machBufOps := disp.DigestRecords + disp.PrefetchReads
	res.Energy.Add(energy.CompMachOverhead, float64(r.cfg.SRAM.Overhead(
		end.Seconds(), machOn, r.dispOpt,
		machLookups, machBufOps, disp.DCLookups, gabMabs,
	)))

	return res, nil
}
