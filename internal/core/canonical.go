package core

import (
	"encoding/json"
	"fmt"

	"mach/internal/cache"
	"mach/internal/decoder"
	"mach/internal/delivery"
	"mach/internal/display"
	"mach/internal/dram"
	"mach/internal/mach"
	"mach/internal/power"
)

// CanonicalResult is a flat, JSON-stable projection of a Result: every
// accounting quantity that must stay bit-stable across refactors, and
// nothing tied to process state (pointers, samples, ledgers). The golden
// corpus under testdata/golden/ stores these, so any drift in energy
// accounting, timing, memory traffic or MACH behaviour fails tier-1 with a
// field-level diff. Times are integer nanoseconds; energies are joules
// (float64, exact round-trip through encoding/json).
type CanonicalResult struct {
	Scheme   string `json:"scheme"`
	Workload string `json:"workload"`
	Frames   int    `json:"frames"`
	Drops    int64  `json:"drops"`

	WallTimeNs  int64 `json:"wall_time_ns"`
	BusyTimeNs  int64 `json:"busy_time_ns"`
	IdleTimeNs  int64 `json:"idle_time_ns"`
	S1TimeNs    int64 `json:"s1_time_ns"`
	S3TimeNs    int64 `json:"s3_time_ns"`
	TransTimeNs int64 `json:"trans_time_ns"`
	Transitions int64 `json:"transitions"`

	PoolHighWater int `json:"pool_high_water"`

	Rebuffers      int64 `json:"rebuffers"`
	RebufferTimeNs int64 `json:"rebuffer_time_ns"`
	StartupDelayNs int64 `json:"startup_delay_ns"`
	BatchShrinks   int64 `json:"batch_shrinks"`

	// EnergyJ maps component name to joules; TotalEnergyJ is their sum as
	// the Breakdown reports it.
	EnergyJ      map[string]float64 `json:"energy_j"`
	TotalEnergyJ float64            `json:"total_energy_j"`

	Mem       dram.Stats       `json:"mem"`
	MemEnergy dram.Energy      `json:"mem_energy"`
	Dec       decoder.Stats    `json:"dec"`
	DecCache  cache.Stats      `json:"dec_cache"`
	Disp      display.Stats    `json:"disp"`
	Mach      mach.Stats       `json:"mach"`
	Net       delivery.Stats   `json:"net"`
	Radio     power.RadioStats `json:"radio"`

	// Optional models: omitted entirely when disabled, so the golden
	// corpus of default runs is byte-identical with or without the ABR
	// and bottleneck code in the tree.
	ABR        *ABRStats                 `json:"abr,omitempty"`
	Contention *delivery.ContentionStats `json:"contention,omitempty"`
}

// Canonical returns the stable projection of r.
func (r *Result) Canonical() *CanonicalResult {
	c := &CanonicalResult{
		Scheme:   r.Scheme.Name,
		Workload: r.Workload,
		Frames:   r.Frames,
		Drops:    r.Drops,

		WallTimeNs:  int64(r.WallTime),
		BusyTimeNs:  int64(r.BusyTime),
		IdleTimeNs:  int64(r.IdleTime),
		S1TimeNs:    int64(r.S1Time),
		S3TimeNs:    int64(r.S3Time),
		TransTimeNs: int64(r.TransTime),
		Transitions: r.Transitions,

		PoolHighWater: r.PoolHighWater,

		Rebuffers:      r.Rebuffers,
		RebufferTimeNs: int64(r.RebufferTime),
		StartupDelayNs: int64(r.StartupDelay),
		BatchShrinks:   r.BatchShrinks,

		EnergyJ:      make(map[string]float64, len(r.Energy.Keys())),
		TotalEnergyJ: r.Energy.Total(),

		Mem:       r.Mem,
		MemEnergy: r.MemEnergy,
		Dec:       r.Dec,
		DecCache:  r.DecCache,
		Disp:      r.Disp,
		Mach:      r.Mach,
		Net:       r.Net,
		Radio:     r.Radio,
	}
	for _, k := range r.Energy.Keys() {
		c.EnergyJ[k] = r.Energy.Get(k)
	}
	if r.ABR != nil {
		a := *r.ABR
		c.ABR = &a
	}
	if r.Contention != nil {
		ct := *r.Contention
		c.Contention = &ct
	}
	return c
}

// CanonicalJSON returns the indented JSON encoding of the canonical
// projection, byte-stable for identical results (encoding/json emits map
// keys sorted and float64s in shortest round-trip form).
func (r *Result) CanonicalJSON() ([]byte, error) {
	b, err := json.MarshalIndent(r.Canonical(), "", "  ")
	if err != nil {
		return nil, fmt.Errorf("core: canonical encode: %w", err)
	}
	return append(b, '\n'), nil
}
