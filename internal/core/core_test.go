package core

import (
	"testing"

	"mach/internal/energy"
	"mach/internal/framebuf"
	"mach/internal/power"
	"mach/internal/sim"
	"mach/internal/trace"
	"mach/internal/video"
)

// testTrace builds a small but contentful trace once per test binary.
var traceCache = map[string]*trace.Trace{}

func testTrace(t testing.TB, key string, frames int) *trace.Trace {
	t.Helper()
	id := key + string(rune(frames))
	if tr, ok := traceCache[id]; ok {
		return tr
	}
	sc := video.StreamConfig{Width: 160, Height: 96, NumFrames: frames, Seed: 5, MabSize: 4, Quant: 8}
	tr, err := BuildTrace(key, sc)
	if err != nil {
		t.Fatal(err)
	}
	traceCache[id] = tr
	return tr
}

// testConfig scales the reference-calibrated platform to the 160x96 test
// resolution so frame times stay in the calibrated regime.
func testConfig() Config {
	cfg := DefaultConfig()
	const f = 3600.0 / 960.0 // reference mabs / test mabs
	cfg.Decoder.CyclesPerMabBase = sim.Cycles(float64(cfg.Decoder.CyclesPerMabBase) * f)
	cfg.Decoder.CyclesPerBit *= f
	cfg.Decoder.CyclesPerCoef = sim.Cycles(float64(cfg.Decoder.CyclesPerCoef) * f)
	cfg.Decoder.CyclesIntra = sim.Cycles(float64(cfg.Decoder.CyclesIntra) * f)
	cfg.Decoder.CyclesMC = sim.Cycles(float64(cfg.Decoder.CyclesMC) * f)
	cfg.DRAM.EnergyActPre *= f
	cfg.DRAM.EnergyReadLine *= f
	cfg.DRAM.EnergyWriteLine *= f
	cfg.DRAM.RowOpenTimeout = sim.Time(float64(cfg.DRAM.RowOpenTimeout) * f)
	return cfg
}

func mustRun(t testing.TB, tr *trace.Trace, s Scheme, cfg Config) *Result {
	t.Helper()
	res, err := Run(tr, s, cfg)
	if err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	return res
}

func TestSchemeValidate(t *testing.T) {
	if err := Baseline().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Scheme{Name: "x", Batch: 0}
	if bad.Validate() == nil {
		t.Fatal("batch 0 should fail")
	}
	bad = Scheme{Name: "x", Batch: 1, DisplayOpt: true}
	if bad.Validate() == nil {
		t.Fatal("display opt without MACH should fail")
	}
	bad = Scheme{Name: "x", Batch: 4, BatchPattern: []int{5}}
	if bad.Validate() == nil {
		t.Fatal("pattern above max should fail")
	}
	for _, s := range StandardSchemes() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	if MachGAB.String() != "gab" || MachOff.String() != "off" || MachMAB.String() != "mab" {
		t.Fatal("mach mode names")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.BaseBuffers = 1
	if bad.Validate() == nil {
		t.Fatal("1 buffer should fail")
	}
	bad = DefaultConfig()
	bad.DisplayLatencyFrames = 0
	if bad.Validate() == nil {
		t.Fatal("0 latency should fail")
	}
}

func TestRunBaselineSanity(t *testing.T) {
	tr := testTrace(t, "V1", 24)
	res := mustRun(t, tr, Baseline(), testConfig())
	if res.Frames != 24 {
		t.Fatalf("frames = %d", res.Frames)
	}
	if res.TotalEnergy() <= 0 {
		t.Fatal("energy must be positive")
	}
	if res.WallTime <= 0 {
		t.Fatal("wall time must be positive")
	}
	// The breakdown holds exactly the nine canonical components.
	if got := len(res.Energy.Keys()); got != len(energy.Components()) {
		t.Fatalf("components = %d", got)
	}
	// Per-frame samples cover every frame and the region classification
	// is a partition.
	if res.FrameTimes.Len() != 24 {
		t.Fatalf("samples = %d", res.FrameTimes.Len())
	}
	rc := res.Regions(sim.FromSeconds(1.0/60), power.DefaultConfig())
	if rc.I+rc.II+rc.III+rc.IV != 24 {
		t.Fatalf("regions don't partition: %+v", rc)
	}
	if res.String() == "" {
		t.Fatal("string report")
	}
}

func TestRunDeterminism(t *testing.T) {
	tr := testTrace(t, "V9", 24)
	cfg := testConfig()
	a := mustRun(t, tr, GAB(4), cfg)
	b := mustRun(t, tr, GAB(4), cfg)
	if a.TotalEnergy() != b.TotalEnergy() || a.Drops != b.Drops || a.Mem != b.Mem {
		t.Fatal("runs are not deterministic")
	}
}

func TestBatchingReducesTransitions(t *testing.T) {
	tr := testTrace(t, "V1", 32)
	cfg := testConfig()
	base := mustRun(t, tr, Baseline(), cfg)
	batched := mustRun(t, tr, Batching(8), cfg)
	if batched.Transitions >= base.Transitions {
		t.Fatalf("batching transitions %d should be < baseline %d", batched.Transitions, base.Transitions)
	}
	if batched.Energy.Get(energy.CompTransition) >= base.Energy.Get(energy.CompTransition) {
		t.Fatal("batching should cut transition energy")
	}
}

func TestRaceToSleepIncreasesS3AndEliminatesDrops(t *testing.T) {
	tr := testTrace(t, "V5", 32) // heavy workload with B frames
	cfg := testConfig()
	base := mustRun(t, tr, Baseline(), cfg)
	rts := mustRun(t, tr, RaceToSleep(8), cfg)
	if rts.S3Residency() <= base.S3Residency() {
		t.Fatalf("S3 residency: rts %.2f <= base %.2f", rts.S3Residency(), base.S3Residency())
	}
	if rts.Drops != 0 {
		t.Fatalf("race-to-sleep dropped %d frames", rts.Drops)
	}
}

func TestMachReducesMemoryAccesses(t *testing.T) {
	tr := testTrace(t, "V1", 24)
	cfg := testConfig()
	rts := mustRun(t, tr, RaceToSleep(8), cfg)
	gab := mustRun(t, tr, GAB(8), cfg)
	mab := mustRun(t, tr, MAB(8), cfg)
	if gab.Mem.Accesses() >= rts.Mem.Accesses() {
		t.Fatalf("GAB accesses %d should be < RTS %d", gab.Mem.Accesses(), rts.Mem.Accesses())
	}
	if gab.Mem.Accesses() >= mab.Mem.Accesses() {
		t.Fatalf("GAB accesses %d should be < MAB %d", gab.Mem.Accesses(), mab.Mem.Accesses())
	}
	if gab.Mach.MatchRate() <= mab.Mach.MatchRate() {
		t.Fatalf("gab match %.2f should beat mab %.2f", gab.Mach.MatchRate(), mab.Mach.MatchRate())
	}
	if gab.Mach.Savings() <= 0 {
		t.Fatal("gab should save bytes")
	}
	if gab.Energy.Get(energy.CompMachOverhead) <= 0 {
		t.Fatal("MACH overhead must be accounted")
	}
	if rts.Energy.Get(energy.CompMachOverhead) != 0 {
		t.Fatal("no MACH overhead without MACH")
	}
}

func TestBatchingGrowsBufferPool(t *testing.T) {
	tr := testTrace(t, "V4", 32)
	cfg := testConfig()
	base := mustRun(t, tr, Baseline(), cfg)
	batched := mustRun(t, tr, RaceToSleep(8), cfg)
	if batched.PoolHighWater <= base.PoolHighWater {
		t.Fatalf("batching pool %d should exceed baseline %d", batched.PoolHighWater, base.PoolHighWater)
	}
	gab := mustRun(t, tr, GAB(8), cfg)
	if gab.PoolHighWater <= batched.PoolHighWater {
		t.Fatalf("MACH retention pool %d should exceed plain batching %d", gab.PoolHighWater, batched.PoolHighWater)
	}
}

func TestBatchPattern(t *testing.T) {
	tr := testTrace(t, "V1", 24)
	cfg := testConfig()
	res := mustRun(t, tr, AdaptiveBatching(8, []int{2, 8, 4}), cfg)
	if res.Frames != 24 {
		t.Fatalf("frames = %d", res.Frames)
	}
	if res.Drops != 0 {
		t.Fatalf("adaptive batching dropped %d", res.Drops)
	}
}

func TestRunRejectsEmptyTrace(t *testing.T) {
	if _, err := Run(&trace.Trace{FPS: 60}, Baseline(), DefaultConfig()); err == nil {
		t.Fatal("empty trace should fail")
	}
}

func TestBFrameTraceDisplaysEveryFrame(t *testing.T) {
	tr := testTrace(t, "V5", 24) // B frames present
	cfg := testConfig()
	res := mustRun(t, tr, Batching(8), cfg)
	shown := res.Disp.FramesShown
	if shown+res.Drops < int64(res.Frames) {
		t.Fatalf("shown %d + drops %d < frames %d", shown, res.Drops, res.Frames)
	}
}

func TestLayoutKindFollowsScheme(t *testing.T) {
	tr := testTrace(t, "V1", 16)
	cfg := testConfig()
	gabNo := mustRun(t, tr, GABNoDisplayOpt(4), cfg)
	if gabNo.Disp.DigestRecords != 0 {
		t.Fatal("layout ii must not produce digest records")
	}
	gab := mustRun(t, tr, GAB(4), cfg)
	if gab.Disp.DigestRecords == 0 {
		t.Fatal("layout iii should produce digest records")
	}
	_ = framebuf.LayoutPtr
}

func TestNormalizedTo(t *testing.T) {
	tr := testTrace(t, "V1", 16)
	cfg := testConfig()
	base := mustRun(t, tr, Baseline(), cfg)
	if n := base.NormalizedTo(base); n != 1 {
		t.Fatalf("self-normalization = %v", n)
	}
	if base.EnergyPerFrame() <= 0 || base.DropRate() < 0 {
		t.Fatal("per-frame metrics")
	}
}

func TestWorkloadKeys(t *testing.T) {
	keys := WorkloadKeys()
	if len(keys) != 16 || keys[0] != "V1" || keys[15] != "V16" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestRunStandardSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("six schemes on one trace")
	}
	tr := testTrace(t, "V13", 24)
	results, err := RunStandard(tr, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("results = %d", len(results))
	}
	base := results[0]
	gab := results[5]
	if gab.TotalEnergy() >= base.TotalEnergy() {
		t.Fatalf("GAB %.2f should beat baseline %.2f on V13", gab.TotalEnergy(), base.TotalEnergy())
	}
}

func TestSlackPredictiveScheme(t *testing.T) {
	tr := testTrace(t, "V5", 32) // scene cuts make history mispredict
	cfg := testConfig()
	sp := mustRun(t, tr, SlackPredictive(), cfg)
	base := mustRun(t, tr, Baseline(), cfg)
	rts := mustRun(t, tr, RaceToSleep(8), cfg)
	// The predictor boosts late frames, so it drops no more than the
	// baseline; race-to-sleep still beats it on drops (zero).
	if sp.Drops > base.Drops {
		t.Fatalf("slack prediction drops %d > baseline %d", sp.Drops, base.Drops)
	}
	if rts.Drops != 0 {
		t.Fatalf("race-to-sleep dropped %d", rts.Drops)
	}
	// Mutual exclusion with racing.
	bad := SlackPredictive()
	bad.Race = true
	if bad.Validate() == nil {
		t.Fatal("SlackPredict+Race should be rejected")
	}
}
