package core

import (
	"mach/internal/trace"
	"mach/internal/video"
)

// BuildTrace synthesizes one Table 1 workload and decodes it into a replay
// trace: generate scene frames, encode them with the block codec, decode
// once functionally. Every scheme then replays the identical trace.
func BuildTrace(profileKey string, sc video.StreamConfig) (*trace.Trace, error) {
	prof, err := video.ProfileByKey(profileKey)
	if err != nil {
		return nil, err
	}
	st, err := video.Synthesize(prof, sc)
	if err != nil {
		return nil, err
	}
	return trace.Build(prof.Key, prof.FPS, st.Params, st.Encoded)
}

// WorkloadKeys returns the 16 Table 1 keys in order.
func WorkloadKeys() []string {
	ps := video.Profiles()
	keys := make([]string, len(ps))
	for i, p := range ps {
		keys[i] = p.Key
	}
	return keys
}
