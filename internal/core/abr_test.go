package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"mach/internal/abr"
	"mach/internal/delivery"
)

// abrConfig returns the test platform with a clean constrained link and the
// ABR controller enabled. sessions > 1 adds a contended shared bottleneck.
func abrConfig(policy string, bw float64, sessions int) Config {
	cfg := testConfig()
	cfg.Delivery = delivery.LTE()
	cfg.Delivery.BandwidthBps = bw
	cfg.Delivery.LossRate = 0
	if sessions > 1 {
		cfg.Delivery.Bottleneck = delivery.Bottleneck{Sessions: sessions, Seed: 3}
	}
	cfg.ABR = abr.Config{Enabled: true, Policy: policy, FixedRung: -1}
	return cfg
}

func TestABRNeedsDelivery(t *testing.T) {
	cfg := testConfig()
	cfg.ABR = abr.Config{Enabled: true, Policy: "buffer", FixedRung: -1}
	if cfg.Validate() == nil {
		t.Fatal("ABR without the delivery model accepted")
	}
	cfg = abrConfig("oracle", 1e6, 0)
	if cfg.Validate() == nil {
		t.Fatal("unknown ABR policy accepted")
	}
	if err := abrConfig("buffer", 1e6, 4).Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestABROffLeavesResultClean guards the optional-stats contract: with ABR
// and contention off, the result must carry no trace of either model even
// when delivery itself is on.
func TestABROffLeavesResultClean(t *testing.T) {
	tr := testTrace(t, "V3", 24)
	cfg := testConfig()
	cfg.Delivery = delivery.LTE()
	res := mustRun(t, tr, GAB(DefaultBatch), cfg)
	if res.ABR != nil || res.Contention != nil {
		t.Fatalf("ABR/contention stats on a plain delivery run: %+v %+v", res.ABR, res.Contention)
	}
	c := res.Canonical()
	if c.ABR != nil || c.Contention != nil {
		t.Fatal("canonical projection carries disabled-model stats")
	}
}

// TestABRGracefulDegradation is the headline acceptance scenario: on a link
// too slow for the native stream, the adaptive policy must rebuffer strictly
// less than pinning the top rung, by trading quality (frames at lower rungs)
// for continuity.
func TestABRGracefulDegradation(t *testing.T) {
	tr := testTrace(t, "V3", 32)
	const bw = 2e5 // well under the stream's ~1.16 MB/s top-rung rate

	pinned := abrConfig("fixed", bw, 0)
	fixed := mustRun(t, tr, RaceToSleep(4), pinned)
	adaptive := mustRun(t, tr, RaceToSleep(4), abrConfig("buffer", bw, 0))

	if fixed.Rebuffers == 0 {
		t.Fatal("top-rung pin on a starved link never rebuffered (test premise broken)")
	}
	if adaptive.Rebuffers >= fixed.Rebuffers {
		t.Fatalf("adaptive rebuffers %d not below fixed-top %d", adaptive.Rebuffers, fixed.Rebuffers)
	}
	if adaptive.RebufferTime >= fixed.RebufferTime {
		t.Fatalf("adaptive rebuffer time %v not below fixed-top %v", adaptive.RebufferTime, fixed.RebufferTime)
	}
	// The continuity was bought with quality: some frames played below the
	// top rung, and the stats account every frame exactly once.
	if adaptive.ABR == nil {
		t.Fatal("adaptive run carries no ABR stats")
	}
	if top := len(adaptive.ABR.RungFrames) - 1; adaptive.ABR.MinRung == top {
		t.Fatal("adaptive run never left the top rung on a starved link")
	}
	var applied int64
	for _, n := range adaptive.ABR.RungFrames {
		applied += n
	}
	if applied != int64(adaptive.Frames) {
		t.Fatalf("rung histogram covers %d frames of %d", applied, adaptive.Frames)
	}
	// Fixed-top ABR is the pinned baseline: all frames at the top rung.
	if fixed.ABR.RungFrames[len(fixed.ABR.RungFrames)-1] != int64(fixed.Frames) {
		t.Fatalf("pinned run left the top rung: %v", fixed.ABR.RungFrames)
	}
}

// TestABRSwitchAppliesDownstream checks the rung actually reaches the
// decoder and the MACH engine: a run that switches rungs decodes cheaper and
// hashes coarser than the same link pinned at the top.
func TestABRSwitchAppliesDownstream(t *testing.T) {
	tr := testTrace(t, "V3", 32)
	adaptive := mustRun(t, tr, GAB(DefaultBatch), abrConfig("buffer", 3e5, 0))
	pinned := mustRun(t, tr, GAB(DefaultBatch), abrConfig("fixed", 3e5, 0))
	if adaptive.ABR.Switches == 0 {
		t.Fatal("buffer policy never switched at this bandwidth (probe drifted)")
	}
	if adaptive.Dec.ComputeCycles >= pinned.Dec.ComputeCycles {
		t.Fatalf("lower rungs did not cheapen decode: %d >= %d cycles",
			adaptive.Dec.ComputeCycles, pinned.Dec.ComputeCycles)
	}
	if adaptive.Mach.MatchRate() <= pinned.Mach.MatchRate() {
		t.Fatalf("coarser quantization did not raise MACH matches: %.3f <= %.3f",
			adaptive.Mach.MatchRate(), pinned.Mach.MatchRate())
	}
}

// TestContentionDeterminism pins the contended pipeline to its seed: same
// contention seed, bit-identical result; different seed, different schedule.
func TestContentionDeterminism(t *testing.T) {
	tr := testTrace(t, "V3", 24)
	cfg := abrConfig("buffer", 1e6, 4)
	a := canonicalJSON(t, mustRun(t, tr, GAB(DefaultBatch), cfg))
	b := canonicalJSON(t, mustRun(t, tr, GAB(DefaultBatch), cfg))
	if !bytes.Equal(a, b) {
		t.Fatal("same contention seed produced different results")
	}
	reseeded := cfg
	reseeded.Delivery.Bottleneck.Seed = 99
	c := canonicalJSON(t, mustRun(t, tr, GAB(DefaultBatch), reseeded))
	if bytes.Equal(a, c) {
		t.Fatal("different contention seeds produced identical results (hash unused?)")
	}
	// The contended run reports its link stats.
	r := mustRun(t, tr, GAB(DefaultBatch), cfg)
	if r.Contention == nil || r.Contention.Sessions != 4 || r.Contention.ContendedQuanta == 0 {
		t.Fatalf("contention stats: %+v", r.Contention)
	}
}

// TestResumeBitIdenticalABR extends the checkpoint cut grid to adaptive and
// contended configurations: resume must be bit-identical through an applied
// rung switch (cuts land on both sides of it) and under bottleneck
// contention. Each config is first checked to actually switch rungs, so the
// grid cannot silently stop covering the interesting boundary.
func TestResumeBitIdenticalABR(t *testing.T) {
	tr := testTrace(t, "V3", 32)
	n := len(tr.Frames)
	grid := []struct {
		name string
		cfg  Config
	}{
		{"buffer-clean", abrConfig("buffer", 3e5, 0)},
		{"buffer-contended", abrConfig("buffer", 1e6, 4)},
		{"throughput-contended", abrConfig("throughput", 8e6, 4)},
	}
	for _, g := range grid {
		t.Run(g.name, func(t *testing.T) {
			want := mustRun(t, tr, GAB(DefaultBatch), g.cfg)
			if want.ABR.Switches < 1 {
				t.Fatalf("config never switches rungs; the grid no longer crosses a switch: %+v", want.ABR)
			}
			wantJSON := canonicalJSON(t, want)
			for _, cut := range []int{0, 9, 24, 25, n - 1, n} {
				got := canonicalJSON(t, runResumed(t, tr, GAB(DefaultBatch), g.cfg, cut))
				if !bytes.Equal(got, wantJSON) {
					t.Errorf("cut at frame %d: resumed ABR run differs from uninterrupted run", cut)
				}
			}
		})
	}
}

// TestRestoreRejectsBadABRState extends the semantic-corruption suite to the
// ABR fields: out-of-range rungs, histogram shape drift, rung/quant-shift
// disagreement, and ABR state injected into a config that does not run the
// controller.
func TestRestoreRejectsBadABRState(t *testing.T) {
	tr := testTrace(t, "V3", 32)
	cfg := abrConfig("buffer", 3e5, 0)
	r, err := NewRunner(tr, GAB(DefaultBatch), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r.Frame() < 26 { // past the rung switch: nonzero ABR state
		r.StepFrame()
	}
	payload, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(name string, target Config, f func(m map[string]json.RawMessage)) {
		t.Run(name, func(t *testing.T) {
			var m map[string]json.RawMessage
			if err := json.Unmarshal(payload, &m); err != nil {
				t.Fatal(err)
			}
			f(m)
			mut, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := NewRunner(tr, GAB(DefaultBatch), target)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.Restore(mut); err == nil {
				t.Error("corrupt ABR state accepted")
			}
		})
	}
	set := func(m map[string]json.RawMessage, k, v string) { m[k] = json.RawMessage(v) }

	mutate("rung-out-of-range", cfg, func(m map[string]json.RawMessage) { set(m, "Rung", "99") })
	mutate("negative-rung", cfg, func(m map[string]json.RawMessage) { set(m, "Rung", "-1") })
	mutate("negative-switches", cfg, func(m map[string]json.RawMessage) { set(m, "RungSwitches", "-1") })
	mutate("switches-above-frames", cfg, func(m map[string]json.RawMessage) { set(m, "RungSwitches", "999") })
	mutate("histogram-length", cfg, func(m map[string]json.RawMessage) { set(m, "RungFrames", "[26]") })
	mutate("histogram-negative", cfg, func(m map[string]json.RawMessage) {
		set(m, "RungFrames", `[-1,27,0,0,0]`)
	})
	mutate("histogram-sum", cfg, func(m map[string]json.RawMessage) {
		set(m, "RungFrames", `[1,1,1,1,1]`)
	})
	// The applied rung and the MACH quant shift travel together; a snapshot
	// where they disagree must not resume (the hashes would diverge).
	mutate("rung-shift-mismatch", cfg, func(m map[string]json.RawMessage) {
		set(m, "Rung", "4") // top rung: quant shift 0, but Mach state says otherwise
		set(m, "RungFrames", fmt.Sprintf("[0,0,0,0,%d]", 26))
	})

	// A checkpoint carrying ABR state must not restore into a config that
	// does not run the controller.
	plain := testConfig()
	plain.Delivery = cfg.Delivery
	mutate("abr-state-without-abr", plain, func(m map[string]json.RawMessage) {})
}
