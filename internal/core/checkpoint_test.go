package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mach/internal/checkpoint"
	"mach/internal/delivery"
	"mach/internal/trace"
	"mach/internal/video"
)

// runResumed runs the (trace, scheme, cfg) pipeline with a cut at frame
// cutAt: step to the boundary, snapshot, rebuild a fresh Runner, restore,
// and finish on the new one. The round trip goes through the real container
// encode/decode so the on-disk format is what is proven equivalent.
func runResumed(t *testing.T, tr *trace.Trace, s Scheme, cfg Config, cutAt int) *Result {
	t.Helper()
	r1, err := NewRunner(tr, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for !r1.Done() && r1.Frame() < cutAt {
		r1.StepFrame()
	}
	payload, err := r1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := checkpoint.Encode(&buf, r1.Fingerprint(), payload); err != nil {
		t.Fatal(err)
	}

	r2, err := NewRunner(tr, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := checkpoint.DecodeBytes(buf.Bytes(), r2.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Restore(restored); err != nil {
		t.Fatal(err)
	}
	if r2.Frame() != r1.Frame() {
		t.Fatalf("restored cursor %d, want %d", r2.Frame(), r1.Frame())
	}
	for !r2.Done() {
		r2.StepFrame()
	}
	res, err := r2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func canonicalJSON(t *testing.T, res *Result) []byte {
	t.Helper()
	b, err := res.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestResumeBitIdenticalGolden cuts the headline GAB run at several frame
// boundaries for every workload profile and requires the resumed result to
// match the committed golden corpus byte-for-byte — the same oracle the
// uninterrupted engine is held to.
func TestResumeBitIdenticalGolden(t *testing.T) {
	cfg := testConfig()
	for _, key := range WorkloadKeys() {
		t.Run(key, func(t *testing.T) {
			tr := testTrace(t, key, goldenFrames)
			want, err := os.ReadFile(filepath.Join("testdata", "golden", key+".json"))
			if err != nil {
				t.Fatalf("golden corpus: %v", err)
			}
			for _, cut := range []int{0, 1, 7, goldenFrames - 1, goldenFrames} {
				got := canonicalJSON(t, runResumed(t, tr, GAB(DefaultBatch), cfg, cut))
				if !bytes.Equal(got, want) {
					t.Errorf("cut at frame %d: resumed result drifted from golden corpus", cut)
				}
			}
		})
	}
}

// TestResumeBitIdenticalSchemes proves resume equivalence for every
// standard scheme, with per-frame sample collection on (the Sample state
// also has to round-trip).
func TestResumeBitIdenticalSchemes(t *testing.T) {
	cfg := testConfig()
	cfg.CollectFrameSamples = true
	tr := testTrace(t, "V1", goldenFrames)
	for _, s := range StandardSchemes() {
		t.Run(s.Name, func(t *testing.T) {
			want := canonicalJSON(t, mustRun(t, tr, s, cfg))
			for _, cut := range []int{1, 8, goldenFrames - 1} {
				got := canonicalJSON(t, runResumed(t, tr, s, cfg, cut))
				if !bytes.Equal(got, want) {
					t.Errorf("cut at frame %d: resumed %s differs from uninterrupted run", cut, s.Name)
				}
			}
		})
	}
}

// TestResumeBitIdenticalDelivery proves resume equivalence under the
// fault-injected delivery path: rebuffer counters, batch shrinks, the
// traffic generator and the recomputed radio schedule all have to line up.
func TestResumeBitIdenticalDelivery(t *testing.T) {
	for _, prof := range []string{"lte", "flaky"} {
		t.Run(prof, func(t *testing.T) {
			cfg := testConfig()
			d, err := delivery.ProfileByName(prof)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Delivery = d
			tr := testTrace(t, "V3", goldenFrames)
			want := canonicalJSON(t, mustRun(t, tr, GAB(DefaultBatch), cfg))
			for _, cut := range []int{2, 9, goldenFrames} {
				got := canonicalJSON(t, runResumed(t, tr, GAB(DefaultBatch), cfg, cut))
				if !bytes.Equal(got, want) {
					t.Errorf("cut at frame %d: resumed delivery run differs", cut)
				}
			}
		})
	}
}

// TestResumeBitIdenticalParallel proves a run checkpointed under the
// deterministic parallel engine resumes bit-identically.
func TestResumeBitIdenticalParallel(t *testing.T) {
	cfg := testConfig()
	cfg.Parallel = 3
	tr := testTrace(t, "V2", goldenFrames)
	want := canonicalJSON(t, mustRun(t, tr, GAB(DefaultBatch), cfg))
	got := canonicalJSON(t, runResumed(t, tr, GAB(DefaultBatch), cfg, 6))
	if !bytes.Equal(got, want) {
		t.Error("parallel resumed run differs from uninterrupted run")
	}
}

// TestSnapshotDeterministic requires identical snapshot bytes from
// identical states — including a snapshot→restore→snapshot round trip, so
// no state is lost or reordered by serialization itself.
func TestSnapshotDeterministic(t *testing.T) {
	cfg := testConfig()
	tr := testTrace(t, "V5", goldenFrames)
	step := func() *Runner {
		r, err := NewRunner(tr, GAB(DefaultBatch), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for r.Frame() < 9 {
			r.StepFrame()
		}
		return r
	}
	a, err := step().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := step().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("identical runs snapshot to different bytes")
	}
	r, err := NewRunner(tr, GAB(DefaultBatch), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Restore(a); err != nil {
		t.Fatal(err)
	}
	c, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatal("snapshot changed across a restore round trip")
	}
}

// TestSaveLoadCheckpoint exercises the file path end to end, including the
// fingerprint guard against resuming a checkpoint into a different run.
func TestSaveLoadCheckpoint(t *testing.T) {
	cfg := testConfig()
	tr := testTrace(t, "V1", goldenFrames)
	want := canonicalJSON(t, mustRun(t, tr, GAB(DefaultBatch), cfg))

	r, err := NewRunner(tr, GAB(DefaultBatch), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r.Frame() < 5 {
		r.StepFrame()
	}
	path := filepath.Join(t.TempDir(), "run.mckp")
	if err := r.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}

	r2, err := LoadCheckpoint(path, tr, GAB(DefaultBatch), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for !r2.Done() {
		r2.StepFrame()
	}
	res, err := r2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := canonicalJSON(t, res); !bytes.Equal(got, want) {
		t.Error("file-restored run differs from uninterrupted run")
	}

	// Same checkpoint against a different scheme: rejected by fingerprint.
	if _, err := LoadCheckpoint(path, tr, Baseline(), cfg); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("cross-scheme resume: want ErrCorrupt, got %v", err)
	}
	// And against a different trace.
	other := testTrace(t, "V2", goldenFrames)
	if _, err := LoadCheckpoint(path, other, GAB(DefaultBatch), cfg); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("cross-trace resume: want ErrCorrupt, got %v", err)
	}
}

// TestLoadCheckpointCorrupt flips and truncates real checkpoint files and
// requires a clean error — never a panic — from the load path.
func TestLoadCheckpointCorrupt(t *testing.T) {
	cfg := testConfig()
	tr := testTrace(t, "V1", goldenFrames)
	r, err := NewRunner(tr, GAB(DefaultBatch), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r.Frame() < 5 {
		r.StepFrame()
	}
	path := filepath.Join(t.TempDir(), "run.mckp")
	if err := r.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, mut []byte) {
		p := filepath.Join(t.TempDir(), name+".mckp")
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(p, tr, GAB(DefaultBatch), cfg); !errors.Is(err, checkpoint.ErrCorrupt) {
			t.Errorf("%s: want ErrCorrupt, got %v", name, err)
		}
	}
	check("truncated-header", raw[:16])
	check("truncated-payload", raw[:len(raw)/2])
	check("empty", nil)
	for _, off := range []int{0, 5, 10, 26, 30, 40, len(raw) / 2, len(raw) - 1} {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x40
		check(fmt.Sprintf("bitflip-%d", off), mut)
	}
}

// TestRestoreRejectsSemanticCorruption mutates decoded payloads in ways the
// container CRC cannot see (the attacker rewrites the CRC too) and requires
// the structural validation in Restore to reject each one.
func TestRestoreRejectsSemanticCorruption(t *testing.T) {
	cfg := testConfig()
	cfg.CollectFrameSamples = true
	tr := testTrace(t, "V1", goldenFrames)
	r, err := NewRunner(tr, GAB(DefaultBatch), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r.Frame() < 5 {
		r.StepFrame()
	}
	payload, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(name string, f func(m map[string]json.RawMessage)) {
		t.Run(name, func(t *testing.T) {
			var m map[string]json.RawMessage
			if err := json.Unmarshal(payload, &m); err != nil {
				t.Fatal(err)
			}
			f(m)
			mut, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := NewRunner(tr, GAB(DefaultBatch), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.Restore(mut); err == nil {
				t.Error("semantically corrupt payload accepted")
			}
		})
	}
	set := func(m map[string]json.RawMessage, k, v string) { m[k] = json.RawMessage(v) }

	mutate("frame-past-end", func(m map[string]json.RawMessage) {
		set(m, "Frame", fmt.Sprint(goldenFrames+1))
		set(m, "BatchEnd", fmt.Sprint(goldenFrames+1))
	})
	mutate("frame-above-batch-end", func(m map[string]json.RawMessage) { set(m, "BatchEnd", "1") })
	mutate("negative-batch-idx", func(m map[string]json.RawMessage) { set(m, "BatchIdx", "-1") })
	mutate("negative-clock", func(m map[string]json.RawMessage) { set(m, "Now", "-5") })
	mutate("insane-clock", func(m map[string]json.RawMessage) { set(m, "Now", "9000000000000000000") })
	mutate("traffic-after-now", func(m map[string]json.RawMessage) { set(m, "TrafficFrom", "9000000000000000") })
	mutate("release-count", func(m map[string]json.RawMessage) { set(m, "Releases", "[1,2]") })
	mutate("sample-count", func(m map[string]json.RawMessage) { set(m, "FrameTimes", "[0.5]") })
	mutate("drop-samples", func(m map[string]json.RawMessage) {
		delete(m, "FrameTimes")
		delete(m, "FrameEnergies")
	})
	mutate("negative-drops", func(m map[string]json.RawMessage) { set(m, "Drops", "-1") })
	mutate("bad-max-displayed", func(m map[string]json.RawMessage) { set(m, "MaxDisplayed", "-2") })
	mutate("garbage", func(m map[string]json.RawMessage) { set(m, "Pool", `"zzz"`) })

	mutate("free-of-unheld-slot", func(m map[string]json.RawMessage) {
		set(m, "Frees", `[{"At":1,"Slot":4096}]`)
	})
	mutate("layout-records-shape", func(m map[string]json.RawMessage) {
		var layouts []map[string]json.RawMessage
		if err := json.Unmarshal(m["Layouts"], &layouts); err != nil || len(layouts) == 0 {
			t.Skip("no layouts in snapshot")
		}
		set(layouts[0], "Records", "[]")
		b, err := json.Marshal(layouts)
		if err != nil {
			t.Fatal(err)
		}
		m["Layouts"] = b
	})
	mutate("duplicate-layout", func(m map[string]json.RawMessage) {
		var layouts []json.RawMessage
		if err := json.Unmarshal(m["Layouts"], &layouts); err != nil || len(layouts) == 0 {
			t.Skip("no layouts in snapshot")
		}
		layouts = append(layouts, layouts[0])
		b, err := json.Marshal(layouts)
		if err != nil {
			t.Fatal(err)
		}
		m["Layouts"] = b
	})
	mutate("oversized-mach-history", func(m map[string]json.RawMessage) {
		var ms map[string]json.RawMessage
		if err := json.Unmarshal(m["Mach"], &ms); err != nil {
			t.Fatal(err)
		}
		var hist []json.RawMessage
		if err := json.Unmarshal(ms["History"], &hist); err != nil || len(hist) == 0 {
			t.Skip("no MACH history in snapshot")
		}
		for i := 0; i < 64; i++ {
			hist = append(hist, hist[0])
		}
		b, err := json.Marshal(hist)
		if err != nil {
			t.Fatal(err)
		}
		ms["History"] = b
		b, err = json.Marshal(ms)
		if err != nil {
			t.Fatal(err)
		}
		m["Mach"] = b
	})
}

// FuzzCheckpointLoad feeds arbitrary bytes through the full untrusted-input
// path — container decode, then structural restore, then (when accepted)
// the rest of the run — and requires that nothing ever panics. Mirrors the
// FuzzTraceLoad pattern: valid blobs seed the corpus so mutation explores
// near-valid states, and the traffic generator is disabled so a mutated
// clock cannot stretch one iteration into minutes.
func FuzzCheckpointLoad(f *testing.F) {
	cfg := testConfig()
	cfg.Traffic.BytesPerSecond = 0
	sc := video.StreamConfig{Width: 64, Height: 48, NumFrames: 4, Seed: 5, MabSize: 4, Quant: 8}
	tr, err := BuildTrace("V1", sc)
	if err != nil {
		f.Fatal(err)
	}
	s := GAB(DefaultBatch)
	for _, cut := range []int{0, 2, len(tr.Frames)} {
		r, err := NewRunner(tr, s, cfg)
		if err != nil {
			f.Fatal(err)
		}
		for r.Frame() < cut {
			r.StepFrame()
		}
		payload, err := r.Snapshot()
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := checkpoint.Encode(&buf, r.Fingerprint(), payload); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes()) // container path
		f.Add(payload)     // raw payload path (bypasses the CRC gate)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewRunner(tr, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		payload := data
		if p, err := checkpoint.DecodeBytes(data, r.Fingerprint()); err == nil {
			payload = p
		}
		if err := r.Restore(payload); err != nil {
			return
		}
		for !r.Done() {
			r.StepFrame()
		}
		if _, err := r.Finish(); err != nil {
			t.Fatalf("Finish after accepted restore: %v", err)
		}
	})
}
