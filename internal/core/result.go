package core

import (
	"fmt"
	"strings"

	"mach/internal/cache"
	"mach/internal/decoder"
	"mach/internal/delivery"
	"mach/internal/display"
	"mach/internal/dram"
	"mach/internal/energy"
	"mach/internal/mach"
	"mach/internal/power"
	"mach/internal/sim"
	"mach/internal/stats"
)

// Result is everything one pipeline run measured.
type Result struct {
	Scheme   Scheme
	Workload string
	Frames   int
	Drops    int64

	// WallTime spans first decode start to last scan-out end.
	WallTime sim.Time

	// Energy is the nine-part Fig 11 split, in joules.
	Energy *stats.Breakdown

	// Decoder residency over the wall time.
	BusyTime  sim.Time
	IdleTime  sim.Time
	S1Time    sim.Time
	S3Time    sim.Time
	TransTime sim.Time

	Transitions int64

	// Per-frame decode times in seconds (Region analysis, Fig 2 CDFs);
	// populated when Config.CollectFrameSamples is set.
	FrameTimes *stats.Sample
	// Per-frame decoder energy in joules (busy portion only).
	FrameEnergies *stats.Sample

	// PoolHighWater is the peak number of simultaneously live frame
	// buffers (Fig 12a measures it against triple buffering).
	PoolHighWater int

	// Delivery/rebuffering measurements; all zero unless
	// Config.Delivery.Enabled (or the trace carries arrival metadata).
	// Rebuffers counts decoder stalls on a frame that had not arrived;
	// RebufferTime is the total slack those stalls spent (accounted under
	// the sleep policy like any other slack). BatchShrinks counts batch
	// boundaries where low streaming-buffer occupancy shrank the batch.
	// StartupDelay is how long the player held the first scan-out waiting
	// for the first segment; the playback deadline schedule starts after it.
	Rebuffers    int64
	RebufferTime sim.Time
	StartupDelay sim.Time
	BatchShrinks int64
	Net          delivery.Stats
	Radio        power.RadioStats

	// ABR summarizes the adaptive-bitrate behaviour; Contention the
	// shared-bottleneck link. Both nil unless the respective model ran,
	// so default results are unchanged by their existence.
	ABR        *ABRStats
	Contention *delivery.ContentionStats

	Mem       dram.Stats
	MemEnergy dram.Energy
	Dec       decoder.Stats
	DecCache  cache.Stats
	Disp      display.Stats
	Mach      mach.Stats
	Ledger    *power.Ledger
}

// ABRStats summarizes a run's adaptive-bitrate behaviour, both what the
// delivery planner decided per segment and what the pipeline applied per
// batch.
type ABRStats struct {
	// FinalRung is the rung applied when playback ended; Switches counts
	// rung changes taken at batch boundaries; RungFrames histograms
	// decoded frames by applied rung, lowest rung first.
	FinalRung  int     `json:"final_rung"`
	Switches   int64   `json:"switches"`
	RungFrames []int64 `json:"rung_frames"`
	// PlannedSwitches/SegmentsAtRung/MinRung/MaxRung mirror the delivery
	// planner's segment-level decisions (delivery.ABRStats).
	PlannedSwitches int64   `json:"planned_switches"`
	SegmentsAtRung  []int64 `json:"segments_at_rung"`
	MinRung         int     `json:"min_rung"`
	MaxRung         int     `json:"max_rung"`
}

// TotalEnergy returns the run's total energy in joules.
func (r *Result) TotalEnergy() float64 { return r.Energy.Total() }

// EnergyPerFrame returns joules per trace frame.
func (r *Result) EnergyPerFrame() float64 {
	if r.Frames == 0 {
		return 0
	}
	return r.TotalEnergy() / float64(r.Frames)
}

// DropRate returns dropped refreshes per frame.
func (r *Result) DropRate() float64 {
	if r.Frames == 0 {
		return 0
	}
	return float64(r.Drops) / float64(r.Frames)
}

// S3Residency returns the fraction of wall time the decoder spent in deep
// sleep (the paper's "in deep sleep ~60% of the time" headline).
func (r *Result) S3Residency() float64 {
	if r.WallTime <= 0 {
		return 0
	}
	return float64(r.S3Time) / float64(r.WallTime)
}

// NormalizedTo returns this run's energy relative to a baseline run.
func (r *Result) NormalizedTo(base *Result) float64 {
	be := base.TotalEnergy()
	if be == 0 {
		return 0
	}
	return r.TotalEnergy() / be
}

// String renders a compact single-run report.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s on %s: %d frames, %d drops (%.1f%%)\n",
		r.Scheme.Name, r.Workload, r.Frames, r.Drops, 100*r.DropRate())
	fmt.Fprintf(&sb, "  energy: %.2f mJ/frame  S3 residency %.1f%%  transitions %d\n",
		1e3*r.EnergyPerFrame(), 100*r.S3Residency(), r.Transitions)
	t := r.TotalEnergy()
	for _, k := range energy.Components() {
		v := r.Energy.Get(k)
		if t > 0 {
			fmt.Fprintf(&sb, "  %-15s %8.2f mJ (%5.1f%%)\n", k, 1e3*v, 100*v/t)
		}
	}
	if v := r.Energy.Get(energy.CompRadio); v > 0 && t > 0 {
		fmt.Fprintf(&sb, "  %-15s %8.2f mJ (%5.1f%%)\n", energy.CompRadio, 1e3*v, 100*v/t)
	}
	if r.Net.Segments > 0 {
		fmt.Fprintf(&sb, "  net: %d segments (%d KB), %d retries, %d stalls, %d abandoned; startup %.1fms, rebuffer %d/%.1fms, batch shrinks %d\n",
			r.Net.Segments, r.Net.Bytes/1024, r.Net.Retries, r.Net.Stalls, r.Net.Abandoned,
			r.StartupDelay.Milliseconds(), r.Rebuffers, r.RebufferTime.Milliseconds(), r.BatchShrinks)
	}
	if r.ABR != nil {
		fmt.Fprintf(&sb, "  abr: rungs %d-%d of %d, %d switches (%d planned), final rung %d\n",
			r.ABR.MinRung, r.ABR.MaxRung, len(r.ABR.RungFrames), r.ABR.Switches,
			r.ABR.PlannedSwitches, r.ABR.FinalRung)
	}
	if r.Contention != nil {
		fmt.Fprintf(&sb, "  link: %d sessions, %d/%d quanta contended\n",
			r.Contention.Sessions, r.Contention.ContendedQuanta, r.Contention.Quanta)
	}
	fmt.Fprintf(&sb, "  mem: %d accesses, row-hit %.1f%%  pool high-water %d buffers\n",
		r.Mem.Accesses(), 100*r.Mem.RowHitRate(), r.PoolHighWater)
	if r.Scheme.Mach != MachOff {
		fmt.Fprintf(&sb, "  mach: match %.1f%% (intra %d, inter %d), savings %.1f%%\n",
			100*r.Mach.MatchRate(), r.Mach.IntraMatches, r.Mach.InterMatches, 100*r.Mach.Savings())
	}
	return sb.String()
}

// RegionCounts classifies per-frame decode times into the paper's Regions
// I-IV (§2.2) for a frame period and power configuration: dropped frames,
// short-slack frames, S1-only frames, and S3-capable frames.
type RegionCounts struct {
	I, II, III, IV int
}

// Regions computes the Region I-IV classification of the run's frame times.
func (r *Result) Regions(period sim.Time, pcfg power.Config) RegionCounts {
	var rc RegionCounts
	if r.FrameTimes == nil {
		return rc
	}
	beS1 := pcfg.BreakEven(power.S1)
	beS3 := pcfg.BreakEven(power.S3)
	for _, sec := range r.FrameTimes.Values() {
		d := sim.FromSeconds(sec)
		slack := period - d
		switch {
		case slack < 0:
			rc.I++
		case slack < beS1:
			rc.II++
		case slack < beS3:
			rc.III++
		default:
			rc.IV++
		}
	}
	return rc
}
