// Package core wires every substrate into the end-to-end video pipeline of
// the paper and implements the six schemes of Fig 11: Baseline, Batching,
// Racing, Race-to-Sleep, Race-to-Sleep+MAB, and Race-to-Sleep+GAB.
//
// A run replays a decode trace (package trace) through the timing and energy
// models: the decoder IP decodes frames (batched and/or raced per scheme),
// the MACH engine rewrites the frame-buffer layout, the display controller
// scans frames out through its content caches, and the DRAM model prices
// every memory transaction. The result carries the nine-part energy split,
// the frame-time distribution (Regions I-IV), drop counts, sleep residency,
// and every substrate's counters.
package core

import (
	"fmt"
	"strings"
)

// MachMode selects the content-caching scheme.
type MachMode int

const (
	// MachOff disables content caching (raw frame-buffer layout).
	MachOff MachMode = iota
	// MachMAB deduplicates exact macroblocks (§4.2).
	MachMAB
	// MachGAB deduplicates gradient blocks (§4.3).
	MachGAB
)

func (m MachMode) String() string {
	switch m {
	case MachOff:
		return "off"
	case MachMAB:
		return "mab"
	case MachGAB:
		return "gab"
	default:
		return fmt.Sprintf("MachMode(%d)", int(m))
	}
}

// Scheme is one point in the paper's design space.
type Scheme struct {
	Name string
	// Batch is the number of frames decoded back-to-back before the
	// decoder considers sleeping (§3.1). 1 disables batching.
	Batch int
	// Race runs the decoder at the high DVFS point (§3.2).
	Race bool
	// Mach selects content caching at the decoder (§4).
	Mach MachMode
	// DisplayOpt enables the display-side optimizations (§5): the
	// pointer+digest layout, the display cache and the MACH buffer. Only
	// meaningful with Mach enabled.
	DisplayOpt bool

	// BatchPattern, when non-empty, overrides Batch with a cyclic sequence
	// of batch sizes — modelling §3.3's adaptive batching, where the
	// decoder races through however many frames the bursty network has
	// buffered. Batch must still be set to the pattern's maximum (it sizes
	// the frame-buffer pool).
	BatchPattern []int

	// SlackPredict selects the related-work comparator the paper contrasts
	// against (§7, history-based slack prediction / low-power decoding
	// [57, 66]): the decoder predicts each frame's decode time from an
	// EWMA of recent frames and only boosts the frequency when the
	// prediction would miss the deadline. Mispredictions on unpredictable
	// frames (scene cuts, big I frames) are exactly what causes its frame
	// drops. Mutually exclusive with Race.
	SlackPredict bool
}

// Validate reports malformed schemes.
func (s Scheme) Validate() error {
	if s.Batch < 1 || s.Batch > 64 {
		return fmt.Errorf("core: batch %d outside [1,64]", s.Batch)
	}
	if s.DisplayOpt && s.Mach == MachOff {
		return fmt.Errorf("core: display optimization requires MACH")
	}
	for _, b := range s.BatchPattern {
		if b < 1 || b > s.Batch {
			return fmt.Errorf("core: batch pattern entry %d outside [1,%d]", b, s.Batch)
		}
	}
	if s.SlackPredict && s.Race {
		return fmt.Errorf("core: SlackPredict and Race are mutually exclusive")
	}
	return nil
}

// SlackPredictive returns the §7 comparator: per-frame DVFS driven by a
// history-based decode-time prediction instead of racing.
func SlackPredictive() Scheme {
	return Scheme{Name: "SlackPredict", Batch: 1, SlackPredict: true}
}

// AdaptiveBatching models bursty buffering: the decoder batches whatever
// the network delivered, cycling through pattern (§3.3). maxBatch sizes the
// buffer pool.
func AdaptiveBatching(maxBatch int, pattern []int) Scheme {
	return Scheme{Name: "Adaptive", Batch: maxBatch, Race: true, BatchPattern: pattern}
}

// The paper's six schemes (Fig 11), with the default 8-frame batch the
// hardware-overhead discussion of §6.3 assumes.

// Baseline returns the no-batch, no-race, no-MACH scheme ("L").
func Baseline() Scheme { return Scheme{Name: "Baseline", Batch: 1} }

// Batching returns batch-only decoding ("B").
func Batching(n int) Scheme { return Scheme{Name: "Batching", Batch: n} }

// Racing returns frequency-boost-only decoding ("R").
func Racing() Scheme { return Scheme{Name: "Racing", Batch: 1, Race: true} }

// RaceToSleep combines batching and racing ("S", §3.3).
func RaceToSleep(n int) Scheme { return Scheme{Name: "Race-to-Sleep", Batch: n, Race: true} }

// MAB is Race-to-Sleep plus mab-based MACH at VD and DC ("M").
func MAB(n int) Scheme {
	return Scheme{Name: "MAB", Batch: n, Race: true, Mach: MachMAB, DisplayOpt: true}
}

// GAB is Race-to-Sleep plus gab-based MACH at VD and DC ("G").
func GAB(n int) Scheme {
	return Scheme{Name: "GAB", Batch: n, Race: true, Mach: MachGAB, DisplayOpt: true}
}

// GABNoDisplayOpt is the §5 motivation ablation: MACH at the VD with the
// plain pointer layout and a conventional DC (no display cache, no MACH
// buffer) — the configuration that costs >60% extra display requests.
func GABNoDisplayOpt(n int) Scheme {
	return Scheme{Name: "GAB-noDC", Batch: n, Race: true, Mach: MachGAB}
}

// DefaultBatch is the batch depth of the headline configuration (§6.3
// discusses batching 8 frames with GAB).
const DefaultBatch = 8

// SchemeByName resolves a CLI scheme key (long name or the paper's
// single-letter shorthand, case-insensitive) to a constructed scheme at the
// given batch depth. Every command that takes a -scheme flag shares this
// table, so machsim and machfleet cannot drift apart on spelling.
func SchemeByName(name string, batch int) (Scheme, error) {
	switch strings.ToLower(name) {
	case "baseline", "l":
		return Baseline(), nil
	case "batching", "b":
		return Batching(batch), nil
	case "racing", "r":
		return Racing(), nil
	case "race-to-sleep", "rts", "s":
		return RaceToSleep(batch), nil
	case "mab", "m":
		return MAB(batch), nil
	case "gab", "g":
		return GAB(batch), nil
	case "gab-nodc":
		return GABNoDisplayOpt(batch), nil
	default:
		return Scheme{}, fmt.Errorf("unknown scheme %q (want baseline|batching|racing|race-to-sleep|mab|gab|gab-nodc)", name)
	}
}

// StandardSchemes returns the six Fig 11 bars in plotting order.
func StandardSchemes() []Scheme {
	return []Scheme{
		Baseline(),
		Batching(DefaultBatch),
		Racing(),
		RaceToSleep(DefaultBatch),
		MAB(DefaultBatch),
		GAB(DefaultBatch),
	}
}
