package dram

import (
	"testing"

	"mach/internal/sim"
)

func cfgNoTimeout() Config {
	c := DefaultConfig()
	c.RowOpenTimeout = 0
	c.TRefi = 0 // timing-exact tests disable refresh
	return c
}

func TestValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := good
	bad.Channels = 3
	if bad.Validate() == nil {
		t.Fatal("3 channels should be rejected")
	}
	bad = good
	bad.LineBytes = 48
	if bad.Validate() == nil {
		t.Fatal("non-power-of-two line should be rejected")
	}
	bad = good
	bad.RowBytes = 100
	if bad.Validate() == nil {
		t.Fatal("row not multiple of line should be rejected")
	}
	bad = good
	bad.TCL = 0
	if bad.Validate() == nil {
		t.Fatal("zero timing should be rejected")
	}
}

func TestRowHitLatency(t *testing.T) {
	m := New(cfgNoTimeout())
	c := m.Config()
	d1 := m.Access(0, 0, false)
	wantFirst := c.TRCD + c.TCL + c.TBurst
	if d1 != wantFirst {
		t.Fatalf("closed-row access latency = %v want %v", d1, wantFirst)
	}
	// Same row, same channel: stride by Channels*LineBytes to stay in the
	// same channel under the RoRaBaCoCh line-interleaved mapping.
	d2 := m.Access(d1, uint64(c.LineBytes)*uint64(c.Channels), false)
	if got := d2 - d1; got != c.TCL+c.TBurst {
		t.Fatalf("row hit latency = %v want %v", got, c.TCL+c.TBurst)
	}
	s := m.Stats()
	if s.RowHits != 1 || s.RowClosed != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRowConflictLatency(t *testing.T) {
	m := New(cfgNoTimeout())
	c := m.Config()
	d1 := m.Access(0, 0, false)
	// Same bank, different row: stride by a full bank rotation.
	rowStride := uint64(c.RowBytes) * uint64(c.Channels) * uint64(c.BanksPerRank) * uint64(c.RanksPerChannel)
	d2 := m.Access(d1, rowStride, false)
	if got := d2 - d1; got != c.TRP+c.TRCD+c.TCL+c.TBurst {
		t.Fatalf("conflict latency = %v", got)
	}
	s := m.Stats()
	if s.RowMisses != 1 || s.Precharges != 1 || s.Activates != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBankQueueing(t *testing.T) {
	m := New(cfgNoTimeout())
	c := m.Config()
	d1 := m.Access(0, 0, false)
	// Second request to the same bank issued at time 0 must queue.
	d2 := m.Access(0, uint64(c.LineBytes)*uint64(c.Channels), false)
	if d2 <= d1 {
		t.Fatalf("expected queueing: d1=%v d2=%v", d1, d2)
	}
	if got := d2 - d1; got != c.TCL+c.TBurst {
		t.Fatalf("queued row hit service time = %v", got)
	}
}

func TestChannelParallelism(t *testing.T) {
	m := New(cfgNoTimeout())
	c := m.Config()
	d1 := m.Access(0, 0, false)
	// Adjacent line maps to the other channel: no queueing.
	d2 := m.Access(0, uint64(c.LineBytes), false)
	if d2 != d1 {
		t.Fatalf("different channels should not queue: %v vs %v", d1, d2)
	}
}

func TestRowOpenTimeout(t *testing.T) {
	c := DefaultConfig()
	c.RowOpenTimeout = sim.FromNanoseconds(100)
	m := New(c)
	d1 := m.Access(0, 0, false)
	// Revisit the same row long after the timeout: the controller has
	// precharged it in the background, so we pay an activate again.
	late := d1 + sim.FromNanoseconds(1000)
	d2 := m.Access(late, uint64(c.Channels)*uint64(c.LineBytes), false)
	if got := d2 - late; got != c.TRCD+c.TCL+c.TBurst {
		t.Fatalf("post-timeout latency = %v", got)
	}
	s := m.Stats()
	if s.TimeoutPre != 1 {
		t.Fatalf("timeout precharges = %d", s.TimeoutPre)
	}
	if s.RowHits != 0 {
		t.Fatalf("unexpected row hit: %+v", s)
	}
}

func TestDensePacketsBeatSparse(t *testing.T) {
	// The racing effect (Fig 5a): the same sequential access stream costs
	// fewer Act/Pre when issued back-to-back than when spread out beyond
	// the row-open timeout.
	run := func(gap sim.Time) Stats {
		c := DefaultConfig()
		m := New(c)
		now := sim.Time(0)
		for i := 0; i < 256; i++ {
			addr := uint64(i) * uint64(c.LineBytes)
			done := m.Access(now, addr, true)
			if done > now {
				now = done
			}
			now += gap
		}
		return m.Stats()
	}
	dense := run(0)
	sparse := run(sim.FromNanoseconds(50000))
	if dense.Activates >= sparse.Activates {
		t.Fatalf("dense %d activates should beat sparse %d", dense.Activates, sparse.Activates)
	}
	if sparse.TimeoutPre == 0 && sparse.Refreshes == 0 {
		t.Fatal("sparse stream should lose rows to timeout or refresh")
	}
}

func TestAccessRangeFragmentation(t *testing.T) {
	m := New(cfgNoTimeout())
	// A 48-byte mab aligned at 32 straddles two 64B lines (§5's
	// fragmentation case).
	_, lines := m.AccessRange(0, 32, 48, false)
	if lines != 2 {
		t.Fatalf("lines = %d", lines)
	}
	_, lines = m.AccessRange(0, 0, 48, false)
	if lines != 1 {
		t.Fatalf("aligned lines = %d", lines)
	}
	_, lines = m.AccessRange(0, 0, 0, false)
	if lines != 0 {
		t.Fatalf("empty range lines = %d", lines)
	}
}

func TestEnergyAccounting(t *testing.T) {
	c := cfgNoTimeout()
	m := New(c)
	d := m.Access(0, 0, false)                                // activate + read
	m.Access(d, uint64(c.Channels)*uint64(c.LineBytes), true) // row hit write
	m.AccrueBackground(sim.FromMilliseconds(1))
	e := m.EnergySnapshot()
	if e.ActPre != c.EnergyActPre/2 {
		t.Fatalf("actpre = %v", e.ActPre) // one activate, no precharge yet
	}
	wantBurst := c.EnergyReadLine + c.EnergyWriteLine
	if e.Burst != wantBurst {
		t.Fatalf("burst = %v want %v", e.Burst, wantBurst)
	}
	wantBg := c.BackgroundPower.Over(sim.FromMilliseconds(1))
	if diff := e.Background - wantBg; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("background = %v want %v", e.Background, wantBg)
	}
	// Accruing to the same time again must not double-charge.
	m.AccrueBackground(sim.FromMilliseconds(1))
	if m.EnergySnapshot().Background != e.Background {
		t.Fatal("double background charge")
	}
	if e.Total() <= 0 {
		t.Fatal("total energy must be positive")
	}
}

func TestResetStats(t *testing.T) {
	m := New(cfgNoTimeout())
	m.Access(0, 0, false)
	m.ResetStats(sim.FromMilliseconds(1))
	if m.Stats() != (Stats{}) {
		t.Fatal("stats not cleared")
	}
	if m.EnergySnapshot() != (Energy{}) {
		t.Fatal("energy not cleared")
	}
	// Bank state survives ResetStats: with refresh disabled the open row
	// still hits.
	c := m.Config()
	start := sim.FromMilliseconds(1)
	d := m.Access(start, uint64(c.Channels)*uint64(c.LineBytes), false)
	if got := d - start; got != c.TCL+c.TBurst {
		t.Fatalf("row should still be open, latency %v", got)
	}
}

func TestSequentialStreamRowHitRate(t *testing.T) {
	c := cfgNoTimeout()
	m := New(c)
	now := sim.Time(0)
	n := 2048
	for i := 0; i < n; i++ {
		done := m.Access(now, uint64(i)*uint64(c.LineBytes), true)
		if done > now {
			now = done
		}
	}
	s := m.Stats()
	if hr := s.RowHitRate(); hr < 0.9 {
		t.Fatalf("sequential stream row hit rate = %v", hr)
	}
	if s.Accesses() != int64(n) {
		t.Fatalf("accesses = %d", s.Accesses())
	}
}

func TestRefreshClosesRowsAndStalls(t *testing.T) {
	c := DefaultConfig()
	c.RowOpenTimeout = 0 // isolate refresh
	m := New(c)
	d1 := m.Access(0, 0, false)
	// Re-reference the same row long after a refresh window: the row was
	// refreshed away and the access also waits out tRFC.
	late := d1 + c.TRefi + sim.Microsecond
	d2 := m.Access(late, uint64(c.Channels)*uint64(c.LineBytes), false)
	want := c.TRfc + c.TRCD + c.TCL + c.TBurst
	if got := d2 - late; got != want {
		t.Fatalf("post-refresh latency = %v want %v", got, want)
	}
	s := m.Stats()
	if s.Refreshes == 0 {
		t.Fatal("refresh windows must be settled")
	}
	if s.RowHits != 0 {
		t.Fatal("refreshed row must not hit")
	}
}

func TestAddressMappings(t *testing.T) {
	if RoRaBaCoCh.String() != "RoRaBaCoCh" || RoCoRaBaCh.String() != "RoCoRaBaCh" {
		t.Fatal("mapping names")
	}
	// Under RoCoRaBaCh consecutive same-channel lines rotate banks, so a
	// sequential sweep of 16 lines in one channel touches many banks;
	// under RoRaBaCoCh they stay in one bank's row.
	countBanks := func(mapping AddressMapping) int {
		c := cfgNoTimeout()
		c.Mapping = mapping
		m := New(c)
		seen := map[int]bool{}
		for i := 0; i < 16; i++ {
			addr := uint64(i) * uint64(c.LineBytes) * uint64(c.Channels) // same channel
			b, _ := m.route(addr)
			seen[b] = true
		}
		return len(seen)
	}
	if got := countBanks(RoRaBaCoCh); got != 1 {
		t.Fatalf("RoRaBaCoCh banks = %d want 1", got)
	}
	if got := countBanks(RoCoRaBaCh); got != 8 {
		t.Fatalf("RoCoRaBaCh banks = %d want 8", got)
	}
}

func TestMappingAffectsRowLocality(t *testing.T) {
	// A 4KB-strided sweep: under RoRaBaCoCh every access opens a fresh row
	// (banks rotate but each bank's row advances per visit); under
	// RoCoRaBaCh eight consecutive strides land in one row of one bank.
	run := func(mapping AddressMapping) float64 {
		c := cfgNoTimeout()
		c.Mapping = mapping
		m := New(c)
		now := sim.Time(0)
		for i := 0; i < 64; i++ {
			d := m.Access(now, uint64(i)*4096, false)
			if d > now {
				now = d
			}
		}
		return m.Stats().RowHitRate()
	}
	seq, il := run(RoRaBaCoCh), run(RoCoRaBaCh)
	if seq > 0.05 {
		t.Fatalf("RoRaBaCoCh strided sweep should miss rows, hit rate %.2f", seq)
	}
	if il < 0.8 {
		t.Fatalf("RoCoRaBaCh strided sweep should mostly hit, hit rate %.2f", il)
	}
}
