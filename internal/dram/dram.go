// Package dram implements a transaction-level LPDDR3 memory model after the
// paper's Table 2 configuration (2 channels, 1 rank/channel, 8 banks/rank,
// 800 MHz I/O clock, tCL/tRP/tRCD = 12/18/18 ns, RoRaBaCoCh mapping).
//
// The model tracks per-bank row-buffer state (open-page policy with a
// starvation timeout), so the effect the paper's Racing scheme exploits —
// tightly spaced sequential requests ride one row activation, while slowly
// spaced requests lose the row to interleaved traffic or timeout and pay
// extra Activate/Precharge pairs (Fig 5a) — emerges from the access streams
// rather than being asserted.
//
// Energy is split the way the paper reports it (Fig 5b, Fig 11): background,
// activate/precharge, and read/write burst energy.
package dram

import (
	"fmt"

	"mach/internal/energy"
	"mach/internal/power"
	"mach/internal/sim"
)

// Bytes is a size in bytes — rows, lines, transfer extents. It is a named
// unit type (DESIGN.md "machlint v2: unit types"), distinct from the plain
// uint64 physical addresses it offsets: adding Bytes to an address is
// meaningful, adding an address to an address is not, and the unitflow
// analyzer keeps derived locals honest. The underlying uint64 is unchanged.
type Bytes uint64

// Config describes one LPDDR3 device pool.
type Config struct {
	Channels        int
	RanksPerChannel int
	BanksPerRank    int
	RowBytes        Bytes // row-buffer (page) size per bank
	LineBytes       Bytes // transaction granularity (one 64B burst)

	TRCD   sim.Time // activate -> column command
	TRP    sim.Time // precharge duration
	TCL    sim.Time // column command -> first data
	TBurst sim.Time // data transfer time for one line

	// RowOpenTimeout is the maximum time a row may stay open without being
	// re-referenced before the controller precharges it to avoid starving
	// requests to other rows (§3.2). Zero disables the timeout.
	RowOpenTimeout sim.Time

	// MaxQueueDelay bounds how long one transaction can queue behind a
	// bank's earlier transactions. The model is transaction-level and the
	// IPs issue their streams slightly out of chronological order; without
	// a bound, a posted future-timestamped access would serialize every
	// logically concurrent request behind it. The bound approximates a
	// finite per-bank queue with out-of-order service. Zero disables
	// queueing entirely.
	MaxQueueDelay sim.Time

	// Mapping selects the physical address decomposition.
	Mapping AddressMapping

	// Refresh: every TRefi each bank pays a TRfc stall and loses its open
	// row. LPDDR3's base interval is 3.9 us, but controllers postpone up
	// to 8 refreshes (JEDEC) and issue them in bursts, so the default
	// window is 8 x 3.9 us with the energy of the whole burst. Zero TRefi
	// disables refresh.
	TRefi sim.Time
	TRfc  sim.Time
	// EnergyRefresh is charged per settled refresh window per bank.
	EnergyRefresh energy.Joules

	// Energy model (joules per operation, watts for background).
	EnergyActPre    energy.Joules // one activate+precharge pair
	EnergyReadLine  energy.Joules // one line read burst
	EnergyWriteLine energy.Joules // one line write burst
	BackgroundPower power.Watts   // standby + refresh, whole pool
}

// DefaultConfig returns the Table 2 configuration. The per-operation energies
// are calibrated so that, at the experiments' default simulation resolution,
// the baseline energy breakdown matches the paper's measured shares (memory
// ≈46% of energy, split ≈46% Act/Pre vs ≈13% burst of the video-path energy);
// see EXPERIMENTS.md for the calibration note.
func DefaultConfig() Config {
	return Config{
		Channels:        2,
		RanksPerChannel: 1,
		BanksPerRank:    8,
		RowBytes:        2048,
		LineBytes:       64,
		TRCD:            sim.FromNanoseconds(18),
		TRP:             sim.FromNanoseconds(18),
		TCL:             sim.FromNanoseconds(12),
		TBurst:          sim.FromNanoseconds(10), // 64B at 6.4 GB/s per channel
		RowOpenTimeout:  sim.FromNanoseconds(12000),
		MaxQueueDelay:   sim.FromNanoseconds(300),
		Mapping:         RoRaBaCoCh,
		TRefi:           sim.FromNanoseconds(8 * 3900),
		TRfc:            sim.FromNanoseconds(8 * 130),
		EnergyRefresh:   8 * 18e-9,
		EnergyActPre:    1.35e-6,
		EnergyReadLine:  180e-9,
		EnergyWriteLine: 190e-9,
		BackgroundPower: 0.080,
	}
}

// Validate reports a descriptive error for malformed configurations.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0 || c.RanksPerChannel <= 0 || c.BanksPerRank <= 0:
		return fmt.Errorf("dram: non-positive topology %d/%d/%d", c.Channels, c.RanksPerChannel, c.BanksPerRank)
	case c.RowBytes == 0 || c.LineBytes == 0 || c.RowBytes%c.LineBytes != 0:
		return fmt.Errorf("dram: row %dB not a multiple of line %dB", c.RowBytes, c.LineBytes)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("dram: line size %d not a power of two", c.LineBytes)
	case c.Channels&(c.Channels-1) != 0:
		return fmt.Errorf("dram: channel count %d not a power of two", c.Channels)
	case c.TRCD <= 0 || c.TRP <= 0 || c.TCL <= 0 || c.TBurst <= 0:
		return fmt.Errorf("dram: non-positive timing")
	}
	return nil
}

// Stats aggregates command and event counts.
type Stats struct {
	Reads      int64 // line reads
	Writes     int64 // line writes
	Activates  int64
	Precharges int64
	RowHits    int64
	RowMisses  int64 // conflict: open row differs
	RowClosed  int64 // miss to a closed (precharged/timed-out) bank
	TimeoutPre int64 // precharges caused by the open-row timeout
	Refreshes  int64 // per-bank refresh windows settled
}

// Accesses returns total line transactions.
func (s Stats) Accesses() int64 { return s.Reads + s.Writes }

// RowHitRate returns the fraction of accesses that hit an open row.
func (s Stats) RowHitRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(a)
}

// Energy is the accumulated energy split, in joules.
type Energy struct {
	ActPre     energy.Joules
	Burst      energy.Joules
	Background energy.Joules
}

// Total returns the sum of all components.
func (e Energy) Total() energy.Joules { return e.ActPre + e.Burst + e.Background }

type bank struct {
	openRow     int64 // -1 when precharged
	freeAt      sim.Time
	lastUsed    sim.Time
	refreshedAt sim.Time // start of the current tREFI window
}

// Memory is the simulated device pool. It is not safe for concurrent use;
// the discrete-event engine serializes callers.
type Memory struct {
	cfg   Config
	banks []bank

	stats  Stats
	energy Energy

	bgFrom sim.Time // background energy accounted up to here

	linesPerRow uint64
	rowsPerBank uint64
}

// New constructs a memory pool; it panics on invalid configuration (a
// construction-time programming error, matching the cache package).
func New(cfg Config) *Memory {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.Channels * cfg.RanksPerChannel * cfg.BanksPerRank
	m := &Memory{
		cfg:         cfg,
		banks:       make([]bank, n),
		linesPerRow: uint64(cfg.RowBytes / cfg.LineBytes),
		rowsPerBank: 1 << 20, // plenty; rows wrap by masking
	}
	for i := range m.banks {
		m.banks[i].openRow = -1
	}
	return m
}

// Config returns the construction configuration.
func (m *Memory) Config() Config { return m.cfg }

// Stats returns the counters accumulated so far.
func (m *Memory) Stats() Stats { return m.stats }

// AddressMapping selects how physical addresses decompose into channel,
// bank, and row (DRAMSim2-style mapping strings, MSB first).
type AddressMapping int

const (
	// RoRaBaCoCh (Table 2): channel interleaved at line granularity,
	// column bits next, then bank, rank, row — consecutive lines alternate
	// channels and sweep a row before changing banks.
	RoRaBaCoCh AddressMapping = iota
	// RoCoRaBaCh: bank interleaved right above the channel bits —
	// consecutive row-sized regions rotate banks, so a linear sweep
	// spreads across banks at row granularity.
	RoCoRaBaCh
)

func (a AddressMapping) String() string {
	switch a {
	case RoRaBaCoCh:
		return "RoRaBaCoCh"
	case RoCoRaBaCh:
		return "RoCoRaBaCh"
	default:
		return fmt.Sprintf("AddressMapping(%d)", int(a))
	}
}

// route decomposes a physical address under the configured mapping.
func (m *Memory) route(addr uint64) (bankIdx int, row int64) {
	line := addr / uint64(m.cfg.LineBytes)
	ch := line % uint64(m.cfg.Channels)
	line /= uint64(m.cfg.Channels)
	var bk, rk uint64
	switch m.cfg.Mapping {
	case RoCoRaBaCh:
		bk = line % uint64(m.cfg.BanksPerRank)
		line /= uint64(m.cfg.BanksPerRank)
		rk = line % uint64(m.cfg.RanksPerChannel)
		line /= uint64(m.cfg.RanksPerChannel)
		line /= m.linesPerRow // drop column bits
	default: // RoRaBaCoCh
		line /= m.linesPerRow // drop column bits
		bk = line % uint64(m.cfg.BanksPerRank)
		line /= uint64(m.cfg.BanksPerRank)
		rk = line % uint64(m.cfg.RanksPerChannel)
		line /= uint64(m.cfg.RanksPerChannel)
	}
	row = int64(line % m.rowsPerBank)
	bankIdx = int(ch)*m.cfg.RanksPerChannel*m.cfg.BanksPerRank +
		int(rk)*m.cfg.BanksPerRank + int(bk)
	return bankIdx, row
}

// Access performs one line transaction at virtual time now and returns the
// completion time. The returned latency already includes queueing behind the
// bank's previous transaction.
//
//lint:hotpath issued for every line transaction of every frame; the innermost loop of the memory model
func (m *Memory) Access(now sim.Time, addr uint64, write bool) sim.Time {
	bi, row := m.route(addr)
	b := &m.banks[bi]

	start := now
	if b.freeAt > start {
		start = b.freeAt
		if m.cfg.MaxQueueDelay > 0 && start > now+m.cfg.MaxQueueDelay {
			start = now + m.cfg.MaxQueueDelay
		}
	}

	// Refresh: each elapsed tREFI window costs one tRFC stall and closes
	// the open row. Elapsed windows are settled lazily on the next access.
	if m.cfg.TRefi > 0 && start > b.refreshedAt+m.cfg.TRefi {
		elapsed := int64((start - b.refreshedAt) / m.cfg.TRefi)
		b.refreshedAt += sim.Time(elapsed * int64(m.cfg.TRefi))
		m.stats.Refreshes += elapsed
		m.energy.Background += m.cfg.EnergyRefresh * energy.Joules(elapsed)
		if b.openRow >= 0 {
			b.openRow = -1
			m.stats.Precharges++
			m.energy.ActPre += m.cfg.EnergyActPre / 2
		}
		start += m.cfg.TRfc // the access waits out the in-progress refresh
	}

	// Row-open timeout: the controller precharged the row in the background
	// if it sat unreferenced for longer than the starvation bound.
	if b.openRow >= 0 && m.cfg.RowOpenTimeout > 0 && start-b.lastUsed > m.cfg.RowOpenTimeout {
		b.openRow = -1
		m.stats.Precharges++
		m.stats.TimeoutPre++
		m.energy.ActPre += m.cfg.EnergyActPre / 2 // precharge half of the pair
	}

	var ready sim.Time
	switch {
	case b.openRow == row:
		m.stats.RowHits++
		ready = start + m.cfg.TCL
	case b.openRow < 0:
		m.stats.RowClosed++
		m.stats.Activates++
		m.energy.ActPre += m.cfg.EnergyActPre / 2 // activate half of the pair
		ready = start + m.cfg.TRCD + m.cfg.TCL
		b.openRow = row
	default:
		m.stats.RowMisses++
		m.stats.Precharges++
		m.stats.Activates++
		m.energy.ActPre += m.cfg.EnergyActPre
		ready = start + m.cfg.TRP + m.cfg.TRCD + m.cfg.TCL
		b.openRow = row
	}

	done := ready + m.cfg.TBurst
	b.freeAt = done
	b.lastUsed = done

	if write {
		m.stats.Writes++
		m.energy.Burst += m.cfg.EnergyWriteLine
	} else {
		m.stats.Reads++
		m.energy.Burst += m.cfg.EnergyReadLine
	}
	return done
}

// AccessRange issues one transaction per line overlapped by [addr, addr+size)
// and returns the completion time of the last one along with the number of
// line transactions issued.
func (m *Memory) AccessRange(now sim.Time, addr, size uint64, write bool) (done sim.Time, lines int) {
	if size == 0 {
		return now, 0
	}
	lineBytes := uint64(m.cfg.LineBytes)
	first := addr &^ (lineBytes - 1)
	last := (addr + size - 1) &^ (lineBytes - 1)
	done = now
	for a := first; a <= last; a += lineBytes {
		d := m.Access(now, a, write)
		if d > done {
			done = d
		}
		lines++
	}
	return done, lines
}

// AccrueBackground charges background power up to time now. Callers invoke it
// once at the end of a simulation (or periodically; charging is idempotent
// over disjoint intervals).
func (m *Memory) AccrueBackground(now sim.Time) {
	if now <= m.bgFrom {
		return
	}
	m.energy.Background += m.cfg.BackgroundPower.Over(now - m.bgFrom)
	m.bgFrom = now
}

// EnergySnapshot returns the energy split accumulated so far. Background is
// only up to date after AccrueBackground.
func (m *Memory) EnergySnapshot() Energy { return m.energy }

// BankState is the serializable mirror of one bank's row-buffer state.
type BankState struct {
	OpenRow     int64
	FreeAt      sim.Time
	LastUsed    sim.Time
	RefreshedAt sim.Time
}

// State is the full serializable memory state: per-bank row buffers, the
// command counters, the energy split, and the background-accrual cursor.
type State struct {
	Banks  []BankState
	Stats  Stats
	Energy Energy
	BgFrom sim.Time
}

// Snapshot returns a copy of the pool's mutable state.
func (m *Memory) Snapshot() State {
	st := State{
		Banks:  make([]BankState, len(m.banks)),
		Stats:  m.stats,
		Energy: m.energy,
		BgFrom: m.bgFrom,
	}
	for i, b := range m.banks {
		st.Banks[i] = BankState{OpenRow: b.openRow, FreeAt: b.freeAt, LastUsed: b.lastUsed, RefreshedAt: b.refreshedAt}
	}
	return st
}

// Restore overwrites the pool's mutable state from a snapshot taken on an
// identically configured pool; a bank-count mismatch is rejected.
func (m *Memory) Restore(st State) error {
	if len(st.Banks) != len(m.banks) {
		return fmt.Errorf("dram: snapshot has %d banks, pool has %d", len(st.Banks), len(m.banks))
	}
	for i, b := range st.Banks {
		m.banks[i] = bank{openRow: b.OpenRow, freeAt: b.FreeAt, lastUsed: b.LastUsed, refreshedAt: b.RefreshedAt}
	}
	m.stats = st.Stats
	m.energy = st.Energy
	m.bgFrom = st.BgFrom
	return nil
}

// ResetStats clears counters and energy but keeps bank state, so steady-state
// measurement windows can exclude warm-up.
func (m *Memory) ResetStats(now sim.Time) {
	m.stats = Stats{}
	m.energy = Energy{}
	m.bgFrom = now
}
