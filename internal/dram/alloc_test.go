package dram

import (
	"testing"

	"mach/internal/sim"
)

// Access is issued for every line transaction of every frame — the
// innermost loop of the memory model — and must never allocate: bank state
// lives in a fixed slice sized at construction.
func TestAccessDoesNotAllocate(t *testing.T) {
	m := New(DefaultConfig())

	var now sim.Time
	addr := uint64(0)
	allocs := testing.AllocsPerRun(500, func() {
		now = m.Access(now, addr, addr%3 == 0)
		addr += 64
	})
	if allocs != 0 {
		t.Fatalf("Access allocated %.2f times per op, want 0", allocs)
	}
}
