package decoder

import (
	"testing"

	"mach/internal/codec"
	"mach/internal/dram"
	"mach/internal/framebuf"
	"mach/internal/sim"
)

func testMem() *dram.Memory { return dram.New(dram.DefaultConfig()) }

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.FreqHigh = bad.FreqLow / 2
	if bad.Validate() == nil {
		t.Fatal("high < low frequency should fail")
	}
	bad = DefaultConfig()
	bad.PowerLow = 0
	if bad.Validate() == nil {
		t.Fatal("zero power should fail")
	}
	bad = DefaultConfig()
	bad.CyclesPerBit = -1
	if bad.Validate() == nil {
		t.Fatal("negative cycles should fail")
	}
}

func TestFreqPowerSelection(t *testing.T) {
	c := DefaultConfig()
	if c.Freq(false) != c.FreqLow || c.Freq(true) != c.FreqHigh {
		t.Fatal("freq selection")
	}
	if c.Power(false) != c.PowerLow || c.Power(true) != c.PowerHigh {
		t.Fatal("power selection")
	}
}

// flatWork builds a synthetic frame work of n mabs with the given per-mab
// bits/coefficients.
func flatWork(nMabs int, mt codec.MabType, bits int32, nz int16) *codec.FrameWork {
	w := &codec.FrameWork{Type: codec.FrameI, Mabs: make([]codec.MabWork, nMabs)}
	for i := range w.Mabs {
		w.Mabs[i] = codec.MabWork{Type: mt, Bits: bits, Nonzero: nz}
		w.TotalBits += int64(bits)
	}
	return w
}

// rawWriteback returns a writeback hook that produces a raw layout and
// issues the frame's content lines through the sink.
func rawWriteback(nMabs, mabBytes int) func(func(uint64, int, int)) *framebuf.FrameLayout {
	return func(sink func(uint64, int, int)) *framebuf.FrameLayout {
		l := &framebuf.FrameLayout{
			Kind:       framebuf.LayoutRaw,
			MabBytes:   mabBytes,
			BufferBase: framebuf.RegionFrameBuffers,
		}
		for i := 0; i < nMabs; i++ {
			l.Records = append(l.Records, framebuf.MabRecord{
				Kind: framebuf.RecFull,
				Ptr:  l.BufferBase + uint64(i*mabBytes),
			})
		}
		total := nMabs * mabBytes
		for off := 0; off < total; off += 64 {
			sink(l.BufferBase+uint64(off), 64, i64min(i64(off/mabBytes), i64(nMabs-1)))
		}
		l.ContentBytes = uint64(total)
		return l
	}
}

func i64(v int) int { return v }
func i64min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestDecodeFrameTiming(t *testing.T) {
	ip := New(DefaultConfig(), testMem())
	work := flatWork(100, codec.MabI, 100, 8)
	_, res := ip.DecodeFrame(0, work, false, 1, framebuf.RegionEncoded, 1000, rawWriteback(100, 48), 10, 10, 4)
	if res.BusyTime <= 0 || res.Done != res.Start+res.BusyTime {
		t.Fatalf("timing: %+v", res)
	}
	// Expected compute cycles: (base + bits*perBit + nz*perCoef + intra) per mab.
	cfg := DefaultConfig()
	perMab := cfg.CyclesPerMabBase + sim.Cycles(cfg.CyclesPerBit*100) + cfg.CyclesPerCoef*8 + cfg.CyclesIntra
	wantCompute := cfg.FreqLow.Cycles(perMab * 100)
	if res.BusyTime < wantCompute {
		t.Fatalf("busy %v below pure compute %v", res.BusyTime, wantCompute)
	}
	if ip.Stats().Frames != 1 || ip.Stats().Mabs != 100 {
		t.Fatalf("stats: %+v", ip.Stats())
	}
}

func TestRacingIsFaster(t *testing.T) {
	work := flatWork(200, codec.MabI, 200, 10)
	lo := New(DefaultConfig(), testMem())
	_, rLo := lo.DecodeFrame(0, work, false, 1, framebuf.RegionEncoded, 2000, rawWriteback(200, 48), 20, 10, 4)
	hi := New(DefaultConfig(), testMem())
	_, rHi := hi.DecodeFrame(0, work, true, 1, framebuf.RegionEncoded, 2000, rawWriteback(200, 48), 20, 10, 4)
	if rHi.BusyTime >= rLo.BusyTime {
		t.Fatalf("racing busy %v should be < low %v", rHi.BusyTime, rLo.BusyTime)
	}
	// Energy at high frequency is higher per unit time but the time halves;
	// for pure compute the cubic-ish power ratio (2.3x) wins over the 2x
	// speedup, so active energy goes up.
	if rHi.ActiveEnergy <= rLo.ActiveEnergy {
		t.Fatalf("racing energy %g should exceed low %g", rHi.ActiveEnergy, rLo.ActiveEnergy)
	}
}

func TestReferenceFetchesStallAndCache(t *testing.T) {
	mem := testMem()
	ip := New(DefaultConfig(), mem)

	// Register a raw reference layout.
	ref := &framebuf.FrameLayout{
		Kind:         framebuf.LayoutRaw,
		DisplayIndex: 0,
		MabBytes:     48,
		BufferBase:   framebuf.RegionFrameBuffers,
	}
	for i := 0; i < 100; i++ {
		ref.Records = append(ref.Records, framebuf.MabRecord{Kind: framebuf.RecFull, Ptr: ref.BufferBase + uint64(i*48)})
	}
	ip.RegisterLayout(ref, codec.FrameI)

	// A P frame with zero MVs reads the co-located reference mabs.
	work := flatWork(100, codec.MabP, 50, 4)
	work.Type = codec.FrameP
	_, res := ip.DecodeFrame(0, work, false, 1, framebuf.RegionEncoded, 500, rawWriteback(100, 48), 10, 10, 4)
	s := ip.Stats()
	if s.RefReads == 0 {
		t.Fatal("P mabs must fetch references")
	}
	if s.RefHits == 0 {
		t.Fatal("sequential reference reads should hit the decode cache sometimes")
	}
	if res.StallTime <= 0 {
		t.Fatal("reference misses must stall")
	}
	// Second identical frame: references are now cached, fewer stalls.
	before := s
	_, res2 := ip.DecodeFrame(res.Done, work, false, 1, framebuf.RegionEncoded, 500, rawWriteback(100, 48), 10, 10, 4)
	after := ip.Stats()
	newHits := after.RefHits - before.RefHits
	newReads := after.RefReads - before.RefReads
	if float64(newHits)/float64(newReads) <= float64(before.RefHits)/float64(before.RefReads) {
		t.Logf("warm hit rate %.2f vs cold %.2f", float64(newHits)/float64(newReads), float64(before.RefHits)/float64(before.RefReads))
	}
	if res2.BusyTime > res.BusyTime {
		t.Fatalf("warm decode %v should not exceed cold %v", res2.BusyTime, res.BusyTime)
	}
}

func TestRetireLayout(t *testing.T) {
	ip := New(DefaultConfig(), testMem())
	l := &framebuf.FrameLayout{Kind: framebuf.LayoutRaw, DisplayIndex: 7, MabBytes: 48}
	ip.RegisterLayout(l, codec.FrameP)
	if ip.layouts[7] == nil {
		t.Fatal("layout not registered")
	}
	ip.RetireLayout(7)
	if ip.layouts[7] != nil {
		t.Fatal("layout not retired")
	}
}

func TestAnchorTracking(t *testing.T) {
	ip := New(DefaultConfig(), testMem())
	a := &framebuf.FrameLayout{DisplayIndex: 0}
	b := &framebuf.FrameLayout{DisplayIndex: 2}
	c := &framebuf.FrameLayout{DisplayIndex: 1}
	ip.RegisterLayout(a, codec.FrameI)
	ip.RegisterLayout(b, codec.FrameP)
	ip.RegisterLayout(c, codec.FrameB) // B frames do not shift anchors
	if ip.olderAnchor != 0 || ip.newerAnchor != 2 {
		t.Fatalf("anchors = %d/%d", ip.olderAnchor, ip.newerAnchor)
	}
}

func TestWritebackPostsLines(t *testing.T) {
	mem := testMem()
	ip := New(DefaultConfig(), mem)
	work := flatWork(64, codec.MabI, 10, 0)
	ip.DecodeFrame(0, work, false, 1, framebuf.RegionEncoded, 100, rawWriteback(64, 48), 8, 8, 4)
	if ip.Stats().WriteLns == 0 {
		t.Fatal("writeback must post line writes")
	}
	if mem.Stats().Writes == 0 {
		t.Fatal("writes must reach DRAM")
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{7, 4, 1}, {-1, 4, -1}, {-4, 4, -1}, {-5, 4, -2}, {0, 4, 0},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestBitstreamReadsPosted(t *testing.T) {
	mem := testMem()
	ip := New(DefaultConfig(), mem)
	work := flatWork(64, codec.MabI, 512, 0) // 64*512 bits = 4KB of bitstream
	ip.DecodeFrame(0, work, false, 1, framebuf.RegionEncoded, 4096, rawWriteback(64, 48), 8, 8, 4)
	if ip.Stats().BitReads != 64 { // 4096/64
		t.Fatalf("bit reads = %d", ip.Stats().BitReads)
	}
	_ = sim.Time(0)
}

func TestWorkScaleCheapensDecode(t *testing.T) {
	work := flatWork(200, codec.MabI, 200, 10)
	full := New(DefaultConfig(), testMem())
	_, rFull := full.DecodeFrame(0, work, false, 1, framebuf.RegionEncoded, 2000, rawWriteback(200, 48), 20, 10, 4)
	half := New(DefaultConfig(), testMem())
	_, rHalf := half.DecodeFrame(0, work, false, 0.5, framebuf.RegionEncoded, 2000, rawWriteback(200, 48), 20, 10, 4)
	if rHalf.BusyTime >= rFull.BusyTime {
		t.Fatalf("scaled decode busy %v should be < native %v", rHalf.BusyTime, rFull.BusyTime)
	}
	if rHalf.ActiveEnergy >= rFull.ActiveEnergy {
		t.Fatalf("scaled decode energy %g should be < native %g", rHalf.ActiveEnergy, rFull.ActiveEnergy)
	}

	// The scale is monotone: cheaper rungs never cost more cycles.
	prev := sim.Time(0)
	for _, scale := range []float64{0.25, 0.5, 0.75, 1} {
		ip := New(DefaultConfig(), testMem())
		_, res := ip.DecodeFrame(0, work, false, scale, framebuf.RegionEncoded, 2000, rawWriteback(200, 48), 20, 10, 4)
		if res.BusyTime < prev {
			t.Fatalf("scale %g busy %v below a cheaper rung's %v", scale, res.BusyTime, prev)
		}
		prev = res.BusyTime
	}
}

func TestWorkScaleBounds(t *testing.T) {
	work := flatWork(4, codec.MabI, 10, 1)
	for _, bad := range []float64{0, -1, 1.5, nanF()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("work scale %g: no panic", bad)
				}
			}()
			ip := New(DefaultConfig(), testMem())
			ip.DecodeFrame(0, work, false, bad, framebuf.RegionEncoded, 100, rawWriteback(4, 48), 2, 2, 4)
		}()
	}
}

func nanF() float64 {
	z := 0.0
	return z / z
}
