// Package decoder models the hardware video decoder IP: a mab-granularity
// pipeline (entropy decode, inverse transform, prediction, reconstruction)
// with an internal decode cache for reference fetches, DVFS between a low
// and a high frequency point (§3.2 Racing), and a writeback stage that is
// either the baseline raw stream or the MACH content-cache engine (§4).
//
// The model is transaction-level: it converts the per-mab work records of a
// decode trace into cycles, issues the frame's memory traffic into the DRAM
// model at paced virtual times, and reports per-frame decode latency and
// active energy. Reference-block reads block the pipeline (their latency is
// decode stall time); bitstream reads and writebacks are posted.
package decoder

import (
	"fmt"

	"mach/internal/cache"
	"mach/internal/codec"
	"mach/internal/dram"
	"mach/internal/energy"
	"mach/internal/framebuf"
	"mach/internal/power"
	"mach/internal/sim"
)

// Config describes the decoder IP.
type Config struct {
	FreqLow   sim.Hertz // baseline DVFS point (paper: 150 MHz, 0.30 W)
	FreqHigh  sim.Hertz // racing DVFS point (paper: 300 MHz, 0.69 W)
	PowerLow  power.Watts
	PowerHigh power.Watts

	// Decode cache servicing reference-block and layout-metadata reads.
	CacheBytes int
	CacheWays  int
	LineBytes  int

	// Cycle-cost model per mab (calibrated so the baseline frame-time
	// distribution reproduces the paper's Regions I-IV; see EXPERIMENTS.md).
	CyclesPerMabBase sim.Cycles // fixed pipeline overhead per mab
	CyclesPerBit     float64    // entropy decoding, cycles per bit
	CyclesPerCoef    sim.Cycles // inverse transform per nonzero coefficient
	CyclesIntra      sim.Cycles // intra prediction
	CyclesMC         sim.Cycles // motion compensation per reference fetch

	// WritebackThroughCache routes frame writeback through the decode
	// cache (the Fig 7a experiment showing streaming writes do not cache).
	WritebackThroughCache bool
}

// DefaultConfig returns the Table 2 decoder: 150/300 MHz at 0.30/0.69 W with
// a 32KB 4-way decode cache.
func DefaultConfig() Config {
	return Config{
		FreqLow:          150 * sim.MHz,
		FreqHigh:         300 * sim.MHz,
		PowerLow:         0.30,
		PowerHigh:        0.69,
		CacheBytes:       32 * 1024,
		CacheWays:        4,
		LineBytes:        64,
		CyclesPerMabBase: 126,
		CyclesPerBit:     1.15,
		CyclesPerCoef:    6,
		CyclesIntra:      82,
		CyclesMC:         66,
	}
}

// Validate reports malformed configurations.
func (c Config) Validate() error {
	switch {
	case c.FreqLow <= 0 || c.FreqHigh < c.FreqLow:
		return fmt.Errorf("decoder: want 0 < low <= high frequency, got %v/%v", c.FreqLow, c.FreqHigh)
	case c.PowerLow <= 0 || c.PowerHigh < c.PowerLow:
		return fmt.Errorf("decoder: want 0 < low <= high power, got %g/%g", c.PowerLow, c.PowerHigh)
	case c.CacheBytes <= 0 || c.CacheWays <= 0 || c.LineBytes <= 0:
		return fmt.Errorf("decoder: bad cache shape")
	case c.CyclesPerMabBase < 0 || c.CyclesPerBit < 0 || c.CyclesPerCoef < 0 || c.CyclesIntra < 0 || c.CyclesMC < 0:
		return fmt.Errorf("decoder: negative cycle costs")
	}
	return nil
}

// Freq returns the operating frequency for the racing flag.
func (c Config) Freq(race bool) sim.Hertz {
	if race {
		return c.FreqHigh
	}
	return c.FreqLow
}

// Power returns the active power for the racing flag.
func (c Config) Power(race bool) power.Watts {
	if race {
		return c.PowerHigh
	}
	return c.PowerLow
}

// Stats aggregates decoder behaviour across frames.
type Stats struct {
	Frames        int64
	Mabs          int64
	ComputeCycles sim.Cycles
	StallTime     sim.Time
	BusyTime      sim.Time
	ActiveEnergy  energy.Joules // at the P-state power

	RefReads  int64 // reference-block line reads requested
	RefHits   int64 // served by the decode cache
	MetaReads int64 // layout-metadata line reads for references
	BitReads  int64 // bitstream line reads (posted)
	WriteLns  int64 // writeback line writes (posted)

	// Writeback-through-cache counters (the Fig 7a experiment).
	WbCacheAccesses int64
	WbCacheHits     int64
}

// WbHitRate returns the decode-cache hit rate on the writeback path when
// WritebackThroughCache is enabled.
func (s Stats) WbHitRate() float64 {
	if s.WbCacheAccesses == 0 {
		return 0
	}
	return float64(s.WbCacheHits) / float64(s.WbCacheAccesses)
}

// RefHitRate returns the decode-cache hit rate on the reference path.
func (s Stats) RefHitRate() float64 {
	if s.RefReads == 0 {
		return 0
	}
	return float64(s.RefHits) / float64(s.RefReads)
}

// FrameResult reports one frame's decode.
type FrameResult struct {
	Start, Done  sim.Time
	BusyTime     sim.Time
	StallTime    sim.Time
	ActiveEnergy energy.Joules
	LineWrites   int64
}

// pendingWrite is one writeback line queued during a frame's decode, drained
// onto the DRAM timeline after the mab retirement times are known.
type pendingWrite struct {
	addr uint64
	size int
	ord  int
}

// IP is the decoder instance. It retains the memory layouts of recently
// decoded frames so motion compensation can resolve reference addresses.
type IP struct {
	cfg   Config
	mem   *dram.Memory
	cache *cache.SetAssoc
	stats Stats

	// Reference layouts by display index, retired by the pipeline.
	layouts map[int]*framebuf.FrameLayout
	// Anchor tracking mirrors codec.Decoder's reference rule.
	olderAnchor, newerAnchor int

	// Per-frame scratch, reused across DecodeFrame calls so the steady-state
	// decode loop allocates nothing. All of it is dead between frames.
	//lint:derived per-frame mab retirement times, fully rewritten each DecodeFrame
	mabDone []sim.Time
	//lint:derived per-frame queued writeback lines, reset each DecodeFrame
	pending []pendingWrite
	//lint:derived per-fetch reference address lists, reset on every refMabAddrs call
	metaScratch, contentScratch []uint64

	// Persistent hot-path closures, built once at construction so per-frame
	// calls do not capture fresh environments.
	sink    func(at sim.Time, addr uint64, size int)
	collect func(addr uint64, size int, mabOrdinal int)
}

// New builds a decoder IP against the given memory; it panics on invalid
// configuration.
func New(cfg Config, mem *dram.Memory) *IP {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	ip := &IP{
		cfg:         cfg,
		mem:         mem,
		cache:       cache.NewSetAssoc(cfg.CacheBytes, cfg.LineBytes, cfg.CacheWays),
		layouts:     make(map[int]*framebuf.FrameLayout),
		olderAnchor: -1,
		newerAnchor: -1,
	}
	ip.sink = ip.writeLine
	ip.collect = func(addr uint64, size int, mabOrdinal int) {
		ip.pending = append(ip.pending, pendingWrite{addr, size, mabOrdinal})
	}
	return ip
}

// Config returns the IP configuration.
func (ip *IP) Config() Config { return ip.cfg }

// Stats returns accumulated counters.
func (ip *IP) Stats() Stats { return ip.stats }

// CacheStats exposes the decode cache counters (Fig 7a).
func (ip *IP) CacheStats() cache.Stats { return ip.cache.Stats() }

// RegisterLayout records a decoded frame's memory layout for use as a
// reference by later frames. The pipeline calls it right after writeback.
func (ip *IP) RegisterLayout(l *framebuf.FrameLayout, frameType codec.FrameType) {
	ip.layouts[l.DisplayIndex] = l
	if frameType != codec.FrameB {
		ip.olderAnchor = ip.newerAnchor
		ip.newerAnchor = l.DisplayIndex
	}
}

// RetireLayout drops a reference layout the pipeline no longer needs.
func (ip *IP) RetireLayout(displayIndex int) {
	delete(ip.layouts, displayIndex)
}

// State is the serializable mirror of the IP's cross-frame state: counters,
// decode-cache contents, and the anchor pair. The reference-layout table is
// restored separately (the pipeline owns the layout objects and shares them
// with the IP by pointer).
type State struct {
	Stats       Stats
	Cache       cache.State
	OlderAnchor int
	NewerAnchor int
}

// Snapshot returns a copy of the IP's mutable state, excluding the layout
// table (see State).
func (ip *IP) Snapshot() State {
	return State{
		Stats:       ip.stats,
		Cache:       ip.cache.Snapshot(),
		OlderAnchor: ip.olderAnchor,
		NewerAnchor: ip.newerAnchor,
	}
}

// Restore overwrites the IP's mutable state from a snapshot taken on an
// identically configured IP. layouts becomes the IP's reference table; the
// caller passes the same layout objects it hands the display, preserving
// the pointer sharing the live pipeline has. The map is copied.
func (ip *IP) Restore(st State, layouts map[int]*framebuf.FrameLayout) error {
	if err := ip.cache.Restore(st.Cache); err != nil {
		return err
	}
	ip.stats = st.Stats
	ip.olderAnchor = st.OlderAnchor
	ip.newerAnchor = st.NewerAnchor
	ip.layouts = make(map[int]*framebuf.FrameLayout, len(layouts))
	for d, l := range layouts {
		ip.layouts[d] = l
	}
	return nil
}

// cachedRead routes one line read through the decode cache; on a miss the
// DRAM access latency is returned (the pipeline stalls for it).
func (ip *IP) cachedRead(now sim.Time, addr uint64) sim.Time {
	if ip.cache.Access(addr, false).Hit {
		return 0
	}
	done := ip.mem.Access(now, addr, false)
	if done < now {
		return 0
	}
	return done - now
}

// refMabAddrs collects the line addresses the decoder touches to fetch the
// reference block for a mab at (mabX, mabY) displaced by mv: the layout
// metadata line(s) plus the content line(s) of every overlapped source mab.
// The addresses land in ip.metaScratch/ip.contentScratch (reset here, valid
// until the next call), so the per-mab fetch path allocates nothing once the
// scratch has grown to the worst-case overlap.
func (ip *IP) refMabAddrs(l *framebuf.FrameLayout, mabX, mabY int, mv codec.MotionVector, mabSize, mabsPerRow, mabsPerCol int) (meta []uint64, content []uint64) {
	meta = ip.metaScratch[:0]
	content = ip.contentScratch[:0]
	x0 := mabX*mabSize + int(mv.DX)
	y0 := mabY*mabSize + int(mv.DY)
	firstMX, lastMX := floorDiv(x0, mabSize), floorDiv(x0+mabSize-1, mabSize)
	firstMY, lastMY := floorDiv(y0, mabSize), floorDiv(y0+mabSize-1, mabSize)
	for my := firstMY; my <= lastMY; my++ {
		cy := clampInt(my, 0, mabsPerCol-1)
		for mx := firstMX; mx <= lastMX; mx++ {
			cx := clampInt(mx, 0, mabsPerRow-1)
			idx := cy*mabsPerRow + cx
			rec := l.Records[idx]
			switch l.Kind {
			case framebuf.LayoutRaw:
				content = append(content, l.BufferBase+uint64(idx*l.MabBytes))
			default:
				meta = append(meta, l.MetaBase+uint64(idx*4))
				ptr := rec.Ptr
				if rec.Kind == framebuf.RecDigest {
					// The VD resolves digests in its on-chip frozen MACHs;
					// no memory access for the resolution itself, but the
					// content still has to be fetched from wherever the
					// matched copy lives.
					ptr = resolveDump(l, rec.Digest)
				}
				content = append(content, ptr)
			}
		}
	}
	ip.metaScratch, ip.contentScratch = meta, content
	return meta, content
}

// fetchRef performs the blocking reference-block fetch for one mab through
// the decode cache, returning the stall time added to the pipeline. It
// preserves the access order of the original slice-building path: all
// metadata lines first, then every content line in mab-walk order.
func (ip *IP) fetchRef(cur sim.Time, l *framebuf.FrameLayout, mabX, mabY int, mv codec.MotionVector, mabSize, mabsPerRow, mabsPerCol int) (stall sim.Time) {
	if l == nil {
		return 0
	}
	meta, content := ip.refMabAddrs(l, mabX, mabY, mv, mabSize, mabsPerRow, mabsPerCol)
	for _, a := range meta {
		ip.stats.MetaReads++
		stall += ip.cachedRead(cur, a)
	}
	blockBytes := uint64(mabSize * mabSize * codec.BytesPerPixel)
	lineBytes := uint64(ip.cfg.LineBytes)
	for _, a := range content {
		first, last, n := cache.LineSpan(a, blockBytes, lineBytes)
		for ln := first; n > 0 && ln <= last; ln += lineBytes {
			ip.stats.RefReads++
			d := ip.cachedRead(cur, ln)
			if d == 0 {
				ip.stats.RefHits++
			}
			stall += d
		}
	}
	return stall
}

// resolveDump finds the pointer for a digest in the frame's dump; entries
// are guaranteed present because a RecDigest was produced from a frozen
// MACH whose dump is retained with the layout.
func resolveDump(l *framebuf.FrameLayout, digest uint32) uint64 {
	for _, e := range l.Dump {
		if e.Digest == digest {
			return e.Ptr
		}
	}
	// Inter matches always point at an earlier frame; its dump entry may
	// have been produced by that earlier frame. Fall back to the buffer
	// base: the timing error is one line's worth of locality.
	return l.BufferBase
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// writeLine is the posted-write path: each line write lands in DRAM at the
// given virtual time, optionally routed through the decode cache. It is
// installed once as ip.sink so the per-frame drain loop needs no fresh
// closure.
func (ip *IP) writeLine(at sim.Time, addr uint64, size int) {
	ip.stats.WriteLns++
	if ip.cfg.WritebackThroughCache {
		ip.stats.WbCacheAccesses++
		res := ip.cache.Access(addr, true)
		if res.Hit {
			ip.stats.WbCacheHits++
			return
		}
		if res.Writeback {
			ip.mem.Access(at, res.WritebackAddr, true)
		}
	}
	ip.mem.Access(at, addr, true) // posted
}

// DecodeFrame runs the timing model for one frame starting at now.
//
//   - work: the trace's per-mab work records.
//   - race: operate at the high DVFS point.
//   - workScale: multiplies the per-mab cycle cost; 1 is the native stream,
//     lower values model the cheaper entropy/transform work of a reduced
//     ABR rung. The ==1 path is arithmetically untouched, so fixed-rung
//     runs are bit-identical to the pre-ABR decoder.
//   - encodedBase/encodedBytes: where the bitstream sits in memory.
//   - writeback: called per decoded mab region writeback via sink; the
//     pipeline passes the MACH engine's ProcessFrame through this hook so
//     write traffic is issued at decode-paced times.
func (ip *IP) DecodeFrame(
	now sim.Time,
	work *codec.FrameWork,
	race bool,
	workScale float64,
	encodedBase uint64,
	encodedBytes int,
	writeback func(sink func(addr uint64, size int, mabOrdinal int)) *framebuf.FrameLayout,
	mabsPerRow, mabsPerCol, mabSize int,
) (*framebuf.FrameLayout, FrameResult) {
	cfg := ip.cfg
	freq := cfg.Freq(race)
	if !(workScale > 0 && workScale <= 1) {
		panic(fmt.Sprintf("decoder: work scale %g outside (0,1]", workScale))
	}
	cur := now
	var stall sim.Time

	// Bitstream reads: posted, paced across the mab walk.
	bitLines := int64(0)
	if encodedBytes > 0 {
		bitLines = int64((encodedBytes + cfg.LineBytes - 1) / cfg.LineBytes)
	}
	bitCursor := encodedBase
	bitsPosted := int64(0)
	totalBits := work.TotalBits
	if totalBits == 0 {
		totalBits = 1
	}
	var bitsSeen int64

	backRef := ip.layouts[ip.newerAnchor]
	var fwdRef, bRef *framebuf.FrameLayout
	if work.Type == codec.FrameB {
		bRef = ip.layouts[ip.olderAnchor]
		fwdRef = ip.layouts[ip.newerAnchor]
	}

	var cycles sim.Cycles
	if cap(ip.mabDone) < len(work.Mabs)+1 {
		ip.mabDone = make([]sim.Time, len(work.Mabs)+1)
	}
	// Queued writeback lines: worst case every content line lands
	// uncoalesced (mabBytes/LineBytes lines plus a misalignment line per
	// mab), plus metadata — pointer bitmap, base table, and MACH dump
	// lines. Reserving the bound up front means the collect append never
	// grows mid-run, however the content of a late frame coalesces.
	mabBytes := mabSize * mabSize * codec.BytesPerPixel
	if worst := len(work.Mabs)*(mabBytes/cfg.LineBytes+2) + 512; cap(ip.pending) < worst {
		ip.pending = make([]pendingWrite, 0, worst)
	}
	mabDone := ip.mabDone[:len(work.Mabs)+1]
	mabDone[0] = 0
	for i := range work.Mabs {
		mw := &work.Mabs[i]
		ip.stats.Mabs++
		mabX := i % mabsPerRow
		mabY := i / mabsPerRow

		c := cfg.CyclesPerMabBase +
			sim.Cycles(cfg.CyclesPerBit*float64(mw.Bits)) +
			cfg.CyclesPerCoef*sim.Cycles(mw.Nonzero)
		switch mw.Type {
		case codec.MabI:
			c += cfg.CyclesIntra
		case codec.MabP:
			c += cfg.CyclesMC
		case codec.MabB:
			c += 2 * cfg.CyclesMC
		}
		//lint:ignore floateq exact sentinel: only the literal 1.0 skips the scaling multiply, keeping the native-quality path arithmetically untouched (golden bit-identity)
		if workScale != 1 {
			c = sim.Cycles(float64(c) * workScale)
		}
		cycles += c
		cur = now + freq.Cycles(cycles) + stall

		// Post bitstream line reads proportionally to bits consumed.
		bitsSeen += int64(mw.Bits)
		for wantLines := bitsSeen * bitLines / totalBits; bitsPosted < wantLines; bitsPosted++ {
			ip.mem.Access(cur, bitCursor, false)
			bitCursor += uint64(cfg.LineBytes)
			ip.stats.BitReads++
		}

		// Blocking reference fetches through the decode cache.
		switch mw.Type {
		case codec.MabP:
			stall += ip.fetchRef(cur, backRef, mabX, mabY, mw.MV, mabSize, mabsPerRow, mabsPerCol)
		case codec.MabB:
			stall += ip.fetchRef(cur, bRef, mabX, mabY, mw.MVB, mabSize, mabsPerRow, mabsPerCol)
			stall += ip.fetchRef(cur, fwdRef, mabX, mabY, mw.MVF, mabSize, mabsPerRow, mabsPerCol)
		}
		mabDone[i+1] = freq.Cycles(cycles) + stall
	}

	busy := freq.Cycles(cycles) + stall
	done := now + busy

	// Writeback runs overlapped with decode. Content lines drain at the
	// time the producing mab retired, so writes cluster where unique
	// content is produced and the gap structure follows real decode pace —
	// Racing halves every gap, which is what lets bursts reuse an open
	// DRAM row (Fig 5a). Metadata lines (pointers, bases, bitmap, dump)
	// drain from their coalescing buffers in bursts of 8 across the busy
	// window.
	ip.pending = ip.pending[:0]
	layout := writeback(ip.collect)
	pending := ip.pending
	if len(pending) > 0 {
		contentEnd := layout.BufferBase + uint64(len(layout.Records)*layout.MabBytes)
		sink := ip.sink
		metaCount := 0
		for _, pw := range pending {
			if pw.addr >= layout.BufferBase && pw.addr < contentEnd {
				ord := pw.ord
				if ord < 0 {
					ord = 0
				}
				if ord >= len(mabDone)-1 {
					ord = len(mabDone) - 2
				}
				sink(now+mabDone[ord+1], pw.addr, pw.size)
			} else {
				metaCount++
			}
		}
		i := 0
		for _, pw := range pending {
			if pw.addr >= layout.BufferBase && pw.addr < contentEnd {
				continue
			}
			at := now + sim.Time(int64(busy)*int64(i/8*8)/int64(metaCount))
			sink(at, pw.addr, pw.size)
			i++
		}
	}

	e := cfg.Power(race).Over(busy)
	ip.stats.Frames++
	ip.stats.ComputeCycles += cycles
	ip.stats.StallTime += stall
	ip.stats.BusyTime += busy
	ip.stats.ActiveEnergy += e

	return layout, FrameResult{
		Start:        now,
		Done:         done,
		BusyTime:     busy,
		StallTime:    stall,
		ActiveEnergy: e,
	}
}
