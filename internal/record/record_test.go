package record

import (
	"testing"

	"mach/internal/framebuf"
)

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.FPS = 0
	if bad.Validate() == nil {
		t.Fatal("fps 0 should fail")
	}
	bad = DefaultConfig()
	bad.EncoderPower = 0
	if bad.Validate() == nil {
		t.Fatal("zero encoder power should fail")
	}
}

func TestRecordingRuns(t *testing.T) {
	cfg := DefaultConfig()
	res, err := Run(cfg, "V4", 96, 64, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 8 {
		t.Fatalf("frames = %d", res.Frames)
	}
	if res.CameraLineWrites == 0 || res.EncoderLineReads == 0 || res.BitstreamLineWrites == 0 {
		t.Fatalf("traffic missing: %+v", res)
	}
	if res.TotalEnergy() <= 0 || res.WallTime <= 0 {
		t.Fatal("energy/time must be positive")
	}
}

func TestMachReducesRecordingTraffic(t *testing.T) {
	on := DefaultConfig()
	off := DefaultConfig()
	off.UseMach = false

	a, err := Run(on, "V4", 96, 64, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(off, "V4", 96, 64, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.CameraLineWrites >= b.CameraLineWrites {
		t.Fatalf("MACH camera writes %d should be < raw %d", a.CameraLineWrites, b.CameraLineWrites)
	}
	if a.MemAccesses() >= b.MemAccesses() {
		t.Fatalf("MACH accesses %d should be < raw %d", a.MemAccesses(), b.MemAccesses())
	}
	if a.Mach.MatchRate() <= 0 {
		t.Fatal("MACH must find matches in camera content")
	}
	if b.Mach.MatchRate() != 0 {
		t.Fatal("raw mode must not match")
	}
}

func TestRecordingDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	a, err := Run(cfg, "V9", 64, 64, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, "V9", 64, 64, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalEnergy() != b.TotalEnergy() || a.Mem != b.Mem {
		t.Fatal("recording runs must be deterministic")
	}
}

func TestRawModeUsesRawLayout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseMach = false
	res, err := Run(cfg, "V1", 64, 64, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Raw camera writes the full frame: 64*64*3 bytes / 64B = 192 lines/frame.
	wantPerFrame := int64(64 * 64 * 3 / 64)
	if got := res.CameraLineWrites / int64(res.Frames); got != wantPerFrame {
		t.Fatalf("raw writes/frame = %d want %d", got, wantPerFrame)
	}
	_ = framebuf.LayoutRaw
}

func TestUnknownProfileFails(t *testing.T) {
	if _, err := Run(DefaultConfig(), "V99", 64, 64, 2, 1); err == nil {
		t.Fatal("unknown profile should fail")
	}
}
