// Package record models the video recording pipeline of §6.4, the paper's
// first "other potential application" of MACH: the camera continuously
// captures frames and passes them to the hardware video encoder through
// memory. The flow is the playback pipeline reversed —
//
//	camera ──writes──► frame buffers ──reads──► encoder ──► bitstream
//
// and it exhibits the same content locality, so MACH can be employed at
// both ends: the camera writes only unique mab/gab content (plus pointers),
// and the encoder reads the deduplicated layout through a MACH buffer of
// its own, mirroring the display controller's structures.
package record

import (
	"fmt"

	"mach/internal/cache"
	"mach/internal/codec"
	"mach/internal/dram"
	"mach/internal/energy"
	"mach/internal/framebuf"
	"mach/internal/mach"
	"mach/internal/power"
	"mach/internal/sim"
	"mach/internal/video"
)

// Config describes the recording platform.
type Config struct {
	// CameraPower is drawn while a frame streams in.
	CameraPower power.Watts
	// FPS is the capture rate.
	FPS int

	// Encoder IP model: frequency and active power, plus per-mab cycle
	// costs. Motion estimation dominates encoders, so its cost scales
	// with the search window.
	EncoderFreq  sim.Hertz
	EncoderPower power.Watts

	CyclesPerMabBase   sim.Cycles
	CyclesPerSearchPos sim.Cycles // per motion-search candidate evaluated
	CyclesPerBit       float64    // cycles per bitstream bit

	// Encoder-side read cache (reference + input fetches).
	CacheBytes int
	LineBytes  int

	// Mach configures content caching at the camera writeback; zero-value
	// Layout means MACH is disabled (raw writes).
	Mach    mach.Config
	UseMach bool

	DRAM dram.Config
}

// DefaultConfig returns a 1080p-class encoder IP at 300 MHz with the
// playback pipeline's Table 2 memory.
func DefaultConfig() Config {
	return Config{
		CameraPower:        0.18,
		FPS:                30,
		EncoderFreq:        300 * sim.MHz,
		EncoderPower:       0.45,
		CyclesPerMabBase:   140,
		CyclesPerSearchPos: 14,
		CyclesPerBit:       1.0,
		CacheBytes:         32 * 1024,
		LineBytes:          64,
		Mach:               mach.DefaultConfig(),
		UseMach:            true,
		DRAM:               dram.DefaultConfig(),
	}
}

// Validate reports malformed configurations.
func (c Config) Validate() error {
	switch {
	case c.FPS <= 0:
		return fmt.Errorf("record: fps %d", c.FPS)
	case c.CameraPower < 0 || c.EncoderPower <= 0:
		return fmt.Errorf("record: powers %g/%g", c.CameraPower, c.EncoderPower)
	case c.EncoderFreq <= 0:
		return fmt.Errorf("record: encoder frequency %v", c.EncoderFreq)
	case c.CacheBytes <= 0 || c.LineBytes <= 0:
		return fmt.Errorf("record: cache shape")
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	return c.Mach.Validate()
}

// Result reports one recording run.
type Result struct {
	Frames int

	CameraLineWrites    int64
	EncoderLineReads    int64
	BitstreamLineWrites int64

	Mem       dram.Stats
	MemEnergy dram.Energy
	Mach      mach.Stats

	CameraEnergy  energy.Joules
	EncoderEnergy energy.Joules
	WallTime      sim.Time
}

// TotalEnergy returns camera + encoder + memory energy in joules.
func (r *Result) TotalEnergy() energy.Joules {
	return r.CameraEnergy + r.EncoderEnergy + r.MemEnergy.Total()
}

// MemAccesses returns total DRAM line transactions.
func (r *Result) MemAccesses() int64 { return r.Mem.Accesses() }

// Run records numFrames of the given workload profile at the given
// resolution and returns the traffic/energy report. The same generator
// seed always produces the same content, so MACH-on and MACH-off runs see
// identical frames.
func Run(cfg Config, profileKey string, w, h, numFrames int, seed int64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	prof, err := video.ProfileByKey(profileKey)
	if err != nil {
		return nil, err
	}
	gen, err := video.NewGenerator(prof, w, h, seed)
	if err != nil {
		return nil, err
	}
	params := codec.DefaultParams(w, h)
	params.MabSize = cfg.Mach.MabSize
	enc, err := codec.NewEncoder(params)
	if err != nil {
		return nil, err
	}

	mem := dram.New(cfg.DRAM)
	rcache := cache.NewSetAssoc(cfg.CacheBytes, cfg.LineBytes, 4)

	mcfg := cfg.Mach
	if !cfg.UseMach {
		mcfg.Layout = framebuf.LayoutRaw
	} else if mcfg.Layout == framebuf.LayoutRaw {
		mcfg.Layout = framebuf.LayoutPtr
	}
	wb, err := mach.NewWriteback(mcfg)
	if err != nil {
		return nil, err
	}

	period := sim.Time(int64(sim.Second) / int64(cfg.FPS))
	frameBytes := uint64(w * h * codec.BytesPerPixel)
	line := uint64(cfg.LineBytes)
	alignUp := func(v uint64) uint64 { return (v + line - 1) &^ (line - 1) }
	slot := alignUp(frameBytes) + alignUp(uint64(params.MabsPerFrame()*7)) + 4096
	res := &Result{Frames: numFrames}

	var now sim.Time
	searchPositions := sim.Cycles((2*params.SearchRadius + 1) * (2*params.SearchRadius + 1))

	for i := 0; i < numFrames; i++ {
		frameStart := sim.Time(int64(period) * int64(i))
		if frameStart > now {
			now = frameStart
		}
		fr := gen.Frame()

		// Camera writeback (optionally through MACH): line writes paced
		// across the capture interval.
		base := framebuf.RegionFrameBuffers + uint64(i%(mcfg.NumMACHs+4))*slot
		dump := framebuf.RegionMachDumps + uint64(i%(mcfg.NumMACHs+4))*(64<<10)
		var writes int64
		layout := wb.ProcessFrame(fr, i, base, dump, func(addr uint64, size int, ord int) {
			at := now + sim.Time(int64(period)*int64(ord)/int64(params.MabsPerFrame()))
			mem.Access(at, addr, true)
			writes++
		})
		res.CameraLineWrites += writes
		res.CameraEnergy += cfg.CameraPower.Over(period)

		// Encoder: reads the frame back through the layout (pointer
		// indirection resolved with the encoder's cached reads), runs
		// motion estimation, and writes the bitstream.
		efs, err := enc.Push(fr)
		if err != nil {
			return nil, err
		}
		var bits int64
		for _, ef := range efs {
			bits += int64(len(ef.Data)) * 8
		}

		var cycles sim.Cycles
		readAt := now
		for idx, rec := range layout.Records {
			cycles += cfg.CyclesPerMabBase + cfg.CyclesPerSearchPos*searchPositions
			at := readAt + sim.Time(int64(period)*int64(idx/256*256)/int64(len(layout.Records)))
			switch rec.Kind {
			case framebuf.RecDigest:
				// Served by the encoder-side MACH buffer: no memory read.
			default:
				for _, ln := range cache.LinesFor(rec.Ptr, uint64(layout.MabBytes), line) {
					if !rcache.Access(ln, false).Hit {
						mem.Access(at, ln, false)
						res.EncoderLineReads++
					}
				}
			}
		}
		cycles += sim.Cycles(cfg.CyclesPerBit * float64(bits))
		encTime := cfg.EncoderFreq.Cycles(cycles)
		res.EncoderEnergy += cfg.EncoderPower.Over(encTime)

		// Bitstream writeback.
		bitBytes := uint64((bits + 7) / 8)
		for off := uint64(0); off < bitBytes; off += line {
			mem.Access(now+encTime, framebuf.RegionEncoded+off, true)
			res.BitstreamLineWrites++
		}

		end := now + encTime
		if p := now + period; p > end {
			end = p
		}
		now = end
	}

	mem.AccrueBackground(now)
	res.WallTime = now
	res.Mem = mem.Stats()
	res.MemEnergy = mem.EnergySnapshot()
	res.Mach = wb.Stats()
	return res, nil
}
