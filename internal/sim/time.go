// Package sim provides a small discrete-event simulation core used by the
// SoC models: a picosecond-resolution virtual clock, an event queue, and a
// scheduler that advances time by firing events in timestamp order.
//
// The models in this repository are transaction-level, not cycle-accurate:
// components compute the duration of each operation analytically and schedule
// completion events. The engine only guarantees deterministic ordering (by
// time, then by insertion sequence).
package sim

import "fmt"

// Time is a point in virtual time, measured in picoseconds from simulation
// start. Picoseconds keep integer arithmetic exact for clock periods of both
// the DRAM (800 MHz -> 1250 ps) and the decoder (150/300 MHz).
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Forever is a sentinel placed safely beyond any reachable simulation time.
const Forever Time = 1 << 62

// Nanoseconds is a duration expressed in floating-point nanoseconds — the
// scale DRAM timing parameters and calibration constants are quoted in.
// It is a named unit type (see DESIGN.md "machlint v2: unit types"): the
// unitflow analyzer propagates its dimension through assignments and calls,
// and cross-dimension arithmetic fails to compile.
type Nanoseconds float64

// Time converts ns to the engine's picosecond clock.
func (ns Nanoseconds) Time() Time { return FromNanoseconds(ns) }

// Cycles is a clock-cycle count: the decoder's cost model and frequency
// conversions are expressed in it. Cycles are dimensionless work units, not
// time — only Hertz.Cycles converts them to Time.
type Cycles int64

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds converts t to floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Nanoseconds converts t to floating-point nanoseconds.
func (t Time) Nanoseconds() Nanoseconds { return Nanoseconds(float64(t) / float64(Nanosecond)) }

// FromSeconds builds a Time from floating-point seconds.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromMilliseconds builds a Time from floating-point milliseconds.
func FromMilliseconds(ms float64) Time { return Time(ms * float64(Millisecond)) }

// FromNanoseconds builds a Time from floating-point nanoseconds.
func FromNanoseconds(ns Nanoseconds) Time { return Time(float64(ns) * float64(Nanosecond)) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Hertz describes a clock frequency. The zero value is invalid.
type Hertz float64

const (
	Hz  Hertz = 1
	KHz Hertz = 1e3
	MHz Hertz = 1e6
	GHz Hertz = 1e9
)

// Period returns the duration of one clock cycle at frequency f.
func (f Hertz) Period() Time {
	if f <= 0 {
		return Forever
	}
	return Time(float64(Second) / float64(f))
}

// Cycles returns the duration of n clock cycles at frequency f.
func (f Hertz) Cycles(n Cycles) Time {
	if f <= 0 {
		return Forever
	}
	return Time(float64(n) * float64(Second) / float64(f))
}

// CyclesIn reports how many whole cycles at frequency f fit in d.
func (f Hertz) CyclesIn(d Time) Cycles {
	if d <= 0 {
		return 0
	}
	return Cycles(float64(d) * float64(f) / float64(Second))
}
