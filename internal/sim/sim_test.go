package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if Second != 1e12*Picosecond {
		t.Fatalf("Second = %d ps", int64(Second))
	}
	if got := FromMilliseconds(16.6); got.Milliseconds() != 16.6 {
		t.Fatalf("round trip ms: %v", got.Milliseconds())
	}
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", got)
	}
	if FromNanoseconds(18).Nanoseconds() != 18 {
		t.Fatal("ns round trip")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{3 * Microsecond, "3.000us"},
		{16 * Millisecond, "16.000ms"},
		{2 * Second, "2.000000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q want %q", int64(c.in), got, c.want)
		}
	}
}

func TestHertzPeriod(t *testing.T) {
	if p := (800 * MHz).Period(); p != 1250*Picosecond {
		t.Fatalf("800MHz period = %v", p)
	}
	if p := (150 * MHz).Period(); p < 6666*Picosecond || p > 6667*Picosecond {
		t.Fatalf("150MHz period = %d ps", int64(p))
	}
	if c := (300 * MHz).Cycles(300); c != Microsecond {
		t.Fatalf("300 cycles at 300MHz = %v", c)
	}
	if n := (100 * MHz).CyclesIn(Microsecond); n != 100 {
		t.Fatalf("cycles in 1us at 100MHz = %d", n)
	}
	if (Hertz(0)).Period() != Forever {
		t.Fatal("zero frequency should yield Forever")
	}
}

func TestHertzCyclesRoundTrip(t *testing.T) {
	f := func(cycles uint16) bool {
		n := Cycles(cycles)
		d := (200 * MHz).Cycles(n)
		back := (200 * MHz).CyclesIn(d)
		// Integer truncation may lose at most one cycle.
		return back == n || back == n-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, "c", func(Time) { got = append(got, 3) })
	e.Schedule(10, "a", func(Time) { got = append(got, 1) })
	e.Schedule(20, "b", func(Time) { got = append(got, 2) })
	e.Schedule(20, "b2", func(Time) { got = append(got, 22) }) // FIFO at same time
	end := e.Run()
	if end != 30 {
		t.Fatalf("end = %v", end)
	}
	want := []int{1, 2, 22, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestEngineScheduleFromHandler(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func(now Time)
	tick = func(now Time) {
		count++
		if count < 5 {
			e.After(10, "tick", tick)
		}
	}
	e.Schedule(0, "tick", tick)
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
	if e.Now() != 40 {
		t.Fatalf("now = %v", e.Now())
	}
	if e.Fired() != 5 {
		t.Fatalf("fired = %d", e.Fired())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, "x", func(Time) { fired = true })
	e.Cancel(ev)
	if !ev.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	e.Cancel(ev) // double cancel is a no-op
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(10, "a", func(Time) { got = append(got, 1) })
	e.Schedule(30, "b", func(Time) { got = append(got, 2) })
	e.RunUntil(20)
	if len(got) != 1 || e.Now() != 20 {
		t.Fatalf("got %v now %v", got, e.Now())
	}
	e.RunUntil(100)
	if len(got) != 2 || e.Now() != 100 {
		t.Fatalf("got %v now %v", got, e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d", e.Pending())
	}
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 0; i < 10; i++ {
		at := Time(i * 10)
		e.Schedule(at, "n", func(Time) {
			n++
			if n == 3 {
				e.Halt()
			}
		})
	}
	e.Run()
	if n != 3 {
		t.Fatalf("n = %d", n)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d", e.Pending())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, "a", func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.Schedule(5, "late", func(Time) {})
}
