package sim

import (
	"container/heap"
	"fmt"
)

// Event is a callback scheduled to fire at a fixed virtual time.
type Event struct {
	At   Time
	Name string // diagnostic label, may be empty
	Fire func(now Time)

	seq   uint64 // tie-break: FIFO among equal timestamps
	index int    // heap bookkeeping; -1 once popped or cancelled
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.index == -2 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine owns the virtual clock and the pending event set. The zero value is
// ready to use.
type Engine struct {
	now    Time
	queue  eventHeap
	seq    uint64
	fired  uint64
	halted bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events not yet fired.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule registers fn to run at time at. Scheduling in the past panics:
// that is always a model bug, not a recoverable condition.
func (e *Engine) Schedule(at Time, name string, fn func(now Time)) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", name, at, e.now))
	}
	ev := &Event{At: at, Name: name, Fire: fn, seq: e.seq}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, name string, fn func(now Time)) *Event {
	return e.Schedule(e.now+d, name, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -2
}

// Halt stops Run/RunUntil after the currently firing event returns.
func (e *Engine) Halt() { e.halted = true }

// Step fires the single earliest pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.At
	e.fired++
	ev.Fire(e.now)
	return true
}

// Run fires events until the queue drains or Halt is called. It returns the
// final virtual time.
func (e *Engine) Run() Time {
	e.halted = false
	for !e.halted && e.Step() {
	}
	return e.now
}

// RunUntil fires events with timestamps <= deadline, then sets the clock to
// deadline (if it has not already passed it) and returns.
func (e *Engine) RunUntil(deadline Time) Time {
	e.halted = false
	for !e.halted && len(e.queue) > 0 && e.queue[0].At <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}
