package par

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestShardsStableBoundaries(t *testing.T) {
	cases := []struct {
		n, grain int
		want     []Shard
	}{
		{0, 4, nil},
		{-3, 4, nil},
		{1, 4, []Shard{{0, 1}}},
		{4, 4, []Shard{{0, 4}}},
		{5, 4, []Shard{{0, 4}, {4, 5}}},
		{10, 3, []Shard{{0, 3}, {3, 6}, {6, 9}, {9, 10}}},
		{3, 0, []Shard{{0, 1}, {1, 2}, {2, 3}}}, // grain clamps to 1
	}
	for _, c := range cases {
		got := Shards(c.n, c.grain)
		if len(got) != len(c.want) {
			t.Fatalf("Shards(%d,%d) = %v, want %v", c.n, c.grain, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Shards(%d,%d) = %v, want %v", c.n, c.grain, got, c.want)
			}
		}
	}
}

// TestForShardsCoversEveryIndexOnce is the ownership invariant: every item
// is visited exactly once, whatever the pool width.
func TestForShardsCoversEveryIndexOnce(t *testing.T) {
	const n = 1000
	for _, workers := range []int{1, 2, 3, 8, 64} {
		p := New(workers)
		visits := make([]int32, n)
		p.ForShards(n, 7, func(lo, hi, worker int) {
			if worker < 0 || worker >= p.Workers() {
				t.Errorf("worker id %d outside [0,%d)", worker, p.Workers())
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

// TestForShardsDeterministicOutput checks the contract the simulation relies
// on: index-slot writes produce identical output for every worker count.
func TestForShardsDeterministicOutput(t *testing.T) {
	const n = 513
	ref := make([]uint64, n)
	New(1).ForShards(n, 16, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			ref[i] = uint64(i) * 2654435761
		}
	})
	for _, workers := range []int{2, 5, 16} {
		out := make([]uint64, n)
		New(workers).ForShards(n, 16, func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				out[i] = uint64(i) * 2654435761
			}
		})
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("workers=%d: out[%d]=%d, want %d", workers, i, out[i], ref[i])
			}
		}
	}
}

func TestForShardsPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate to the caller")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	New(4).ForShards(100, 1, func(lo, _, _ int) {
		if lo == 41 {
			panic("boom 41")
		}
	})
}

func TestMapIndexOrderAndIsolation(t *testing.T) {
	p := New(4)
	errs := p.Map(10, func(i int) error {
		switch i {
		case 3:
			return errors.New("three")
		case 7:
			panic("seven")
		}
		return nil
	})
	if len(errs) != 10 {
		t.Fatalf("got %d errors, want 10", len(errs))
	}
	for i, err := range errs {
		switch i {
		case 3:
			if err == nil || err.Error() != "three" {
				t.Errorf("errs[3] = %v, want three", err)
			}
		case 7:
			if err == nil || !strings.Contains(err.Error(), "panic: seven") {
				t.Errorf("errs[7] = %v, want recovered panic", err)
			}
		default:
			if err != nil {
				t.Errorf("errs[%d] = %v, want nil", i, err)
			}
		}
	}
}

func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if got := p.Workers(); got != 1 {
		t.Fatalf("nil pool Workers() = %d, want 1", got)
	}
	sum := 0
	p.ForShards(10, 3, func(lo, hi, worker int) {
		if worker != 0 {
			t.Errorf("nil pool used worker %d", worker)
		}
		for i := lo; i < hi; i++ {
			sum += i
		}
	})
	if sum != 45 {
		t.Fatalf("sum = %d, want 45", sum)
	}
}

func TestNewClampsWidth(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("New(0) produced an empty pool")
	}
	if got := New(5).Workers(); got != 5 {
		t.Fatalf("New(5).Workers() = %d", got)
	}
}

func TestMakespan(t *testing.T) {
	cases := []struct {
		costs   []int64
		workers int
		want    int64
	}{
		{nil, 4, 0},
		{[]int64{10}, 4, 10},
		{[]int64{10, 10, 10, 10}, 4, 10},
		{[]int64{10, 10, 10, 10}, 2, 20},
		{[]int64{10, 10, 10, 10}, 1, 40},
		{[]int64{8, 4, 4, 4}, 2, 12},      // 8 | 4+4+4
		{[]int64{5, -3, 5}, 2, 5},         // negative clamps to zero
		{[]int64{1, 2, 3, 4, 5}, 0, 15},   // workers clamps to 1
		{[]int64{9, 1, 1, 1, 1, 1}, 3, 9}, // long pole dominates
	}
	for _, c := range cases {
		if got := Makespan(c.costs, c.workers); got != c.want {
			t.Errorf("Makespan(%v,%d) = %d, want %d", c.costs, c.workers, got, c.want)
		}
	}
}

// TestMakespanWorkConserving: with divisible work, N workers are N times
// faster — the bound the benchmark's scheduled-speedup metric reports.
func TestMakespanWorkConserving(t *testing.T) {
	costs := make([]int64, 16)
	var total int64
	for i := range costs {
		costs[i] = int64(100 + i)
		total += costs[i]
	}
	seq := Makespan(costs, 1)
	if seq != total {
		t.Fatalf("sequential makespan %d != total %d", seq, total)
	}
	par := Makespan(costs, 4)
	if par >= seq || par < total/4 {
		t.Fatalf("4-worker makespan %d outside (%d,%d)", par, total/4, seq)
	}
}
