// Package par is the deterministic parallel execution substrate: a bounded
// worker pool whose work division never depends on the worker count, so any
// pool width produces bit-identical output to the sequential path.
//
// The rules that make that true, and that every caller must follow:
//
//   - Work is divided into shards whose boundaries are a pure function of
//     the item count and a fixed grain — never of the number of workers or
//     of runtime scheduling (Shards).
//   - Workers write results only into index-addressed slots they own
//     (out[i] for item i); no shard ever aggregates into shared state.
//   - Any order-sensitive reduction happens in the caller, serially, in
//     item order, after the pool has joined.
//
// machlint's determinism analyzer enforces the write-ownership rule for
// goroutines it can see syntactically; this package keeps the pool itself
// small enough to audit by hand.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded worker pool. Pools are stateless between calls and safe
// for concurrent use; a nil *Pool runs everything inline on the caller.
type Pool struct {
	workers int
}

// New returns a pool of the given width. Widths below 1 select
// runtime.GOMAXPROCS(0), so New(0) is "use the machine".
func New(workers int) *Pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers returns the pool width; 1 for a nil pool.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Shard is one contiguous range [Lo,Hi) of work items.
type Shard struct {
	Lo, Hi int
}

// Shards partitions [0,n) into ceil(n/grain) contiguous ranges of grain
// items each (the last may be short). The boundaries depend only on n and
// grain — never on the worker count — which is what keeps shard-local
// computation (hash streaming, scratch reuse) bit-identical whether the
// shards run on one worker or sixteen.
func Shards(n, grain int) []Shard {
	if grain < 1 {
		grain = 1
	}
	if n <= 0 {
		return nil
	}
	out := make([]Shard, 0, (n+grain-1)/grain)
	for lo := 0; lo < n; lo += grain {
		hi := lo + grain
		if hi > n {
			hi = n
		}
		out = append(out, Shard{Lo: lo, Hi: hi})
	}
	return out
}

// ForShards runs fn over every shard of [0,n), distributing shards to
// workers via an atomic cursor. worker is a stable id in [0,Workers()) for
// per-worker scratch buffers; fn must only write state owned by the shard
// (index-addressed output slots) or by the worker (scratch). With one
// worker, or one shard, everything runs inline on the caller.
//
// A panic in fn is re-raised on the caller after all workers have joined,
// so a bug cannot crash the process from an anonymous goroutine.
func (p *Pool) ForShards(n, grain int, fn func(lo, hi, worker int)) {
	if grain < 1 {
		grain = 1
	}
	if n <= 0 {
		return
	}
	shards := (n + grain - 1) / grain
	if p.Workers() == 1 || shards == 1 {
		for lo := 0; lo < n; lo += grain {
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi, 0)
		}
		return
	}
	w := p.workers
	if w > shards {
		w = shards
	}
	// The fan-out below allocates per call (channel, goroutine stacks,
	// closures) by design: it is the parallel dispatch path, and its cost is
	// amortized over the shard work it schedules. The sequential engine —
	// the configuration the committed 0-allocs/op StepFrame gate measures —
	// takes the inline path above and never reaches it.
	var (
		next atomic.Int64
		wg   sync.WaitGroup
		//lint:ignore allocheck one channel per parallel fan-out, amortized over the shard work it collects panics from
		panics = make(chan any, w)
	)
	for id := 0; id < w; id++ {
		wg.Add(1)
		//lint:ignore allocheck worker launch of the parallel dispatch path; the sequential engine takes the inline path above
		go func(id int) {
			defer wg.Done()
			//lint:ignore allocheck recover trampoline closure, one per worker per fan-out by design
			defer func() {
				if r := recover(); r != nil {
					panics <- r
				}
			}()
			for {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				lo := s * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				fn(lo, hi, id)
			}
		}(id)
	}
	wg.Wait()
	select {
	case r := <-panics:
		panic(r)
	default:
	}
}

// Map runs fn(i) for every i in [0,n) across the pool, recovering panics
// into errors so one faulted item cannot take down a whole sweep. Results
// land in index order, so output built from them stays deterministic
// regardless of goroutine scheduling. This is the bounded successor of the
// experiment layer's unbounded fan-out.
func (p *Pool) Map(n int, fn func(i int) error) []error {
	errs := make([]error, n)
	p.ForShards(n, 1, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			errs[i] = runIsolated(i, fn)
		}
	})
	return errs
}

func runIsolated(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return fn(i)
}

// Makespan returns the completion time of scheduling tasks with the given
// costs, in submission order, onto `workers` workers under work-conserving
// greedy list scheduling (each task starts on the worker that frees up
// first). It is a pure function of the inputs — no clock, no randomness —
// which is what lets the benchmark harness report a sweep speedup that does
// not depend on the core count of the machine the harness happens to run
// on. Negative costs are treated as zero.
func Makespan(costs []int64, workers int) int64 {
	if workers < 1 {
		workers = 1
	}
	free := make([]int64, workers)
	var end int64
	for _, c := range costs {
		if c < 0 {
			c = 0
		}
		k := 0
		for j := 1; j < workers; j++ {
			if free[j] < free[k] {
				k = j
			}
		}
		free[k] += c
		if free[k] > end {
			end = free[k]
		}
	}
	return end
}
