package delivery

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mach/internal/abr"
	"mach/internal/sim"
)

func TestBottleneckValidate(t *testing.T) {
	mut := func(f func(*Bottleneck)) Bottleneck {
		b := Bottleneck{Sessions: 4}
		f(&b)
		return b
	}
	bad := map[string]Bottleneck{
		"sessions over cap": mut(func(b *Bottleneck) { b.Sessions = MaxBottleneckSessions + 1 }),
		"weight too small":  mut(func(b *Bottleneck) { b.Weight = 0.01 }),
		"weight too large":  mut(func(b *Bottleneck) { b.Weight = 17 }),
		"weight nan":        mut(func(b *Bottleneck) { b.Weight = nan() }),
		"negative prob":     mut(func(b *Bottleneck) { b.ActiveProb = -0.1 }),
		"prob above one":    mut(func(b *Bottleneck) { b.ActiveProb = 1.1 }),
		"prob nan":          mut(func(b *Bottleneck) { b.ActiveProb = nan() }),
		"quantum too short": mut(func(b *Bottleneck) { b.Quantum = sim.Microsecond }),
		"quantum too long":  mut(func(b *Bottleneck) { b.Quantum = 2 * sim.Second }),
	}
	for name, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("%s: invalid bottleneck accepted", name)
		}
	}
	// Disabled (0 or 1 sessions) is always valid, whatever else it holds.
	for _, s := range []int{0, 1} {
		b := Bottleneck{Sessions: s, Weight: -99, ActiveProb: 42, Quantum: -1}
		if err := b.Validate(); err != nil {
			t.Errorf("%d-session bottleneck rejected: %v", s, err)
		}
		if b.Enabled() {
			t.Errorf("%d-session bottleneck reports enabled", s)
		}
	}
	if err := (Bottleneck{Sessions: 4}).Validate(); err != nil {
		t.Errorf("defaulted 4-session bottleneck rejected: %v", err)
	}
}

// TestFairShareProperties pins the allocation invariants over seeded random
// instances: no session exceeds its demand, nothing is negative, the total
// never exceeds capacity (conservation), and when demand is unmet the link
// is fully used (work conservation).
func TestFairShareProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(12)
		demands := make([]float64, n)
		weights := make([]float64, n)
		var total float64
		for i := range demands {
			demands[i] = float64(rng.Intn(2000)) // integer-valued, zeros included
			weights[i] = float64(1 + rng.Intn(16))
			total += demands[i]
		}
		capacity := float64(1 + rng.Intn(4000))

		alloc := FairShare(capacity, demands, weights)
		if len(alloc) != n {
			t.Fatalf("trial %d: alloc length %d, want %d", trial, len(alloc), n)
		}
		eps := 1e-9 * (capacity + total + 1)
		var sum float64
		for i, a := range alloc {
			if a < 0 {
				t.Fatalf("trial %d: alloc[%d] = %g negative", trial, i, a)
			}
			if a > demands[i]+eps {
				t.Fatalf("trial %d: alloc[%d] = %g exceeds demand %g", trial, i, a, demands[i])
			}
			sum += a
		}
		if sum > capacity+eps {
			t.Fatalf("trial %d: total allocation %g exceeds capacity %g", trial, sum, capacity)
		}
		if want := math.Min(capacity, total); math.Abs(sum-want) > eps {
			t.Fatalf("trial %d: not work-conserving: allocated %g, want min(cap,demand) = %g", trial, sum, want)
		}
	}
}

// TestFairSharePermutation pins session-permutation determinism: the
// allocation is a function of the (demand, weight) multiset, so permuting
// the sessions permutes the allocations with them.
func TestFairSharePermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(10)
		demands := make([]float64, n)
		weights := make([]float64, n)
		for i := range demands {
			demands[i] = float64(rng.Intn(1000))
			weights[i] = float64(1 + rng.Intn(8))
		}
		capacity := float64(1 + rng.Intn(3000))
		base := FairShare(capacity, demands, weights)

		perm := rng.Perm(n)
		pd := make([]float64, n)
		pw := make([]float64, n)
		for i, p := range perm {
			pd[i] = demands[p]
			pw[i] = weights[p]
		}
		got := FairShare(capacity, pd, pw)
		eps := 1e-9 * (capacity + 1)
		for i, p := range perm {
			if math.Abs(got[i]-base[p]) > eps {
				t.Fatalf("trial %d: permuted alloc[%d] = %g, want base[%d] = %g",
					trial, i, got[i], p, base[p])
			}
		}
	}
}

func TestFairShareEdgesAndPanics(t *testing.T) {
	if got := FairShare(0, []float64{5}, []float64{1}); got[0] != 0 {
		t.Errorf("zero capacity allocated %g", got[0])
	}
	if got := FairShare(100, nil, nil); len(got) != 0 {
		t.Errorf("empty instance allocated %v", got)
	}
	if got := FairShare(100, []float64{0, 0}, []float64{1, 1}); got[0] != 0 || got[1] != 0 {
		t.Errorf("zero demands allocated %v", got)
	}
	// Satisfiable demands are met exactly.
	got := FairShare(100, []float64{10, 20}, []float64{1, 1})
	if got[0] != 10 || got[1] != 20 {
		t.Errorf("satisfiable demands allocated %v, want [10 20]", got)
	}
	// A heavier session gets proportionally more of a saturated link.
	got = FairShare(90, []float64{1000, 1000}, []float64{2, 1})
	if math.Abs(got[0]-60) > 1e-9 || math.Abs(got[1]-30) > 1e-9 {
		t.Errorf("weighted split = %v, want [60 30]", got)
	}

	panics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	panics("length mismatch", func() { FairShare(1, []float64{1}, []float64{1, 2}) })
	panics("negative demand", func() { FairShare(1, []float64{-1}, []float64{1}) })
	panics("zero weight", func() { FairShare(1, []float64{1}, []float64{0}) })
	panics("nan demand", func() { FairShare(1, []float64{nan()}, []float64{1}) })
}

// TestShareAtMatchesFairShare pins the planner's fast path to the general
// allocator: with every session backlogged, the closed-form share the quantum
// walk uses is exactly our index's weighted max-min fair share.
func TestShareAtMatchesFairShare(t *testing.T) {
	b := Bottleneck{Sessions: 8, Weight: 2, ActiveProb: 0.6, Seed: 3}.normalize()
	bw := 8e6
	backlog := bw * 100 // far more demand than one quantum's capacity
	for q := int64(0); q < 200; q++ {
		share, contended := b.shareAt(bw, q)
		nAct := b.activeSessions(q)
		if (nAct > 0) != contended {
			t.Fatalf("quantum %d: contended=%v with %d active sessions", q, contended, nAct)
		}
		demands := make([]float64, nAct+1)
		weights := make([]float64, nAct+1)
		demands[0], weights[0] = backlog, b.Weight
		for i := 1; i <= nAct; i++ {
			demands[i], weights[i] = backlog, 1
		}
		want := FairShare(bw, demands, weights)[0]
		if math.Abs(share-want)/bw > 1e-12 {
			t.Fatalf("quantum %d: shareAt = %g, FairShare = %g (%d active)", q, share, want, nAct)
		}
	}
}

func TestActiveSessions(t *testing.T) {
	b := Bottleneck{Sessions: 8, Seed: 42}.normalize()
	// Pure function: same quantum, same answer.
	for q := int64(0); q < 50; q++ {
		if a, b2 := b.activeSessions(q), b.activeSessions(q); a != b2 {
			t.Fatalf("quantum %d: activeSessions not deterministic (%d vs %d)", q, a, b2)
		}
		if a := b.activeSessions(q); a < 0 || a > b.Sessions-1 {
			t.Fatalf("quantum %d: %d active of %d background sessions", q, a, b.Sessions-1)
		}
	}
	// Extremes: probability 1 keeps everyone active, 0 nobody.
	all := Bottleneck{Sessions: 8, ActiveProb: 1, Quantum: defaultQuantum, Weight: 1}
	none := Bottleneck{Sessions: 8, Quantum: defaultQuantum, Weight: 1} // prob 0: threshold below any hash
	for q := int64(0); q < 20; q++ {
		if got := all.activeSessions(q); got != 7 {
			t.Fatalf("prob 1: %d active, want 7", got)
		}
		if got := none.activeSessions(q); got != 0 {
			t.Fatalf("prob 0: %d active, want 0", got)
		}
	}
	// Different seeds give different activity patterns somewhere.
	other := b
	other.Seed = 43
	same := true
	for q := int64(0); q < 200 && same; q++ {
		same = b.activeSessions(q) == other.activeSessions(q)
	}
	if same {
		t.Fatal("200 quanta identical across different seeds (seed unused?)")
	}
}

func TestTransferTime(t *testing.T) {
	b := Bottleneck{Sessions: 4, Seed: 9}.normalize()
	bw := 1e6
	if got := b.transferTime(bw, 0, 0, nil); got != 0 {
		t.Errorf("zero bytes took %v", got)
	}
	if got := b.transferTime(bw, -sim.Second, 1000, nil); got <= 0 {
		t.Errorf("negative start: transfer %v", got)
	}
	// Monotone in bytes.
	var cs ContentionStats
	prev := sim.Time(0)
	for _, bytes := range []int64{1000, 10000, 100000, 1000000, 10000000} {
		d := b.transferTime(bw, sim.Second, bytes, &cs)
		if d < prev {
			t.Fatalf("%d bytes took %v, less than a smaller transfer's %v", bytes, d, prev)
		}
		prev = d
	}
	if cs.Quanta == 0 || cs.ContendedQuanta > cs.Quanta {
		t.Fatalf("implausible contention counters: %+v", cs)
	}
	// Contention can only slow transfers relative to the raw link, and an
	// uncontended pattern (prob 0) matches the raw link exactly.
	bytes := int64(5e6)
	raw := sim.FromSeconds(float64(bytes) / bw)
	if got := b.transferTime(bw, 0, bytes, nil); got < raw {
		t.Errorf("contended transfer %v faster than raw link %v", got, raw)
	}
	free := Bottleneck{Sessions: 4, Weight: 1, Quantum: defaultQuantum} // prob 0: background never active
	if got := free.transferTime(bw, 0, bytes, nil); got != raw {
		t.Errorf("idle background: transfer %v, want raw %v", got, raw)
	}
	// A transfer too large for the quantum-walk bound finishes in closed
	// form, is recorded as capped, and respects the global clamp.
	var capped ContentionStats
	huge := b.transferTime(1e3, 0, int64(1e12), &capped)
	if capped.CappedTransfers != 1 {
		t.Errorf("capped transfers = %d, want 1", capped.CappedTransfers)
	}
	if huge != maxTransfer {
		t.Errorf("pathological transfer %v, want the %v clamp", huge, maxTransfer)
	}
}

func abrOn(policy string) abr.Config {
	return abr.Config{Enabled: true, Policy: policy, FixedRung: -1}
}

func TestPlanABRShape(t *testing.T) {
	cfg := ThreeG()
	sched, err := PlanABR(cfg, abrOn("throughput"), testSizes(64), 30)
	if err != nil {
		t.Fatal(err)
	}
	if sched.ABR == nil {
		t.Fatal("ABR stats missing")
	}
	if len(sched.Rungs) != 64 {
		t.Fatalf("rungs length %d, want 64", len(sched.Rungs))
	}
	nr := sched.ABR.NumRungs
	for i, r := range sched.Rungs {
		if r < 0 || r >= nr {
			t.Fatalf("frame %d at rung %d of %d", i, r, nr)
		}
	}
	var segs int64
	for _, c := range sched.ABR.SegmentsAtRung {
		segs += c
	}
	if segs != int64(sched.Stats.Segments) {
		t.Fatalf("SegmentsAtRung sums to %d, want %d segments", segs, sched.Stats.Segments)
	}
	if sched.ABR.MinRung > sched.ABR.MaxRung {
		t.Fatalf("min rung %d above max %d", sched.ABR.MinRung, sched.ABR.MaxRung)
	}
	if sched.ABR.Switches > int64(sched.Stats.Segments-1) {
		t.Fatalf("%d switches across %d segments", sched.ABR.Switches, sched.Stats.Segments)
	}
	// Frames within one segment share a rung.
	for _, seg := range sched.Segments {
		for i := seg.FirstFrame + 1; i < seg.FirstFrame+seg.NumFrames; i++ {
			if sched.Rungs[i] != sched.Rungs[seg.FirstFrame] {
				t.Fatalf("segment %d spans rungs %d and %d", seg.Index, sched.Rungs[seg.FirstFrame], sched.Rungs[i])
			}
		}
	}
}

// TestPlanABRFixedTopIdentity pins the bit-identity contract at the planner
// level: ABR pinned to the top rung changes no byte of the schedule, and so
// does a single-session "bottleneck".
func TestPlanABRFixedTopIdentity(t *testing.T) {
	cfg := Flaky()
	base, err := Plan(cfg, testSizes(48), 30)
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := PlanABR(cfg, abrOn("fixed"), testSizes(48), 30)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Avail, pinned.Avail) || base.Stats != pinned.Stats {
		t.Fatal("top-rung-pinned ABR changed the schedule")
	}
	if pinned.ABR == nil || pinned.ABR.Switches != 0 || pinned.ABR.MinRung != pinned.ABR.MaxRung {
		t.Fatalf("pinned plan switched rungs: %+v", pinned.ABR)
	}

	solo := cfg
	solo.Bottleneck = Bottleneck{Sessions: 1, Seed: 5}
	soloSched, err := Plan(solo, testSizes(48), 30)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Avail, soloSched.Avail) || base.Stats != soloSched.Stats {
		t.Fatal("single-session bottleneck changed the schedule")
	}
	if soloSched.Contention != nil {
		t.Fatal("single-session bottleneck produced contention stats")
	}
}

// TestPlanABRMonotone pins policy monotonicity end to end: on a clean link,
// a strictly faster link never lowers the average rung the throughput policy
// settles on.
func TestPlanABRMonotone(t *testing.T) {
	clean := LTE()
	clean.LossRate = 0
	clean.Jitter = 0
	prev := -1.0
	for _, bw := range []float64{2e4, 1e5, 3e5, 1e6, 8e6} {
		cfg := clean
		cfg.BandwidthBps = bw
		sched, err := PlanABR(cfg, abrOn("throughput"), testSizes(96), 30)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, r := range sched.Rungs {
			sum += float64(r)
		}
		mean := sum / float64(len(sched.Rungs))
		if mean < prev {
			t.Fatalf("bandwidth %.0f: mean rung %.3f below slower link's %.3f", bw, mean, prev)
		}
		prev = mean
	}
	// The sweep actually exercised adaptation: the fastest link ends above
	// the slowest.
	if prev == 0 {
		t.Fatal("even the fastest link stayed at the bottom rung")
	}
}

// TestPlanContention pins graceful degradation at the planner level:
// contention slows delivery, never corrupts it, and is deterministic in the
// contention seed.
func TestPlanContention(t *testing.T) {
	cfg := ThreeG()
	cfg.LossRate = 0
	cfg.Jitter = 0
	base, err := Plan(cfg, testSizes(64), 30)
	if err != nil {
		t.Fatal(err)
	}

	crowded := cfg
	crowded.Bottleneck = Bottleneck{Sessions: 8, Seed: 5}
	sched, err := Plan(crowded, testSizes(64), 30)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Contention == nil {
		t.Fatal("contention stats missing")
	}
	if sched.Contention.ContendedQuanta == 0 {
		t.Fatal("8 sessions at default activity never contended")
	}
	if sched.Stats.LastDone < base.Stats.LastDone {
		t.Fatalf("contended delivery finished at %v, before uncontended %v",
			sched.Stats.LastDone, base.Stats.LastDone)
	}

	again, err := Plan(crowded, testSizes(64), 30)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sched.Avail, again.Avail) || *sched.Contention != *again.Contention {
		t.Fatal("same contention seed produced different schedules")
	}

	reseeded := crowded
	reseeded.Bottleneck.Seed = 6
	other, err := Plan(reseeded, testSizes(64), 30)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(sched.Avail, other.Avail) {
		t.Fatal("different contention seeds produced identical schedules")
	}
}
