// Package delivery models the network half of the paper's §2.1 pipeline:
// encoded segments are downloaded over an imperfect link into a streaming
// buffer before the decoder ever sees them. The model is deterministic and
// seeded — the same configuration always yields the same per-frame
// availability times — so fault-injected runs replay bit-identically, the
// same guarantee the rest of the simulator gives for decode content.
//
// The link model covers the failure modes that matter for energy and QoE on
// handhelds: finite bandwidth, request latency with jitter, random segment
// loss with timeout/retry/exponential-backoff recovery, injected
// mid-transfer stalls, and periodic outages (link down windows). Downloads
// are gated by a streaming-buffer occupancy model, so a fast link bursts
// segments and then leaves the radio idle — the network-side race-to-sleep
// that BurstLink-style delivery scheduling exploits. A power.RadioLedger
// accounts the modem energy of the resulting schedule.
package delivery

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"mach/internal/abr"
	"mach/internal/power"
	"mach/internal/sim"
)

// maxBackoff/maxTransfer bound the exponential retry growth and pathological
// transfers so long retry chains never overflow sim.Time arithmetic.
const (
	maxBackoff  = 60 * sim.Second
	maxTransfer = 3600 * sim.Second
)

// Config shapes the delivery model. The zero value is the perfect network:
// Enabled false means every frame is resident before playback starts, which
// must reproduce the original pipeline bit-for-bit.
type Config struct {
	// Enabled turns the delivery model on. All other fields are ignored
	// (and not validated) when false.
	Enabled bool

	// BandwidthBps is the link's transfer rate in bytes per second.
	BandwidthBps float64
	// RTT is the fixed per-request latency; Jitter adds a uniform draw in
	// [0, Jitter) on top of it.
	RTT    sim.Time
	Jitter sim.Time

	// SegmentFrames is the download granularity: frames per segment, all of
	// which become available when the segment completes (a segment must be
	// fully received before it can be demuxed).
	SegmentFrames int
	// BufferFrames caps streaming-buffer occupancy: the downloader pauses
	// when fetching the next segment would exceed it. Must be at least
	// SegmentFrames.
	BufferFrames int

	// LossRate is the per-attempt probability that a segment request is
	// lost; the player notices after Timeout and retries with exponential
	// backoff. StallRate is the per-segment probability of an injected
	// mid-transfer stall of roughly StallTime (uniform 0.5x..1.5x).
	LossRate  float64
	StallRate float64
	StallTime sim.Time

	// OutagePeriod/OutageTime inject periodic connectivity loss: the link
	// is down for OutageTime at the start of every OutagePeriod. Transfers
	// in flight pause and resume; timeouts keep running.
	OutagePeriod sim.Time
	OutageTime   sim.Time

	// Timeout bounds one attempt: a lost request, or a transfer that cannot
	// complete within it, counts as a timeout and is retried. Zero disables
	// timeouts (requires LossRate == 0).
	Timeout sim.Time
	// MaxRetries bounds recovery: after 1+MaxRetries failed attempts the
	// segment is abandoned — the player conceals it and playback continues,
	// which surfaces as dropped/repeated frames downstream.
	MaxRetries int
	// BackoffBase is the wait before the first retry; each further retry
	// multiplies it by BackoffFactor.
	BackoffBase   sim.Time
	BackoffFactor float64

	// Seed drives every random draw (loss, jitter, stalls). Same seed,
	// same schedule.
	Seed int64

	// Bottleneck shares the link with background sessions (the zero value
	// is an uncontended link, bit-identical to the original model).
	Bottleneck Bottleneck

	// Radio is the modem power model used to price the schedule.
	Radio power.RadioConfig
}

// DefaultConfig returns an LTE-class link, disabled. Set Enabled (or start
// from a named profile) to turn the model on.
func DefaultConfig() Config {
	c := LTE()
	c.Enabled = false
	return c
}

// LTE returns a healthy cellular link: 8 MB/s, 30±20 ms latency, 0.5% loss.
func LTE() Config {
	return Config{
		Enabled:       true,
		BandwidthBps:  8e6,
		RTT:           sim.FromMilliseconds(30),
		Jitter:        sim.FromMilliseconds(20),
		SegmentFrames: 8,
		BufferFrames:  32,
		LossRate:      0.005,
		StallRate:     0,
		StallTime:     sim.FromMilliseconds(200),
		Timeout:       2 * sim.Second,
		MaxRetries:    4,
		BackoffBase:   sim.FromMilliseconds(50),
		BackoffFactor: 2,
		Seed:          1,
		Radio:         power.DefaultRadio(),
	}
}

// WiFi returns a fast, clean local link.
func WiFi() Config {
	c := LTE()
	c.BandwidthBps = 25e6
	c.RTT = sim.FromMilliseconds(5)
	c.Jitter = sim.FromMilliseconds(5)
	c.LossRate = 0.001
	return c
}

// ThreeG returns a slow, lossy cellular link.
func ThreeG() Config {
	c := LTE()
	c.BandwidthBps = 1.5e6
	c.RTT = sim.FromMilliseconds(80)
	c.Jitter = sim.FromMilliseconds(60)
	c.LossRate = 0.02
	c.StallRate = 0.02
	c.StallTime = sim.FromMilliseconds(300)
	return c
}

// Flaky returns a hostile link for fault-injection studies: slow, jittery,
// lossy, frequently stalled, with a 1 s outage every 10 s.
func Flaky() Config {
	c := LTE()
	c.BandwidthBps = 1e6
	c.RTT = sim.FromMilliseconds(100)
	c.Jitter = sim.FromMilliseconds(80)
	c.LossRate = 0.05
	c.StallRate = 0.10
	c.StallTime = sim.FromMilliseconds(250)
	c.OutagePeriod = 10 * sim.Second
	c.OutageTime = 1 * sim.Second
	return c
}

// ProfileByName maps a CLI name to a link profile.
func ProfileByName(name string) (Config, error) {
	switch strings.ToLower(name) {
	case "lte", "4g", "default":
		return LTE(), nil
	case "wifi":
		return WiFi(), nil
	case "3g":
		return ThreeG(), nil
	case "flaky":
		return Flaky(), nil
	default:
		return Config{}, fmt.Errorf("delivery: unknown network profile %q (want lte|wifi|3g|flaky)", name)
	}
}

// Validate reports malformed configurations. A disabled config is always
// valid, whatever its other fields hold.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	switch {
	case !(c.BandwidthBps > 0) || math.IsInf(c.BandwidthBps, 0):
		return fmt.Errorf("delivery: bandwidth %g B/s", c.BandwidthBps)
	case math.IsNaN(c.LossRate) || math.IsNaN(c.StallRate) || math.IsNaN(c.BackoffFactor) || math.IsInf(c.BackoffFactor, 0):
		return fmt.Errorf("delivery: non-finite rate/factor")
	case c.RTT < 0 || c.Jitter < 0:
		return fmt.Errorf("delivery: negative latency %v/%v", c.RTT, c.Jitter)
	case c.SegmentFrames < 1 || c.SegmentFrames > 1024:
		return fmt.Errorf("delivery: segment frames %d outside [1,1024]", c.SegmentFrames)
	case c.BufferFrames < c.SegmentFrames:
		return fmt.Errorf("delivery: buffer %d frames < segment %d", c.BufferFrames, c.SegmentFrames)
	case c.LossRate < 0 || c.LossRate > 1:
		return fmt.Errorf("delivery: loss rate %g outside [0,1]", c.LossRate)
	case c.StallRate < 0 || c.StallRate > 1:
		return fmt.Errorf("delivery: stall rate %g outside [0,1]", c.StallRate)
	case c.StallRate > 0 && c.StallTime <= 0:
		return fmt.Errorf("delivery: stall rate %g with stall time %v", c.StallRate, c.StallTime)
	case c.Timeout < 0:
		return fmt.Errorf("delivery: negative timeout %v", c.Timeout)
	case c.LossRate > 0 && c.Timeout == 0:
		return fmt.Errorf("delivery: loss rate %g needs a timeout to recover", c.LossRate)
	case c.MaxRetries < 0 || c.MaxRetries > 16:
		return fmt.Errorf("delivery: max retries %d outside [0,16]", c.MaxRetries)
	case c.MaxRetries > 0 && c.BackoffBase < 0:
		return fmt.Errorf("delivery: negative backoff %v", c.BackoffBase)
	case c.MaxRetries > 0 && c.BackoffFactor < 1:
		return fmt.Errorf("delivery: backoff factor %g < 1", c.BackoffFactor)
	case c.OutagePeriod < 0 || c.OutageTime < 0:
		return fmt.Errorf("delivery: negative outage %v/%v", c.OutagePeriod, c.OutageTime)
	case c.OutagePeriod > 0 && c.OutageTime >= c.OutagePeriod:
		return fmt.Errorf("delivery: outage %v covers the whole period %v (link never up)", c.OutageTime, c.OutagePeriod)
	case c.OutageTime > 0 && c.OutagePeriod == 0:
		return fmt.Errorf("delivery: outage time %v without a period", c.OutageTime)
	}
	if err := c.Bottleneck.Validate(); err != nil {
		return err
	}
	return c.Radio.Validate()
}

// Segment records one download unit of the schedule.
type Segment struct {
	Index      int
	FirstFrame int // decode-order index of the first frame
	NumFrames  int
	Bytes      int64
	Start      sim.Time // first attempt issued (after buffer gating)
	Done       sim.Time // completion (or give-up time when Abandoned)
	Attempts   int
	Abandoned  bool
}

// Stats aggregates delivery behaviour over a schedule.
type Stats struct {
	Segments  int
	Frames    int
	Bytes     int64
	Attempts  int64
	Retries   int64 // attempts beyond each segment's first
	Timeouts  int64 // attempts that ended in a timeout (lost or too slow)
	Stalls    int64
	StallTime sim.Time
	// BackoffTime is link-idle time spent waiting between retry attempts;
	// BufferWait is time the downloader was paused on a full buffer.
	BackoffTime sim.Time
	BufferWait  sim.Time
	// TransferTime is total link-active time (latency + payload + stalls).
	TransferTime sim.Time
	Abandoned    int64
	LastDone     sim.Time
}

// ABRStats aggregates the planner-side adaptive-bitrate behaviour of a
// schedule: which rungs segments were fetched at and how often the policy
// moved between them.
type ABRStats struct {
	NumRungs int
	// Switches counts rung changes between consecutive segments.
	Switches int64
	// SegmentsAtRung histograms segments by rung, lowest first.
	SegmentsAtRung []int64
	// MinRung/MaxRung bound the rungs actually used.
	MinRung, MaxRung int
}

// Schedule is the planned delivery of one stream: the per-frame availability
// times the pipeline consumes, plus the per-segment record, aggregate stats,
// and the radio ledger priced over the download windows. Call
// Radio.Finish(wallEnd) once playback ends to account the final idle tail.
type Schedule struct {
	Avail    []sim.Time // decode-order frame availability
	Segments []Segment
	Stats    Stats
	Radio    *power.RadioLedger

	// Rungs is the per-frame ladder rung each frame was fetched at; nil
	// unless the schedule was planned with ABR (PlanABR).
	Rungs []int
	// ABR and Contention carry the optional model stats; nil when the
	// corresponding model is off, so default schedules serialize
	// identically to the pre-ABR planner.
	ABR        *ABRStats
	Contention *ContentionStats
}

// Plan computes the delivery schedule for a stream of per-frame encoded
// sizes (decode order) played at fps. It is pure and deterministic: the same
// (cfg, sizes, fps) always returns the same schedule.
func Plan(cfg Config, sizes []int, fps int) (*Schedule, error) {
	return planStream(cfg, abr.Config{}, sizes, fps)
}

// PlanABR is Plan with the adaptive-bitrate controller in the loop: at every
// segment boundary the policy observes buffer occupancy and the throughput
// EWMA and picks the ladder rung the segment is fetched at, scaling its
// bytes by the rung's bitrate ratio. A disabled acfg is exactly Plan.
func PlanABR(cfg Config, acfg abr.Config, sizes []int, fps int) (*Schedule, error) {
	return planStream(cfg, acfg, sizes, fps)
}

func planStream(cfg Config, acfg abr.Config, sizes []int, fps int) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled {
		return nil, fmt.Errorf("delivery: Plan called with the model disabled")
	}
	acfg = acfg.Normalize()
	if err := acfg.Validate(); err != nil {
		return nil, err
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("delivery: no frames")
	}
	if fps <= 0 {
		return nil, fmt.Errorf("delivery: fps %d", fps)
	}
	for i, s := range sizes {
		if s < 0 {
			return nil, fmt.Errorf("delivery: frame %d has negative size %d", i, s)
		}
	}

	radio, err := power.NewRadioLedger(cfg.Radio)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	period := sim.Time(int64(sim.Second) / int64(fps))

	sched := &Schedule{
		Avail: make([]sim.Time, len(sizes)),
		Radio: radio,
	}
	st := &sched.Stats
	st.Frames = len(sizes)

	bn := cfg.Bottleneck.normalize()
	bnOn := cfg.Bottleneck.Enabled()
	if bnOn {
		sched.Contention = &ContentionStats{Sessions: bn.Sessions}
	}

	// ABR controller state: the ladder and policy, the stream's top-rung
	// rate (from the actual sizes, so manifests port across streams), the
	// throughput EWMA the policies observe, and the current rung.
	var (
		policy    abr.Policy
		ladder    abr.Ladder
		streamBps float64
		est       float64 // EWMA throughput estimate; 0 = no sample yet
		rung      int
		prevRung  = -1
	)
	if acfg.Enabled {
		ladder = acfg.Ladder
		policy, _ = abr.PolicyByName(acfg.Policy) // validated above
		var total int64
		for _, s := range sizes {
			total += int64(s)
		}
		streamBps = float64(total) * float64(fps) / float64(len(sizes))
		rung = acfg.FixedRung
		sched.Rungs = make([]int, len(sizes))
		sched.ABR = &ABRStats{
			NumRungs:       len(ladder),
			SegmentsAtRung: make([]int64, len(ladder)),
			MinRung:        ladder.Top(),
		}
	}

	var cur sim.Time // link-free time: next instant a request may be issued
	delivered := 0
	for first := 0; first < len(sizes); first += cfg.SegmentFrames {
		n := cfg.SegmentFrames
		if first+n > len(sizes) {
			n = len(sizes) - first
		}
		var bytes int64
		for _, s := range sizes[first : first+n] {
			bytes += int64(s)
		}

		// ABR decision at the segment boundary: the policy observes buffer
		// occupancy (what playback has not yet consumed) and the throughput
		// estimate, and picks the rung this segment downloads at. Lower
		// rungs shrink the segment by the ladder's bitrate ratio.
		if acfg.Enabled {
			consumed := int(cur / period)
			if consumed > delivered {
				consumed = delivered
			}
			rung = policy.Decide(abr.Observation{
				BufferedFrames:  delivered - consumed,
				BufferCapFrames: cfg.BufferFrames,
				ThroughputBps:   est,
				StreamBps:       streamBps,
				CurrentRung:     rung,
				SafetyFactor:    acfg.SafetyFactor,
			}, ladder)
			if rung < 0 || rung > ladder.Top() {
				// A policy returning an out-of-range rung is a bug, but a
				// clamp keeps planning total for fuzzed policies.
				rung = ladder.Top()
			}
			if ratio := ladder.Ratio(rung); ratio < 1 {
				bytes = int64(math.Round(float64(bytes) * ratio))
			}
			for i := first; i < first+n; i++ {
				sched.Rungs[i] = rung
			}
			ab := sched.ABR
			ab.SegmentsAtRung[rung]++
			if prevRung >= 0 && rung != prevRung {
				ab.Switches++
			}
			if rung < ab.MinRung {
				ab.MinRung = rung
			}
			if rung > ab.MaxRung {
				ab.MaxRung = rung
			}
			prevRung = rung
		}

		// Streaming-buffer gate: fetching this segment may not push
		// occupancy past BufferFrames. Playback consumes one frame per
		// period, so the earliest admissible start is the consumption time
		// of frame (delivered + n - BufferFrames).
		if over := delivered + n - cfg.BufferFrames; over > 0 {
			gate := period * sim.Time(over)
			if gate > cur {
				st.BufferWait += gate - cur
				cur = gate
			}
		}

		seg := Segment{Index: len(sched.Segments), FirstFrame: first, NumFrames: n, Bytes: bytes, Start: cur}
		var transfer sim.Time
		if !bnOn {
			transfer = sim.FromSeconds(float64(bytes) / cfg.BandwidthBps)
			// Clamp pathological size/bandwidth combinations (adversarial
			// trace input) so virtual-time arithmetic stays in range; an
			// hour-long segment transfer is far beyond any timeout anyway.
			if transfer < 0 || transfer > maxTransfer {
				transfer = maxTransfer
			}
		}
		backoff := cfg.BackoffBase
		for {
			seg.Attempts++
			st.Attempts++
			if seg.Attempts > 1 {
				st.Retries++
			}
			if bnOn {
				// Under contention the transfer time depends on which
				// scheduling quanta the attempt spans, so it is recomputed
				// per attempt from the attempt's start time.
				transfer = bn.transferTime(cfg.BandwidthBps, cur, bytes, sched.Contention)
			}

			dur := cfg.RTT + transfer
			lost := cfg.LossRate > 0 && rng.Float64() < cfg.LossRate
			if !lost {
				if cfg.Jitter > 0 {
					dur += sim.Time(rng.Int63n(int64(cfg.Jitter)))
				}
				if cfg.StallRate > 0 && rng.Float64() < cfg.StallRate {
					stall := sim.Time(float64(cfg.StallTime) * (0.5 + rng.Float64()))
					dur += stall
					st.Stalls++
					st.StallTime += stall
				}
			}

			end := advance(cfg, cur, dur)
			// A lost request, or a transfer the link cannot finish inside
			// the timeout window, counts as a timeout.
			timedOut := lost || (cfg.Timeout > 0 && end-cur > cfg.Timeout)
			if timedOut {
				end = cur + cfg.Timeout
				st.Timeouts++
			}
			radio.Transfer(cur, end)
			st.TransferTime += end - cur
			cur = end
			if !timedOut {
				break
			}
			if seg.Attempts > cfg.MaxRetries {
				// Recovery exhausted: the player abandons the segment and
				// conceals it; frames become "available" at give-up time so
				// playback degrades instead of deadlocking.
				seg.Abandoned = true
				st.Abandoned++
				break
			}
			st.BackoffTime += backoff
			cur += backoff
			backoff = sim.Time(float64(backoff) * cfg.BackoffFactor)
			if backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
		seg.Done = cur
		// Feed the throughput EWMA from the whole segment window (request
		// to completion, retries included) — what a real player measures.
		if acfg.Enabled && !seg.Abandoned && seg.Done > seg.Start && bytes > 0 {
			rate := float64(bytes) / (seg.Done - seg.Start).Seconds()
			if est == 0 {
				est = rate
			} else {
				est = acfg.EWMAAlpha*rate + (1-acfg.EWMAAlpha)*est
			}
		}
		for i := first; i < first+n; i++ {
			sched.Avail[i] = cur
		}
		delivered += n
		st.Bytes += bytes
		sched.Segments = append(sched.Segments, seg)
	}
	st.Segments = len(sched.Segments)
	st.LastDone = cur
	return sched, nil
}

// advance returns the completion time of `need` link-active work starting at
// `start`, pausing through the periodic outage windows ([k*P, k*P+D) for
// every k). With no outages configured it is start+need. Closed-form (no
// per-period loop), so adversarial durations cannot make planning hang.
func advance(cfg Config, start, need sim.Time) sim.Time {
	if need <= 0 {
		return start
	}
	p, d := cfg.OutagePeriod, cfg.OutageTime
	if p <= 0 || d <= 0 {
		return start + need
	}
	up := p - d // uptime per period (Validate guarantees > 0)
	t := start
	if t < 0 {
		t = 0
	}
	// Snap out of an outage window the start falls inside.
	if off := t % p; off < d {
		t += d - off
	}
	// Uptime remaining in the current period.
	room := p - t%p
	if need <= room {
		return t + need
	}
	need -= room
	t += room // now at a period boundary, facing that period's outage
	// Periods fully consumed before the one the transfer finishes in.
	full := (need - 1) / up
	return t + full*p + d + (need - full*up)
}
