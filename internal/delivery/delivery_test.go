package delivery

import (
	"reflect"
	"testing"

	"mach/internal/sim"
)

// testSizes returns a plausible stream: 12 frames around 20 KB each.
func testSizes(n int) []int {
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = 18000 + 500*(i%5)
	}
	return sizes
}

func TestValidateRejections(t *testing.T) {
	mut := func(f func(*Config)) Config {
		c := LTE()
		f(&c)
		return c
	}
	bad := map[string]Config{
		"zero bandwidth":     mut(func(c *Config) { c.BandwidthBps = 0 }),
		"negative bandwidth": mut(func(c *Config) { c.BandwidthBps = -1 }),
		"nan loss":           mut(func(c *Config) { c.LossRate = nan() }),
		"loss > 1":           mut(func(c *Config) { c.LossRate = 1.5 }),
		"negative rtt":       mut(func(c *Config) { c.RTT = -1 }),
		"zero segment":       mut(func(c *Config) { c.SegmentFrames = 0 }),
		"huge segment":       mut(func(c *Config) { c.SegmentFrames = 4096 }),
		"buffer < segment":   mut(func(c *Config) { c.BufferFrames = c.SegmentFrames - 1 }),
		"loss, no timeout":   mut(func(c *Config) { c.Timeout = 0 }),
		"retries > 16":       mut(func(c *Config) { c.MaxRetries = 99 }),
		"backoff factor < 1": mut(func(c *Config) { c.BackoffFactor = 0.5 }),
		"outage >= period":   mut(func(c *Config) { c.OutagePeriod = sim.Second; c.OutageTime = sim.Second }),
		"outage, no period":  mut(func(c *Config) { c.OutageTime = sim.Second }),
		"stall, no time":     mut(func(c *Config) { c.StallRate = 0.5; c.StallTime = 0 }),
	}
	for name, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
	// A disabled config is valid no matter what garbage it holds.
	c := Config{Enabled: false, BandwidthBps: -1, SegmentFrames: -5}
	if err := c.Validate(); err != nil {
		t.Errorf("disabled config rejected: %v", err)
	}
	for _, name := range []string{"lte", "wifi", "3g", "flaky"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", name, err)
		}
	}
	if _, err := ProfileByName("carrier-pigeon"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

func TestPlanDeterministic(t *testing.T) {
	cfg := Flaky()
	a, err := Plan(cfg, testSizes(48), 30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(cfg, testSizes(48), 30)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Avail, b.Avail) || a.Stats != b.Stats {
		t.Fatal("same seed produced different schedules")
	}
	cfg.Seed = 99
	c, err := Plan(cfg, testSizes(48), 30)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Avail, c.Avail) {
		t.Fatal("different seeds produced identical schedules (rng unused?)")
	}
}

func TestPlanAvailabilityShape(t *testing.T) {
	cfg := LTE()
	cfg.LossRate = 0 // keep it clean for the shape checks
	sched, err := Plan(cfg, testSizes(40), 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Avail) != 40 {
		t.Fatalf("avail length %d, want 40", len(sched.Avail))
	}
	// Availability is nondecreasing in decode order (the link serializes
	// segments) and positive (RTT + transfer is never free).
	for i := 1; i < len(sched.Avail); i++ {
		if sched.Avail[i] < sched.Avail[i-1] {
			t.Fatalf("avail[%d]=%v < avail[%d]=%v", i, sched.Avail[i], i-1, sched.Avail[i-1])
		}
	}
	if sched.Avail[0] <= 0 {
		t.Fatal("first segment available at time zero")
	}
	wantSegs := (40 + cfg.SegmentFrames - 1) / cfg.SegmentFrames
	if sched.Stats.Segments != wantSegs || len(sched.Segments) != wantSegs {
		t.Fatalf("segments = %d/%d, want %d", sched.Stats.Segments, len(sched.Segments), wantSegs)
	}
	if sched.Stats.LastDone != sched.Avail[len(sched.Avail)-1] {
		t.Fatal("LastDone disagrees with the final frame's availability")
	}
}

func TestPlanBufferGating(t *testing.T) {
	// A fast link with a shallow buffer must pause between bursts: buffer
	// wait accrues and the radio sees idle gaps it can demote across.
	cfg := WiFi()
	cfg.LossRate = 0
	cfg.SegmentFrames = 4
	cfg.BufferFrames = 4
	sched, err := Plan(cfg, testSizes(64), 30)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Stats.BufferWait == 0 {
		t.Fatal("fast link with shallow buffer never waited on occupancy")
	}
	st := sched.Radio.Stats()
	if st.Wakeups < 2 {
		t.Fatalf("radio woke %d times; buffer gating should force sleep cycles", st.Wakeups)
	}
}

func TestPlanLossRetriesAndAbandon(t *testing.T) {
	cfg := LTE()
	cfg.LossRate = 1 // every attempt lost
	cfg.MaxRetries = 3
	sched, err := Plan(cfg, testSizes(8), 30)
	if err != nil {
		t.Fatal(err)
	}
	st := sched.Stats
	if st.Abandoned != 1 {
		t.Fatalf("abandoned = %d, want 1 (the single segment)", st.Abandoned)
	}
	if st.Attempts != int64(1+cfg.MaxRetries) {
		t.Fatalf("attempts = %d, want %d", st.Attempts, 1+cfg.MaxRetries)
	}
	if st.Retries != int64(cfg.MaxRetries) || st.Timeouts != st.Attempts {
		t.Fatalf("retries/timeouts = %d/%d, want %d/%d", st.Retries, st.Timeouts, cfg.MaxRetries, st.Attempts)
	}
	if st.BackoffTime == 0 {
		t.Fatal("retries spent no backoff time")
	}
	// Frames still become available (at give-up time): playback degrades
	// instead of deadlocking.
	for i, a := range sched.Avail {
		if a <= 0 {
			t.Fatalf("frame %d never became available", i)
		}
	}
	if !sched.Segments[0].Abandoned {
		t.Fatal("segment not marked abandoned")
	}
}

func TestPlanStallsAccounted(t *testing.T) {
	cfg := LTE()
	cfg.LossRate = 0
	cfg.StallRate = 1
	sched, err := Plan(cfg, testSizes(32), 30)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Stats.Stalls != int64(sched.Stats.Segments) {
		t.Fatalf("stalls = %d, want one per segment (%d)", sched.Stats.Stalls, sched.Stats.Segments)
	}
	if sched.Stats.StallTime < sim.Time(sched.Stats.Stalls)*cfg.StallTime/2 {
		t.Fatalf("stall time %v implausibly small", sched.Stats.StallTime)
	}
}

func TestPlanRejects(t *testing.T) {
	cfg := LTE()
	if _, err := Plan(cfg, nil, 30); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := Plan(cfg, []int{100}, 0); err == nil {
		t.Error("zero fps accepted")
	}
	if _, err := Plan(cfg, []int{-1}, 30); err == nil {
		t.Error("negative frame size accepted")
	}
	if _, err := Plan(DefaultConfig(), []int{100}, 30); err == nil {
		t.Error("disabled config accepted by Plan")
	}
	cfg.BandwidthBps = 0
	if _, err := Plan(cfg, []int{100}, 30); err == nil {
		t.Error("invalid config accepted by Plan")
	}
}

func TestAdvanceOutages(t *testing.T) {
	cfg := LTE()
	cfg.OutagePeriod = sim.Second
	cfg.OutageTime = sim.FromMilliseconds(250) // up 750ms of every 1s

	cases := []struct {
		start, need, want sim.Time
	}{
		// Entirely inside one uptime window.
		{sim.FromMilliseconds(300), sim.FromMilliseconds(100), sim.FromMilliseconds(400)},
		// Starting inside an outage snaps to its end.
		{sim.FromMilliseconds(100), sim.FromMilliseconds(100), sim.FromMilliseconds(350)},
		// Spanning a period boundary pays the next outage.
		{sim.FromMilliseconds(900), sim.FromMilliseconds(200), sim.FromMilliseconds(1350)},
		// Multiple full periods of work.
		{sim.FromMilliseconds(250), 3 * sim.FromMilliseconds(750), sim.FromMilliseconds(3000)},
	}
	for i, c := range cases {
		if got := advance(cfg, c.start, c.need); got != c.want {
			t.Errorf("case %d: advance(%v, %v) = %v, want %v", i, c.start, c.need, got, c.want)
		}
	}

	// No outages configured: plain addition.
	if got := advance(LTE(), 100, 50); got != 150 {
		t.Errorf("no-outage advance = %v, want 150", got)
	}
	// Zero need never moves time.
	if got := advance(cfg, 123, 0); got != 123 {
		t.Errorf("zero-need advance = %v, want 123", got)
	}
}
