package delivery

import (
	"fmt"
	"math"

	"mach/internal/sim"
)

// Bottleneck models a shared last-mile link: our player competes with
// Sessions-1 background sessions for the configured bandwidth, each quantum
// of link time split by weighted fair share among whoever is active in it.
// Background activity is a pure hash of (seed, quantum index, session
// index), not a sequential RNG, so the schedule is deterministic, allows
// random access into any quantum, and cannot depend on the order sessions
// are examined in — the session-permutation determinism the property tests
// pin down.
//
// The zero value (Sessions 0) disables the model; so does Sessions 1 (our
// session alone on the link), which must keep Plan bit-identical to the
// uncontended path.
type Bottleneck struct {
	// Sessions is the total session count on the link, including ours.
	// 0 and 1 both mean an uncontended link.
	Sessions int
	// Weight is our session's fair-share weight; background sessions each
	// weigh 1. 0 selects 1 (equal share).
	Weight float64
	// ActiveProb is the probability a background session is active in any
	// given quantum. 0 selects 0.7.
	ActiveProb float64
	// Quantum is the fair-share scheduling granularity. 0 selects 50 ms.
	Quantum sim.Time
	// Seed drives the background-activity hash. Independent of Config.Seed
	// so contention can be varied while holding the loss/stall draws fixed.
	Seed int64
}

// MaxBottleneckSessions caps the per-quantum activity scan; with
// maxTransferQuanta it bounds the work one transfer can cost, so hostile
// configurations cannot make planning crawl. Exported so callers that derive
// a cell population (the fleet supervisor) can clamp to the same cap instead
// of tripping Validate.
const MaxBottleneckSessions = 16

// Defaults applied by normalize.
const (
	defaultBottleneckWeight = 1.0
	defaultActiveProb       = 0.7
	defaultQuantum          = 50 * sim.Millisecond

	// maxTransferQuanta bounds the quantum walk of one transfer; past it
	// the remainder completes at the expected average share in closed
	// form (still deterministic, recorded in ContentionStats.Capped).
	maxTransferQuanta = 4096
)

// Enabled reports whether the bottleneck actually contends: two or more
// sessions on the link.
func (b Bottleneck) Enabled() bool { return b.Sessions > 1 }

// normalize fills in the zero-value defaults.
func (b Bottleneck) normalize() Bottleneck {
	if b.Weight == 0 {
		b.Weight = defaultBottleneckWeight
	}
	if b.ActiveProb == 0 {
		b.ActiveProb = defaultActiveProb
	}
	if b.Quantum == 0 {
		b.Quantum = defaultQuantum
	}
	return b
}

// Validate reports malformed bottleneck configurations. The disabled zero
// value is always valid.
func (b Bottleneck) Validate() error {
	if !b.Enabled() {
		return nil
	}
	n := b.normalize()
	switch {
	case b.Sessions > MaxBottleneckSessions:
		return fmt.Errorf("delivery: bottleneck sessions %d over the %d cap", b.Sessions, MaxBottleneckSessions)
	case math.IsNaN(n.Weight) || n.Weight < 0.0625 || n.Weight > 16:
		return fmt.Errorf("delivery: bottleneck weight %g outside [1/16,16]", n.Weight)
	case math.IsNaN(n.ActiveProb) || n.ActiveProb < 0 || n.ActiveProb > 1:
		return fmt.Errorf("delivery: bottleneck active probability %g outside [0,1]", n.ActiveProb)
	case n.Quantum < sim.Millisecond || n.Quantum > sim.Second:
		return fmt.Errorf("delivery: bottleneck quantum %v outside [1ms,1s]", n.Quantum)
	}
	return nil
}

// ContentionStats aggregates what the bottleneck did to a schedule.
type ContentionStats struct {
	// Sessions echoes the configured session count.
	Sessions int
	// Quanta is how many scheduling quanta the transfer walks touched;
	// ContendedQuanta is how many of those had at least one background
	// session active (our share below the full link).
	Quanta          int64
	ContendedQuanta int64
	// CappedTransfers counts transfers that exceeded the quantum-walk
	// bound and finished at the expected average share in closed form.
	CappedTransfers int64
}

// splitmix64 is the finalizer of the SplitMix64 generator: a bijective
// avalanche mix used as the background-activity hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// activeSessions returns how many background sessions are active in the
// given quantum: session s is active iff hash(seed, quantum, s) clears the
// activity threshold. A pure function of its arguments — evaluation order
// cannot matter.
func (b Bottleneck) activeSessions(quantum int64) int {
	threshold := uint64(b.ActiveProb * float64(math.MaxUint64))
	if b.ActiveProb >= 1 {
		return b.Sessions - 1
	}
	n := 0
	for s := 1; s < b.Sessions; s++ {
		h := splitmix64(splitmix64(uint64(b.Seed)^uint64(quantum)*0x9e3779b97f4a7c15) + uint64(s))
		if h < threshold {
			n++
		}
	}
	return n
}

// shareAt returns our session's bandwidth share (bytes/s) in the given
// quantum: the weighted fair share of the link among the active sessions.
// Every session is backlogged in this model, so the share equals
// FairShare(bw, all-backlogged demands, weights) for our index — a property
// test pins the equivalence.
func (b Bottleneck) shareAt(bw float64, quantum int64) (share float64, contended bool) {
	nAct := b.activeSessions(quantum)
	if nAct == 0 {
		return bw, false
	}
	return bw * b.Weight / (b.Weight + float64(nAct)), true
}

// transferTime returns the wall time to move `bytes` over the contended
// link starting at `start`, walking scheduling quanta and advancing by our
// fair share in each. cs, when non-nil, accumulates contention counters.
// The walk is bounded: past maxTransferQuanta the remainder completes at
// the expected average share in closed form, and the result never exceeds
// maxTransfer (the same clamp the uncontended path applies).
func (b Bottleneck) transferTime(bw float64, start sim.Time, bytes int64, cs *ContentionStats) sim.Time {
	if bytes <= 0 {
		return 0
	}
	if start < 0 {
		start = 0
	}
	remaining := float64(bytes)
	t := start
	var dur sim.Time
	for i := 0; i < maxTransferQuanta; i++ {
		qi := int64(t / b.Quantum)
		share, contended := b.shareAt(bw, qi)
		if cs != nil {
			cs.Quanta++
			if contended {
				cs.ContendedQuanta++
			}
		}
		room := (sim.Time(qi)+1)*b.Quantum - t
		capacity := share * room.Seconds()
		if remaining <= capacity {
			dur += sim.FromSeconds(remaining / share)
			if dur < 0 || dur > maxTransfer {
				return maxTransfer
			}
			return dur
		}
		remaining -= capacity
		dur += room
		t += room
		if dur > maxTransfer {
			return maxTransfer
		}
	}
	if cs != nil {
		cs.CappedTransfers++
	}
	avg := bw * b.Weight / (b.Weight + float64(b.Sessions-1)*b.ActiveProb)
	dur += sim.FromSeconds(remaining / avg)
	if dur < 0 || dur > maxTransfer {
		dur = maxTransfer
	}
	return dur
}

// FairShare computes the weighted max-min fair allocation of capacity among
// sessions with the given demands and weights: water-filling, where every
// unsatisfied session's allocation grows in proportion to its weight until
// its demand is met or the capacity is exhausted. The result is a pure
// function of the (demand, weight) multiset — permuting sessions permutes
// the output identically — and satisfies conservation (sum ≤ capacity) and
// work conservation (sum == min(capacity, total demand)).
//
// Demands and weights must be the same length; weights must be positive and
// demands non-negative, or FairShare panics (it is a model invariant, not
// an input-validation surface).
func FairShare(capacity float64, demands, weights []float64) []float64 {
	if len(demands) != len(weights) {
		panic("delivery: FairShare demand/weight length mismatch")
	}
	alloc := make([]float64, len(demands))
	if capacity <= 0 || len(demands) == 0 {
		return alloc
	}
	unsat := make([]int, 0, len(demands))
	for i, d := range demands {
		if d < 0 || math.IsNaN(d) || weights[i] <= 0 || math.IsNaN(weights[i]) {
			panic("delivery: FairShare negative demand or non-positive weight")
		}
		if d > 0 {
			unsat = append(unsat, i)
		}
	}
	remaining := capacity
	for len(unsat) > 0 && remaining > 0 {
		var sumW float64
		for _, i := range unsat {
			sumW += weights[i]
		}
		// The water level this round: the per-weight rate at which every
		// unsatisfied session fills.
		rate := remaining / sumW
		// Freeze every session whose remaining demand is met at this level.
		frozen := false
		for _, i := range unsat {
			if demands[i]-alloc[i] <= rate*weights[i] {
				frozen = true
			}
		}
		if !frozen {
			// Nobody saturates: hand out the rest proportionally and stop.
			for _, i := range unsat {
				alloc[i] += rate * weights[i]
			}
			return alloc
		}
		next := unsat[:0]
		for _, i := range unsat {
			if need := demands[i] - alloc[i]; need <= rate*weights[i] {
				alloc[i] = demands[i]
				remaining -= need
			} else {
				next = append(next, i)
			}
		}
		unsat = next
	}
	return alloc
}
