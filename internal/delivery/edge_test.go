package delivery

import (
	"strings"
	"testing"

	"mach/internal/sim"
)

// TestValidateRejectsEachBranch walks every rejection clause of
// Config.Validate with a config that is valid except for the one field
// under test, so a future reordering of the switch cannot silently drop a
// check.
func TestValidateRejectsEachBranch(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"zero bandwidth", func(c *Config) { c.BandwidthBps = 0 }, "bandwidth"},
		{"nan stall rate", func(c *Config) { c.StallRate = nan() }, "non-finite"},
		{"negative rtt", func(c *Config) { c.RTT = -1 }, "negative latency"},
		{"zero segment", func(c *Config) { c.SegmentFrames = 0 }, "segment frames"},
		{"buffer below segment", func(c *Config) { c.BufferFrames = c.SegmentFrames - 1 }, "buffer"},
		{"loss rate above one", func(c *Config) { c.LossRate = 1.5 }, "loss rate"},
		{"stall rate above one", func(c *Config) { c.StallRate = 1.5 }, "stall rate"},
		{"stall without duration", func(c *Config) { c.StallRate = 0.5; c.StallTime = 0 }, "stall time"},
		{"negative timeout", func(c *Config) { c.Timeout = -1 }, "negative timeout"},
		{"loss without timeout", func(c *Config) { c.LossRate = 0.1; c.Timeout = 0 }, "needs a timeout"},
		{"too many retries", func(c *Config) { c.MaxRetries = 17 }, "max retries"},
		{"negative backoff", func(c *Config) { c.MaxRetries = 2; c.BackoffBase = -1 }, "negative backoff"},
		{"shrinking backoff", func(c *Config) { c.MaxRetries = 2; c.BackoffFactor = 0.5 }, "backoff factor"},
		{"negative outage", func(c *Config) { c.OutagePeriod = -1 }, "negative outage"},
		{"outage covers period", func(c *Config) { c.OutagePeriod = sim.Second; c.OutageTime = sim.Second }, "whole period"},
		{"outage without period", func(c *Config) { c.OutagePeriod = 0; c.OutageTime = sim.Second }, "without a period"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := LTE()
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("config accepted: %+v", cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			// The same config with the model disabled must always pass:
			// disabled means "never consulted".
			cfg.Enabled = false
			if err := cfg.Validate(); err != nil {
				t.Fatalf("disabled config rejected: %v", err)
			}
		})
	}
}

// TestPlanClampsPathologicalTransfer feeds a near-zero link a large
// segment: the transfer time must clamp instead of overflowing virtual
// time, and the schedule must still mark every frame available.
func TestPlanClampsPathologicalTransfer(t *testing.T) {
	cfg := LTE()
	cfg.BandwidthBps = 1e-6 // ~10^13 s/byte before the clamp
	cfg.LossRate = 0
	cfg.Timeout = 0
	cfg.MaxRetries = 0
	sizes := []int{1 << 20, 1 << 20}
	sched, err := Plan(cfg, sizes, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Avail) != len(sizes) {
		t.Fatalf("got %d avail times, want %d", len(sched.Avail), len(sizes))
	}
	// One segment (SegmentFrames=8 covers both frames), clamped to the
	// hour-long ceiling plus latency terms: far below an unclamped
	// 10^13-second transfer, and strictly positive.
	limit := 2 * 3600 * sim.Second
	for i, at := range sched.Avail {
		if at <= 0 || at > limit {
			t.Fatalf("frame %d available at %v, want within (0, %v]", i, at, limit)
		}
	}
}

// TestPlanClampsRunawayBackoff drives a fully lossy link through its
// retry ladder with an aggressive backoff: growth must clamp at the
// ceiling and the player must abandon rather than hang, leaving
// degradation (not deadlock) to the playback layer.
func TestPlanClampsRunawayBackoff(t *testing.T) {
	cfg := LTE()
	cfg.LossRate = 1 // every attempt times out
	cfg.Timeout = sim.FromMilliseconds(100)
	cfg.MaxRetries = 12
	cfg.BackoffBase = 10 * sim.Second
	cfg.BackoffFactor = 8
	sizes := []int{1000, 1000}
	sched, err := Plan(cfg, sizes, 30)
	if err != nil {
		t.Fatal(err)
	}
	st := sched.Stats
	if st.Abandoned == 0 {
		t.Fatal("fully lossy link abandoned nothing")
	}
	// 12 retries with unclamped 8x growth from 10s would exceed 10s*8^11;
	// the 60s ceiling bounds total backoff below retries*60s.
	if max := sim.Time(13) * 60 * sim.Second; st.BackoffTime > max {
		t.Fatalf("backoff time %v exceeds clamped ceiling %v", st.BackoffTime, max)
	}
	if st.BackoffTime < 60*sim.Second {
		t.Fatalf("backoff time %v never reached the clamp region", st.BackoffTime)
	}
}

// TestAdvanceNegativeStart pins the defensive clamp: a caller passing a
// negative start (no real schedule does) is treated as starting at zero,
// keeping the modular outage arithmetic well-defined.
func TestAdvanceNegativeStart(t *testing.T) {
	cfg := LTE()
	cfg.OutagePeriod = sim.Second
	cfg.OutageTime = sim.FromMilliseconds(200)
	need := sim.FromMilliseconds(1700)
	got := advance(cfg, -5*sim.Second, need)
	want := advance(cfg, 0, need)
	if got != want {
		t.Fatalf("advance(-5s) = %v, advance(0) = %v", got, want)
	}
}
