package delivery

import (
	"testing"

	"mach/internal/abr"
	"mach/internal/sim"
)

// FuzzDeliverySchedule drives Plan with arbitrary configurations and frame
// sizes: whatever the inputs, it must either return a validation error or a
// well-formed schedule — never panic, hang, or overflow into negative time.
// Frame sizes are derived from the fuzzed byte string (3 bytes per frame), so
// allocation stays proportional to the input.
func FuzzDeliverySchedule(f *testing.F) {
	f.Add(float64(8e6), int64(sim.FromMilliseconds(30)), int64(sim.FromMilliseconds(20)),
		8, 32, 0.005, 0.1, int64(sim.FromMilliseconds(200)),
		int64(10*sim.Second), int64(sim.Second), int64(2*sim.Second),
		4, int64(sim.FromMilliseconds(50)), 2.0, int64(1), 30,
		[]byte{0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80, 0x90})
	f.Add(float64(-1), int64(-5), int64(0), 0, 0, 2.0, -1.0, int64(0),
		int64(1), int64(1), int64(0), 99, int64(-1), 0.0, int64(0), 0, []byte{0xFF})

	f.Fuzz(func(t *testing.T, bw float64, rtt, jitter int64, segFrames, bufFrames int,
		loss, stall float64, stallTime, outP, outT, timeout int64,
		retries int, backoff int64, factor float64, seed int64, fps int, raw []byte) {

		cfg := Config{
			Enabled:       true,
			BandwidthBps:  bw,
			RTT:           sim.Time(rtt),
			Jitter:        sim.Time(jitter),
			SegmentFrames: segFrames,
			BufferFrames:  bufFrames,
			LossRate:      loss,
			StallRate:     stall,
			StallTime:     sim.Time(stallTime),
			OutagePeriod:  sim.Time(outP),
			OutageTime:    sim.Time(outT),
			Timeout:       sim.Time(timeout),
			MaxRetries:    retries,
			BackoffBase:   sim.Time(backoff),
			BackoffFactor: factor,
			Seed:          seed,
			Radio:         DefaultConfig().Radio,
		}
		sizes := make([]int, len(raw)/3+1)
		for i := range sizes {
			var v int
			for k := 0; k < 3 && 3*i+k < len(raw); k++ {
				v = v<<8 | int(raw[3*i+k])
			}
			sizes[i] = v
		}

		sched, err := Plan(cfg, sizes, fps)
		if err != nil {
			return
		}
		if len(sched.Avail) != len(sizes) {
			t.Fatalf("avail length %d != %d frames", len(sched.Avail), len(sizes))
		}
		prev := sim.Time(0)
		for i, a := range sched.Avail {
			if a < prev {
				t.Fatalf("avail[%d]=%v moves backwards from %v", i, a, prev)
			}
			prev = a
		}
		st := sched.Stats
		if st.Attempts < int64(st.Segments) || st.Retries < 0 || st.Timeouts < 0 ||
			st.BackoffTime < 0 || st.BufferWait < 0 || st.TransferTime < 0 || st.StallTime < 0 {
			t.Fatalf("negative or inconsistent stats: %+v", st)
		}
		rs := sched.Radio.Stats()
		if rs.ActiveTime < 0 || rs.TailTime < 0 || rs.SleepTime < 0 || rs.TotalEnergy() < 0 {
			t.Fatalf("negative radio accounting: %+v", rs)
		}
	})
}

// FuzzBottleneckSchedule drives PlanABR with arbitrary bottleneck and ABR
// knobs on top of a hostile link: whatever the inputs, planning must either
// reject the configuration or terminate with a well-formed schedule — no
// panics, no hangs (the quantum walk and transfer clamps are load-bearing
// here), no out-of-range rungs, no negative accounting.
func FuzzBottleneckSchedule(f *testing.F) {
	f.Add(4, 1.0, 0.7, int64(50*sim.Millisecond), int64(5), uint8(1), 0.3, 0.7, 30, []byte{0x40, 0x41, 0x42, 0x43, 0x44, 0x45})
	f.Add(16, 16.0, 1.0, int64(sim.Millisecond), int64(-1), uint8(2), 1.0, 1.0, 1, []byte{0xFF, 0xFF, 0xFF})
	f.Add(2, 0.0625, 0.0, int64(sim.Second), int64(0), uint8(0), 0.01, 0.01, 240, []byte{0x00})
	f.Add(-3, -1.0, 2.0, int64(-5), int64(99), uint8(7), -1.0, 9.0, 0, []byte{0x10, 0x20})

	f.Fuzz(func(t *testing.T, sessions int, weight, prob float64, quantum, seed int64,
		policy uint8, alpha, safety float64, fps int, raw []byte) {

		cfg := ThreeG()
		cfg.Bottleneck = Bottleneck{
			Sessions:   sessions,
			Weight:     weight,
			ActiveProb: prob,
			Quantum:    sim.Time(quantum),
			Seed:       seed,
		}
		acfg := abr.Config{
			Enabled:      true,
			Policy:       []string{"fixed", "buffer", "throughput"}[int(policy)%3],
			FixedRung:    -1,
			EWMAAlpha:    alpha,
			SafetyFactor: safety,
		}
		sizes := make([]int, len(raw)+1)
		for i, b := range raw {
			sizes[i] = int(b) << 10
		}

		sched, err := PlanABR(cfg, acfg, sizes, fps)
		if err != nil {
			return
		}
		if len(sched.Avail) != len(sizes) || len(sched.Rungs) != len(sizes) {
			t.Fatalf("lengths: avail %d, rungs %d, frames %d", len(sched.Avail), len(sched.Rungs), len(sizes))
		}
		prev := sim.Time(0)
		for i, a := range sched.Avail {
			if a < prev {
				t.Fatalf("avail[%d]=%v moves backwards from %v", i, a, prev)
			}
			prev = a
		}
		if sched.ABR == nil {
			t.Fatal("ABR stats missing from an ABR plan")
		}
		for i, r := range sched.Rungs {
			if r < 0 || r >= sched.ABR.NumRungs {
				t.Fatalf("frame %d at rung %d of %d", i, r, sched.ABR.NumRungs)
			}
		}
		if cs := sched.Contention; cs != nil {
			if cs.Quanta < 0 || cs.ContendedQuanta < 0 || cs.ContendedQuanta > cs.Quanta || cs.CappedTransfers < 0 {
				t.Fatalf("implausible contention counters: %+v", cs)
			}
		} else if cfg.Bottleneck.Enabled() {
			t.Fatal("enabled bottleneck produced no contention stats")
		}
		st := sched.Stats
		if st.Attempts < int64(st.Segments) || st.TransferTime < 0 || st.BufferWait < 0 {
			t.Fatalf("negative or inconsistent stats: %+v", st)
		}
	})
}
