package delivery

import (
	"testing"

	"mach/internal/sim"
)

// FuzzDeliverySchedule drives Plan with arbitrary configurations and frame
// sizes: whatever the inputs, it must either return a validation error or a
// well-formed schedule — never panic, hang, or overflow into negative time.
// Frame sizes are derived from the fuzzed byte string (3 bytes per frame), so
// allocation stays proportional to the input.
func FuzzDeliverySchedule(f *testing.F) {
	f.Add(float64(8e6), int64(sim.FromMilliseconds(30)), int64(sim.FromMilliseconds(20)),
		8, 32, 0.005, 0.1, int64(sim.FromMilliseconds(200)),
		int64(10*sim.Second), int64(sim.Second), int64(2*sim.Second),
		4, int64(sim.FromMilliseconds(50)), 2.0, int64(1), 30,
		[]byte{0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80, 0x90})
	f.Add(float64(-1), int64(-5), int64(0), 0, 0, 2.0, -1.0, int64(0),
		int64(1), int64(1), int64(0), 99, int64(-1), 0.0, int64(0), 0, []byte{0xFF})

	f.Fuzz(func(t *testing.T, bw float64, rtt, jitter int64, segFrames, bufFrames int,
		loss, stall float64, stallTime, outP, outT, timeout int64,
		retries int, backoff int64, factor float64, seed int64, fps int, raw []byte) {

		cfg := Config{
			Enabled:       true,
			BandwidthBps:  bw,
			RTT:           sim.Time(rtt),
			Jitter:        sim.Time(jitter),
			SegmentFrames: segFrames,
			BufferFrames:  bufFrames,
			LossRate:      loss,
			StallRate:     stall,
			StallTime:     sim.Time(stallTime),
			OutagePeriod:  sim.Time(outP),
			OutageTime:    sim.Time(outT),
			Timeout:       sim.Time(timeout),
			MaxRetries:    retries,
			BackoffBase:   sim.Time(backoff),
			BackoffFactor: factor,
			Seed:          seed,
			Radio:         DefaultConfig().Radio,
		}
		sizes := make([]int, len(raw)/3+1)
		for i := range sizes {
			var v int
			for k := 0; k < 3 && 3*i+k < len(raw); k++ {
				v = v<<8 | int(raw[3*i+k])
			}
			sizes[i] = v
		}

		sched, err := Plan(cfg, sizes, fps)
		if err != nil {
			return
		}
		if len(sched.Avail) != len(sizes) {
			t.Fatalf("avail length %d != %d frames", len(sched.Avail), len(sizes))
		}
		prev := sim.Time(0)
		for i, a := range sched.Avail {
			if a < prev {
				t.Fatalf("avail[%d]=%v moves backwards from %v", i, a, prev)
			}
			prev = a
		}
		st := sched.Stats
		if st.Attempts < int64(st.Segments) || st.Retries < 0 || st.Timeouts < 0 ||
			st.BackoffTime < 0 || st.BufferWait < 0 || st.TransferTime < 0 || st.StallTime < 0 {
			t.Fatalf("negative or inconsistent stats: %+v", st)
		}
		rs := sched.Radio.Stats()
		if rs.ActiveTime < 0 || rs.TailTime < 0 || rs.SleepTime < 0 || rs.TotalEnergy() < 0 {
			t.Fatalf("negative radio accounting: %+v", rs)
		}
	})
}
