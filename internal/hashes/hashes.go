// Package hashes provides the digest functions the MACH content cache is
// built on. The paper (§4.4, §6.3, Fig 12d) uses CRC32 as the primary 32-bit
// digest, compares it against MD5 and SHA1, and extends it with a CRC16 to a
// 48-bit digest for collision elimination (CO-MACH).
//
// All digests are reduced to 32 bits (or 48 for the deep digest) because the
// MACH tag store budgets 4 bytes per entry; the package exists to make that
// reduction and the choice of function explicit and swappable.
package hashes

import (
	"crypto/md5"
	"crypto/sha1"
	"encoding/binary"
	"hash/crc32"
)

// Func identifies a digest function selectable in experiments.
type Func int

const (
	// CRC32 is the paper's default digest (IEEE polynomial).
	CRC32 Func = iota
	// MD5 truncated to its first 32 bits.
	MD5
	// SHA1 truncated to its first 32 bits.
	SHA1
	// FNV1a32 is an extra cheap baseline not in the paper, useful to show a
	// weaker mixer still behaves acceptably on pixel data.
	FNV1a32
	// Murmur3 is MurmurHash3-32 (from scratch), a modern non-cryptographic
	// mixer for the same comparison.
	Murmur3
)

var funcNames = map[Func]string{
	CRC32:   "crc32",
	MD5:     "md5-32",
	SHA1:    "sha1-32",
	FNV1a32: "fnv1a-32",
	Murmur3: "murmur3-32",
}

func (f Func) String() string {
	if s, ok := funcNames[f]; ok {
		return s
	}
	return "unknown"
}

// AllFuncs lists every selectable digest function (Fig 12d sweep).
func AllFuncs() []Func { return []Func{CRC32, MD5, SHA1, FNV1a32, Murmur3} }

// Digest32 computes the 32-bit digest of data under f.
func Digest32(f Func, data []byte) uint32 {
	switch f {
	case CRC32:
		return crc32.ChecksumIEEE(data)
	case MD5:
		sum := md5.Sum(data)
		return binary.BigEndian.Uint32(sum[:4])
	case SHA1:
		sum := sha1.Sum(data)
		return binary.BigEndian.Uint32(sum[:4])
	case FNV1a32:
		const (
			offset = 2166136261
			prime  = 16777619
		)
		h := uint32(offset)
		for _, b := range data {
			h ^= uint32(b)
			h *= prime
		}
		return h
	case Murmur3:
		return Murmur3_32(data, 0x9747b28c)
	default:
		panic("hashes: unknown digest function")
	}
}

// Deep48 computes the paper's 48-bit deep digest: CRC32 concatenated with
// CRC16-CCITT in the low bits of a uint64 (§6.3, CO-MACH). The CRC16 half is
// kept on-chip only; it is never written to memory.
func Deep48(data []byte) uint64 {
	return uint64(crc32.ChecksumIEEE(data))<<16 | uint64(CRC16CCITT(data))
}
