package hashes

// Fingerprint128 is a from-scratch 128-bit non-cryptographic mixer
// (MurmurHash3 x64/128 structure) used as the cheap alternative to MD5 for
// the TrackCollisions shadow fingerprint. The fingerprint never acts as a
// MACH tag — it only verifies that two blocks with equal digests carry equal
// content — so collision resistance against an adversary is not required;
// 128 uniform bits make accidental fingerprint collisions vanishingly rare
// while costing a handful of multiplies per block instead of an MD5
// compression function.

import "math/bits"

// Fingerprint128 computes the 128-bit fingerprint of data.
func Fingerprint128(data []byte) [16]byte {
	const (
		c1 = 0x87c37b91114253d5
		c2 = 0x4cf5ad432745937f
	)
	var h1, h2 uint64 = 0x9747b28c, ^uint64(0x9747b28c)
	n := len(data)

	// Body: 16-byte blocks.
	i := 0
	for ; i+16 <= n; i += 16 {
		k1 := le64(data[i:])
		k2 := le64(data[i+8:])
		k1 *= c1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= c2
		h1 ^= k1
		h1 = bits.RotateLeft64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729
		k2 *= c2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= c1
		h2 ^= k2
		h2 = bits.RotateLeft64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	// Tail.
	var k1, k2 uint64
	tail := data[i:]
	for j := len(tail) - 1; j >= 8; j-- {
		k2 = k2<<8 | uint64(tail[j])
	}
	for j := min(len(tail), 8) - 1; j >= 0; j-- {
		k1 = k1<<8 | uint64(tail[j])
	}
	if len(tail) > 8 {
		k2 *= c2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= c1
		h2 ^= k2
	}
	if len(tail) > 0 {
		k1 *= c1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= c2
		h1 ^= k1
	}

	// Finalization.
	h1 ^= uint64(n)
	h2 ^= uint64(n)
	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1

	var out [16]byte
	put64(out[:8], h1)
	put64(out[8:], h2)
	return out
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func put64(b []byte, v uint64) {
	for j := 0; j < 8; j++ {
		b[j] = byte(v >> (8 * j))
	}
}

// fmix64 is the 64-bit avalanche finalizer.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
