package hashes

// CollisionTracker measures digest collisions over a stream of blocks:
// distinct block contents that map to the same digest. It is the measurement
// machinery behind the paper's Fig 12d ("one colliding 4x4 block in around
// 200 frames" for CRC32, reduced to ~zero by the 48-bit CO-MACH digest).
//
// Exact collision detection requires remembering full block contents; the
// tracker stores a strong 128-bit fingerprint (MD5) per digest instead, which
// makes a false collision report astronomically unlikely while bounding
// memory to 20 bytes per distinct digest.

import "crypto/md5"

// CollisionTracker counts digest collisions for one digest function.
type CollisionTracker struct {
	fn         Func
	seen       map[uint32][16]byte
	Blocks     int64 // total blocks observed
	Distinct   int64 // distinct digests observed
	Collisions int64 // blocks whose digest matched a different content
}

// NewCollisionTracker returns a tracker for digest function fn.
func NewCollisionTracker(fn Func) *CollisionTracker {
	return &CollisionTracker{fn: fn, seen: make(map[uint32][16]byte)}
}

// Observe records one block and reports whether it collided with previously
// seen, different content under the tracked digest.
func (t *CollisionTracker) Observe(block []byte) bool {
	t.Blocks++
	d := Digest32(t.fn, block)
	fp := md5.Sum(block)
	prev, ok := t.seen[d]
	if !ok {
		t.seen[d] = fp
		t.Distinct++
		return false
	}
	if prev != fp {
		t.Collisions++
		return true
	}
	return false
}

// CollisionRate returns collisions per observed block.
func (t *CollisionTracker) CollisionRate() float64 {
	if t.Blocks == 0 {
		return 0
	}
	return float64(t.Collisions) / float64(t.Blocks)
}

// DeepCollisionTracker is the 48-bit (CRC32+CRC16) analogue used to verify
// the CO-MACH design claim that deep digests remove collisions in practice.
type DeepCollisionTracker struct {
	seen       map[uint64][16]byte
	Blocks     int64
	Collisions int64
}

// NewDeepCollisionTracker returns an empty deep tracker.
func NewDeepCollisionTracker() *DeepCollisionTracker {
	return &DeepCollisionTracker{seen: make(map[uint64][16]byte)}
}

// Observe records one block and reports whether the 48-bit digest collided.
func (t *DeepCollisionTracker) Observe(block []byte) bool {
	t.Blocks++
	d := Deep48(block)
	fp := md5.Sum(block)
	prev, ok := t.seen[d]
	if !ok {
		t.seen[d] = fp
		return false
	}
	if prev != fp {
		t.Collisions++
		return true
	}
	return false
}
