package hashes

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCRC16KnownValues(t *testing.T) {
	// CRC16-CCITT (false) test vectors.
	cases := []struct {
		in   string
		want uint16
	}{
		{"", 0xFFFF},
		{"123456789", 0x29B1},
		{"A", 0xB915},
	}
	for _, c := range cases {
		if got := CRC16CCITT([]byte(c.in)); got != c.want {
			t.Errorf("CRC16(%q) = %#04x want %#04x", c.in, got, c.want)
		}
	}
}

func TestDigest32Deterministic(t *testing.T) {
	data := []byte("the same 48-byte macroblock content, repeated!!")
	for _, f := range AllFuncs() {
		a := Digest32(f, data)
		b := Digest32(f, data)
		if a != b {
			t.Errorf("%v not deterministic", f)
		}
	}
}

func TestDigest32Distinguishes(t *testing.T) {
	a := []byte("block A ...............")
	b := []byte("block B ...............")
	for _, f := range AllFuncs() {
		if Digest32(f, a) == Digest32(f, b) {
			t.Errorf("%v collided on trivially different inputs", f)
		}
	}
}

func TestFuncString(t *testing.T) {
	if CRC32.String() != "crc32" {
		t.Fatalf("CRC32 name = %q", CRC32)
	}
	if Func(99).String() != "unknown" {
		t.Fatal("unknown func name")
	}
}

func TestDeep48ExtendsCRC32(t *testing.T) {
	data := []byte("some macroblock")
	d := Deep48(data)
	if uint32(d>>16) != Digest32(CRC32, data) {
		t.Fatal("high 32 bits should be CRC32")
	}
	if uint16(d) != CRC16CCITT(data) {
		t.Fatal("low 16 bits should be CRC16")
	}
}

func TestDeep48Property(t *testing.T) {
	f := func(a, b []byte) bool {
		da, db := Deep48(a), Deep48(b)
		if string(a) == string(b) {
			return da == db
		}
		// Different inputs may collide in principle, but the 48-bit digest
		// must still be internally consistent with its halves.
		return uint16(da) == CRC16CCITT(a) && uint16(db) == CRC16CCITT(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCollisionTrackerExactContent(t *testing.T) {
	tr := NewCollisionTracker(CRC32)
	blk := make([]byte, 48)
	for i := range blk {
		blk[i] = byte(i)
	}
	if tr.Observe(blk) {
		t.Fatal("first observation is never a collision")
	}
	if tr.Observe(blk) {
		t.Fatal("identical content is not a collision")
	}
	if tr.Blocks != 2 || tr.Distinct != 1 || tr.Collisions != 0 {
		t.Fatalf("counts = %+v", tr)
	}
}

func TestCollisionRatesOnRandomBlocks(t *testing.T) {
	// With 20k random 48-byte blocks, a quality 32-bit hash has expected
	// collisions ~ n^2/2^33 ≈ 0.05, so zero collisions is overwhelmingly
	// likely; more than a handful indicates a broken digest.
	rng := rand.New(rand.NewSource(7))
	tr := NewCollisionTracker(CRC32)
	deep := NewDeepCollisionTracker()
	blk := make([]byte, 48)
	for i := 0; i < 20000; i++ {
		rng.Read(blk)
		tr.Observe(blk)
		deep.Observe(blk)
	}
	if tr.Collisions > 3 {
		t.Fatalf("crc32 collisions = %d", tr.Collisions)
	}
	if deep.Collisions != 0 {
		t.Fatalf("deep48 collisions = %d", deep.Collisions)
	}
	if tr.CollisionRate() > 3.0/20000 {
		t.Fatalf("rate = %v", tr.CollisionRate())
	}
}

func TestMurmur3KnownVectors(t *testing.T) {
	// Reference vectors for MurmurHash3 x86 32-bit.
	cases := []struct {
		in   string
		seed uint32
		want uint32
	}{
		{"", 0, 0},
		{"", 1, 0x514E28B7},
		{"a", 0x9747b28c, 0x7FA09EA6},
		{"abc", 0, 0xB3DD93FA},
		{"Hello, world!", 0x9747b28c, 0x24884CBA},
	}
	for _, c := range cases {
		if got := Murmur3_32([]byte(c.in), c.seed); got != c.want {
			t.Errorf("murmur3(%q, %#x) = %#x want %#x", c.in, c.seed, got, c.want)
		}
	}
}

func TestMurmur3TailLengths(t *testing.T) {
	// All tail lengths (0..3 residual bytes) must mix the final bytes:
	// flipping the last byte changes the hash.
	for n := 1; n <= 9; n++ {
		a := make([]byte, n)
		b := make([]byte, n)
		b[n-1] = 1
		if Murmur3_32(a, 7) == Murmur3_32(b, 7) {
			t.Errorf("len %d: tail byte not mixed", n)
		}
	}
}
