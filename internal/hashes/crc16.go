package hashes

// CRC16-CCITT (polynomial 0x1021, initial value 0xFFFF), implemented from
// scratch because the Go standard library ships CRC32/CRC64 but no CRC16.
// This is the auxiliary hash the paper combines with CRC32 to build the
// 48-bit CO-MACH digest (§6.3).

var crc16Table [256]uint16

func init() {
	const poly = 0x1021
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for bit := 0; bit < 8; bit++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ poly
			} else {
				crc <<= 1
			}
		}
		crc16Table[i] = crc
	}
}

// CRC16CCITT returns the CRC16-CCITT (false) checksum of data.
func CRC16CCITT(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc = crc<<8 ^ crc16Table[byte(crc>>8)^b]
	}
	return crc
}
