package hashes

// MurmurHash3 (32-bit, x86 variant), implemented from scratch. It joins the
// Fig 12d digest comparison as a modern non-cryptographic mixer between the
// cyclic codes (CRC) and the cryptographic truncations (MD5/SHA1): MACH only
// needs uniform 32-bit digests, so any of them works — which is the paper's
// point in picking the cheapest (CRC32).

// Murmur3_32 computes the 32-bit MurmurHash3 of data with the given seed.
func Murmur3_32(data []byte, seed uint32) uint32 {
	const (
		c1 = 0xcc9e2d51
		c2 = 0x1b873593
	)
	h := seed
	n := len(data)

	// Body: 4-byte blocks.
	for i := 0; i+4 <= n; i += 4 {
		k := uint32(data[i]) | uint32(data[i+1])<<8 | uint32(data[i+2])<<16 | uint32(data[i+3])<<24
		k *= c1
		k = k<<15 | k>>17
		k *= c2
		h ^= k
		h = h<<13 | h>>19
		h = h*5 + 0xe6546b64
	}

	// Tail.
	var k uint32
	tail := data[n&^3:]
	switch len(tail) {
	case 3:
		k ^= uint32(tail[2]) << 16
		fallthrough
	case 2:
		k ^= uint32(tail[1]) << 8
		fallthrough
	case 1:
		k ^= uint32(tail[0])
		k *= c1
		k = k<<15 | k>>17
		k *= c2
		h ^= k
	}

	// Finalization.
	h ^= uint32(n)
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}
