// Package framebuf manages the simulated frame-buffer memory: the pool of
// decoded-frame buffers (double/triple/N-buffering, §2.1) and the three
// memory layouts of Fig 9c that the MACH writeback engine produces and the
// display controller consumes:
//
//	(i)   Raw        — mabs stored sequentially, no metadata.
//	(ii)  Ptr        — a pointer array; unique content compacted.
//	(iii) PtrDigest  — pointers mixed with digests plus a bitmap (§5.1), so
//	                   inter-frame matches resolve in the display's MACH
//	                   buffer without touching memory.
package framebuf

import (
	"fmt"
	"sort"
)

// LayoutKind selects the frame-buffer memory layout.
type LayoutKind int

const (
	// LayoutRaw is the baseline sequential layout (Fig 9c-i).
	LayoutRaw LayoutKind = iota
	// LayoutPtr is the pointer-indirect MACH layout (Fig 9c-ii).
	LayoutPtr
	// LayoutPtrDigest is the display-optimized layout (Fig 9c-iii).
	LayoutPtrDigest
)

func (k LayoutKind) String() string {
	switch k {
	case LayoutRaw:
		return "raw"
	case LayoutPtr:
		return "ptr"
	case LayoutPtrDigest:
		return "ptr+digest"
	default:
		return fmt.Sprintf("LayoutKind(%d)", int(k))
	}
}

// RecordKind classifies one mab's entry in the layout metadata.
type RecordKind uint8

const (
	// RecFull: the mab's unique content is stored; Ptr addresses it.
	RecFull RecordKind = iota
	// RecPointer: content matched; Ptr addresses the earlier copy
	// (intra-match, or inter-match under LayoutPtr).
	RecPointer
	// RecDigest: inter-match under LayoutPtrDigest; the display resolves
	// Digest in its MACH buffer.
	RecDigest
)

func (k RecordKind) String() string {
	switch k {
	case RecFull:
		return "full"
	case RecPointer:
		return "ptr"
	case RecDigest:
		return "digest"
	default:
		return fmt.Sprintf("RecordKind(%d)", int(k))
	}
}

// MabRecord is the per-mab metadata of layouts (ii) and (iii).
type MabRecord struct {
	Kind   RecordKind
	Ptr    uint64  // content address (RecFull, RecPointer)
	Digest uint32  // content digest (RecDigest)
	Base   [3]byte // gradient base pixel (gab mode only)
}

// DumpEntry is one element of a frame's frozen-MACH dump: the digest->pointer
// pairs the display prefetches into its MACH buffer (§5.1).
type DumpEntry struct {
	Digest uint32
	Ptr    uint64
}

// FrameLayout is the complete description of one decoded frame as resident
// in memory.
type FrameLayout struct {
	Kind         LayoutKind
	DisplayIndex int
	MabBytes     int // decoded bytes per mab
	Gradient     bool

	BufferBase uint64 // base address of the frame's buffer slot
	MetaBase   uint64 // where the pointer/digest array lives
	DumpBase   uint64 // where the frozen MACH dump lives (layout iii)

	Records []MabRecord

	ContentBytes uint64 // unique content written
	MetaBytes    uint64 // pointers + digests + bases + bitmap written
	Dump         []DumpEntry
}

// TotalBytes returns content + metadata footprint.
func (l *FrameLayout) TotalBytes() uint64 { return l.ContentBytes + l.MetaBytes }

// Pool is the frame-buffer allocator. It mirrors the Android double/triple
// buffering setup but can grow: the high-water mark is the measurement
// behind Fig 12a ("extra frame buffers needed").
type Pool struct {
	base      uint64
	slotBytes uint64
	free      []int
	next      int // next never-used slot index
	inUse     map[int]bool
	highWater int
}

// NewPool creates a pool at the given base address with the given per-slot
// capacity. Slots are created on demand; highWater tracks the peak.
func NewPool(base, slotBytes uint64) *Pool {
	if slotBytes == 0 {
		panic("framebuf: zero slot size")
	}
	return &Pool{base: base, slotBytes: slotBytes, inUse: make(map[int]bool)}
}

// SlotBytes returns the per-slot capacity.
func (p *Pool) SlotBytes() uint64 { return p.slotBytes }

// Acquire returns a free slot id and its base address, growing the pool when
// all existing slots are busy.
//
//lint:hotpath one acquire per decoded frame; steady state must hit the free stack, never grow
func (p *Pool) Acquire() (slot int, addr uint64) {
	if n := len(p.free); n > 0 {
		slot = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		slot = p.next
		p.next++
	}
	p.inUse[slot] = true
	if len(p.inUse) > p.highWater {
		p.highWater = len(p.inUse)
	}
	return slot, p.SlotAddr(slot)
}

// SlotAddr returns the base address of a slot.
func (p *Pool) SlotAddr(slot int) uint64 { return p.base + uint64(slot)*p.slotBytes }

// Release returns a slot to the pool; releasing a slot that is not in use
// panics (a pipeline accounting bug).
//
//lint:hotpath one release per retired frame
func (p *Pool) Release(slot int) {
	if !p.inUse[slot] {
		panic(fmt.Sprintf("framebuf: release of slot %d not in use", slot))
	}
	delete(p.inUse, slot)
	p.free = append(p.free, slot)
}

// PoolState is the serializable mirror of a Pool's allocation state. Free
// keeps its LIFO stack order (it decides which slot the next Acquire hands
// out); InUse is sorted so snapshots of identical pools are byte-identical.
type PoolState struct {
	Free      []int
	Next      int
	InUse     []int
	HighWater int
}

// Snapshot returns a copy of the pool's allocation state.
func (p *Pool) Snapshot() PoolState {
	st := PoolState{
		Free:      append([]int(nil), p.free...),
		Next:      p.next,
		InUse:     make([]int, 0, len(p.inUse)),
		HighWater: p.highWater,
	}
	for s := range p.inUse {
		st.InUse = append(st.InUse, s)
	}
	sort.Ints(st.InUse)
	return st
}

// Restore overwrites the pool's allocation state from a snapshot. The state
// may come from an untrusted file, so the slot-accounting invariants Release
// relies on (every slot below Next, no slot both free and in use) are
// validated rather than trusted.
func (p *Pool) Restore(st PoolState) error {
	if st.Next < 0 {
		return fmt.Errorf("framebuf: negative next-slot cursor %d", st.Next)
	}
	if len(st.Free)+len(st.InUse) > st.Next {
		return fmt.Errorf("framebuf: %d free + %d in-use slots exceed %d ever allocated",
			len(st.Free), len(st.InUse), st.Next)
	}
	seen := make(map[int]bool, len(st.Free)+len(st.InUse))
	for _, s := range append(append([]int(nil), st.Free...), st.InUse...) {
		if s < 0 || s >= st.Next {
			return fmt.Errorf("framebuf: slot %d outside [0,%d)", s, st.Next)
		}
		if seen[s] {
			return fmt.Errorf("framebuf: slot %d appears twice in the snapshot", s)
		}
		seen[s] = true
	}
	if st.HighWater < len(st.InUse) {
		return fmt.Errorf("framebuf: high water %d below %d in-use slots", st.HighWater, len(st.InUse))
	}
	p.free = append([]int(nil), st.Free...)
	p.next = st.Next
	p.inUse = make(map[int]bool, len(st.InUse))
	for _, s := range st.InUse {
		p.inUse[s] = true
	}
	p.highWater = st.HighWater
	return nil
}

// InUse returns the number of currently held slots.
func (p *Pool) InUse() int { return len(p.inUse) }

// HighWater returns the peak number of simultaneously held slots.
func (p *Pool) HighWater() int { return p.highWater }

// Address-space map of the simulated SoC. Regions are spaced far apart so
// streams never alias; the DRAM model only consumes the raw addresses.
const (
	// RegionEncoded holds the buffered compressed frames.
	RegionEncoded uint64 = 0x1000_0000
	// RegionFrameBuffers holds the decoded frame-buffer pool.
	RegionFrameBuffers uint64 = 0x4000_0000
	// RegionMachDumps holds the per-frame frozen MACH dumps.
	RegionMachDumps uint64 = 0xC000_0000
)
