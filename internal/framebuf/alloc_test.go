package framebuf

import "testing"

// The pool is on the per-frame hot path (one Acquire per decoded frame, one
// Release per retired frame), so its steady state — free-stack pop, in-use
// bookkeeping, free-stack push — must not allocate. Growth is allowed only
// while the pipeline ramps to its high-water mark.
func TestPoolSteadyStateDoesNotAllocate(t *testing.T) {
	p := NewPool(0x1000, 1<<20)

	// Ramp to the high-water mark: the map and the free stack size
	// themselves here, once.
	warm := make([]int, 8)
	for i := range warm {
		warm[i], _ = p.Acquire()
	}
	for _, s := range warm {
		p.Release(s)
	}

	allocs := testing.AllocsPerRun(200, func() {
		a, _ := p.Acquire()
		b, _ := p.Acquire()
		p.Release(a)
		p.Release(b)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Acquire/Release allocated %.2f times per cycle, want 0", allocs)
	}
}
