package framebuf

import "testing"

func TestPoolAcquireRelease(t *testing.T) {
	p := NewPool(0x1000, 0x100)
	s0, a0 := p.Acquire()
	s1, a1 := p.Acquire()
	if s0 == s1 || a0 == a1 {
		t.Fatalf("slots must differ: %d@%#x %d@%#x", s0, a0, s1, a1)
	}
	if a0 != 0x1000 || a1 != 0x1100 {
		t.Fatalf("addresses %#x %#x", a0, a1)
	}
	if p.InUse() != 2 || p.HighWater() != 2 {
		t.Fatalf("in use %d high %d", p.InUse(), p.HighWater())
	}
	p.Release(s0)
	if p.InUse() != 1 {
		t.Fatalf("in use %d", p.InUse())
	}
	// Freed slot is recycled before growing.
	s2, a2 := p.Acquire()
	if s2 != s0 || a2 != a0 {
		t.Fatalf("expected recycle of %d, got %d", s0, s2)
	}
	if p.HighWater() != 2 {
		t.Fatalf("high water %d", p.HighWater())
	}
}

func TestPoolHighWaterGrows(t *testing.T) {
	p := NewPool(0, 64)
	var slots []int
	for i := 0; i < 5; i++ {
		s, _ := p.Acquire()
		slots = append(slots, s)
	}
	if p.HighWater() != 5 {
		t.Fatalf("high water %d", p.HighWater())
	}
	for _, s := range slots {
		p.Release(s)
	}
	if p.InUse() != 0 {
		t.Fatal("slots leaked")
	}
	if p.SlotAddr(3) != 3*64 {
		t.Fatalf("slot addr %#x", p.SlotAddr(3))
	}
}

func TestPoolDoubleReleasePanics(t *testing.T) {
	p := NewPool(0, 64)
	s, _ := p.Acquire()
	p.Release(s)
	defer func() {
		if recover() == nil {
			t.Fatal("double release should panic")
		}
	}()
	p.Release(s)
}

func TestZeroSlotSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero slot size should panic")
		}
	}()
	NewPool(0, 0)
}

func TestLayoutStrings(t *testing.T) {
	if LayoutRaw.String() != "raw" || LayoutPtr.String() != "ptr" || LayoutPtrDigest.String() != "ptr+digest" {
		t.Fatal("layout names")
	}
	if RecFull.String() != "full" || RecPointer.String() != "ptr" || RecDigest.String() != "digest" {
		t.Fatal("record names")
	}
	if LayoutKind(9).String() == "" || RecordKind(9).String() == "" {
		t.Fatal("unknown names must be non-empty")
	}
}

func TestFrameLayoutTotals(t *testing.T) {
	l := FrameLayout{ContentBytes: 100, MetaBytes: 28}
	if l.TotalBytes() != 128 {
		t.Fatalf("total = %d", l.TotalBytes())
	}
}

func TestRegionsDisjoint(t *testing.T) {
	if !(RegionEncoded < RegionFrameBuffers && RegionFrameBuffers < RegionMachDumps) {
		t.Fatal("regions must be ordered")
	}
}
