package abr

import (
	"fmt"
	"strings"
)

// Config enables and shapes the adaptive-bitrate controller. The zero value
// is disabled, which must leave every run bit-identical to the fixed-rung
// pipeline. The policy is named, not held as an interface, so the config
// serializes into checkpoint fingerprints like every other knob.
type Config struct {
	// Enabled turns the controller on. All other fields are ignored (and
	// not validated) when false.
	Enabled bool

	// Policy selects the rung-decision policy: "fixed", "buffer", or
	// "throughput".
	Policy string

	// FixedRung is the rung the "fixed" policy pins; -1 means the top rung.
	// Other policies ignore it.
	FixedRung int

	// Ladder is the bitrate ladder; nil selects DefaultLadder.
	Ladder Ladder

	// EWMAAlpha weights the newest throughput sample in the planner's
	// estimate; 0 selects the 0.3 default.
	EWMAAlpha float64

	// SafetyFactor is the fraction of estimated throughput the throughput
	// policy is willing to commit to; 0 selects the 0.7 default.
	SafetyFactor float64
}

// Defaults for the EWMA and safety knobs, applied by Normalize.
const (
	DefaultEWMAAlpha    = 0.3
	DefaultSafetyFactor = 0.7
)

// Normalize returns the config with defaults filled in: the default ladder
// when none is given, default EWMA/safety knobs, and the top rung for a
// FixedRung of -1. Callers should Validate the result.
func (c Config) Normalize() Config {
	if !c.Enabled {
		return c
	}
	if c.Ladder == nil {
		c.Ladder = DefaultLadder()
	}
	if c.EWMAAlpha == 0 {
		c.EWMAAlpha = DefaultEWMAAlpha
	}
	if c.SafetyFactor == 0 {
		c.SafetyFactor = DefaultSafetyFactor
	}
	if c.FixedRung == -1 {
		c.FixedRung = c.Ladder.Top()
	}
	return c
}

// Validate reports malformed configurations. A disabled config is always
// valid, whatever its other fields hold.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	if err := c.Ladder.Validate(); err != nil {
		return err
	}
	if _, err := PolicyByName(c.Policy); err != nil {
		return err
	}
	if c.FixedRung < 0 || c.FixedRung >= len(c.Ladder) {
		return fmt.Errorf("abr: fixed rung %d outside ladder of %d rungs", c.FixedRung, len(c.Ladder))
	}
	if !(c.EWMAAlpha > 0 && c.EWMAAlpha <= 1) {
		return fmt.Errorf("abr: EWMA alpha %g outside (0,1]", c.EWMAAlpha)
	}
	if !(c.SafetyFactor > 0 && c.SafetyFactor <= 1) {
		return fmt.Errorf("abr: safety factor %g outside (0,1]", c.SafetyFactor)
	}
	return nil
}

// Observation is what a policy sees at a segment boundary. All fields are
// computed by the delivery planner; the policy is a pure function of them.
type Observation struct {
	// BufferedFrames is the streaming-buffer occupancy: frames downloaded
	// but not yet consumed by playback. BufferCapFrames is the buffer's
	// capacity.
	BufferedFrames  int
	BufferCapFrames int

	// ThroughputBps is the planner's EWMA download-rate estimate in bytes
	// per second; 0 means no sample yet (before the first segment).
	ThroughputBps float64

	// StreamBps is the stream's average top-rung rate in bytes per second,
	// from the actual trace sizes — rung r costs Ratio(r)*StreamBps — so
	// ladder manifests port across streams of any scale.
	StreamBps float64

	// CurrentRung is the rung the previous segment was fetched at.
	CurrentRung int

	// SafetyFactor is Config.SafetyFactor, passed through by the planner;
	// 0 means the default. Carried in the observation so policies stay
	// stateless value types.
	SafetyFactor float64
}

// Policy chooses a rung for the next segment. Implementations must be pure:
// no clocks, no randomness, no mutable state — determinism of the whole
// delivery schedule rests on it.
type Policy interface {
	// Name returns the policy's registry name.
	Name() string
	// Decide returns the rung for the next segment, in [0, len(ladder)).
	Decide(obs Observation, ladder Ladder) int
}

// PolicyByName maps a policy name to its implementation.
func PolicyByName(name string) (Policy, error) {
	switch strings.ToLower(name) {
	case "fixed":
		return fixedPolicy{}, nil
	case "buffer":
		return bufferPolicy{}, nil
	case "throughput":
		return throughputPolicy{}, nil
	default:
		return nil, fmt.Errorf("abr: unknown policy %q (want fixed|buffer|throughput)", name)
	}
}

// fixedPolicy pins the configured rung — the null policy the bit-identity
// guarantee and the degradation baselines are stated against. The planner
// passes the pinned rung in as CurrentRung.
type fixedPolicy struct{}

func (fixedPolicy) Name() string { return "fixed" }

func (fixedPolicy) Decide(obs Observation, ladder Ladder) int {
	return clampRung(obs.CurrentRung, ladder)
}

// bufferPolicy is the BBA-style buffer-occupancy map: below the reservoir
// it sits at the bottom rung, above the cushion at the top, and in between
// it maps occupancy linearly onto the ladder. Rate never enters the
// decision, which is what makes the policy robust to throughput-estimate
// noise (the BBA argument).
type bufferPolicy struct{}

func (bufferPolicy) Name() string { return "buffer" }

// Reservoir/cushion as fractions of buffer capacity.
const (
	bufferReservoir = 0.25
	bufferCushion   = 0.75
)

func (bufferPolicy) Decide(obs Observation, ladder Ladder) int {
	cap := obs.BufferCapFrames
	if cap <= 0 {
		return 0
	}
	occ := float64(obs.BufferedFrames) / float64(cap)
	switch {
	case occ <= bufferReservoir:
		return 0
	case occ >= bufferCushion:
		return ladder.Top()
	}
	// Linear map of (reservoir, cushion) onto (0, top].
	frac := (occ - bufferReservoir) / (bufferCushion - bufferReservoir)
	r := int(frac * float64(len(ladder)))
	return clampRung(r, ladder)
}

// throughputPolicy picks the highest rung whose rate fits under the safety
// fraction of the EWMA throughput estimate. With no estimate yet it starts
// at the bottom rung (conservative startup, like real players).
type throughputPolicy struct{}

func (throughputPolicy) Name() string { return "throughput" }

func (throughputPolicy) Decide(obs Observation, ladder Ladder) int {
	if obs.ThroughputBps <= 0 || obs.StreamBps <= 0 {
		return 0
	}
	safety := obs.SafetyFactor
	if safety <= 0 {
		safety = DefaultSafetyFactor
	}
	budget := safety * obs.ThroughputBps
	r := 0
	for i := range ladder {
		if ladder.Ratio(i)*obs.StreamBps <= budget {
			r = i
		}
	}
	return r
}

func clampRung(r int, ladder Ladder) int {
	if r < 0 {
		return 0
	}
	if r > ladder.Top() {
		return ladder.Top()
	}
	return r
}
