package abr

import (
	"errors"
	"testing"
)

// FuzzManifestLoad drives the ladder parser with arbitrary bytes: whatever
// the input, it must either return a ladder that passes Validate or an error
// wrapping ErrBadManifest — never panic, never hand back a malformed ladder,
// and never allocate beyond what the size cap bounds.
func FuzzManifestLoad(f *testing.F) {
	f.Add([]byte(goodManifest))
	f.Add([]byte("MACHLADDER v1\n"))
	f.Add([]byte("MACHLADDER v1\nrung 400 0.4 4\nrung 800 1 0\n"))
	f.Add([]byte("MACHLADDER v2\nrung 400 1 0\n"))
	f.Add([]byte("rung 400 1 0\n"))
	f.Add([]byte("MACHLADDER v1\nrung -1 NaN 99\n"))
	f.Add([]byte("MACHLADDER v1\n# comment only\n\n"))
	f.Add([]byte{0xFF, 0x00, 0xFE})

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := ParseLadder(data)
		if err != nil {
			if !errors.Is(err, ErrBadManifest) {
				t.Fatalf("parse error %v does not wrap ErrBadManifest", err)
			}
			if l != nil {
				t.Fatal("non-nil ladder returned alongside an error")
			}
			return
		}
		// Whatever parsed must satisfy the same invariants Validate
		// promises to callers that skip their own checks.
		if verr := l.Validate(); verr != nil {
			t.Fatalf("parsed ladder fails Validate: %v", verr)
		}
		if len(l) == 0 || len(l) > MaxRungs {
			t.Fatalf("parsed ladder has %d rungs", len(l))
		}
		if l[l.Top()].CostScale != 1 || l[l.Top()].QuantShift != 0 {
			t.Fatal("parsed ladder's top rung is not the native stream")
		}
	})
}
