package abr

import (
	"testing"
)

func TestConfigNormalize(t *testing.T) {
	// Disabled configs pass through untouched: Normalize must not resurrect
	// a ladder or knobs that the bit-identity path would then observe.
	var zero Config
	if got := zero.Normalize(); got.Ladder != nil || got.EWMAAlpha != 0 || got.SafetyFactor != 0 {
		t.Fatalf("disabled config mutated by Normalize: %+v", got)
	}

	c := Config{Enabled: true, Policy: "buffer", FixedRung: -1}.Normalize()
	if c.Ladder == nil {
		t.Fatal("Normalize left ladder nil")
	}
	if c.EWMAAlpha != DefaultEWMAAlpha || c.SafetyFactor != DefaultSafetyFactor {
		t.Fatalf("defaults not applied: alpha=%g safety=%g", c.EWMAAlpha, c.SafetyFactor)
	}
	if c.FixedRung != c.Ladder.Top() {
		t.Fatalf("FixedRung -1 resolved to %d, want top %d", c.FixedRung, c.Ladder.Top())
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("normalized config invalid: %v", err)
	}

	// Explicit knobs survive Normalize.
	c2 := Config{Enabled: true, Policy: "fixed", FixedRung: 2, EWMAAlpha: 0.5, SafetyFactor: 0.9}.Normalize()
	if c2.EWMAAlpha != 0.5 || c2.SafetyFactor != 0.9 || c2.FixedRung != 2 {
		t.Fatalf("explicit knobs clobbered: %+v", c2)
	}
}

func TestConfigValidateRejections(t *testing.T) {
	mut := func(f func(*Config)) Config {
		c := Config{Enabled: true, Policy: "buffer", FixedRung: -1}.Normalize()
		f(&c)
		return c
	}
	bad := map[string]Config{
		"bad ladder":       mut(func(c *Config) { c.Ladder = Ladder{} }),
		"unknown policy":   mut(func(c *Config) { c.Policy = "oracle" }),
		"rung below zero":  mut(func(c *Config) { c.FixedRung = -2 }),
		"rung past top":    mut(func(c *Config) { c.FixedRung = len(c.Ladder) }),
		"alpha zero":       mut(func(c *Config) { c.EWMAAlpha = -0.1 }),
		"alpha above one":  mut(func(c *Config) { c.EWMAAlpha = 1.5 }),
		"alpha nan":        mut(func(c *Config) { c.EWMAAlpha = nan() }),
		"safety negative":  mut(func(c *Config) { c.SafetyFactor = -1 }),
		"safety above one": mut(func(c *Config) { c.SafetyFactor = 2 }),
	}
	for name, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
	// Disabled is always valid, whatever the other fields hold.
	garbage := Config{Enabled: false, Policy: "oracle", FixedRung: -99, EWMAAlpha: 7}
	if err := garbage.Validate(); err != nil {
		t.Errorf("disabled config rejected: %v", err)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"fixed", "buffer", "throughput", "Buffer", "THROUGHPUT"} {
		p, err := PolicyByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("%s: empty policy name", name)
		}
	}
	if _, err := PolicyByName("oracle"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestFixedPolicy(t *testing.T) {
	l := DefaultLadder()
	p, _ := PolicyByName("fixed")
	cases := []struct{ cur, want int }{
		{0, 0}, {2, 2}, {l.Top(), l.Top()},
		{-1, 0},           // clamped up
		{len(l), l.Top()}, // clamped down
	}
	for _, c := range cases {
		if got := p.Decide(Observation{CurrentRung: c.cur}, l); got != c.want {
			t.Errorf("fixed(%d) = %d, want %d", c.cur, got, c.want)
		}
	}
}

func TestBufferPolicy(t *testing.T) {
	l := DefaultLadder()
	p, _ := PolicyByName("buffer")
	decide := func(buffered, capFrames int) int {
		return p.Decide(Observation{BufferedFrames: buffered, BufferCapFrames: capFrames}, l)
	}
	if got := decide(0, 0); got != 0 {
		t.Errorf("zero-capacity buffer: rung %d, want 0 (defensive bottom)", got)
	}
	if got := decide(0, 100); got != 0 {
		t.Errorf("empty buffer: rung %d, want bottom", got)
	}
	if got := decide(25, 100); got != 0 {
		t.Errorf("at reservoir: rung %d, want bottom", got)
	}
	if got := decide(75, 100); got != l.Top() {
		t.Errorf("at cushion: rung %d, want top %d", got, l.Top())
	}
	if got := decide(100, 100); got != l.Top() {
		t.Errorf("full buffer: rung %d, want top %d", got, l.Top())
	}
	mid := decide(50, 100)
	if mid <= 0 || mid >= l.Top() {
		t.Errorf("mid-buffer rung %d not strictly between bottom and top", mid)
	}

	// Monotone in occupancy: more buffer never picks a lower rung. This is
	// the property the graceful-degradation claim leans on.
	prev := 0
	for occ := 0; occ <= 100; occ++ {
		r := decide(occ, 100)
		if r < prev {
			t.Fatalf("occupancy %d%%: rung %d below previous %d (not monotone)", occ, r, prev)
		}
		prev = r
	}
}

func TestThroughputPolicy(t *testing.T) {
	l := DefaultLadder()
	p, _ := PolicyByName("throughput")
	stream := 1e6 // top-rung rate, bytes/s
	decide := func(tputBps, safety float64) int {
		return p.Decide(Observation{ThroughputBps: tputBps, StreamBps: stream, SafetyFactor: safety}, l)
	}
	if got := p.Decide(Observation{StreamBps: stream}, l); got != 0 {
		t.Errorf("no throughput sample: rung %d, want conservative bottom", got)
	}
	if got := p.Decide(Observation{ThroughputBps: 1e9}, l); got != 0 {
		t.Errorf("no stream rate: rung %d, want bottom", got)
	}
	if got := decide(1e9, 0.7); got != l.Top() {
		t.Errorf("abundant throughput: rung %d, want top %d", got, l.Top())
	}
	if got := decide(1, 0.7); got != 0 {
		t.Errorf("starved link: rung %d, want bottom", got)
	}
	// The safety factor actually gates: a link that fits the top rung only
	// without headroom drops a rung once safety is applied.
	if exact, safe := decide(stream, 1.0), decide(stream, 0.7); !(safe < exact) {
		t.Errorf("safety factor did not gate: exact=%d safe=%d", exact, safe)
	}
	// Zero safety in the observation falls back to the default rather than
	// bricking the policy at rung 0 forever.
	if got := decide(1e9, 0); got != l.Top() {
		t.Errorf("default safety fallback: rung %d, want top", got)
	}

	// Monotone in throughput: a faster estimate never picks a lower rung.
	prev := 0
	for bps := 0.0; bps <= 3e6; bps += 1e4 {
		r := decide(bps, 0.7)
		if r < prev {
			t.Fatalf("throughput %.0f: rung %d below previous %d (not monotone)", bps, r, prev)
		}
		prev = r
	}
}
