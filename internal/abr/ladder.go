// Package abr is the adaptive-bitrate controller for the delivery model:
// a DASH-style bitrate ladder plus rung-selection policies driven by buffer
// occupancy and throughput estimates. The package is pure decision logic —
// it owns no clock and draws no randomness — so the delivery planner that
// consumes it stays deterministic: the same (link, ladder, policy) triple
// always produces the same rung schedule.
//
// Rungs carry the model-side consequences of a quality switch alongside the
// rate: a CostScale the decoder applies to its cycle model (lower bitrate ⇒
// cheaper entropy/transform work) and a QuantShift the MACH content cache
// applies before hashing (coarser quantization ⇒ blurrier, more repetitive
// content ⇒ higher match rates), so energy results respond to quality
// switches the way the paper's pipeline would.
package abr

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// ErrBadManifest wraps every ladder-manifest validation failure — bad
// header, malformed rung line, cap or ordering violation — so callers can
// distinguish a damaged manifest from an I/O error with errors.Is, the same
// contract checkpoint.ErrCorrupt gives for checkpoint files.
var ErrBadManifest = errors.New("abr: bad ladder manifest")

// MaxRungs caps ladder size. Real encoding ladders top out well under ten
// rungs; the cap bounds allocations when the manifest comes from an
// untrusted file.
const MaxRungs = 16

// maxManifestBytes bounds how much of a manifest file is even read: a
// well-formed ladder is a few hundred bytes, so anything beyond this is
// rejected before parsing allocates.
const maxManifestBytes = 64 * 1024

// Rung is one quality level of the ladder.
type Rung struct {
	// BitrateKbps is the rung's encode bitrate. Only ratios between rungs
	// matter to the model: segment sizes scale by BitrateKbps relative to
	// the top rung, whose size is what the trace actually carries.
	BitrateKbps int64
	// CostScale multiplies the decoder's per-mab cycle cost at this rung;
	// the top rung is 1.0 and lower rungs are cheaper.
	CostScale float64
	// QuantShift is how many low bits the MACH engine drops from decoded
	// samples before hashing at this rung: 0 at the top rung, larger for
	// coarser encodes.
	QuantShift int
}

// Ladder is a bitrate ladder, ordered from the lowest rung to the highest.
type Ladder []Rung

// DefaultLadder returns a five-rung ladder shaped like a typical mobile
// DASH encode: the top rung is the native stream (scale 1, no quantization),
// each step down roughly halves the rate, trims decode work, and coarsens
// content.
func DefaultLadder() Ladder {
	return Ladder{
		{BitrateKbps: 400, CostScale: 0.40, QuantShift: 4},
		{BitrateKbps: 800, CostScale: 0.55, QuantShift: 3},
		{BitrateKbps: 1600, CostScale: 0.70, QuantShift: 2},
		{BitrateKbps: 3200, CostScale: 0.85, QuantShift: 1},
		{BitrateKbps: 6400, CostScale: 1.00, QuantShift: 0},
	}
}

// Validate reports malformed ladders: empty, over the cap, non-monotone
// bitrates, cost scales outside (0,1] or decreasing with quality, quant
// shifts outside [0,7] or increasing with quality.
func (l Ladder) Validate() error {
	if len(l) == 0 {
		return fmt.Errorf("%w: empty ladder", ErrBadManifest)
	}
	if len(l) > MaxRungs {
		return fmt.Errorf("%w: %d rungs over the %d cap", ErrBadManifest, len(l), MaxRungs)
	}
	for i, r := range l {
		if r.BitrateKbps <= 0 {
			return fmt.Errorf("%w: rung %d bitrate %d kbps", ErrBadManifest, i, r.BitrateKbps)
		}
		if !(r.CostScale > 0 && r.CostScale <= 1) {
			return fmt.Errorf("%w: rung %d cost scale %g outside (0,1]", ErrBadManifest, i, r.CostScale)
		}
		if r.QuantShift < 0 || r.QuantShift > 7 {
			return fmt.Errorf("%w: rung %d quant shift %d outside [0,7]", ErrBadManifest, i, r.QuantShift)
		}
		if i > 0 {
			prev := l[i-1]
			if r.BitrateKbps <= prev.BitrateKbps {
				return fmt.Errorf("%w: rung %d bitrate %d not above rung %d's %d",
					ErrBadManifest, i, r.BitrateKbps, i-1, prev.BitrateKbps)
			}
			if r.CostScale < prev.CostScale {
				return fmt.Errorf("%w: rung %d cost scale %g below rung %d's %g",
					ErrBadManifest, i, r.CostScale, i-1, prev.CostScale)
			}
			if r.QuantShift > prev.QuantShift {
				return fmt.Errorf("%w: rung %d quant shift %d above rung %d's %d",
					ErrBadManifest, i, r.QuantShift, i-1, prev.QuantShift)
			}
		}
	}
	//lint:ignore floateq the top rung is the native stream only when CostScale is exactly 1.0 — the bit-identity fast path keys on that literal, so an epsilon would admit scales that perturb goldens
	if top := l[len(l)-1]; top.CostScale != 1 || top.QuantShift != 0 {
		return fmt.Errorf("%w: top rung must be the native stream (cost scale 1, quant shift 0), got %g/%d",
			ErrBadManifest, top.CostScale, top.QuantShift)
	}
	return nil
}

// Top returns the index of the highest rung.
func (l Ladder) Top() int { return len(l) - 1 }

// Ratio returns rung r's bitrate as a fraction of the top rung's.
func (l Ladder) Ratio(r int) float64 {
	return float64(l[r].BitrateKbps) / float64(l[l.Top()].BitrateKbps)
}

// ParseLadder parses the MACHLADDER manifest format:
//
//	MACHLADDER v1
//	# comment
//	rung <bitrate-kbps> <cost-scale> <quant-shift>
//	...
//
// Rungs must appear lowest to highest. Every failure wraps ErrBadManifest;
// input over 64 KB is rejected outright. The parser allocates nothing
// proportional to claimed counts — only to lines actually present, which the
// size cap bounds.
func ParseLadder(data []byte) (Ladder, error) {
	if len(data) > maxManifestBytes {
		return nil, fmt.Errorf("%w: %d bytes over the %d cap", ErrBadManifest, len(data), maxManifestBytes)
	}
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != "MACHLADDER v1" {
		return nil, fmt.Errorf("%w: missing MACHLADDER v1 header", ErrBadManifest)
	}
	var l Ladder
	for no, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 || fields[0] != "rung" {
			return nil, fmt.Errorf("%w: line %d: want \"rung <kbps> <cost-scale> <quant-shift>\", got %q",
				ErrBadManifest, no+2, line)
		}
		if len(l) == MaxRungs {
			return nil, fmt.Errorf("%w: line %d: more than %d rungs", ErrBadManifest, no+2, MaxRungs)
		}
		kbps, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: bitrate %q: %v", ErrBadManifest, no+2, fields[1], err)
		}
		scale, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: cost scale %q: %v", ErrBadManifest, no+2, fields[2], err)
		}
		shift, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: quant shift %q: %v", ErrBadManifest, no+2, fields[3], err)
		}
		l = append(l, Rung{BitrateKbps: kbps, CostScale: scale, QuantShift: shift})
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}

// LoadLadder reads and parses a manifest file. Files over the size cap are
// rejected without being read whole; parse failures wrap ErrBadManifest,
// I/O failures do not.
func LoadLadder(path string) (Ladder, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if fi.Size() > maxManifestBytes {
		return nil, fmt.Errorf("%w: %s is %d bytes, over the %d cap",
			ErrBadManifest, path, fi.Size(), maxManifestBytes)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseLadder(data)
}
