package abr

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDefaultLadderValid(t *testing.T) {
	l := DefaultLadder()
	if err := l.Validate(); err != nil {
		t.Fatalf("default ladder invalid: %v", err)
	}
	if l.Top() != len(l)-1 {
		t.Fatalf("Top() = %d, want %d", l.Top(), len(l)-1)
	}
	if got := l.Ratio(l.Top()); got != 1 {
		t.Fatalf("top-rung ratio = %g, want 1", got)
	}
	// Ratios ascend with the rungs and stay in (0,1].
	prev := 0.0
	for i := range l {
		r := l.Ratio(i)
		if !(r > prev && r <= 1) {
			t.Fatalf("ratio(%d) = %g not ascending in (0,1]", i, r)
		}
		prev = r
	}
}

func TestLadderValidateRejections(t *testing.T) {
	base := DefaultLadder()
	mut := func(f func(Ladder) Ladder) Ladder {
		l := append(Ladder(nil), base...)
		return f(l)
	}
	bad := map[string]Ladder{
		"empty": {},
		"over cap": mut(func(l Ladder) Ladder {
			for len(l) <= MaxRungs {
				r := l[len(l)-1]
				r.BitrateKbps *= 2
				l = append(l, r)
			}
			return l
		}),
		"zero bitrate":       mut(func(l Ladder) Ladder { l[0].BitrateKbps = 0; return l }),
		"cost scale zero":    mut(func(l Ladder) Ladder { l[0].CostScale = 0; return l }),
		"cost scale above 1": mut(func(l Ladder) Ladder { l[1].CostScale = 1.5; return l }),
		"cost scale nan":     mut(func(l Ladder) Ladder { l[1].CostScale = nan(); return l }),
		"quant shift -1":     mut(func(l Ladder) Ladder { l[0].QuantShift = -1; return l }),
		"quant shift 8":      mut(func(l Ladder) Ladder { l[0].QuantShift = 8; return l }),
		"bitrate not ascending": mut(func(l Ladder) Ladder {
			l[2].BitrateKbps = l[1].BitrateKbps
			return l
		}),
		"cost scale descending": mut(func(l Ladder) Ladder {
			l[2].CostScale = l[1].CostScale - 0.1
			return l
		}),
		"quant shift ascending": mut(func(l Ladder) Ladder {
			l[2].QuantShift = l[1].QuantShift + 1
			return l
		}),
		"top not native scale": mut(func(l Ladder) Ladder {
			for i := range l {
				l[i].CostScale = 0.9
			}
			return l
		}),
		"top not native shift": mut(func(l Ladder) Ladder {
			for i := range l {
				l[i].QuantShift = 1
			}
			return l
		}),
	}
	for name, l := range bad {
		err := l.Validate()
		if err == nil {
			t.Errorf("%s: invalid ladder accepted", name)
			continue
		}
		if !errors.Is(err, ErrBadManifest) {
			t.Errorf("%s: error %v does not wrap ErrBadManifest", name, err)
		}
	}
	// A one-rung native ladder is legal (fixed-quality with ABR machinery).
	one := Ladder{{BitrateKbps: 1000, CostScale: 1, QuantShift: 0}}
	if err := one.Validate(); err != nil {
		t.Errorf("single native rung rejected: %v", err)
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

const goodManifest = `MACHLADDER v1
# typical mobile ladder
rung 400 0.40 4

rung 800 0.55 3
rung 1600 0.70 2
rung 3200 0.85 1
rung 6400 1.0 0
`

func TestParseLadder(t *testing.T) {
	l, err := ParseLadder([]byte(goodManifest))
	if err != nil {
		t.Fatal(err)
	}
	if len(l) != 5 {
		t.Fatalf("parsed %d rungs, want 5", len(l))
	}
	if l[0] != (Rung{BitrateKbps: 400, CostScale: 0.40, QuantShift: 4}) {
		t.Fatalf("rung 0 = %+v", l[0])
	}
	if l[4] != (Rung{BitrateKbps: 6400, CostScale: 1, QuantShift: 0}) {
		t.Fatalf("rung 4 = %+v", l[4])
	}
}

func TestParseLadderRejections(t *testing.T) {
	bad := map[string]string{
		"no header":        "rung 400 0.4 4\n",
		"wrong version":    "MACHLADDER v2\nrung 400 1 0\n",
		"empty":            "",
		"junk line":        "MACHLADDER v1\nstep 400 0.4 4\n",
		"short line":       "MACHLADDER v1\nrung 400 0.4\n",
		"long line":        "MACHLADDER v1\nrung 400 0.4 4 extra\n",
		"bad bitrate":      "MACHLADDER v1\nrung four 0.4 4\n",
		"bad scale":        "MACHLADDER v1\nrung 400 forty 4\n",
		"bad shift":        "MACHLADDER v1\nrung 400 0.4 four\n",
		"no rungs":         "MACHLADDER v1\n# just a comment\n",
		"invalid ladder":   "MACHLADDER v1\nrung 400 0.4 4\nrung 400 1 0\n",
		"top not native":   "MACHLADDER v1\nrung 400 0.4 4\n",
		"oversized input":  "MACHLADDER v1\n" + strings.Repeat("#", maxManifestBytes),
		"too many rungs":   manyRungManifest(MaxRungs + 1),
		"scale inf":        "MACHLADDER v1\nrung 400 Inf 4\n",
		"negative bitrate": "MACHLADDER v1\nrung -400 1 0\n",
	}
	for name, m := range bad {
		_, err := ParseLadder([]byte(m))
		if err == nil {
			t.Errorf("%s: bad manifest accepted", name)
			continue
		}
		if !errors.Is(err, ErrBadManifest) {
			t.Errorf("%s: error %v does not wrap ErrBadManifest", name, err)
		}
	}
	// Exactly MaxRungs is fine.
	if _, err := ParseLadder([]byte(manyRungManifest(MaxRungs))); err != nil {
		t.Errorf("%d-rung manifest rejected: %v", MaxRungs, err)
	}
}

// manyRungManifest builds a structurally valid manifest with n rungs; the
// last rung is always native quality.
func manyRungManifest(n int) string {
	var sb strings.Builder
	sb.WriteString("MACHLADDER v1\n")
	for i := 0; i < n; i++ {
		scale, shift := "0.5", 1
		if i == n-1 {
			scale, shift = "1", 0
		}
		fmt.Fprintf(&sb, "rung %d %s %d\n", 100*(i+1), scale, shift)
	}
	return sb.String()
}

func TestLoadLadder(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "ladder.txt")
	if err := os.WriteFile(good, []byte(goodManifest), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := LoadLadder(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(l) != 5 {
		t.Fatalf("loaded %d rungs, want 5", len(l))
	}

	if _, err := LoadLadder(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file accepted")
	} else if errors.Is(err, ErrBadManifest) {
		t.Errorf("I/O error %v wrongly wraps ErrBadManifest", err)
	}

	huge := filepath.Join(dir, "huge.txt")
	if err := os.WriteFile(huge, make([]byte, maxManifestBytes+1), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLadder(huge); !errors.Is(err, ErrBadManifest) {
		t.Errorf("oversized file: err = %v, want ErrBadManifest", err)
	}

	corrupt := filepath.Join(dir, "corrupt.txt")
	if err := os.WriteFile(corrupt, []byte("MACHLADDER v1\nrung x y z\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLadder(corrupt); !errors.Is(err, ErrBadManifest) {
		t.Errorf("corrupt file: err = %v, want ErrBadManifest", err)
	}
}
