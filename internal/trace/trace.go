// Package trace builds and serializes decode traces: the per-frame decoded
// pixels plus the per-mab work records the timing models replay. This mirrors
// the paper's methodology (FFmpeg + pintool traces replayed through the
// GemDroid platform): the functional decode happens once per workload, and
// each scheme under test replays the same trace through the timing and
// energy models, so scheme comparisons are content-identical by construction.
package trace

import (
	"fmt"

	"mach/internal/codec"
	"mach/internal/sim"
)

// Frame is one decode-order entry of a trace.
type Frame struct {
	Type         codec.FrameType
	DisplayIndex int
	EncodedBytes int
	Decoded      *codec.Frame
	Work         *codec.FrameWork

	// Arrival is the virtual time this frame's encoded bytes became
	// available to the decoder (per-frame delivery metadata). Zero means
	// resident before playback — the perfect-network assumption every
	// trace had before the delivery model existed. Populated either by
	// replaying a delivery schedule into the trace (SetArrivals) or from a
	// recorded trace file (format v2).
	Arrival sim.Time
}

// Trace is a fully decoded workload.
type Trace struct {
	Profile string // workload key, e.g. "V7"
	FPS     int
	Params  codec.Params
	Frames  []Frame // decode order
}

// Build decodes an encoded stream into a trace.
func Build(profileKey string, fps int, params codec.Params, encoded []*codec.EncodedFrame) (*Trace, error) {
	dec, err := codec.NewDecoder(params)
	if err != nil {
		return nil, err
	}
	tr := &Trace{Profile: profileKey, FPS: fps, Params: params, Frames: make([]Frame, 0, len(encoded))}
	for _, ef := range encoded {
		fr, work, err := dec.Decode(ef)
		if err != nil {
			return nil, fmt.Errorf("trace: decoding frame %d: %w", ef.DisplayIndex, err)
		}
		tr.Frames = append(tr.Frames, Frame{
			Type:         ef.Type,
			DisplayIndex: ef.DisplayIndex,
			EncodedBytes: ef.SizeBytes(),
			Decoded:      fr,
			Work:         work,
		})
	}
	return tr, nil
}

// NumFrames returns the frame count.
func (t *Trace) NumFrames() int { return len(t.Frames) }

// HasArrivals reports whether any frame carries delivery arrival metadata.
func (t *Trace) HasArrivals() bool {
	for i := range t.Frames {
		if t.Frames[i].Arrival > 0 {
			return true
		}
	}
	return false
}

// SetArrivals attaches per-frame (decode-order) arrival times, e.g. from a
// planned delivery schedule, so the fault pattern can be recorded with the
// trace and replayed without the network model.
func (t *Trace) SetArrivals(avail []sim.Time) error {
	if len(avail) != len(t.Frames) {
		return fmt.Errorf("trace: %d arrival times for %d frames", len(avail), len(t.Frames))
	}
	for i, a := range avail {
		if a < 0 {
			return fmt.Errorf("trace: negative arrival %v for frame %d", a, i)
		}
		t.Frames[i].Arrival = a
	}
	return nil
}

// FramePeriod returns the display interval implied by FPS, in seconds.
func (t *Trace) FramePeriod() float64 {
	if t.FPS <= 0 {
		return 1.0 / 60
	}
	return 1.0 / float64(t.FPS)
}

// DecodedBytesPerFrame returns the decoded frame footprint.
func (t *Trace) DecodedBytesPerFrame() int {
	return t.Params.Width * t.Params.Height * codec.BytesPerPixel
}

// Validate checks internal consistency (sizes, mab counts, display-index
// coverage) and returns a descriptive error for a malformed trace.
func (t *Trace) Validate() error {
	if t.Params.Validate() != nil {
		return fmt.Errorf("trace: invalid params")
	}
	want := t.Params.MabsPerFrame()
	seen := make(map[int]bool, len(t.Frames))
	for i, fr := range t.Frames {
		if fr.Decoded == nil || fr.Work == nil {
			return fmt.Errorf("trace: frame %d missing payload", i)
		}
		if fr.Decoded.W != t.Params.Width || fr.Decoded.H != t.Params.Height {
			return fmt.Errorf("trace: frame %d size %dx%d", i, fr.Decoded.W, fr.Decoded.H)
		}
		if len(fr.Work.Mabs) != want {
			return fmt.Errorf("trace: frame %d has %d mab works, want %d", i, len(fr.Work.Mabs), want)
		}
		if seen[fr.DisplayIndex] {
			return fmt.Errorf("trace: duplicate display index %d", fr.DisplayIndex)
		}
		seen[fr.DisplayIndex] = true
	}
	for i := range t.Frames {
		if !seen[i] {
			return fmt.Errorf("trace: display index %d missing", i)
		}
	}
	return nil
}
