package trace

import (
	"bytes"
	"testing"

	"mach/internal/sim"
)

// FuzzTraceLoad feeds arbitrary bytes to Load. Trace files are untrusted
// input, so whatever the bytes, Load must return (possibly an error) without
// panicking and without unbounded allocation — every length in the format is
// capped before it sizes a buffer.
func FuzzTraceLoad(f *testing.F) {
	// Seed the corpus with valid files (v2, with and without arrivals) so
	// the fuzzer starts from deep coverage of the happy path.
	tr := buildTestTrace(f, "V1", 2)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	arr := make([]sim.Time, len(tr.Frames))
	for i := range arr {
		arr[i] = sim.FromMilliseconds(float64(7 * i))
	}
	if err := tr.SetArrivals(arr); err != nil {
		f.Fatal(err)
	}
	buf.Reset()
	if err := tr.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(magic))
	f.Add([]byte("MTRC\x02\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A file Load accepts must also be internally consistent enough to
		// re-save.
		if err := tr.Save(&bytes.Buffer{}); err != nil {
			t.Fatalf("loaded trace failed to re-save: %v", err)
		}
	})
}
