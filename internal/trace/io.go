package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"mach/internal/codec"
)

// Binary trace format: a compact varint-based encoding so traces can be
// recorded once (cmd/vgen) and replayed by later runs without re-encoding.
//
//	magic "MTRC" | version uvarint | header | frames
//
// Pixels are stored with a trivial byte-wise RLE, which compresses the
// synthetic workloads' flat regions well while staying dependency-free.

const (
	magic   = "MTRC"
	version = 1
)

type wireHeader struct {
	Profile string       `json:"profile"`
	FPS     int          `json:"fps"`
	Params  codec.Params `json:"params"`
	Frames  int          `json:"frames"`
}

// Save writes the trace in binary form.
func (t *Trace) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	writeUvarint(bw, version)
	hdr, err := json.Marshal(wireHeader{Profile: t.Profile, FPS: t.FPS, Params: t.Params, Frames: len(t.Frames)})
	if err != nil {
		return err
	}
	writeUvarint(bw, uint64(len(hdr)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	for i := range t.Frames {
		if err := writeFrame(bw, &t.Frames[i]); err != nil {
			return fmt.Errorf("trace: frame %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Load reads a binary trace written by Save.
func Load(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, err
	}
	if string(got) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", got)
	}
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	hlen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	hraw := make([]byte, hlen)
	if _, err := io.ReadFull(br, hraw); err != nil {
		return nil, err
	}
	var hdr wireHeader
	if err := json.Unmarshal(hraw, &hdr); err != nil {
		return nil, err
	}
	if err := hdr.Params.Validate(); err != nil {
		return nil, err
	}
	t := &Trace{Profile: hdr.Profile, FPS: hdr.FPS, Params: hdr.Params, Frames: make([]Frame, hdr.Frames)}
	for i := 0; i < hdr.Frames; i++ {
		if err := readFrame(br, hdr.Params, &t.Frames[i]); err != nil {
			return nil, fmt.Errorf("trace: frame %d: %w", i, err)
		}
	}
	return t, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	//lint:ignore errcheck bufio.Writer errors are sticky; Save's final Flush returns the first one
	w.Write(buf[:n])
}

func writeVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	//lint:ignore errcheck bufio.Writer errors are sticky; Save's final Flush returns the first one
	w.Write(buf[:n])
}

func writeFrame(w *bufio.Writer, f *Frame) error {
	writeUvarint(w, uint64(f.Type))
	writeUvarint(w, uint64(f.DisplayIndex))
	writeUvarint(w, uint64(f.EncodedBytes))
	// Work records. TotalBits is stored explicitly: it includes frame
	// header bits beyond the per-mab sum.
	writeUvarint(w, uint64(f.Work.TotalBits))
	writeUvarint(w, uint64(len(f.Work.Mabs)))
	for _, m := range f.Work.Mabs {
		writeUvarint(w, uint64(m.Type))
		writeUvarint(w, uint64(m.Bits))
		writeUvarint(w, uint64(m.Nonzero))
		writeUvarint(w, uint64(m.RefReads))
		writeVarint(w, int64(m.MV.DX))
		writeVarint(w, int64(m.MV.DY))
		writeVarint(w, int64(m.MVB.DX))
		writeVarint(w, int64(m.MVB.DY))
		writeVarint(w, int64(m.MVF.DX))
		writeVarint(w, int64(m.MVF.DY))
		writeUvarint(w, uint64(m.Mode))
	}
	// Pixels: byte-wise RLE (value, runLen).
	pix := f.Decoded.Pix
	for i := 0; i < len(pix); {
		j := i + 1
		for j < len(pix) && pix[j] == pix[i] && j-i < 1<<20 {
			j++
		}
		if err := w.WriteByte(pix[i]); err != nil {
			return err
		}
		writeUvarint(w, uint64(j-i))
		i = j
	}
	return w.WriteByte(0xA5) // frame sentinel
}

func readFrame(r *bufio.Reader, p codec.Params, f *Frame) error {
	readU := func() (uint64, error) { return binary.ReadUvarint(r) }
	readS := func() (int64, error) { return binary.ReadVarint(r) }

	ft, err := readU()
	if err != nil {
		return err
	}
	di, err := readU()
	if err != nil {
		return err
	}
	eb, err := readU()
	if err != nil {
		return err
	}
	f.Type = codec.FrameType(ft)
	f.DisplayIndex = int(di)
	f.EncodedBytes = int(eb)

	totalBits, err := readU()
	if err != nil {
		return err
	}
	nm, err := readU()
	if err != nil {
		return err
	}
	if nm > uint64(p.MabsPerFrame()) {
		return fmt.Errorf("mab count %d exceeds %d", nm, p.MabsPerFrame())
	}
	work := &codec.FrameWork{Type: f.Type, DisplayIndex: f.DisplayIndex, Mabs: make([]codec.MabWork, nm)}
	for i := range work.Mabs {
		m := &work.Mabs[i]
		vals := make([]uint64, 4)
		for k := range vals {
			if vals[k], err = readU(); err != nil {
				return err
			}
		}
		m.Type = codec.MabType(vals[0])
		m.Bits = int32(vals[1])
		m.Nonzero = int16(vals[2])
		m.RefReads = int8(vals[3])
		svals := make([]int64, 6)
		for k := range svals {
			if svals[k], err = readS(); err != nil {
				return err
			}
		}
		m.MV = codec.MotionVector{DX: int8(svals[0]), DY: int8(svals[1])}
		m.MVB = codec.MotionVector{DX: int8(svals[2]), DY: int8(svals[3])}
		m.MVF = codec.MotionVector{DX: int8(svals[4]), DY: int8(svals[5])}
		mode, err := readU()
		if err != nil {
			return err
		}
		m.Mode = codec.IntraMode(mode)
		switch m.Type {
		case codec.MabI:
			work.CountI++
		case codec.MabP:
			work.CountP++
		case codec.MabB:
			work.CountB++
		}
	}
	work.TotalBits = int64(totalBits)
	f.Work = work

	fr := codec.NewFrame(p.Width, p.Height)
	for i := 0; i < len(fr.Pix); {
		v, err := r.ReadByte()
		if err != nil {
			return err
		}
		run, err := readU()
		if err != nil {
			return err
		}
		if run == 0 || i+int(run) > len(fr.Pix) {
			return fmt.Errorf("pixel RLE overrun at %d (+%d)", i, run)
		}
		for k := 0; k < int(run); k++ {
			fr.Pix[i+k] = v
		}
		i += int(run)
	}
	f.Decoded = fr
	sentinel, err := r.ReadByte()
	if err != nil {
		return err
	}
	if sentinel != 0xA5 {
		return fmt.Errorf("bad frame sentinel %#x", sentinel)
	}
	return nil
}

// Summary is the JSON-exportable digest of a trace (no pixel payload).
type Summary struct {
	Profile         string  `json:"profile"`
	FPS             int     `json:"fps"`
	Width           int     `json:"width"`
	Height          int     `json:"height"`
	MabSize         int     `json:"mab_size"`
	Frames          int     `json:"frames"`
	EncodedBytes    int     `json:"encoded_bytes"`
	MabsI           int     `json:"mabs_i"`
	MabsP           int     `json:"mabs_p"`
	MabsB           int     `json:"mabs_b"`
	AvgBitsPerFrame float64 `json:"avg_bits_per_frame"`
}

// Summarize computes the trace digest.
func (t *Trace) Summarize() Summary {
	s := Summary{
		Profile: t.Profile,
		FPS:     t.FPS,
		Width:   t.Params.Width,
		Height:  t.Params.Height,
		MabSize: t.Params.MabSize,
		Frames:  len(t.Frames),
	}
	var bits int64
	for i := range t.Frames {
		f := &t.Frames[i]
		s.EncodedBytes += f.EncodedBytes
		s.MabsI += f.Work.CountI
		s.MabsP += f.Work.CountP
		s.MabsB += f.Work.CountB
		bits += f.Work.TotalBits
	}
	if len(t.Frames) > 0 {
		s.AvgBitsPerFrame = float64(bits) / float64(len(t.Frames))
	}
	return s
}

// WriteJSON writes the summary as indented JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Summarize())
}
