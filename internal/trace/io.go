package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"mach/internal/codec"
	"mach/internal/sim"
)

// Binary trace format: a compact varint-based encoding so traces can be
// recorded once (cmd/vgen) and replayed by later runs without re-encoding.
//
//	magic "MTRC" | version uvarint | header | frames
//
// Pixels are stored with a trivial byte-wise RLE, which compresses the
// synthetic workloads' flat regions well while staying dependency-free.
//
// Version 2 adds a per-frame arrival-time uvarint (picoseconds) after the
// encoded size — the delivery metadata Frame.Arrival carries. Version 1
// files still load, with every arrival zero (resident before playback).
//
// Trace files are untrusted input (they cross machines and fuzzers): every
// length that sizes an allocation is capped, and every decoded field is
// range-checked before use, so a corrupt or adversarial file yields an
// error — never a panic or a multi-gigabyte allocation.

const (
	magic      = "MTRC"
	version    = 2
	minVersion = 1

	// Hard caps on untrusted lengths. The JSON header is a few hundred
	// bytes in practice; a million frames is almost five hours at 60 fps.
	maxHeaderBytes  = 1 << 16
	maxFrames       = 1 << 20
	maxEncodedBytes = 1 << 30
	maxTotalBits    = int64(1) << 50
	maxArrival      = int64(1) << 60 // ~13 days of virtual time

	// Geometry caps: codec.Params.Validate accepts any positive multiple of
	// the mab size (the encoder has no reason to bound it), but a trace
	// header is attacker-controlled and its dimensions size every per-frame
	// pixel and mab-work allocation. 8192 px per axis covers 8K UHD, and
	// one GiB of total decoded payload is far beyond any real trace while
	// keeping the worst-case allocation a corrupt file can demand bounded.
	maxDimension    = 1 << 13
	maxDecodedBytes = int64(1) << 30
)

type wireHeader struct {
	Profile string       `json:"profile"`
	FPS     int          `json:"fps"`
	Params  codec.Params `json:"params"`
	Frames  int          `json:"frames"`
}

// Save writes the trace in binary form.
func (t *Trace) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	writeUvarint(bw, version)
	hdr, err := json.Marshal(wireHeader{Profile: t.Profile, FPS: t.FPS, Params: t.Params, Frames: len(t.Frames)})
	if err != nil {
		return err
	}
	writeUvarint(bw, uint64(len(hdr)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	for i := range t.Frames {
		if err := writeFrame(bw, &t.Frames[i]); err != nil {
			return fmt.Errorf("trace: frame %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Load reads a binary trace written by Save.
func Load(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, err
	}
	if string(got) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", got)
	}
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if v < minVersion || v > version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	hlen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if hlen > maxHeaderBytes {
		return nil, fmt.Errorf("trace: header length %d exceeds %d", hlen, maxHeaderBytes)
	}
	hraw := make([]byte, hlen)
	if _, err := io.ReadFull(br, hraw); err != nil {
		return nil, err
	}
	var hdr wireHeader
	if err := json.Unmarshal(hraw, &hdr); err != nil {
		return nil, err
	}
	if err := hdr.Params.Validate(); err != nil {
		return nil, err
	}
	if hdr.Frames < 0 || hdr.Frames > maxFrames {
		return nil, fmt.Errorf("trace: frame count %d outside [0,%d]", hdr.Frames, maxFrames)
	}
	if hdr.FPS < 1 || hdr.FPS > 1000 {
		return nil, fmt.Errorf("trace: fps %d outside [1,1000]", hdr.FPS)
	}
	if hdr.Params.Width > maxDimension || hdr.Params.Height > maxDimension {
		return nil, fmt.Errorf("trace: dimensions %dx%d exceed %d",
			hdr.Params.Width, hdr.Params.Height, maxDimension)
	}
	frameBytes := int64(hdr.Params.Width) * int64(hdr.Params.Height) * int64(codec.BytesPerPixel)
	if int64(hdr.Frames)*frameBytes > maxDecodedBytes {
		return nil, fmt.Errorf("trace: decoded payload %d bytes exceeds %d",
			int64(hdr.Frames)*frameBytes, maxDecodedBytes)
	}
	// Frames are materialized one at a time — the slice is sized by the
	// (capped) declared count, but each element's payload allocations are
	// bounded by the already-validated Params geometry.
	t := &Trace{Profile: hdr.Profile, FPS: hdr.FPS, Params: hdr.Params, Frames: make([]Frame, hdr.Frames)}
	for i := 0; i < hdr.Frames; i++ {
		if err := readFrame(br, int(v), hdr, &t.Frames[i]); err != nil {
			return nil, fmt.Errorf("trace: frame %d: %w", i, err)
		}
	}
	return t, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	//lint:ignore errcheck bufio.Writer errors are sticky; Save's final Flush returns the first one
	w.Write(buf[:n])
}

func writeVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	//lint:ignore errcheck bufio.Writer errors are sticky; Save's final Flush returns the first one
	w.Write(buf[:n])
}

func writeFrame(w *bufio.Writer, f *Frame) error {
	writeUvarint(w, uint64(f.Type))
	writeUvarint(w, uint64(f.DisplayIndex))
	writeUvarint(w, uint64(f.EncodedBytes))
	writeUvarint(w, uint64(f.Arrival)) // v2: delivery arrival metadata
	// Work records. TotalBits is stored explicitly: it includes frame
	// header bits beyond the per-mab sum.
	writeUvarint(w, uint64(f.Work.TotalBits))
	writeUvarint(w, uint64(len(f.Work.Mabs)))
	for _, m := range f.Work.Mabs {
		writeUvarint(w, uint64(m.Type))
		writeUvarint(w, uint64(m.Bits))
		writeUvarint(w, uint64(m.Nonzero))
		writeUvarint(w, uint64(m.RefReads))
		writeVarint(w, int64(m.MV.DX))
		writeVarint(w, int64(m.MV.DY))
		writeVarint(w, int64(m.MVB.DX))
		writeVarint(w, int64(m.MVB.DY))
		writeVarint(w, int64(m.MVF.DX))
		writeVarint(w, int64(m.MVF.DY))
		writeUvarint(w, uint64(m.Mode))
	}
	// Pixels: byte-wise RLE (value, runLen).
	pix := f.Decoded.Pix
	for i := 0; i < len(pix); {
		j := i + 1
		for j < len(pix) && pix[j] == pix[i] && j-i < 1<<20 {
			j++
		}
		if err := w.WriteByte(pix[i]); err != nil {
			return err
		}
		writeUvarint(w, uint64(j-i))
		i = j
	}
	return w.WriteByte(0xA5) // frame sentinel
}

func readFrame(r *bufio.Reader, v int, hdr wireHeader, f *Frame) error {
	p := hdr.Params
	readU := func() (uint64, error) { return binary.ReadUvarint(r) }
	readS := func() (int64, error) { return binary.ReadVarint(r) }

	ft, err := readU()
	if err != nil {
		return err
	}
	if ft > uint64(codec.FrameB) {
		return fmt.Errorf("frame type %d", ft)
	}
	di, err := readU()
	if err != nil {
		return err
	}
	// Display order is a permutation of decode order: the index must fall
	// inside the declared frame count.
	if di >= uint64(hdr.Frames) {
		return fmt.Errorf("display index %d outside [0,%d)", di, hdr.Frames)
	}
	eb, err := readU()
	if err != nil {
		return err
	}
	if eb > maxEncodedBytes {
		return fmt.Errorf("encoded size %d exceeds %d", eb, maxEncodedBytes)
	}
	f.Type = codec.FrameType(ft)
	f.DisplayIndex = int(di)
	f.EncodedBytes = int(eb)
	if v >= 2 {
		arr, err := readU()
		if err != nil {
			return err
		}
		if arr > uint64(maxArrival) {
			return fmt.Errorf("arrival %d exceeds %d", arr, maxArrival)
		}
		f.Arrival = sim.Time(arr)
	}

	totalBits, err := readU()
	if err != nil {
		return err
	}
	if totalBits > uint64(maxTotalBits) {
		return fmt.Errorf("total bits %d exceeds %d", totalBits, maxTotalBits)
	}
	nm, err := readU()
	if err != nil {
		return err
	}
	if nm > uint64(p.MabsPerFrame()) {
		return fmt.Errorf("mab count %d exceeds %d", nm, p.MabsPerFrame())
	}
	work := &codec.FrameWork{Type: f.Type, DisplayIndex: f.DisplayIndex, Mabs: make([]codec.MabWork, nm)}
	for i := range work.Mabs {
		m := &work.Mabs[i]
		vals := make([]uint64, 4)
		for k := range vals {
			if vals[k], err = readU(); err != nil {
				return err
			}
		}
		m.Type = codec.MabType(vals[0])
		m.Bits = int32(vals[1])
		m.Nonzero = int16(vals[2])
		m.RefReads = int8(vals[3])
		svals := make([]int64, 6)
		for k := range svals {
			if svals[k], err = readS(); err != nil {
				return err
			}
		}
		m.MV = codec.MotionVector{DX: int8(svals[0]), DY: int8(svals[1])}
		m.MVB = codec.MotionVector{DX: int8(svals[2]), DY: int8(svals[3])}
		m.MVF = codec.MotionVector{DX: int8(svals[4]), DY: int8(svals[5])}
		mode, err := readU()
		if err != nil {
			return err
		}
		m.Mode = codec.IntraMode(mode)
		switch m.Type {
		case codec.MabI:
			work.CountI++
		case codec.MabP:
			work.CountP++
		case codec.MabB:
			work.CountB++
		}
	}
	work.TotalBits = int64(totalBits)
	f.Work = work

	fr := codec.NewFrame(p.Width, p.Height)
	for i := 0; i < len(fr.Pix); {
		v, err := r.ReadByte()
		if err != nil {
			return err
		}
		run, err := readU()
		if err != nil {
			return err
		}
		if run == 0 || i+int(run) > len(fr.Pix) {
			return fmt.Errorf("pixel RLE overrun at %d (+%d)", i, run)
		}
		for k := 0; k < int(run); k++ {
			fr.Pix[i+k] = v
		}
		i += int(run)
	}
	f.Decoded = fr
	sentinel, err := r.ReadByte()
	if err != nil {
		return err
	}
	if sentinel != 0xA5 {
		return fmt.Errorf("bad frame sentinel %#x", sentinel)
	}
	return nil
}

// Summary is the JSON-exportable digest of a trace (no pixel payload).
type Summary struct {
	Profile         string  `json:"profile"`
	FPS             int     `json:"fps"`
	Width           int     `json:"width"`
	Height          int     `json:"height"`
	MabSize         int     `json:"mab_size"`
	Frames          int     `json:"frames"`
	EncodedBytes    int     `json:"encoded_bytes"`
	MabsI           int     `json:"mabs_i"`
	MabsP           int     `json:"mabs_p"`
	MabsB           int     `json:"mabs_b"`
	AvgBitsPerFrame float64 `json:"avg_bits_per_frame"`
}

// Summarize computes the trace digest.
func (t *Trace) Summarize() Summary {
	s := Summary{
		Profile: t.Profile,
		FPS:     t.FPS,
		Width:   t.Params.Width,
		Height:  t.Params.Height,
		MabSize: t.Params.MabSize,
		Frames:  len(t.Frames),
	}
	var bits int64
	for i := range t.Frames {
		f := &t.Frames[i]
		s.EncodedBytes += f.EncodedBytes
		s.MabsI += f.Work.CountI
		s.MabsP += f.Work.CountP
		s.MabsB += f.Work.CountB
		bits += f.Work.TotalBits
	}
	if len(t.Frames) > 0 {
		s.AvgBitsPerFrame = float64(bits) / float64(len(t.Frames))
	}
	return s
}

// WriteJSON writes the summary as indented JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Summarize())
}
