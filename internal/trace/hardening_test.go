package trace

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"strings"
	"testing"

	"mach/internal/codec"
	"mach/internal/sim"
)

// putUvarint appends a uvarint to the buffer (test-side mirror of the writer).
func putUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

// craft builds the file prefix magic|version|len(header)|header for an
// arbitrary wire header, then appends extra frame bytes.
func craft(t *testing.T, v uint64, hdr wireHeader, frameBytes []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(magic)
	putUvarint(&buf, v)
	raw, err := json.Marshal(hdr)
	if err != nil {
		t.Fatal(err)
	}
	putUvarint(&buf, uint64(len(raw)))
	buf.Write(raw)
	buf.Write(frameBytes)
	return buf.Bytes()
}

func validHeader(t *testing.T, frames int) wireHeader {
	t.Helper()
	tr := buildTestTrace(t, "V1", 1)
	return wireHeader{Profile: "V1", FPS: 60, Params: tr.Params, Frames: frames}
}

func loadErr(t *testing.T, raw []byte, want string) {
	t.Helper()
	_, err := Load(bytes.NewReader(raw))
	if err == nil {
		t.Fatalf("corrupt input accepted (want error containing %q)", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func TestLoadCapsHeaderLength(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	putUvarint(&buf, version)
	putUvarint(&buf, maxHeaderBytes+1) // declared length, no payload needed
	loadErr(t, buf.Bytes(), "header length")
}

func TestLoadCapsFrameCount(t *testing.T) {
	hdr := validHeader(t, maxFrames+1)
	loadErr(t, craft(t, version, hdr, nil), "frame count")
	hdr.Frames = -1
	loadErr(t, craft(t, version, hdr, nil), "frame count")
}

func TestLoadRejectsBadFPS(t *testing.T) {
	hdr := validHeader(t, 0)
	hdr.FPS = 0
	loadErr(t, craft(t, version, hdr, nil), "fps")
	hdr.FPS = 100000
	loadErr(t, craft(t, version, hdr, nil), "fps")
}

func TestLoadRejectsBadVersion(t *testing.T) {
	hdr := validHeader(t, 0)
	loadErr(t, craft(t, 0, hdr, nil), "version")
	loadErr(t, craft(t, version+1, hdr, nil), "version")
}

func TestLoadVersion1StillReads(t *testing.T) {
	// A zero-frame v1 file is fully decodable; arrivals default to resident.
	tr, err := Load(bytes.NewReader(craft(t, 1, validHeader(t, 0), nil)))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumFrames() != 0 || tr.HasArrivals() {
		t.Fatalf("v1 load: %d frames, arrivals=%v", tr.NumFrames(), tr.HasArrivals())
	}
}

func TestLoadCapsGeometry(t *testing.T) {
	// codec.Params.Validate has no upper bound (the encoder doesn't need
	// one), but the loader must refuse headers whose declared geometry
	// would size huge per-frame allocations.
	hdr := validHeader(t, 0)
	hdr.Params.Width = 2 * maxDimension
	loadErr(t, craft(t, version, hdr, nil), "dimensions")

	hdr = validHeader(t, 6)
	hdr.Params.Width = maxDimension
	hdr.Params.Height = maxDimension // 6 frames x 8192^2 x 3 B > 1 GiB
	loadErr(t, craft(t, version, hdr, nil), "decoded payload")
}

func TestLoadRejectsBadFrameFields(t *testing.T) {
	hdr := validHeader(t, 1)
	frame := func(vals ...uint64) []byte {
		var buf bytes.Buffer
		for _, v := range vals {
			putUvarint(&buf, v)
		}
		return buf.Bytes()
	}
	loadErr(t, craft(t, version, hdr, frame(uint64(codec.FrameB)+1)), "frame type")
	loadErr(t, craft(t, version, hdr, frame(0, 1)), "display index")
	loadErr(t, craft(t, version, hdr, frame(0, 0, maxEncodedBytes+1)), "encoded size")
	loadErr(t, craft(t, version, hdr, frame(0, 0, 0, uint64(maxArrival)+1)), "arrival")
	loadErr(t, craft(t, version, hdr, frame(0, 0, 0, 0, uint64(maxTotalBits)+1)), "total bits")
	// Mab count beyond the declared geometry.
	mabs := uint64(hdr.Params.MabsPerFrame())
	loadErr(t, craft(t, version, hdr, frame(0, 0, 0, 0, 0, mabs+1)), "mab count")
}

func TestLoadTruncationsNeverPanic(t *testing.T) {
	tr := buildTestTrace(t, "V1", 2)
	if err := tr.SetArrivals([]sim.Time{sim.FromMilliseconds(10), sim.FromMilliseconds(20)}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for n := 0; n < len(raw); n += 7 {
		if _, err := Load(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation at %d of %d bytes accepted", n, len(raw))
		}
	}
}

func TestArrivalRoundTrip(t *testing.T) {
	tr := buildTestTrace(t, "V1", 3)
	if tr.HasArrivals() {
		t.Fatal("fresh trace claims arrivals")
	}
	arr := []sim.Time{0, sim.FromMilliseconds(5), sim.FromMilliseconds(9)}
	if err := tr.SetArrivals(arr); err != nil {
		t.Fatal(err)
	}
	if !tr.HasArrivals() {
		t.Fatal("arrivals not set")
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Frames {
		if got.Frames[i].Arrival != tr.Frames[i].Arrival {
			t.Fatalf("frame %d arrival %v != %v", i, got.Frames[i].Arrival, tr.Frames[i].Arrival)
		}
	}
	if err := tr.SetArrivals([]sim.Time{1}); err == nil {
		t.Fatal("length-mismatched arrivals accepted")
	}
	if err := tr.SetArrivals([]sim.Time{-1, 0, 0}); err == nil {
		t.Fatal("negative arrival accepted")
	}
}
