package trace

import (
	"bytes"
	"strings"
	"testing"

	"mach/internal/codec"
	"mach/internal/video"
)

func buildTestTrace(t testing.TB, key string, frames int) *Trace {
	t.Helper()
	prof, err := video.ProfileByKey(key)
	if err != nil {
		t.Fatal(err)
	}
	st, err := video.Synthesize(prof, video.StreamConfig{
		Width: 64, Height: 48, NumFrames: frames, Seed: 11, MabSize: 4, Quant: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Build(prof.Key, prof.FPS, st.Params, st.Encoded)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildAndValidate(t *testing.T) {
	tr := buildTestTrace(t, "V1", 8)
	if tr.NumFrames() != 8 {
		t.Fatalf("frames = %d", tr.NumFrames())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.DecodedBytesPerFrame() != 64*48*3 {
		t.Fatalf("decoded bytes = %d", tr.DecodedBytesPerFrame())
	}
	if tr.FramePeriod() != 1.0/60 {
		t.Fatalf("period = %v", tr.FramePeriod())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := buildTestTrace(t, "V1", 4)
	tr.Frames[2].DisplayIndex = tr.Frames[1].DisplayIndex
	if tr.Validate() == nil {
		t.Fatal("duplicate display index should fail validation")
	}
	tr = buildTestTrace(t, "V1", 4)
	tr.Frames[0].Work.Mabs = tr.Frames[0].Work.Mabs[:5]
	if tr.Validate() == nil {
		t.Fatal("truncated mab works should fail validation")
	}
	tr = buildTestTrace(t, "V1", 4)
	tr.Frames[0].Decoded = nil
	if tr.Validate() == nil {
		t.Fatal("missing pixels should fail validation")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := buildTestTrace(t, "V5", 6) // includes B frames
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.Profile != tr.Profile || got.FPS != tr.FPS || got.NumFrames() != tr.NumFrames() {
		t.Fatalf("header mismatch: %+v", got.Summarize())
	}
	for i := range tr.Frames {
		a, b := &tr.Frames[i], &got.Frames[i]
		if a.Type != b.Type || a.DisplayIndex != b.DisplayIndex || a.EncodedBytes != b.EncodedBytes {
			t.Fatalf("frame %d header mismatch", i)
		}
		if !bytes.Equal(a.Decoded.Pix, b.Decoded.Pix) {
			t.Fatalf("frame %d pixels differ", i)
		}
		if len(a.Work.Mabs) != len(b.Work.Mabs) {
			t.Fatalf("frame %d work length", i)
		}
		for j := range a.Work.Mabs {
			if a.Work.Mabs[j] != b.Work.Mabs[j] {
				t.Fatalf("frame %d mab %d: %+v vs %+v", i, j, a.Work.Mabs[j], b.Work.Mabs[j])
			}
		}
		if a.Work.CountI != b.Work.CountI || a.Work.CountP != b.Work.CountP || a.Work.CountB != b.Work.CountB {
			t.Fatalf("frame %d counts differ", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("NOPE trailing"))); err == nil {
		t.Fatal("bad magic should fail")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should fail")
	}
	// Truncated valid stream.
	tr := buildTestTrace(t, "V1", 3)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Load(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated stream should fail")
	}
}

func TestSummarizeAndJSON(t *testing.T) {
	tr := buildTestTrace(t, "V4", 5)
	s := tr.Summarize()
	if s.Frames != 5 || s.Profile != "V4" {
		t.Fatalf("summary = %+v", s)
	}
	if s.MabsI+s.MabsP+s.MabsB != 5*tr.Params.MabsPerFrame() {
		t.Fatalf("mab totals = %+v", s)
	}
	if s.EncodedBytes <= 0 || s.AvgBitsPerFrame <= 0 {
		t.Fatalf("sizes = %+v", s)
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "\"profile\": \"V4\"") {
		t.Fatalf("json = %s", sb.String())
	}
}

func TestBuildRejectsCorruptStream(t *testing.T) {
	prof, _ := video.ProfileByKey("V1")
	st, err := video.Synthesize(prof, video.StreamConfig{Width: 32, Height: 32, NumFrames: 3, Seed: 1, MabSize: 4, Quant: 8})
	if err != nil {
		t.Fatal(err)
	}
	st.Encoded[1].Data = []byte{0xFF}
	if _, err := Build(prof.Key, prof.FPS, st.Params, st.Encoded); err == nil {
		t.Fatal("corrupt stream should fail to build")
	}
	_ = codec.FrameI
}
