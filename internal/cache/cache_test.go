package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShapeValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { NewSetAssoc(0, 64, 4) },
		func() { NewSetAssoc(1000, 64, 4) },   // not divisible
		func() { NewSetAssoc(64*4*3, 64, 4) }, // 3 sets, not power of two
		func() { NewSetAssoc(63*4*4, 63, 4) }, // line not power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on bad shape")
				}
			}()
			bad()
		}()
	}
}

func TestBasicHitMiss(t *testing.T) {
	c := NewSetAssoc(1024, 64, 4) // 4 sets
	if res := c.Access(0, false); res.Hit {
		t.Fatal("cold access hit")
	}
	if res := c.Access(0, false); !res.Hit {
		t.Fatal("warm access missed")
	}
	if res := c.Access(32, false); !res.Hit {
		t.Fatal("same-line access missed")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.HitRate() != 2.0/3 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewSetAssoc(2*64*2, 64, 2) // 2 sets, 2 ways
	// Set 0 receives line addresses 0, 128, 256 (stride = sets*line = 128).
	c.Access(0, false)
	c.Access(128, false)
	c.Access(0, false)   // touch 0, making 128 the LRU way
	c.Access(256, false) // evicts 128
	if !c.Probe(0) {
		t.Fatal("line 0 should survive")
	}
	if c.Probe(128) {
		t.Fatal("line 128 should be evicted")
	}
	if !c.Probe(256) {
		t.Fatal("line 256 should be resident")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := NewSetAssoc(2*64*1, 64, 1) // direct-mapped, 2 sets
	c.Access(0, true)               // dirty
	res := c.Access(128, false)     // conflicts with set 0
	if !res.Writeback {
		t.Fatal("expected writeback of dirty victim")
	}
	if res.WritebackAddr != 0 {
		t.Fatalf("writeback addr = %#x", res.WritebackAddr)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	c := NewDirectMapped(256, 64)
	c.Access(0, true)
	c.Access(64, false)
	if !c.Invalidate(0) {
		t.Fatal("line 0 was dirty")
	}
	if c.Probe(0) {
		t.Fatal("line 0 still resident")
	}
	if c.Invalidate(0) {
		t.Fatal("double invalidate reported dirty")
	}
	c.Access(128, true)
	if dirty := c.Flush(); dirty != 1 {
		t.Fatalf("flush dirty = %d", dirty)
	}
	if c.Probe(64) || c.Probe(128) {
		t.Fatal("flush left lines resident")
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := NewSetAssoc(2*64*2, 64, 2)
	c.Access(0, false)
	c.Access(128, false)
	before := c.Stats()
	c.Probe(0)
	c.Probe(999999)
	if c.Stats() != before {
		t.Fatal("probe changed stats")
	}
	// Probing must not refresh LRU: 0 is still LRU, so inserting a third
	// line evicts 0 despite the probe.
	c.Access(128, false) // make 0 LRU
	c.Probe(0)
	c.Access(256, false)
	if c.Probe(0) {
		t.Fatal("probe refreshed LRU")
	}
}

func TestFullyResidentWorkingSet(t *testing.T) {
	// A working set equal to capacity must fully hit after one pass,
	// regardless of access order (property over permutations).
	f := func(seed int64) bool {
		c := NewSetAssoc(4096, 64, 4)
		rng := rand.New(rand.NewSource(seed))
		addrs := make([]uint64, 64)
		for i := range addrs {
			addrs[i] = uint64(i * 64)
		}
		rng.Shuffle(len(addrs), func(i, j int) { addrs[i], addrs[j] = addrs[j], addrs[i] })
		for _, a := range addrs {
			c.Access(a, false)
		}
		for _, a := range addrs {
			if !c.Access(a, false).Hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLinesFor(t *testing.T) {
	cases := []struct {
		addr, size uint64
		want       []uint64
	}{
		{0, 48, []uint64{0}},
		{32, 48, []uint64{0, 64}}, // the paper's fragmentation case: 48B mab straddles a line
		{64, 64, []uint64{64}},
		{60, 8, []uint64{0, 64}},
		{0, 0, nil},
		{130, 200, []uint64{128, 192, 256, 320}},
	}
	for _, c := range cases {
		got := LinesFor(c.addr, c.size, 64)
		if len(got) != len(c.want) {
			t.Errorf("LinesFor(%d,%d) = %v want %v", c.addr, c.size, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("LinesFor(%d,%d) = %v want %v", c.addr, c.size, got, c.want)
				break
			}
		}
	}
}

func TestMissRateDropsWithCapacity(t *testing.T) {
	// Larger caches must not have higher miss rates on a looping stream —
	// the Fig 7a sweep depends on this monotonicity for the compute phase.
	stream := make([]uint64, 0, 4000)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 4000; i++ {
		stream = append(stream, uint64(rng.Intn(512))*64) // 32KB working set
	}
	prev := 1.1
	for _, kb := range []int{8, 16, 32, 64} {
		c := NewSetAssoc(kb*1024, 64, 4)
		for _, a := range stream {
			c.Access(a, false)
		}
		mr := c.Stats().MissRate()
		if mr > prev+1e-9 {
			t.Fatalf("miss rate rose with capacity: %v at %dKB (prev %v)", mr, kb, prev)
		}
		prev = mr
	}
}
