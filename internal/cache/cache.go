// Package cache provides address-indexed hardware cache models used across
// the SoC: the video decoder's internal decode cache (Fig 7a sweep) and the
// display controller's direct-mapped display cache (§5.1, Fig 10c).
//
// The models are behavioural: they track tag-store state and hit/miss/writeback
// counts for 64-byte lines but do not hold data. Data movement is accounted by
// the memory system.
package cache

import "fmt"

// Stats counts cache events.
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	Writebacks int64 // evictions of dirty lines
}

// Accesses returns hits + misses.
func (s Stats) Accesses() int64 { return s.Hits + s.Misses }

// HitRate returns hits / accesses, or 0 with no accesses.
func (s Stats) HitRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.Hits) / float64(a)
}

// MissRate returns 1 - HitRate for a non-empty access stream.
func (s Stats) MissRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.Misses) / float64(a)
}

func (s Stats) String() string {
	return fmt.Sprintf("acc=%d hit=%.2f%% evict=%d wb=%d", s.Accesses(), 100*s.HitRate(), s.Evictions, s.Writebacks)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // larger = more recently used
}

// SetAssoc is an N-way set-associative cache with true-LRU replacement.
type SetAssoc struct {
	lineSize  uint64
	sets      int
	ways      int
	lines     []line // sets*ways, row-major by set
	tick      uint64
	stats     Stats
	lineShift uint
}

// NewSetAssoc builds a cache of capacityBytes with the given line size and
// associativity. capacityBytes must be an exact multiple of lineSize*ways and
// the set count must be a power of two (hardware-indexable).
func NewSetAssoc(capacityBytes, lineSize, ways int) *SetAssoc {
	if capacityBytes <= 0 || lineSize <= 0 || ways <= 0 {
		panic("cache: non-positive shape")
	}
	if capacityBytes%(lineSize*ways) != 0 {
		panic(fmt.Sprintf("cache: capacity %d not divisible by line*ways %d", capacityBytes, lineSize*ways))
	}
	sets := capacityBytes / (lineSize * ways)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", sets))
	}
	if lineSize&(lineSize-1) != 0 {
		panic(fmt.Sprintf("cache: line size %d not a power of two", lineSize))
	}
	shift := uint(0)
	for 1<<shift != lineSize {
		shift++
	}
	return &SetAssoc{
		lineSize:  uint64(lineSize),
		sets:      sets,
		ways:      ways,
		lines:     make([]line, sets*ways),
		lineShift: shift,
	}
}

// NewDirectMapped builds a 1-way cache (the display cache organization).
func NewDirectMapped(capacityBytes, lineSize int) *SetAssoc {
	return NewSetAssoc(capacityBytes, lineSize, 1)
}

// LineSize returns the line size in bytes.
func (c *SetAssoc) LineSize() int { return int(c.lineSize) }

// CapacityBytes returns the data capacity.
func (c *SetAssoc) CapacityBytes() int { return c.sets * c.ways * int(c.lineSize) }

// Stats returns the event counters accumulated so far.
func (c *SetAssoc) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without touching cache contents.
func (c *SetAssoc) ResetStats() { c.stats = Stats{} }

func (c *SetAssoc) set(addr uint64) (setIdx int, tag uint64) {
	lineAddr := addr >> c.lineShift
	return int(lineAddr & uint64(c.sets-1)), lineAddr / uint64(c.sets)
}

// AccessResult describes the outcome of one cache access.
type AccessResult struct {
	Hit           bool
	Writeback     bool   // a dirty victim was evicted
	WritebackAddr uint64 // line address of the dirty victim (valid if Writeback)
}

// Access looks up the line containing addr; on a miss the line is filled,
// evicting the set's LRU way. write marks the line dirty.
func (c *SetAssoc) Access(addr uint64, write bool) AccessResult {
	setIdx, tag := c.set(addr)
	base := setIdx * c.ways
	c.tick++

	victim := base
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			ln.lru = c.tick
			if write {
				ln.dirty = true
			}
			c.stats.Hits++
			return AccessResult{Hit: true}
		}
		if !c.lines[victim].valid {
			continue // keep first invalid way as victim
		}
		if !ln.valid || ln.lru < c.lines[victim].lru {
			victim = base + w
		}
	}

	c.stats.Misses++
	res := AccessResult{}
	v := &c.lines[victim]
	if v.valid {
		c.stats.Evictions++
		if v.dirty {
			c.stats.Writebacks++
			res.Writeback = true
			res.WritebackAddr = (v.tag*uint64(c.sets) + uint64(setIdx)) << c.lineShift
		}
	}
	*v = line{tag: tag, valid: true, dirty: write, lru: c.tick}
	return res
}

// Probe reports whether addr is resident without touching LRU state or stats.
func (c *SetAssoc) Probe(addr uint64) bool {
	setIdx, tag := c.set(addr)
	base := setIdx * c.ways
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops the line containing addr if resident, reporting whether it
// was dirty.
func (c *SetAssoc) Invalidate(addr uint64) (wasDirty bool) {
	setIdx, tag := c.set(addr)
	base := setIdx * c.ways
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			wasDirty = ln.dirty
			*ln = line{}
			return wasDirty
		}
	}
	return false
}

// Flush invalidates every line, returning the number of dirty lines dropped.
func (c *SetAssoc) Flush() (dirty int) {
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			dirty++
		}
		c.lines[i] = line{}
	}
	return dirty
}

// LineState is the serializable mirror of one tag-store line, used by the
// checkpoint snapshots (DESIGN.md "Checkpoint/Resume").
type LineState struct {
	Tag   uint64
	Valid bool
	Dirty bool
	LRU   uint64
}

// State is the full serializable cache state: tag store, LRU clock, and
// event counters. Geometry (sets/ways/line size) is construction-time
// configuration and is not part of the state.
type State struct {
	Lines []LineState
	Tick  uint64
	Stats Stats
}

// Snapshot returns a copy of the cache's mutable state.
func (c *SetAssoc) Snapshot() State {
	st := State{
		Lines: make([]LineState, len(c.lines)),
		Tick:  c.tick,
		Stats: c.stats,
	}
	for i, ln := range c.lines {
		st.Lines[i] = LineState{Tag: ln.tag, Valid: ln.valid, Dirty: ln.dirty, LRU: ln.lru}
	}
	return st
}

// Restore overwrites the cache's mutable state from a snapshot taken on an
// identically configured cache. The state may come from an untrusted file,
// so shape mismatches are rejected rather than trusted.
func (c *SetAssoc) Restore(st State) error {
	if len(st.Lines) != len(c.lines) {
		return fmt.Errorf("cache: snapshot has %d lines, cache has %d", len(st.Lines), len(c.lines))
	}
	for i, ln := range st.Lines {
		c.lines[i] = line{tag: ln.Tag, valid: ln.Valid, dirty: ln.Dirty, lru: ln.LRU}
	}
	c.tick = st.Tick
	c.stats = st.Stats
	return nil
}

// LinesFor returns the distinct line-aligned addresses touched by the byte
// range [addr, addr+size). This is where request fragmentation (§5) becomes
// visible: a 48-byte mab fetch that straddles a line boundary produces two
// memory requests.
func (c *SetAssoc) LinesFor(addr, size uint64) []uint64 {
	return LinesFor(addr, size, c.lineSize)
}

// LinesFor is the package-level helper for splitting a byte range into
// line-aligned requests.
func LinesFor(addr, size, lineSize uint64) []uint64 {
	first, last, n := LineSpan(addr, size, lineSize)
	if n == 0 {
		return nil
	}
	out := make([]uint64, 0, n)
	for a := first; a <= last; a += lineSize {
		out = append(out, a)
	}
	return out
}

// LineSpan returns the first and last line-aligned addresses covered by the
// byte range [addr, addr+size) plus the line count, without materializing
// the slice LinesFor builds. Iterating `for a := first; a <= last; a +=
// lineSize` (guarded by n > 0) visits exactly the addresses LinesFor
// returns, in the same ascending order; the per-frame read paths use this
// form so request fragmentation costs no allocation.
func LineSpan(addr, size, lineSize uint64) (first, last uint64, n int) {
	if size == 0 {
		return 0, 0, 0
	}
	first = addr &^ (lineSize - 1)
	last = (addr + size - 1) &^ (lineSize - 1)
	return first, last, int((last-first)/lineSize) + 1
}
