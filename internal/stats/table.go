package stats

import (
	"fmt"
	"strings"
)

// Table is a minimal fixed-column text table used by cmd/report and the
// benchmark harness to print paper-style rows.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}
