package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRunning(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("n = %d", r.N())
	}
	if r.Mean() != 5 {
		t.Fatalf("mean = %v", r.Mean())
	}
	if got := r.StdDev(); math.Abs(got-2.13809) > 1e-4 {
		t.Fatalf("sd = %v", got)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("min/max = %v/%v", r.Min(), r.Max())
	}
	if r.Sum() != 40 {
		t.Fatalf("sum = %v", r.Sum())
	}
}

func TestRunningMatchesDirectComputation(t *testing.T) {
	f := func(xs []float64) bool {
		var r Running
		sum := 0.0
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				ok = false
				break
			}
			r.Add(x)
			sum += x
		}
		if !ok || len(xs) == 0 {
			return true
		}
		mean := sum / float64(len(xs))
		scale := math.Max(1, math.Abs(mean))
		return math.Abs(r.Mean()-mean) < 1e-6*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleQuantile(t *testing.T) {
	s := NewSample(0)
	for i := 100; i >= 1; i-- {
		s.Add(float64(i))
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("q1 = %v", got)
	}
	if got := s.Quantile(0.5); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("median = %v", got)
	}
	if !math.IsNaN(NewSample(0).Quantile(0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestSampleFractions(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	if got := s.FractionAbove(7); got != 0.3 {
		t.Fatalf("above 7 = %v", got)
	}
	if got := s.FractionAbove(10); got != 0 {
		t.Fatalf("above 10 = %v", got)
	}
	if got := s.FractionBetween(3, 7); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("between (3,7] = %v", got)
	}
}

func TestSampleCDF(t *testing.T) {
	s := NewSample(0)
	for i := 0; i < 1000; i++ {
		s.Add(float64(i))
	}
	cdf := s.CDF(11)
	if len(cdf) != 11 {
		t.Fatalf("len = %d", len(cdf))
	}
	if cdf[0].P != 0 || cdf[10].P != 1 {
		t.Fatalf("endpoints %+v %+v", cdf[0], cdf[10])
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].X < cdf[i-1].X {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-5) // clamps into first bin
	h.Add(99) // clamps into last bin
	if h.Total() != 12 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Counts[0] != 3 || h.Counts[4] != 3 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if got := h.BinCenter(0); got != 1 {
		t.Fatalf("center0 = %v", got)
	}
	if got := h.Fraction(1); got != 2.0/12 {
		t.Fatalf("fraction = %v", got)
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown()
	b.Add("mem", 3)
	b.Add("vd", 1)
	b.Add("mem", 1)
	if b.Total() != 5 {
		t.Fatalf("total = %v", b.Total())
	}
	if b.Get("mem") != 4 {
		t.Fatalf("mem = %v", b.Get("mem"))
	}
	if b.Share("vd") != 0.2 {
		t.Fatalf("share = %v", b.Share("vd"))
	}
	keys := b.Keys()
	if len(keys) != 2 || keys[0] != "mem" || keys[1] != "vd" {
		t.Fatalf("keys = %v", keys)
	}
	c := b.Clone()
	c.Add("dc", 5)
	if b.Get("dc") != 0 {
		t.Fatal("clone aliases parent")
	}
	b.Scale(2)
	if b.Get("mem") != 8 {
		t.Fatalf("scaled mem = %v", b.Get("mem"))
	}
	other := NewBreakdown()
	other.Add("vd", 10)
	b.AddAll(other)
	if b.Get("vd") != 12 {
		t.Fatalf("vd after AddAll = %v", b.Get("vd"))
	}
	if s := b.String(); !strings.Contains(s, "mem=") {
		t.Fatalf("String = %q", s)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("scheme", "energy")
	tb.AddRow("baseline", 1.0)
	tb.AddRow("gab", 0.79)
	out := tb.String()
	if !strings.Contains(out, "baseline") || !strings.Contains(out, "0.79") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
}

func TestSummarize(t *testing.T) {
	if got := NewSample(0).Summarize(); got != (Summary{}) {
		t.Fatalf("empty sample summarized to %+v, want the zero value", got)
	}
	one := NewSample(1)
	one.Add(3.5)
	if got := one.Summarize(); got != (Summary{N: 1, Mean: 3.5, Min: 3.5, P50: 3.5, P90: 3.5, P99: 3.5, Max: 3.5}) {
		t.Fatalf("single-value summary: %+v", got)
	}
	s := NewSample(100)
	for i := 100; i >= 1; i-- {
		s.Add(float64(i))
	}
	sum := s.Summarize()
	if sum.N != 100 || sum.Min != 1 || sum.Max != 100 {
		t.Fatalf("summary bounds: %+v", sum)
	}
	if sum.Mean < 50.4 || sum.Mean > 50.6 {
		t.Fatalf("mean %g, want 50.5", sum.Mean)
	}
	if !(sum.Min <= sum.P50 && sum.P50 <= sum.P90 && sum.P90 <= sum.P99 && sum.P99 <= sum.Max) {
		t.Fatalf("quantiles out of order: %+v", sum)
	}
	if sum.P50 < 45 || sum.P50 > 55 || sum.P99 < 95 {
		t.Fatalf("quantiles off: %+v", sum)
	}
}
