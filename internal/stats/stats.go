// Package stats provides the small statistical toolkit the experiment
// harness needs: running summaries, histograms, CDFs over collected samples,
// and weighted breakdowns. Everything is deterministic and allocation-light.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Running accumulates count/mean/variance/min/max in a single pass
// (Welford's algorithm).
type Running struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds one sample into the summary.
func (r *Running) Add(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// AddN folds n copies of x into the summary.
func (r *Running) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		r.Add(x)
	}
}

// N returns the number of samples.
func (r *Running) N() int64 { return r.n }

// Mean returns the sample mean, or 0 with no samples.
func (r *Running) Mean() float64 { return r.mean }

// Min returns the smallest sample, or 0 with no samples.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample, or 0 with no samples.
func (r *Running) Max() float64 { return r.max }

// Variance returns the unbiased sample variance.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Sum returns mean*n.
func (r *Running) Sum() float64 { return r.mean * float64(r.n) }

func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g", r.n, r.Mean(), r.StdDev(), r.min, r.max)
}

// Sample is an in-memory collection of float64 observations supporting exact
// quantiles and CDF extraction.
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample returns an empty sample with the given capacity hint.
func NewSample(capacity int) *Sample {
	return &Sample{xs: make([]float64, 0, capacity)}
}

// RestoreSample reconstructs a sample from previously collected values in
// insertion order (the checkpoint/resume path); the slice is copied.
func RestoreSample(values []float64) *Sample {
	return &Sample{xs: append([]float64(nil), values...)}
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.xs) }

// Values returns the observations in insertion order. The caller must not
// mutate the returned slice.
func (s *Sample) Values() []float64 { return s.xs }

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) by linear interpolation.
// It returns NaN for an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Mean returns the arithmetic mean, or NaN for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// FractionAbove returns the fraction of observations strictly greater than x.
func (s *Sample) FractionAbove(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	i := sort.SearchFloat64s(s.xs, math.Nextafter(x, math.Inf(1)))
	return float64(len(s.xs)-i) / float64(len(s.xs))
}

// FractionBetween returns the fraction of observations x with lo < x <= hi.
func (s *Sample) FractionBetween(lo, hi float64) float64 {
	return s.FractionAbove(lo) - s.FractionAbove(hi)
}

// Summary is a JSON-stable quantile digest of a Sample: count, mean, and the
// five quantiles population reports care about. The zero value (all zeros)
// stands in for an empty sample so marshaling never emits NaN, which
// encoding/json rejects.
type Summary struct {
	N    int64
	Mean float64
	Min  float64
	P50  float64
	P90  float64
	P99  float64
	Max  float64
}

// Summarize digests the sample into a Summary. Empty samples yield the zero
// Summary rather than NaN-filled fields.
func (s *Sample) Summarize() Summary {
	if len(s.xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:    int64(len(s.xs)),
		Mean: s.Mean(),
		Min:  s.Quantile(0),
		P50:  s.Quantile(0.5),
		P90:  s.Quantile(0.9),
		P99:  s.Quantile(0.99),
		Max:  s.Quantile(1),
	}
}

// CDFPoint is one point of an empirical CDF: fraction P of observations are
// <= X.
type CDFPoint struct {
	X float64
	P float64
}

// CDF returns an n-point empirical CDF (n >= 2), evenly spaced in
// probability, suitable for plotting the paper's Fig 2-style curves.
func (s *Sample) CDF(n int) []CDFPoint {
	if len(s.xs) == 0 || n < 2 {
		return nil
	}
	s.sort()
	out := make([]CDFPoint, n)
	for i := 0; i < n; i++ {
		p := float64(i) / float64(n-1)
		out[i] = CDFPoint{X: s.Quantile(p), P: p}
	}
	return out
}

// Histogram counts observations in fixed-width bins over [Lo, Hi). Samples
// outside the range are clamped into the first/last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	total  int64
}

// NewHistogram creates a histogram with bins equal-width bins across [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Fraction returns the share of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Breakdown is a named, ordered set of non-negative components (for example
// an energy split). Keys keep insertion order so reports are stable.
type Breakdown struct {
	keys []string
	vals map[string]float64
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{vals: make(map[string]float64)}
}

// Add accumulates v into component key, creating it on first use.
func (b *Breakdown) Add(key string, v float64) {
	if _, ok := b.vals[key]; !ok {
		b.keys = append(b.keys, key)
	}
	b.vals[key] += v
}

// Get returns the value of key (0 when absent).
func (b *Breakdown) Get(key string) float64 { return b.vals[key] }

// Keys returns the component names in insertion order.
func (b *Breakdown) Keys() []string { return b.keys }

// Total returns the sum of all components, accumulated in insertion order
// so the floating-point result is deterministic.
func (b *Breakdown) Total() float64 {
	t := 0.0
	for _, k := range b.keys {
		t += b.vals[k]
	}
	return t
}

// Share returns component key as a fraction of the total (0 when empty).
func (b *Breakdown) Share(key string) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b.vals[key] / t
}

// Scale multiplies every component by f, returning b.
func (b *Breakdown) Scale(f float64) *Breakdown {
	for _, k := range b.keys {
		b.vals[k] *= f
	}
	return b
}

// AddAll folds every component of other into b.
func (b *Breakdown) AddAll(other *Breakdown) {
	for _, k := range other.keys {
		b.Add(k, other.vals[k])
	}
}

// Clone returns a deep copy.
func (b *Breakdown) Clone() *Breakdown {
	c := NewBreakdown()
	c.AddAll(b)
	return c
}

func (b *Breakdown) String() string {
	var sb strings.Builder
	t := b.Total()
	for i, k := range b.keys {
		if i > 0 {
			sb.WriteString(" ")
		}
		pct := 0.0
		if t != 0 {
			pct = 100 * b.vals[k] / t
		}
		fmt.Fprintf(&sb, "%s=%.4g(%.1f%%)", k, b.vals[k], pct)
	}
	return sb.String()
}
