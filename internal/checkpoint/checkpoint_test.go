package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testFP() Fingerprint {
	var fp Fingerprint
	for i := range fp {
		fp[i] = byte(i * 7)
	}
	return fp
}

func encodeBytes(t *testing.T, fp Fingerprint, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, fp, payload); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	fp := testFP()
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("simstate"), 1000)} {
		raw := encodeBytes(t, fp, payload)
		got, err := DecodeBytes(raw, fp)
		if err != nil {
			t.Fatalf("DecodeBytes(%d-byte payload): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload mismatch: got %d bytes, want %d", len(got), len(payload))
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	fp := testFP()
	payload := []byte(`{"frame":42}`)
	if !bytes.Equal(encodeBytes(t, fp, payload), encodeBytes(t, fp, payload)) {
		t.Fatal("identical inputs encoded to different bytes")
	}
}

func TestFingerprintMismatch(t *testing.T) {
	raw := encodeBytes(t, testFP(), []byte("payload"))
	other := testFP()
	other[0] ^= 0xFF
	_, err := DecodeBytes(raw, other)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for fingerprint mismatch, got %v", err)
	}
	if !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("error should name the fingerprint: %v", err)
	}
}

func TestTruncation(t *testing.T) {
	fp := testFP()
	raw := encodeBytes(t, fp, []byte("a longer payload to truncate"))
	for cut := 0; cut < len(raw); cut++ {
		if _, err := DecodeBytes(raw[:cut], fp); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d/%d: want ErrCorrupt, got %v", cut, len(raw), err)
		}
	}
}

func TestBitFlips(t *testing.T) {
	fp := testFP()
	raw := encodeBytes(t, fp, []byte("bitflip target payload"))
	for i := range raw {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x01
		got, err := DecodeBytes(mut, fp)
		if err == nil {
			t.Fatalf("bit flip at byte %d went undetected (payload %q)", i, got)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at byte %d: want ErrCorrupt, got %v", i, err)
		}
	}
}

func TestLyingLength(t *testing.T) {
	fp := testFP()
	raw := encodeBytes(t, fp, []byte("honest payload"))

	// Header claims more bytes than are present.
	over := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(over[24:28], uint32(len(raw))) // way past EOF
	if _, err := DecodeBytes(over, fp); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized length claim: want ErrCorrupt, got %v", err)
	}

	// Header claims a length beyond the allocation cap.
	huge := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(huge[24:28], MaxPayload+1)
	if _, err := DecodeBytes(huge, fp); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("over-cap length claim: want ErrCorrupt, got %v", err)
	}

	// Header claims fewer bytes: CRC no longer matches the shortened payload.
	under := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(under[24:28], 3)
	if _, err := DecodeBytes(under, fp); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("undersized length claim: want ErrCorrupt, got %v", err)
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	fp := testFP()
	raw := encodeBytes(t, fp, []byte("p"))

	bad := append([]byte(nil), raw...)
	copy(bad[0:4], "NOPE")
	if _, err := DecodeBytes(bad, fp); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: want ErrCorrupt, got %v", err)
	}

	v2 := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(v2[4:8], Version+1)
	if _, err := DecodeBytes(v2, fp); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("future version: want ErrCorrupt, got %v", err)
	}
}

func TestEncodeRejectsOversizedPayload(t *testing.T) {
	// The over-cap slice is never written, so the pages stay untouched; the
	// guard must fire on len alone before any I/O.
	var buf bytes.Buffer
	err := Encode(&buf, testFP(), make([]byte, MaxPayload+1))
	if err == nil {
		t.Fatal("Encode accepted an over-cap payload")
	}
	if buf.Len() != 0 {
		t.Fatalf("Encode wrote %d bytes before rejecting", buf.Len())
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "run.mckp")
	fp := testFP()
	payload := []byte(`{"state":"ok"}`)

	if err := Save(path, fp, payload); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path, fp)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Load returned %q, want %q", got, payload)
	}

	// Overwrite is atomic and leaves no temp litter.
	if err := Save(path, fp, []byte("v2")); err != nil {
		t.Fatalf("Save overwrite: %v", err)
	}
	got, err = Load(path, fp)
	if err != nil || string(got) != "v2" {
		t.Fatalf("Load after overwrite: %q, %v", got, err)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected only the checkpoint in %s, found %d entries", filepath.Dir(path), len(entries))
	}
}

func TestLoadMissing(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "absent.mckp"), testFP())
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file: want fs.ErrNotExist, got %v", err)
	}
}

func TestLoadCorruptFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.mckp")
	fp := testFP()
	if err := Save(path, fp, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(path, fp)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt file: want ErrCorrupt, got %v", err)
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("error should name the file: %v", err)
	}
}

// FuzzDecode asserts the container parser never panics and never accepts a
// mutated container: any input that differs from a valid encoding must fail
// with ErrCorrupt (or be the rare CRC-colliding equivalent payload).
func FuzzDecode(f *testing.F) {
	fp := testFP()
	var valid bytes.Buffer
	if err := Encode(&valid, fp, []byte(`{"frame":7,"now":1.25}`)); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("MCKP"))
	f.Add(valid.Bytes()[:headerLen])
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := DecodeBytes(data, fp)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-ErrCorrupt failure: %v", err)
			}
			return
		}
		// Accepted input must re-encode to a prefix-identical container.
		var re bytes.Buffer
		if err := Encode(&re, fp, payload); err != nil {
			t.Fatalf("re-encode of accepted payload failed: %v", err)
		}
		if len(data) < re.Len() || !bytes.Equal(data[:re.Len()], re.Bytes()) {
			t.Fatalf("accepted container does not round-trip")
		}
	})
}

// failWriter fails after n successful writes, standing in for a full disk.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

func TestEncodeWriteErrors(t *testing.T) {
	payload := []byte(`{"frame":1}`)
	// Header write fails, then payload write fails.
	for n := 0; n < 2; n++ {
		if err := Encode(&failWriter{n: n}, testFP(), payload); err == nil {
			t.Fatalf("n=%d: want a write error", n)
		}
	}
}

func TestSaveDirIsAFile(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The destination's parent is a regular file: MkdirAll must fail and
	// Save must surface it.
	if err := Save(filepath.Join(blocker, "ck.mckp"), testFP(), []byte("p")); err == nil {
		t.Fatal("want an error when the parent directory is a file")
	}
}

func TestSaveEncodeFailureLeavesNoLitter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.mckp")
	// Oversized payload: Encode rejects before writing, Save must clean up
	// its temp file and leave the destination absent.
	if err := Save(path, testFP(), make([]byte, MaxPayload+1)); err == nil {
		t.Fatal("want the oversized-payload error")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("failed Save left %d file(s) behind: %v", len(entries), entries)
	}
}

func TestEncodeBytesRoundTrip(t *testing.T) {
	payload := []byte(`{"frame":42}`)
	b, err := EncodeBytes(testFP(), payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBytes(b, testFP())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload round trip: %q", got)
	}
	// A foreign fingerprint and a flipped payload byte must both reject as
	// ErrCorrupt.
	var other Fingerprint
	other[0] = 0xff
	if _, err := DecodeBytes(b, other); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("foreign fingerprint: %v", err)
	}
	b[len(b)-1] ^= 0xff
	if _, err := DecodeBytes(b, testFP()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped byte: %v", err)
	}
}
