// Package checkpoint implements the on-disk container for simulation
// snapshots (DESIGN.md "Checkpoint/Resume"). The container is deliberately
// dumb: a fixed 32-byte header followed by an opaque payload. The header
// carries everything needed to reject a file before interpreting a single
// payload byte:
//
//	offset  size  field
//	     0     4  magic "MCKP"
//	     4     4  format version (little-endian uint32)
//	     8    16  fingerprint — md5 of the run identity (config, scheme,
//	              trace); Load rejects a checkpoint whose fingerprint does
//	              not match the caller's, so a snapshot can never be resumed
//	              against a different simulation
//	    24     4  payload length (little-endian uint32)
//	    28     4  CRC-32 (IEEE) of the payload
//	    32     —  payload (JSON in practice; this package does not care)
//
// Writes are atomic: Save writes to a temp file in the destination
// directory, fsyncs, closes, and renames over the target. A crash mid-write
// leaves either the old checkpoint or a stray temp file — never a torn
// target. Reads are paranoid: the payload length is bounded (MaxPayload)
// and read with io.CopyN so a lying header cannot force a huge allocation,
// and the CRC gates corruption before the payload reaches any decoder.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Version is the current container format version. Bump on any
// payload-incompatible change; Load rejects other versions.
const Version = 1

// MaxPayload bounds the payload a reader will allocate for (1 GiB). Real
// checkpoints are kilobytes to low megabytes; anything near the cap is
// corruption or abuse.
const MaxPayload = 1 << 30

// headerLen is the fixed container header size in bytes.
const headerLen = 32

var magic = [4]byte{'M', 'C', 'K', 'P'}

// ErrCorrupt wraps every validation failure on the read path, so callers can
// distinguish "bad file" from I/O errors with errors.Is.
var ErrCorrupt = errors.New("checkpoint: corrupt")

// Fingerprint identifies the run a snapshot belongs to (md5 of the run's
// canonical identity). The zero value matches nothing but itself.
type Fingerprint [16]byte

func (f Fingerprint) String() string { return fmt.Sprintf("%x", f[:]) }

// Encode serializes one container to w.
func Encode(w io.Writer, fp Fingerprint, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("checkpoint: payload %d bytes exceeds cap %d", len(payload), MaxPayload)
	}
	var hdr [headerLen]byte
	copy(hdr[0:4], magic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], Version)
	copy(hdr[8:24], fp[:])
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[28:32], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Decode reads and validates one container from r, returning the payload.
// Every malformed input yields an error wrapping ErrCorrupt; Decode never
// panics and never allocates more than the bytes actually present in r
// (plus the bounded header).
func Decode(r io.Reader, want Fingerprint) ([]byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if !bytes.Equal(hdr[0:4], magic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != Version {
		return nil, fmt.Errorf("%w: format version %d, want %d", ErrCorrupt, v, Version)
	}
	var fp Fingerprint
	copy(fp[:], hdr[8:24])
	if fp != want {
		return nil, fmt.Errorf("%w: fingerprint %s does not match run identity %s (different config, scheme, or trace)",
			ErrCorrupt, fp, want)
	}
	n := binary.LittleEndian.Uint32(hdr[24:28])
	if n > MaxPayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds cap %d", ErrCorrupt, n, MaxPayload)
	}
	// CopyN, not ReadFull into make([]byte, n): a truncated file with a lying
	// length only buffers the bytes actually present.
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		return nil, fmt.Errorf("%w: short payload: %v", ErrCorrupt, err)
	}
	payload := buf.Bytes()
	if got, wantCRC := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(hdr[28:32]); got != wantCRC {
		return nil, fmt.Errorf("%w: payload CRC %08x, header says %08x", ErrCorrupt, got, wantCRC)
	}
	return payload, nil
}

// DecodeBytes is Decode over an in-memory container.
func DecodeBytes(b []byte, want Fingerprint) ([]byte, error) {
	return Decode(bytes.NewReader(b), want)
}

// EncodeBytes is Encode into a fresh byte slice — the in-memory dual of
// DecodeBytes, used by fuzz targets and tests that corrupt containers
// without touching the filesystem.
func EncodeBytes(fp Fingerprint, payload []byte) ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(headerLen + len(payload))
	if err := Encode(&buf, fp, payload); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Save atomically writes a container to path: temp file in the same
// directory, fsync, close, rename. The destination directory is created if
// missing.
func Save(path string, fp Fingerprint, payload []byte) (err error) {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = Encode(f, fp, payload); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads and validates the container at path. A missing file surfaces
// as fs.ErrNotExist (callers typically treat that as "start fresh");
// anything malformed wraps ErrCorrupt.
func Load(path string, want Fingerprint) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	payload, err := Decode(f, want)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return payload, nil
}
