package mach

import (
	"testing"
	"testing/quick"

	"mach/internal/codec"
	"mach/internal/framebuf"
	"mach/internal/hashes"
)

func TestGabRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		// Pad to whole pixels, minimum one.
		for len(raw) < 3 || len(raw)%3 != 0 {
			raw = append(raw, byte(len(raw)))
		}
		gab := make([]byte, len(raw))
		var base [3]byte
		ComputeGab(raw, &base, gab)
		back := make([]byte, len(raw))
		ReconstructFromGab(gab, base, back)
		for i := range raw {
			if back[i] != raw[i] {
				return false
			}
		}
		return gab[0] == 0 && gab[1] == 0 && gab[2] == 0 // first pixel is always zero-delta
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGabPureColorsShareZeroGab(t *testing.T) {
	blue := make([]byte, 48)
	yellow := make([]byte, 48)
	for i := 0; i < 48; i += 3 {
		blue[i], blue[i+1], blue[i+2] = 10, 20, 200
		yellow[i], yellow[i+1], yellow[i+2] = 240, 230, 30
	}
	gb, gy := make([]byte, 48), make([]byte, 48)
	var bb, by [3]byte
	ComputeGab(blue, &bb, gb)
	ComputeGab(yellow, &by, gy)
	for i := range gb {
		if gb[i] != 0 || gy[i] != 0 {
			t.Fatal("pure colour gabs must be all-zero")
		}
	}
	if bb == by {
		t.Fatal("bases must differ")
	}
}

func TestDigestCacheLRU(t *testing.T) {
	c := newDigestCache(8, 4) // 2 sets
	// Digests 0,2,4,6 land in set 0; 8 evicts the LRU among them.
	for _, d := range []uint32{0, 2, 4, 6} {
		c.insert(d, 0, uint64(d)*100, 7)
	}
	if _, origin, hit, _ := c.lookup(0, 0, false); !hit || origin != 7 {
		t.Fatal("0 should hit with origin 7")
	}
	c.insert(8, 0, 800, 9) // evicts 2 (LRU: 0 was just touched)
	if _, _, hit, _ := c.lookup(2, 0, false); hit {
		t.Fatal("2 should be evicted")
	}
	if ptr, origin, hit, _ := c.lookup(8, 0, false); !hit || ptr != 800 || origin != 9 {
		t.Fatalf("8: hit=%v ptr=%d origin=%d", hit, ptr, origin)
	}
	if c.occupancy() != 4 {
		t.Fatalf("occupancy = %d", c.occupancy())
	}
	if len(c.dumpInto(nil)) != 4 {
		t.Fatalf("dump = %d", len(c.dumpInto(nil)))
	}
}

func TestDigestCacheAuxCollision(t *testing.T) {
	c := newDigestCache(8, 4)
	c.insert(42, 1, 100, 0)
	if _, _, hit, coll := c.lookup(42, 2, true); hit || !coll {
		t.Fatalf("aux mismatch should report collision: hit=%v coll=%v", hit, coll)
	}
	if _, _, hit, coll := c.lookup(42, 1, true); !hit || coll {
		t.Fatal("matching aux should hit")
	}
	// Without aux checking the collision is invisible.
	if _, _, hit, _ := c.lookup(42, 2, false); !hit {
		t.Fatal("aux-blind lookup should hit")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.EntriesPerMACH = 255
	if bad.Validate() == nil {
		t.Fatal("entries not divisible by ways should fail")
	}
	bad = DefaultConfig()
	bad.MabSize = 5
	if bad.Validate() == nil {
		t.Fatal("mab size 5 should fail")
	}
	bad = DefaultConfig()
	bad.CoMach = true
	bad.CoMachEntries = 0
	if bad.Validate() == nil {
		t.Fatal("CO-MACH without entries should fail")
	}
	if DefaultConfig().MabBytes() != 48 {
		t.Fatal("mab bytes")
	}
	if DefaultConfig().MetaBytesPerMatch() != 7 {
		t.Fatal("gab meta bytes")
	}
	cfg := DefaultConfig()
	cfg.Gradient = false
	if cfg.MetaBytesPerMatch() != 4 {
		t.Fatal("mab meta bytes")
	}
	if DefaultConfig().SRAMBytes() <= 0 {
		t.Fatal("SRAM size")
	}
}

// flatFrame builds a frame of uniform colour: every mab identical.
func flatFrame(w, h int, r, g, b byte) *codec.Frame {
	f := codec.NewFrame(w, h)
	for i := 0; i < len(f.Pix); i += 3 {
		f.Pix[i], f.Pix[i+1], f.Pix[i+2] = r, g, b
	}
	return f
}

// uniqueFrame builds a frame where every mab's content is distinct.
func uniqueFrame(w, h int, salt byte) *codec.Frame {
	f := codec.NewFrame(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			f.Set(x, y, byte(x)^salt, byte(y)+salt, byte(x*y+int(salt)))
		}
	}
	return f
}

func TestWritebackFlatFrameIntraMatches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Gradient = false
	wb, err := NewWriteback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fr := flatFrame(32, 16, 40, 50, 60) // 32 mabs, all identical
	layout := wb.ProcessFrame(fr, 0, framebuf.RegionFrameBuffers, framebuf.RegionMachDumps, nil)
	s := wb.Stats()
	if s.Mabs != 32 {
		t.Fatalf("mabs = %d", s.Mabs)
	}
	if s.NoMatches != 1 || s.IntraMatches != 31 {
		t.Fatalf("matches: %+v", s)
	}
	if s.ContentBytes != 48 {
		t.Fatalf("content bytes = %d", s.ContentBytes)
	}
	if layout.Records[0].Kind != framebuf.RecFull {
		t.Fatal("first mab must be full")
	}
	for _, rec := range layout.Records[1:] {
		if rec.Kind != framebuf.RecPointer || rec.Ptr != layout.Records[0].Ptr {
			t.Fatalf("record = %+v", rec)
		}
	}
	if len(layout.Dump) != 1 {
		t.Fatalf("dump entries = %d", len(layout.Dump))
	}
}

func TestWritebackInterMatches(t *testing.T) {
	cfg := DefaultConfig()
	wb, _ := NewWriteback(cfg)
	fr := uniqueFrame(32, 16, 0)
	wb.ProcessFrame(fr, 0, framebuf.RegionFrameBuffers, framebuf.RegionMachDumps, nil)
	first := wb.Stats()
	if first.InterMatches != 0 {
		t.Fatalf("first frame inter matches = %d", first.InterMatches)
	}
	// The identical frame again: every mab inter-matches frame 0.
	layout := wb.ProcessFrame(fr, 1, framebuf.RegionFrameBuffers+1<<20, framebuf.RegionMachDumps+1<<20, nil)
	s := wb.Stats()
	if s.InterMatches == 0 {
		t.Fatal("repeat frame should inter-match")
	}
	sawDigest := false
	for _, rec := range layout.Records {
		if rec.Kind == framebuf.RecDigest {
			sawDigest = true
			break
		}
	}
	if !sawDigest {
		t.Fatal("layout iii should store inter matches as digests")
	}
	// Under layout ii the same content must produce pointers instead.
	cfg2 := DefaultConfig()
	cfg2.Layout = framebuf.LayoutPtr
	wb2, _ := NewWriteback(cfg2)
	wb2.ProcessFrame(fr, 0, framebuf.RegionFrameBuffers, framebuf.RegionMachDumps, nil)
	layout2 := wb2.ProcessFrame(fr, 1, framebuf.RegionFrameBuffers+1<<20, framebuf.RegionMachDumps+1<<20, nil)
	for _, rec := range layout2.Records {
		if rec.Kind == framebuf.RecDigest {
			t.Fatal("layout ii must not use digest records")
		}
	}
}

func TestWritebackGabBeatsMabOnRamps(t *testing.T) {
	// A block-ramp frame: every mab flat but a different colour. mab mode
	// finds nothing; gab mode matches everything to the zero gradient.
	fr := codec.NewFrame(64, 16)
	idx := 0
	for y0 := 0; y0 < 16; y0 += 4 {
		for x0 := 0; x0 < 64; x0 += 4 {
			for dy := 0; dy < 4; dy++ {
				for dx := 0; dx < 4; dx++ {
					fr.Set(x0+dx, y0+dy, byte(10+idx*3), byte(20+idx*2), byte(30+idx))
				}
			}
			idx++
		}
	}
	mabCfg := DefaultConfig()
	mabCfg.Gradient = false
	wbM, _ := NewWriteback(mabCfg)
	wbM.ProcessFrame(fr, 0, framebuf.RegionFrameBuffers, framebuf.RegionMachDumps, nil)

	gabCfg := DefaultConfig()
	wbG, _ := NewWriteback(gabCfg)
	wbG.ProcessFrame(fr, 0, framebuf.RegionFrameBuffers, framebuf.RegionMachDumps, nil)

	if wbM.Stats().MatchRate() >= wbG.Stats().MatchRate() {
		t.Fatalf("gab %.2f should beat mab %.2f on ramps", wbG.Stats().MatchRate(), wbM.Stats().MatchRate())
	}
	if got := wbG.Stats().IntraMatches; got != int64(fr.NumMabs(4)-1) {
		t.Fatalf("gab intra matches = %d", got)
	}
	if wbG.Stats().Savings() <= wbM.Stats().Savings() {
		t.Fatal("gab savings should beat mab savings")
	}
}

func TestWritebackNoMatchOverhead(t *testing.T) {
	// All-unique content: MACH must cost extra bytes (metadata), exactly
	// the paper's "4 more bytes" per unmatched mab (plus base in gab mode).
	cfg := DefaultConfig()
	cfg.Gradient = false
	cfg.NumMACHs = 0 // no history, keep it a single-frame scenario
	wb, _ := NewWriteback(cfg)
	fr := uniqueFrame(64, 32, 7)
	wb.ProcessFrame(fr, 0, framebuf.RegionFrameBuffers, framebuf.RegionMachDumps, nil)
	s := wb.Stats()
	if s.IntraMatches != 0 {
		t.Fatalf("unique frame matched %d", s.IntraMatches)
	}
	if s.Savings() >= 0 {
		t.Fatalf("unique content should cost, savings = %.3f", s.Savings())
	}
	wantMeta := uint64(fr.NumMabs(4) * 4)
	if s.MetaBytes < wantMeta {
		t.Fatalf("meta bytes = %d want >= %d", s.MetaBytes, wantMeta)
	}
}

func TestWritebackRawLayout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Layout = framebuf.LayoutRaw
	wb, _ := NewWriteback(cfg)
	fr := flatFrame(32, 16, 1, 2, 3)
	var sunk int
	layout := wb.ProcessFrame(fr, 0, framebuf.RegionFrameBuffers, 0, func(addr uint64, size int, ord int) {
		sunk += size
	})
	s := wb.Stats()
	if s.ContentBytes != uint64(fr.SizeBytes()) {
		t.Fatalf("raw content = %d", s.ContentBytes)
	}
	if s.MetaBytes != 0 {
		t.Fatalf("raw meta = %d", s.MetaBytes)
	}
	if s.Savings() != 0 {
		t.Fatalf("raw savings = %v", s.Savings())
	}
	if sunk < fr.SizeBytes() {
		t.Fatalf("sink received %d < %d", sunk, fr.SizeBytes())
	}
	if layout.ContentBytes != uint64(fr.SizeBytes()) {
		t.Fatal("layout content bytes")
	}
}

func TestWritebackSinkLineAligned(t *testing.T) {
	wb, _ := NewWriteback(DefaultConfig())
	fr := uniqueFrame(32, 32, 3)
	wb.ProcessFrame(fr, 0, framebuf.RegionFrameBuffers, framebuf.RegionMachDumps, func(addr uint64, size int, ord int) {
		if addr%64 != 0 {
			t.Fatalf("unaligned sink write %#x", addr)
		}
		if size != 64 {
			t.Fatalf("sink write size %d", size)
		}
		if ord < 0 || ord > fr.NumMabs(4) {
			t.Fatalf("sink ordinal %d out of range", ord)
		}
	})
	if wb.Stats().LineWrites == 0 {
		t.Fatal("no line writes issued")
	}
}

func TestCoalescingReducesLineWrites(t *testing.T) {
	fr := flatFrame(64, 32, 9, 9, 9) // heavy metadata traffic, tiny content
	on := DefaultConfig()
	wbOn, _ := NewWriteback(on)
	wbOn.ProcessFrame(fr, 0, framebuf.RegionFrameBuffers, framebuf.RegionMachDumps, nil)

	off := DefaultConfig()
	off.Coalesce = false
	wbOff, _ := NewWriteback(off)
	wbOff.ProcessFrame(fr, 0, framebuf.RegionFrameBuffers, framebuf.RegionMachDumps, nil)

	if wbOn.Stats().LineWrites >= wbOff.Stats().LineWrites {
		t.Fatalf("coalescing %d lines should beat naive %d", wbOn.Stats().LineWrites, wbOff.Stats().LineWrites)
	}
}

func TestPopularityTracking(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TrackPopularity = true
	wb, _ := NewWriteback(cfg)
	wb.ProcessFrame(flatFrame(32, 16, 5, 5, 5), 0, framebuf.RegionFrameBuffers, framebuf.RegionMachDumps, nil)
	s := wb.Stats()
	if len(s.DigestMatches) != 1 {
		t.Fatalf("digests = %d", len(s.DigestMatches))
	}
	for _, n := range s.DigestMatches {
		if n != 31 {
			t.Fatalf("top digest matches = %d", n)
		}
	}
}

func TestCollisionShadowTracking(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TrackCollisions = true
	wb, _ := NewWriteback(cfg)
	wb.ProcessFrame(uniqueFrame(64, 32, 1), 0, framebuf.RegionFrameBuffers, framebuf.RegionMachDumps, nil)
	wb.ProcessFrame(uniqueFrame(64, 32, 1), 1, framebuf.RegionFrameBuffers+1<<20, framebuf.RegionMachDumps+1<<20, nil)
	// Identical content: no false matches expected.
	if wb.Stats().FalseMatches != 0 {
		t.Fatalf("false matches = %d", wb.Stats().FalseMatches)
	}
}

func TestAnalyzerFig7bSemantics(t *testing.T) {
	an := NewAnalyzer(16, 4, false)
	fr := flatFrame(32, 16, 7, 7, 7)
	an.ProcessFrame(fr)
	if an.IntraMatches != 31 || an.NoMatches != 1 {
		t.Fatalf("frame 0: intra=%d none=%d", an.IntraMatches, an.NoMatches)
	}
	an.ProcessFrame(fr) // every mab now inter-matches... except intra wins within frame
	// First mab of frame 1 inter-matches; the remaining 31 intra-match it.
	if an.InterMatches != 1 {
		t.Fatalf("inter = %d", an.InterMatches)
	}
	if an.IntraRate()+an.InterRate()+an.NoMatchRate() < 0.999 {
		t.Fatal("rates must sum to 1")
	}
	if an.Savings() <= 0 {
		t.Fatalf("flat content savings = %v", an.Savings())
	}
}

func TestAnalyzerWindowExpiry(t *testing.T) {
	an := NewAnalyzer(1, 4, false)
	a := flatFrame(16, 4, 1, 1, 1)
	b := flatFrame(16, 4, 2, 2, 2)
	an.ProcessFrame(a) // vocab: {1}
	an.ProcessFrame(b) // vocab: {2}; a expired
	an.ProcessFrame(a) // content 1 no longer in window
	if an.InterMatches != 0 {
		t.Fatalf("expired window should not inter-match, got %d", an.InterMatches)
	}
}

func TestAnalyzerBeatsOrEqualsWriteback(t *testing.T) {
	// The optimal (unbounded) matcher can never save less than the
	// capacity-limited MACH on the same stream and window.
	frames := []*codec.Frame{
		uniqueFrame(64, 32, 1),
		flatFrame(64, 32, 3, 3, 3),
		uniqueFrame(64, 32, 1),
		flatFrame(64, 32, 8, 8, 8),
	}
	cfg := DefaultConfig()
	wb, _ := NewWriteback(cfg)
	an := NewAnalyzer(cfg.NumMACHs, cfg.MabSize, cfg.Gradient)
	for i, fr := range frames {
		wb.ProcessFrame(fr, i, framebuf.RegionFrameBuffers+uint64(i)<<20, framebuf.RegionMachDumps+uint64(i)<<20, nil)
		an.ProcessFrame(fr)
	}
	// Compare content+meta only (the writeback also pays dump bytes).
	wbBytes := wb.Stats().ContentBytes + wb.Stats().MetaBytes
	anBytes := an.ContentBytes + an.MetaBytes
	if anBytes > wbBytes {
		t.Fatalf("optimal wrote %d > MACH %d", anBytes, wbBytes)
	}
}

func TestCoMachDetectsInjectedCollisions(t *testing.T) {
	// Force digest collisions by using a weak "digest": not possible via
	// the public API, so instead verify the machinery: same CRC32 content
	// inserted, then a lookup with different aux reports a collision and
	// the entry lands in CO-MACH.
	cfg := DefaultConfig()
	cfg.CoMach = true
	wb, _ := NewWriteback(cfg)
	fr := uniqueFrame(32, 32, 4)
	wb.ProcessFrame(fr, 0, framebuf.RegionFrameBuffers, framebuf.RegionMachDumps, nil)
	s := wb.Stats()
	// Real CRC32 collisions are ~never in 64 mabs; the path exercised here
	// is that CO-MACH mode runs cleanly end to end.
	if s.Mabs != 64 {
		t.Fatalf("mabs = %d", s.Mabs)
	}
	if s.DetectedCollisions != 0 {
		t.Fatalf("unexpected collisions = %d", s.DetectedCollisions)
	}
}

func TestDCC(t *testing.T) {
	flat := make([]byte, 48)
	for i := range flat {
		flat[i] = 100
	}
	if got := DCCSize(flat); got >= 48 {
		t.Fatalf("flat DCC size = %d", got)
	}
	noisy := make([]byte, 48)
	for i := range noisy {
		noisy[i] = byte(i*97 + 13)
	}
	if got := DCCSize(noisy); got > 49 {
		t.Fatalf("noisy DCC size = %d (should cap at raw+1)", got)
	}
	var s DCCStats
	s.Observe(flat)
	s.Observe(noisy)
	if s.Blocks != 2 || s.RawBytes != 96 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Savings() <= 0 {
		t.Fatalf("savings = %v", s.Savings())
	}
}

func TestDCCPanicsOnPartialPixels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DCCSize(make([]byte, 47))
}

func TestWritebackWithMD5Digest(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Digest = hashes.MD5
	wb, err := NewWriteback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wb.ProcessFrame(flatFrame(32, 16, 1, 2, 3), 0, framebuf.RegionFrameBuffers, framebuf.RegionMachDumps, nil)
	if wb.Stats().IntraMatches != 31 {
		t.Fatalf("md5 matches = %d", wb.Stats().IntraMatches)
	}
}
