package mach

import "testing"

// prehashFrame fills per-mab digest slots that persist across frames
// (prehash.resize caps growth with cap() guards), so after the first frame
// of a given geometry the phase must be allocation-free — the invariant the
// engine-wide 0-allocs/op StepFrame bench gate depends on.
func TestPrehashSlotReuseDoesNotAllocate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CoMach = true // exercise the aux slots too
	wb, err := NewWriteback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fr := uniqueFrame(64, 32, 7)
	numMabs := fr.NumMabs(cfg.MabSize)

	wb.prehashFrame(fr, numMabs) // size the slots once

	allocs := testing.AllocsPerRun(50, func() {
		wb.prehashFrame(fr, numMabs)
	})
	if allocs != 0 {
		t.Fatalf("steady-state prehashFrame allocated %.2f times per frame, want 0", allocs)
	}
}
