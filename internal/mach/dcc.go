package mach

// Delta Color Compression (DCC) model, after the commercial intra-block
// schemes the paper compares against in §6.2 (AMD Polaris / NVIDIA-style
// framebuffer compression). DCC compresses each block in isolation: it
// stores one base pixel and per-pixel channel deltas at the smallest bit
// width that covers the block's dynamic range. It is orthogonal to MACH:
// DCC shrinks *every* block, MACH removes *repeated* blocks entirely, so
// the paper combines them (GAB+DCC) for an extra ≈18% bandwidth saving
// over DCC alone.

// DCCSize returns the compressed byte size of one RGB block under the delta
// model: 1 header byte (bit width), 3 base bytes, then 3 deltas per
// remaining pixel at the chosen bit width, rounded up to whole bytes.
// Blocks that do not compress return their raw size plus the header.
func DCCSize(block []byte) int {
	if len(block) < 3 || len(block)%3 != 0 {
		panic("mach: DCC block must be whole RGB pixels")
	}
	raw := len(block)
	base := [3]int{int(block[0]), int(block[1]), int(block[2])}
	maxDelta := 0
	for i := 3; i < len(block); i += 3 {
		for c := 0; c < 3; c++ {
			d := int(block[i+c]) - base[c]
			if d < 0 {
				d = -d
			}
			if d > maxDelta {
				maxDelta = d
			}
		}
	}
	bits := 0
	for (1 << bits) <= maxDelta {
		bits++
	}
	bits++ // sign bit
	pixels := len(block)/3 - 1
	compressed := 1 + 3 + (pixels*3*bits+7)/8
	if compressed >= raw {
		return 1 + raw // stored raw with a header byte
	}
	return compressed
}

// DCCStats accumulates compression results over a mab stream.
type DCCStats struct {
	Blocks          int64
	RawBytes        uint64
	CompressedBytes uint64
}

// Observe folds one block into the statistics.
func (s *DCCStats) Observe(block []byte) {
	s.Blocks++
	s.RawBytes += uint64(len(block))
	s.CompressedBytes += uint64(DCCSize(block))
}

// Savings returns the fractional byte reduction of DCC alone.
func (s *DCCStats) Savings() float64 {
	if s.RawBytes == 0 {
		return 0
	}
	return 1 - float64(s.CompressedBytes)/float64(s.RawBytes)
}
