package mach

import (
	"testing"

	"mach/internal/framebuf"
)

// TestPointerAgingBoundsReferences: content matched across many frames must
// be re-stored before its origin buffer leaves the retention window, so no
// live pointer ever targets a buffer older than NumMACHs frames.
func TestPointerAgingBoundsReferences(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumMACHs = 4
	wb, err := NewWriteback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fr := flatFrame(32, 16, 33, 44, 55) // one unique gab, matched forever
	slot := func(i int) uint64 { return framebuf.RegionFrameBuffers + uint64(i)*(1<<20) }

	var layouts []*framebuf.FrameLayout
	for i := 0; i < 16; i++ {
		l := wb.ProcessFrame(fr, i, slot(i), framebuf.RegionMachDumps+uint64(i)*(1<<16), nil)
		layouts = append(layouts, l)
	}
	s := wb.Stats()
	if s.AgedOut == 0 {
		t.Fatal("long-lived matches must age out and re-store")
	}
	// Every pointer in every layout must target a buffer at most NumMACHs
	// frames older than the layout itself.
	for i, l := range layouts {
		for _, rec := range l.Records {
			if rec.Kind != framebuf.RecPointer && rec.Kind != framebuf.RecFull {
				continue
			}
			origin := int((rec.Ptr - framebuf.RegionFrameBuffers) >> 20)
			if i-origin > cfg.NumMACHs {
				t.Fatalf("frame %d references buffer %d: older than the %d-frame window",
					i, origin, cfg.NumMACHs)
			}
		}
	}
	// The content is re-stored roughly every NumMACHs frames, not every
	// frame: the steady state still deduplicates.
	if s.NoMatches > int64(16/cfg.NumMACHs+3) {
		t.Fatalf("stores = %d, aging re-stores too often", s.NoMatches)
	}
}

// TestInterMatchJoinsCurrentVocabulary: an inter match must make later mabs
// of the same frame match as intra (the frame's MACH holds its content
// vocabulary, §4.2).
func TestInterMatchJoinsCurrentVocabulary(t *testing.T) {
	wb, _ := NewWriteback(DefaultConfig())
	fr := flatFrame(32, 16, 9, 9, 9)
	wb.ProcessFrame(fr, 0, framebuf.RegionFrameBuffers, framebuf.RegionMachDumps, nil)
	before := wb.Stats()
	wb.ProcessFrame(fr, 1, framebuf.RegionFrameBuffers+1<<20, framebuf.RegionMachDumps+1<<16, nil)
	after := wb.Stats()
	// Frame 1: first mab inter-matches frame 0's entry, the remaining 31
	// match it as intra within the frame.
	if d := after.InterMatches - before.InterMatches; d != 1 {
		t.Fatalf("inter matches in repeat frame = %d want 1", d)
	}
	if d := after.IntraMatches - before.IntraMatches; d != 31 {
		t.Fatalf("intra matches in repeat frame = %d want 31", d)
	}
}

// TestHistoryWindowDepth: content seen NumMACHs+1 frames ago must no longer
// match (its frozen MACH fell out of the search window).
func TestHistoryWindowDepth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumMACHs = 2
	wb, _ := NewWriteback(cfg)
	a := flatFrame(16, 8, 1, 2, 3)
	filler1 := flatFrame(16, 8, 100, 110, 120)
	filler2 := flatFrame(16, 8, 200, 210, 220)

	wb.ProcessFrame(a, 0, framebuf.RegionFrameBuffers, framebuf.RegionMachDumps, nil)
	wb.ProcessFrame(filler1, 1, framebuf.RegionFrameBuffers+1<<20, framebuf.RegionMachDumps+1<<16, nil)
	wb.ProcessFrame(filler2, 2, framebuf.RegionFrameBuffers+2<<20, framebuf.RegionMachDumps+2<<16, nil)
	before := wb.Stats()
	// Frame 3: content 'a' was last in frame 0's MACH, which has expired
	// from the 2-deep history. In gab mode all flat frames share the zero
	// gab though, so use mab mode semantics via a distinct cfg.
	_ = before
	cfgM := DefaultConfig()
	cfgM.NumMACHs = 2
	cfgM.Gradient = false
	wbM, _ := NewWriteback(cfgM)
	wbM.ProcessFrame(a, 0, framebuf.RegionFrameBuffers, framebuf.RegionMachDumps, nil)
	wbM.ProcessFrame(filler1, 1, framebuf.RegionFrameBuffers+1<<20, framebuf.RegionMachDumps+1<<16, nil)
	wbM.ProcessFrame(filler2, 2, framebuf.RegionFrameBuffers+2<<20, framebuf.RegionMachDumps+2<<16, nil)
	b := wbM.Stats()
	wbM.ProcessFrame(a, 3, framebuf.RegionFrameBuffers+3<<20, framebuf.RegionMachDumps+3<<16, nil)
	afterM := wbM.Stats()
	if afterM.InterMatches != b.InterMatches {
		t.Fatalf("expired content still inter-matched (%d -> %d)", b.InterMatches, afterM.InterMatches)
	}
	if afterM.NoMatches <= b.NoMatches {
		t.Fatal("expired content must be re-stored")
	}
}
