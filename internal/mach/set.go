package mach

import (
	"fmt"

	"mach/internal/framebuf"
)

// Replacement selects the MACH victim policy. The paper uses LRU "due to
// its simplicity" and leaves smarter digest-residency policies to future
// work (§4.5); LFU and FIFO are provided for that ablation.
type Replacement int

const (
	// LRU evicts the least recently matched entry (the paper's policy).
	LRU Replacement = iota
	// LFU evicts the least frequently matched entry, approximating
	// "keep the most useful digests".
	LFU
	// FIFO evicts in insertion order, ignoring reuse.
	FIFO
)

func (p Replacement) String() string {
	switch p {
	case LRU:
		return "lru"
	case LFU:
		return "lfu"
	case FIFO:
		return "fifo"
	default:
		return fmt.Sprintf("Replacement(%d)", int(p))
	}
}

// digestCache is one MACH instance: a small set-associative cache whose tag
// is a content digest and whose value is the memory address of that content
// (§4.2). The paper's configuration is 256 entries, 4-way, LRU, indexed by
// the low bits of the digest. With CO-MACH enabled each entry carries a
// 16-bit auxiliary hash used to detect CRC32 collisions (§6.3).
type digestCache struct {
	sets, ways int
	policy     Replacement
	entries    []machEntry
	tick       uint64
}

type machEntry struct {
	digest uint32
	aux    uint16
	ptr    uint64
	origin int // display index of the frame whose buffer holds the content
	valid  bool
	lru    uint64 // recency stamp (LRU) or insertion stamp (FIFO)
	hits   uint32 // match count (LFU)
}

func newDigestCache(entries, ways int) *digestCache {
	return newDigestCachePolicy(entries, ways, LRU)
}

func newDigestCachePolicy(entries, ways int, policy Replacement) *digestCache {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("mach: bad cache shape %d/%d", entries, ways))
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mach: set count %d not a power of two", sets))
	}
	return &digestCache{sets: sets, ways: ways, policy: policy, entries: make([]machEntry, entries)}
}

// reset returns the cache to its freshly constructed state so a retired
// instance can serve as the next frame's current MACH without reallocating
// the entry array.
func (c *digestCache) reset() {
	for i := range c.entries {
		c.entries[i] = machEntry{}
	}
	c.tick = 0
}

func (c *digestCache) setIndex(digest uint32) int {
	// §4.4: all 32 digest bits are uniformly distributed; the paper indexes
	// with the low bits.
	return int(digest) & (c.sets - 1)
}

// lookup returns the stored pointer and its content's origin frame for
// digest. With useAux, an entry whose digest matches but whose auxiliary
// hash differs is reported as a detected collision (and not returned as a
// hit).
func (c *digestCache) lookup(digest uint32, aux uint16, useAux bool) (ptr uint64, origin int, hit, collision bool) {
	base := c.setIndex(digest) * c.ways
	for w := 0; w < c.ways; w++ {
		e := &c.entries[base+w]
		if e.valid && e.digest == digest {
			if useAux && e.aux != aux {
				return 0, 0, false, true
			}
			c.tick++
			if c.policy != FIFO {
				e.lru = c.tick
			}
			e.hits++
			return e.ptr, e.origin, true, false
		}
	}
	return 0, 0, false, false
}

// insert adds (digest, aux) -> (ptr, origin), evicting the set's victim
// under the configured replacement policy.
func (c *digestCache) insert(digest uint32, aux uint16, ptr uint64, origin int) {
	base := c.setIndex(digest) * c.ways
	victim := base
	for w := 0; w < c.ways; w++ {
		e := &c.entries[base+w]
		if !e.valid {
			victim = base + w
			break
		}
		v := &c.entries[victim]
		worse := false
		if c.policy == LFU {
			worse = e.hits < v.hits || (e.hits == v.hits && e.lru < v.lru)
		} else {
			worse = e.lru < v.lru
		}
		if worse {
			victim = base + w
		}
	}
	c.tick++
	c.entries[victim] = machEntry{digest: digest, aux: aux, ptr: ptr, origin: origin, valid: true, lru: c.tick}
}

// dumpInto appends the frozen MACH contents as digest->pointer pairs to dst,
// the per-frame dump the display controller prefetches into its MACH buffer
// (§5.1). Callers pass a recycled layout's Dump[:0] so steady-state frames
// reuse the prior capacity.
func (c *digestCache) dumpInto(dst []framebuf.DumpEntry) []framebuf.DumpEntry {
	for _, e := range c.entries {
		if e.valid {
			dst = append(dst, framebuf.DumpEntry{Digest: e.digest, Ptr: e.ptr})
		}
	}
	return dst
}

// occupancy returns the number of valid entries.
func (c *digestCache) occupancy() int {
	n := 0
	for _, e := range c.entries {
		if e.valid {
			n++
		}
	}
	return n
}

// coMach is the collision cache of §6.3: fully tagged by the 48-bit deep
// digest (CRC32 concatenated with CRC16), it stores the entries whose CRC32
// collided in the per-frame MACHs. 128 entries x 4 ways ≈ the paper's 1.5KB.
type coMach struct {
	cache *digestCache
}

func newCoMach(entries, ways int) *coMach {
	return &coMach{cache: newDigestCache(entries, ways)}
}

// lookup searches by the full 48-bit identity (digest + aux as tag parts).
func (c *coMach) lookup(digest uint32, aux uint16) (uint64, bool) {
	ptr, _, hit, _ := c.cache.lookup(digest, aux, true)
	return ptr, hit
}

func (c *coMach) insert(digest uint32, aux uint16, ptr uint64, origin int) {
	c.cache.insert(digest, aux, ptr, origin)
}
