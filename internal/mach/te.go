package mach

// Transaction elimination: the industrial checksum-based alternative the
// paper compares against in related work (ARM Transaction Elimination [9],
// Han et al.'s checksum displays [35]). The producer keeps a CRC per frame
// tile; when a tile's checksum equals the previous frame's, the tile is not
// written at all (the consumer reuses the old content in place).
//
// TE exploits only *temporal, same-position* redundancy, while MACH matches
// content at any position within the current and previous frames — so TE
// wins on perfectly static content and loses as soon as content moves or
// repeats spatially, which is the comparison TEStats quantifies.

import (
	"hash/crc32"

	"mach/internal/codec"
)

// TE models checksum-based transaction elimination over a decoded stream.
type TE struct {
	tileMabs int // mabs per tile
	mabSize  int
	prev     []uint32 // per-tile CRCs of the previous frame

	Frames        int64
	Tiles         int64
	SkippedTiles  int64
	BytesWritten  uint64
	RawBytes      uint64
	checksumBytes uint64

	buf []byte
}

// NewTE returns a transaction-elimination model grouping tileMabs
// consecutive mabs per checksum (ARM uses 16x16-pixel tiles; 16 4x4 mabs is
// the equivalent area).
func NewTE(tileMabs, mabSize int) *TE {
	if tileMabs < 1 || mabSize < 2 {
		panic("mach: bad TE shape")
	}
	return &TE{
		tileMabs: tileMabs,
		mabSize:  mabSize,
		buf:      make([]byte, mabSize*mabSize*codec.BytesPerPixel*tileMabs),
	}
}

// ProcessFrame folds one decoded frame into the statistics.
func (t *TE) ProcessFrame(fr *codec.Frame) {
	n := t.mabSize
	mabBytes := n * n * codec.BytesPerPixel
	mabsPerRow := fr.W / n
	numMabs := fr.NumMabs(n)
	numTiles := (numMabs + t.tileMabs - 1) / t.tileMabs
	if len(t.prev) != numTiles {
		t.prev = make([]uint32, numTiles)
		for i := range t.prev {
			t.prev[i] = ^uint32(0)
		}
	}
	t.Frames++
	for tile := 0; tile < numTiles; tile++ {
		first := tile * t.tileMabs
		last := first + t.tileMabs
		if last > numMabs {
			last = numMabs
		}
		size := 0
		for m := first; m < last; m++ {
			x0 := (m % mabsPerRow) * n
			y0 := (m / mabsPerRow) * n
			fr.CopyBlock(x0, y0, n, t.buf[size:size+mabBytes])
			size += mabBytes
		}
		crc := crc32.ChecksumIEEE(t.buf[:size])
		t.Tiles++
		t.RawBytes += uint64(size)
		t.checksumBytes += 4
		if crc == t.prev[tile] {
			t.SkippedTiles++
		} else {
			t.BytesWritten += uint64(size)
			t.prev[tile] = crc
		}
	}
}

// Savings returns the fractional write reduction (checksum storage counted
// as overhead).
func (t *TE) Savings() float64 {
	if t.RawBytes == 0 {
		return 0
	}
	return 1 - float64(t.BytesWritten+t.checksumBytes)/float64(t.RawBytes)
}

// SkipRate returns the fraction of tiles eliminated.
func (t *TE) SkipRate() float64 {
	if t.Tiles == 0 {
		return 0
	}
	return float64(t.SkippedTiles) / float64(t.Tiles)
}
