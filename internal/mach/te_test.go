package mach

import (
	"testing"

	"mach/internal/codec"
)

func TestTEStaticContentSkips(t *testing.T) {
	te := NewTE(16, 4)
	fr := uniqueFrame(64, 32, 1)
	te.ProcessFrame(fr)
	if te.SkippedTiles != 0 {
		t.Fatal("first frame cannot skip")
	}
	te.ProcessFrame(fr) // identical frame: every tile skips
	if te.SkipRate() != 0.5 {
		t.Fatalf("skip rate = %v want 0.5 (second frame fully skipped)", te.SkipRate())
	}
	if te.Savings() <= 0.4 {
		t.Fatalf("savings = %v", te.Savings())
	}
}

func TestTEMovedContentDoesNotSkip(t *testing.T) {
	// TE is position-bound: shifting content by one mab defeats it, while
	// MACH still matches by value. This is the paper's related-work
	// argument for content (not address/position) caching.
	a := uniqueFrame(64, 32, 1)
	b := codec.NewFrame(64, 32)
	// b = a shifted left by one mab (4 pixels), wrapping.
	for y := 0; y < 32; y++ {
		for x := 0; x < 64; x++ {
			r, g, bb := a.At((x+4)%64, y)
			b.Set(x, y, r, g, bb)
		}
	}
	te := NewTE(4, 4)
	te.ProcessFrame(a)
	te.ProcessFrame(b)
	if te.SkipRate() > 0.05 {
		t.Fatalf("shifted content should defeat TE, skip rate %v", te.SkipRate())
	}

	// MACH (8-frame window) still deduplicates the shifted content.
	wb, _ := NewWriteback(DefaultConfig())
	wb.ProcessFrame(a, 0, 0x1000_0000, 0x2000_0000, nil)
	before := wb.Stats().InterMatches
	wb.ProcessFrame(b, 1, 0x1100_0000, 0x2100_0000, nil)
	if wb.Stats().InterMatches == before {
		t.Fatal("MACH should inter-match shifted content")
	}
}

func TestTEChecksumOverheadCounted(t *testing.T) {
	te := NewTE(16, 4)
	fr := uniqueFrame(32, 16, 2)
	te.ProcessFrame(fr)
	// Nothing skipped: savings must be slightly negative (checksum cost).
	if te.Savings() >= 0 {
		t.Fatalf("savings = %v, want negative on all-changed content", te.Savings())
	}
}

func TestTEShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTE(0, 4)
}

func TestReplacementPolicies(t *testing.T) {
	if LRU.String() != "lru" || LFU.String() != "lfu" || FIFO.String() != "fifo" {
		t.Fatal("policy names")
	}
	// LFU keeps a frequently matched entry that LRU would evict.
	lfu := newDigestCachePolicy(4, 4, LFU)
	lfu.insert(0, 0, 100, 0)
	for i := 0; i < 5; i++ {
		lfu.lookup(0, 0, false) // 0 becomes hot
	}
	lfu.insert(4, 0, 400, 0)
	lfu.insert(8, 0, 800, 0)
	lfu.insert(12, 0, 1200, 0)
	lfu.insert(16, 0, 1600, 0) // evicts one of the cold entries, not 0
	if _, _, hit, _ := lfu.lookup(0, 0, false); !hit {
		t.Fatal("LFU should keep the hot entry")
	}

	fifo := newDigestCachePolicy(4, 4, FIFO)
	fifo.insert(0, 0, 100, 0)
	fifo.lookup(0, 0, false) // recency must not matter
	fifo.insert(4, 0, 400, 0)
	fifo.insert(8, 0, 800, 0)
	fifo.insert(12, 0, 1200, 0)
	fifo.insert(16, 0, 1600, 0) // evicts 0, the oldest insertion
	if _, _, hit, _ := fifo.lookup(0, 0, false); hit {
		t.Fatal("FIFO should evict the oldest insertion")
	}
}
