// Package mach implements the paper's central contribution: MACH, the
// MAcroblock caCHe (§4). MACH deduplicates decoded macroblock content on its
// way to the frame buffer by digesting each mab (or its gradient block, gab)
// with CRC32 and remembering where identical content already lives in
// memory. Matched mabs are written as 4-byte pointers (plus a 3-byte base in
// gab mode) instead of 48-byte pixel blocks, cutting memory writes, and the
// display later reads the deduplicated layout through its own content caches
// (package display).
package mach

// ComputeGab converts a decoded mab into its gradient block and base pixel
// (§4.3): the base is the first (top-left) pixel, and every pixel of the gab
// is the channel-wise difference from the base, modulo 256. Two mabs that
// differ only by a constant colour offset have identical gabs — in
// particular, every pure-colour mab maps to the all-zero gab, which is why
// the top gab digest captures 58% of matches in Fig 9b.
//
// gab must have the same length as mab (a multiple of 3); base receives the
// first pixel.
func ComputeGab(mab []byte, base *[3]byte, gab []byte) {
	if len(gab) < len(mab) || len(mab) < 3 {
		panic("mach: bad gab buffer sizes")
	}
	base[0], base[1], base[2] = mab[0], mab[1], mab[2]
	for i := 0; i < len(mab); i += 3 {
		gab[i] = mab[i] - base[0]
		gab[i+1] = mab[i+1] - base[1]
		gab[i+2] = mab[i+2] - base[2]
	}
}

// ReconstructFromGab inverts ComputeGab: mab[i] = gab[i] + base (mod 256).
// The display controller performs this addition when resolving gab-mode
// content (§4.4, "add the base back to each pixel to restore the mab").
func ReconstructFromGab(gab []byte, base [3]byte, mab []byte) {
	if len(mab) < len(gab) {
		panic("mach: bad mab buffer size")
	}
	for i := 0; i < len(gab); i += 3 {
		mab[i] = gab[i] + base[0]
		mab[i+1] = gab[i+1] + base[1]
		mab[i+2] = gab[i+2] + base[2]
	}
}
