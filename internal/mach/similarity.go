package mach

import (
	"mach/internal/codec"
)

// Analyzer measures the *ideal* content similarity of a decoded mab stream:
// exact content matching with unbounded dictionaries over a sliding window
// of previous frames. It answers two questions from the paper:
//
//   - Fig 7b: with a 16-frame window, what fraction of mabs are intra
//     matches, inter matches, or unmatched? (42% / 15% / 43%)
//   - Fig 9a "optimal": with MACH's own window (8 frames) but perfect
//     capacity/replacement, how many bytes could dedup save? LRU MACH is
//     compared against this upper bound (the paper measures it 7% worse).
//
// Matching is by exact content (not digest), so the analyzer is free of
// hash collisions and usable as ground truth in tests.
type Analyzer struct {
	window   int
	gradient bool
	mabSize  int

	curr    map[string]struct{}
	history []map[string]struct{} // newest first

	Mabs         int64
	IntraMatches int64
	InterMatches int64
	NoMatches    int64

	// Byte accounting mirroring Writeback, for the optimal line of Fig 9a.
	ContentBytes uint64
	MetaBytes    uint64
	RawBytes     uint64

	mabBuf []byte
	gabBuf []byte
}

// NewAnalyzer builds an analyzer matching over the given previous-frame
// window (16 for Fig 7b, NumMACHs for the optimal bound) in mab or gab mode.
func NewAnalyzer(window, mabSize int, gradient bool) *Analyzer {
	if window < 0 || mabSize < 2 || mabSize&(mabSize-1) != 0 {
		panic("mach: bad analyzer shape")
	}
	mb := mabSize * mabSize * codec.BytesPerPixel
	return &Analyzer{
		window:   window,
		gradient: gradient,
		mabSize:  mabSize,
		mabBuf:   make([]byte, mb),
		gabBuf:   make([]byte, mb),
	}
}

// ProcessFrame folds one decoded frame (decode order) into the statistics.
func (a *Analyzer) ProcessFrame(fr *codec.Frame) {
	n := a.mabSize
	mabBytes := len(a.mabBuf)
	a.curr = make(map[string]struct{}, fr.NumMabs(n))
	metaPerMatch := 4
	if a.gradient {
		metaPerMatch = 7
	}
	for y0 := 0; y0 < fr.H; y0 += n {
		for x0 := 0; x0 < fr.W; x0 += n {
			a.Mabs++
			a.RawBytes += uint64(mabBytes)
			fr.CopyBlock(x0, y0, n, a.mabBuf)
			content := a.mabBuf
			if a.gradient {
				var base [3]byte
				ComputeGab(a.mabBuf, &base, a.gabBuf)
				content = a.gabBuf
			}
			key := string(content)
			if _, ok := a.curr[key]; ok {
				a.IntraMatches++
				a.MetaBytes += uint64(metaPerMatch)
				continue
			}
			matched := false
			for _, h := range a.history {
				if _, ok := h[key]; ok {
					matched = true
					break
				}
			}
			if matched {
				a.InterMatches++
				a.MetaBytes += uint64(metaPerMatch)
				// Window-matched content still becomes current-frame
				// vocabulary for later intra matches.
				a.curr[key] = struct{}{}
				continue
			}
			a.NoMatches++
			a.ContentBytes += uint64(mabBytes)
			a.MetaBytes += uint64(metaPerMatch)
			a.curr[key] = struct{}{}
		}
	}
	if a.window > 0 {
		a.history = append([]map[string]struct{}{a.curr}, a.history...)
		if len(a.history) > a.window {
			a.history = a.history[:a.window]
		}
	}
	a.curr = nil
}

// IntraRate returns intra matches / mabs.
func (a *Analyzer) IntraRate() float64 { return rate(a.IntraMatches, a.Mabs) }

// InterRate returns inter matches / mabs.
func (a *Analyzer) InterRate() float64 { return rate(a.InterMatches, a.Mabs) }

// NoMatchRate returns unmatched mabs / mabs.
func (a *Analyzer) NoMatchRate() float64 { return rate(a.NoMatches, a.Mabs) }

// Savings returns the ideal fractional write reduction (Fig 9a optimal).
func (a *Analyzer) Savings() float64 {
	if a.RawBytes == 0 {
		return 0
	}
	return 1 - float64(a.ContentBytes+a.MetaBytes)/float64(a.RawBytes)
}

func rate(x, n int64) float64 {
	if n == 0 {
		return 0
	}
	return float64(x) / float64(n)
}
