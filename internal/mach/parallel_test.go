package mach

import (
	"math/rand"
	"reflect"
	"testing"

	"mach/internal/codec"
	"mach/internal/framebuf"
	"mach/internal/par"
)

// noiseFrame builds a seeded pseudo-random frame: a mix of repeated and
// unique mabs so every classification outcome (none/intra/inter) occurs.
func noiseFrame(w, h int, rng *rand.Rand) *codec.Frame {
	f := codec.NewFrame(w, h)
	for i := range f.Pix {
		f.Pix[i] = byte(rng.Intn(256))
	}
	// Stamp a flat band so intra matches are guaranteed.
	for y := 0; y < h/4; y++ {
		for x := 0; x < w; x++ {
			f.Set(x, y, 10, 20, 30)
		}
	}
	return f
}

// frameSequence builds a short clip with inter-frame repetition: later
// frames reuse earlier content shifted, so history (inter) matches occur.
func frameSequence(w, h, n int, seed int64) []*codec.Frame {
	rng := rand.New(rand.NewSource(seed))
	frames := make([]*codec.Frame, n)
	for i := range frames {
		if i > 0 && i%2 == 0 {
			frames[i] = frames[i-1].Clone() // exact repeat: inter matches
			continue
		}
		frames[i] = noiseFrame(w, h, rng)
	}
	return frames
}

// runClip pushes a clip through a fresh Writeback and returns the stats and
// every layout produced.
func runClip(t *testing.T, cfg Config, pool *par.Pool, frames []*codec.Frame) (Stats, []*framebuf.FrameLayout) {
	t.Helper()
	wb, err := NewWriteback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pool != nil {
		wb.SetPool(pool)
	}
	var layouts []*framebuf.FrameLayout
	for i, fr := range frames {
		base := framebuf.RegionFrameBuffers + uint64(i%8)*(1<<22)
		dump := framebuf.RegionMachDumps + uint64(i%8)*(1<<16)
		layouts = append(layouts, wb.ProcessFrame(fr, i, base, dump, nil))
	}
	return wb.Stats(), layouts
}

// TestPrehashParallelEquivalence is the engine-level half of the
// determinism guarantee: for every configuration axis that changes what the
// prehash computes (gab mode, CO-MACH aux, collision tracking, digest
// function), a pooled Writeback must produce stats, layouts and write
// streams identical to the sequential engine.
func TestPrehashParallelEquivalence(t *testing.T) {
	const w, h, n = 64, 32, 6
	configs := map[string]func() Config{
		"gab":      DefaultConfig,
		"mab":      func() Config { c := DefaultConfig(); c.Gradient = false; return c },
		"comach":   func() Config { c := DefaultConfig(); c.CoMach = true; return c },
		"shadow":   func() Config { c := DefaultConfig(); c.TrackCollisions = true; return c },
		"ptr-only": func() Config { c := DefaultConfig(); c.Layout = framebuf.LayoutPtr; return c },
	}
	names := []string{"gab", "mab", "comach", "shadow", "ptr-only"}
	for _, name := range names {
		cfg := configs[name]()
		frames := frameSequence(w, h, n, 77)
		seqStats, seqLayouts := runClip(t, cfg, nil, frames)
		for _, workers := range []int{2, 3, 8} {
			parStats, parLayouts := runClip(t, cfg, par.New(workers), frames)
			if !reflect.DeepEqual(seqStats, parStats) {
				t.Errorf("%s workers=%d: stats diverged\nseq: %+v\npar: %+v", name, workers, seqStats, parStats)
			}
			if len(seqLayouts) != len(parLayouts) {
				t.Fatalf("%s workers=%d: layout count %d vs %d", name, workers, len(parLayouts), len(seqLayouts))
			}
			for i := range seqLayouts {
				if !reflect.DeepEqual(seqLayouts[i], parLayouts[i]) {
					t.Errorf("%s workers=%d: frame %d layout diverged", name, workers, i)
				}
			}
		}
	}
}

// TestParallelWriteStreamIdentical compares the raw sink streams — the
// exact (addr, size, ordinal) sequence the DRAM model would price.
func TestParallelWriteStreamIdentical(t *testing.T) {
	type write struct {
		addr uint64
		size int
		mab  int
	}
	collect := func(pool *par.Pool) []write {
		wb, err := NewWriteback(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if pool != nil {
			wb.SetPool(pool)
		}
		var ws []write
		frames := frameSequence(48, 24, 5, 19)
		for i, fr := range frames {
			wb.ProcessFrame(fr, i, framebuf.RegionFrameBuffers, framebuf.RegionMachDumps,
				func(addr uint64, size int, mab int) { ws = append(ws, write{addr, size, mab}) })
		}
		return ws
	}
	seq := collect(nil)
	if len(seq) == 0 {
		t.Fatal("no writes recorded")
	}
	for _, workers := range []int{2, 7} {
		got := collect(par.New(workers))
		if !reflect.DeepEqual(seq, got) {
			t.Fatalf("workers=%d: write stream diverged (%d vs %d writes)", workers, len(got), len(seq))
		}
	}
}

// TestSetPoolSingleWorkerInline: a 1-wide pool must not allocate scratch
// or change behaviour.
func TestSetPoolSingleWorkerInline(t *testing.T) {
	wb, err := NewWriteback(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wb.SetPool(par.New(1))
	if wb.scratch != nil {
		t.Fatal("1-wide pool allocated worker scratch")
	}
	fr := frameSequence(16, 16, 1, 3)[0]
	layout := wb.ProcessFrame(fr, 0, framebuf.RegionFrameBuffers, framebuf.RegionMachDumps, nil)
	if layout == nil || len(layout.Records) == 0 {
		t.Fatal("inline pooled engine produced no records")
	}
}
