package mach

import (
	"reflect"
	"testing"

	"mach/internal/framebuf"
)

// trackedConfig enables both measurement shadows so snapshots carry every
// optional piece of state.
func trackedConfig() Config {
	cfg := DefaultConfig()
	cfg.TrackPopularity = true
	cfg.TrackCollisions = true
	return cfg
}

// stepFrames drives n frames of mixed content through wb, each at distinct
// frame-buffer/dump addresses like the real pipeline.
func stepFrames(t *testing.T, wb *Writeback, from, n int) []*framebuf.FrameLayout {
	t.Helper()
	layouts := make([]*framebuf.FrameLayout, 0, n)
	for i := from; i < from+n; i++ {
		var fr = uniqueFrame(32, 16, byte(i%3))
		if i%2 == 0 {
			fr = flatFrame(32, 16, byte(40+i), 50, 60)
		}
		base := uint64(i) << 20
		layouts = append(layouts, wb.ProcessFrame(fr, i,
			framebuf.RegionFrameBuffers+base, framebuf.RegionMachDumps+base, nil))
	}
	return layouts
}

// The resume contract at the engine level: restore a snapshot into a fresh
// identically-configured engine and both must agree on all future frames.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	cfg := trackedConfig()
	wb, err := NewWriteback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stepFrames(t, wb, 0, 3)
	snap := wb.Snapshot()

	wb2, err := NewWriteback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := wb2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if wb2.Config() != cfg {
		t.Fatal("Config must round-trip through the constructor")
	}
	if !reflect.DeepEqual(wb.Snapshot(), wb2.Snapshot()) {
		t.Fatal("restored engine snapshots differently")
	}

	a := stepFrames(t, wb, 3, 2)
	b := stepFrames(t, wb2, 3, 2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("original and restored engines diverge on post-restore frames")
	}
	if !reflect.DeepEqual(wb.Stats(), wb2.Stats()) {
		t.Fatalf("stats diverge:\n%+v\n%+v", wb.Stats(), wb2.Stats())
	}
}

// A fresh engine's snapshot (no history, empty stats) must also round-trip:
// this is the frame-0 checkpoint.
func TestSnapshotRestoreEmpty(t *testing.T) {
	cfg := DefaultConfig()
	wb, _ := NewWriteback(cfg)
	snap := wb.Snapshot()
	wb2, _ := NewWriteback(cfg)
	if err := wb2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stepFrames(t, wb, 0, 2), stepFrames(t, wb2, 0, 2)) {
		t.Fatal("engines diverge after empty-state restore")
	}
}

// The snapshot owns its maps: frames processed afterwards must not mutate it.
func TestSnapshotIsOwned(t *testing.T) {
	cfg := trackedConfig()
	wb, _ := NewWriteback(cfg)
	stepFrames(t, wb, 0, 2)
	snap := wb.Snapshot()
	before := len(snap.Stats.DigestMatches)
	fr := flatFrame(32, 16, 99, 98, 97)
	wb.ProcessFrame(fr, 2, framebuf.RegionFrameBuffers+2<<20, framebuf.RegionMachDumps+2<<20, nil)
	if len(snap.Stats.DigestMatches) != before {
		t.Fatal("later frames mutated the snapshot's popularity map")
	}
}

// Snapshots come from untrusted checkpoint files; every shape the
// classification loop indexes into must be rejected, not trusted.
func TestRestoreRejectsBadState(t *testing.T) {
	cfg := trackedConfig()
	wb, _ := NewWriteback(cfg)
	stepFrames(t, wb, 0, 3)
	good := wb.Snapshot()

	cases := []struct {
		name    string
		mutate  func(st *State)
		withCfg func(c *Config)
	}{
		{name: "wrong entry count", mutate: func(st *State) {
			st.History[0].Entries = st.History[0].Entries[:1]
		}},
		{name: "too many frozen MACHs", mutate: func(st *State) {
			for len(st.History) <= cfg.NumMACHs {
				st.History = append(st.History, st.History[0])
			}
		}},
		{name: "popularity tracking mismatch", withCfg: func(c *Config) {
			c.TrackPopularity = false
		}},
		{name: "collision tracking mismatch", withCfg: func(c *Config) {
			c.TrackCollisions = false
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			target := cfg
			if tc.withCfg != nil {
				tc.withCfg(&target)
			}
			st := good
			st.History = append([]CacheState(nil), good.History...)
			if tc.mutate != nil {
				tc.mutate(&st)
			}
			fresh, _ := NewWriteback(target)
			if err := fresh.Restore(st); err == nil {
				t.Fatal("want a rejection, got nil")
			}
		})
	}
}
