package mach

import (
	"reflect"
	"testing"

	"mach/internal/codec"
	"mach/internal/framebuf"
)

// lowJitterFrame builds a frame of flat 4x4 mabs whose colours differ only
// in the low two bits: identical content once two or more low bits are
// dropped, distinct content before that.
func lowJitterFrame(w, h int) *codec.Frame {
	f := codec.NewFrame(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			jit := byte((y/4*(w/4) + x/4) % 4)
			f.Set(x, y, 40+jit, 80+jit, 120+jit)
		}
	}
	return f
}

func TestQuantShiftCoarsensMatching(t *testing.T) {
	// Raw-content matching (no gab transform): flat mabs of different
	// colours stay distinct, so the low-bit jitter is what decides matches.
	cfg := DefaultConfig()
	cfg.Gradient = false
	fr := lowJitterFrame(32, 16) // 32 mabs in 4 near-identical colour groups

	sharp, _ := NewWriteback(cfg)
	sharp.ProcessFrame(fr, 0, framebuf.RegionFrameBuffers, framebuf.RegionMachDumps, nil)
	s0 := sharp.Stats()

	coarse, _ := NewWriteback(cfg)
	coarse.SetQuantShift(2)
	if coarse.QuantShift() != 2 {
		t.Fatalf("QuantShift() = %d after SetQuantShift(2)", coarse.QuantShift())
	}
	coarse.ProcessFrame(fr, 0, framebuf.RegionFrameBuffers, framebuf.RegionMachDumps, nil)
	s2 := coarse.Stats()

	// Dropping the jittered low bits merges the colour groups: strictly more
	// intra matches, strictly less unique content written back.
	if s2.IntraMatches <= s0.IntraMatches {
		t.Fatalf("shift 2 intra matches %d not above shift 0's %d", s2.IntraMatches, s0.IntraMatches)
	}
	if s2.ContentBytes >= s0.ContentBytes {
		t.Fatalf("shift 2 content bytes %d not below shift 0's %d", s2.ContentBytes, s0.ContentBytes)
	}
	// With two low bits gone every mab collapses to one content.
	if s2.IntraMatches != 31 || s2.NoMatches != 1 {
		t.Fatalf("shift 2 should merge all 32 mabs: %+v", s2)
	}

	// Shift 0 is the identity: a fresh engine with an explicit zero shift
	// behaves exactly like one that never touched the knob.
	zero, _ := NewWriteback(cfg)
	zero.SetQuantShift(0)
	zero.ProcessFrame(fr, 0, framebuf.RegionFrameBuffers, framebuf.RegionMachDumps, nil)
	if !reflect.DeepEqual(zero.Stats(), s0) {
		t.Fatalf("explicit shift 0 diverges from the default:\n%+v\n%+v", zero.Stats(), s0)
	}
}

func TestQuantShiftBounds(t *testing.T) {
	wb, _ := NewWriteback(DefaultConfig())
	for _, bad := range []int{-1, 8, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetQuantShift(%d): no panic", bad)
				}
			}()
			wb.SetQuantShift(bad)
		}()
	}
	for _, ok := range []int{0, 1, 7} {
		wb.SetQuantShift(ok)
		if wb.QuantShift() != ok {
			t.Errorf("QuantShift() = %d, want %d", wb.QuantShift(), ok)
		}
	}
}

// The shift is engine state: it must ride snapshots so a resumed run hashes
// future frames exactly like the uninterrupted one.
func TestQuantShiftSnapshotRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	wb, _ := NewWriteback(cfg)
	wb.SetQuantShift(3)
	stepFrames(t, wb, 0, 2)
	snap := wb.Snapshot()
	if snap.QuantShift != 3 {
		t.Fatalf("snapshot quant shift %d, want 3", snap.QuantShift)
	}

	wb2, _ := NewWriteback(cfg)
	if err := wb2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if wb2.QuantShift() != 3 {
		t.Fatalf("restored quant shift %d, want 3", wb2.QuantShift())
	}
	if !reflect.DeepEqual(stepFrames(t, wb, 2, 2), stepFrames(t, wb2, 2, 2)) {
		t.Fatal("engines diverge after restoring a shifted snapshot")
	}

	bad := snap
	bad.QuantShift = 9
	fresh, _ := NewWriteback(cfg)
	if err := fresh.Restore(bad); err == nil {
		t.Fatal("out-of-range snapshot quant shift accepted")
	}
}
