package mach

import (
	"fmt"
	"sort"
)

// This file is the Writeback engine's checkpoint surface (DESIGN.md
// "Checkpoint/Resume"). Snapshots are taken at frame boundaries only: the
// per-frame transients (current MACH, CO-MACH, coalescing fills, prehash
// slots) are dead between ProcessFrame calls and are deliberately not part
// of the state. What persists across frames — and therefore must round-trip
// bit-exactly — is the frozen MACH history, the accumulated statistics, and
// the measurement-only shadow stores.

// EntryState is the serializable mirror of one MACH entry.
type EntryState struct {
	Digest uint32
	Aux    uint16
	Ptr    uint64
	Origin int
	Valid  bool
	LRU    uint64
	Hits   uint32
}

// CacheState is the serializable mirror of one frozen MACH.
type CacheState struct {
	Entries []EntryState
	Tick    uint64
}

// ShadowEntry is one TrackCollisions fingerprint, keyed by content pointer.
type ShadowEntry struct {
	Ptr uint64
	FP  [16]byte
}

// State is the Writeback engine's full frame-boundary state.
type State struct {
	History []CacheState // newest first, mirrors Writeback.history
	Stats   Stats
	// Shadow holds the TrackCollisions fingerprints sorted by pointer so
	// identical engines snapshot to identical bytes; nil when disabled.
	Shadow []ShadowEntry
	// QuantShift is the ABR requantization depth in force at the boundary
	// (SetQuantShift); it persists across frames, so a resumed engine must
	// hash at the same depth the live one would.
	QuantShift int `json:",omitempty"`
}

func snapshotCache(c *digestCache) CacheState {
	st := CacheState{Entries: make([]EntryState, len(c.entries)), Tick: c.tick}
	for i, e := range c.entries {
		st.Entries[i] = EntryState{
			Digest: e.digest, Aux: e.aux, Ptr: e.ptr,
			Origin: e.origin, Valid: e.valid, LRU: e.lru, Hits: e.hits,
		}
	}
	return st
}

func (w *Writeback) restoreCache(st CacheState) (*digestCache, error) {
	cfg := w.cfg
	if len(st.Entries) != cfg.EntriesPerMACH {
		return nil, fmt.Errorf("mach: snapshot MACH has %d entries, config wants %d",
			len(st.Entries), cfg.EntriesPerMACH)
	}
	c := newDigestCachePolicy(cfg.EntriesPerMACH, cfg.Ways, cfg.Policy)
	for i, e := range st.Entries {
		c.entries[i] = machEntry{
			digest: e.Digest, aux: e.Aux, ptr: e.Ptr,
			origin: e.Origin, valid: e.Valid, lru: e.LRU, hits: e.Hits,
		}
	}
	c.tick = st.Tick
	return c, nil
}

// Snapshot returns the engine's frame-boundary state. It must not be called
// from inside ProcessFrame.
func (w *Writeback) Snapshot() State {
	st := State{Stats: w.stats, QuantShift: w.quantShift}
	if len(w.history) > 0 {
		st.History = make([]CacheState, len(w.history))
		for i, h := range w.history {
			st.History[i] = snapshotCache(h)
		}
	}
	if w.shadow != nil {
		st.Shadow = make([]ShadowEntry, len(w.shadow))
		i := 0
		for ptr, fp := range w.shadow {
			st.Shadow[i] = ShadowEntry{Ptr: ptr, FP: fp}
			i++
		}
		sort.Slice(st.Shadow, func(a, b int) bool { return st.Shadow[a].Ptr < st.Shadow[b].Ptr })
	}
	if w.stats.DigestMatches != nil {
		// The map is shared with st.Stats by the struct copy above; give the
		// snapshot its own so later frames don't mutate it.
		m := make(map[uint32]int64, len(w.stats.DigestMatches))
		for d, n := range w.stats.DigestMatches {
			m[d] = n
		}
		st.Stats.DigestMatches = m
	}
	return st
}

// Restore overwrites the engine's frame-boundary state from a snapshot taken
// on an identically configured engine. The state may come from an untrusted
// file, so every shape the classification loop indexes into is validated.
func (w *Writeback) Restore(st State) error {
	cfg := w.cfg
	if len(st.History) > cfg.NumMACHs {
		return fmt.Errorf("mach: snapshot has %d frozen MACHs, config allows %d",
			len(st.History), cfg.NumMACHs)
	}
	history := make([]*digestCache, 0, len(st.History))
	for _, hs := range st.History {
		h, err := w.restoreCache(hs)
		if err != nil {
			return err
		}
		history = append(history, h)
	}
	if (st.Stats.DigestMatches != nil) != cfg.TrackPopularity {
		return fmt.Errorf("mach: snapshot popularity tracking %v, config wants %v",
			st.Stats.DigestMatches != nil, cfg.TrackPopularity)
	}
	if (st.Shadow != nil) != cfg.TrackCollisions {
		return fmt.Errorf("mach: snapshot collision tracking %v, config wants %v",
			st.Shadow != nil, cfg.TrackCollisions)
	}
	if st.QuantShift < 0 || st.QuantShift > 7 {
		return fmt.Errorf("mach: snapshot quant shift %d outside [0,7]", st.QuantShift)
	}

	if len(history) == 0 {
		history = nil
	}
	w.history = history
	w.stats = st.Stats
	if cfg.TrackPopularity {
		m := make(map[uint32]int64, len(st.Stats.DigestMatches))
		for d, n := range st.Stats.DigestMatches {
			m[d] = n
		}
		w.stats.DigestMatches = m
	}
	w.shadow = nil
	if cfg.TrackCollisions {
		w.shadow = make(map[uint64][16]byte, len(st.Shadow))
		for _, e := range st.Shadow {
			w.shadow[e.Ptr] = e.FP
		}
	}
	w.quantShift = st.QuantShift
	w.current = nil
	return nil
}
