package mach

import (
	"crypto/md5"
	"fmt"
	"time"

	"mach/internal/codec"
	"mach/internal/framebuf"
	"mach/internal/hashes"
	"mach/internal/par"
)

// Config describes one MACH deployment at the video decoder.
type Config struct {
	// NumMACHs is how many frozen per-frame MACHs are searched in addition
	// to the current frame's MACH: a mab can match content up to NumMACHs
	// frames back (§4.4 picks 8; Fig 12a is the sensitivity sweep).
	NumMACHs int
	// EntriesPerMACH and Ways shape each MACH (paper: 256 entries, 4-way).
	EntriesPerMACH int
	Ways           int

	// Gradient selects gab mode (§4.3); false is plain mab mode.
	Gradient bool
	// Digest selects the hash (Fig 12d sweep; CRC32 by default).
	Digest hashes.Func

	// CoMach enables the collision MACH of §6.3 (CRC32+CRC16 deep digest).
	CoMach        bool
	CoMachEntries int
	CoMachWays    int

	// Policy selects the MACH replacement policy (LRU in the paper; §4.5
	// leaves smarter digest-residency policies to future work).
	Policy Replacement

	// MabSize is the block edge in pixels (Fig 12c sweep; 4 by default).
	MabSize int
	// Layout selects the frame-buffer layout produced: LayoutPtr (§4) or
	// LayoutPtrDigest (§5.1). LayoutRaw bypasses MACH entirely.
	Layout framebuf.LayoutKind
	// Coalesce enables the three 64-byte coalescing buffers of §4.4;
	// disabling it is the ablation where every small item costs a line.
	Coalesce  bool
	LineBytes int

	// TrackCollisions verifies matches against true content fingerprints
	// (measurement-only shadow state, Fig 12d).
	TrackCollisions bool
	// FastFingerprint swaps the TrackCollisions shadow fingerprint from MD5
	// to the from-scratch 128-bit mixer in internal/hashes. The fingerprint
	// only verifies matches (it is never a MACH tag), so a non-cryptographic
	// mixer detects the same false matches at a fraction of the hot-path
	// cost; MD5 stays the default so existing measurement runs reproduce
	// bit-identically.
	FastFingerprint bool
	// TrackPopularity counts matches per digest (Fig 9b).
	TrackPopularity bool
}

// DefaultConfig returns the paper's deployment: 8 MACHs x 256 entries x
// 4-way (8KB), gab mode, CRC32, display-optimized layout, coalescing on.
func DefaultConfig() Config {
	return Config{
		NumMACHs:       8,
		EntriesPerMACH: 256,
		Ways:           4,
		Gradient:       true,
		Digest:         hashes.CRC32,
		CoMach:         false,
		CoMachEntries:  128,
		CoMachWays:     4,
		MabSize:        4,
		Layout:         framebuf.LayoutPtrDigest,
		Coalesce:       true,
		LineBytes:      64,
	}
}

// Validate reports malformed configurations.
func (c Config) Validate() error {
	switch {
	case c.NumMACHs < 0 || c.NumMACHs > 64:
		return fmt.Errorf("mach: NumMACHs %d outside [0,64]", c.NumMACHs)
	case c.EntriesPerMACH <= 0 || c.Ways <= 0 || c.EntriesPerMACH%c.Ways != 0:
		return fmt.Errorf("mach: bad MACH shape %d/%d", c.EntriesPerMACH, c.Ways)
	case c.MabSize < 2 || c.MabSize > 16 || c.MabSize&(c.MabSize-1) != 0:
		return fmt.Errorf("mach: mab size %d", c.MabSize)
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("mach: line bytes %d", c.LineBytes)
	case c.CoMach && (c.CoMachEntries <= 0 || c.CoMachWays <= 0 || c.CoMachEntries%c.CoMachWays != 0):
		return fmt.Errorf("mach: bad CO-MACH shape %d/%d", c.CoMachEntries, c.CoMachWays)
	}
	return nil
}

// MabBytes returns the decoded bytes per mab.
func (c Config) MabBytes() int { return c.MabSize * c.MabSize * codec.BytesPerPixel }

// MetaBytesPerMatch returns the metadata cost of a matched mab: 4-byte
// pointer/digest, plus the 3-byte base in gab mode (§4.3).
func (c Config) MetaBytesPerMatch() int {
	if c.Gradient {
		return 7
	}
	return 4
}

// SRAMBytes returns the MACH tag/value store size, for the Table 2-style
// overhead report. Each entry is a 4B digest + 4B pointer (+2B aux with
// CO-MACH).
func (c Config) SRAMBytes() int {
	per := 8
	if c.CoMach {
		per += 2
	}
	total := (c.NumMACHs + 1) * c.EntriesPerMACH * per
	if c.CoMach {
		total += c.CoMachEntries * 10
	}
	return total
}

// Stats aggregates writeback behaviour across processed frames.
type Stats struct {
	Mabs         int64
	IntraMatches int64
	InterMatches int64
	NoMatches    int64

	CoMachHits         int64
	AgedOut            int64 // inter matches rejected by pointer aging
	DetectedCollisions int64 // CRC32 collisions caught by the CRC16 aux
	FalseMatches       int64 // accepted matches with differing true content (TrackCollisions)

	ContentBytes uint64 // unique content written to memory
	MetaBytes    uint64 // pointers + digests + bases + bitmaps written
	DumpBytes    uint64 // frozen-MACH dumps written (layout iii)
	RawBytes     uint64 // what the baseline would have written

	LineWrites int64 // 64B write transactions issued

	// DigestMatches counts matches per digest when TrackPopularity is set.
	DigestMatches map[uint32]int64
}

// MatchRate returns (intra+inter)/mabs.
func (s Stats) MatchRate() float64 {
	if s.Mabs == 0 {
		return 0
	}
	return float64(s.IntraMatches+s.InterMatches) / float64(s.Mabs)
}

// BytesWritten returns all frame-buffer bytes written (content + metadata +
// dumps).
func (s Stats) BytesWritten() uint64 { return s.ContentBytes + s.MetaBytes + s.DumpBytes }

// Savings returns the fractional reduction in written bytes vs the baseline
// (Fig 9a's y-axis: positive is better; can be negative when metadata
// overhead exceeds dedup wins).
func (s Stats) Savings() float64 {
	if s.RawBytes == 0 {
		return 0
	}
	return 1 - float64(s.BytesWritten())/float64(s.RawBytes)
}

// WriteSink receives the line-granular memory writes the writeback engine
// issues; the decoder IP routes them into the DRAM model. addr is
// line-aligned. mabOrdinal is the index of the mab being processed when the
// line drained, which the decoder maps to its pipeline timeline: writes
// cluster where unique content is produced (noise, fresh detail) and go
// quiet across matched stretches.
type WriteSink func(addr uint64, size int, mabOrdinal int)

// Writeback is the per-video MACH engine at the video decoder's writeback
// stage. It is stateful across frames (frozen MACH history) and must be used
// for frames in decode order of a single video.
type Writeback struct {
	cfg     Config
	current *digestCache
	history []*digestCache // newest first
	co *coMach // reset empty at the top of every ProcessFrame (§6.3); no cross-frame state

	stats  Stats
	shadow map[uint64][16]byte // ptr -> content fingerprint (TrackCollisions)

	mabBuf []byte
	gabBuf []byte
	//lint:derived per-frame scan cursor, reset when ProcessFrame begins; dead between frames
	curMab int // ordinal of the mab currently being processed

	// quantShift is the ABR quality response: how many low bits each
	// decoded sample drops before hashing. Lower bitrate rungs carry
	// coarser quantization, so their content is blurrier and more
	// repetitive — match rates rise as quality falls. Set per rung switch
	// by the pipeline; persists across frames and is part of State.
	quantShift int

	// Parallel prehash state: pool shards the pure per-mab digest work,
	// scratch gives each worker its own block buffers, and pre collects
	// the per-mab results the serial classification phase consumes.
	//lint:derived execution configuration installed by SetPool, not simulation state; a restored engine runs sequentially until SetPool is called again
	pool *par.Pool
	//lint:derived worker scratch buffers sized by SetPool; contents are per-frame transients
	scratch []mabScratch
	//lint:derived per-frame prehash results, fully rewritten by the prehash phase before the classification phase reads them
	pre prehash

	// coalescing buffer fill levels and flush cursors
	//lint:derived per-frame flush cursors, zeroed at the top of every ProcessFrame
	contentFill, ptrFill, baseFill int

	// Recycled per-frame objects. Both lists are scratch, not State: a
	// restored engine simply starts with empty free lists and re-amortizes.
	//lint:derived retired FrameLayouts handed back by the pipeline (Recycle); reused by the next ProcessFrame
	freeLayouts []*framebuf.FrameLayout
	//lint:derived digest caches aged out of the frozen history; reset and reused as the next current MACH
	freeCaches []*digestCache

	// prehashWall accumulates host wall time spent in the prehash phase.
	// It is measurement plumbing for the benchmark harness (the Amdahl
	// share that bounds the parallel engine's speedup) — never simulation
	// state: it does not feed any simulated quantity, is excluded from
	// Stats and State, and merely reading the host clock cannot perturb the
	// virtual timeline.
	//lint:derived host-clock benchmark instrumentation, not simulation state; a restored engine restarts the accumulator at zero
	prehashWall time.Duration
}

// PrehashWall returns the accumulated host wall time of the prehash phase,
// the portion of the engine's work the pool shards. The benchmark harness
// divides it by the engine width to report the work-conserving parallel
// bound on machines without idle cores (see EXPERIMENTS.md).
func (w *Writeback) PrehashWall() time.Duration { return w.prehashWall }

// Recycle hands a retired frame layout back to the engine for reuse. The
// caller must guarantee nothing references the layout anymore: the pipeline
// calls it only for layouts older than the MACH retention window, after the
// decoder's reference table has dropped them.
func (w *Writeback) Recycle(l *framebuf.FrameLayout) {
	if l == nil {
		return
	}
	w.freeLayouts = append(w.freeLayouts, l)
}

// mabScratch is one worker's private block buffers.
type mabScratch struct {
	mab, gab []byte
}

// prehash holds the per-mab values that are pure functions of the decoded
// frame: the 32-bit digest, the CO-MACH aux hash, the gab base, and (with
// TrackCollisions) the md5 content fingerprint. Purity is what makes this
// phase safe to shard across workers: every slot is written exactly once,
// by the shard that owns its index, from frame content nobody mutates.
type prehash struct {
	digest []uint32
	aux    []uint16
	base   [][3]byte
	fp     [][16]byte
}

func (p *prehash) resize(n int, wantAux, wantBase, wantFP bool) {
	if cap(p.digest) < n {
		p.digest = make([]uint32, n)
	}
	p.digest = p.digest[:n]
	p.aux = p.aux[:0]
	if wantAux {
		if cap(p.aux) < n {
			p.aux = make([]uint16, n)
		}
		p.aux = p.aux[:n]
	}
	p.base = p.base[:0]
	if wantBase {
		if cap(p.base) < n {
			p.base = make([][3]byte, n)
		}
		p.base = p.base[:n]
	}
	p.fp = p.fp[:0]
	if wantFP {
		if cap(p.fp) < n {
			p.fp = make([][16]byte, n)
		}
		p.fp = p.fp[:n]
	}
}

// NewWriteback returns an engine for cfg, or an error for invalid configs.
func NewWriteback(cfg Config) (*Writeback, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &Writeback{
		cfg:    cfg,
		mabBuf: make([]byte, cfg.MabBytes()),
		gabBuf: make([]byte, cfg.MabBytes()),
	}
	if cfg.TrackCollisions {
		w.shadow = make(map[uint64][16]byte)
	}
	if cfg.TrackPopularity {
		w.stats.DigestMatches = make(map[uint32]int64)
	}
	if cfg.CoMach {
		w.co = newCoMach(cfg.CoMachEntries, cfg.CoMachWays)
	}
	return w, nil
}

// Config returns the engine configuration.
func (w *Writeback) Config() Config { return w.cfg }

// SetPool shards the pure per-mab prehash phase (block copy, gab transform,
// digest and aux hashing, shadow fingerprints) across the pool's workers.
// Classification, MACH state updates and write accounting stay serial and
// in mab order — an order-preserving reduction — so the engine's output is
// bit-identical to the sequential path; only wall clock changes. A nil pool
// (the default) keeps everything inline on the caller.
func (w *Writeback) SetPool(p *par.Pool) {
	w.pool = p
	w.scratch = nil
	if p.Workers() > 1 {
		w.scratch = make([]mabScratch, p.Workers())
		for i := range w.scratch {
			w.scratch[i] = mabScratch{
				mab: make([]byte, w.cfg.MabBytes()),
				gab: make([]byte, w.cfg.MabBytes()),
			}
		}
	}
}

// prehashGrain is the number of mabs per shard of the parallel prehash.
// Shard boundaries are a function of this constant and the frame geometry
// alone — never of the worker count — so every pool width computes the
// same values into the same slots (par.Shards documents the invariant).
const prehashGrain = 512

// prehashFrame computes the per-mab digest values for one frame. Each slot
// of w.pre is a pure function of the frame content, so the work shards
// freely; the caller consumes the slots strictly in mab order.
func (w *Writeback) prehashFrame(fr *codec.Frame, numMabs int) {
	cfg := w.cfg
	mabsPerRow := fr.MabsPerRow(cfg.MabSize)
	w.pre.resize(numMabs, cfg.CoMach, cfg.Gradient, w.shadow != nil)

	if w.pool.Workers() <= 1 {
		for ord := 0; ord < numMabs; ord++ {
			w.hashOne(fr, mabsPerRow, ord, w.mabBuf, w.gabBuf)
		}
		return
	}
	//lint:ignore allocheck the sharded path pays one closure plus the pool's goroutines per frame; the sequential engine, which the 0-allocs/op gate measures, takes the inline loop above
	w.pool.ForShards(numMabs, prehashGrain, func(lo, hi, worker int) {
		s := &w.scratch[worker]
		for ord := lo; ord < hi; ord++ {
			w.hashOne(fr, mabsPerRow, ord, s.mab, s.gab)
		}
	})
}

// hashOne fills mab ord's prehash slots: the digest, the CO-MACH aux hash,
// the gab base, and the optional content fingerprint. It is a pure function
// of the frame content writing only the ord-owned w.pre slots (plus the
// caller-owned block buffers), which is what lets prehashFrame shard it.
func (w *Writeback) hashOne(fr *codec.Frame, mabsPerRow, ord int, mab, gab []byte) {
	cfg := w.cfg
	n := cfg.MabSize
	x0 := (ord % mabsPerRow) * n
	y0 := (ord / mabsPerRow) * n
	fr.CopyBlock(x0, y0, n, mab)
	if shift := w.quantShift; shift > 0 {
		// Requantize to the rung's effective sample depth before any
		// hashing: matching happens on what the coarser encode would
		// have decoded, not on the full-quality synthesis.
		mask := byte(0xFF) << shift
		for i := range mab {
			mab[i] &= mask
		}
	}
	content := mab
	if cfg.Gradient {
		ComputeGab(mab, &w.pre.base[ord], gab)
		content = gab
	}
	w.pre.digest[ord] = hashes.Digest32(cfg.Digest, content)
	if cfg.CoMach {
		w.pre.aux[ord] = hashes.CRC16CCITT(content)
	}
	if w.shadow != nil {
		if cfg.FastFingerprint {
			w.pre.fp[ord] = hashes.Fingerprint128(content)
		} else {
			w.pre.fp[ord] = md5.Sum(content)
		}
	}
}

// Stats returns the accumulated statistics.
func (w *Writeback) Stats() Stats { return w.stats }

// SetQuantShift sets the requantization depth applied before hashing —
// the MACH-side effect of an ABR rung switch. The pipeline calls it at
// batch boundaries; it must not be called mid-ProcessFrame. Shifts outside
// [0,7] are a caller bug.
func (w *Writeback) SetQuantShift(shift int) {
	if shift < 0 || shift > 7 {
		panic(fmt.Sprintf("mach: quant shift %d outside [0,7]", shift))
	}
	w.quantShift = shift
}

// QuantShift returns the current requantization depth.
func (w *Writeback) QuantShift() int { return w.quantShift }

// alignUp rounds v up to the next multiple of line.
func alignUp(v uint64, line int) uint64 {
	l := uint64(line)
	return (v + l - 1) &^ (l - 1)
}

// coalesce accounts size bytes flowing through one of the coalescing
// buffers, emitting full-line writes through sink. fill is the buffer's
// current occupancy; cursor is the next line-aligned address of the stream.
func (w *Writeback) coalesce(fill *int, cursor *uint64, size int, sink WriteSink) {
	if !w.cfg.Coalesce {
		// Every item becomes its own (padded) line transaction.
		w.stats.LineWrites++
		if sink != nil {
			sink(*cursor, w.cfg.LineBytes, w.curMab)
		}
		*cursor += uint64(w.cfg.LineBytes)
		return
	}
	*fill += size
	for *fill >= w.cfg.LineBytes {
		*fill -= w.cfg.LineBytes
		w.stats.LineWrites++
		if sink != nil {
			sink(*cursor, w.cfg.LineBytes, w.curMab)
		}
		*cursor += uint64(w.cfg.LineBytes)
	}
}

// flushPartial drains a coalescing buffer at frame end.
func (w *Writeback) flushPartial(fill *int, cursor *uint64, sink WriteSink) {
	if *fill > 0 {
		*fill = 0
		w.stats.LineWrites++
		if sink != nil {
			sink(*cursor, w.cfg.LineBytes, w.curMab)
		}
		*cursor += uint64(w.cfg.LineBytes)
	}
}

// ProcessFrame runs the MACH writeback for one decoded frame. bufferBase is
// the frame's buffer slot (content area first, metadata after); dumpBase is
// where the frozen-MACH dump will live. sink, when non-nil, receives every
// line write. The returned layout is what the display controller consumes.
//
//lint:hotpath the per-frame MACH writeback: prehash plus serial classification of every mab
func (w *Writeback) ProcessFrame(fr *codec.Frame, displayIndex int, bufferBase, dumpBase uint64, sink WriteSink) *framebuf.FrameLayout {
	cfg := w.cfg
	n := cfg.MabSize
	mabBytes := cfg.MabBytes()
	numMabs := fr.NumMabs(n)
	frameBytes := uint64(fr.SizeBytes())

	var layout *framebuf.FrameLayout
	if n := len(w.freeLayouts); n > 0 {
		layout = w.freeLayouts[n-1]
		w.freeLayouts[n-1] = nil
		w.freeLayouts = w.freeLayouts[:n-1]
		*layout = framebuf.FrameLayout{Records: layout.Records[:0], Dump: layout.Dump[:0]}
	} else {
		//lint:ignore allocheck pool warm-up: layouts allocate until the pipeline's retire loop starts feeding Recycle; steady-state frames reuse retired layouts
		layout = &framebuf.FrameLayout{Records: make([]framebuf.MabRecord, 0, numMabs)}
	}
	layout.Kind = cfg.Layout
	layout.DisplayIndex = displayIndex
	layout.MabBytes = mabBytes
	layout.Gradient = cfg.Gradient
	layout.BufferBase = bufferBase
	layout.MetaBase = alignUp(bufferBase+frameBytes, cfg.LineBytes)
	layout.DumpBase = dumpBase
	w.stats.RawBytes += frameBytes

	if cfg.Layout == framebuf.LayoutRaw {
		// Baseline path: the full frame streams out sequentially.
		w.processRaw(fr, layout, sink)
		return layout
	}

	if n := len(w.freeCaches); n > 0 {
		w.current = w.freeCaches[n-1]
		w.freeCaches[n-1] = nil
		w.freeCaches = w.freeCaches[:n-1]
		w.current.reset()
	} else {
		//lint:ignore allocheck history warm-up: a fresh MACH is built until NumMACHs frames have aged caches into the free list; steady-state frames reset a recycled one
		w.current = newDigestCachePolicy(cfg.EntriesPerMACH, cfg.Ways, cfg.Policy)
	}
	if cfg.CoMach {
		w.co.cache.reset() // rebuilt empty per frame (§6.3)
	}

	contentCursor := bufferBase
	ptrCursor := layout.MetaBase
	// Bases stream after the pointer array within the metadata area.
	baseCursor := alignUp(layout.MetaBase+uint64(numMabs*4), cfg.LineBytes)
	w.contentFill, w.ptrFill, w.baseFill = 0, 0, 0
	var contentOff uint64

	// Phase 1 — prehash: every per-mab value that is a pure function of the
	// frame content (digest, aux, gab base, shadow fingerprint). This is
	// the only phase a pool shards; with no pool it runs inline, through
	// the same code, so the two engines cannot diverge.
	//lint:ignore determinism host-clock benchmark instrumentation: the measured duration feeds only the harness-facing PrehashWall accumulator, never any simulated quantity
	prehashStart := time.Now()
	w.prehashFrame(fr, numMabs)
	w.prehashWall += time.Since(prehashStart)

	// Phase 2 — classification: an order-preserving serial reduction. MACH
	// lookups mutate LRU state, the coalescing buffers carry fill across
	// mabs, and the sink paces DRAM writes — all order-dependent, so this
	// loop consumes the prehashed slots strictly in mab order.
	w.curMab = 0
	for ord := 0; ord < numMabs; ord++ {
		w.stats.Mabs++
		digest := w.pre.digest[ord]
		var aux uint16
		if cfg.CoMach {
			aux = w.pre.aux[ord]
		}
		var fp [16]byte
		if w.shadow != nil {
			fp = w.pre.fp[ord]
		}

		ptr, origin, kind := w.match(digest, aux, displayIndex)
		var rec framebuf.MabRecord
		if cfg.Gradient {
			rec.Base = w.pre.base[ord]
		}

		switch kind {
		case matchNone:
			addr := bufferBase + contentOff
			contentOff += uint64(mabBytes)
			rec.Kind = framebuf.RecFull
			rec.Ptr = addr
			w.stats.NoMatches++
			w.stats.ContentBytes += uint64(mabBytes)
			w.coalesce(&w.contentFill, &contentCursor, mabBytes, sink)
			w.writeMeta(layout, &ptrCursor, &baseCursor, 4, sink)
			w.insert(digest, aux, addr, displayIndex, fp)
		case matchIntra:
			rec.Kind = framebuf.RecPointer
			rec.Ptr = ptr
			w.stats.IntraMatches++
			w.notePopularity(digest)
			w.noteFalseMatch(ptr, fp)
			w.writeMeta(layout, &ptrCursor, &baseCursor, 4, sink)
		case matchInter:
			w.stats.InterMatches++
			w.notePopularity(digest)
			w.noteFalseMatch(ptr, fp)
			if cfg.Layout == framebuf.LayoutPtrDigest {
				rec.Kind = framebuf.RecDigest
				rec.Digest = digest
			} else {
				rec.Kind = framebuf.RecPointer
				rec.Ptr = ptr
			}
			w.writeMeta(layout, &ptrCursor, &baseCursor, 4, sink)
			// The digest joins this frame's MACH (it is part of the
			// frame's unique-content vocabulary), keeping the old
			// pointer: later mabs of this frame match it as intra.
			w.insert(digest, aux, ptr, origin, fp)
		}
		layout.Records = append(layout.Records, rec)
		w.curMab++
	}

	// Bitmap distinguishing pointer vs digest records (§5.1), layout iii.
	if cfg.Layout == framebuf.LayoutPtrDigest {
		bitmapBytes := (numMabs + 7) / 8
		layout.MetaBytes += uint64(bitmapBytes)
		w.stats.MetaBytes += uint64(bitmapBytes)
		w.coalesce(&w.ptrFill, &ptrCursor, bitmapBytes, sink)
	}

	w.flushPartial(&w.contentFill, &contentCursor, sink)
	w.flushPartial(&w.ptrFill, &ptrCursor, sink)
	if cfg.Gradient {
		w.flushPartial(&w.baseFill, &baseCursor, sink)
	}

	layout.ContentBytes = contentOff

	// Freeze this frame's MACH: dump it for the display (layout iii) and
	// push it onto the history searched by subsequent frames.
	layout.Dump = w.current.dumpInto(layout.Dump[:0])
	if cfg.Layout == framebuf.LayoutPtrDigest {
		dumpBytes := uint64(len(layout.Dump) * 8)
		w.stats.DumpBytes += dumpBytes
		for off := uint64(0); off < dumpBytes; off += uint64(cfg.LineBytes) {
			w.stats.LineWrites++
			if sink != nil {
				sink(dumpBase+off, cfg.LineBytes, numMabs-1)
			}
		}
	}
	if cfg.NumMACHs > 0 {
		// Shift the history in place (newest first): grow until the window
		// is full, then age the oldest MACH into the free list for reuse.
		if len(w.history) < cfg.NumMACHs {
			w.history = append(w.history, nil)
		} else {
			w.freeCaches = append(w.freeCaches, w.history[len(w.history)-1])
		}
		copy(w.history[1:], w.history)
		w.history[0] = w.current
	} else {
		w.freeCaches = append(w.freeCaches, w.current)
	}
	w.current = nil
	return layout
}

func (w *Writeback) processRaw(fr *codec.Frame, layout *framebuf.FrameLayout, sink WriteSink) {
	n := w.cfg.MabSize
	mabBytes := w.cfg.MabBytes()
	cursor := layout.BufferBase
	fill := 0
	var off uint64
	w.curMab = 0
	for y0 := 0; y0 < fr.H; y0 += n {
		for x0 := 0; x0 < fr.W; x0 += n {
			w.stats.Mabs++
			w.stats.NoMatches++
			layout.Records = append(layout.Records, framebuf.MabRecord{
				Kind: framebuf.RecFull,
				Ptr:  layout.BufferBase + off,
			})
			off += uint64(mabBytes)
			w.stats.ContentBytes += uint64(mabBytes)
			w.coalesce(&fill, &cursor, mabBytes, sink)
			w.curMab++
		}
	}
	w.flushPartial(&fill, &cursor, sink)
	layout.ContentBytes = off
}

// writeMeta accounts the per-mab metadata stream: a 4-byte pointer or digest
// plus, in gab mode, the 3-byte base.
func (w *Writeback) writeMeta(layout *framebuf.FrameLayout, ptrCursor, baseCursor *uint64, ptrBytes int, sink WriteSink) {
	layout.MetaBytes += uint64(ptrBytes)
	w.stats.MetaBytes += uint64(ptrBytes)
	w.coalesce(&w.ptrFill, ptrCursor, ptrBytes, sink)
	if w.cfg.Gradient {
		layout.MetaBytes += 3
		w.stats.MetaBytes += 3
		w.coalesce(&w.baseFill, baseCursor, 3, sink)
	}
}

type matchKind int

const (
	matchNone matchKind = iota
	matchIntra
	matchInter
)

// match searches the current MACH, the frozen history, and CO-MACH. The
// displayIndex is used for pointer aging: an inter match whose content
// originates more than NumMACHs-1 frames back is rejected and the content
// re-stored, which bounds how old a live frame-buffer reference can be and
// so bounds the display's buffer retention window (§5.1, Fig 12a).
func (w *Writeback) match(digest uint32, aux uint16, displayIndex int) (uint64, int, matchKind) {
	useAux := w.cfg.CoMach
	if ptr, origin, hit, coll := w.current.lookup(digest, aux, useAux); hit {
		return ptr, origin, matchIntra
	} else if coll {
		w.stats.DetectedCollisions++
	}
	for _, h := range w.history {
		if ptr, origin, hit, coll := h.lookup(digest, aux, useAux); hit {
			if displayIndex-origin >= w.cfg.NumMACHs {
				w.stats.AgedOut++
				return 0, 0, matchNone
			}
			return ptr, origin, matchInter
		} else if coll {
			w.stats.DetectedCollisions++
		}
	}
	if w.cfg.CoMach {
		if ptr, hit := w.co.lookup(digest, aux); hit {
			w.stats.CoMachHits++
			return ptr, displayIndex, matchIntra // CO-MACH holds the current frame's collided entries
		}
	}
	return 0, 0, matchNone
}

// insert places a content address into the current MACH, or into CO-MACH
// when the digest slot is occupied by different content (detected via the
// aux hash). fp is the mab's prehashed md5 fingerprint; it is only read
// when TrackCollisions enabled the shadow store.
func (w *Writeback) insert(digest uint32, aux uint16, addr uint64, origin int, fp [16]byte) {
	if w.cfg.CoMach {
		if _, _, _, coll := w.current.lookup(digest, aux, true); coll {
			w.co.insert(digest, aux, addr, origin)
			if w.shadow != nil {
				w.shadow[addr] = fp
			}
			return
		}
	}
	w.current.insert(digest, aux, addr, origin)
	if w.shadow != nil {
		w.shadow[addr] = fp
	}
}

func (w *Writeback) notePopularity(digest uint32) {
	if w.stats.DigestMatches != nil {
		w.stats.DigestMatches[digest]++
	}
}

func (w *Writeback) noteFalseMatch(ptr uint64, fp [16]byte) {
	if w.shadow == nil {
		return
	}
	if stored, ok := w.shadow[ptr]; ok && stored != fp {
		w.stats.FalseMatches++
	}
}
