package mach

import (
	"crypto/md5"
	"fmt"

	"mach/internal/codec"
	"mach/internal/framebuf"
	"mach/internal/hashes"
)

// Config describes one MACH deployment at the video decoder.
type Config struct {
	// NumMACHs is how many frozen per-frame MACHs are searched in addition
	// to the current frame's MACH: a mab can match content up to NumMACHs
	// frames back (§4.4 picks 8; Fig 12a is the sensitivity sweep).
	NumMACHs int
	// EntriesPerMACH and Ways shape each MACH (paper: 256 entries, 4-way).
	EntriesPerMACH int
	Ways           int

	// Gradient selects gab mode (§4.3); false is plain mab mode.
	Gradient bool
	// Digest selects the hash (Fig 12d sweep; CRC32 by default).
	Digest hashes.Func

	// CoMach enables the collision MACH of §6.3 (CRC32+CRC16 deep digest).
	CoMach        bool
	CoMachEntries int
	CoMachWays    int

	// Policy selects the MACH replacement policy (LRU in the paper; §4.5
	// leaves smarter digest-residency policies to future work).
	Policy Replacement

	// MabSize is the block edge in pixels (Fig 12c sweep; 4 by default).
	MabSize int
	// Layout selects the frame-buffer layout produced: LayoutPtr (§4) or
	// LayoutPtrDigest (§5.1). LayoutRaw bypasses MACH entirely.
	Layout framebuf.LayoutKind
	// Coalesce enables the three 64-byte coalescing buffers of §4.4;
	// disabling it is the ablation where every small item costs a line.
	Coalesce  bool
	LineBytes int

	// TrackCollisions verifies matches against true content fingerprints
	// (measurement-only shadow state, Fig 12d).
	TrackCollisions bool
	// TrackPopularity counts matches per digest (Fig 9b).
	TrackPopularity bool
}

// DefaultConfig returns the paper's deployment: 8 MACHs x 256 entries x
// 4-way (8KB), gab mode, CRC32, display-optimized layout, coalescing on.
func DefaultConfig() Config {
	return Config{
		NumMACHs:       8,
		EntriesPerMACH: 256,
		Ways:           4,
		Gradient:       true,
		Digest:         hashes.CRC32,
		CoMach:         false,
		CoMachEntries:  128,
		CoMachWays:     4,
		MabSize:        4,
		Layout:         framebuf.LayoutPtrDigest,
		Coalesce:       true,
		LineBytes:      64,
	}
}

// Validate reports malformed configurations.
func (c Config) Validate() error {
	switch {
	case c.NumMACHs < 0 || c.NumMACHs > 64:
		return fmt.Errorf("mach: NumMACHs %d outside [0,64]", c.NumMACHs)
	case c.EntriesPerMACH <= 0 || c.Ways <= 0 || c.EntriesPerMACH%c.Ways != 0:
		return fmt.Errorf("mach: bad MACH shape %d/%d", c.EntriesPerMACH, c.Ways)
	case c.MabSize < 2 || c.MabSize > 16 || c.MabSize&(c.MabSize-1) != 0:
		return fmt.Errorf("mach: mab size %d", c.MabSize)
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("mach: line bytes %d", c.LineBytes)
	case c.CoMach && (c.CoMachEntries <= 0 || c.CoMachWays <= 0 || c.CoMachEntries%c.CoMachWays != 0):
		return fmt.Errorf("mach: bad CO-MACH shape %d/%d", c.CoMachEntries, c.CoMachWays)
	}
	return nil
}

// MabBytes returns the decoded bytes per mab.
func (c Config) MabBytes() int { return c.MabSize * c.MabSize * codec.BytesPerPixel }

// MetaBytesPerMatch returns the metadata cost of a matched mab: 4-byte
// pointer/digest, plus the 3-byte base in gab mode (§4.3).
func (c Config) MetaBytesPerMatch() int {
	if c.Gradient {
		return 7
	}
	return 4
}

// SRAMBytes returns the MACH tag/value store size, for the Table 2-style
// overhead report. Each entry is a 4B digest + 4B pointer (+2B aux with
// CO-MACH).
func (c Config) SRAMBytes() int {
	per := 8
	if c.CoMach {
		per += 2
	}
	total := (c.NumMACHs + 1) * c.EntriesPerMACH * per
	if c.CoMach {
		total += c.CoMachEntries * 10
	}
	return total
}

// Stats aggregates writeback behaviour across processed frames.
type Stats struct {
	Mabs         int64
	IntraMatches int64
	InterMatches int64
	NoMatches    int64

	CoMachHits         int64
	AgedOut            int64 // inter matches rejected by pointer aging
	DetectedCollisions int64 // CRC32 collisions caught by the CRC16 aux
	FalseMatches       int64 // accepted matches with differing true content (TrackCollisions)

	ContentBytes uint64 // unique content written to memory
	MetaBytes    uint64 // pointers + digests + bases + bitmaps written
	DumpBytes    uint64 // frozen-MACH dumps written (layout iii)
	RawBytes     uint64 // what the baseline would have written

	LineWrites int64 // 64B write transactions issued

	// DigestMatches counts matches per digest when TrackPopularity is set.
	DigestMatches map[uint32]int64
}

// MatchRate returns (intra+inter)/mabs.
func (s Stats) MatchRate() float64 {
	if s.Mabs == 0 {
		return 0
	}
	return float64(s.IntraMatches+s.InterMatches) / float64(s.Mabs)
}

// BytesWritten returns all frame-buffer bytes written (content + metadata +
// dumps).
func (s Stats) BytesWritten() uint64 { return s.ContentBytes + s.MetaBytes + s.DumpBytes }

// Savings returns the fractional reduction in written bytes vs the baseline
// (Fig 9a's y-axis: positive is better; can be negative when metadata
// overhead exceeds dedup wins).
func (s Stats) Savings() float64 {
	if s.RawBytes == 0 {
		return 0
	}
	return 1 - float64(s.BytesWritten())/float64(s.RawBytes)
}

// WriteSink receives the line-granular memory writes the writeback engine
// issues; the decoder IP routes them into the DRAM model. addr is
// line-aligned. mabOrdinal is the index of the mab being processed when the
// line drained, which the decoder maps to its pipeline timeline: writes
// cluster where unique content is produced (noise, fresh detail) and go
// quiet across matched stretches.
type WriteSink func(addr uint64, size int, mabOrdinal int)

// Writeback is the per-video MACH engine at the video decoder's writeback
// stage. It is stateful across frames (frozen MACH history) and must be used
// for frames in decode order of a single video.
type Writeback struct {
	cfg     Config
	current *digestCache
	history []*digestCache // newest first
	co      *coMach

	stats  Stats
	shadow map[uint64][16]byte // ptr -> content fingerprint (TrackCollisions)

	mabBuf []byte
	gabBuf []byte
	curMab int // ordinal of the mab currently being processed

	// coalescing buffer fill levels and flush cursors
	contentFill, ptrFill, baseFill int
}

// NewWriteback returns an engine for cfg, or an error for invalid configs.
func NewWriteback(cfg Config) (*Writeback, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &Writeback{
		cfg:    cfg,
		mabBuf: make([]byte, cfg.MabBytes()),
		gabBuf: make([]byte, cfg.MabBytes()),
	}
	if cfg.TrackCollisions {
		w.shadow = make(map[uint64][16]byte)
	}
	if cfg.TrackPopularity {
		w.stats.DigestMatches = make(map[uint32]int64)
	}
	if cfg.CoMach {
		w.co = newCoMach(cfg.CoMachEntries, cfg.CoMachWays)
	}
	return w, nil
}

// Config returns the engine configuration.
func (w *Writeback) Config() Config { return w.cfg }

// Stats returns the accumulated statistics.
func (w *Writeback) Stats() Stats { return w.stats }

// alignUp rounds v up to the next multiple of line.
func alignUp(v uint64, line int) uint64 {
	l := uint64(line)
	return (v + l - 1) &^ (l - 1)
}

// coalesce accounts size bytes flowing through one of the coalescing
// buffers, emitting full-line writes through sink. fill is the buffer's
// current occupancy; cursor is the next line-aligned address of the stream.
func (w *Writeback) coalesce(fill *int, cursor *uint64, size int, sink WriteSink) {
	if !w.cfg.Coalesce {
		// Every item becomes its own (padded) line transaction.
		w.stats.LineWrites++
		if sink != nil {
			sink(*cursor, w.cfg.LineBytes, w.curMab)
		}
		*cursor += uint64(w.cfg.LineBytes)
		return
	}
	*fill += size
	for *fill >= w.cfg.LineBytes {
		*fill -= w.cfg.LineBytes
		w.stats.LineWrites++
		if sink != nil {
			sink(*cursor, w.cfg.LineBytes, w.curMab)
		}
		*cursor += uint64(w.cfg.LineBytes)
	}
}

// flushPartial drains a coalescing buffer at frame end.
func (w *Writeback) flushPartial(fill *int, cursor *uint64, sink WriteSink) {
	if *fill > 0 {
		*fill = 0
		w.stats.LineWrites++
		if sink != nil {
			sink(*cursor, w.cfg.LineBytes, w.curMab)
		}
		*cursor += uint64(w.cfg.LineBytes)
	}
}

// ProcessFrame runs the MACH writeback for one decoded frame. bufferBase is
// the frame's buffer slot (content area first, metadata after); dumpBase is
// where the frozen-MACH dump will live. sink, when non-nil, receives every
// line write. The returned layout is what the display controller consumes.
func (w *Writeback) ProcessFrame(fr *codec.Frame, displayIndex int, bufferBase, dumpBase uint64, sink WriteSink) *framebuf.FrameLayout {
	cfg := w.cfg
	n := cfg.MabSize
	mabBytes := cfg.MabBytes()
	numMabs := fr.NumMabs(n)
	frameBytes := uint64(fr.SizeBytes())

	layout := &framebuf.FrameLayout{
		Kind:         cfg.Layout,
		DisplayIndex: displayIndex,
		MabBytes:     mabBytes,
		Gradient:     cfg.Gradient,
		BufferBase:   bufferBase,
		MetaBase:     alignUp(bufferBase+frameBytes, cfg.LineBytes),
		DumpBase:     dumpBase,
		Records:      make([]framebuf.MabRecord, 0, numMabs),
	}
	w.stats.RawBytes += frameBytes

	if cfg.Layout == framebuf.LayoutRaw {
		// Baseline path: the full frame streams out sequentially.
		w.processRaw(fr, layout, sink)
		return layout
	}

	w.current = newDigestCachePolicy(cfg.EntriesPerMACH, cfg.Ways, cfg.Policy)
	if cfg.CoMach {
		w.co = newCoMach(cfg.CoMachEntries, cfg.CoMachWays) // per-frame (§6.3)
	}

	contentCursor := bufferBase
	ptrCursor := layout.MetaBase
	// Bases stream after the pointer array within the metadata area.
	baseCursor := alignUp(layout.MetaBase+uint64(numMabs*4), cfg.LineBytes)
	w.contentFill, w.ptrFill, w.baseFill = 0, 0, 0
	var contentOff uint64

	w.curMab = 0
	for y0 := 0; y0 < fr.H; y0 += n {
		for x0 := 0; x0 < fr.W; x0 += n {
			w.stats.Mabs++
			fr.CopyBlock(x0, y0, n, w.mabBuf)
			content := w.mabBuf
			var base [3]byte
			if cfg.Gradient {
				ComputeGab(w.mabBuf, &base, w.gabBuf)
				content = w.gabBuf
			}
			digest := hashes.Digest32(cfg.Digest, content)
			var aux uint16
			if cfg.CoMach {
				aux = hashes.CRC16CCITT(content)
			}

			ptr, origin, kind := w.match(digest, aux, displayIndex)
			rec := framebuf.MabRecord{Base: base}

			switch kind {
			case matchNone:
				addr := bufferBase + contentOff
				contentOff += uint64(mabBytes)
				rec.Kind = framebuf.RecFull
				rec.Ptr = addr
				w.stats.NoMatches++
				w.stats.ContentBytes += uint64(mabBytes)
				w.coalesce(&w.contentFill, &contentCursor, mabBytes, sink)
				w.writeMeta(layout, &ptrCursor, &baseCursor, 4, sink)
				w.insert(digest, aux, addr, displayIndex, content)
			case matchIntra:
				rec.Kind = framebuf.RecPointer
				rec.Ptr = ptr
				w.stats.IntraMatches++
				w.notePopularity(digest)
				w.noteFalseMatch(ptr, content)
				w.writeMeta(layout, &ptrCursor, &baseCursor, 4, sink)
			case matchInter:
				w.stats.InterMatches++
				w.notePopularity(digest)
				w.noteFalseMatch(ptr, content)
				if cfg.Layout == framebuf.LayoutPtrDigest {
					rec.Kind = framebuf.RecDigest
					rec.Digest = digest
				} else {
					rec.Kind = framebuf.RecPointer
					rec.Ptr = ptr
				}
				w.writeMeta(layout, &ptrCursor, &baseCursor, 4, sink)
				// The digest joins this frame's MACH (it is part of the
				// frame's unique-content vocabulary), keeping the old
				// pointer: later mabs of this frame match it as intra.
				w.insert(digest, aux, ptr, origin, content)
			}
			layout.Records = append(layout.Records, rec)
			w.curMab++
		}
	}

	// Bitmap distinguishing pointer vs digest records (§5.1), layout iii.
	if cfg.Layout == framebuf.LayoutPtrDigest {
		bitmapBytes := (numMabs + 7) / 8
		layout.MetaBytes += uint64(bitmapBytes)
		w.stats.MetaBytes += uint64(bitmapBytes)
		w.coalesce(&w.ptrFill, &ptrCursor, bitmapBytes, sink)
	}

	w.flushPartial(&w.contentFill, &contentCursor, sink)
	w.flushPartial(&w.ptrFill, &ptrCursor, sink)
	if cfg.Gradient {
		w.flushPartial(&w.baseFill, &baseCursor, sink)
	}

	layout.ContentBytes = contentOff

	// Freeze this frame's MACH: dump it for the display (layout iii) and
	// push it onto the history searched by subsequent frames.
	layout.Dump = w.current.dump()
	if cfg.Layout == framebuf.LayoutPtrDigest {
		dumpBytes := uint64(len(layout.Dump) * 8)
		w.stats.DumpBytes += dumpBytes
		for off := uint64(0); off < dumpBytes; off += uint64(cfg.LineBytes) {
			w.stats.LineWrites++
			if sink != nil {
				sink(dumpBase+off, cfg.LineBytes, numMabs-1)
			}
		}
	}
	if cfg.NumMACHs > 0 {
		w.history = append([]*digestCache{w.current}, w.history...)
		if len(w.history) > cfg.NumMACHs {
			w.history = w.history[:cfg.NumMACHs]
		}
	}
	w.current = nil
	return layout
}

func (w *Writeback) processRaw(fr *codec.Frame, layout *framebuf.FrameLayout, sink WriteSink) {
	n := w.cfg.MabSize
	mabBytes := w.cfg.MabBytes()
	cursor := layout.BufferBase
	fill := 0
	var off uint64
	w.curMab = 0
	for y0 := 0; y0 < fr.H; y0 += n {
		for x0 := 0; x0 < fr.W; x0 += n {
			w.stats.Mabs++
			w.stats.NoMatches++
			layout.Records = append(layout.Records, framebuf.MabRecord{
				Kind: framebuf.RecFull,
				Ptr:  layout.BufferBase + off,
			})
			off += uint64(mabBytes)
			w.stats.ContentBytes += uint64(mabBytes)
			w.coalesce(&fill, &cursor, mabBytes, sink)
			w.curMab++
		}
	}
	w.flushPartial(&fill, &cursor, sink)
	layout.ContentBytes = off
}

// writeMeta accounts the per-mab metadata stream: a 4-byte pointer or digest
// plus, in gab mode, the 3-byte base.
func (w *Writeback) writeMeta(layout *framebuf.FrameLayout, ptrCursor, baseCursor *uint64, ptrBytes int, sink WriteSink) {
	layout.MetaBytes += uint64(ptrBytes)
	w.stats.MetaBytes += uint64(ptrBytes)
	w.coalesce(&w.ptrFill, ptrCursor, ptrBytes, sink)
	if w.cfg.Gradient {
		layout.MetaBytes += 3
		w.stats.MetaBytes += 3
		w.coalesce(&w.baseFill, baseCursor, 3, sink)
	}
}

type matchKind int

const (
	matchNone matchKind = iota
	matchIntra
	matchInter
)

// match searches the current MACH, the frozen history, and CO-MACH. The
// displayIndex is used for pointer aging: an inter match whose content
// originates more than NumMACHs-1 frames back is rejected and the content
// re-stored, which bounds how old a live frame-buffer reference can be and
// so bounds the display's buffer retention window (§5.1, Fig 12a).
func (w *Writeback) match(digest uint32, aux uint16, displayIndex int) (uint64, int, matchKind) {
	useAux := w.cfg.CoMach
	if ptr, origin, hit, coll := w.current.lookup(digest, aux, useAux); hit {
		return ptr, origin, matchIntra
	} else if coll {
		w.stats.DetectedCollisions++
	}
	for _, h := range w.history {
		if ptr, origin, hit, coll := h.lookup(digest, aux, useAux); hit {
			if displayIndex-origin >= w.cfg.NumMACHs {
				w.stats.AgedOut++
				return 0, 0, matchNone
			}
			return ptr, origin, matchInter
		} else if coll {
			w.stats.DetectedCollisions++
		}
	}
	if w.cfg.CoMach {
		if ptr, hit := w.co.lookup(digest, aux); hit {
			w.stats.CoMachHits++
			return ptr, displayIndex, matchIntra // CO-MACH holds the current frame's collided entries
		}
	}
	return 0, 0, matchNone
}

// insert places a content address into the current MACH, or into CO-MACH
// when the digest slot is occupied by different content (detected via the
// aux hash).
func (w *Writeback) insert(digest uint32, aux uint16, addr uint64, origin int, content []byte) {
	if w.cfg.CoMach {
		if _, _, _, coll := w.current.lookup(digest, aux, true); coll {
			w.co.insert(digest, aux, addr, origin)
			if w.shadow != nil {
				w.shadow[addr] = md5.Sum(content)
			}
			return
		}
	}
	w.current.insert(digest, aux, addr, origin)
	if w.shadow != nil {
		w.shadow[addr] = md5.Sum(content)
	}
}

func (w *Writeback) notePopularity(digest uint32) {
	if w.stats.DigestMatches != nil {
		w.stats.DigestMatches[digest]++
	}
}

func (w *Writeback) noteFalseMatch(ptr uint64, content []byte) {
	if w.shadow == nil {
		return
	}
	if fp, ok := w.shadow[ptr]; ok && fp != md5.Sum(content) {
		w.stats.FalseMatches++
	}
}
