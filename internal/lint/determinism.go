package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the DESIGN.md replay guarantee inside the simulation
// packages: the same seeded workload must produce bit-identical results on
// every run. Three classes of violation are flagged:
//
//   - time.Now — wall-clock time leaking into simulated time or seeds;
//   - the global math/rand source (rand.Intn, rand.Float64, rand.Seed, …) —
//     only explicitly seeded rand.New(rand.NewSource(seed)) generators are
//     reproducible and replayable;
//   - range over a map whose body appends to a slice, prints, or sends on a
//     channel — Go randomizes map iteration order, so any ordered output
//     built inside such a loop differs between runs.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock time, the global math/rand source, and order-dependent " +
		"map iteration in the simulation packages (internal/sim, core, video, mach, delivery, experiments)",
	Run: runDeterminism,
}

// determinismScope lists the import-path subtrees whose replay the checks
// protect. Code outside (cmd/, examples/, the I/O layers) may use the wall
// clock freely, e.g. to time report generation.
var determinismScope = []string{
	"mach/internal/sim",
	"mach/internal/core",
	"mach/internal/video",
	"mach/internal/mach",
	"mach/internal/delivery",
	"mach/internal/experiments",
}

func inScope(path string, scope []string) bool {
	for _, s := range scope {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

// globalRandAllowed lists the math/rand package-level functions that do not
// touch the process-global source.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runDeterminism(pass *Pass) {
	if !inScope(pass.Path, determinismScope) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondeterministicCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
}

// calleeFunc resolves a call expression to the package-level function or
// method it invokes, or nil for builtins, conversions and function values.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

func checkNondeterministicCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	// Methods (e.g. (*rand.Rand).Intn on a seeded generator) are fine;
	// only package-level functions reach the global state below.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" {
			pass.Reportf(call.Pos(), "time.Now leaks wall-clock time into the simulation; derive times from sim.Time and seeds from config")
		}
	case "math/rand", "math/rand/v2":
		if !globalRandAllowed[fn.Name()] {
			pass.Reportf(call.Pos(), "rand.%s uses the process-global random source; use a seeded rand.New(rand.NewSource(seed)) so runs replay identically", fn.Name())
		}
	}
}

// checkMapRange flags range-over-map loops whose bodies have order-sensitive
// effects. Order-insensitive uses (counting, summing integers, building
// another map, deleting) pass untouched.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	sink := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sink = "sends on a channel"
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if obj, ok := pass.Info.Uses[fun].(*types.Builtin); ok && obj.Name() == "append" {
					sink = "appends to a slice"
				}
			case *ast.SelectorExpr:
				if fn := calleeFunc(pass, n); fn != nil && fn.Pkg() != nil {
					if fn.Pkg().Path() == "fmt" && strings.Contains(fn.Name(), "rint") {
						sink = "formats output"
					}
					if isWriterMethod(fn) {
						sink = "writes to a buffer"
					}
				}
			}
		}
		return true
	})
	if sink != "" {
		pass.Reportf(rng.Pos(), "map iteration order is randomized but this loop %s; iterate over sorted keys instead", sink)
	}
}

// isWriterMethod reports whether fn is a Write* method on the standard
// output-accumulating types.
func isWriterMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !strings.HasPrefix(fn.Name(), "Write") {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer", "bufio.Writer":
		return true
	}
	return false
}
