package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the DESIGN.md replay guarantee inside the simulation
// packages: the same seeded workload must produce bit-identical results on
// every run. Three classes of violation are flagged:
//
//   - time.Now — wall-clock time leaking into simulated time or seeds;
//   - the global math/rand source (rand.Intn, rand.Float64, rand.Seed, …) —
//     only explicitly seeded rand.New(rand.NewSource(seed)) generators are
//     reproducible and replayable;
//   - range over a map whose body appends to a slice, prints, or sends on a
//     channel — Go randomizes map iteration order, so any ordered output
//     built inside such a loop differs between runs;
//   - a `go func(){...}` literal that writes a captured variable — a data
//     race, and even when "benign" the interleaving makes results depend
//     on goroutine scheduling. The parallel engine's ownership idioms
//     pass: writes to goroutine-local variables, channel sends, writes
//     into a slice slot selected by a goroutine-local index (each worker
//     owns its slots), and bodies that take a sync lock.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock time, the global math/rand source, order-dependent " +
		"map iteration, and unsynchronized captured-variable writes in goroutines " +
		"in the simulation packages (internal/sim, core, video, mach, delivery, experiments, par, fleet)",
	Run: runDeterminism,
}

// determinismScope lists the import-path subtrees whose replay the checks
// protect. Code outside (cmd/, examples/, the I/O layers) may use the wall
// clock freely, e.g. to time report generation.
var determinismScope = []string{
	"mach/internal/sim",
	"mach/internal/core",
	"mach/internal/video",
	"mach/internal/mach",
	"mach/internal/delivery",
	"mach/internal/experiments",
	"mach/internal/par",
	"mach/internal/fleet",
}

func inScope(path string, scope []string) bool {
	for _, s := range scope {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

// globalRandAllowed lists the math/rand package-level functions that do not
// touch the process-global source.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runDeterminism(pass *Pass) {
	if !inScope(pass.Path, determinismScope) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondeterministicCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			case *ast.GoStmt:
				checkGoroutineCaptures(pass, n)
			}
			return true
		})
	}
}

// calleeFunc resolves a call expression to the package-level function or
// method it invokes, or nil for builtins, conversions and function values.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

func checkNondeterministicCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	// Methods (e.g. (*rand.Rand).Intn on a seeded generator) are fine;
	// only package-level functions reach the global state below.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" {
			pass.Reportf(call.Pos(), "time.Now leaks wall-clock time into the simulation; derive times from sim.Time and seeds from config")
		}
	case "math/rand", "math/rand/v2":
		if !globalRandAllowed[fn.Name()] {
			pass.Reportf(call.Pos(), "rand.%s uses the process-global random source; use a seeded rand.New(rand.NewSource(seed)) so runs replay identically", fn.Name())
		}
	}
}

// checkMapRange flags range-over-map loops whose bodies have order-sensitive
// effects. Order-insensitive uses (counting, summing integers, building
// another map, deleting) pass untouched.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	sink := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sink = "sends on a channel"
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if obj, ok := pass.Info.Uses[fun].(*types.Builtin); ok && obj.Name() == "append" {
					sink = "appends to a slice"
				}
			case *ast.SelectorExpr:
				if fn := calleeFunc(pass, n); fn != nil && fn.Pkg() != nil {
					if fn.Pkg().Path() == "fmt" && strings.Contains(fn.Name(), "rint") {
						sink = "formats output"
					}
					if isWriterMethod(fn) {
						sink = "writes to a buffer"
					}
				}
			}
		}
		return true
	})
	if sink != "" {
		pass.Reportf(rng.Pos(), "map iteration order is randomized but this loop %s; iterate over sorted keys instead", sink)
	}
}

// checkGoroutineCaptures flags writes to captured variables inside a
// `go func(){...}` literal. Only syntactic goroutine launches of function
// literals are analyzed (a named function receiving shared state through
// its parameters is the caller's contract to get right), which keeps the
// check free of false positives on the worker-pool callbacks the parallel
// engine runs through par.Pool.ForShards.
func checkGoroutineCaptures(pass *Pass, g *ast.GoStmt) {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	// A body that takes a lock has declared its synchronization story;
	// whether the guard actually covers every write is the race
	// detector's job, not a static lint's.
	if bodyLocks(pass, lit) {
		return
	}
	report := func(pos ast.Node, name string) {
		pass.Reportf(pos.Pos(), "goroutine writes captured variable %q: results then depend on scheduling; "+
			"give each goroutine its own index-addressed slot, send on a channel, or guard with a sync lock", name)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.GoStmt); ok && inner != g {
			// Nested launches are visited by the outer Inspect pass.
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if name, bad := capturedWrite(pass, lit, lhs); bad {
					report(lhs, name)
				}
			}
		case *ast.IncDecStmt:
			if name, bad := capturedWrite(pass, lit, n.X); bad {
				report(n.X, name)
			}
		}
		return true
	})
}

// bodyLocks reports whether the literal's body calls a Lock/RLock method
// (sync.Mutex, sync.RWMutex, or anything implementing the same contract).
func bodyLocks(pass *Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if fn := calleeFunc(pass, call); fn != nil {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
				(fn.Name() == "Lock" || fn.Name() == "RLock") {
				found = true
			}
		}
		return !found
	})
	return found
}

// capturedWrite decides whether assigning through lhs mutates state
// captured from outside the function literal. It unwraps selectors,
// dereferences and index expressions down to the root identifier;
// indexing a captured slice with a goroutine-local index is the engine's
// sanctioned slot-ownership pattern and passes, while map indexing is
// never safe concurrently.
func capturedWrite(pass *Pass, lit *ast.FuncLit, lhs ast.Expr) (name string, bad bool) {
	viaSliceIndex := false
	localIndex := true
	expr := lhs
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.IndexExpr:
			tv, ok := pass.Info.Types[e.X]
			if !ok {
				return "", false
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				// Concurrent map writes fault at runtime; no index
				// discipline makes them safe.
				if root, captured := rootCaptured(pass, lit, e.X); captured {
					return root, true
				}
				return "", false
			}
			viaSliceIndex = true
			if !exprLocal(pass, lit, e.Index) {
				localIndex = false
			}
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			if e.Name == "_" {
				return "", false
			}
			obj := pass.Info.ObjectOf(e)
			if obj == nil || !isCaptured(lit, obj) {
				return "", false
			}
			if viaSliceIndex && localIndex {
				return "", false // index-owned slot in a shared slice
			}
			return e.Name, true
		default:
			return "", false
		}
	}
}

// rootCaptured finds the root identifier of expr and reports whether it
// is captured from outside the literal.
func rootCaptured(pass *Pass, lit *ast.FuncLit, expr ast.Expr) (string, bool) {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			obj := pass.Info.ObjectOf(e)
			if obj != nil && isCaptured(lit, obj) {
				return e.Name, true
			}
			return "", false
		default:
			return "", false
		}
	}
}

// exprLocal reports whether every variable the expression reads is
// declared inside the literal (parameters included): such an expression
// is goroutine-local and safe to use as a slot index.
func exprLocal(pass *Pass, lit *ast.FuncLit, expr ast.Expr) bool {
	local := true
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || !local {
			return local
		}
		if obj, ok := pass.Info.ObjectOf(id).(*types.Var); ok && isCaptured(lit, obj) {
			local = false
		}
		return local
	})
	return local
}

// isCaptured reports whether obj is declared outside the literal's
// source range (and is a variable — functions, types and constants are
// immutable and never racy to read).
func isCaptured(lit *ast.FuncLit, obj types.Object) bool {
	if _, isVar := obj.(*types.Var); !isVar {
		return false
	}
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}

// isWriterMethod reports whether fn is a Write* method on the standard
// output-accumulating types.
func isWriterMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !strings.HasPrefix(fn.Name(), "Write") {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer", "bufio.Writer":
		return true
	}
	return false
}
