package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PathCheck is the CFG-path-aware upgrade of ErrCheck: it flags an error
// variable that is assigned from a call and then, on at least one
// control-flow path, is overwritten or reaches the function exit without
// ever being read. ErrCheck only sees the statement-level drop
// (`f.Close()` as an expression statement); PathCheck sees
//
//	err := step1()
//	if cond {
//	        err = step2() // first error was never checked
//	}
//
// which per-node inspection cannot. Reads anywhere count — returning the
// error, comparing it, passing it to a function, wrapping it. Variables
// captured by a closure are skipped (the closure may read them at any
// time), as are named result parameters (falling off the end returns
// them, which is the caller's check).
var PathCheck = &Analyzer{
	Name: "pathcheck",
	Doc: "flag error values that are assigned from a call and then overwritten or " +
		"dropped at function exit without being read on some control-flow path",
	Run: runPathCheck,
}

func runPathCheck(pass *Pass) {
	funcBodies(pass, func(decl *ast.FuncDecl) {
		skip := capturedVars(pass, decl.Body)
		for _, v := range namedResults(pass, decl.Type) {
			skip[v] = true
		}
		checkErrorPaths(pass, decl.Body, skip)
	})
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				skip := capturedVars(pass, lit.Body)
				for _, v := range namedResults(pass, lit.Type) {
					skip[v] = true
				}
				checkErrorPaths(pass, lit.Body, skip)
			}
			return true
		})
	}
}

func checkErrorPaths(pass *Pass, body *ast.BlockStmt, skip map[*types.Var]bool) {
	g := buildCFG(pass, body)
	for _, b := range g.blocks {
		for j, n := range b.nodes {
			for _, v := range errorDefs(pass, n) {
				// Only variables declared inside this body are this body's
				// responsibility: a closure assigning the enclosing
				// function's named result (the deferred-recover idiom)
				// hands the error to the enclosing scope, and package
				// globals outlive every function.
				if skip[v] || v.Pos() < body.Pos() || v.Pos() > body.End() {
					continue
				}
				fates := explorePaths(pass, g, b, j+1, v)
				// The defining node may read the old value (err =
				// wrap(err)); only the new definition's fate matters.
				switch {
				case fates.UnreadRedef != nil:
					pass.Reportf(n.Pos(), "error assigned to %q is overwritten at line %d without being checked on some path",
						v.Name(), pass.Fset.Position(fates.UnreadRedef.Pos()).Line)
				case fates.UnreadExit:
					pass.Reportf(n.Pos(), "error assigned to %q reaches function exit without being checked on some path", v.Name())
				}
			}
		}
	}
}

// errorDefs returns the error-typed local variables that node n defines
// from a call. Plain resets (err = nil) are not definitions worth
// tracking: there is nothing to check.
func errorDefs(pass *Pass, n ast.Node) []*types.Var {
	a, ok := n.(*ast.AssignStmt)
	if !ok || (a.Tok != token.ASSIGN && a.Tok != token.DEFINE) {
		return nil
	}
	var defs []*types.Var
	add := func(lhs ast.Expr) {
		v := lhsVar(pass, lhs)
		if v != nil && isErrorType(v.Type()) && !v.IsField() && v.Pkg() != nil {
			defs = append(defs, v)
		}
	}
	if pairs := assignTargets(a); pairs != nil {
		for _, p := range pairs {
			if containsCall(p[1]) {
				add(p[0])
			}
		}
		return defs
	}
	// v, err := f()
	if len(a.Rhs) == 1 && containsCall(a.Rhs[0]) {
		for _, lhs := range a.Lhs {
			add(lhs)
		}
	}
	return defs
}

func containsCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// namedResults lists a function type's named result variables: reaching
// the exit assigns them to the caller, which is itself the check.
func namedResults(pass *Pass, ft *ast.FuncType) []*types.Var {
	if ft == nil || ft.Results == nil {
		return nil
	}
	var out []*types.Var
	for _, field := range ft.Results.List {
		for _, name := range field.Names {
			if v, ok := pass.Info.ObjectOf(name).(*types.Var); ok {
				out = append(out, v)
			}
		}
	}
	return out
}
