package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestGolden runs every analyzer over its testdata corpus: files seeded
// with violations (`// want` assertions), files whose violations carry
// lint:ignore directives (zero surviving diagnostics), and clean files.
func TestGolden(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			files, err := GoldenFiles(".", a.Name)
			if err != nil {
				t.Fatal(err)
			}
			for _, file := range files {
				problems, err := RunGoldenFile(a, file)
				if err != nil {
					t.Fatalf("%s: %v", file, err)
				}
				for _, p := range problems {
					t.Errorf("%s", p)
				}
			}
		})
	}
}

// checkSource type-checks an inline source string and runs the given
// analyzers over it.
func checkSource(t *testing.T, src, pkgPath string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := CheckFile(fset, f, pkgPath)
	if err != nil {
		t.Fatal(err)
	}
	return RunAnalyzers(fset, []*Package{pkg}, analyzers)
}

func TestMalformedIgnoreDirective(t *testing.T) {
	src := `package p

//lint:ignore
var X = 1
`
	diags := checkSource(t, src, "example.com/p", []*Analyzer{SelfCompare})
	if len(diags) != 1 || diags[0].Check != "lintdirective" {
		t.Fatalf("want one lintdirective diagnostic, got %v", diags)
	}
	if !strings.Contains(diags[0].Message, "malformed") {
		t.Fatalf("unexpected message: %s", diags[0].Message)
	}
}

// A directive missing the reason is malformed even when it names a check:
// the written justification is the point.
func TestIgnoreDirectiveRequiresReason(t *testing.T) {
	src := `package p

//lint:ignore floateq
var X = 1
`
	diags := checkSource(t, src, "example.com/p", nil)
	if len(diags) != 1 || diags[0].Check != "lintdirective" {
		t.Fatalf("want one lintdirective diagnostic, got %v", diags)
	}
}

func TestSuppressionDoesNotLeakAcrossLines(t *testing.T) {
	src := `package p

//lint:ignore floateq reason applies to the next line only
var gap = 1

func eq(a, b float64) bool { return a == b }
`
	diags := checkSource(t, src, "example.com/p", []*Analyzer{FloatEq})
	if len(diags) != 1 || diags[0].Check != "floateq" {
		t.Fatalf("directive two lines away must not suppress; got %v", diags)
	}
}

func TestIgnoreAllMatchesEveryCheck(t *testing.T) {
	src := `package p

func eq(a, b float64) bool {
	//lint:ignore all fixture
	return a == b
}
`
	diags := checkSource(t, src, "example.com/p", []*Analyzer{FloatEq})
	if len(diags) != 0 {
		t.Fatalf("lint:ignore all must suppress, got %v", diags)
	}
}

// //lint:derived is sugar for an ignore scoped to statecheck; without a
// reason it is malformed like any other directive.
func TestDerivedDirectiveRequiresReason(t *testing.T) {
	src := `package p

//lint:derived
var X = 1
`
	diags := checkSource(t, src, "example.com/p", nil)
	if len(diags) != 1 || diags[0].Check != "lintdirective" {
		t.Fatalf("want one lintdirective diagnostic, got %v", diags)
	}
	if !strings.Contains(diags[0].Message, "lint:derived") {
		t.Fatalf("unexpected message: %s", diags[0].Message)
	}
}

// A derived annotation on a field Restore actually covers is stale, and
// staleignore says so in derived vocabulary.
func TestStaleDerivedAnnotation(t *testing.T) {
	src := `package p

type State struct{ X int64 }

type M struct {
	//lint:derived fixture: x is actually serialized, so this is stale
	x int64
}

func (m *M) Step() { m.x++ }

func (m *M) Snapshot() State { return State{X: m.x} }

func (m *M) Restore(st State) error {
	m.x = st.X
	return nil
}
`
	diags := checkSource(t, src, "example.com/p", []*Analyzer{StateCheck, StaleIgnore})
	if len(diags) != 1 || diags[0].Check != "staleignore" {
		t.Fatalf("want one staleignore diagnostic, got %v", diags)
	}
	if !strings.Contains(diags[0].Message, "lint:derived annotation marks no un-snapshotted field") {
		t.Fatalf("unexpected message: %s", diags[0].Message)
	}
}

// A derived annotation doing real work both suppresses the statecheck
// finding and is not stale.
func TestDerivedAnnotationSuppresses(t *testing.T) {
	src := `package p

type State struct{ X int64 }

type M struct {
	x int64
	//lint:derived scratch is rebuilt by Step before every read
	scratch int64
}

func (m *M) Step() {
	m.x++
	m.scratch = m.x * 2
}

func (m *M) Snapshot() State { return State{X: m.x} }

func (m *M) Restore(st State) error {
	m.x = st.X
	return nil
}
`
	diags := checkSource(t, src, "example.com/p", []*Analyzer{StateCheck, StaleIgnore})
	if len(diags) != 0 {
		t.Fatalf("derived annotation must suppress and not be stale, got %v", diags)
	}
}

// //lint:hotpath without a reason is malformed: the reason documents why the
// function runs per frame.
func TestHotpathDirectiveRequiresReason(t *testing.T) {
	src := `package p

//lint:hotpath
func Step() {}
`
	diags := checkSource(t, src, "example.com/p", nil)
	if len(diags) != 1 || diags[0].Check != "lintdirective" {
		t.Fatalf("want one lintdirective diagnostic, got %v", diags)
	}
	if !strings.Contains(diags[0].Message, "lint:hotpath") {
		t.Fatalf("unexpected message: %s", diags[0].Message)
	}
}

// A hotpath annotation that sits on anything but a function declaration
// resolves to no root; staleignore flags it in hotpath vocabulary.
func TestMisplacedHotpathAnnotation(t *testing.T) {
	src := `package p

//lint:hotpath fixture: this marks a variable, not a function
var X = 1

func Step() {
	_ = make([]byte, 8)
}
`
	diags := checkSource(t, src, "example.com/p", []*Analyzer{Allocheck, StaleIgnore})
	if len(diags) != 1 || diags[0].Check != "staleignore" {
		t.Fatalf("want one staleignore diagnostic, got %v", diags)
	}
	if !strings.Contains(diags[0].Message, "lint:hotpath annotation marks no function declaration") {
		t.Fatalf("unexpected message: %s", diags[0].Message)
	}
}

// A hotpath root doing real work both seeds the allocheck cone and is not
// stale.
func TestHotpathRootSeedsConeAndIsNotStale(t *testing.T) {
	src := `package p

//lint:hotpath fixture: per-frame entry point
func Step(n int) []byte {
	return make([]byte, n)
}
`
	diags := checkSource(t, src, "example.com/p", []*Analyzer{Allocheck, StaleIgnore})
	if len(diags) != 1 || diags[0].Check != "allocheck" {
		t.Fatalf("want one allocheck diagnostic and no staleness, got %v", diags)
	}
}

// In a subset run without allocheck, hotpath roots are never resolved, so
// staleignore must not flag them: applicability follows the directive's
// checks list, exactly like lint:ignore allocheck directives.
func TestHotpathAnnotationSafeInSubsetRuns(t *testing.T) {
	src := `package p

//lint:hotpath fixture: per-frame entry point
func Step(n int) []byte {
	return make([]byte, n)
}
`
	diags := checkSource(t, src, "example.com/p", []*Analyzer{FloatEq, StaleIgnore})
	if len(diags) != 0 {
		t.Fatalf("subset run without allocheck must not report hotpath staleness, got %v", diags)
	}
}

// Hotpath annotations are roots, not suppressions: an allocation on the
// line they annotate stays reported.
func TestHotpathAnnotationDoesNotSuppress(t *testing.T) {
	src := `package p

//lint:hotpath fixture: the directive must not vouch for this make
func Step(n int) []byte { return make([]byte, n) }
`
	diags := checkSource(t, src, "example.com/p", []*Analyzer{Allocheck})
	if len(diags) != 1 || diags[0].Check != "allocheck" {
		t.Fatalf("hotpath annotation must not suppress adjacent findings, got %v", diags)
	}
}

func TestByName(t *testing.T) {
	for _, a := range All() {
		if ByName(a.Name) != a {
			t.Fatalf("ByName(%q) did not round-trip", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Fatal("ByName of unknown check must be nil")
	}
}

func TestUnitOfBoundaries(t *testing.T) {
	cases := []struct {
		name   string
		suffix string
		ok     bool
	}{
		{"energyPJ", "PJ", true},
		{"busyPs", "Ps", true},
		{"Ps", "Ps", true},
		{"t1Ns", "Ns", true},
		{"ComputeCycles", "Cycles", true},
		{"freqMHz", "MHz", true},
		{"Caps", "", false}, // lowercase "ps" is not the Ps unit
		{"ANs", "", false},  // no camelCase boundary before the suffix
		{"frames", "", false},
		{"staticMW", "MW", true},
	}
	for _, c := range cases {
		suffix, _, ok := unitOf(c.name)
		if ok != c.ok || suffix != c.suffix {
			t.Errorf("unitOf(%q) = %q,%v; want %q,%v", c.name, suffix, ok, c.suffix, c.ok)
		}
	}
}

// TestLoadModuleSmoke loads this module and sanity-checks the loader: the
// package set covers the simulation subtrees and type-checks without
// errors (the tree builds, so any type error is a loader defect).
func TestLoadModuleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	fset, pkgs, err := LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	if fset == nil {
		t.Fatal("nil fset")
	}
	paths := map[string]bool{}
	for _, p := range pkgs {
		paths[p.Path] = true
		for _, terr := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.Path, terr)
		}
	}
	for _, want := range []string{"mach", "mach/internal/sim", "mach/internal/core", "mach/cmd/machlint", "mach/internal/lint"} {
		if !paths[want] {
			t.Errorf("loader missed package %s (got %d packages)", want, len(pkgs))
		}
	}
}
