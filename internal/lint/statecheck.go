package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// StateCheck machine-enforces the checkpoint invariant PR 5 hand-wired
// (DESIGN.md "Checkpoint/Resume"): every type with a Snapshot/Restore pair
// must keep its mutable state and its snapshot schema in sync. The energy
// headlines rest on deterministic, resumable long runs; the failure mode
// this analyzer exists for is adding a mutable field to dram.Memory or
// mach.Writeback and forgetting the snapshot struct — the run resumes,
// diverges silently, and the golden Results stop meaning anything.
//
// For each named struct type T declaring both a Snapshot and a Restore
// method, the analyzer proves three things using the call graph:
//
//  1. coverage — every mutable field of T (written, directly or through a
//     `p := &t.field` alias, in code reachable outside T's constructors and
//     the pair itself) is written again by code reachable from Restore, or
//     carries a `//lint:derived <reason>` annotation explaining why Restore
//     recomputes it instead (per-frame transients, execution configuration);
//  2. schema liveness — every field of the snapshot struct S (Snapshot's
//     result type, or the local S unmarshaled inside Restore) is populated
//     by Snapshot-reachable code and consumed by Restore-reachable code;
//     a dead field means the schema and the state drifted;
//  3. validation — a Restore without an error result may only consume
//     scalar snapshots (slices/maps/pointers can be malformed, and DESIGN.md
//     requires untrusted payloads to be rejected, not trusted), and a loop
//     that copies a snapshot slice into receiver state by index must be
//     guarded by a len() comparison against that slice.
//
// Mutation through method calls does not count as a field write: a field
// holding a component with its own Snapshot/Restore pair is that pair's
// responsibility (the checks compose the way the snapshots do).
var StateCheck = &Analyzer{
	Name: "statecheck",
	Doc: "prove Snapshot/Restore coverage: every mutable field of a snapshottable type is " +
		"restored or annotated //lint:derived, every snapshot-struct field is populated and " +
		"consumed, and Restore validates non-scalar payloads",
	Run: runStateCheck,
}

// srPair is one Snapshot/Restore pair under analysis.
type srPair struct {
	typ  *types.Named
	snap *funcNode
	rest *funcNode
}

func runStateCheck(pass *Pass) {
	g := pass.graph
	if g == nil {
		return
	}
	for _, pair := range findPairs(pass, g) {
		checkPair(pass, g, pair)
	}
}

// findPairs returns every named struct type of the package with both a
// Snapshot and a Restore method whose bodies are in this package.
func findPairs(pass *Pass, g *callGraph) []*srPair {
	var pairs []*srPair
	scope := pass.Pkg.Scope()
	for _, nm := range scope.Names() {
		tn, ok := scope.Lookup(nm).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			continue
		}
		var snap, rest *funcNode
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			switch m.Name() {
			case "Snapshot":
				snap = g.nodeOf(m)
			case "Restore":
				rest = g.nodeOf(m)
			}
		}
		if snap != nil && rest != nil {
			pairs = append(pairs, &srPair{typ: named, snap: snap, rest: rest})
		}
	}
	return pairs
}

func checkPair(pass *Pass, g *callGraph, pair *srPair) {
	strct := pair.typ.Underlying().(*types.Struct)
	fieldPos := structFieldPositions(pass, pair.typ)

	// Mutable fields: written in code reachable from any declared function
	// that is neither a constructor of T nor the pair itself. Constructor
	// writes initialize, they do not mutate; the pair's own writes are the
	// mechanism under test, not evidence of mutability. The traversal must
	// also refuse to step INTO excluded nodes — core.Run calls NewRunner,
	// and following that edge would drag every initializer write back in.
	excluded := map[*funcNode]bool{pair.snap: true, pair.rest: true}
	for _, n := range g.nodes {
		if n.fn != nil && isConstructorOf(n, pair.typ) {
			excluded[n] = true
		}
	}
	var roots []*funcNode
	for _, n := range g.nodes {
		if n.fn == nil || excluded[n] {
			continue
		}
		roots = append(roots, n)
	}
	mutable := map[string]token.Pos{}
	for n := range reachableExcluding(g, roots, excluded) {
		collectFieldWrites(pass, n, pair.typ, mutable)
	}

	restored := map[string]token.Pos{}
	for n := range g.reachableFrom(pair.rest) {
		collectFieldWrites(pass, n, pair.typ, restored)
	}

	restName := "(*" + pair.typ.Obj().Name() + ").Restore"
	for i := 0; i < strct.NumFields(); i++ {
		f := strct.Field(i)
		if _, isMutable := mutable[f.Name()]; !isMutable {
			continue
		}
		if _, ok := restored[f.Name()]; ok {
			continue
		}
		pos, ok := fieldPos[f.Name()]
		if !ok {
			pos = mutable[f.Name()]
		}
		pass.Reportf(pos, "mutable field %s.%s is not restored by %s; serialize it in the snapshot state or annotate it //lint:derived <why Restore recomputes it>",
			pair.typ.Obj().Name(), f.Name(), restName)
	}

	snapStruct := snapshotStruct(pass, pair)
	if snapStruct != nil {
		checkSchema(pass, g, pair, snapStruct)
	}
	checkValidation(pass, pair, snapStruct)
}

// reachableExcluding is reachableFrom with a fence: the walk never enters an
// excluded node, so a constructor called from ordinary code (core.Run →
// NewRunner) does not contribute its initializer writes.
func reachableExcluding(g *callGraph, roots []*funcNode, excluded map[*funcNode]bool) map[*funcNode]bool {
	seen := map[*funcNode]bool{}
	var walk func(n *funcNode)
	walk = func(n *funcNode) {
		if n == nil || seen[n] || excluded[n] {
			return
		}
		seen[n] = true
		for _, o := range n.out {
			walk(o)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return seen
}

// isConstructorOf reports whether a declared function returns T or *T (a
// constructor or rebuilder, like NewRunner or LoadCheckpoint).
func isConstructorOf(n *funcNode, named *types.Named) bool {
	if n.sig == nil {
		return false
	}
	res := n.sig.Results()
	for i := 0; i < res.Len(); i++ {
		t := res.At(i).Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if t == named.Origin() || types.Identical(t, named) {
			return true
		}
	}
	return false
}

// collectFieldWrites records, into out, the fields of T written inside one
// function node: direct assignments, ++/--, and delete() whose target chain
// is rooted at a variable of type T/*T, plus writes through a local alias
// `p := &t.field…`. Method calls never count.
func collectFieldWrites(pass *Pass, n *funcNode, named *types.Named, out map[string]token.Pos) {
	// aliasField maps a local pointer variable to the T field it addresses.
	aliasField := map[*types.Var]string{}
	fieldOf := func(e ast.Expr) (string, bool) {
		return rootFieldOf(pass, e, named, aliasField)
	}
	record := func(e ast.Expr) {
		// A bare ident as the write target (re)binds the local itself —
		// including the `f := &t.field` statement that created an alias —
		// and never mutates T; only chains through the alias (f.X, *f) do.
		if _, bare := ast.Unparen(e).(*ast.Ident); bare {
			return
		}
		if f, ok := fieldOf(e); ok {
			if _, seen := out[f]; !seen {
				out[f] = e.Pos()
			}
		}
	}
	// Alias pass first (flow-insensitive; an alias taken after the write it
	// sanctions would be exotic enough to deserve the miss).
	walkOwnLevel(n.body, func(nd ast.Node) {
		a, ok := nd.(*ast.AssignStmt)
		if !ok || (a.Tok != token.ASSIGN && a.Tok != token.DEFINE) {
			return
		}
		pairs := assignTargets(a)
		for _, p := range pairs {
			un, ok := ast.Unparen(p[1]).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			v := lhsVar(pass, p[0])
			if v == nil {
				continue
			}
			if f, ok := fieldOf(un.X); ok {
				aliasField[v] = f
			}
		}
	})
	walkOwnLevel(n.body, func(nd ast.Node) {
		switch nd := nd.(type) {
		case *ast.AssignStmt:
			for _, lhs := range nd.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(nd.X)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(nd.Fun).(*ast.Ident); ok && id.Name == "delete" && len(nd.Args) == 2 {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					record(nd.Args[0])
				}
			}
		}
	})
}

// rootFieldOf unwraps an lvalue chain to the first field selected off a
// variable of type T/*T (or off an alias of such a field).
func rootFieldOf(pass *Pass, e ast.Expr, named *types.Named, aliasField map[*types.Var]string) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := pass.Info.ObjectOf(e).(*types.Var); ok {
			if f, ok := aliasField[v]; ok {
				return f, true
			}
		}
		return "", false
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if v, ok := pass.Info.ObjectOf(id).(*types.Var); ok && isTypeVar(v, named) {
				return e.Sel.Name, true
			}
		}
		return rootFieldOf(pass, e.X, named, aliasField)
	case *ast.IndexExpr:
		return rootFieldOf(pass, e.X, named, aliasField)
	case *ast.SliceExpr:
		return rootFieldOf(pass, e.X, named, aliasField)
	case *ast.StarExpr:
		return rootFieldOf(pass, e.X, named, aliasField)
	}
	return "", false
}

func isTypeVar(v *types.Var, named *types.Named) bool {
	t := v.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Origin() == named.Origin()
}

// snapshotStruct resolves the pair's snapshot schema S: Snapshot's first
// named-struct result, or (for byte-payload snapshots like the core
// Runner's JSON state) the first local struct variable declared inside
// Restore — the unmarshal target.
func snapshotStruct(pass *Pass, pair *srPair) *types.Named {
	if sig := pair.snap.sig; sig != nil {
		for i := 0; i < sig.Results().Len(); i++ {
			if named := localNamedStruct(pass, sig.Results().At(i).Type()); named != nil {
				return named
			}
		}
	}
	var found *types.Named
	walkOwnLevel(pair.rest.body, func(nd ast.Node) {
		vs, ok := nd.(*ast.ValueSpec)
		if !ok || found != nil || len(vs.Names) == 0 {
			return
		}
		if v, ok := pass.Info.Defs[vs.Names[0]].(*types.Var); ok {
			if named := localNamedStruct(pass, v.Type()); named != nil {
				found = named
			}
		}
	})
	return found
}

// localNamedStruct returns t as a named struct declared in this package.
func localNamedStruct(pass *Pass, t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() != pass.Pkg {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// checkSchema proves every field of the snapshot struct is populated on the
// Snapshot side and consumed on the Restore side.
func checkSchema(pass *Pass, g *callGraph, pair *srPair, snapStruct *types.Named) {
	strct := snapStruct.Underlying().(*types.Struct)
	fieldPos := structFieldPositions(pass, snapStruct)

	populated := map[string]bool{}
	for n := range g.reachableFrom(pair.snap) {
		collectSchemaUses(pass, n, snapStruct, populated)
	}
	consumed := map[string]bool{}
	for n := range g.reachableFrom(pair.rest) {
		collectSchemaUses(pass, n, snapStruct, consumed)
	}

	tName := pair.typ.Obj().Name()
	for i := 0; i < strct.NumFields(); i++ {
		f := strct.Field(i)
		pos, ok := fieldPos[f.Name()]
		if !ok {
			pos = snapStruct.Obj().Pos()
		}
		if !populated[f.Name()] {
			pass.Reportf(pos, "snapshot field %s.%s is never populated by (*%s).Snapshot — the schema drifted from the state",
				snapStruct.Obj().Name(), f.Name(), tName)
		}
		if !consumed[f.Name()] {
			pass.Reportf(pos, "snapshot field %s.%s is never consumed by (*%s).Restore — dead snapshot state",
				snapStruct.Obj().Name(), f.Name(), tName)
		}
	}
}

// collectSchemaUses marks the fields of S touched inside one node: any
// selection of the field on an S-typed operand, a keyed composite-literal
// entry, or an unkeyed S literal (which touches every field).
func collectSchemaUses(pass *Pass, n *funcNode, snapStruct *types.Named, out map[string]bool) {
	strct := snapStruct.Underlying().(*types.Struct)
	walkOwnLevel(n.body, func(nd ast.Node) {
		switch nd := nd.(type) {
		case *ast.SelectorExpr:
			if tv, ok := pass.Info.Types[nd.X]; ok {
				if named := localNamedStruct(pass, tv.Type); named != nil && named.Origin() == snapStruct.Origin() {
					out[nd.Sel.Name] = true
				}
			}
		case *ast.CompositeLit:
			tv, ok := pass.Info.Types[nd]
			if !ok {
				return
			}
			named := localNamedStruct(pass, tv.Type)
			if named == nil || named.Origin() != snapStruct.Origin() {
				return
			}
			keyed := false
			for _, el := range nd.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					keyed = true
					if id, ok := kv.Key.(*ast.Ident); ok {
						out[id.Name] = true
					}
				}
			}
			if !keyed && len(nd.Elts) > 0 {
				for i := 0; i < strct.NumFields(); i++ {
					out[strct.Field(i).Name()] = true
				}
			}
		}
	})
}

// checkValidation enforces the untrusted-payload rules on Restore.
func checkValidation(pass *Pass, pair *srPair, snapStruct *types.Named) {
	restName := "(*" + pair.typ.Obj().Name() + ").Restore"
	hasErr := false
	if sig := pair.rest.sig; sig != nil {
		for i := 0; i < sig.Results().Len(); i++ {
			if named, ok := sig.Results().At(i).Type().(*types.Named); ok && named.Obj().Name() == "error" {
				hasErr = true
			}
		}
	}
	if !hasErr && snapStruct != nil {
		strct := snapStruct.Underlying().(*types.Struct)
		for i := 0; i < strct.NumFields(); i++ {
			switch strct.Field(i).Type().Underlying().(type) {
			case *types.Slice, *types.Map, *types.Pointer:
				pass.Reportf(pair.rest.body.Pos(), "%s consumes snapshot field %s.%s (%s) but returns no error; non-scalar payloads from untrusted files must be validated and rejected",
					restName, snapStruct.Obj().Name(), strct.Field(i).Name(), strct.Field(i).Type().Underlying().String())
				return // one finding per pair is enough to force the signature change
			}
		}
	}
	if snapStruct == nil {
		return
	}
	// A loop copying a snapshot slice into receiver state by index relies
	// on the two shapes matching; require a len() comparison on the slice.
	walkOwnLevel(pair.rest.body, func(nd ast.Node) {
		rng, ok := nd.(*ast.RangeStmt)
		if !ok || rng.Key == nil {
			return
		}
		sel, ok := ast.Unparen(rng.X).(*ast.SelectorExpr)
		if !ok {
			return
		}
		tvX, ok := pass.Info.Types[sel.X]
		if !ok {
			return
		}
		named := localNamedStruct(pass, tvX.Type)
		if named == nil || named.Origin() != snapStruct.Origin() {
			return
		}
		if tv, ok := pass.Info.Types[rng.X]; !ok {
			return
		} else if _, isSlice := tv.Type.Underlying().(*types.Slice); !isSlice {
			return
		}
		key, _ := pass.Info.ObjectOf(keyIdent(rng)).(*types.Var)
		if key == nil || !rangeWritesReceiverByKey(pass, pair.typ, rng, key) {
			return
		}
		want := "len(" + pass.ExprString(rng.X) + ")"
		if !lenCompared(pass, pair.rest.body, want) {
			pass.Reportf(rng.Pos(), "%s copies %s into receiver state by index without comparing %s against the receiver's shape; validate the length first",
				restName, pass.ExprString(rng.X), want)
		}
	})
}

func keyIdent(rng *ast.RangeStmt) *ast.Ident {
	id, _ := rng.Key.(*ast.Ident)
	return id
}

// rangeWritesReceiverByKey reports whether the range body assigns through an
// index expression whose index reads the range key and whose chain roots at
// a variable of type T.
func rangeWritesReceiverByKey(pass *Pass, named *types.Named, rng *ast.RangeStmt, key *types.Var) bool {
	found := false
	ast.Inspect(rng.Body, func(nd ast.Node) bool {
		a, ok := nd.(*ast.AssignStmt)
		if !ok || found {
			return !found
		}
		for _, lhs := range a.Lhs {
			idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
			if !ok {
				continue
			}
			if !exprReadsVar(pass, idx.Index, key) {
				continue
			}
			if _, ok := rootFieldOf(pass, idx.X, named, nil); ok {
				found = true
			}
		}
		return true
	})
	return found
}

// lenCompared reports whether the body contains a comparison with len(X)
// (matched textually) on either side.
func lenCompared(pass *Pass, body *ast.BlockStmt, want string) bool {
	found := false
	walkOwnLevel(body, func(nd ast.Node) {
		be, ok := nd.(*ast.BinaryExpr)
		if !ok || found {
			return
		}
		switch be.Op {
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		default:
			return
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			call, ok := ast.Unparen(side).(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "len" {
				continue
			}
			if pass.ExprString(side) == want {
				found = true
			}
		}
	})
	return found
}

// structFieldPositions maps field names of a named struct to their
// declaration positions (so //lint:derived on the line above suppresses).
func structFieldPositions(pass *Pass, named *types.Named) map[string]token.Pos {
	out := map[string]token.Pos{}
	obj := named.Obj()
	for _, f := range pass.Files {
		ast.Inspect(f, func(nd ast.Node) bool {
			ts, ok := nd.(*ast.TypeSpec)
			if !ok {
				return true
			}
			if pass.Info.Defs[ts.Name] != obj {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return false
			}
			for _, fld := range st.Fields.List {
				for _, nm := range fld.Names {
					out[nm.Name] = nm.Pos()
				}
			}
			return false
		})
	}
	return out
}
