package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis.
type Package struct {
	Path  string // import path, e.g. "mach/internal/sim"
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects soft type-checking problems. A tree that passes
	// `go build` produces none; they are surfaced so machlint can warn
	// rather than silently analyze a half-typed package.
	TypeErrors []error
}

// LoadModule parses and type-checks every non-test package under the module
// rooted at dir, using only the standard library: module-internal imports
// resolve against the packages being loaded (in dependency order) and all
// other imports resolve through the stdlib source importer. Test files are
// excluded by design — the lint invariants target production code, and the
// checks themselves carve out different rules for tests.
func LoadModule(root string) (*token.FileSet, []*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, nil, err
	}

	fset := token.NewFileSet()
	byPath := map[string]*Package{}
	var order []string

	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		files, perr := parseDir(fset, path)
		if perr != nil {
			return perr
		}
		if len(files) == 0 {
			return nil
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			return rerr
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		byPath[importPath] = &Package{Path: importPath, Dir: path, Files: files}
		order = append(order, importPath)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(order)

	sorted, err := topoSort(byPath, order, modPath)
	if err != nil {
		return nil, nil, err
	}

	imp := &moduleImporter{
		modPath: modPath,
		local:   byPath,
		std:     importer.ForCompiler(fset, "source", nil),
	}
	var pkgs []*Package
	for _, path := range sorted {
		pkg := byPath[path]
		if err := typeCheck(fset, pkg, imp); err != nil {
			return nil, nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return fset, pkgs, nil
}

// parseDir parses the non-test Go files of one directory, returning nil if
// the directory contains none.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

// internalImports lists the module-internal packages a package imports.
func internalImports(pkg *Package, modPath string) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if (p == modPath || strings.HasPrefix(p, modPath+"/")) && !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Strings(out)
	return out
}

// topoSort orders packages so every package appears after its
// module-internal dependencies.
func topoSort(byPath map[string]*Package, order []string, modPath string) ([]string, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var sorted []string
	var visit func(path string, chain []string) error
	visit = func(path string, chain []string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle: %s -> %s", strings.Join(chain, " -> "), path)
		}
		state[path] = visiting
		pkg, ok := byPath[path]
		if !ok {
			return fmt.Errorf("lint: import of %s not found in module", path)
		}
		for _, dep := range internalImports(pkg, modPath) {
			if err := visit(dep, append(chain, path)); err != nil {
				return err
			}
		}
		state[path] = done
		sorted = append(sorted, path)
		return nil
	}
	for _, path := range order {
		if err := visit(path, nil); err != nil {
			return nil, err
		}
	}
	return sorted, nil
}

// moduleImporter resolves module-internal imports from the already-checked
// package set and everything else (the standard library) from source.
type moduleImporter struct {
	modPath string
	local   map[string]*Package
	std     types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == m.modPath || strings.HasPrefix(path, m.modPath+"/") {
		pkg, ok := m.local[path]
		if !ok || pkg.Types == nil {
			return nil, fmt.Errorf("lint: internal package %s not yet checked", path)
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}

// newInfo returns a types.Info with every map the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// typeCheck runs go/types over one package, collecting soft errors.
func typeCheck(fset *token.FileSet, pkg *Package, imp types.Importer) error {
	info := newInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	//lint:ignore pathcheck a non-nil err beside a usable package only repeats the soft errors already collected through conf.Error
	tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, info)
	if tpkg == nil {
		return err
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// CheckFile type-checks a single standalone file as its own package with
// the given import path — the golden-test entry point. Imports resolve
// through the stdlib source importer only.
func CheckFile(fset *token.FileSet, f *ast.File, path string) (*Package, error) {
	pkg := &Package{Path: path, Files: []*ast.File{f}}
	imp := importer.ForCompiler(fset, "source", nil)
	if err := typeCheck(fset, pkg, imp); err != nil {
		return nil, err
	}
	return pkg, nil
}
