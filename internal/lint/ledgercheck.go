package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LedgerCheck enforces the accounting invariant behind the Fig 11 energy
// split: every produced quantity of energy lands in exactly one ledger.
// A producer is a call whose single result carries an energy dimension
// (power.Watts.Over, energy.SRAMConfig.Overhead, the ledger Total()
// accessors — anything returning energy.Joules or energy.Picojoules).
// Three failure shapes are flagged, all flow-sensitively over the CFG:
//
//   - the producer's result is discarded as a bare expression statement
//     (the energy was computed and dropped on the floor);
//   - the result is bound to a variable that no path ever reads before
//     redefinition or function exit (a dead store — same drop, one hop
//     later);
//   - the same produced value flows into two or more accumulators
//     (+= into an energy-dimensioned location, or an Add call on one of
//     the stats accumulator types), double-counting the energy.
//
// `_ = producer()` is the explicit, greppable discard and always passes.
// dram.Memory.Access is deliberately not a producer even though it both
// moves energy and returns a completion time: posted writes legitimately
// ignore the completion time, and the memory model accrues its own energy
// internally.
//
// Checkpoint save/restore paths (the Snapshot/Restore methods behind
// internal/checkpoint) copy already-accounted energy between a ledger and
// its serialized state struct as plain field reads and assignments. No
// producer call fires, so no joule is created and nothing needs an ignore:
// the analyzer is silent on those paths by construction. The invariant
// still holds across a restore — what a restore must never do is rerun a
// producer for energy it is reloading, which would land the same joule in
// a second ledger and is flagged like any other double count (see
// testdata/ledgercheck/restore.go).
var LedgerCheck = &Analyzer{
	Name: "ledgercheck",
	Doc: "flag energy-producing call results that are dropped, dead-stored, or " +
		"accumulated into more than one ledger (every joule lands in exactly one ledger)",
	Run: runLedgerCheck,
}

// accumulatorTypes names the receiver types whose Add method is a ledger
// sink. Keyed by type name so golden corpora can declare local copies,
// like the unitflow dimension table.
var accumulatorTypes = map[string]bool{
	"Breakdown": true,
	"Sample":    true,
	"Running":   true,
	"Histogram": true,
}

// isEnergyDim reports whether a dimension string is an energy.
func isEnergyDim(d string) bool { return strings.HasPrefix(d, "energy") }

// isProducerCall reports whether e is a genuine call (not a conversion)
// whose single result carries an energy dimension — by its declared unit
// type, or (interprocedurally, machlint v3) by the callee summaries when
// the helper returns its joules through a plain float64. Every resolved
// dispatch target must agree; a lone disagreeing implementation makes the
// call's dimension unknown, not energy.
func isProducerCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return false // conversion: a rescale boundary, not a producer
	}
	if tv, ok := pass.Info.Types[call]; ok && isEnergyDim(typeDim(tv.Type)) {
		return true
	}
	if pass.graph == nil {
		return false
	}
	targets := pass.graph.calleesOf(call)
	if len(targets) == 0 {
		return false
	}
	for _, t := range targets {
		if t.sum == nil || len(t.sum.resultDims) != 1 || !isEnergyDim(t.sum.resultDims[0]) {
			return false
		}
	}
	return true
}

// containsProducer reports whether any subexpression of e is a producer
// call, without descending into func literals.
func containsProducer(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ex, ok := n.(ast.Expr); ok && isProducerCall(pass, ex) {
			found = true
		}
		return !found
	})
	return found
}

func runLedgerCheck(pass *Pass) {
	funcBodies(pass, func(decl *ast.FuncDecl) {
		checkLedgerFlows(pass, decl.Body)
	})
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkLedgerFlows(pass, lit.Body)
			}
			return true
		})
	}
}

func checkLedgerFlows(pass *Pass, body *ast.BlockStmt) {
	g := buildCFG(pass, body)
	captured := capturedVars(pass, body)
	for _, b := range g.blocks {
		for j, n := range b.nodes {
			// (a) produced and dropped on the floor.
			if es, ok := n.(*ast.ExprStmt); ok && isProducerCall(pass, es.X) {
				pass.Reportf(es.Pos(), "result of %s carries energy but is discarded; accumulate it into a ledger or assign it to _ explicitly",
					pass.ExprString(es.X))
				continue
			}
			a, ok := n.(*ast.AssignStmt)
			if !ok || (a.Tok != token.ASSIGN && a.Tok != token.DEFINE) {
				continue
			}
			pairs := assignTargets(a)
			for _, p := range pairs {
				if !containsProducer(pass, p[1]) {
					continue
				}
				v := lhsVar(pass, p[0])
				if v == nil || captured[v] {
					continue // blank/field/indexed targets end the trace
				}
				checkProducedVar(pass, g, b, j, a, v)
			}
		}
	}
}

// checkProducedVar classifies every forward-reachable read of v after its
// definition at node index j of block b: no reads is a dead store, two or
// more accumulator sinks is double counting.
func checkProducedVar(pass *Pass, g *funcCFG, b *block, j int, def *ast.AssignStmt, v *types.Var) {
	reads := reachableReads(pass, g, b, j+1, v)
	if len(reads) == 0 {
		pass.Reportf(def.Pos(), "energy assigned to %q is never accumulated or read on any path; every joule lands in exactly one ledger (assign to _ to discard)",
			v.Name())
		return
	}
	var sinks []string
	for _, n := range reads {
		sinks = append(sinks, sinkUses(pass, n, v)...)
	}
	if len(sinks) > 1 {
		sort.Strings(sinks)
		pass.Reportf(def.Pos(), "energy assigned to %q flows into %d accumulators (%s); every joule lands in exactly one ledger",
			v.Name(), len(sinks), strings.Join(sinks, ", "))
	}
}

// reachableReads collects every node that reads v on some path forward
// from node index start of block from, stopping each path at a
// redefinition of v.
func reachableReads(pass *Pass, g *funcCFG, from *block, start int, v *types.Var) []ast.Node {
	var reads []ast.Node
	entered := make([]bool, len(g.blocks))
	var visit func(b *block, idx int)
	visit = func(b *block, idx int) {
		for j := idx; j < len(b.nodes); j++ {
			n := b.nodes[j]
			if nodeReads(pass, n, v) {
				reads = append(reads, n)
			}
			if nodeWrites(pass, n, v) {
				return
			}
		}
		for _, s := range b.succs {
			if !entered[s.index] {
				entered[s.index] = true
				visit(s, 0)
			}
		}
	}
	visit(from, start)
	return reads
}

// sinkUses returns a description of every accumulator sink in node n that
// consumes v: a += / -= whose right side reads v, or an Add call on one of
// the stats accumulator types with v inside an argument.
func sinkUses(pass *Pass, n ast.Node, v *types.Var) []string {
	var sinks []string
	root := n
	if rng, ok := n.(*ast.RangeStmt); ok {
		root = rng.X
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if (n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN) && len(n.Rhs) == 1 && exprReadsVar(pass, n.Rhs[0], v) {
				sinks = append(sinks, pass.ExprString(n.Lhs[0]))
			}
		case *ast.CallExpr:
			if isAccumulatorAdd(pass, n) {
				for _, arg := range n.Args {
					if exprReadsVar(pass, arg, v) {
						sinks = append(sinks, pass.ExprString(n.Fun))
						break
					}
				}
				return true
			}
			// Interprocedural sink (machlint v3): the value feeds a callee
			// parameter that the callee's summary accumulates into an
			// energy ledger — energy produced here, deposited one call away.
			if pass.graph == nil {
				return true
			}
			for _, callee := range pass.graph.calleesOf(n) {
				if callee.sum == nil {
					continue
				}
				hit := false
				for k, acc := range callee.sum.accParam {
					if !acc {
						continue
					}
					for _, arg := range argsForParam(n, callee, k) {
						if exprReadsVar(pass, arg, v) {
							sinks = append(sinks, pass.ExprString(n.Fun))
							hit = true
							break
						}
					}
					if hit {
						break
					}
				}
				if hit {
					break
				}
			}
		}
		return true
	})
	return sinks
}

// isAccumulatorAdd reports whether call invokes Add on one of the stats
// accumulator types.
func isAccumulatorAdd(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Name() != "Add" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && accumulatorTypes[named.Obj().Name()]
}

// exprReadsVar reports whether expression e references v (outside func
// literals).
func exprReadsVar(pass *Pass, e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.Info.ObjectOf(id) == v {
			found = true
		}
		return !found
	})
	return found
}
