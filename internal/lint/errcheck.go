package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheck is a narrow errcheck: in the I/O layers (internal/trace,
// internal/record and the cmd/ tools) a call into io, os, bufio or
// encoding/* whose error result is dropped on the floor means a truncated
// trace file or a silently-corrupt report. Only expression statements are
// flagged — assigning any result (including to _) is an explicit,
// greppable acknowledgement, and `defer f.Close()` on read paths is the
// accepted idiom so defer/go statements are exempt.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc: "flag statement-level calls into io/os/bufio/encoding that discard " +
		"an error result, in internal/trace, internal/record and cmd/",
	Run: runErrCheck,
}

var errcheckScope = []string{
	"mach/internal/trace",
	"mach/internal/record",
	"mach/cmd",
}

// errcheckPackages are the callee packages whose dropped errors are
// flagged.
func errcheckPackage(path string) bool {
	switch path {
	case "io", "os", "bufio":
		return true
	}
	return strings.HasPrefix(path, "encoding/") || strings.HasPrefix(path, "compress/")
}

func runErrCheck(pass *Pass) {
	if !inScope(pass.Path, errcheckScope) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || !returnsError(fn) {
				return true
			}
			pkg, recv := calleeOrigin(fn)
			if !errcheckPackage(pkg) {
				return true
			}
			name := fn.Name()
			if recv != "" {
				name = recv + "." + name
			}
			pass.Reportf(call.Pos(), "error returned by %s is discarded; check it or assign it explicitly", name)
			return true
		})
	}
}

// returnsError reports whether fn's last result is an error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return last.String() == "error"
}

// calleeOrigin returns the package path that owns fn — for methods, the
// package of the receiver's named type — plus a receiver type name for
// diagnostics.
func calleeOrigin(fn *types.Func) (pkgPath, recvName string) {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path(), named.Obj().Name()
		}
		return "", ""
	}
	if fn.Pkg() == nil {
		return "", ""
	}
	return fn.Pkg().Path(), ""
}
