package lint

import (
	"go/parser"
	"go/token"
	"testing"
)

// FuzzLoaderParse drives arbitrary source through the loader's
// single-file pipeline — parse, type-check with soft-error collection,
// directive parsing and the full analyzer suite (CFG construction
// included). The invariant is robustness: malformed, half-typed or
// adversarial source may produce diagnostics or be rejected, but must
// never panic the framework. CI runs this as a bounded smoke
// (-fuzztime 30s); longer local runs just use `go test -fuzz`.
func FuzzLoaderParse(f *testing.F) {
	seeds := []string{
		"package p\n",
		"package p\n\nfunc f() {}\n",
		"package p\n\ntype Joules float64\n\nfunc f(a, b Joules) Joules { return a + b }\n",
		"package p\n\nfunc f(n int) int {\n\tx := 0\nloop:\n\tfor i := 0; i < n; i++ {\n\t\tswitch i {\n\t\tcase 0:\n\t\t\tfallthrough\n\t\tcase 1:\n\t\t\tcontinue loop\n\t\tdefault:\n\t\t\tbreak loop\n\t\t}\n\t}\n\tgoto done\ndone:\n\treturn x\n}\n",
		"package p\n\nfunc mayFail() error { return nil }\n\nfunc f(cond bool) error {\n\terr := mayFail()\n\tif cond {\n\t\terr = mayFail()\n\t}\n\treturn err\n}\n",
		"package p\n\n//lint:ignore all fixture reason\nvar x = 1\n",
		"package p\n\n//lint:ignore\nvar x = 1\n",
		"package p\n\nvar energyPJ = 1.0\nvar busyNs = 2.0\nvar bad = energyPJ + busyNs\n",
		"package p\n\nfunc f() { select {} }\n",
		"package p\n\nfunc f(ch chan int) {\n\tselect {\n\tcase v := <-ch:\n\t\t_ = v\n\tdefault:\n\t}\n}\n",
		"package p\n\nfunc f() {\n\tdefer func() { recover() }()\n\tpanic(1)\n}\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return // bound type-check cost; larger inputs add no new shapes
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return
		}
		pkg, err := CheckFile(fset, file, "example.com/fuzz")
		if err != nil {
			return
		}
		// Half-typed packages (pkg.TypeErrors non-empty) are analyzed on
		// purpose: the loader surfaces soft errors and keeps going, so the
		// analyzers must tolerate partially filled type info.
		RunAnalyzers(fset, []*Package{pkg}, All())
	})
}
