package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// passFor type-checks inline source and wraps it in a Pass the CFG and
// dataflow helpers can run against directly.
func passFor(t *testing.T, src string) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := CheckFile(fset, f, "example.com/p")
	if err != nil {
		t.Fatal(err)
	}
	for _, te := range pkg.TypeErrors {
		t.Fatalf("type error: %v", te)
	}
	return &Pass{Fset: fset, Path: pkg.Path, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info, check: "test", report: func(Diagnostic) {}}
}

// funcBody finds the named function's body in the pass's single file.
func funcBody(t *testing.T, pass *Pass, name string) *ast.BlockStmt {
	t.Helper()
	for _, d := range pass.Files[0].Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd.Body
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

// TestCFGControlShapes drives the graph builder through the statement
// forms the corpora do not reach — switch with fallthrough, type switch,
// select, goto in both directions, labeled break/continue — and asserts
// through pathcheck that every path still reads the error, i.e. the edges
// exist where the language says control can flow.
func TestCFGControlShapes(t *testing.T) {
	src := `package p

func mayFail() error { return nil }

func switchRead(mode int) error {
	err := mayFail()
	switch mode {
	case 0:
		return err
	case 1:
		fallthrough
	default:
		return err
	}
}

func selectRead(ch chan int) error {
	err := mayFail()
	select {
	case <-ch:
		return err
	default:
		return err
	}
}

func gotoForward() error {
	err := mayFail()
	goto done
done:
	return err
}

func gotoBackward(n int) error {
	err := mayFail()
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	return err
}

func labeledLoops(items [][]int) error {
	err := mayFail()
outer:
	for i := 0; i < len(items); i++ {
		for _, v := range items[i] {
			if v < 0 {
				continue outer
			}
			if v == 0 {
				break outer
			}
		}
	}
	return err
}

func deadCodeStillBuilt() error {
	err := mayFail()
	return err
	_ = err
}
`
	diags := checkSource(t, src, "example.com/p", []*Analyzer{PathCheck})
	if len(diags) != 0 {
		t.Fatalf("every function reads its error on all paths; got %v", diags)
	}
}

// TestCFGDropShapes is the complement: paths that genuinely miss the read
// must be found through the same statement forms.
func TestCFGDropShapes(t *testing.T) {
	src := `package p

func mayFail() error { return nil }

func switchNoDefault(mode int) int {
	err := mayFail()
	switch mode {
	case 0:
		_ = err
	}
	return 0
}

func typeSwitchDrop(v any) int {
	err := mayFail()
	switch x := v.(type) {
	case int:
		_ = x
		_ = err
	default:
		return 0
	}
	return 0
}
`
	diags := checkSource(t, src, "example.com/p", []*Analyzer{PathCheck})
	if len(diags) != 2 {
		t.Fatalf("want 2 pathcheck findings (missing-default fallthrough, type-switch default), got %v", diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "reaches function exit") {
			t.Errorf("unexpected message: %s", d.Message)
		}
	}
}

// TestTerminates checks the never-returns classification on every shape it
// special-cases, by position in the function body.
func TestTerminates(t *testing.T) {
	src := `package p

import (
	"fmt"
	"log"
	"os"
	"runtime"
)

type T struct{}

func (T) Fatal(args ...any) {}
func (T) Other()            {}

func f(t T) {
	panic("x")
	os.Exit(1)
	runtime.Goexit()
	log.Fatalln("x")
	fmt.Println("x")
	t.Fatal("x")
	t.Other()
}
`
	pass := passFor(t, src)
	body := funcBody(t, pass, "f")
	b := &cfgBuilder{pass: pass}
	want := []bool{true, true, true, true, false, true, false}
	i := 0
	for _, s := range body.List {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call := es.X.(*ast.CallExpr)
		if got := b.terminates(call); got != want[i] {
			t.Errorf("terminates(%s) = %v, want %v", pass.ExprString(call), got, want[i])
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("saw %d calls, want %d", i, len(want))
	}
}

// TestPreds checks predecessor lists against the successor lists they
// invert, on a diamond (if/else) graph.
func TestPreds(t *testing.T) {
	src := `package p

func f(cond bool) int {
	x := 0
	if cond {
		x = 1
	} else {
		x = 2
	}
	return x
}
`
	pass := passFor(t, src)
	g := buildCFG(pass, funcBody(t, pass, "f"))
	ps := g.preds()
	var succEdges, predEdges int
	for _, b := range g.blocks {
		succEdges += len(b.succs)
		predEdges += len(ps[b.index])
		for _, s := range b.succs {
			found := false
			for _, p := range ps[s.index] {
				if p == b {
					found = true
				}
			}
			if !found {
				t.Errorf("block %d -> %d edge missing from preds", b.index, s.index)
			}
		}
	}
	if succEdges != predEdges {
		t.Fatalf("edge count mismatch: %d succs vs %d preds", succEdges, predEdges)
	}
	if len(ps[g.entry.index]) != 0 {
		t.Errorf("entry block must have no predecessors")
	}
	if len(ps[g.exit.index]) == 0 {
		t.Errorf("exit block must be reachable")
	}
}

// TestUnitFlowDimSources covers the dimension-inference corners: unary
// operands, indexed suffixed slices, struct-field suffixes, callee-name
// suffixes, and var-declaration propagation.
func TestUnitFlowDimSources(t *testing.T) {
	src := `package p

type Joules float64
type Watts float64

type rec struct{ totalPJ float64 }

func computePJ() float64 { return 1 }

func unary(j Joules, w Watts) float64 {
	e := float64(j)
	return -e + float64(w)
}

func index(j Joules) float64 {
	var energiesPJ [4]float64
	return energiesPJ[0] + float64(j)
}

func field(r rec, j Joules) float64 {
	return r.totalPJ + float64(j)
}

func callSuffix(j Joules) float64 {
	return computePJ() + float64(j)
}

func declProp(j Joules, w Watts) float64 {
	var e = float64(j)
	p := float64(w)
	return e + p
}

func rangeKillsFact(j Joules, xs []float64) float64 {
	x := float64(j)
	for _, x = range xs {
		_ = x
	}
	return x + float64(j)
}

func (r rec) sumPJ() float64 { return r.totalPJ }

func methodSuffix(r rec, j Joules) float64 {
	return r.sumPJ() + float64(j)
}

func binaryMergeAgrees(j1, j2 Joules, w Watts) float64 {
	e1, e2 := float64(j1), float64(j2)
	return (e1 + e2) + float64(w)
}

func binaryMergeLeftUnknown(j Joules, w Watts) float64 {
	e := float64(j)
	return (1.0 + e) + float64(w)
}

func twoResults() (float64, float64) { return 1, 2 }

func multiValueUnknown(j Joules, w Watts) float64 {
	a := float64(j)
	var b float64
	a, b = twoResults()
	_ = b
	return a + float64(w)
}
`
	diags := checkSource(t, src, "example.com/p", []*Analyzer{UnitFlow})
	if len(diags) != 8 {
		t.Fatalf("want 8 unitflow findings (unary, index, field, call, decl, method, two merges; range-killed and multi-value silent), got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "mixes") {
			t.Errorf("unexpected message: %s", d.Message)
		}
	}
}

// TestStaleIgnoreLifecycle: a directive that earns its keep stays silent, a
// directive suppressing nothing is flagged — but only when staleignore
// itself is in the run.
func TestStaleIgnoreLifecycle(t *testing.T) {
	src := `package p

func eq(a, b float64) bool {
	//lint:ignore floateq fixture: exact sentinel comparison
	return a == b
}

//lint:ignore floateq fixture: the finding this excused is long gone
var x = 1
`
	diags := checkSource(t, src, "example.com/p", []*Analyzer{FloatEq, StaleIgnore})
	if len(diags) != 1 || diags[0].Check != "staleignore" {
		t.Fatalf("want exactly the stale directive flagged, got %v", diags)
	}
	if diags[0].Pos.Line != 8 {
		t.Errorf("stale finding at line %d, want 8", diags[0].Pos.Line)
	}

	// Without staleignore in the run there is no verdict on directives.
	diags = checkSource(t, src, "example.com/p", []*Analyzer{FloatEq})
	if len(diags) != 0 {
		t.Fatalf("staleignore not running must report nothing, got %v", diags)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "file.go", Line: 3, Column: 7},
		Check:   "unitflow",
		Message: "mixes things",
	}
	got := d.String()
	if got != "file.go:3:7: mixes things [unitflow]" {
		t.Fatalf("Diagnostic.String() = %q", got)
	}
}

func TestIsAssignOp(t *testing.T) {
	if !isAssignOp(token.ADD_ASSIGN) || !isAssignOp(token.AND_NOT_ASSIGN) {
		t.Error("compound assignments must be assign ops")
	}
	if isAssignOp(token.ASSIGN) || isAssignOp(token.DEFINE) {
		t.Error("plain = and := are not compound assign ops")
	}
}

func TestGoldenFilesMissing(t *testing.T) {
	if _, err := GoldenFiles(".", "no-such-analyzer"); err == nil {
		t.Fatal("want error for empty corpus directory")
	}
}

// TestRunGoldenFileErrors covers the harness's own failure modes: a want
// pattern that is not a valid regexp, and a file that does not type-check.
func TestRunGoldenFileErrors(t *testing.T) {
	dir := t.TempDir()

	badWant := filepath.Join(dir, "badwant.go")
	if err := os.WriteFile(badWant, []byte("package p\n\nvar x = 1 // want \"(\"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RunGoldenFile(FloatEq, badWant); err == nil {
		t.Error("want error for invalid want regexp")
	}

	badType := filepath.Join(dir, "badtype.go")
	if err := os.WriteFile(badType, []byte("package p\n\nvar x undefined\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RunGoldenFile(FloatEq, badType); err == nil {
		t.Error("want error for file with type errors")
	}

	if _, err := RunGoldenFile(FloatEq, filepath.Join(dir, "missing.go")); err == nil {
		t.Error("want error for missing file")
	}
}

// TestUnmetWantFails: the harness must flag a want with no matching
// diagnostic, not just unexpected diagnostics.
func TestUnmetWantFails(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "unmet.go")
	src := "package p\n\nvar x = 1 // want \"never reported\"\n"
	if err := os.WriteFile(f, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err := RunGoldenFile(FloatEq, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "got none") {
		t.Fatalf("want one unmet-expectation problem, got %v", problems)
	}
}
