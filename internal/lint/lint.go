// Package lint is a from-scratch static-analysis framework for this
// repository, built only on the standard library's go/parser, go/ast and
// go/types. It exists because the simulation's headline numbers (Fig 11
// energy splits, Table 3/4 savings, Region I-IV timing) are only meaningful
// if every run is bit-reproducible and energy/time units never silently mix
// — invariants that DESIGN.md promises but nothing else enforces
// mechanically.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis without
// depending on it: an Analyzer owns a Run function over a Pass, diagnostics
// carry exact token positions, and `//lint:ignore <check> <reason>`
// comments suppress individual findings. Golden-file tests under testdata/
// use `// want "regexp"` comments, exactly like analysistest.
package lint

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding: a position, the check that produced it, and a
// human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Check)
}

// Pass carries everything one analyzer needs to inspect one package.
type Pass struct {
	Fset *token.FileSet
	// Path is the package's import path; several analyzers scope
	// themselves to specific subtrees of the module.
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	check  string
	report func(Diagnostic)

	// graph and mod are the interprocedural layer (machlint v3): the
	// package's resolved call graph with per-function summaries, and the
	// module-wide index behind it. RunAnalyzers builds them once per run;
	// they are nil in unit tests that construct a Pass by hand, and every
	// analyzer degrades to its intraprocedural behavior in that case.
	graph *callGraph
	mod   *moduleIndex

	// directives is the run-wide directive list (every package). Allocheck
	// reads it to discover //lint:hotpath roots in other packages and marks
	// the resolved ones used, which is what keeps them out of staleignore.
	directives []*ignoreDirective
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// ExprString renders an expression compactly (for diagnostics and for
// structural equality checks).
func (p *Pass) ExprString(e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, p.Fset, e); err != nil {
		return fmt.Sprintf("%T", e)
	}
	return sb.String()
}

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the check in diagnostics and in
	// `//lint:ignore <name> <reason>` directives.
	Name string
	// Doc is a one-paragraph description shown by `machlint -list`.
	Doc string
	// Run inspects the package and reports diagnostics via pass.Reportf.
	Run func(*Pass)
}

// IgnorePrefix starts a suppression directive comment.
const IgnorePrefix = "//lint:ignore"

// DerivedPrefix starts a derived-state annotation: `//lint:derived <reason>`
// on (or above) a mutable struct field tells statecheck the field is
// deliberately not serialized because Restore recomputes it (wake plans,
// per-frame scratch, execution configuration). It is sugar for
// `//lint:ignore statecheck <reason>` with its own vocabulary, and the
// staleignore pass flags annotations whose field became covered or vanished.
const DerivedPrefix = "//lint:derived"

// HotpathPrefix starts a hot-path root annotation: `//lint:hotpath <reason>`
// on (or above) a function declaration marks it as a per-frame entry point
// whose whole call cone the allocheck analyzer sweeps for allocation sites.
// Like lint:derived, the reason is mandatory — it documents why the function
// is per-frame — and the staleignore pass flags annotations that no longer
// sit on a function declaration, so roots cannot silently detach when code
// moves.
const HotpathPrefix = "//lint:hotpath"

// ignoreDirective is one parsed `//lint:ignore <check> <reason>` or
// `//lint:derived <reason>` comment.
type ignoreDirective struct {
	pos    token.Position
	checks []string // "all" matches any check
	reason string
	// derived marks the //lint:derived spelling, which scopes itself to
	// statecheck and gets its own staleness wording.
	derived bool
	// hotpath marks the //lint:hotpath spelling: a root annotation consumed
	// by allocheck, never a suppression. Its checks list carries "allocheck"
	// only so staleness applicability follows subset runs correctly.
	hotpath bool
	// used records whether the directive suppressed at least one raw
	// diagnostic in this run (or, for hotpath roots, resolved to a function
	// declaration); StaleIgnore reports the ones that did not.
	used bool
}

func (d ignoreDirective) matches(check string) bool {
	for _, c := range d.checks {
		if c == check || c == "all" {
			return true
		}
	}
	return false
}

// parseDirectives extracts suppression directives from a file, reporting a
// framework diagnostic for malformed ones (a directive without a reason is
// itself a finding: the whole point is the written justification).
func parseDirectives(fset *token.FileSet, f *ast.File, report func(Diagnostic)) []*ignoreDirective {
	var ds []*ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, DerivedPrefix) {
				pos := fset.Position(c.Pos())
				reason := strings.TrimSpace(strings.TrimPrefix(c.Text, DerivedPrefix))
				if reason == "" {
					report(Diagnostic{
						Pos:     pos,
						Check:   "lintdirective",
						Message: "malformed lint:derived directive: want //lint:derived <why Restore recomputes this field>",
					})
					continue
				}
				ds = append(ds, &ignoreDirective{
					pos:     pos,
					checks:  []string{"statecheck"},
					reason:  reason,
					derived: true,
				})
				continue
			}
			if strings.HasPrefix(c.Text, HotpathPrefix) {
				pos := fset.Position(c.Pos())
				reason := strings.TrimSpace(strings.TrimPrefix(c.Text, HotpathPrefix))
				if reason == "" {
					report(Diagnostic{
						Pos:     pos,
						Check:   "lintdirective",
						Message: "malformed lint:hotpath directive: want //lint:hotpath <why this function runs per frame>",
					})
					continue
				}
				ds = append(ds, &ignoreDirective{
					pos:     pos,
					checks:  []string{"allocheck"},
					reason:  reason,
					hotpath: true,
				})
				continue
			}
			if !strings.HasPrefix(c.Text, IgnorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimPrefix(c.Text, IgnorePrefix)
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				report(Diagnostic{
					Pos:     pos,
					Check:   "lintdirective",
					Message: "malformed lint:ignore directive: want //lint:ignore <check> <reason>",
				})
				continue
			}
			ds = append(ds, &ignoreDirective{
				pos:    pos,
				checks: strings.Split(fields[0], ","),
				reason: strings.Join(fields[1:], " "),
			})
		}
	}
	return ds
}

// suppressed reports whether diagnostic d is covered by a directive on the
// same line or the line immediately above it, marking the directive used.
func suppressed(d Diagnostic, ds []*ignoreDirective) bool {
	hit := false
	for _, dir := range ds {
		// Hotpath directives are root annotations, not suppressions: an
		// allocheck finding adjacent to one stays reported.
		if dir.hotpath {
			continue
		}
		if dir.pos.Filename != d.Pos.Filename || !dir.matches(d.Check) {
			continue
		}
		if dir.pos.Line == d.Pos.Line || dir.pos.Line == d.Pos.Line-1 {
			dir.used = true
			hit = true
			// Keep scanning: every directive covering this diagnostic is
			// earning its keep, not just the first.
		}
	}
	return hit
}

// AnalyzerTiming is the wall time one analyzer spent across every package
// of a run (plus the "engine" pseudo-row for call-graph and summary
// construction), surfaced by `machlint -timing`.
type AnalyzerTiming struct {
	Name   string  `json:"name"`
	Millis float64 `json:"millis"`
}

// RunAnalyzers applies every analyzer to every package and returns the
// surviving (non-suppressed) diagnostics sorted by position.
func RunAnalyzers(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunAnalyzersTimed(fset, pkgs, analyzers)
	return diags
}

// RunAnalyzersTimed is RunAnalyzers plus per-analyzer wall time: the engine
// row first, then the analyzers in the order given.
func RunAnalyzersTimed(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []AnalyzerTiming) {
	var raw []Diagnostic
	collect := func(d Diagnostic) { raw = append(raw, d) }

	var directives []*ignoreDirective
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			directives = append(directives, parseDirectives(fset, f, collect)...)
		}
	}

	engineStart := time.Now()
	mod := buildModuleIndex(fset, pkgs)
	spent := map[string]time.Duration{"engine": time.Since(engineStart)}

	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Fset:       fset,
				Path:       pkg.Path,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				check:      a.Name,
				report:     collect,
				graph:      mod.graphs[pkg.Path],
				mod:        mod,
				directives: directives,
			}
			t0 := time.Now()
			a.Run(pass)
			spent[a.Name] += time.Since(t0)
		}
	}

	timings := []AnalyzerTiming{{Name: "engine", Millis: float64(spent["engine"]) / float64(time.Millisecond)}}
	for _, a := range analyzers {
		timings = append(timings, AnalyzerTiming{Name: a.Name, Millis: float64(spent[a.Name]) / float64(time.Millisecond)})
	}

	var out []Diagnostic
	for _, d := range raw {
		if !suppressed(d, directives) {
			out = append(out, d)
		}
	}
	out = append(out, staleDirectives(directives, analyzers)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out, timings
}

// StaleIgnore flags `//lint:ignore` directives that no longer suppress any
// finding, so triage notes cannot rot: a fixed finding leaves its ignore
// behind, and the next reader wastes time believing the violation is still
// there. The analyzer's Run is empty — the work happens inside
// RunAnalyzers, which is the only place that sees every directive and
// every raw (pre-suppression) diagnostic together. A directive naming
// specific checks is only reported when all of those checks actually ran
// (a subset `-checks` run says nothing about the others); a directive
// naming `all` is reported whenever it suppressed nothing. Stale findings
// bypass suppression — an `//lint:ignore all` comment must not be able to
// vouch for itself — so the only way to silence one is to delete or
// re-justify the directive.
var StaleIgnore = &Analyzer{
	Name: "staleignore",
	Doc: "flag lint:ignore directives that suppress no finding of the checks being run " +
		"(stale triage notes); delete or re-justify them",
	Run: func(*Pass) {},
}

// staleDirectives reports the unused directives, provided the staleignore
// analyzer is among those running.
func staleDirectives(directives []*ignoreDirective, analyzers []*Analyzer) []Diagnostic {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	if !ran[StaleIgnore.Name] {
		return nil
	}
	var out []Diagnostic
	for _, dir := range directives {
		if dir.used {
			continue
		}
		applicable := true
		for _, c := range dir.checks {
			if c != "all" && !ran[c] {
				applicable = false
				break
			}
		}
		if !applicable {
			continue
		}
		msg := fmt.Sprintf("lint:ignore %s directive suppresses no finding; the violation it excused is gone — delete the directive",
			strings.Join(dir.checks, ","))
		if dir.derived {
			msg = "lint:derived annotation marks no un-snapshotted field; the field it excused is now covered or gone — delete the annotation"
		}
		if dir.hotpath {
			msg = "lint:hotpath annotation marks no function declaration; move it onto the per-frame entry point's doc comment or delete it"
		}
		out = append(out, Diagnostic{
			Pos:     dir.pos,
			Check:   StaleIgnore.Name,
			Message: msg,
		})
	}
	return out
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		UnitSafety,
		UnitFlow,
		LedgerCheck,
		StateCheck,
		PurityCheck,
		PathCheck,
		FloatEq,
		SelfCompare,
		ErrCheck,
		Allocheck,
		StaleIgnore,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
