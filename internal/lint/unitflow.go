package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// UnitFlow is the flow-sensitive successor of UnitSafety. The model
// packages now declare named unit types (energy.Joules/Picojoules,
// power.Watts/Milliwatts, sim.Time/Nanoseconds/Cycles/Hertz, dram.Bytes,
// soc.MHz/BytesPerSecond); the compiler already rejects additive mixing of
// two distinct named types, so what remains — and what this analyzer
// tracks — is the dimension of the plain float64/int64 values those types
// are explicitly converted into for arithmetic. A local `x :=
// float64(cfg.IdlePower)` carries the power dimension through every
// assignment, and `x + float64(etr)` (etr in joules) is flagged even when
// the two sides were defined blocks apart. Dimensions propagate through:
//
//   - assignments and short declarations (per-function CFG fixpoint, with
//     intersection at joins: a fact survives only when every path agrees);
//   - explicit conversions to plain numeric types (float64(j) keeps j's
//     dimension — the conversion changes representation, not meaning);
//   - struct fields and function results, via their declared unit types;
//   - call boundaries, via the callee's result type, falling back to the
//     unit suffix of the callee's name;
//   - the UnitSafety suffix heuristic (energyPJ, busPs, …) for untyped
//     locals, kept as the fallback for values no type ever touched.
//
// Multiplication and division legitimately change dimension (power*time,
// cycles/frequency) and yield an unknown dimension; conversions to a unit
// type (energy.Joules(x)) assert the result's dimension regardless of the
// operand, making them the sanctioned rescale boundary.
var UnitFlow = &Analyzer{
	Name: "unitflow",
	Doc: "flow-sensitive unit checking: propagate dimensions from the named unit types " +
		"(Joules, Watts, Time, Cycles, Bytes, …) through conversions, locals, fields and calls, " +
		"and flag +, -, comparisons and += / -= whose operands carry different dimensions",
	Run: runUnitFlow,
}

// unitDimTable maps a named type to its dimension. The table is keyed by
// type name, not import path: the dimensions are meaningful for any
// package that declares them (golden corpora declare local copies), and
// two same-named types that could meet in one expression would already be
// a compile error. Only named types with a numeric underlying type
// qualify, which keeps struct types like time.Time out. Distinct scales of
// one dimension (J vs pJ, W vs mW, Hz vs MHz) are distinct dimensions:
// the silent 1000x slip is the bug class this exists for.
var unitDimTable = map[string]string{
	"Joules":         "energy (J)",
	"Picojoules":     "energy (pJ)",
	"Watts":          "power (W)",
	"Milliwatts":     "power (mW)",
	"Time":           "time (ps)",
	"Nanoseconds":    "time (ns)",
	"Cycles":         "cycle count",
	"Hertz":          "frequency (Hz)",
	"MHz":            "frequency (MHz)",
	"Bytes":          "byte count",
	"BytesPerSecond": "bandwidth (B/s)",
}

// suffixDims aligns the UnitSafety name-suffix heuristic with the typed
// table so a typed operand can conflict with a suffix-named one.
var suffixDims = map[string]string{
	"PJ":     "energy (pJ)",
	"NJ":     "energy (nJ)",
	"MW":     "power (mW)",
	"Ps":     "time (ps)",
	"Ns":     "time (ns)",
	"Cycles": "cycle count",
	"MHz":    "frequency (MHz)",
}

// typeDim returns the dimension a type carries, or "".
func typeDim(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	if b, ok := named.Underlying().(*types.Basic); !ok || b.Info()&types.IsNumeric == 0 {
		return ""
	}
	return unitDimTable[named.Obj().Name()]
}

// suffixDim returns the dimension a bare name suggests, or "".
func suffixDim(name string) string {
	if s, _, ok := unitOf(name); ok {
		return suffixDims[s]
	}
	return ""
}

type unitflowRun struct {
	pass *Pass
	// graph enables the interprocedural cases (machlint v3): result
	// dimensions of resolved callees, and parameter-dimension checks at
	// call sites. Nil in unit tests that exercise the intraprocedural core.
	graph *callGraph
}

func runUnitFlow(pass *Pass) {
	u := &unitflowRun{pass: pass, graph: pass.graph}

	// Package-level initializers have no flow; check with an empty env.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if gd, ok := d.(*ast.GenDecl); ok {
				u.checkNode(factEnv{}, gd)
			}
		}
	}
	funcBodies(pass, func(decl *ast.FuncDecl) {
		u.analyzeBody(decl.Body)
	})
	// Function literals get their own graphs; captured variables enter
	// with no facts, which can only lose precision, never invent a
	// conflict.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				u.analyzeBody(lit.Body)
			}
			return true
		})
	}
}

// analyzeBody runs the dimension fixpoint over one body and checks every
// additive expression under the resulting per-block environments.
func (u *unitflowRun) analyzeBody(body *ast.BlockStmt) {
	g := buildCFG(u.pass, body)
	in := forwardFixpoint(g, u.transfer)
	for _, b := range g.blocks {
		env := in[b.index]
		if env == nil {
			env = factEnv{}
		} else {
			env = env.clone()
		}
		for _, n := range b.nodes {
			u.checkNode(env, n)
			env = u.transfer(env, n)
		}
	}
}

// transfer folds one CFG node into the dimension environment.
func (u *unitflowRun) transfer(env factEnv, n ast.Node) factEnv {
	switch n := n.(type) {
	case *ast.AssignStmt:
		switch {
		case n.Tok == token.ASSIGN || n.Tok == token.DEFINE:
			if pairs := assignTargets(n); pairs != nil {
				for _, p := range pairs {
					if v := lhsVar(u.pass, p[0]); v != nil {
						if d := u.dimOf(env, p[1]); d != "" {
							env[v] = d
						} else {
							delete(env, v)
						}
					}
				}
			} else {
				// Multi-value assignment: results carry only their
				// declared types (handled by dimOf's static case).
				for _, lhs := range n.Lhs {
					if v := lhsVar(u.pass, lhs); v != nil {
						delete(env, v)
					}
				}
			}
		case n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN:
			// Additive update keeps the dimension.
		default:
			// *=, /=, …: the dimension changes; drop the fact.
			if len(n.Lhs) == 1 {
				if v := lhsVar(u.pass, n.Lhs[0]); v != nil {
					delete(env, v)
				}
			}
		}
	case *ast.RangeStmt:
		if n.Key != nil {
			if v := lhsVar(u.pass, n.Key); v != nil {
				delete(env, v)
			}
		}
		if n.Value != nil {
			if v := lhsVar(u.pass, n.Value); v != nil {
				delete(env, v)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					v, _ := u.pass.Info.ObjectOf(name).(*types.Var)
					if v == nil {
						continue
					}
					if i < len(vs.Values) {
						if d := u.dimOf(env, vs.Values[i]); d != "" {
							env[v] = d
							continue
						}
					}
					delete(env, v)
				}
			}
		}
	}
	return env
}

// dimOf resolves the dimension of an expression under env, or "".
func (u *unitflowRun) dimOf(env factEnv, e ast.Expr) string {
	// The static type is authoritative when it is a unit type.
	if tv, ok := u.pass.Info.Types[e]; ok {
		if d := typeDim(tv.Type); d != "" {
			return d
		}
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := u.pass.Info.ObjectOf(e).(*types.Var); ok {
			if d, ok := env[v]; ok {
				return d
			}
		}
		return suffixDim(e.Name)
	case *ast.SelectorExpr:
		return suffixDim(e.Sel.Name)
	case *ast.IndexExpr:
		return u.dimOf(env, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB || e.Op == token.XOR {
			return u.dimOf(env, e.X)
		}
	case *ast.CallExpr:
		if tv, ok := u.pass.Info.Types[e.Fun]; ok && tv.IsType() {
			// Conversion. To a unit type: handled by the static case
			// above. To a plain numeric type: representation change,
			// dimension flows through.
			if len(e.Args) == 1 {
				return u.dimOf(env, e.Args[0])
			}
			return ""
		}
		// A real call: a resolved module callee's summary is authoritative
		// for the dimension of a single plain-typed result — a Joules total
		// returned through float64 keeps its dimension across the call. All
		// dispatch targets must agree; a conflict means unknown.
		if d, ok := u.calleeResultDim(e); ok {
			return d
		}
		// Fall back to the unit suffix of the callee name
		// (func totalPJ() float64 { … }).
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			return suffixDim(fun.Name)
		case *ast.SelectorExpr:
			return suffixDim(fun.Sel.Name)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB:
			dx, dy := u.dimOf(env, e.X), u.dimOf(env, e.Y)
			switch {
			case dx == "":
				return dy
			case dy == "", dx == dy:
				return dx
			}
			return "" // conflicting: reported by checkNode, result unknown
		}
		// *, /, %, shifts, bit ops: dimension changes or is meaningless.
		return ""
	}
	return ""
}

// calleeResultDim resolves the dimension of a call's single result from the
// summaries of its resolved module callees. ok is false when the call is
// unresolved, multi-result, or the dispatch targets disagree.
func (u *unitflowRun) calleeResultDim(call *ast.CallExpr) (string, bool) {
	if u.graph == nil {
		return "", false
	}
	targets := u.graph.calleesOf(call)
	if len(targets) == 0 {
		return "", false
	}
	dim := ""
	for _, t := range targets {
		if t.sum == nil || len(t.sum.resultDims) != 1 {
			return "", false
		}
		d := t.sum.resultDims[0]
		switch {
		case d == "":
			return "", false
		case dim == "":
			dim = d
		case dim != d:
			return "", false
		}
	}
	return dim, true
}

// checkCallArgs compares each argument's dimension against the parameter
// dimension the callee's summary inferred from its body (a plain float64
// parameter added to Joules inside the callee expects joules at every call
// site). All dispatch targets must agree on the expectation.
func (u *unitflowRun) checkCallArgs(env factEnv, call *ast.CallExpr) {
	if u.graph == nil {
		return
	}
	targets := u.graph.calleesOf(call)
	if len(targets) == 0 {
		return
	}
	first := targets[0]
	if first.sum == nil {
		return
	}
	for k := range first.params {
		want := ""
		if k < len(first.sum.paramDims) {
			want = first.sum.paramDims[k]
		}
		if want == "" {
			continue
		}
		agreed := true
		for _, t := range targets[1:] {
			if t.sum == nil || k >= len(t.sum.paramDims) || t.sum.paramDims[k] != want {
				agreed = false
				break
			}
		}
		if !agreed {
			continue
		}
		for _, arg := range argsForParam(call, first, k) {
			got := u.dimOf(env, arg)
			if got == "" || got == want {
				continue
			}
			u.pass.Reportf(arg.Pos(), "argument %s carries %s but %s uses this parameter as %s; convert through the unit types explicitly",
				u.pass.ExprString(arg), got, first.name, want)
		}
	}
}

// checkNode inspects one CFG node's expressions under env, skipping func
// literal bodies (they have their own graphs) and the body of a range
// header node (its statements live in successor blocks).
func (u *unitflowRun) checkNode(env factEnv, n ast.Node) {
	root := n
	if rng, ok := n.(*ast.RangeStmt); ok {
		root = rng.X
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BinaryExpr:
			if additiveOps[n.Op] {
				u.checkPair(env, n.OpPos, n.Op.String(), n.X, n.Y)
			}
		case *ast.AssignStmt:
			if (n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN) && len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				u.checkPair(env, n.TokPos, n.Tok.String(), n.Lhs[0], n.Rhs[0])
			}
		case *ast.CallExpr:
			u.checkCallArgs(env, n)
		}
		return true
	})
}

func (u *unitflowRun) checkPair(env factEnv, pos token.Pos, op string, x, y ast.Expr) {
	dx, dy := u.dimOf(env, x), u.dimOf(env, y)
	if dx == "" || dy == "" || dx == dy {
		return
	}
	u.pass.Reportf(pos, "%q mixes %s (%s) with %s (%s); convert through the unit types explicitly",
		op, u.pass.ExprString(x), dx, u.pass.ExprString(y), dy)
}
