package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildTestIndex type-checks one source string as a standalone package and
// builds the module index over it, exactly as RunAnalyzers does.
func buildTestIndex(t *testing.T, src, path string) (*Package, *moduleIndex) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := CheckFile(fset, f, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("type errors: %v", pkg.TypeErrors)
	}
	return pkg, buildModuleIndex(fset, []*Package{pkg})
}

// declaredNode finds the unique declared function or method whose name
// contains frag.
func declaredNode(t *testing.T, g *callGraph, frag string) *funcNode {
	t.Helper()
	var found *funcNode
	for _, n := range g.nodes {
		if n.fn != nil && strings.Contains(n.name, frag) {
			if found != nil {
				t.Fatalf("ambiguous node fragment %q (%s, %s)", frag, found.name, n.name)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no declared node matching %q", frag)
	}
	return found
}

func TestCallGraphMethodValue(t *testing.T) {
	src := `package p

type T struct{ n int }

func (t *T) bump() { t.n++ }

func run(t *T) {
	f := t.bump
	f()
}
`
	pkg, mod := buildTestIndex(t, src, "example.com/p")
	g := mod.graphs[pkg.Path]
	run := declaredNode(t, g, "run")
	bump := declaredNode(t, g, "bump")
	if !g.reachableFrom(run)[bump] {
		t.Fatalf("bump not reachable from run through the method-value binding")
	}
}

func TestCallGraphClosure(t *testing.T) {
	src := `package p

func run() int {
	g := func() int { return 1 }
	return g()
}
`
	pkg, mod := buildTestIndex(t, src, "example.com/p")
	g := mod.graphs[pkg.Path]
	var resolved bool
	for _, f := range pkg.Files {
		ast.Inspect(f, func(nd ast.Node) bool {
			call, ok := nd.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "g" {
				for _, tgt := range g.calleesOf(call) {
					if tgt.lit != nil {
						resolved = true
					}
				}
			}
			return true
		})
	}
	if !resolved {
		t.Fatalf("call through closure variable g did not resolve to the literal")
	}
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	src := `package p

type iface interface{ m() }

type a struct{}

func (a) m() {}

type b struct{}

func (b) m() {}

func call(i iface) { i.m() }
`
	pkg, mod := buildTestIndex(t, src, "example.com/p")
	g := mod.graphs[pkg.Path]
	call := declaredNode(t, g, "call")
	ma := declaredNode(t, g, "a).m")
	mb := declaredNode(t, g, "b).m")
	reach := g.reachableFrom(call)
	if !reach[ma] || !reach[mb] {
		t.Fatalf("interface dispatch should reach both implementations; got a=%v b=%v", reach[ma], reach[mb])
	}
}

func TestCallGraphSCCOrder(t *testing.T) {
	src := `package p

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func caller(n int) bool { return odd(n) }
`
	pkg, mod := buildTestIndex(t, src, "example.com/p")
	g := mod.graphs[pkg.Path]
	odd := declaredNode(t, g, "odd")
	even := declaredNode(t, g, "even")
	caller := declaredNode(t, g, "caller")

	sccOf := func(n *funcNode) int {
		for i, scc := range g.sccs {
			for _, m := range scc {
				if m == n {
					return i
				}
			}
		}
		t.Fatalf("%s not in any SCC", n.name)
		return -1
	}
	if sccOf(odd) != sccOf(even) {
		t.Fatalf("mutual recursion should land odd and even in one SCC")
	}
	if sccOf(odd) >= sccOf(caller) {
		t.Fatalf("SCC order must be callee-first: odd at %d, caller at %d", sccOf(odd), sccOf(caller))
	}
	// The recursive SCC still gets summaries (fixpoint terminated).
	if odd.sum == nil || even.sum == nil {
		t.Fatalf("recursive SCC missing summaries")
	}
	if !odd.sum.pure() {
		t.Fatalf("odd is pure; summary says otherwise")
	}
}

func TestSummaryEffects(t *testing.T) {
	src := `package p

var global int

type T struct {
	n int
	m map[int]int
}

func (t *T) bump() { t.n++ }

func (t *T) rangeMap() int {
	s := 0
	for _, v := range t.m {
		s += v
	}
	return s
}

func writesGlobal() { global++ }

func callsBump(t *T) { t.bump() }

func pureCopy(cfg T) int {
	cfg.n++
	return cfg.n
}
`
	pkg, mod := buildTestIndex(t, src, "example.com/p")
	g := mod.graphs[pkg.Path]
	if s := declaredNode(t, g, "bump").sum; s == nil || s.writesRecv == nil {
		t.Fatalf("bump should carry a receiver write effect")
	}
	if s := declaredNode(t, g, "rangeMap").sum; s == nil || s.rangesRecv == nil {
		t.Fatalf("rangeMap should carry a receiver map-range effect")
	}
	if s := declaredNode(t, g, "writesGlobal").sum; s == nil || s.writesGlobal == nil || s.pure() {
		t.Fatalf("writesGlobal should carry a global write effect and be impure")
	}
	// The callee's receiver effect translates through the call: callsBump
	// writes its parameter's referent.
	if s := declaredNode(t, g, "callsBump").sum; s == nil || s.writesParam[0] == nil {
		t.Fatalf("callsBump should fold bump's receiver write into a parameter write")
	}
	// Mutating a by-value struct copy is invisible to the caller.
	if s := declaredNode(t, g, "pureCopy").sum; s == nil || !s.pure() || s.writesParam[0] != nil {
		t.Fatalf("pureCopy mutates only its local copy; summary disagrees: %+v", s)
	}
}
