package lint

import (
	"go/ast"
	"go/types"
)

// PurityCheck statically guards the parallel-equals-sequential guarantee
// that PR 3's golden tests only probe dynamically: the deterministic
// parallel engine (internal/par) promises that a run sharded over N workers
// is bit-identical to the sequential run, which holds only if every worker
// body is pure — no writes to state shared between workers, no map
// iteration over shared maps (order feeds the scheduler), no wall clock or
// process-global randomness. The determinism analyzer checks goroutine
// literals syntactically; this analyzer checks the functions that actually
// run inside par.Pool workers, transitively, using the call-graph summaries:
//
//   - at every call of (Pool).Map / (Pool).ForShards, the worker argument is
//     resolved (literal, package function, method value, or once-bound
//     closure) and its summary must be pure;
//   - the obligation follows function-typed parameters through forwarding
//     layers (summary.poolParam): experiments.runIsolated(n, fn) hands fn to
//     pool.Map, so every closure passed to runIsolated is checked at its own
//     call site, where it can be resolved.
//
// Worker-local state is fine: writes into a slot of a shared slice selected
// by a worker-local index, and state built fresh inside the worker (a
// Runner from NewRunner), carry no shared-write effect in the summaries.
var PurityCheck = &Analyzer{
	Name: "puritycheck",
	Doc: "functions executed inside par.Pool workers must be summary-pure: no shared-state " +
		"writes, no shared map iteration, no time/rand — statically enforcing that parallel " +
		"runs equal sequential runs",
	Run: runPurityCheck,
}

func runPurityCheck(pass *Pass) {
	g := pass.graph
	if g == nil {
		return
	}
	for _, n := range g.nodes {
		walkOwnLevel(n.body, func(nd ast.Node) {
			call, ok := nd.(*ast.CallExpr)
			if !ok {
				return
			}
			if wi, ok := poolWorkerArg(pass, call); ok && wi < len(call.Args) {
				checkWorker(pass, g, call.Args[wi])
			}
			// Forwarded obligation: an argument feeding a callee parameter
			// that ends up running as a worker is itself a worker.
			for _, callee := range g.calleesOf(call) {
				if callee.sum == nil {
					continue
				}
				for k, isPool := range callee.sum.poolParam {
					if !isPool {
						continue
					}
					for _, arg := range argsForParam(call, callee, k) {
						checkWorker(pass, g, arg)
					}
				}
			}
		})
	}
}

// poolWorkerArg recognizes a par worker-pool call and returns the index of
// the worker argument: (Pool).Map(n, fn) and (Pool).ForShards(n, grain, fn).
// Matching is by method name on a named receiver type called Pool, so the
// golden corpora can declare a local Pool.
func poolWorkerArg(pass *Pass, call *ast.CallExpr) (int, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return 0, false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Pool" {
		return 0, false
	}
	switch fn.Name() {
	case "Map":
		return 1, true
	case "ForShards":
		return 2, true
	}
	return 0, false
}

// checkWorker resolves a worker-valued expression and reports every
// impurity its summary carries. Unresolvable workers (a parameter, an
// arbitrary field) are skipped here — parameters are handled by the
// poolParam obligation at the caller, which is the one place they resolve.
func checkWorker(pass *Pass, g *callGraph, worker ast.Expr) {
	n := workerNode(pass, g, worker)
	if n == nil || n.sum == nil {
		return
	}
	s := n.sum
	report := func(e *effect, what string) {
		if e == nil {
			return
		}
		pass.Reportf(worker.Pos(), "par worker %s %s: %s; workers must be pure (no shared writes, no shared map iteration, no time/rand) or the parallel run diverges from the sequential one",
			n.name, what, e.detail)
	}
	report(s.timeRand, "is nondeterministic")
	report(s.writesGlobal, "writes package-level state")
	report(s.rangesGlobal, "iterates a package-level map in nondeterministic order")
	for _, e := range s.writesCaptured {
		report(e, "writes state shared across workers")
	}
	for _, e := range s.rangesCaptured {
		report(e, "iterates a shared map in nondeterministic order")
	}
	// A method value binds one receiver that every worker invocation
	// shares; receiver writes are shared writes.
	if _, isSel := ast.Unparen(worker).(*ast.SelectorExpr); isSel {
		report(s.writesRecv, "writes its bound receiver, shared by every worker")
		report(s.rangesRecv, "iterates its bound receiver's map, shared by every worker")
	}
}

// workerNode resolves a worker expression to its function node: a literal,
// a package function or method value, or a once-bound closure variable.
func workerNode(pass *Pass, g *callGraph, e ast.Expr) *funcNode {
	if t := g.staticFuncValue(e); t != nil {
		return t
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if v, ok := pass.Info.Uses[id].(*types.Var); ok {
			return g.bindOnce[v]
		}
	}
	return nil
}
