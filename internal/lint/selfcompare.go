package lint

import (
	"go/ast"
	"go/token"
)

// SelfCompare flags comparisons of an expression with itself — `x == x`,
// `a.b != a.b`, `bytes.Equal(p, p)` — which are almost always a typo for a
// comparison against a second, similarly-named operand (prev vs curr, a vs
// b). Such bugs type-check, pass most tests, and quietly disable whatever
// guard they were meant to implement. Only side-effect-free operands
// (identifiers, field selections, constant-indexed elements) are
// considered, so `f() == f()` is never flagged.
var SelfCompare = &Analyzer{
	Name: "selfcompare",
	Doc: "flag x == x style comparisons and two-argument equality calls " +
		"(bytes.Equal, reflect.DeepEqual, …) with identical arguments",
	Run: runSelfCompare,
}

var comparisonOps = map[token.Token]bool{
	token.EQL: true, token.NEQ: true,
	token.LSS: true, token.LEQ: true,
	token.GTR: true, token.GEQ: true,
}

// equalityFuncs lists two-argument stdlib comparison helpers, by package
// path and name.
var equalityFuncs = map[string]bool{
	"bytes.Equal":       true,
	"bytes.Compare":     true,
	"strings.Compare":   true,
	"strings.EqualFold": true,
	"reflect.DeepEqual": true,
}

func runSelfCompare(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if comparisonOps[n.Op] && pureOperand(n.X) && pureOperand(n.Y) &&
					pass.ExprString(n.X) == pass.ExprString(n.Y) {
					pass.Reportf(n.OpPos, "comparing %s with itself; the result is constant", pass.ExprString(n.X))
				}
			case *ast.CallExpr:
				checkEqualityCall(pass, n)
			}
			return true
		})
	}
}

func checkEqualityCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || len(call.Args) != 2 {
		return
	}
	if !equalityFuncs[fn.Pkg().Path()+"."+fn.Name()] {
		return
	}
	if pureOperand(call.Args[0]) && pureOperand(call.Args[1]) &&
		pass.ExprString(call.Args[0]) == pass.ExprString(call.Args[1]) {
		pass.Reportf(call.Pos(), "%s.%s called with identical arguments %s; the result is constant",
			fn.Pkg().Name(), fn.Name(), pass.ExprString(call.Args[0]))
	}
}

// pureOperand reports whether evaluating e twice is guaranteed to yield the
// same value with no side effects.
func pureOperand(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return true
	case *ast.BasicLit:
		return true
	case *ast.SelectorExpr:
		return pureOperand(e.X)
	case *ast.IndexExpr:
		return pureOperand(e.X) && pureOperand(e.Index)
	case *ast.UnaryExpr:
		return e.Op != token.AND && pureOperand(e.X)
	case *ast.StarExpr:
		return pureOperand(e.X)
	}
	return false
}
