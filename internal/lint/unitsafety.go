package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// UnitSafety flags additive arithmetic and comparisons that mix identifiers
// carrying conflicting unit suffixes. The energy model threads picojoules,
// nanojoules, milliwatts, picoseconds, cycles and megahertz through plain
// int64/float64 values; a single `energyPJ + leakageNJ` silently corrupts a
// whole Fig 11 breakdown by three orders of magnitude. Multiplication and
// division are exempt (cycles/MHz or power*time legitimately change
// dimension), and any operand that is a call expression counts as an
// explicit conversion.
var UnitSafety = &Analyzer{
	Name: "unitsafety",
	Doc: "flag +, -, comparisons and += / -= mixing identifiers with conflicting unit " +
		"suffixes (PJ, NJ, MW, Ps, Ns, Cycles, MHz) without an explicit conversion call",
	Run: runUnitSafety,
}

// unitSuffixes maps a recognized identifier suffix to its dimension. Two
// suffixed operands conflict unless their suffixes are identical: same
// dimension but different scale (PJ vs NJ) is exactly the silent 1000x
// error this check exists for.
var unitSuffixes = []struct {
	suffix, dim string
}{
	{"Cycles", "cycle count"},
	{"MHz", "frequency"},
	{"PJ", "energy (pJ)"},
	{"NJ", "energy (nJ)"},
	{"MW", "power (mW)"},
	{"Ps", "time (ps)"},
	{"Ns", "time (ns)"},
}

// unitOf extracts the unit suffix of a name, requiring a camelCase boundary
// (the rune before the suffix must be a lowercase letter or digit, or the
// name must be the suffix itself) so e.g. "Caps" is not read as ending in
// "Ps".
func unitOf(name string) (suffix, dim string, ok bool) {
	for _, u := range unitSuffixes {
		if !strings.HasSuffix(name, u.suffix) {
			continue
		}
		rest := name[:len(name)-len(u.suffix)]
		if rest == "" {
			return u.suffix, u.dim, true
		}
		last := rest[len(rest)-1]
		if last >= 'a' && last <= 'z' || last >= '0' && last <= '9' {
			return u.suffix, u.dim, true
		}
	}
	return "", "", false
}

// operandName returns the identifier name an operand resolves to, or ""
// when the operand is anything else (calls are conversions, literals are
// dimensionless, etc.).
func operandName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// additiveOps are the operators where mixed units are always a bug.
var additiveOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.EQL: true, token.NEQ: true,
	token.LSS: true, token.LEQ: true,
	token.GTR: true, token.GEQ: true,
}

func runUnitSafety(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if additiveOps[n.Op] {
					checkUnitPair(pass, n.OpPos, n.Op.String(), n.X, n.Y)
				}
			case *ast.AssignStmt:
				if (n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN) &&
					len(n.Lhs) == 1 && len(n.Rhs) == 1 {
					checkUnitPair(pass, n.TokPos, n.Tok.String(), n.Lhs[0], n.Rhs[0])
				}
			}
			return true
		})
	}
}

func checkUnitPair(pass *Pass, pos token.Pos, op string, x, y ast.Expr) {
	xn, yn := operandName(x), operandName(y)
	xs, xd, xok := unitOf(xn)
	ys, yd, yok := unitOf(yn)
	if !xok || !yok || xs == ys {
		return
	}
	pass.Reportf(pos, "%q mixes %s (%s) with %s (%s) without an explicit conversion", op, xn, xd, yn, yd)
}
