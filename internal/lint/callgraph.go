package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Package-level call graph over one package, the substrate for the
// interprocedural analyses (summary.go, statecheck, puritycheck, and the
// call-boundary cases of unitflow and ledgercheck). Per DESIGN.md
// "machlint v3", resolution covers four callee shapes:
//
//   - static calls of package-level functions, in this package or any other
//     module package (the module index maps *types.Func to its node);
//   - method calls on concrete receivers, via go/types method resolution;
//   - interface dispatch, resolved to every named type declared anywhere in
//     the module that implements the interface (a call edge per
//     implementation; effects meet conservatively at the call);
//   - function values, tracked flow-sensitively through the existing
//     dataflow facts (forwardFixpoint with a func-identity fact), with a
//     flow-insensitive once-bound fallback so a closure captured from the
//     enclosing function (`hashOne := func(...){...}` called inside a
//     worker literal) still resolves.
//
// Function literals are first-class nodes. A literal also gets a lexical
// containment edge from its enclosing function: even when a literal is only
// passed away (par.Pool.ForShards, sort.Search), its body still runs on
// behalf of the caller, so reachability and effect summaries must see it.

// funcNode is one analyzable function: a declared function/method or a
// function literal.
type funcNode struct {
	fn   *types.Func   // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	name string        // diagnostic name
	body *ast.BlockStmt
	sig  *types.Signature
	recv *types.Var   // receiver object, nil if none
	params []*types.Var // declared parameters in order (nil entries for _ / unnamed)

	pass      *Pass     // engine pass of the owning package
	enclosing *funcNode // lexical parent, for literals

	out []*funcNode // resolved callees + contained literals (deduplicated)
	sum *summary    // computed by summarize (summary.go)
}

func (n *funcNode) String() string { return n.name }

// callGraph is the per-package graph plus the call-site resolution table.
type callGraph struct {
	pass     *Pass
	nodes    []*funcNode
	byFunc   map[*types.Func]*funcNode
	byLit    map[*ast.FuncLit]*funcNode
	callees  map[*ast.CallExpr][]*funcNode
	bindOnce map[*types.Var]*funcNode // func-typed vars with exactly one binding
	sccs     [][]*funcNode            // callee-first (bottom-up) order
}

// moduleIndex is the cross-package view RunAnalyzers builds once per run:
// every function node in the module, every named type (for interface
// dispatch), and the per-package graphs. Packages arrive in dependency
// order from LoadModule, so by the time a package is summarized its static
// callees in other packages already are; the one forward reference —
// interface dispatch into a package that imports this one — falls back to
// the unknown-callee default (assumed effect-free), which is the same
// optimistic default used for stdlib calls.
type moduleIndex struct {
	byFunc map[*types.Func]*funcNode
	graphs map[string]*callGraph
	named  []*types.Named

	// hot is the allocheck cone: every node reachable from a
	// //lint:hotpath root without entering a constructor fence. Computed
	// once per run, on the first allocheck pass (hotDone guards it).
	hot     map[*funcNode]bool
	hotDone bool
}

// enginePass builds a Pass usable by the engine itself (CFGs, type info);
// its reporter discards, because the engine never diagnoses directly.
func enginePass(fset *token.FileSet, pkg *Package) *Pass {
	return &Pass{
		Fset:   fset,
		Path:   pkg.Path,
		Files:  pkg.Files,
		Pkg:    pkg.Types,
		Info:   pkg.Info,
		check:  "engine",
		report: func(Diagnostic) {},
	}
}

// buildModuleIndex constructs graphs and summaries for every package, in
// the (already topological) order given.
func buildModuleIndex(fset *token.FileSet, pkgs []*Package) *moduleIndex {
	mod := &moduleIndex{
		byFunc: map[*types.Func]*funcNode{},
		graphs: map[string]*callGraph{},
	}
	// Phase 1: register every named type and declared function first, so
	// interface dispatch and cross-package static calls resolve regardless
	// of package order.
	graphs := make([]*callGraph, 0, len(pkgs))
	for _, pkg := range pkgs {
		g := newCallGraph(enginePass(fset, pkg))
		graphs = append(graphs, g)
		mod.graphs[pkg.Path] = g
		for fn, n := range g.byFunc {
			mod.byFunc[fn] = n
		}
		scope := pkg.Types.Scope()
		for _, nm := range scope.Names() {
			if tn, ok := scope.Lookup(nm).(*types.TypeName); ok && !tn.IsAlias() {
				if named, ok := tn.Type().(*types.Named); ok {
					mod.named = append(mod.named, named)
				}
			}
		}
	}
	// Phase 2: resolve call sites and compute SCC summaries bottom-up.
	for _, g := range graphs {
		g.resolve(mod)
		g.condense()
	}
	for _, g := range graphs {
		for _, scc := range g.sccs {
			summarizeSCC(g, mod, scc)
		}
	}
	return mod
}

// newCallGraph collects the nodes of one package: every declared function
// with a body, and every function literal nested anywhere inside one.
func newCallGraph(pass *Pass) *callGraph {
	g := &callGraph{
		pass:     pass,
		byFunc:   map[*types.Func]*funcNode{},
		byLit:    map[*ast.FuncLit]*funcNode{},
		callees:  map[*ast.CallExpr][]*funcNode{},
		bindOnce: map[*types.Var]*funcNode{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			n := &funcNode{
				fn:   obj,
				name: funcDisplayName(obj),
				body: fd.Body,
				sig:  obj.Type().(*types.Signature),
				pass: pass,
			}
			n.recv, n.params = declObjects(pass, fd.Recv, fd.Type)
			g.nodes = append(g.nodes, n)
			g.byFunc[obj] = n
			g.collectLits(n, fd.Body)
		}
	}
	g.collectOnceBindings()
	return g
}

// collectLits registers every function literal nested in body (but not
// inside a deeper literal — those recurse) under enclosing, and adds the
// lexical containment edge.
func (g *callGraph) collectLits(enclosing *funcNode, body *ast.BlockStmt) {
	ast.Inspect(body, func(nd ast.Node) bool {
		lit, ok := nd.(*ast.FuncLit)
		if !ok {
			return true
		}
		pos := g.pass.Fset.Position(lit.Pos())
		n := &funcNode{
			lit:       lit,
			name:      fmt.Sprintf("func literal at %s:%d", pos.Filename, pos.Line),
			body:      lit.Body,
			pass:      g.pass,
			enclosing: enclosing,
		}
		if tv, ok := g.pass.Info.Types[lit]; ok {
			n.sig, _ = tv.Type.(*types.Signature)
		}
		_, n.params = declObjects(g.pass, nil, lit.Type)
		g.nodes = append(g.nodes, n)
		g.byLit[lit] = n
		g.addEdge(enclosing, n)
		g.collectLits(n, lit.Body)
		return false // inner literals were just visited by the recursion
	})
}

// declObjects resolves the receiver and parameter objects of a declaration.
// Unnamed and blank parameters keep their index with a nil entry, so call
// arguments align positionally.
func declObjects(pass *Pass, recv *ast.FieldList, ft *ast.FuncType) (rv *types.Var, params []*types.Var) {
	if recv != nil && len(recv.List) == 1 && len(recv.List[0].Names) == 1 {
		rv, _ = pass.Info.Defs[recv.List[0].Names[0]].(*types.Var)
	}
	if ft.Params != nil {
		for _, f := range ft.Params.List {
			if len(f.Names) == 0 {
				params = append(params, nil)
				continue
			}
			for _, nm := range f.Names {
				v, _ := pass.Info.Defs[nm].(*types.Var)
				params = append(params, v)
			}
		}
	}
	return rv, params
}

func funcDisplayName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			if named, ok := p.Elem().(*types.Named); ok {
				return "(*" + named.Obj().Name() + ")." + fn.Name()
			}
		}
		if named, ok := t.(*types.Named); ok {
			return "(" + named.Obj().Name() + ")." + fn.Name()
		}
	}
	return fn.Name()
}

func (g *callGraph) addEdge(from, to *funcNode) {
	for _, o := range from.out {
		if o == to {
			return
		}
	}
	from.out = append(from.out, to)
}

// collectOnceBindings finds func-typed variables with exactly one binding
// in the whole package whose right-hand side resolves to a module function
// or literal. They are the fallback for func values captured across
// literal boundaries, where the per-body dataflow facts cannot reach.
func (g *callGraph) collectOnceBindings() {
	writes := map[*types.Var]int{}
	target := map[*types.Var]*funcNode{}
	bind := func(lhs, rhs ast.Expr) {
		v := lhsVar(g.pass, lhs)
		if v == nil {
			return
		}
		if _, ok := v.Type().Underlying().(*types.Signature); !ok {
			return
		}
		writes[v]++
		if rhs != nil {
			if t := g.staticFuncValue(rhs); t != nil {
				target[v] = t
			}
		}
	}
	for _, f := range g.pass.Files {
		ast.Inspect(f, func(nd ast.Node) bool {
			switch nd := nd.(type) {
			case *ast.AssignStmt:
				if pairs := assignTargets(nd); pairs != nil {
					for _, p := range pairs {
						bind(p[0], p[1])
					}
				} else {
					for _, lhs := range nd.Lhs {
						bind(lhs, nil)
					}
				}
			case *ast.ValueSpec:
				for i, name := range nd.Names {
					if i < len(nd.Values) {
						bind(name, nd.Values[i])
					} else {
						bind(name, nil)
					}
				}
			}
			return true
		})
	}
	for v, n := range writes {
		if n == 1 && target[v] != nil {
			g.bindOnce[v] = target[v]
		}
	}
}

// staticFuncValue resolves an expression to a module function node without
// dataflow: a literal, a package-level function reference, or a method
// value. Returns nil when the value is not statically known.
func (g *callGraph) staticFuncValue(e ast.Expr) *funcNode {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return g.byLit[e]
	case *ast.Ident:
		if fn, ok := g.pass.Info.Uses[e].(*types.Func); ok {
			return g.byFunc[fn]
		}
	case *ast.SelectorExpr:
		if fn, ok := g.pass.Info.Uses[e.Sel].(*types.Func); ok {
			return g.byFunc[fn]
		}
	}
	return nil
}

// funcFactKey gives every module function node a stable dataflow fact.
func (g *callGraph) funcFactKey(n *funcNode) string {
	if n.lit != nil {
		return fmt.Sprintf("lit:%d", n.lit.Pos())
	}
	return "fn:" + n.fn.FullName()
}

// resolve walks every node's body, propagating func-value facts through the
// CFG fixpoint and recording the resolved callees of every call expression.
func (g *callGraph) resolve(mod *moduleIndex) {
	factTargets := map[string]*funcNode{}
	for _, n := range g.nodes {
		factTargets[g.funcFactKey(n)] = n
	}
	for _, n := range g.nodes {
		g.resolveNode(mod, n, factTargets)
	}
}

func (g *callGraph) resolveNode(mod *moduleIndex, n *funcNode, factTargets map[string]*funcNode) {
	cfg := buildCFG(g.pass, n.body)
	valueOf := func(env factEnv, e ast.Expr) *funcNode {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			if v, ok := g.pass.Info.Uses[e].(*types.Var); ok {
				if k, ok := env[v]; ok {
					return factTargets[k]
				}
				return g.bindOnce[v]
			}
		}
		if t := g.staticFuncValue(e); t != nil {
			return t
		}
		return nil
	}
	transfer := func(env factEnv, nd ast.Node) factEnv {
		a, ok := nd.(*ast.AssignStmt)
		if !ok || (a.Tok != token.ASSIGN && a.Tok != token.DEFINE) {
			return env
		}
		pairs := assignTargets(a)
		if pairs == nil {
			for _, lhs := range a.Lhs {
				if v := lhsVar(g.pass, lhs); v != nil {
					delete(env, v)
				}
			}
			return env
		}
		for _, p := range pairs {
			v := lhsVar(g.pass, p[0])
			if v == nil {
				continue
			}
			if t := valueOf(env, p[1]); t != nil {
				env[v] = g.funcFactKey(t)
			} else {
				delete(env, v)
			}
		}
		return env
	}
	in := forwardFixpoint(cfg, transfer)
	for _, b := range cfg.blocks {
		env := factEnv{}
		if in[b.index] != nil {
			env = in[b.index].clone()
		}
		for _, nd := range b.nodes {
			g.resolveCallsIn(mod, n, env, nd)
			env = transfer(env, nd)
		}
	}
}

// resolveCallsIn records the callees of every call in one CFG node, without
// descending into nested literals (they resolve on their own nodes) or a
// range header's body (it lives in other blocks).
func (g *callGraph) resolveCallsIn(mod *moduleIndex, n *funcNode, env factEnv, nd ast.Node) {
	root := nd
	if rng, ok := nd.(*ast.RangeStmt); ok {
		root = rng.X
	}
	ast.Inspect(root, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if targets := g.resolveCall(mod, env, call); len(targets) > 0 {
			g.callees[call] = targets
			for _, t := range targets {
				g.addEdge(n, t)
			}
		}
		return true
	})
}

// dispatchFanLimit caps how many implementations one interface call may
// resolve to before the engine treats the dispatch as unknown: past that
// point the meet over implementations carries no usable precision anyway.
const dispatchFanLimit = 8

// resolveCall returns the module function nodes a call may invoke.
func (g *callGraph) resolveCall(mod *moduleIndex, env factEnv, call *ast.CallExpr) []*funcNode {
	if tv, ok := g.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return nil // conversion
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		if t := g.byLit[fun]; t != nil {
			return []*funcNode{t}
		}
	case *ast.Ident:
		switch obj := g.pass.Info.Uses[fun].(type) {
		case *types.Func:
			if t := mod.byFunc[obj]; t != nil {
				return []*funcNode{t}
			}
		case *types.Var:
			if k, ok := env[obj]; ok {
				if t := g.mustFact(k); t != nil {
					return []*funcNode{t}
				}
			}
			if t := g.bindOnce[obj]; t != nil {
				return []*funcNode{t}
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := g.pass.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			recvT := sel.Recv()
			if iface, ok := recvT.Underlying().(*types.Interface); ok {
				return mod.implementors(iface, fun.Sel.Name)
			}
		}
		if fn, ok := g.pass.Info.Uses[fun.Sel].(*types.Func); ok {
			if t := mod.byFunc[fn]; t != nil {
				return []*funcNode{t}
			}
		}
	}
	return nil
}

func (g *callGraph) mustFact(key string) *funcNode {
	for _, n := range g.nodes {
		if g.funcFactKey(n) == key {
			return n
		}
	}
	return nil
}

// implementors resolves one interface method to the matching method of
// every named module type implementing the interface.
func (m *moduleIndex) implementors(iface *types.Interface, method string) []*funcNode {
	if iface.NumMethods() == 0 {
		return nil
	}
	var out []*funcNode
	for _, named := range m.named {
		var impl types.Type
		switch {
		case types.Implements(named, iface):
			impl = named
		case types.Implements(types.NewPointer(named), iface):
			impl = types.NewPointer(named)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, named.Obj().Pkg(), method)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if t := m.byFunc[fn]; t != nil {
			out = append(out, t)
			if len(out) > dispatchFanLimit {
				return nil
			}
		}
	}
	return out
}

// calleesOf returns the resolved module targets of a call, or nil.
func (g *callGraph) calleesOf(call *ast.CallExpr) []*funcNode { return g.callees[call] }

// nodeOf returns the graph node for a declared function or method.
func (g *callGraph) nodeOf(fn *types.Func) *funcNode { return g.byFunc[fn] }

// reachableFrom returns every node reachable from the roots along call and
// containment edges, roots included.
func (g *callGraph) reachableFrom(roots ...*funcNode) map[*funcNode]bool {
	seen := map[*funcNode]bool{}
	var walk func(n *funcNode)
	walk = func(n *funcNode) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		for _, o := range n.out {
			walk(o)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return seen
}

// condense runs Tarjan's algorithm over the package nodes. SCCs come out
// callee-first, which is exactly the bottom-up order summary computation
// needs; recursion lands whole cycles in one SCC that summarize by fixpoint.
func (g *callGraph) condense() {
	index := map[*funcNode]int{}
	low := map[*funcNode]int{}
	onStack := map[*funcNode]bool{}
	var stack []*funcNode
	next := 0
	var sccs [][]*funcNode

	var strong func(n *funcNode)
	strong = func(n *funcNode) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, o := range n.out {
			if o.pass != g.pass {
				continue // cross-package edges terminate in finished SCCs
			}
			if _, seen := index[o]; !seen {
				strong(o)
				if low[o] < low[n] {
					low[n] = low[o]
				}
			} else if onStack[o] && index[o] < low[n] {
				low[n] = index[o]
			}
		}
		if low[n] == index[n] {
			var scc []*funcNode
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, n := range g.nodes {
		if _, seen := index[n]; !seen {
			strong(n)
		}
	}
	g.sccs = sccs
}
