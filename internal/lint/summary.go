package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Per-function summaries, computed bottom-up over the SCC condensation of
// each package's call graph (recursive cycles iterate to a fixpoint; the
// effect lattice is finite and grows monotonically, so it converges). A
// summary answers, for any call site, the questions the interprocedural
// analyzers ask:
//
//   - purity/determinism effects: does the function (transitively) read the
//     wall clock or the global math/rand source, range over a map, or write
//     state it does not own? Effects are recorded against the *root* the
//     mutated state hangs off — a global, the receiver, a parameter, or a
//     captured variable — so a call site can translate them through its own
//     arguments: a callee that writes its receiver is harmless when the
//     receiver is a local the caller just built, and damning when it is
//     shared state captured by a par worker.
//   - unit dimensions: the dimension of each result (so a Joules total
//     returned as a plain float64 cannot launder into Watts in the caller)
//     and of each plain-typed parameter the body constrains additively.
//   - ledger sinks: parameters that flow into an energy accumulator, so
//     energy produced in one function and deposited by a helper is visible
//     to ledgercheck's exactly-one-ledger rule.
//
// Unknown callees — the standard library, and interface dispatch that
// resolves to no module implementation — default to effect-free and
// dimensionless. That optimistic default mirrors the determinism analyzer's
// explicit denylist (time.Now, global rand) and keeps the analyzers
// quiet on code they cannot see; the denylist itself is checked directly at
// every call site, so the two known-bad stdlib effects never slip through.
//
// Two sanctions mirror the determinism analyzer's concurrency idioms:
// writes into an index-addressed slot of shared state selected by a
// function-local index are slot-ownership, not shared mutation; and a body
// that takes a sync lock has declared its synchronization story, so its
// write effects are dropped (wall-clock and map-order effects remain — a
// lock serializes writes, it does not order map iteration).

// effect is one observed impurity: where it was observed in the current
// package, and a human-readable chain of how it happens.
type effect struct {
	pos    token.Pos
	detail string
}

// summary is the per-function fact table.
type summary struct {
	timeRand     *effect
	writesGlobal *effect
	rangesGlobal *effect
	writesRecv   *effect
	rangesRecv   *effect
	writesParam  []*effect
	rangesParam  []*effect
	writesCaptured map[*types.Var]*effect
	rangesCaptured map[*types.Var]*effect

	guarded       bool // body takes a sync lock
	returnsShared bool // some result may alias receiver/param/global/captured state

	resultDims []string // dimension of each result ("" unknown/conflicting)
	paramDims  []string // dimension constraint of each parameter
	accParam   []bool   // parameter flows into an energy accumulator
	poolParam  []bool   // parameter runs as a par worker (puritycheck obligation)
}

func newSummary(n *funcNode) *summary {
	np := len(n.params)
	nr := 0
	if n.sig != nil {
		nr = n.sig.Results().Len()
	}
	return &summary{
		writesParam:    make([]*effect, np),
		rangesParam:    make([]*effect, np),
		writesCaptured: map[*types.Var]*effect{},
		rangesCaptured: map[*types.Var]*effect{},
		resultDims:     make([]string, nr),
		paramDims:      make([]string, np),
		accParam:       make([]bool, np),
		poolParam:      make([]bool, np),
	}
}

// signature encodes the summary's presence bits for fixpoint convergence.
func (s *summary) signature() string {
	var sb strings.Builder
	b := func(v bool) {
		if v {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	b(s.timeRand != nil)
	b(s.writesGlobal != nil)
	b(s.rangesGlobal != nil)
	b(s.writesRecv != nil)
	b(s.rangesRecv != nil)
	b(s.guarded)
	b(s.returnsShared)
	for _, e := range s.writesParam {
		b(e != nil)
	}
	for _, e := range s.rangesParam {
		b(e != nil)
	}
	fmt.Fprintf(&sb, "|c%d,%d|", len(s.writesCaptured), len(s.rangesCaptured))
	sb.WriteString(strings.Join(s.resultDims, ";"))
	sb.WriteByte('|')
	sb.WriteString(strings.Join(s.paramDims, ";"))
	for _, v := range s.accParam {
		b(v)
	}
	for _, v := range s.poolParam {
		b(v)
	}
	return sb.String()
}

// pure reports whether the summary records no effect a par worker is
// forbidden (writes to shared state, shared map iteration, wall clock or
// global randomness). Receiver/parameter-rooted effects are relative — the
// call site decides whether those roots are shared — so they do not count
// here.
func (s *summary) pure() bool {
	return s.timeRand == nil && s.writesGlobal == nil && s.rangesGlobal == nil &&
		len(s.writesCaptured) == 0 && len(s.rangesCaptured) == 0
}

// ---------------------------------------------------------------------------
// Root classification

type rootClass int

const (
	classFresh rootClass = iota // local to the function (or an owned slot)
	classGlobal
	classRecv
	classParam
	classCaptured
)

type rootRef struct {
	class rootClass
	index int        // parameter index for classParam
	v     *types.Var // the variable for classCaptured
}

// classifier resolves what state an expression of one function can reach,
// including a flow-insensitive alias pass so a local bound to shared state
// (`m := r.layoutByDisp`) classifies like the state it aliases.
type classifier struct {
	g   *callGraph
	n   *funcNode
	aliases map[*types.Var][]rootRef
}

func newClassifier(g *callGraph, n *funcNode) *classifier {
	c := &classifier{g: g, n: n, aliases: map[*types.Var][]rootRef{}}
	c.buildAliases()
	return c
}

// classifyVar places a variable relative to the function: receiver,
// parameter, package-level, captured from an enclosing function, or local.
func (c *classifier) classifyVar(v *types.Var) rootRef {
	if v == nil || v.IsField() {
		return rootRef{class: classFresh}
	}
	if c.n.recv != nil && v == c.n.recv {
		return rootRef{class: classRecv}
	}
	for i, p := range c.n.params {
		if p != nil && v == p {
			return rootRef{class: classParam, index: i}
		}
	}
	if v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return rootRef{class: classGlobal}
	}
	if c.n.lit != nil && (v.Pos() < c.n.lit.Pos() || v.Pos() > c.n.lit.End()) {
		return rootRef{class: classCaptured, v: v}
	}
	return rootRef{class: classFresh}
}

// sharedRootsOfVar expands a variable to the shared roots writes through it
// can reach: its own classification plus whatever a local may alias.
func (c *classifier) sharedRootsOfVar(v *types.Var) []rootRef {
	r := c.classifyVar(v)
	if r.class != classFresh {
		return []rootRef{r}
	}
	return c.aliases[v]
}

// exprIsLocal reports whether every variable the expression reads is local
// to the function (parameters count: reading a parameter's value is a
// function-local computation). Such expressions are safe slot indexes.
func (c *classifier) exprIsLocal(e ast.Expr) bool {
	local := true
	ast.Inspect(e, func(nd ast.Node) bool {
		id, ok := nd.(*ast.Ident)
		if !ok || !local {
			return local
		}
		v, ok := c.g.pass.Info.ObjectOf(id).(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		switch c.classifyVar(v).class {
		case classFresh:
			if len(c.aliases[v]) > 0 {
				local = false
			}
		case classParam:
		default:
			local = false
		}
		return local
	})
	return local
}

// isRefCarrying reports whether a value of type t can share a referent with
// another value after a plain copy: pointers, slices, maps, channels,
// interfaces, and aggregates containing any of those. Copying a scalar or a
// ref-free struct severs the connection — writes to the copy are local.
func isRefCarrying(t types.Type) bool {
	return refCarrying(t, 0)
}

func refCarrying(t types.Type, depth int) bool {
	if depth > 6 {
		return true // give up conservatively on deep nesting
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	case *types.Array:
		return refCarrying(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refCarrying(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	}
	return false
}

// rootsOf returns the shared roots an expression can reach, or nil for
// purely local values.
//
// deref tracks Go's value semantics: it starts false and turns true the
// first time the chain passes a dereference (a selector through a pointer,
// a slice/map index, an explicit *). A write that never derefs mutates the
// variable itself — which is only shared when the variable is captured (by
// reference) or package-level; writes to a by-value parameter or receiver
// copy, like `cfg.Delivery = d` on a value Config, are local and yield no
// root. With deref set, the write lands in the referent, so the root
// variable's classification (and a local's aliases) apply.
//
// With forWrite set, an index into a non-map container selected by a
// function-local index is the sanctioned slot-ownership pattern
// (errs[i] = …, w.pre.digest[ord] = …) and yields no root.
func (c *classifier) rootsOf(e ast.Expr, forWrite, deref bool) []rootRef {
	info := c.g.pass.Info
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return nil
		}
		v, ok := info.ObjectOf(e).(*types.Var)
		if !ok {
			return nil
		}
		if deref {
			return c.sharedRootsOfVar(v)
		}
		// Touching the variable itself: by-value roots are copies.
		switch r := c.classifyVar(v); r.class {
		case classCaptured, classGlobal:
			return []rootRef{r}
		}
		return nil
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if _, isPkg := info.ObjectOf(id).(*types.PkgName); isPkg {
				// Qualified reference pkg.Var: package-level state.
				if _, ok := info.ObjectOf(e.Sel).(*types.Var); ok {
					return []rootRef{{class: classGlobal}}
				}
				return nil
			}
		}
		d := deref
		if tv, ok := info.Types[e.X]; ok {
			if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
				d = true
			}
		}
		return c.rootsOf(e.X, forWrite, d)
	case *ast.IndexExpr:
		isMap := false
		d := deref
		if tv, ok := info.Types[e.X]; ok {
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				isMap, d = true, true
			case *types.Slice, *types.Pointer:
				d = true
			}
		}
		if forWrite && !isMap && c.exprIsLocal(e.Index) {
			return nil // index-owned slot
		}
		return c.rootsOf(e.X, forWrite, d)
	case *ast.SliceExpr:
		return c.rootsOf(e.X, forWrite, true)
	case *ast.StarExpr:
		return c.rootsOf(e.X, forWrite, true)
	case *ast.UnaryExpr:
		return c.rootsOf(e.X, forWrite, deref)
	case *ast.TypeAssertExpr:
		return c.rootsOf(e.X, forWrite, true)
	case *ast.CallExpr:
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			if len(e.Args) == 1 {
				return c.rootsOf(e.Args[0], forWrite, deref)
			}
			return nil
		}
		return c.callResultRoots(e, forWrite)
	}
	return nil
}

// callResultRoots classifies what a call's results may alias: fresh unless
// some resolved callee declares returnsShared, in which case the receiver
// and the ref-carrying arguments contribute their roots (a by-value
// argument was copied across the call; the result cannot alias the
// caller's copy).
func (c *classifier) callResultRoots(call *ast.CallExpr, forWrite bool) []rootRef {
	shared := false
	for _, t := range c.g.calleesOf(call) {
		if t.sum != nil && t.sum.returnsShared {
			shared = true
			break
		}
	}
	if !shared {
		return nil
	}
	info := c.g.pass.Info
	var roots []rootRef
	add := func(e ast.Expr) {
		if tv, ok := info.Types[e]; ok && !isRefCarrying(tv.Type) {
			return
		}
		roots = append(roots, c.rootsOf(e, forWrite, true)...)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		add(sel.X)
	}
	for _, a := range call.Args {
		add(a)
	}
	return roots
}

// buildAliases iterates the body's bindings until the local→shared-root map
// stabilizes. Nested literal bodies are excluded: their locals belong to
// their own nodes, and their captures translate at fold time.
func (c *classifier) buildAliases() {
	// aliasRoots evaluates what referent a bound value shares. A plain read
	// of a ref-carrying value (`s := m.lines`) yields a reference whose
	// referent survives any number of struct copies, so the leaf variable is
	// classified fully (deref=true). `&expr` instead points at the location
	// of expr, whose sharedness follows write semantics: `p := &t.f` on a
	// by-value t points into the local copy (deref=false at the leaf).
	aliasRoots := func(rhs ast.Expr) []rootRef {
		if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.AND {
			return c.rootsOf(rhs, true, false)
		}
		// Plain reads classify with forWrite off: the index-owned-slot
		// sanction covers writes into a slot, but reading a slot
		// (`layout := w.pool[n-1]`) still yields a reference into the
		// container's shared referent.
		return c.rootsOf(rhs, false, true)
	}
	bind := func(lhs ast.Expr, roots []rootRef) bool {
		v := lhsVar(c.g.pass, lhs)
		if v == nil || len(roots) == 0 {
			return false
		}
		// Only reference-carrying locals can alias shared state; copying a
		// scalar or ref-free struct severs the connection (`i := lo`,
		// `cfg := r.Cfg.Platform`).
		if !isRefCarrying(v.Type()) {
			return false
		}
		if c.classifyVar(v).class != classFresh {
			return false
		}
		changed := false
		for _, r := range roots {
			dup := false
			for _, have := range c.aliases[v] {
				if have == r {
					dup = true
					break
				}
			}
			if !dup {
				c.aliases[v] = append(c.aliases[v], r)
				changed = true
			}
		}
		return changed
	}
	for iter := 0; iter < 10; iter++ {
		changed := false
		walkOwnLevel(c.n.body, func(nd ast.Node) {
			switch nd := nd.(type) {
			case *ast.AssignStmt:
				if nd.Tok != token.ASSIGN && nd.Tok != token.DEFINE {
					return
				}
				if pairs := assignTargets(nd); pairs != nil {
					for _, p := range pairs {
						if bind(p[0], aliasRoots(p[1])) {
							changed = true
						}
					}
				} else if len(nd.Rhs) == 1 {
					roots := aliasRoots(nd.Rhs[0])
					for _, lhs := range nd.Lhs {
						if bind(lhs, roots) {
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				roots := c.rootsOf(nd.X, false, true)
				if nd.Key != nil && bind(nd.Key, roots) {
					changed = true
				}
				if nd.Value != nil && bind(nd.Value, roots) {
					changed = true
				}
			case *ast.ValueSpec:
				for i, name := range nd.Names {
					if i < len(nd.Values) && bind(name, aliasRoots(nd.Values[i])) {
						changed = true
					}
				}
			}
		})
		if !changed {
			break
		}
	}
}

// walkOwnLevel visits every node of the body except the interiors of nested
// function literals.
func walkOwnLevel(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(nd ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		if nd != nil {
			visit(nd)
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// Summary computation

// summarizeSCC computes the summaries of one strongly connected component.
// Single functions take one pass (their callees, being in earlier SCCs, are
// done); recursive cycles iterate until the effect signatures stop moving.
func summarizeSCC(g *callGraph, mod *moduleIndex, scc []*funcNode) {
	for _, n := range scc {
		n.sum = newSummary(n)
	}
	for iter := 0; iter < 20; iter++ {
		changed := false
		for _, n := range scc {
			old := n.sum.signature()
			n.sum = computeSummary(g, mod, n)
			if n.sum.signature() != old {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

const chainDetailLimit = 240

func chainDetail(callee *funcNode, detail string) string {
	d := "calls " + callee.name + ", which " + detail
	if len(d) > chainDetailLimit {
		d = d[:chainDetailLimit] + "…"
	}
	return d
}

// record stores an effect against a root, keeping the first observation.
func (s *summary) record(write bool, root rootRef, e *effect) {
	slot := func(p **effect) {
		if *p == nil {
			*p = e
		}
	}
	switch root.class {
	case classGlobal:
		if write {
			slot(&s.writesGlobal)
		} else {
			slot(&s.rangesGlobal)
		}
	case classRecv:
		if write {
			slot(&s.writesRecv)
		} else {
			slot(&s.rangesRecv)
		}
	case classParam:
		if root.index < 0 || root.index >= len(s.writesParam) {
			return
		}
		if write {
			slot(&s.writesParam[root.index])
		} else {
			slot(&s.rangesParam[root.index])
		}
	case classCaptured:
		m := s.rangesCaptured
		if write {
			m = s.writesCaptured
		}
		if _, ok := m[root.v]; !ok {
			m[root.v] = e
		}
	}
}

// computeSummary derives one function's summary from its body and the
// current summaries of its callees.
func computeSummary(g *callGraph, mod *moduleIndex, n *funcNode) *summary {
	s := newSummary(n)
	cls := newClassifier(g, n)
	pass := g.pass
	s.guarded = guardedBody(pass, n.body)

	recordAll := func(write bool, roots []rootRef, e *effect) {
		for _, r := range roots {
			s.record(write, r, e)
		}
	}

	walkOwnLevel(n.body, func(nd ast.Node) {
		switch nd := nd.(type) {
		case *ast.AssignStmt:
			// `:=` introduces fresh bindings — a rebinding, not a mutation of
			// shared state; aliases it creates are handled by buildAliases.
			if !s.guarded && nd.Tok != token.DEFINE {
				for _, lhs := range nd.Lhs {
					roots := cls.rootsOf(lhs, true, false)
					recordAll(true, roots, &effect{pos: lhs.Pos(), detail: "writes " + pass.ExprString(lhs)})
				}
			}
		case *ast.IncDecStmt:
			if !s.guarded {
				roots := cls.rootsOf(nd.X, true, false)
				recordAll(true, roots, &effect{pos: nd.Pos(), detail: "writes " + pass.ExprString(nd.X)})
			}
		case *ast.RangeStmt:
			if s.guarded {
				return
			}
			if tv, ok := pass.Info.Types[nd.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					// Map contents are shared through any struct value copy,
					// so the leaf is classified fully (deref=true).
					roots := cls.rootsOf(nd.X, true, true)
					recordAll(false, roots, &effect{pos: nd.Pos(), detail: "ranges over map " + pass.ExprString(nd.X)})
				}
			}
		case *ast.ReturnStmt:
			for _, res := range nd.Results {
				// Only a ref-carrying result can hand the caller a handle to
				// shared state; `return r.frames` does, `return r.count` can't.
				if tv, ok := pass.Info.Types[res]; ok && !isRefCarrying(tv.Type) {
					continue
				}
				if len(cls.rootsOf(res, false, true)) > 0 {
					s.returnsShared = true
				}
			}
		case *ast.CallExpr:
			summarizeCall(g, mod, n, cls, s, nd)
		}
	})
	computeUnitFacts(g, n, cls, s)
	return s
}

// summarizeCall folds one call site into the caller's summary: the direct
// wall-clock/rand denylist, the resolved callees' effects translated
// through the call's receiver and arguments, and any function-literal
// arguments (which may run at any time on the caller's behalf).
func summarizeCall(g *callGraph, mod *moduleIndex, n *funcNode, cls *classifier, s *summary, call *ast.CallExpr) {
	pass := g.pass
	if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil {
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" && s.timeRand == nil {
					s.timeRand = &effect{pos: call.Pos(), detail: "calls time.Now"}
				}
			case "math/rand", "math/rand/v2":
				if !globalRandAllowed[fn.Name()] && s.timeRand == nil {
					s.timeRand = &effect{pos: call.Pos(), detail: "calls rand." + fn.Name() + " (process-global source)"}
				}
			}
		}
	}

	var recvExpr ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		recvExpr = sel.X
	}
	for _, callee := range g.calleesOf(call) {
		foldCallee(cls, s, call, callee, recvExpr)
	}
	// A literal passed as an argument runs on the caller's behalf at some
	// point (a pool worker, a sort comparator); its effects are the
	// caller's, with captured variables translated into the caller's frame.
	for _, arg := range call.Args {
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			if ln := g.byLit[lit]; ln != nil && ln.sum != nil {
				foldCaptured(cls, s, call, ln)
				foldAbsolute(s, call, ln)
			}
		}
	}
	recordPoolObligations(g, n, cls, s, call)
}

// foldCallee translates one resolved callee's summary through the call.
func foldCallee(cls *classifier, s *summary, call *ast.CallExpr, callee *funcNode, recvExpr ast.Expr) {
	cs := callee.sum
	if cs == nil {
		return // forward interface dispatch into a later package
	}
	if !s.guarded {
		foldAbsolute(s, call, callee)
		foldCaptured(cls, s, call, callee)
		if cs.writesRecv != nil && recvExpr != nil {
			e := &effect{pos: call.Pos(), detail: chainDetail(callee, cs.writesRecv.detail)}
			for _, r := range cls.rootsOf(recvExpr, true, true) {
				s.record(true, r, e)
			}
		}
		if cs.rangesRecv != nil && recvExpr != nil {
			e := &effect{pos: call.Pos(), detail: chainDetail(callee, cs.rangesRecv.detail)}
			for _, r := range cls.rootsOf(recvExpr, true, true) {
				s.record(false, r, e)
			}
		}
		for k, we := range cs.writesParam {
			if we == nil {
				continue
			}
			for _, arg := range argsForParam(call, callee, k) {
				e := &effect{pos: call.Pos(), detail: chainDetail(callee, we.detail)}
				for _, r := range cls.rootsOf(arg, true, true) {
					s.record(true, r, e)
				}
			}
		}
		for k, re := range cs.rangesParam {
			if re == nil {
				continue
			}
			for _, arg := range argsForParam(call, callee, k) {
				e := &effect{pos: call.Pos(), detail: chainDetail(callee, re.detail)}
				for _, r := range cls.rootsOf(arg, true, true) {
					s.record(false, r, e)
				}
			}
		}
	}
}

// foldAbsolute copies the callee effects that need no translation: the wall
// clock and package-level state are shared from every vantage point.
func foldAbsolute(s *summary, call *ast.CallExpr, callee *funcNode) {
	cs := callee.sum
	if cs == nil {
		return
	}
	if cs.timeRand != nil && s.timeRand == nil {
		s.timeRand = &effect{pos: call.Pos(), detail: chainDetail(callee, cs.timeRand.detail)}
	}
	if s.guarded {
		return
	}
	if cs.writesGlobal != nil {
		s.record(true, rootRef{class: classGlobal}, &effect{pos: call.Pos(), detail: chainDetail(callee, cs.writesGlobal.detail)})
	}
	if cs.rangesGlobal != nil {
		s.record(false, rootRef{class: classGlobal}, &effect{pos: call.Pos(), detail: chainDetail(callee, cs.rangesGlobal.detail)})
	}
}

// foldCaptured translates the callee's captured-variable effects into the
// caller's frame: a variable the callee captured is, from here, a local
// (drop, unless it aliases shared state), a parameter, the receiver, a
// global, or something this function itself captured.
func foldCaptured(cls *classifier, s *summary, call *ast.CallExpr, callee *funcNode) {
	cs := callee.sum
	if cs == nil || s.guarded {
		return
	}
	for v, we := range cs.writesCaptured {
		e := &effect{pos: call.Pos(), detail: chainDetail(callee, we.detail)}
		for _, r := range cls.sharedRootsOfVar(v) {
			s.record(true, r, e)
		}
	}
	for v, re := range cs.rangesCaptured {
		e := &effect{pos: call.Pos(), detail: chainDetail(callee, re.detail)}
		for _, r := range cls.sharedRootsOfVar(v) {
			s.record(false, r, e)
		}
	}
}

// argsForParam returns the call arguments feeding parameter index k of the
// callee (several for a variadic tail).
func argsForParam(call *ast.CallExpr, callee *funcNode, k int) []ast.Expr {
	np := len(callee.params)
	if np == 0 {
		return nil
	}
	variadic := callee.sig != nil && callee.sig.Variadic()
	var out []ast.Expr
	for i, arg := range call.Args {
		pi := i
		if pi >= np {
			if !variadic {
				continue
			}
			pi = np - 1
		}
		if pi == k {
			out = append(out, arg)
		}
	}
	return out
}

// recordPoolObligations marks parameters whose values end up running as par
// workers, so the purity obligation chases through forwarding layers
// (experiments.runIsolated → par.Pool.Map → the ForShards worker literal).
func recordPoolObligations(g *callGraph, n *funcNode, cls *classifier, s *summary, call *ast.CallExpr) {
	paramIndexOf := func(e ast.Expr) int {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return -1
		}
		v, _ := g.pass.Info.ObjectOf(id).(*types.Var)
		if v == nil {
			return -1
		}
		r := cls.classifyVar(v)
		if r.class != classParam {
			return -1
		}
		return r.index
	}
	mark := func(i int) {
		if i >= 0 && i < len(s.poolParam) {
			s.poolParam[i] = true
		}
	}
	if wi, ok := poolWorkerArg(g.pass, call); ok && wi < len(call.Args) {
		worker := call.Args[wi]
		mark(paramIndexOf(worker))
		// A worker literal that calls one of this function's func-typed
		// parameters transfers the obligation to that parameter too.
		if lit, ok := ast.Unparen(worker).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(nd ast.Node) bool {
				inner, ok := nd.(*ast.CallExpr)
				if !ok {
					return true
				}
				mark(paramIndexOf(inner.Fun))
				return true
			})
		}
	}
	for _, callee := range g.calleesOf(call) {
		if callee.sum == nil {
			continue
		}
		for k, isPool := range callee.sum.poolParam {
			if !isPool {
				continue
			}
			for _, arg := range argsForParam(call, callee, k) {
				mark(paramIndexOf(arg))
			}
		}
	}
}

// guardedBody reports whether the body calls a Lock/RLock method outside
// nested literals (the same sanction the determinism analyzer grants
// goroutine bodies: a declared synchronization story).
func guardedBody(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	walkOwnLevel(body, func(nd ast.Node) {
		call, ok := nd.(*ast.CallExpr)
		if !ok || found {
			return
		}
		if fn := calleeFunc(pass, call); fn != nil {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
				(fn.Name() == "Lock" || fn.Name() == "RLock") {
				found = true
			}
		}
	})
	return found
}

// ---------------------------------------------------------------------------
// Unit and ledger facts

// computeUnitFacts derives result/parameter dimensions and accumulator-sink
// parameters by running the unitflow dimension fixpoint over the body with
// the callee summaries already in reach (bottom-up SCC order).
func computeUnitFacts(g *callGraph, n *funcNode, cls *classifier, s *summary) {
	if n.sig == nil {
		return
	}
	u := &unitflowRun{pass: g.pass, graph: g}
	cfg := buildCFG(g.pass, n.body)
	in := forwardFixpoint(cfg, u.transfer)

	nres := n.sig.Results().Len()
	resConflict := make([]bool, nres)
	paramConflict := make([]bool, len(n.params))

	joinDim := func(dst []string, conflict []bool, i int, d string) {
		if i < 0 || i >= len(dst) || conflict[i] || d == "" {
			return
		}
		switch dst[i] {
		case "":
			dst[i] = d
		case d:
		default:
			dst[i] = ""
			conflict[i] = true
		}
	}
	paramIndexOf := func(e ast.Expr) int {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return -1
		}
		v, _ := g.pass.Info.ObjectOf(id).(*types.Var)
		if v == nil {
			return -1
		}
		if r := cls.classifyVar(v); r.class == classParam {
			// Only plain-typed parameters need inference; a declared unit
			// type is already authoritative everywhere.
			if typeDim(v.Type()) == "" {
				return r.index
			}
		}
		return -1
	}
	constrain := func(env factEnv, x, y ast.Expr) {
		if i := paramIndexOf(x); i >= 0 {
			joinDim(s.paramDims, paramConflict, i, u.dimOf(env, y))
		}
	}

	for _, b := range cfg.blocks {
		env := factEnv{}
		if in[b.index] != nil {
			env = in[b.index].clone()
		}
		for _, nd := range b.nodes {
			root := nd
			if rng, ok := nd.(*ast.RangeStmt); ok {
				root = rng.X
			}
			ast.Inspect(root, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.FuncLit:
					return false
				case *ast.BinaryExpr:
					if additiveOps[x.Op] {
						constrain(env, x.X, x.Y)
						constrain(env, x.Y, x.X)
					}
				case *ast.AssignStmt:
					if (x.Tok == token.ADD_ASSIGN || x.Tok == token.SUB_ASSIGN) && len(x.Lhs) == 1 && len(x.Rhs) == 1 {
						constrain(env, x.Rhs[0], x.Lhs[0])
						// Energy accumulated off a parameter is a ledger
						// sink for that parameter.
						if i := accParamIndex(g, cls, x.Rhs[0]); i >= 0 && isEnergyDim(u.dimOf(env, x.Lhs[0])) && x.Tok == token.ADD_ASSIGN {
							if i < len(s.accParam) {
								s.accParam[i] = true
							}
						}
					}
				case *ast.CallExpr:
					for _, callee := range g.calleesOf(x) {
						if callee.sum == nil {
							continue
						}
						for k := range callee.params {
							var pd string
							var acc bool
							if k < len(callee.sum.paramDims) {
								pd = callee.sum.paramDims[k]
							}
							if k < len(callee.sum.accParam) {
								acc = callee.sum.accParam[k]
							}
							if pd == "" && !acc {
								continue
							}
							for _, arg := range argsForParam(x, callee, k) {
								if i := paramIndexOf(arg); i >= 0 {
									joinDim(s.paramDims, paramConflict, i, pd)
									if acc && i < len(s.accParam) {
										s.accParam[i] = true
									}
								}
							}
						}
					}
				case *ast.ReturnStmt:
					if nres == 0 {
						return true
					}
					if len(x.Results) != nres {
						for i := range resConflict {
							resConflict[i] = true
							s.resultDims[i] = ""
						}
						return true
					}
					for i, res := range x.Results {
						joinDim(s.resultDims, resConflict, i, u.dimOf(env, res))
					}
				}
				return true
			})
			env = u.transfer(env, nd)
		}
	}
	// Declared unit result types are authoritative regardless of body flow.
	for i := 0; i < nres; i++ {
		if d := typeDim(n.sig.Results().At(i).Type()); d != "" {
			s.resultDims[i] = d
		}
	}
}

// accParamIndex resolves an expression to a plain parameter read (the shape
// `lhs += p`), or -1.
func accParamIndex(g *callGraph, cls *classifier, e ast.Expr) int {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return -1
	}
	v, _ := g.pass.Info.ObjectOf(id).(*types.Var)
	if v == nil {
		return -1
	}
	if r := cls.classifyVar(v); r.class == classParam {
		return r.index
	}
	return -1
}
